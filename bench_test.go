// Package consequence_test holds the benchmark harness entry points: one
// benchmark family per figure/table of the paper's evaluation (§5), plus
// microbenchmarks of the runtime's primitives on the real host.
//
// The figure benchmarks drive the same deterministic simulation harness as
// cmd/consequence-bench, at reduced sweeps suitable for `go test -bench`.
// Wall-clock ns/op measures harness execution; the paper's actual metric —
// modeled runtime, memory, or propagated pages — is attached via
// b.ReportMetric.
package consequence_test

import (
	"fmt"
	"testing"

	consequence "repro"
	"repro/internal/det"
	"repro/internal/harness"
)

// benchSweep is the reduced thread sweep used by figure benches.
var benchSweep = harness.Sweep{Threads: []int{2, 4, 8}, Scale: 1, Seed: 42}

// reportRun runs one harness configuration and reports its modeled wall
// time as the "vms/op" (virtual milliseconds) metric.
func reportRun(b *testing.B, o harness.Options) harness.Result {
	b.Helper()
	var last harness.Result
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.WallNS)/1e6, "vms")
	return last
}

// BenchmarkFig10 regenerates Figure 10's normalized slowdowns: each
// sub-benchmark is one (benchmark × runtime) cell, best-of thread sweep.
func BenchmarkFig10(b *testing.B) {
	kinds := append([]harness.Kind{harness.KindPthreads}, harness.DetKinds...)
	for _, bench := range []string{"histogram", "reverse_index", "ferret", "canneal", "ocean_cp", "water_nsquared"} {
		for _, k := range kinds {
			b.Run(bench+"/"+string(k), func(b *testing.B) {
				var best harness.Result
				for i := 0; i < b.N; i++ {
					r, err := harness.BestOver(harness.Options{
						Bench: bench, Runtime: k, Scale: benchSweep.Scale, Seed: benchSweep.Seed,
					}, benchSweep.Threads)
					if err != nil {
						b.Fatal(err)
					}
					best = r
				}
				b.ReportMetric(float64(best.WallNS)/1e6, "vms")
			})
		}
	}
}

// BenchmarkFig11 regenerates Figure 11's scalability curves: runtime vs
// thread count on the six pathological benchmarks.
func BenchmarkFig11(b *testing.B) {
	for _, bench := range harness.Fig11Benches {
		for _, th := range benchSweep.Threads {
			for _, k := range []harness.Kind{harness.KindConsequenceIC, harness.KindDThreads, harness.KindDWC} {
				b.Run(fmt.Sprintf("%s/t%d/%s", bench, th, k), func(b *testing.B) {
					reportRun(b, harness.Options{Bench: bench, Runtime: k, Threads: th, Scale: 1, Seed: 42})
				})
			}
		}
	}
}

// BenchmarkFig12 regenerates Figure 12's peak-memory comparison; the
// reported metric is peak pages.
func BenchmarkFig12(b *testing.B) {
	for _, bench := range []string{"canneal", "lu_ncb", "histogram", "ocean_cp"} {
		for _, th := range benchSweep.Threads {
			for _, k := range []harness.Kind{harness.KindConsequenceIC, harness.KindDThreads} {
				b.Run(fmt.Sprintf("%s/t%d/%s", bench, th, k), func(b *testing.B) {
					r := reportRun(b, harness.Options{Bench: bench, Runtime: k, Threads: th, Scale: 1, Seed: 42})
					b.ReportMetric(float64(r.Stats.PeakPages), "peakPages")
				})
			}
		}
	}
}

// BenchmarkFig13 regenerates Figure 13's per-optimization ablations: each
// sub-benchmark disables one optimization on one hard benchmark; compare
// its vms metric against the /full baseline.
func BenchmarkFig13(b *testing.B) {
	for _, bench := range harness.Fig13Benches {
		b.Run(bench+"/full", func(b *testing.B) {
			reportRun(b, harness.Options{Bench: bench, Runtime: harness.KindConsequenceIC, Threads: 8, Scale: 1, Seed: 42})
		})
		for _, v := range harness.Fig13Variants {
			v := v
			b.Run(bench+"/no-"+v.Name, func(b *testing.B) {
				reportRun(b, harness.Options{
					Bench: bench, Runtime: harness.KindConsequenceIC, Threads: 8,
					Scale: 1, Seed: 42, Modify: v.Disable,
				})
			})
		}
	}
}

// BenchmarkFig14 regenerates Figure 14's static-vs-adaptive coarsening
// sweep on reverse_index and ferret.
func BenchmarkFig14(b *testing.B) {
	for _, bench := range []string{"reverse_index", "ferret"} {
		for _, lvl := range harness.Fig14Levels {
			lvl := lvl
			b.Run(fmt.Sprintf("%s/static%d", bench, lvl), func(b *testing.B) {
				reportRun(b, harness.Options{
					Bench: bench, Runtime: harness.KindConsequenceIC, Threads: 8, Scale: 1, Seed: 42,
					Modify: func(c *det.Config) {
						if lvl == 0 {
							c.Coarsening = false
						} else {
							c.StaticLevel = lvl
						}
					},
				})
			})
		}
		b.Run(bench+"/adaptive", func(b *testing.B) {
			reportRun(b, harness.Options{Bench: bench, Runtime: harness.KindConsequenceIC, Threads: 8, Scale: 1, Seed: 42})
		})
	}
}

// BenchmarkFig15 regenerates Figure 15's time-breakdown rows; the metrics
// are the category percentages.
func BenchmarkFig15(b *testing.B) {
	for _, bench := range []string{"string_match", "canneal", "ferret", "reverse_index"} {
		for _, k := range []harness.Kind{harness.KindPthreads, harness.KindDWC, harness.KindConsequenceIC} {
			b.Run(bench+"/"+string(k), func(b *testing.B) {
				r := reportRun(b, harness.Options{Bench: bench, Runtime: k, Threads: 8, Scale: 1, Seed: 42})
				total := float64(r.Stats.LocalWorkNS + r.Stats.DetermWaitNS + r.Stats.BarrierWaitNS +
					r.Stats.CommitNS + r.Stats.FaultNS + r.Stats.LibNS)
				if total > 0 {
					b.ReportMetric(100*float64(r.Stats.LocalWorkNS)/total, "local%")
					b.ReportMetric(100*float64(r.Stats.DetermWaitNS)/total, "determ%")
					b.ReportMetric(100*float64(r.Stats.BarrierWaitNS)/total, "barrier%")
					b.ReportMetric(100*float64(r.Stats.CommitNS)/total, "commit%")
				}
			})
		}
	}
}

// BenchmarkFig16 regenerates Figure 16's page-propagation comparison; the
// metrics are TSO and hypothetical-LRC propagated pages.
func BenchmarkFig16(b *testing.B) {
	for _, bench := range []string{"canneal", "ferret", "word_count", "water_nsquared", "ocean_cp"} {
		b.Run(bench, func(b *testing.B) {
			r := reportRun(b, harness.Options{
				Bench: bench, Runtime: harness.KindConsequenceIC, Threads: 8,
				Scale: 1, Seed: 42, WithLRC: true,
			})
			b.ReportMetric(float64(r.Stats.PulledPages), "tsoPages")
			b.ReportMetric(float64(r.LRCPages), "lrcPages")
		})
	}
}

// BenchmarkTableLRC compares Consequence's TSO against the deterministic
// LRC runtime on the fine-grained-locking benchmark where §6 predicts LRC
// wins; compare the vms metrics of the two sub-benchmarks.
func BenchmarkTableLRC(b *testing.B) {
	for _, k := range []harness.Kind{harness.KindConsequenceIC, harness.KindRFDet} {
		b.Run("water_nsquared/"+string(k), func(b *testing.B) {
			reportRun(b, harness.Options{Bench: "water_nsquared", Runtime: k, Threads: 8, Scale: 1, Seed: 42})
		})
	}
}

// --- real-host microbenchmarks of the public library ---

// BenchmarkRealMutexRoundtrip measures one deterministic lock/unlock pair
// (including its commit) on the goroutine host, single-threaded.
func BenchmarkRealMutexRoundtrip(b *testing.B) {
	rt, err := consequence.New(consequence.WithSegmentSize(1 << 16))
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	b.ResetTimer()
	if err := rt.Run(func(t consequence.T) {
		m := t.NewMutex()
		for i := 0; i < n; i++ {
			t.Lock(m)
			t.Unlock(m)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRealContendedCounter measures the contended deterministic
// counter at 4 threads on the goroutine host.
func BenchmarkRealContendedCounter(b *testing.B) {
	rt, err := consequence.New(consequence.WithSegmentSize(1 << 20))
	if err != nil {
		b.Fatal(err)
	}
	per := b.N/4 + 1
	b.ResetTimer()
	if err := rt.Run(func(t consequence.T) {
		m := t.NewMutex()
		var hs []consequence.Handle
		for w := 0; w < 4; w++ {
			hs = append(hs, t.Spawn(func(t consequence.T) {
				for i := 0; i < per; i++ {
					t.Lock(m)
					consequence.AddU64(t, 0, 1)
					t.Unlock(m)
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRealMemoryWrite measures store-buffered writes (with CoW
// faults amortized across pages).
func BenchmarkRealMemoryWrite(b *testing.B) {
	rt, err := consequence.New(consequence.WithSegmentSize(1 << 22))
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	b.SetBytes(8)
	b.ResetTimer()
	if err := rt.Run(func(t consequence.T) {
		for i := 0; i < n; i++ {
			consequence.PutU64(t, (i*8)%(1<<22-8), uint64(i))
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRealBarrier measures a 4-thread deterministic barrier round.
func BenchmarkRealBarrier(b *testing.B) {
	rt, err := consequence.New(consequence.WithSegmentSize(1 << 16))
	if err != nil {
		b.Fatal(err)
	}
	rounds := b.N
	b.ResetTimer()
	if err := rt.Run(func(t consequence.T) {
		bar := t.NewBarrier(4)
		var hs []consequence.Handle
		for w := 1; w < 4; w++ {
			hs = append(hs, t.Spawn(func(t consequence.T) {
				for i := 0; i < rounds; i++ {
					t.BarrierWait(bar)
				}
			}))
		}
		for i := 0; i < rounds; i++ {
			t.BarrierWait(bar)
		}
		for _, h := range hs {
			t.Join(h)
		}
	}); err != nil {
		b.Fatal(err)
	}
}
