package consequence_test

import (
	"testing"
	"time"

	consequence "repro"
	"repro/internal/det"
)

func TestPublicAPICounter(t *testing.T) {
	rt, err := consequence.New(consequence.WithSegmentSize(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	var final uint64
	err = rt.Run(func(root consequence.T) {
		m := root.NewMutex()
		var hs []consequence.Handle
		for i := 0; i < 4; i++ {
			hs = append(hs, root.Spawn(func(w consequence.T) {
				for j := 0; j < 50; j++ {
					w.Lock(m)
					consequence.AddU64(w, 0, 1)
					w.Unlock(m)
				}
			}))
		}
		for _, h := range hs {
			root.Join(h)
		}
		final = consequence.U64(root, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != 200 {
		t.Fatalf("counter = %d, want 200", final)
	}
}

func TestPublicAPIDeterminismUnderPerturbation(t *testing.T) {
	prog := func(root consequence.T) {
		m := root.NewMutex()
		var hs []consequence.Handle
		for i := 0; i < 3; i++ {
			i := i
			hs = append(hs, root.Spawn(func(w consequence.T) {
				for j := 0; j < 30; j++ {
					w.Compute(int64(100 * (i + 1)))
					// Racy write: deterministic anyway.
					consequence.PutU64(w, 8, uint64(i*100+j))
					w.Lock(m)
					consequence.AddU64(w, 0, 1)
					w.Unlock(m)
				}
			}))
		}
		for _, h := range hs {
			root.Join(h)
		}
	}
	var sums, traces []uint64
	for rep := 0; rep < 3; rep++ {
		rt, err := consequence.New(
			consequence.WithSegmentSize(1<<20),
			consequence.WithPerturbation(150*time.Microsecond, int64(rep*31)),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(prog); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, rt.Checksum())
		traces = append(traces, rt.TraceHash())
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] || traces[i] != traces[0] {
			t.Fatalf("run %d diverged: sum %x vs %x, trace %x vs %x",
				i, sums[i], sums[0], traces[i], traces[0])
		}
	}
}

func TestPublicAPISimulatedTime(t *testing.T) {
	rt, err := consequence.New(
		consequence.WithSegmentSize(1<<20),
		consequence.WithSimulatedTime(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(root consequence.T) {
		root.Compute(1_000_000)
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().WallNS <= 0 {
		t.Fatal("simulated time did not advance")
	}
}

func TestPublicAPISimulationRejectsPerturbation(t *testing.T) {
	_, err := consequence.New(
		consequence.WithSimulatedTime(),
		consequence.WithPerturbation(time.Millisecond, 1),
	)
	if err == nil {
		t.Fatal("perturbation + simulation accepted")
	}
}

func TestPublicAPIOrderingRR(t *testing.T) {
	rt, err := consequence.New(
		consequence.WithSegmentSize(1<<20),
		consequence.WithOrdering(consequence.OrderingRR),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(root consequence.T) {
		m := root.NewMutex()
		h := root.Spawn(func(w consequence.T) {
			w.Lock(m)
			consequence.AddU64(w, 0, 5)
			w.Unlock(m)
		})
		root.Join(h)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIChunkLimitBreaksSpin(t *testing.T) {
	rt, err := consequence.New(
		consequence.WithSegmentSize(1<<20),
		consequence.WithSimulatedTime(),
		consequence.WithChunkLimit(20_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	if err := rt.Run(func(root consequence.T) {
		h := root.Spawn(func(w consequence.T) {
			w.Compute(5_000)
			consequence.PutU64(w, 0, 1)
		})
		for i := 0; i < 2000 && consequence.U64(root, 0) == 0; i++ {
			root.Compute(100)
		}
		saw = consequence.U64(root, 0) == 1
		root.Join(h)
	}); err != nil {
		t.Fatal(err)
	}
	if !saw {
		t.Fatal("ad-hoc spin never observed the flag despite chunk limit")
	}
}

func TestPublicAPIDetConfigEscapeHatch(t *testing.T) {
	rt, err := consequence.New(
		consequence.WithSegmentSize(1<<20),
		consequence.WithSimulatedTime(),
		consequence.WithDetConfig(func(c *det.Config) { c.StaticLevel = 4 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(root consequence.T) {
		m := root.NewMutex()
		for i := 0; i < 20; i++ {
			root.Lock(m)
			consequence.AddU64(root, 0, 1)
			root.Unlock(m)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().CoarsenedOps == 0 {
		t.Fatal("static coarsening config not applied")
	}
}
