#!/bin/sh
# Chaos sweep: every built-in chaos profile x seeds 1..5 over the golden
# benchmarks, asserting that fault injection never moves program results.
# The unperturbed baseline is computed live (not pinned), so the sweep
# stays valid across intentional semantic changes; scripts/check.sh pins
# the absolute goldens. Run via `make chaos`; exits non-zero on the first
# divergence. Takes a few minutes.
set -eu

cd "$(dirname "$0")/.."

benches="water_nsquared canneal histogram kmeans"
seeds="1 2 3 4 5"

detrun_bin=$(mktemp -t detrun.XXXXXX)
conseq_serve_bin=$(mktemp -t conseqserve.XXXXXX)
trap 'rm -f "$detrun_bin" "$conseq_serve_bin"' EXIT
go build -o "$detrun_bin" ./cmd/detrun
go build -o "$conseq_serve_bin" ./cmd/conseq-serve

# All built-in profiles, from the chaos registry itself so the sweep can
# never silently skip a newly added profile.
profiles=$("$detrun_bin" -list-chaos)

total=0
for bench in $benches; do
    out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42)
    base_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
    base_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
    serve=$("$conseq_serve_bin" -bench "$bench" -threads 8 -scale 1 -seed 42)
    base_digest=$(printf '%s\n' "$serve" | awk '/^sweep digest/{print $3}')
    for profile in $profiles; do
        for seed in $seeds; do
            case $profile in
            follower-*)
                # Follower faults only have a target inside a replica
                # fleet: serve the run through one and pin the versioned-
                # read sweep digest instead of the sync trace
                # (docs/replication.md).
                out=$("$conseq_serve_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -chaos "$profile:$seed")
                got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
                got_digest=$(printf '%s\n' "$out" | awk '/^sweep digest/{print $3}')
                if [ "$got_sum" != "$base_sum" ] || [ "$got_digest" != "$base_digest" ]; then
                    echo "chaos sweep: $bench fleet under $profile:$seed diverged:" >&2
                    echo "  checksum     $got_sum (want $base_sum)" >&2
                    echo "  sweep digest $got_digest (want $base_digest)" >&2
                    exit 1
                fi
                ;;
            *)
                out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -chaos "$profile:$seed")
                got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
                got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
                if [ "$got_sum" != "$base_sum" ] || [ "$got_trace" != "$base_trace" ]; then
                    echo "chaos sweep: $bench under $profile:$seed diverged:" >&2
                    echo "  checksum $got_sum (want $base_sum)" >&2
                    echo "  trace    $got_trace (want $base_trace)" >&2
                    exit 1
                fi
                ;;
            esac
            total=$((total + 1))
        done
    done
    echo "$bench ok ($(echo "$profiles" | wc -w | tr -d ' ') profiles x 5 seeds)"
done

echo "chaos sweep: OK ($total perturbed runs, results byte-identical)"
