#!/bin/sh
# Pre-PR gate: formatting, vet, build, tests. Run from the repo root
# (directly or via `make check`); exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== lintdoc (godoc coverage of det, clock, trace, journal, commitlog, replica, predict, harness)"
go run ./scripts/lintdoc ./internal/det ./internal/clock ./internal/trace ./internal/journal ./internal/commitlog ./internal/replica ./internal/predict ./internal/harness

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (obs + det + chaos + replica)"
go test -race ./internal/obs/... ./internal/det ./internal/chaos/... ./internal/replica

echo "== conseq-analyze smoke (golden trace)"
go run ./cmd/conseq-analyze -input internal/obs/testdata/golden_trace.json >/dev/null

echo "== bench smoke (1 iteration)"
go test -run=NONE -bench=. -benchtime=1x ./internal/mem >/dev/null

echo "== determinism gate (final memory + sync-trace hashes vs goldens)"
# The gate (and the chaos gate below) run detrun many times: build it once.
detrun_bin=$(mktemp -t detrun.XXXXXX)
conseq_diff_bin=$(mktemp -t conseqdiff.XXXXXX)
conseq_replay_bin=$(mktemp -t conseqreplay.XXXXXX)
journal_dir=$(mktemp -d -t journals.XXXXXX)
clog_dir=$(mktemp -d -t commitlogs.XXXXXX)
trap 'rm -f "$detrun_bin" "$conseq_diff_bin" "$conseq_replay_bin" "${conseq_serve_bin:-}"; rm -rf "$journal_dir" "$clog_dir"' EXIT
go build -o "$detrun_bin" ./cmd/detrun
go build -o "$conseq_diff_bin" ./cmd/conseq-diff
go build -o "$conseq_replay_bin" ./cmd/conseq-replay

# benchmark:checksum:trace@1:trace@2:trace@4:trace@8 at t=8 scale=1
# seed=42 on the simulation host. The checksum pins program results at
# EVERY shard count: per-shard granting must never move what the program
# computes. The trace hash is pinned per shard count — under per-shard
# granting (shards >= 2, docs/scheduler.md stage 2) the merge rule may
# legitimately reorder independent grants between shards, so each shard
# count has its own golden interleave, and that interleave must be
# byte-stable across runs, hosts, prediction, and chaos. Regenerate a
# line only if an intentional semantic change is fully understood (run
# cmd/detrun with the flags above and copy the new hashes).
goldens="
water_nsquared:8cd4c7596c268f28:aadb9ab2a9588a2a:ed0e122f20ce827b:c56202d013570111:0d3e1d9b985f439d
canneal:52afe913b556d5da:054928fab9f631f8:b7be0c1e137f8578:d294fd670ca2f9b8:054928fab9f631f8
histogram:09e07ed580954ecc:caafd5842fd5020b:caafd5842fd5020b:caafd5842fd5020b:caafd5842fd5020b
kmeans:1f8b09e15b1b689c:cd6c25c0a0405d2b:cd6c25c0a0405d2b:cd6c25c0a0405d2b:cd6c25c0a0405d2b
"

# trace_golden SPEC SHARDS -> the spec's golden trace hash at that count.
trace_golden() {
    case $2 in
    1) printf '%s' "$1" | cut -d: -f3 ;;
    2) printf '%s' "$1" | cut -d: -f4 ;;
    4) printf '%s' "$1" | cut -d: -f5 ;;
    8) printf '%s' "$1" | cut -d: -f6 ;;
    esac
}

# Each benchmark runs over the full scheduler matrix — write-set
# prediction on (the default) and off, crossed with 1/2/4/8 arbitration
# shards (shards >= 2 also turn on the worker pool, lazy fast-forward and
# per-shard granting, docs/scheduler.md) — and every cell must hit the
# same checksum and its shard count's trace golden: the scale-out trio
# must never move program results, and within a shard count the grant
# interleave is replay-stable by the merge rule.
for spec in $goldens; do
    bench=${spec%%:*}
    want_sum=$(printf '%s' "$spec" | cut -d: -f2)
    for predict in true false; do
        for shards in 1 2 4 8; do
            want_trace=$(trace_golden "$spec" "$shards")
            out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -predict="$predict" -shards "$shards")
            got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
            got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
            if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace" ]; then
                echo "determinism gate: $bench (predict=$predict shards=$shards) diverged:" >&2
                echo "  checksum $got_sum (want $want_sum)" >&2
                echo "  trace    $got_trace (want $want_trace)" >&2
                exit 1
            fi
        done
    done
    echo "   $bench ok (predict on+off x shards 1/2/4/8)"
done

echo "== chaos gate (golden results unmoved under fault injection)"
# Chaos perturbs timing (jitter, token-grant delay, overflow shrinkage,
# mispredictions, barrier skew, fault/commit slowdowns) but must never
# perturb results: every profile:seed must reproduce the golden checksum
# AND sync-trace hash byte-for-byte. See docs/robustness.md.
chaos_profiles="jitter token storm"
chaos_seeds="1 2 3"
for spec in $goldens; do
    bench=${spec%%:*}
    want_sum=$(printf '%s' "$spec" | cut -d: -f2)
    want_trace=$(trace_golden "$spec" 1)
    for profile in $chaos_profiles; do
        for seed in $chaos_seeds; do
            out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -chaos "$profile:$seed")
            got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
            got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
            if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace" ]; then
                echo "chaos gate: $bench under $profile:$seed diverged:" >&2
                echo "  checksum $got_sum (want $want_sum)" >&2
                echo "  trace    $got_trace (want $want_trace)" >&2
                exit 1
            fi
        done
    done
    # Chaos and the scale-out trio compose: the heaviest profile must
    # leave the checksum AND the 4-shard grant interleave unmoved on the
    # per-shard granting scheduler too — chaos perturbs host timing, and
    # the merge rule's whole claim is that the interleave is independent
    # of host timing.
    want_trace4=$(trace_golden "$spec" 4)
    for seed in $chaos_seeds; do
        out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -shards 4 -chaos "storm:$seed")
        got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
        got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
        if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace4" ]; then
            echo "chaos gate: $bench under storm:$seed at 4 shards diverged:" >&2
            echo "  checksum $got_sum (want $want_sum)" >&2
            echo "  trace    $got_trace (want $want_trace4)" >&2
            exit 1
        fi
    done
    echo "   $bench ok (3 profiles x 3 seeds, + storm x 3 seeds at 4 shards)"
done

echo "== journal gate (journaling invisible; conseq-diff pinpoints planted divergences)"
# Journaling is observation off the token critical path: with -journal the
# goldens must be byte-identical to the journal-off runs above, and two
# journaled runs must write byte-identical journal files. Then the
# self-test: plant a swapped token grant and a flipped page hash with
# conseq-diff's perturb modes and require the diff to exit non-zero AND
# name the exact planted site (docs/divergence.md).
for spec in $goldens; do
    bench=${spec%%:*}
    want_sum=$(printf '%s' "$spec" | cut -d: -f2)
    want_trace=$(trace_golden "$spec" 1)
    out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -journal "$journal_dir/$bench-a.csqj")
    got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
    got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
    if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace" ]; then
        echo "journal gate: $bench with -journal diverged from the goldens:" >&2
        echo "  checksum $got_sum (want $want_sum)" >&2
        echo "  trace    $got_trace (want $want_trace)" >&2
        exit 1
    fi
    "$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -journal "$journal_dir/$bench-b.csqj" >/dev/null
    if ! cmp -s "$journal_dir/$bench-a.csqj" "$journal_dir/$bench-b.csqj"; then
        echo "journal gate: $bench wrote different journal bytes across two identical runs" >&2
        exit 1
    fi
    if ! "$conseq_diff_bin" "$journal_dir/$bench-a.csqj" "$journal_dir/$bench-b.csqj" >/dev/null; then
        echo "journal gate: conseq-diff reported divergence between identical $bench journals" >&2
        exit 1
    fi
    echo "   $bench ok (goldens unmoved, two journaled runs byte-identical)"
done

# Planted sync divergence: swap two adjacent token grants and demand the
# exact seq back.
"$conseq_diff_bin" -perturb swap-grant -at 100 -o "$journal_dir/swap.csqj" "$journal_dir/water_nsquared-a.csqj" >/dev/null
if rep=$("$conseq_diff_bin" "$journal_dir/water_nsquared-a.csqj" "$journal_dir/swap.csqj"); then
    echo "journal gate: conseq-diff missed the planted grant swap" >&2
    exit 1
fi
if ! printf '%s\n' "$rep" | grep -q "first divergent event at seq 100"; then
    echo "journal gate: conseq-diff mislocalized the planted grant swap:" >&2
    printf '%s\n' "$rep" >&2
    exit 1
fi
# Planted memory divergence: flip one committed page hash and demand the
# commit-level report, in JSON for the machine-readable path.
"$conseq_diff_bin" -perturb flip-page -at 5 -o "$journal_dir/flip.csqj" "$journal_dir/water_nsquared-a.csqj" >/dev/null
if rep=$("$conseq_diff_bin" -json "$journal_dir/water_nsquared-a.csqj" "$journal_dir/flip.csqj"); then
    echo "journal gate: conseq-diff missed the planted page flip" >&2
    exit 1
fi
if ! printf '%s\n' "$rep" | grep -q '"kind": "commit"'; then
    echo "journal gate: conseq-diff mislocalized the planted page flip:" >&2
    printf '%s\n' "$rep" >&2
    exit 1
fi
# Live re-execution: replaying the run from the journal's own metadata
# must reproduce it exactly.
if ! "$conseq_diff_bin" -live "$journal_dir/histogram-a.csqj" >/dev/null; then
    echo "journal gate: live re-execution diverged from the recorded journal" >&2
    exit 1
fi
echo "   conseq-diff ok (planted swap + page flip localized, live replay equivalent)"

# Per-shard granting journals (v2: shard provenance on events, per-shard
# hash chains in checkpoints): two identical runs at 4 shards must write
# byte-identical journal files, and conseq-diff must read the sharded
# format and report them equivalent.
for bench in water_nsquared kmeans; do
    "$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -shards 4 -journal "$journal_dir/$bench-s4-a.csqj" >/dev/null
    "$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -shards 4 -journal "$journal_dir/$bench-s4-b.csqj" >/dev/null
    if ! cmp -s "$journal_dir/$bench-s4-a.csqj" "$journal_dir/$bench-s4-b.csqj"; then
        echo "journal gate: $bench at 4 shards wrote different journal bytes across two identical runs" >&2
        exit 1
    fi
    if ! "$conseq_diff_bin" "$journal_dir/$bench-s4-a.csqj" "$journal_dir/$bench-s4-b.csqj" >/dev/null; then
        echo "journal gate: conseq-diff reported divergence between identical sharded $bench journals" >&2
        exit 1
    fi
done
echo "   sharded journals ok (4-shard runs byte-identical, conseq-diff clean)"

echo "== commitlog gate (logging invisible; logs canonical; replay, resume and backpressure verified)"
# The commit log's three load-bearing properties (docs/commitlog.md),
# checked per golden benchmark: (1) logging is invisible — with
# -commitlog the goldens are unmoved; (2) logs are canonical — two
# identical runs write byte-identical log directories, so `diff -r` is
# a determinism check; (3) the log proves itself — conseq-replay
# -verify replays it against the same run's journal hash-for-hash and
# the replica checksum equals the golden, and -resume (newest snapshot
# + tail, the restart path) reaches the same checksum. Then the chaos
# piece: the logstall profile stalls the drain goroutine in REAL time
# (write backpressure), and neither the goldens NOR the log bytes may
# move — backpressure shifts host timing only, never results, never
# what gets logged.
for spec in $goldens; do
    bench=${spec%%:*}
    want_sum=$(printf '%s' "$spec" | cut -d: -f2)
    want_trace=$(trace_golden "$spec" 1)
    out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 \
        -journal "$clog_dir/$bench.csqj" -commitlog "$clog_dir/$bench-a")
    got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
    got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
    if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace" ]; then
        echo "commitlog gate: $bench with -commitlog diverged from the goldens:" >&2
        echo "  checksum $got_sum (want $want_sum)" >&2
        echo "  trace    $got_trace (want $want_trace)" >&2
        exit 1
    fi
    "$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 \
        -commitlog "$clog_dir/$bench-b" >/dev/null
    if ! diff -r "$clog_dir/$bench-a" "$clog_dir/$bench-b" >/dev/null; then
        echo "commitlog gate: $bench wrote different log bytes across two identical runs" >&2
        exit 1
    fi
    if ! "$conseq_replay_bin" -dir "$clog_dir/$bench-a" -verify "$clog_dir/$bench.csqj" \
        -checksum "$want_sum" -quiet >/dev/null; then
        echo "commitlog gate: $bench replay failed journal verification or the golden checksum" >&2
        exit 1
    fi
    if ! "$conseq_replay_bin" -dir "$clog_dir/$bench-a" -resume \
        -checksum "$want_sum" -quiet >/dev/null; then
        echo "commitlog gate: $bench resume did not reach the golden checksum" >&2
        exit 1
    fi
    out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 \
        -chaos logstall:1 -commitlog "$clog_dir/$bench-c")
    got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
    got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
    if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace" ]; then
        echo "commitlog gate: $bench under logstall:1 diverged from the goldens:" >&2
        echo "  checksum $got_sum (want $want_sum)" >&2
        echo "  trace    $got_trace (want $want_trace)" >&2
        exit 1
    fi
    if ! diff -r "$clog_dir/$bench-a" "$clog_dir/$bench-c" >/dev/null; then
        echo "commitlog gate: $bench log bytes moved under logstall backpressure" >&2
        exit 1
    fi
    echo "   $bench ok (goldens unmoved, logs byte-identical, verify + resume + logstall)"
done

echo "== replica gate (follower fleet byte-identical under chaos)"
# The replication determinism gate (docs/replication.md): conseq-serve
# runs a golden benchmark with a live replica fleet, verifies every
# follower's final checksum against the runtime's, then samples a seeded
# sweep of versioned reads (ReadAt across the whole retained history)
# into one digest. Any follower kill/tear schedule — and any writer
# backpressure schedule — must leave both the final checksum AND the
# sweep digest byte-identical to the undisturbed run: crash recovery,
# backoff and drain/re-admission may move timing, never state, and
# never which bytes any version's read returns.
conseq_serve_bin=$(mktemp -t conseqserve.XXXXXX)
go build -o "$conseq_serve_bin" ./cmd/conseq-serve
base=$("$conseq_serve_bin" -bench kmeans -threads 8 -scale 1 -seed 42)
base_sum=$(printf '%s\n' "$base" | awk '/^checksum/{print $2}')
base_digest=$(printf '%s\n' "$base" | awk '/^sweep digest/{print $3}')
if [ "$base_sum" != "1f8b09e15b1b689c" ]; then
    echo "replica gate: kmeans baseline checksum $base_sum, want golden 1f8b09e15b1b689c" >&2
    exit 1
fi
for prof in follower-kill follower-tear logstall; do
    for cseed in 1 2 3; do
        out=$("$conseq_serve_bin" -bench kmeans -threads 8 -scale 1 -seed 42 -chaos "$prof:$cseed")
        got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
        got_digest=$(printf '%s\n' "$out" | awk '/^sweep digest/{print $3}')
        if [ "$got_sum" != "$base_sum" ] || [ "$got_digest" != "$base_digest" ]; then
            echo "replica gate: kmeans under $prof:$cseed diverged from the undisturbed fleet:" >&2
            echo "  checksum     $got_sum (want $base_sum)" >&2
            echo "  sweep digest $got_digest (want $base_digest)" >&2
            exit 1
        fi
    done
    echo "   kmeans ok under $prof (seeds 1-3: checksum + sweep digest unmoved)"
done

echo "== scheduler bench (BENCH_sched.json vs committed baseline)"
# Re-run the suite at smoke iterations into temp files — the committed
# BENCH_sched.json is the baseline and is left untouched — and compare
# each benchmark against it with a tolerance band: a hot path may not
# get more than BENCH_TOLERANCE x slower than the committed ns/op
# (default 3.0 — the committed numbers come from the larger default
# benchtime). Smoke runs on a loaded CI host spike hard (single 200x
# samples vary up to 8x), so the gate takes the best of two runs: a
# spike must hit both to fail the gate, a real regression always does.
# New benchmarks absent from the baseline pass trivially. The band also
# asserts the one ordering the pool must win: ForkJoin pooled <= legacy
# within the same fresh run.
fresh1=$(mktemp -t bench_fresh1.XXXXXX)
fresh2=$(mktemp -t bench_fresh2.XXXXXX)
BENCHTIME=500x ./scripts/bench_sched.sh "$fresh1" >/dev/null
BENCHTIME=500x ./scripts/bench_sched.sh "$fresh2" >/dev/null
awk -v tol="${BENCH_TOLERANCE:-3.0}" '
    function val(s) { gsub(/[^0-9]/, "", s); return s + 0 }
    /"name"/ {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = $0; sub(/.*"ns_per_op": /, "", ns)
        if (FILENAME == ARGV[1]) base[name] = val(ns)
        else if (!(name in fresh) || val(ns) < fresh[name]) fresh[name] = val(ns)
    }
    END {
        bad = 0
        for (name in fresh) {
            if (name in base && base[name] > 0 && fresh[name] > base[name] * tol) {
                printf "bench gate: %s regressed: %d ns/op vs baseline %d (tolerance %.1fx)\n",
                    name, fresh[name], base[name], tol > "/dev/stderr"
                bad = 1
            }
        }
        # Same-run comparison, so host noise largely cancels: steady-state
        # pooled adoption must stay within 1.5x of legacy (it wins by
        # ~25% on a quiet host; 1.5x leaves headroom for CI jitter
        # without letting the old 30% regression back in).
        fj = "BenchmarkForkJoin/"
        if ((fj "pooled") in fresh && (fj "legacy") in fresh &&
            fresh[fj "pooled"] > fresh[fj "legacy"] * 1.5) {
            printf "bench gate: ForkJoin pooled (%d ns/op) lost to legacy (%d ns/op) beyond 1.5x\n",
                fresh[fj "pooled"], fresh[fj "legacy"] > "/dev/stderr"
            bad = 1
        }
        exit bad
    }' BENCH_sched.json "$fresh1" "$fresh2"
rm -f "$fresh1" "$fresh2"

echo "check: OK"
