#!/bin/sh
# Pre-PR gate: formatting, vet, build, tests. Run from the repo root
# (directly or via `make check`); exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "check: OK"
