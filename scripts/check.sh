#!/bin/sh
# Pre-PR gate: formatting, vet, build, tests. Run from the repo root
# (directly or via `make check`); exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (obs + det)"
go test -race ./internal/obs/... ./internal/det

echo "== conseq-analyze smoke (golden trace)"
go run ./cmd/conseq-analyze -input internal/obs/testdata/golden_trace.json >/dev/null

echo "check: OK"
