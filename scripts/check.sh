#!/bin/sh
# Pre-PR gate: formatting, vet, build, tests. Run from the repo root
# (directly or via `make check`); exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== lintdoc (godoc coverage of internal/det, internal/clock, internal/trace)"
go run ./scripts/lintdoc ./internal/det ./internal/clock ./internal/trace

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (obs + det + chaos)"
go test -race ./internal/obs/... ./internal/det ./internal/chaos/...

echo "== conseq-analyze smoke (golden trace)"
go run ./cmd/conseq-analyze -input internal/obs/testdata/golden_trace.json >/dev/null

echo "== bench smoke (1 iteration)"
go test -run=NONE -bench=. -benchtime=1x ./internal/mem >/dev/null

echo "== determinism gate (final memory + sync-trace hashes vs goldens)"
# The gate (and the chaos gate below) run detrun many times: build it once.
detrun_bin=$(mktemp -t detrun.XXXXXX)
conseq_diff_bin=$(mktemp -t conseqdiff.XXXXXX)
journal_dir=$(mktemp -d -t journals.XXXXXX)
trap 'rm -f "$detrun_bin" "$conseq_diff_bin"; rm -rf "$journal_dir"' EXIT
go build -o "$detrun_bin" ./cmd/detrun
go build -o "$conseq_diff_bin" ./cmd/conseq-diff

# benchmark:checksum:tracehash at t=8 scale=1 seed=42 on the simulation
# host. These pin program results, not timings: perf work must never move
# them. Regenerate a line only if an intentional semantic change is fully
# understood (run cmd/detrun with the flags above and copy the new hashes).
goldens="
water_nsquared:8cd4c7596c268f28:aadb9ab2a9588a2a
canneal:52afe913b556d5da:054928fab9f631f8
histogram:09e07ed580954ecc:caafd5842fd5020b
kmeans:1f8b09e15b1b689c:cd6c25c0a0405d2b
"
# Each benchmark runs over the full scheduler matrix — write-set
# prediction on (the default) and off, crossed with 1/2/4/8 arbitration
# shards (shards >= 2 also turn on the worker pool and lazy fast-forward,
# docs/scheduler.md) — and every cell must hit the same goldens: both are
# overlap/scale-out optimizations and must never move program results or
# the logical clocks in the sync trace.
for spec in $goldens; do
    bench=${spec%%:*}
    rest=${spec#*:}
    want_sum=${rest%%:*}
    want_trace=${rest#*:}
    for predict in true false; do
        for shards in 1 2 4 8; do
            out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -predict="$predict" -shards "$shards")
            got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
            got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
            if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace" ]; then
                echo "determinism gate: $bench (predict=$predict shards=$shards) diverged:" >&2
                echo "  checksum $got_sum (want $want_sum)" >&2
                echo "  trace    $got_trace (want $want_trace)" >&2
                exit 1
            fi
        done
    done
    echo "   $bench ok (predict on+off x shards 1/2/4/8)"
done

echo "== chaos gate (golden results unmoved under fault injection)"
# Chaos perturbs timing (jitter, token-grant delay, overflow shrinkage,
# mispredictions, barrier skew, fault/commit slowdowns) but must never
# perturb results: every profile:seed must reproduce the golden checksum
# AND sync-trace hash byte-for-byte. See docs/robustness.md.
chaos_profiles="jitter token storm"
chaos_seeds="1 2 3"
for spec in $goldens; do
    bench=${spec%%:*}
    rest=${spec#*:}
    want_sum=${rest%%:*}
    want_trace=${rest#*:}
    for profile in $chaos_profiles; do
        for seed in $chaos_seeds; do
            out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -chaos "$profile:$seed")
            got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
            got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
            if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace" ]; then
                echo "chaos gate: $bench under $profile:$seed diverged:" >&2
                echo "  checksum $got_sum (want $want_sum)" >&2
                echo "  trace    $got_trace (want $want_trace)" >&2
                exit 1
            fi
        done
    done
    # Chaos and the scale-out trio compose: the heaviest profile must
    # leave the goldens unmoved on the sharded scheduler too.
    for seed in $chaos_seeds; do
        out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -shards 4 -chaos "storm:$seed")
        got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
        got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
        if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace" ]; then
            echo "chaos gate: $bench under storm:$seed at 4 shards diverged:" >&2
            echo "  checksum $got_sum (want $want_sum)" >&2
            echo "  trace    $got_trace (want $want_trace)" >&2
            exit 1
        fi
    done
    echo "   $bench ok (3 profiles x 3 seeds, + storm x 3 seeds at 4 shards)"
done

echo "== journal gate (journaling invisible; conseq-diff pinpoints planted divergences)"
# Journaling is observation off the token critical path: with -journal the
# goldens must be byte-identical to the journal-off runs above, and two
# journaled runs must write byte-identical journal files. Then the
# self-test: plant a swapped token grant and a flipped page hash with
# conseq-diff's perturb modes and require the diff to exit non-zero AND
# name the exact planted site (docs/divergence.md).
for spec in $goldens; do
    bench=${spec%%:*}
    rest=${spec#*:}
    want_sum=${rest%%:*}
    want_trace=${rest#*:}
    out=$("$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -journal "$journal_dir/$bench-a.csqj")
    got_sum=$(printf '%s\n' "$out" | awk '/^checksum/{print $2}')
    got_trace=$(printf '%s\n' "$out" | awk '/^trace/{print $NF}')
    if [ "$got_sum" != "$want_sum" ] || [ "$got_trace" != "$want_trace" ]; then
        echo "journal gate: $bench with -journal diverged from the goldens:" >&2
        echo "  checksum $got_sum (want $want_sum)" >&2
        echo "  trace    $got_trace (want $want_trace)" >&2
        exit 1
    fi
    "$detrun_bin" -bench "$bench" -threads 8 -scale 1 -seed 42 -journal "$journal_dir/$bench-b.csqj" >/dev/null
    if ! cmp -s "$journal_dir/$bench-a.csqj" "$journal_dir/$bench-b.csqj"; then
        echo "journal gate: $bench wrote different journal bytes across two identical runs" >&2
        exit 1
    fi
    if ! "$conseq_diff_bin" "$journal_dir/$bench-a.csqj" "$journal_dir/$bench-b.csqj" >/dev/null; then
        echo "journal gate: conseq-diff reported divergence between identical $bench journals" >&2
        exit 1
    fi
    echo "   $bench ok (goldens unmoved, two journaled runs byte-identical)"
done

# Planted sync divergence: swap two adjacent token grants and demand the
# exact seq back.
"$conseq_diff_bin" -perturb swap-grant -at 100 -o "$journal_dir/swap.csqj" "$journal_dir/water_nsquared-a.csqj" >/dev/null
if rep=$("$conseq_diff_bin" "$journal_dir/water_nsquared-a.csqj" "$journal_dir/swap.csqj"); then
    echo "journal gate: conseq-diff missed the planted grant swap" >&2
    exit 1
fi
if ! printf '%s\n' "$rep" | grep -q "first divergent event at seq 100"; then
    echo "journal gate: conseq-diff mislocalized the planted grant swap:" >&2
    printf '%s\n' "$rep" >&2
    exit 1
fi
# Planted memory divergence: flip one committed page hash and demand the
# commit-level report, in JSON for the machine-readable path.
"$conseq_diff_bin" -perturb flip-page -at 5 -o "$journal_dir/flip.csqj" "$journal_dir/water_nsquared-a.csqj" >/dev/null
if rep=$("$conseq_diff_bin" -json "$journal_dir/water_nsquared-a.csqj" "$journal_dir/flip.csqj"); then
    echo "journal gate: conseq-diff missed the planted page flip" >&2
    exit 1
fi
if ! printf '%s\n' "$rep" | grep -q '"kind": "commit"'; then
    echo "journal gate: conseq-diff mislocalized the planted page flip:" >&2
    printf '%s\n' "$rep" >&2
    exit 1
fi
# Live re-execution: replaying the run from the journal's own metadata
# must reproduce it exactly.
if ! "$conseq_diff_bin" -live "$journal_dir/histogram-a.csqj" >/dev/null; then
    echo "journal gate: live re-execution diverged from the recorded journal" >&2
    exit 1
fi
echo "   conseq-diff ok (planted swap + page flip localized, live replay equivalent)"

echo "== scheduler bench (BENCH_sched.json)"
BENCHTIME=200x ./scripts/bench_sched.sh >/dev/null

echo "check: OK"
