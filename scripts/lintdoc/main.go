// Command lintdoc enforces godoc coverage on a package's exported
// surface: every exported type, function, method (on an exported
// receiver), and const/var block must carry a doc comment. It is the
// scripts/check.sh lint step for internal/det, whose exported API the
// scheduler design doc (docs/scheduler.md) leans on; stdlib-only, so the
// gate needs no tools beyond the toolchain.
//
// Usage: lintdoc [package-dir ...]   (default ./internal/det)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"./internal/det"}
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdoc:", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d exported declaration(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory (tests excluded) and returns a
// "file:line: name" entry for every undocumented exported declaration.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					// A doc comment on the block covers every spec in it
					// (the const/iota idiom); otherwise each exported spec
					// needs its own.
					if d.Doc != nil {
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, name := range s.Names {
								if name.IsExported() {
									report(name.Pos(), d.Tok.String(), name.Name)
									break
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the godoc surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}
