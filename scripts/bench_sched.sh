#!/bin/sh
# Scheduler micro-benchmarks: the token ping-pong (BenchmarkTokenHandoff)
# at 1 and 4 arbitration shards, the thread fork/join lifecycle
# (BenchmarkForkJoin) legacy vs pooled, and the per-shard granting sweep
# (BenchmarkGrantParallel at 1/2/4/8 shards; see docs/scheduler.md stage
# 2). Emits BENCH_sched.json in the repo root — machine-readable ns/op so
# perf regressions in the scheduler hot paths are diffable across commits
# (scripts/check.sh compares a fresh run against the committed file with a
# tolerance band). Run via `make bench-sched` or scripts/check.sh (smoke
# iterations there; the default here is larger).
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2000x}"
out="${1:-BENCH_sched.json}"

raw=$(go test -run=NONE -bench 'BenchmarkTokenHandoff|BenchmarkForkJoin|BenchmarkGrantParallel' \
    -benchtime "$benchtime" ./internal/det)

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    iters[n] = $2; ns[n] = $3; names[n] = name; n++
}
END {
    if (n == 0) { print "bench_sched: no benchmark output parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 0; i < n; i++)
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}%s\n",
            names[i], iters[i], ns[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
}' > "$out"

echo "bench_sched: wrote $out"
cat "$out"
