#!/bin/sh
# Commit-log micro-benchmarks: the append hot path (BenchmarkCommitLogAppend
# — a committing thread handing one version's diffs to the drain goroutine,
# with the encoded log bytes per commit reported alongside) and full-log
# reconstruction (BenchmarkReplay — commits replayed per op across segment
# and snapshot boundaries). Emits BENCH_commitlog.json in the repo root —
# machine-readable ns/op plus the append path's throughput (MB/s of diff
# bytes) and bytes-per-commit encoding overhead, so regressions in the
# record/replay paths are diffable across commits. Run via
# `make bench-commitlog` (smoke iterations via BENCHTIME, as in
# bench_sched.sh; the default here is larger).
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2000x}"
out="${1:-BENCH_commitlog.json}"

raw=$(go test -run=NONE -bench 'BenchmarkCommitLogAppend|BenchmarkReplay' \
    -benchtime "$benchtime" ./internal/commitlog)

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    names[n] = name; iters[n] = $2; ns[n] = $3
    # Optional per-benchmark metrics emitted by ReportMetric/SetBytes:
    # "NNN MB/s", "NNN logbytes/commit", "NNN commits/op".
    mbs[n] = lbc[n] = cpo[n] = ""
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "MB/s") mbs[n] = $i
        if ($(i+1) == "logbytes/commit") lbc[n] = $i
        if ($(i+1) == "commits/op") cpo[n] = $i
    }
    n++
}
END {
    if (n == 0) { print "bench_commitlog: no benchmark output parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", names[i], iters[i], ns[i]
        if (mbs[i] != "") printf ", \"mb_per_s\": %s", mbs[i]
        if (lbc[i] != "") printf ", \"logbytes_per_commit\": %s", lbc[i]
        if (cpo[i] != "") printf ", \"commits_per_op\": %s", cpo[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' > "$out"

echo "bench_commitlog: wrote $out"
cat "$out"
