#!/bin/sh
# Divergence-observatory smoke (`make diff-smoke`): journal one golden
# run twice, check the journals are byte-identical, then plant a swapped
# token grant with conseq-diff's perturb mode and let the diff localize
# it. A quick end-to-end tour of docs/divergence.md; the full gate lives
# in scripts/check.sh.
set -eu

cd "$(dirname "$0")/.."

bench=${BENCH:-water_nsquared}
at=${AT:-100}
dir=$(mktemp -d -t diffsmoke.XXXXXX)
trap 'rm -rf "$dir"' EXIT

echo "== journaling two runs of $bench"
go run ./cmd/detrun -bench "$bench" -threads 8 -scale 1 -seed 42 -journal "$dir/a.csqj" | grep '^journal'
go run ./cmd/detrun -bench "$bench" -threads 8 -scale 1 -seed 42 -journal "$dir/b.csqj" >/dev/null
cmp "$dir/a.csqj" "$dir/b.csqj"
echo "   byte-identical"

echo "== planting a grant swap at seq $at and diffing"
go run ./cmd/conseq-diff -perturb swap-grant -at "$at" -o "$dir/p.csqj" "$dir/a.csqj"
if go run ./cmd/conseq-diff "$dir/a.csqj" "$dir/p.csqj"; then
    echo "diff-smoke: conseq-diff missed the planted divergence" >&2
    exit 1
fi
echo "diff-smoke: OK (divergence localized)"
