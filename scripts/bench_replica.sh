#!/bin/sh
# Replica-fleet micro-benchmarks: the versioned read path
# (BenchmarkReplicaReads — ReadAt against an admitted follower, with the
# fleet's reads/s reported alongside) and crash recovery
# (BenchmarkRestartCatchup — a follower rebuilt from the newest retained
# snapshot plus the log tail, ns per restart-to-caught-up cycle). Emits
# BENCH_replica.json in the repo root — machine-readable ns/op plus the
# read throughput and restart latency, so regressions in the follower
# read and recovery paths are diffable across commits. Run via
# `make bench-replica` (smoke iterations via BENCHTIME, as in
# bench_sched.sh).
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2000x}"
out="${1:-BENCH_replica.json}"

raw=$(go test -run=NONE -bench 'BenchmarkReplicaReads|BenchmarkRestartCatchup' \
    -benchtime "$benchtime" ./internal/replica)

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    names[n] = name; iters[n] = $2; ns[n] = $3
    # Optional per-benchmark metrics emitted by ReportMetric:
    # "NNN reads/s", "NNN ns/restart".
    rps[n] = nsr[n] = ""
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "reads/s") rps[n] = $i
        if ($(i+1) == "ns/restart") nsr[n] = $i
    }
    n++
}
END {
    if (n == 0) { print "bench_replica: no benchmark output parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", names[i], iters[i], ns[i]
        if (rps[i] != "") printf ", \"reads_per_s\": %s", rps[i]
        if (nsr[i] != "") printf ", \"ns_per_restart\": %s", nsr[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' > "$out"

echo "bench_replica: wrote $out"
cat "$out"
