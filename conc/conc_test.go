package conc_test

import (
	"fmt"
	"testing"
	"time"

	"repro/conc"
	"repro/internal/api"
	"repro/internal/baseline/pth"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
)

// run executes prog on the named runtime and returns its checksum.
func run(t *testing.T, rtName string, h host.Host, prog func(api.T)) uint64 {
	t.Helper()
	var rt api.Runtime
	var err error
	switch rtName {
	case "det":
		c := det.Default()
		c.SegmentSize = 1 << 20
		rt, err = det.New(c, h)
	case "pth":
		rt, err = pth.New(pth.Config{SegmentSize: 1 << 20, Model: costmodel.Default()}, h)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(prog); err != nil {
		t.Fatal(err)
	}
	return rt.Checksum()
}

func hosts() map[string]func() host.Host {
	return map[string]func() host.Host{
		"sim":  func() host.Host { return simhost.New(costmodel.Default()) },
		"real": func() host.Host { return realhost.New(50*time.Microsecond, 3) },
	}
}

func TestQueueFIFOAndCompletion(t *testing.T) {
	const items = 30
	prog := func(root api.T) {
		q := conc.NewQueue(root, 256, 4, 1)
		consumer := root.Spawn(func(w api.T) {
			expect := uint64(1)
			for {
				v, ok := q.Get(w)
				if !ok {
					break
				}
				if v != expect {
					panic(fmt.Sprintf("queue out of order: got %d want %d", v, expect))
				}
				expect++
			}
			api.PutU64(w, 8192, expect-1)
		})
		for i := 1; i <= items; i++ {
			q.Put(root, uint64(i))
		}
		q.ProducerDone(root)
		root.Join(consumer)
		if got := api.U64(root, 8192); got != items {
			panic(fmt.Sprintf("consumed %d items, want %d", got, items))
		}
	}
	for _, rtName := range []string{"det", "pth"} {
		for hName, mk := range hosts() {
			t.Run(rtName+"/"+hName, func(t *testing.T) {
				run(t, rtName, mk(), prog)
			})
		}
	}
}

func TestQueueMultiProducerConsumer(t *testing.T) {
	const producers, consumers, perProducer = 3, 2, 20
	prog := func(root api.T) {
		q := conc.NewQueue(root, 256, 8, producers)
		var hs []api.Handle
		for p := 0; p < producers; p++ {
			p := p
			hs = append(hs, root.Spawn(func(w api.T) {
				for i := 0; i < perProducer; i++ {
					q.Put(w, uint64(p*1000+i))
				}
				q.ProducerDone(w)
			}))
		}
		for c := 0; c < consumers; c++ {
			c := c
			hs = append(hs, root.Spawn(func(w api.T) {
				var n, sum uint64
				for {
					v, ok := q.Get(w)
					if !ok {
						break
					}
					n++
					sum += v
				}
				api.PutU64(w, 8192+16*c, n)
				api.PutU64(w, 8200+16*c, sum)
			}))
		}
		for _, h := range hs {
			root.Join(h)
		}
		var n, sum uint64
		for c := 0; c < consumers; c++ {
			n += api.U64(root, 8192+16*c)
			sum += api.U64(root, 8200+16*c)
		}
		wantN := uint64(producers * perProducer)
		var wantSum uint64
		for p := 0; p < producers; p++ {
			for i := 0; i < perProducer; i++ {
				wantSum += uint64(p*1000 + i)
			}
		}
		if n != wantN || sum != wantSum {
			panic(fmt.Sprintf("consumed n=%d sum=%d, want n=%d sum=%d", n, sum, wantN, wantSum))
		}
	}
	for hName, mk := range hosts() {
		t.Run(hName, func(t *testing.T) {
			run(t, "det", mk(), prog)
		})
	}
}

func TestQueueCloseUnblocksConsumers(t *testing.T) {
	prog := func(root api.T) {
		q := conc.NewQueue(root, 256, 4, 99) // producers never finish
		c := root.Spawn(func(w api.T) {
			if _, ok := q.Get(w); ok {
				panic("got a value from an empty closed queue")
			}
		})
		root.Compute(10_000)
		q.Close(root)
		root.Join(c)
	}
	run(t, "det", simhost.New(costmodel.Default()), prog)
}

func TestWaitGroup(t *testing.T) {
	prog := func(root api.T) {
		wg := conc.NewWaitGroup(root, 256, 0)
		wg.Add(root, 3)
		for i := 0; i < 3; i++ {
			i := i
			root.Spawn(func(w api.T) {
				w.Compute(int64(1000 * (i + 1)))
				api.AddU64(w, 512+8*i, 1) // racy-free: distinct slots
				wg.Done(w)
			})
		}
		wg.Wait(root)
		// All three slots must be visible after Wait.
		for i := 0; i < 3; i++ {
			if api.U64(root, 512+8*i) != 1 {
				panic(fmt.Sprintf("slot %d not visible after Wait", i))
			}
		}
	}
	for hName, mk := range hosts() {
		t.Run(hName, func(t *testing.T) {
			run(t, "det", mk(), prog)
		})
	}
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	const permits = 2
	prog := func(root api.T) {
		sem := conc.NewSemaphore(root, 256, permits)
		gauge := root.NewMutex() // protects the in-section counter
		var hs []api.Handle
		for i := 0; i < 6; i++ {
			hs = append(hs, root.Spawn(func(w api.T) {
				sem.Acquire(w)
				w.Lock(gauge)
				cur := api.AddU64(w, 512, 1)
				if max := api.U64(w, 520); cur > max {
					api.PutU64(w, 520, cur)
				}
				w.Unlock(gauge)
				w.Compute(2000)
				w.Lock(gauge)
				api.PutU64(w, 512, api.U64(w, 512)-1)
				w.Unlock(gauge)
				sem.Release(w)
			}))
		}
		for _, h := range hs {
			root.Join(h)
		}
		if max := api.U64(root, 520); max > permits {
			panic(fmt.Sprintf("semaphore admitted %d concurrent holders (permits %d)", max, permits))
		}
	}
	for hName, mk := range hosts() {
		t.Run(hName, func(t *testing.T) {
			run(t, "det", mk(), prog)
		})
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	prog := func(root api.T) {
		sem := conc.NewSemaphore(root, 256, 1)
		if !sem.TryAcquire(root) {
			panic("first TryAcquire failed")
		}
		if sem.TryAcquire(root) {
			panic("second TryAcquire succeeded")
		}
		sem.Release(root)
		if !sem.TryAcquire(root) {
			panic("TryAcquire after release failed")
		}
	}
	run(t, "det", simhost.New(costmodel.Default()), prog)
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	prog := func(root api.T) {
		once := conc.NewOnce(root, 256)
		var hs []api.Handle
		for i := 0; i < 4; i++ {
			hs = append(hs, root.Spawn(func(w api.T) {
				once.Do(w, func(w api.T) {
					w.Compute(5000)
					api.AddU64(w, 512, 1)
				})
				// Initialization must be visible after Do returns.
				if api.U64(w, 512) != 1 {
					panic("Once returned before initialization was visible")
				}
			}))
		}
		for _, h := range hs {
			root.Join(h)
		}
		if got := api.U64(root, 512); got != 1 {
			panic(fmt.Sprintf("Once ran %d times", got))
		}
	}
	for hName, mk := range hosts() {
		t.Run(hName, func(t *testing.T) {
			run(t, "det", mk(), prog)
		})
	}
}

func TestRWMutexReadersShareWritersExclude(t *testing.T) {
	prog := func(root api.T) {
		rw := conc.NewRWMutex(root, 256)
		gauge := root.NewMutex()
		var hs []api.Handle
		// Readers record their max concurrency; writers assert exclusivity.
		for i := 0; i < 4; i++ {
			hs = append(hs, root.Spawn(func(w api.T) {
				for k := 0; k < 5; k++ {
					rw.RLock(w)
					w.Lock(gauge)
					cur := api.AddU64(w, 512, 1)
					if max := api.U64(w, 520); cur > max {
						api.PutU64(w, 520, cur)
					}
					w.Unlock(gauge)
					w.Compute(1000)
					w.Lock(gauge)
					api.PutU64(w, 512, api.U64(w, 512)-1)
					w.Unlock(gauge)
					rw.RUnlock(w)
				}
			}))
		}
		for i := 0; i < 2; i++ {
			hs = append(hs, root.Spawn(func(w api.T) {
				for k := 0; k < 3; k++ {
					rw.Lock(w)
					if api.U64(w, 512) != 0 {
						panic("writer saw active readers")
					}
					api.AddU64(w, 528, 1)
					w.Compute(1500)
					rw.Unlock(w)
				}
			}))
		}
		for _, h := range hs {
			root.Join(h)
		}
		if api.U64(root, 520) < 2 {
			// Not a hard failure on all schedules, but under these loads
			// readers should overlap; record it for visibility.
			api.PutU64(root, 536, 1)
		}
		if api.U64(root, 528) != 6 {
			panic("writer sections lost")
		}
	}
	for hName, mk := range hosts() {
		t.Run(hName, func(t *testing.T) {
			run(t, "det", mk(), prog)
		})
	}
}

func TestPrimitivesDeterministic(t *testing.T) {
	// The composite program mixes all primitives; checksums must agree
	// across sim and perturbed real hosts.
	prog := func(root api.T) {
		q := conc.NewQueue(root, 256, 4, 2)
		wg := conc.NewWaitGroup(root, 1024, 2)
		once := conc.NewOnce(root, 1032)
		for p := 0; p < 2; p++ {
			p := p
			root.Spawn(func(w api.T) {
				once.Do(w, func(w api.T) { api.PutU64(w, 1040, 77) })
				for i := 0; i < 10; i++ {
					q.Put(w, uint64(p*100+i))
				}
				q.ProducerDone(w)
				wg.Done(w)
			})
		}
		var sum uint64
		for {
			v, ok := q.Get(root)
			if !ok {
				break
			}
			sum += v
		}
		wg.Wait(root)
		api.PutU64(root, 2048, sum)
	}
	a := run(t, "det", simhost.New(costmodel.Default()), prog)
	b := run(t, "det", realhost.New(100*time.Microsecond, 11), prog)
	c := run(t, "det", realhost.New(100*time.Microsecond, 77), prog)
	if a != b || b != c {
		t.Fatalf("conc primitives nondeterministic: %x %x %x", a, b, c)
	}
}
