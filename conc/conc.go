// Package conc is a toolkit of higher-level deterministic concurrency
// primitives built from the runtime's mutexes and condition variables:
// bounded queues, wait groups, semaphores, once-cells and reader–writer
// locks. Everything is runtime-neutral (it works against any api.T — the
// Consequence runtimes, the baselines, the pthreads model) and keeps its
// state in the shared segment, so behaviour under a deterministic runtime
// is deterministic like any other program state.
//
// Primitives store their state at caller-chosen byte offsets; each type's
// Bytes constant/function says how much space it needs. Keeping layout in
// the caller's hands mirrors how the underlying segment works and keeps
// the package allocation-free.
package conc

import "repro/internal/api"

// Queue is a bounded multi-producer multi-consumer FIFO of uint64 values,
// the pipeline idiom of dedup and ferret. Layout at base: head u64,
// tail u64, producersLeft u64, ring[capacity]u64.
type Queue struct {
	m        api.Mutex
	notEmpty api.Cond
	notFull  api.Cond
	base     int
	capacity int
}

// QueueBytes returns the shared-memory footprint of a queue with the
// given capacity.
func QueueBytes(capacity int) int { return 24 + 8*capacity }

// NewQueue creates a queue at the given base offset. producers is the
// number of ProducerDone calls after which a drained queue reports
// closed to Get.
func NewQueue(t api.T, base, capacity, producers int) *Queue {
	if capacity < 1 {
		panic("conc: queue capacity must be at least 1")
	}
	q := &Queue{
		m:        t.NewMutex(),
		notEmpty: t.NewCond(),
		notFull:  t.NewCond(),
		base:     base,
		capacity: capacity,
	}
	api.PutU64(t, base, 0)
	api.PutU64(t, base+8, 0)
	api.PutU64(t, base+16, uint64(producers))
	return q
}

// Put enqueues v, blocking while the queue is full.
func (q *Queue) Put(t api.T, v uint64) {
	t.Lock(q.m)
	for api.U64(t, q.base+8)-api.U64(t, q.base) == uint64(q.capacity) {
		t.Wait(q.notFull, q.m)
	}
	tail := api.U64(t, q.base+8)
	api.PutU64(t, q.base+24+8*int(tail%uint64(q.capacity)), v)
	api.PutU64(t, q.base+8, tail+1)
	t.Signal(q.notEmpty)
	t.Unlock(q.m)
}

// Get dequeues one value; ok=false means every producer has finished and
// the queue is drained.
func (q *Queue) Get(t api.T) (v uint64, ok bool) {
	t.Lock(q.m)
	for {
		head, tail := api.U64(t, q.base), api.U64(t, q.base+8)
		if head != tail {
			v = api.U64(t, q.base+24+8*int(head%uint64(q.capacity)))
			api.PutU64(t, q.base, head+1)
			t.Signal(q.notFull)
			t.Unlock(q.m)
			return v, true
		}
		if api.U64(t, q.base+16) == 0 {
			t.Unlock(q.m)
			return 0, false
		}
		t.Wait(q.notEmpty, q.m)
	}
}

// ProducerDone retires one producer, waking consumers blocked on an empty
// queue so they can observe completion.
func (q *Queue) ProducerDone(t api.T) {
	t.Lock(q.m)
	left := api.U64(t, q.base+16)
	if left == 0 {
		t.Unlock(q.m)
		panic("conc: ProducerDone called more times than producers")
	}
	api.PutU64(t, q.base+16, left-1)
	if left == 1 {
		t.Broadcast(q.notEmpty)
	}
	t.Unlock(q.m)
}

// Close force-closes the queue regardless of outstanding producers;
// drained Gets return ok=false afterwards.
func (q *Queue) Close(t api.T) {
	t.Lock(q.m)
	api.PutU64(t, q.base+16, 0)
	t.Broadcast(q.notEmpty)
	t.Unlock(q.m)
}

// Len reports the current queue length (racy unless externally
// synchronized, like len() on a Go channel).
func (q *Queue) Len(t api.T) int {
	t.Lock(q.m)
	n := int(api.U64(t, q.base+8) - api.U64(t, q.base))
	t.Unlock(q.m)
	return n
}

// WaitGroup counts outstanding work in shared memory. Layout at base:
// count u64.
type WaitGroup struct {
	m    api.Mutex
	zero api.Cond
	base int
}

// WaitGroupBytes is the shared-memory footprint of a WaitGroup.
const WaitGroupBytes = 8

// NewWaitGroup creates a wait group at base with an initial count.
func NewWaitGroup(t api.T, base int, initial int) *WaitGroup {
	wg := &WaitGroup{m: t.NewMutex(), zero: t.NewCond(), base: base}
	api.PutU64(t, base, uint64(initial))
	return wg
}

// Add adjusts the count by n (may be negative).
func (wg *WaitGroup) Add(t api.T, n int) {
	t.Lock(wg.m)
	c := int64(api.U64(t, wg.base)) + int64(n)
	if c < 0 {
		t.Unlock(wg.m)
		panic("conc: negative WaitGroup count")
	}
	api.PutU64(t, wg.base, uint64(c))
	if c == 0 {
		t.Broadcast(wg.zero)
	}
	t.Unlock(wg.m)
}

// Done decrements the count by one.
func (wg *WaitGroup) Done(t api.T) { wg.Add(t, -1) }

// Wait blocks until the count reaches zero.
func (wg *WaitGroup) Wait(t api.T) {
	t.Lock(wg.m)
	for api.U64(t, wg.base) != 0 {
		t.Wait(wg.zero, wg.m)
	}
	t.Unlock(wg.m)
}

// Semaphore is a counting semaphore. Layout at base: permits u64.
type Semaphore struct {
	m    api.Mutex
	free api.Cond
	base int
}

// SemaphoreBytes is the shared-memory footprint of a Semaphore.
const SemaphoreBytes = 8

// NewSemaphore creates a semaphore at base with the given permits.
func NewSemaphore(t api.T, base int, permits int) *Semaphore {
	s := &Semaphore{m: t.NewMutex(), free: t.NewCond(), base: base}
	api.PutU64(t, base, uint64(permits))
	return s
}

// Acquire takes one permit, blocking while none are free.
func (s *Semaphore) Acquire(t api.T) {
	t.Lock(s.m)
	for api.U64(t, s.base) == 0 {
		t.Wait(s.free, s.m)
	}
	api.PutU64(t, s.base, api.U64(t, s.base)-1)
	t.Unlock(s.m)
}

// TryAcquire takes a permit if one is free, without blocking.
func (s *Semaphore) TryAcquire(t api.T) bool {
	t.Lock(s.m)
	defer t.Unlock(s.m)
	if api.U64(t, s.base) == 0 {
		return false
	}
	api.PutU64(t, s.base, api.U64(t, s.base)-1)
	return true
}

// Release returns one permit.
func (s *Semaphore) Release(t api.T) {
	t.Lock(s.m)
	api.PutU64(t, s.base, api.U64(t, s.base)+1)
	t.Signal(s.free)
	t.Unlock(s.m)
}

// Once runs a function exactly once across all threads. Layout at base:
// state u64 (0 new, 1 running, 2 done).
type Once struct {
	m    api.Mutex
	done api.Cond
	base int
}

// OnceBytes is the shared-memory footprint of a Once.
const OnceBytes = 8

// NewOnce creates a once-cell at base.
func NewOnce(t api.T, base int) *Once {
	o := &Once{m: t.NewMutex(), done: t.NewCond(), base: base}
	api.PutU64(t, base, 0)
	return o
}

// Do runs fn if no thread has yet; other callers block until the first
// completes (sync.Once semantics). Which thread runs fn is deterministic
// under a deterministic runtime.
func (o *Once) Do(t api.T, fn func(api.T)) {
	t.Lock(o.m)
	switch api.U64(t, o.base) {
	case 0:
		api.PutU64(t, o.base, 1)
		t.Unlock(o.m)
		fn(t)
		t.Lock(o.m)
		api.PutU64(t, o.base, 2)
		t.Broadcast(o.done)
		t.Unlock(o.m)
	case 1:
		for api.U64(t, o.base) != 2 {
			t.Wait(o.done, o.m)
		}
		t.Unlock(o.m)
	default:
		t.Unlock(o.m)
	}
}

// RWMutex is a writer-preferring readers–writer lock. Layout at base:
// readers u64, writerActive u64, writersWaiting u64.
type RWMutex struct {
	m       api.Mutex
	canRead api.Cond
	canWrit api.Cond
	base    int
}

// RWMutexBytes is the shared-memory footprint of an RWMutex.
const RWMutexBytes = 24

// NewRWMutex creates a readers–writer lock at base.
func NewRWMutex(t api.T, base int) *RWMutex {
	rw := &RWMutex{m: t.NewMutex(), canRead: t.NewCond(), canWrit: t.NewCond(), base: base}
	for i := 0; i < RWMutexBytes; i += 8 {
		api.PutU64(t, base+i, 0)
	}
	return rw
}

// RLock acquires a shared (read) lock.
func (rw *RWMutex) RLock(t api.T) {
	t.Lock(rw.m)
	for api.U64(t, rw.base+8) != 0 || api.U64(t, rw.base+16) != 0 {
		t.Wait(rw.canRead, rw.m)
	}
	api.PutU64(t, rw.base, api.U64(t, rw.base)+1)
	t.Unlock(rw.m)
}

// RUnlock releases a shared lock.
func (rw *RWMutex) RUnlock(t api.T) {
	t.Lock(rw.m)
	r := api.U64(t, rw.base)
	if r == 0 {
		t.Unlock(rw.m)
		panic("conc: RUnlock without RLock")
	}
	api.PutU64(t, rw.base, r-1)
	if r == 1 {
		t.Signal(rw.canWrit)
	}
	t.Unlock(rw.m)
}

// Lock acquires the exclusive (write) lock; waiting writers block new
// readers (writer preference).
func (rw *RWMutex) Lock(t api.T) {
	t.Lock(rw.m)
	api.PutU64(t, rw.base+16, api.U64(t, rw.base+16)+1)
	for api.U64(t, rw.base) != 0 || api.U64(t, rw.base+8) != 0 {
		t.Wait(rw.canWrit, rw.m)
	}
	api.PutU64(t, rw.base+16, api.U64(t, rw.base+16)-1)
	api.PutU64(t, rw.base+8, 1)
	t.Unlock(rw.m)
}

// Unlock releases the exclusive lock.
func (rw *RWMutex) Unlock(t api.T) {
	t.Lock(rw.m)
	if api.U64(t, rw.base+8) == 0 {
		t.Unlock(rw.m)
		panic("conc: Unlock without Lock")
	}
	api.PutU64(t, rw.base+8, 0)
	if api.U64(t, rw.base+16) != 0 {
		t.Signal(rw.canWrit)
	} else {
		t.Broadcast(rw.canRead)
	}
	t.Unlock(rw.m)
}
