// Package consequence is a deterministic multithreading library for Go —
// a reproduction of "High-Performance Determinism with Total Store Order
// Consistency" (Merrifield, Devietti, Eriksson; EuroSys 2015).
//
// A program written against this package executes with real parallelism
// (goroutines), yet its synchronization order, its shared-memory contents,
// and therefore its output are a pure function of the program and its
// inputs: rerunning produces bit-identical results, regardless of OS
// scheduling, even for programs with data races.
//
// Threads operate on a byte-addressed shared segment through Read/Write
// (their writes are store-buffered in isolated workspaces and published at
// synchronization operations, preserving total-store-order consistency),
// synchronize through deterministic mutexes, condition variables and
// barriers, and account their local work with Compute — the
// instruction-count logical clock that orders all synchronization
// (the Kendo/GMIC discipline).
//
//	rt, _ := consequence.New(consequence.WithSegmentSize(1 << 20))
//	err := rt.Run(func(t consequence.T) {
//	    m := t.NewMutex()
//	    h := t.Spawn(func(t consequence.T) {
//	        t.Lock(m)
//	        consequence.AddU64(t, 0, 1)
//	        t.Unlock(m)
//	    })
//	    t.Join(h)
//	})
//
// For modeling and benchmarking, WithSimulatedTime runs the same program
// on a deterministic discrete-event simulator with a calibrated cost model
// — this is how the repository regenerates the paper's figures (see
// cmd/consequence-bench).
package consequence

import (
	"fmt"
	"io"
	"time"

	"repro/internal/api"
	"repro/internal/clock"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/trace"
)

// T is a thread's view of the runtime: memory access, synchronization,
// and thread management. See the internal/api documentation for the full
// contract of each method.
type T = api.T

// Mutex, Cond, Barrier and Handle are the synchronization object handles
// created through a T.
type (
	Mutex   = api.Mutex
	Cond    = api.Cond
	Barrier = api.Barrier
	Handle  = api.Handle
)

// Stats aggregates a completed run.
type Stats = api.RunStats

// Ordering selects the deterministic synchronization order.
type Ordering int

// Orderings.
const (
	// OrderingIC orders synchronization by instruction count (the paper's
	// Consequence-IC; the default and the high-performance choice).
	OrderingIC Ordering = iota
	// OrderingRR orders synchronization round-robin (Consequence-RR).
	OrderingRR
)

// Option customizes a Runtime.
type Option func(*options)

type options struct {
	cfg     det.Config
	sim     bool
	perturb time.Duration
	seed    int64
	observe bool
}

// WithSegmentSize sets the shared segment size in bytes (default 16 MiB).
func WithSegmentSize(n int) Option {
	return func(o *options) { o.cfg.SegmentSize = n }
}

// WithOrdering selects the synchronization ordering policy.
func WithOrdering(ord Ordering) Option {
	return func(o *options) {
		if ord == OrderingRR {
			o.cfg.Policy = clock.PolicyRR
		} else {
			o.cfg.Policy = clock.PolicyIC
		}
	}
}

// WithCoarsening enables or disables adaptive chunk coarsening (§3.1).
func WithCoarsening(on bool) Option {
	return func(o *options) { o.cfg.Coarsening = on }
}

// WithThreadPool enables or disables thread reuse for fork-join programs
// (§3.3).
func WithThreadPool(on bool) Option {
	return func(o *options) { o.cfg.ThreadPool = on }
}

// WithParallelBarrier enables or disables the parallel two-phase barrier
// commit (§4.2).
func WithParallelBarrier(on bool) Option {
	return func(o *options) { o.cfg.ParallelBarrier = on }
}

// WithFastForward enables or disables clock fast-forward on wakeup (§3.5).
func WithFastForward(on bool) Option {
	return func(o *options) { o.cfg.FastForward = on }
}

// WithChunkLimit bounds the number of instructions a thread may retire
// without a commit, enabling ad-hoc (flag-spinning) synchronization
// (§2.7). 0 disables the bound, as in the paper's evaluation.
func WithChunkLimit(n int64) Option {
	return func(o *options) { o.cfg.ChunkLimit = n }
}

// WithSimulatedTime runs the program on the deterministic discrete-event
// host with the default cost model instead of real goroutines. Stats then
// report virtual nanoseconds.
func WithSimulatedTime() Option {
	return func(o *options) { o.sim = true }
}

// WithPerturbation injects random delays (up to d, seeded) around every
// blocking point of the real host. Results must not change — this option
// exists to let tests and demos stress the determinism guarantee.
func WithPerturbation(d time.Duration, seed int64) Option {
	return func(o *options) { o.perturb = d; o.seed = seed }
}

// WithDetConfig applies an arbitrary transformation to the underlying
// runtime configuration — the escape hatch for experiments (static
// coarsening levels, GC budgets, cost models).
func WithDetConfig(f func(*det.Config)) Option {
	return func(o *options) { f(&o.cfg) }
}

// WithObservability attaches the runtime observability layer: a metrics
// registry and a per-thread phase timeline, retrievable after (or during)
// the run via Runtime.Observer and exportable as Chrome trace-event JSON
// via Runtime.WriteTrace. Observability never changes results — sync
// order, memory state, and Stats are identical with it on or off; without
// this option the instrumentation compiles down to nil-check fast paths.
func WithObservability() Option {
	return func(o *options) { o.observe = true }
}

// Runtime is one deterministic execution context. Create with New; a
// Runtime runs one program (Run may be called once).
type Runtime struct {
	rt *det.Runtime
	h  host.Host
}

// New creates a runtime with the given options.
func New(opts ...Option) (*Runtime, error) {
	o := options{cfg: det.Default()}
	o.cfg.Model = costmodel.Default()
	for _, opt := range opts {
		opt(&o)
	}
	var h host.Host
	if o.sim {
		if o.perturb != 0 {
			return nil, fmt.Errorf("consequence: perturbation applies only to the real host")
		}
		h = simhost.New(o.cfg.Model)
	} else {
		h = realhost.New(o.perturb, o.seed)
	}
	rt, err := det.New(o.cfg, h)
	if err != nil {
		return nil, err
	}
	if o.observe {
		rt.SetObserver(obs.New())
	}
	return &Runtime{rt: rt, h: h}, nil
}

// Run executes root as thread 0 and blocks until every thread finishes.
// On the simulated host it returns an error describing a deadlock if the
// program cannot make progress.
func (r *Runtime) Run(root func(T)) error { return r.rt.Run(root) }

// Checksum hashes the final committed memory; identical across runs.
func (r *Runtime) Checksum() uint64 { return r.rt.Checksum() }

// TraceHash hashes the deterministic synchronization order; identical
// across runs and across the real and simulated hosts.
func (r *Runtime) TraceHash() uint64 { return r.rt.Trace().Hash() }

// Trace exposes the recorded synchronization order.
func (r *Runtime) Trace() *trace.Recorder { return r.rt.Trace() }

// Stats reports the run's accumulated statistics.
func (r *Runtime) Stats() Stats { return r.rt.Stats() }

// Observer returns the observability layer attached by WithObservability,
// or nil. Its registry (metrics) may be snapshotted mid-run; its timeline
// lanes must only be read after Run returns.
func (r *Runtime) Observer() *obs.Observer { return r.rt.Observer() }

// WriteTrace exports the observed phase timeline as Chrome trace-event
// JSON (loadable in chrome://tracing or Perfetto), one lane per thread.
// name labels the process in the viewer. It is an error if the runtime
// was created without WithObservability.
func (r *Runtime) WriteTrace(w io.Writer, name string) error {
	o := r.rt.Observer()
	if o == nil {
		return fmt.Errorf("consequence: WriteTrace requires WithObservability")
	}
	return o.WriteChromeTrace(w, name)
}

// Report is the critical-path analysis of an observed run: the
// serialization critical path, per-lock token-wait attribution, per-phase
// utilization, commit/merge overlap, and chunk-coarsening what-if
// estimates. See the internal/obs/analyze documentation for how each part
// is computed; cmd/conseq-analyze is the command-line front end.
type Report = analyze.Report

// Analyze runs the critical-path analyzer over the completed run's
// timeline and returns the report. name labels the run in the report.
// Call after Run returns; it is an error if the runtime was created
// without WithObservability.
func (r *Runtime) Analyze(name string) (*Report, error) {
	o := r.rt.Observer()
	if o == nil {
		return nil, fmt.Errorf("consequence: Analyze requires WithObservability")
	}
	return analyze.Analyze(analyze.FromObserver(o, name))
}

// WriteReport analyzes the completed run and writes the human-readable
// report to w. See Analyze for the requirements.
func (r *Runtime) WriteReport(w io.Writer, name string) error {
	rep, err := r.Analyze(name)
	if err != nil {
		return err
	}
	return rep.WriteText(w)
}

// Typed accessors over the byte-addressed segment, re-exported from the
// program API for convenience.
var (
	U64    = api.U64
	PutU64 = api.PutU64
	I64    = api.I64
	PutI64 = api.PutI64
	F64    = api.F64
	PutF64 = api.PutF64
	U32    = api.U32
	PutU32 = api.PutU32
	AddU64 = api.AddU64
	AddF64 = api.AddF64
)
