# `make check` is the pre-PR gate (see README): gofmt, vet, build, test.

.PHONY: check build test fmt figures chaos

check:
	./scripts/check.sh

# Longer fault-injection sweep: every chaos profile x 5 seeds over the
# golden benchmarks, asserting results never move (see docs/robustness.md).
chaos:
	./scripts/chaos_sweep.sh

build:
	go build ./...

test:
	go test ./...

fmt:
	gofmt -w .

figures:
	go run ./cmd/consequence-bench -fig all
