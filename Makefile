# `make check` is the pre-PR gate (see README): gofmt, vet, build, test.

.PHONY: check build test fmt figures

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

fmt:
	gofmt -w .

figures:
	go run ./cmd/consequence-bench -fig all
