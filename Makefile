# `make check` is the pre-PR gate (see README): gofmt, vet, build, test.

.PHONY: check build test fmt figures chaos bench-sched bench-commitlog bench-replica diff-smoke

check:
	./scripts/check.sh

# Scheduler micro-benchmarks (token handoff, fork/join) at 1 and 4 shards;
# writes BENCH_sched.json (see docs/scheduler.md).
bench-sched:
	./scripts/bench_sched.sh

# Commit-log micro-benchmarks (append hot path, full-log replay); writes
# BENCH_commitlog.json (see docs/commitlog.md).
bench-commitlog:
	./scripts/bench_commitlog.sh

# Replica-fleet micro-benchmarks (versioned reads, restart-to-caught-up);
# writes BENCH_replica.json (see docs/replication.md).
bench-replica:
	./scripts/bench_replica.sh

# Longer fault-injection sweep: every chaos profile x 5 seeds over the
# golden benchmarks, asserting results never move (see docs/robustness.md).
chaos:
	./scripts/chaos_sweep.sh

# Divergence-observatory smoke: journal a golden run twice (byte-identical
# by construction), plant a swapped token grant, and let conseq-diff
# localize it (see docs/divergence.md).
diff-smoke:
	./scripts/diff_smoke.sh

build:
	go build ./...

test:
	go test ./...

fmt:
	gofmt -w .

figures:
	go run ./cmd/consequence-bench -fig all
