package predict

import (
	"slices"
	"testing"
)

// The prediction perturb hook rewrites only the newly appended portion of
// the result — an existing dst prefix must pass through untouched — and a
// nil hook restores exact predictions.
func TestPredictPerturbScope(t *testing.T) {
	tb := New()
	tb.Train(1, []int{10, 20, 30})

	// Drop the middle page of whatever the table predicted.
	tb.SetPerturb(func(pages []int) []int {
		return append(pages[:1], pages[2:]...)
	})
	dst := []int{7, 8} // pre-existing prefix must survive unmodified
	got := tb.Predict(1, dst)
	want := []int{7, 8, 10, 30}
	if !slices.Equal(got, want) {
		t.Fatalf("Predict = %v, want %v", got, want)
	}

	tb.SetPerturb(nil)
	if got := tb.Predict(1, nil); !slices.Equal(got, []int{10, 20, 30}) {
		t.Fatalf("Predict after removing perturb = %v, want full set", got)
	}
}

// A site with no history predicts nothing; the perturb must not run at all
// (it could otherwise invent pages from an empty prediction).
func TestPredictPerturbNotRunOnEmpty(t *testing.T) {
	tb := New()
	ran := false
	tb.SetPerturb(func(pages []int) []int { ran = true; return append(pages, 99) })
	if got := tb.Predict(42, nil); len(got) != 0 {
		t.Fatalf("untrained site predicted %v", got)
	}
	if ran {
		t.Fatal("perturb ran for an untrained site")
	}
}
