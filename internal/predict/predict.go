// Package predict implements per-chunk write-set prediction: a
// deterministic history table that records, for every (thread, sync-site)
// pair, which pages the chunk following that site wrote, and predicts the
// same set on the site's next visit.
//
// The deterministic runtime uses the prediction to pre-populate (fault in)
// a chunk's pages while the thread is still waiting for its turn in the
// global token order — the same window Thread.speculate already uses for
// pre-import and pre-diffing — so copy-on-write fault servicing moves off
// the serialized critical path. This mirrors how Determinator-style
// systems hide private-workspace population costs (Aviram et al., OSDI
// 2010) and extends the paper's §3 theme of overlapping work with the
// deterministic-order wait.
//
// Prediction is advisory only: the consumer must guarantee that a
// misprediction wastes only off-critical-path work and never changes
// memory contents, sync order, or commit order (mem.Workspace.Prepopulate
// provides exactly that guarantee). The table itself is deterministic by
// construction — every Table is owned by a single thread, keyed by
// deterministic sync-site ids, fed deterministic page sets in program
// order, and evicted by a visit-counter LRU (never wall time) — so the
// modeled prefetch costs on the simulation host reproduce exactly.
package predict

import (
	"slices"
	"sort"
)

const (
	// DefaultSiteCap bounds the number of sync sites a table retains;
	// the least-recently-touched site is evicted beyond it. The cap keeps
	// the per-thread footprint bounded on programs that create sync
	// objects without bound (object ids are never reused, so dead sites
	// age out naturally).
	DefaultSiteCap = 256
	// DefaultPageCap bounds the pages stored per site. Chunks writing
	// more pages than this have their observation truncated (lowest page
	// indexes kept): a partial prefetch still hides that many faults,
	// while an unbounded set would let one huge chunk pin arbitrary
	// history memory.
	DefaultPageCap = 2048
)

// Table is one thread's write-set history. It is NOT safe for concurrent
// use: like the unlock chunk estimators in the deterministic runtime, each
// thread owns exactly one table and consults it only from its own
// goroutine/proc.
type Table struct {
	siteCap int
	pageCap int
	sites   map[uint64]*site
	// tick is the table's logical clock: every Train or Predict touch of
	// a site stamps it, and eviction removes the smallest stamp. Stamps
	// are unique, so the eviction victim is unique — map iteration order
	// cannot leak into behaviour.
	tick uint64

	// stats, reported by the runtime's metrics layer.
	trains, predicts, evictions int64

	// perturb, when set, rewrites every prediction Predict returns (chaos
	// injection: forced mispredictions). It may drop pages but must keep
	// the remaining ones in order; it must never invent pages, which
	// would turn the guaranteed-waste bound of a misprediction from
	// "pages the chunk wrote last visit" into arbitrary memory. Safe
	// because predictions are advisory by contract.
	perturb func(pages []int) []int
}

// site is one sync site's history.
type site struct {
	// pages is the write set observed on the site's most recent visit,
	// ascending and deduplicated.
	pages []int
	// stamp is the table tick of the last touch (LRU key).
	stamp uint64
	// trained counts observations recorded for the site.
	trained int
}

// New creates a table with the default capacities.
func New() *Table { return NewSized(DefaultSiteCap, DefaultPageCap) }

// NewSized creates a table with explicit site and per-site page bounds
// (values <= 0 select the defaults).
func NewSized(siteCap, pageCap int) *Table {
	if siteCap <= 0 {
		siteCap = DefaultSiteCap
	}
	if pageCap <= 0 {
		pageCap = DefaultPageCap
	}
	return &Table{
		siteCap: siteCap,
		pageCap: pageCap,
		sites:   make(map[uint64]*site),
	}
}

// Train records the write set observed for the chunk that followed siteID.
// pages may be unsorted and contain duplicates (it is the workspace's
// raw fault-order log); Train canonicalizes without retaining the caller's
// slice, so callers may reuse their buffer. Training replaces the site's
// previous observation: the predictor is a last-value predictor, which is
// exact for the iterative phase behaviour (barrier rounds, per-lock
// critical sections) that dominates fault-heavy workloads, and
// self-corrects in one visit when a site's write set drifts.
func (t *Table) Train(siteID uint64, pages []int) {
	if siteID == 0 {
		return
	}
	s := t.touch(siteID)
	s.trained++
	t.trains++
	s.pages = canonicalize(s.pages[:0], pages, t.pageCap)
}

// Predict appends the pages predicted for the chunk following siteID to
// dst (which may be nil) and returns the extended slice, in ascending page
// order. A site with no recorded history predicts nothing. Predicting
// counts as a touch: sites that are still being consulted are not evicted
// in favour of sites that are merely trained.
func (t *Table) Predict(siteID uint64, dst []int) []int {
	s, ok := t.sites[siteID]
	if !ok || s.trained == 0 {
		return dst
	}
	s.stamp = t.next()
	t.predicts++
	n := len(dst)
	dst = append(dst, s.pages...)
	if t.perturb != nil {
		dst = append(dst[:n], t.perturb(dst[n:])...)
	}
	return dst
}

// SetPerturb installs a prediction rewriter applied to every Predict
// result (nil removes it). The chaos subsystem uses this to force
// mispredictions; see the perturb field contract.
func (t *Table) SetPerturb(f func(pages []int) []int) { t.perturb = f }

// Len returns the number of sites currently retained.
func (t *Table) Len() int { return len(t.sites) }

// Stats returns the table's lifetime counters: observations recorded,
// predictions served, and sites evicted.
func (t *Table) Stats() (trains, predicts, evictions int64) {
	return t.trains, t.predicts, t.evictions
}

// touch returns siteID's entry, creating (and evicting) as needed, and
// stamps it as most recently used.
func (t *Table) touch(siteID uint64) *site {
	s, ok := t.sites[siteID]
	if !ok {
		if len(t.sites) >= t.siteCap {
			t.evict()
		}
		s = &site{}
		t.sites[siteID] = s
	}
	s.stamp = t.next()
	return s
}

// evict removes the least-recently-touched site. Stamps are unique, so the
// victim — and therefore the table's entire behaviour — is independent of
// map iteration order.
func (t *Table) evict() {
	var victim uint64
	best := ^uint64(0)
	for id, s := range t.sites {
		if s.stamp < best {
			best, victim = s.stamp, id
		}
	}
	delete(t.sites, victim)
	t.evictions++
}

func (t *Table) next() uint64 {
	t.tick++
	return t.tick
}

// canonicalize writes the sorted, deduplicated form of pages into dst
// (reusing its capacity), truncated to at most cap pages.
func canonicalize(dst, pages []int, pageCap int) []int {
	dst = append(dst, pages...)
	sort.Ints(dst)
	dst = slices.Compact(dst)
	if len(dst) > pageCap {
		dst = dst[:pageCap]
	}
	return dst
}
