package predict

import (
	"reflect"
	"testing"
)

func TestTrainPredictRoundTrip(t *testing.T) {
	tb := New()
	tb.Train(7, []int{5, 1, 3, 1, 5, 2})
	got := tb.Predict(7, nil)
	want := []int{1, 2, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Predict = %v, want sorted dedup %v", got, want)
	}
	// Predict appends to dst.
	got = tb.Predict(7, []int{99})
	if !reflect.DeepEqual(got, []int{99, 1, 2, 3, 5}) {
		t.Fatalf("Predict did not append to dst: %v", got)
	}
}

func TestUntrainedSitePredictsNothing(t *testing.T) {
	tb := New()
	if got := tb.Predict(42, nil); len(got) != 0 {
		t.Fatalf("untrained site predicted %v", got)
	}
	// An empty observation is still an observation: it predicts the empty
	// set, not "unknown".
	tb.Train(42, nil)
	if got := tb.Predict(42, nil); len(got) != 0 {
		t.Fatalf("empty-trained site predicted %v", got)
	}
	if trains, _, _ := tb.Stats(); trains != 1 {
		t.Fatalf("trains = %d, want 1", trains)
	}
}

func TestLastValueReplacesHistory(t *testing.T) {
	tb := New()
	tb.Train(9, []int{1, 2, 3})
	tb.Train(9, []int{3, 4})
	got := tb.Predict(9, nil)
	if !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("retrain did not replace: %v", got)
	}
}

func TestSiteZeroIgnored(t *testing.T) {
	tb := New()
	tb.Train(0, []int{1, 2})
	if tb.Len() != 0 {
		t.Fatal("siteID 0 was retained")
	}
	if got := tb.Predict(0, nil); len(got) != 0 {
		t.Fatalf("siteID 0 predicted %v", got)
	}
}

func TestPageCapTruncates(t *testing.T) {
	tb := NewSized(0, 3)
	tb.Train(1, []int{9, 7, 5, 3, 1})
	got := tb.Predict(1, nil)
	if !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("pageCap truncation = %v, want lowest three", got)
	}
}

func TestTrainDoesNotRetainCallerSlice(t *testing.T) {
	tb := New()
	buf := []int{4, 2}
	tb.Train(1, buf)
	buf[0], buf[1] = 100, 200 // caller reuses its buffer
	if got := tb.Predict(1, nil); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("table aliased the caller's slice: %v", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	tb := NewSized(2, 0)
	tb.Train(1, []int{10})
	tb.Train(2, []int{20})
	tb.Predict(1, nil) // touch site 1: site 2 is now least recent
	tb.Train(3, []int{30})
	if got := tb.Predict(2, nil); len(got) != 0 {
		t.Fatalf("LRU victim survived: site 2 predicted %v", got)
	}
	if got := tb.Predict(1, nil); !reflect.DeepEqual(got, []int{10}) {
		t.Fatalf("recently touched site evicted: %v", got)
	}
	if got := tb.Predict(3, nil); !reflect.DeepEqual(got, []int{30}) {
		t.Fatalf("newest site missing: %v", got)
	}
	if _, _, ev := tb.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

// TestEvictionReplayStable pins the determinism-by-construction claim: the
// same train/predict sequence replayed on fresh tables must retain the
// same sites with the same contents every time, no matter how Go's map
// iteration order varies between the replays. Unique LRU stamps make the
// eviction victim unique, so nothing map-order-dependent can leak.
func TestEvictionReplayStable(t *testing.T) {
	replay := func() map[uint64][]int {
		tb := NewSized(8, 0)
		// A deterministic pseudo-random-ish mix of trains and predicts over
		// 64 sites — far past the cap, forcing constant eviction.
		for i := 0; i < 1000; i++ {
			siteA := uint64(i%64 + 1)
			siteB := uint64((i*37)%64 + 1)
			tb.Train(siteA, []int{i % 7, i % 11, i % 13})
			tb.Predict(siteB, nil)
		}
		out := map[uint64][]int{}
		for id := uint64(1); id <= 64; id++ {
			if p := tb.Predict(id, nil); p != nil {
				out[id] = p
			}
		}
		if tb.Len() > 8 {
			t.Fatalf("siteCap exceeded: %d sites", tb.Len())
		}
		return out
	}
	base := replay()
	for i := 0; i < 10; i++ {
		if got := replay(); !reflect.DeepEqual(got, base) {
			t.Fatalf("replay %d diverged:\n got %v\nwant %v", i, got, base)
		}
	}
}
