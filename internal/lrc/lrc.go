// Package lrc answers the paper's §5.3 question: how much less memory
// would a lazy-release-consistency (LRC) implementation have to propagate
// than Consequence's TSO does?
//
// It piggybacks on the Consequence runtime's hook interface, maintaining
// vector clocks for threads and synchronization objects (the TreadMarks
// construction the paper describes: "adding a vector clock to each thread,
// synchronization variable and committed page"). Every committed page is
// stamped with its committer's clock; at every acquire-flavoured operation
// (lock, cond wakeup, barrier exit, join) the tracker counts the distinct
// pages whose commits the acquirer would have to import along
// happens-before edges — the hypothetical LRC propagation — while the
// runtime's own PulledPages counter measures what TSO actually moves
// (Figure 16).
//
// All hook methods run with the global token held, so the tracker is
// lock-free and observes the deterministic total order.
package lrc

import (
	"repro/internal/mem"
)

// vc is a sparse vector clock.
type vc map[int]int64

func (a vc) join(b vc) {
	for t, c := range b {
		if c > a[t] {
			a[t] = c
		}
	}
}

func (a vc) clone() vc {
	out := make(vc, len(a))
	for t, c := range a {
		out[t] = c
	}
	return out
}

// commitEvent is one version's page set, stamped with the committer's
// release counter at commit time.
type commitEvent struct {
	counter int64
	pages   []int
}

// Tracker implements det.Hooks.
type Tracker struct {
	threads map[int]vc
	objects map[uint64]vc
	// events[tid] lists tid's commits in counter order.
	events map[int][]commitEvent

	lrcPages int64
	acquires int64
	commits  int64
}

// New creates an empty tracker.
func New() *Tracker {
	return &Tracker{
		threads: make(map[int]vc),
		objects: make(map[uint64]vc),
		events:  make(map[int][]commitEvent),
	}
}

func (tr *Tracker) thread(tid int) vc {
	v, ok := tr.threads[tid]
	if !ok {
		v = vc{}
		tr.threads[tid] = v
	}
	return v
}

func (tr *Tracker) object(obj uint64) vc {
	v, ok := tr.objects[obj]
	if !ok {
		v = vc{}
		tr.objects[obj] = v
	}
	return v
}

// The interval convention (TreadMarks-style): t[tid] counts tid's
// completed release intervals; commits inside the current interval are
// stamped t[tid]+1; a release completes the interval (t[tid]++) and then
// publishes the clock into the object. An acquirer holding `have`
// completed intervals of another thread imports events with
// have < stamp <= object-component, exactly once.

// OnRelease implements det.Hooks: complete the releaser's current interval
// and publish its clock into the object.
func (tr *Tracker) OnRelease(tid int, obj uint64) {
	t := tr.thread(tid)
	t[tid]++
	tr.object(obj).join(t)
}

// OnAcquire implements det.Hooks: count the pages an LRC system would
// propagate along this happens-before edge, then absorb the object's
// clock.
func (tr *Tracker) OnAcquire(tid int, obj uint64) {
	tr.acquires++
	t := tr.thread(tid)
	o := tr.object(obj)
	need := make(map[int]bool)
	for other, upto := range o {
		if other == tid {
			continue
		}
		have := t[other]
		if upto <= have {
			continue
		}
		for _, e := range tr.events[other] {
			if e.counter > have && e.counter <= upto {
				for _, p := range e.pages {
					need[p] = true
				}
			}
		}
	}
	tr.lrcPages += int64(len(need))
	t.join(o)
}

// OnCommit implements det.Hooks: stamp the committed pages with the
// committer's current release counter.
func (tr *Tracker) OnCommit(tid int, v *mem.Version) {
	if v == nil {
		return
	}
	tr.commits++
	t := tr.thread(tid)
	tr.events[tid] = append(tr.events[tid], commitEvent{
		counter: t[tid] + 1, // current (uncompleted) interval
		pages:   v.PageIndexes(),
	})
}

// OnUpdate implements det.Hooks (unused: TSO propagation is counted by the
// memory substrate itself).
func (tr *Tracker) OnUpdate(tid int, to int64) {}

// OnSpawn implements det.Hooks: the fork copies the parent's view, so the
// child starts knowing everything the parent knew — no propagation
// counted.
func (tr *Tracker) OnSpawn(parent, child int) {
	tr.threads[child] = tr.thread(parent).clone()
}

// LRCPages returns the total pages a happens-before (LRC) system would
// have propagated.
func (tr *Tracker) LRCPages() int64 { return tr.lrcPages }

// Acquires returns the number of acquire operations observed.
func (tr *Tracker) Acquires() int64 { return tr.acquires }

// Commits returns the number of page-carrying commits observed.
func (tr *Tracker) Commits() int64 { return tr.commits }
