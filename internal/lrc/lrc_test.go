package lrc

import (
	"testing"

	"repro/internal/mem"
)

// version builds a committed version touching the given pages, authored by
// tid, so OnCommit has something real to stamp.
func version(t *testing.T, seg *mem.Segment, tid int, pages ...int) *mem.Version {
	t.Helper()
	ws, err := seg.Snapshot(tid)
	if err != nil {
		// workspace may already exist for tid: rebind by releasing isn't
		// exposed; use a unique tid per call in tests instead.
		t.Fatal(err)
	}
	for _, pg := range pages {
		// Distinct value per committer so repeated commits to a page never
		// produce an empty diff.
		ws.Write([]byte{byte(tid)}, pg*seg.PageSize())
	}
	pc := ws.BeginCommit()
	pc.Complete()
	seg.Release(ws)
	return pc.Version()
}

func newSeg(t *testing.T) *mem.Segment {
	t.Helper()
	s, err := mem.NewSegment(mem.SegmentConfig{Name: "lrc", Size: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReleaseAcquirePropagatesOnce(t *testing.T) {
	seg := newSeg(t)
	tr := New()

	// T1 commits pages 1,2 then releases lock A.
	tr.OnCommit(1, version(t, seg, 100, 1, 2))
	tr.OnRelease(1, 0xA)

	// T2 acquires A: needs both pages.
	tr.OnAcquire(2, 0xA)
	if got := tr.LRCPages(); got != 2 {
		t.Fatalf("first acquire pulled %d pages, want 2", got)
	}
	// Re-acquiring the same object state needs nothing new.
	tr.OnAcquire(2, 0xA)
	if got := tr.LRCPages(); got != 2 {
		t.Fatalf("re-acquire double-counted: %d", got)
	}
}

func TestCommitAfterReleaseNotCovered(t *testing.T) {
	seg := newSeg(t)
	tr := New()
	tr.OnRelease(1, 0xA) // release BEFORE the commit
	tr.OnCommit(1, version(t, seg, 101, 3))
	tr.OnAcquire(2, 0xA)
	if got := tr.LRCPages(); got != 0 {
		t.Fatalf("post-release commit leaked through the edge: %d pages", got)
	}
	// After T1's next release, the page flows.
	tr.OnRelease(1, 0xA)
	tr.OnAcquire(2, 0xA)
	if got := tr.LRCPages(); got != 1 {
		t.Fatalf("second acquire pulled %d, want 1", got)
	}
}

func TestDistinctObjectsSplitPropagation(t *testing.T) {
	// The LRC-can-exceed-TSO case: the same page arriving over two
	// different lock edges counts twice point-to-point.
	seg := newSeg(t)
	tr := New()
	tr.OnCommit(1, version(t, seg, 102, 7))
	tr.OnRelease(1, 0xA)
	tr.OnCommit(3, version(t, seg, 103, 7))
	tr.OnRelease(3, 0xB)
	tr.OnAcquire(2, 0xA)
	tr.OnAcquire(2, 0xB)
	if got := tr.LRCPages(); got != 2 {
		t.Fatalf("page should flow once per edge: %d", got)
	}
}

func TestTransitiveHappensBefore(t *testing.T) {
	seg := newSeg(t)
	tr := New()
	// T1 commits page 5, releases A. T2 acquires A (gets page 5), commits
	// page 6, releases B. T3 acquires only B — happens-before is
	// transitive, so T3 needs BOTH pages.
	tr.OnCommit(1, version(t, seg, 104, 5))
	tr.OnRelease(1, 0xA)
	tr.OnAcquire(2, 0xA)
	tr.OnCommit(2, version(t, seg, 105, 6))
	tr.OnRelease(2, 0xB)
	before := tr.LRCPages()
	tr.OnAcquire(3, 0xB)
	if got := tr.LRCPages() - before; got != 2 {
		t.Fatalf("transitive acquire pulled %d pages, want 2", got)
	}
}

func TestOwnCommitsNotCounted(t *testing.T) {
	seg := newSeg(t)
	tr := New()
	tr.OnCommit(1, version(t, seg, 106, 9))
	tr.OnRelease(1, 0xA)
	tr.OnAcquire(1, 0xA) // own pages never propagate to self
	if got := tr.LRCPages(); got != 0 {
		t.Fatalf("self-acquire counted %d pages", got)
	}
}

func TestSpawnInheritsParentKnowledge(t *testing.T) {
	seg := newSeg(t)
	tr := New()
	tr.OnCommit(1, version(t, seg, 107, 4))
	tr.OnRelease(1, 0xA)
	tr.OnAcquire(2, 0xA) // parent pulls page 4
	base := tr.LRCPages()
	tr.OnSpawn(2, 5) // child inherits via fork, no propagation
	tr.OnRelease(1, 0xA)
	tr.OnAcquire(5, 0xA) // nothing new on this edge for the child
	if got := tr.LRCPages() - base; got != 0 {
		t.Fatalf("child re-pulled inherited pages: %d", got)
	}
}

func TestNilCommitIgnored(t *testing.T) {
	tr := New()
	tr.OnCommit(1, nil)
	if tr.Commits() != 0 {
		t.Fatal("nil version counted as a commit")
	}
}

func TestCounters(t *testing.T) {
	seg := newSeg(t)
	tr := New()
	tr.OnCommit(1, version(t, seg, 108, 1))
	tr.OnRelease(1, 0xA)
	tr.OnAcquire(2, 0xA)
	if tr.Commits() != 1 || tr.Acquires() != 1 {
		t.Fatalf("commits=%d acquires=%d", tr.Commits(), tr.Acquires())
	}
	tr.OnUpdate(2, 10) // no-op, must not panic
}
