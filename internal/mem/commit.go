package mem

import "sort"

// CommitStats summarizes one commit (or pure update) for cost accounting.
type CommitStats struct {
	// CommittedPages is the number of pages with at least one changed byte.
	CommittedPages int
	// MergedPages counts committed pages that conflicted (another thread
	// committed the same page since this workspace's snapshot) and thus
	// required a byte-granularity merge.
	MergedPages int
	// DiffBytes is the total number of bytes this commit changed.
	DiffBytes int
	// PulledPages is the number of distinct remote pages whose
	// modifications became visible by advancing the snapshot.
	PulledPages int
}

// PendingCommit is a commit whose serial ordering phase (BeginCommit) has
// run but whose merge phase (Complete) may still be outstanding. The split
// implements Conversion's two-phase parallel commit (§4.2): phase one runs
// under the runtime's global token and fixes the total order; phase two
// does the expensive page merging and may run concurrently across threads.
type PendingCommit struct {
	seg     *Segment
	version *Version // nil if the workspace had no changes
	stats   CommitStats
}

// Stats returns the commit's accounting counters.
func (pc *PendingCommit) Stats() CommitStats { return pc.stats }

// Version returns the version this commit created, or nil if the workspace
// had no modified bytes (the commit degenerated to an update).
func (pc *PendingCommit) Version() *Version { return pc.version }

// BeginCommit runs the serial phase of a commit: it assigns the next
// version number, records which pages the version modifies and computes
// their byte diffs, and advances the workspace snapshot past the new
// version. The caller must serialize BeginCommit calls on a segment (the
// deterministic runtimes do so by holding the global token), or the commit
// order — and therefore the program's memory state — would not be
// deterministic.
//
// Pages whose bytes did not actually change are dropped (their fault was
// wasted work, which the fault counter already recorded).
func (ws *Workspace) BeginCommit() *PendingCommit {
	s := ws.seg
	s.mu.Lock()
	pc := &PendingCommit{seg: s}
	oldV := ws.version
	headBefore := s.head

	// Count remote pages becoming visible (same accounting as Update).
	if oldV < headBefore {
		touched := make(map[int]bool)
		var patches []*pageSlot
		for i := oldV - s.floor; i < headBefore-s.floor; i++ {
			for pg, slot := range s.versions[i].Pages {
				touched[pg] = true
				if _, dirtyHere := ws.dirty[pg]; dirtyHere {
					patches = append(patches, slot)
				}
			}
		}
		pc.stats.PulledPages = len(touched)
		// Import remote bytes into dirty pages before diffing so the commit
		// cannot resurrect stale values for bytes this thread never wrote.
		for _, slot := range patches {
			dp := ws.dirty[slot.page]
			slot.diff.applyWhereClean(dp.data, dp.twin)
		}
	}

	// Diff dirty pages in deterministic (ascending page) order.
	pages := make([]int, 0, len(ws.dirty))
	for pg := range ws.dirty {
		pages = append(pages, pg)
	}
	sort.Ints(pages)

	var slots []*pageSlot
	for _, pg := range pages {
		dp := ws.dirty[pg]
		diff := computeDiff(dp.data, dp.twin)
		if diff.Empty() {
			s.allocPages(-2) // dirty copy and twin both freed
			continue
		}
		slot := &pageSlot{
			page: pg,
			prev: s.latest[pg],
			diff: diff,
			seg:  s,
		}
		// A conflict means some other thread committed this page after our
		// snapshot; phase 2 must merge rather than install our copy.
		if slot.prev != nil && slot.prev.version.Num > oldV {
			slot.conflict = true
			s.allocPages(-2) // our raw copy and twin freed; merge allocates
		} else {
			slot.fastData = dp.data // our copy becomes the committed page
			s.allocPages(-1)        // twin freed
		}
		pc.stats.DiffBytes += diff.Bytes()
		slots = append(slots, slot)
	}
	ws.dirty = make(map[int]*dirtyPage)

	if len(slots) == 0 {
		// Nothing to publish: behave as an update.
		ws.version = headBefore
		s.mu.Unlock()
		s.addPulled(int64(pc.stats.PulledPages))
		return pc
	}

	v := &Version{
		Num:       headBefore + 1,
		Committer: ws.tid,
		Pages:     make(map[int]*pageSlot, len(slots)),
		slots:     slots,
	}
	for _, slot := range slots {
		slot.version = v
		v.Pages[slot.page] = slot
		s.latest[slot.page] = slot
		if slot.conflict {
			pc.stats.MergedPages++
		}
	}
	s.versions = append(s.versions, v)
	s.head = v.Num
	ws.version = v.Num
	pc.version = v
	pc.stats.CommittedPages = len(slots)
	s.mu.Unlock()

	s.noteCommit(pc.stats)
	return pc
}

// Complete runs the merge phase: every page the version touches gets its
// final content, merging the committer's diff over the previous version of
// the page where a conflict exists. Safe to call from any goroutine;
// multiple calls (and concurrent reader-forced resolution) are idempotent.
func (pc *PendingCommit) Complete() {
	if pc.version != nil {
		pc.version.complete()
	}
}

func (v *Version) complete() {
	for _, slot := range v.slots {
		slot.resolve()
	}
}

// Commit is the common single-phase form: serial ordering immediately
// followed by the merge. Returns the commit statistics.
func (ws *Workspace) Commit() CommitStats {
	pc := ws.BeginCommit()
	pc.Complete()
	return pc.stats
}

// CompleteThrough finishes the merge phase of every pending version with
// Num <= n, in version order. The simulation host uses this to execute the
// "parallel" barrier merges deterministically from a single goroutine while
// charging each virtual thread its own parallel cost; the result is
// byte-identical to truly parallel Complete calls.
func (s *Segment) CompleteThrough(n int64) {
	s.mu.Lock()
	var todo []*Version
	for _, v := range s.versions {
		if v.Num > n {
			break
		}
		if v.Pending() {
			todo = append(todo, v)
		}
	}
	s.mu.Unlock()
	for _, v := range todo {
		v.complete()
	}
}

// ReadCommitted copies bytes from the segment's state as of version `at`
// into buf, ignoring all workspaces. Used by the harness and tests to
// observe and hash final memory. Blocks on pending versions.
func (s *Segment) ReadCommitted(buf []byte, off int, at int64) {
	if off < 0 || off+len(buf) > s.size {
		panic("mem: ReadCommitted out of range")
	}
	for len(buf) > 0 {
		pg, po := s.pageIndex(off)
		n := s.pageSize - po
		if n > len(buf) {
			n = len(buf)
		}
		src := s.committedPage(pg, at)
		copy(buf[:n], src[po:po+n])
		buf = buf[n:]
		off += n
	}
}
