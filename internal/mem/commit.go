package mem

import (
	"runtime"
	"slices"
	"sync"
)

// CommitStats summarizes one commit (or pure update) for cost accounting.
type CommitStats struct {
	// CommittedPages is the number of pages with at least one changed byte.
	CommittedPages int
	// MergedPages counts committed pages that conflicted (another thread
	// committed the same page since this workspace's snapshot) and thus
	// required a byte-granularity merge.
	MergedPages int
	// DiffBytes is the total number of bytes this commit changed.
	DiffBytes int
	// PulledPages is the number of distinct remote pages whose
	// modifications became visible by advancing the snapshot.
	PulledPages int
	// SpecHits counts committed pages whose diff was computed speculatively
	// (PrepareCommit, off the serial token path) and reused as-is by the
	// serial phase; SpecMisses counts committed pages whose diff had to be
	// computed inside BeginCommit because no valid speculation existed —
	// the page was written after the speculation, or PrepareCommit was
	// never called (e.g. a commit inside a coarsened chunk, where the token
	// never left the thread and there was no wait to overlap).
	// SpecHits + SpecMisses == CommittedPages.
	SpecHits   int
	SpecMisses int
}

// PendingCommit is a commit whose serial ordering phase (BeginCommit) has
// run but whose merge phase (Complete) may still be outstanding. The split
// implements Conversion's two-phase parallel commit (§4.2): phase one runs
// under the runtime's global token and fixes the total order; phase two
// does the expensive page merging and may run concurrently across threads.
type PendingCommit struct {
	seg     *Segment
	version *Version // nil if the workspace had no changes
	stats   CommitStats
}

// Stats returns the commit's accounting counters.
func (pc *PendingCommit) Stats() CommitStats { return pc.stats }

// Version returns the version this commit created, or nil if the workspace
// had no modified bytes (the commit degenerated to an update).
func (pc *PendingCommit) Version() *Version { return pc.version }

// rediffParallelMin is the invalidated-page count at which BeginCommit
// fans re-diffing across a worker pool instead of the inline loop;
// rediffWorkers bounds the pool. Diffing is a pure per-page function of
// thread-private bytes, so the fan-out cannot change results — it only
// shortens wall time on the real host. The simulation host charges its
// deterministic cost model per page regardless of how the host CPU
// computed the diff, so its modeled times are unaffected (the same way
// CompleteThrough charges "parallel" merges from one goroutine).
const (
	rediffParallelMin = 16
	rediffWorkers     = 4
)

// rediff fills dp.spec for every page in misses. Pages are independent;
// large sets are diffed by a small worker pool.
func (ws *Workspace) rediff(misses []int) {
	if len(misses) < rediffParallelMin {
		for _, pg := range misses {
			dp := ws.dirty[pg]
			d := computeDiff(dp.data, dp.twin)
			dp.spec = &d
		}
		return
	}
	workers := rediffWorkers
	if n := runtime.GOMAXPROCS(0); n < workers {
		workers = n
	}
	chunk := (len(misses) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(misses); lo += chunk {
		sub := misses[lo:min(lo+chunk, len(misses))]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, pg := range sub {
				dp := ws.dirty[pg]
				d := computeDiff(dp.data, dp.twin)
				dp.spec = &d
			}
		}()
	}
	wg.Wait()
}

// touchedScratch returns the workspace's cleared pulled-page scratch set.
func (ws *Workspace) touchedScratch() map[int]bool {
	if ws.scratchTouched == nil {
		ws.scratchTouched = make(map[int]bool)
	}
	clear(ws.scratchTouched)
	return ws.scratchTouched
}

// BeginCommit runs the serial phase of a commit: it assigns the next
// version number, records which pages the version modifies together with
// their byte diffs, and advances the workspace snapshot past the new
// version. The caller must serialize BeginCommit calls on a segment (the
// deterministic runtimes do so by holding the global token), or the commit
// order — and therefore the program's memory state — would not be
// deterministic.
//
// The expensive work — importing pulled remote bytes and diffing dirty
// pages — happens outside the segment lock: commit serialization already
// excludes concurrent commits, and everything touched off-lock is
// thread-private (dirty pages) or immutable (published diffs). The lock is
// held only for the two decisions that read or write shared segment state:
// choosing the pull window, and publishing the version (conflict checks,
// latest/head update). Diffs are reused from PrepareCommit speculation
// where valid; only invalidated pages are re-diffed here.
//
// Pages whose bytes did not actually change are dropped (their fault was
// wasted work, which the fault counter already recorded).
func (ws *Workspace) BeginCommit() *PendingCommit {
	s := ws.seg
	pc := &PendingCommit{seg: s}

	// Serial decision 1 (locked): fix the pull window and collect the
	// published slots that must patch our dirty pages.
	s.mu.Lock()
	oldV := ws.version
	headBefore := s.head
	var patches []*pageSlot
	if oldV < headBefore {
		touched := ws.touchedScratch()
		for i := oldV - s.floor; i < headBefore-s.floor; i++ {
			for pg, slot := range s.versions[i].Pages {
				touched[pg] = true
				if _, dirtyHere := ws.dirty[pg]; dirtyHere {
					patches = append(patches, slot)
				}
			}
		}
		pc.stats.PulledPages = len(touched)
	}
	s.mu.Unlock()

	// Import remote bytes into dirty pages before diffing so the commit
	// cannot resurrect stale values for bytes this thread never wrote.
	// Published diffs are immutable and the patched pages are ours, so no
	// lock is needed. applyWhereClean is diff-preserving (see
	// dirtyPage.spec), so speculative diffs survive the import.
	for _, slot := range patches {
		dp := ws.dirty[slot.page]
		slot.diff.applyWhereClean(dp.data, dp.twin)
	}

	// Diff dirty pages in deterministic (ascending page) order. Pages with
	// valid speculative diffs are free; the invalidated rest are re-diffed
	// here, fanned across a worker pool when there are many.
	pages := ws.scratchPages[:0]
	for pg := range ws.dirty {
		pages = append(pages, pg)
	}
	slices.Sort(pages)
	ws.scratchPages = pages

	var misses []int
	for _, pg := range pages {
		if ws.dirty[pg].spec == nil {
			misses = append(misses, pg)
		}
	}
	ws.rediff(misses)

	// Serial decision 2 (locked): conflict checks against the latest table
	// and version publication. Nothing below computes diffs; the lock
	// covers only version construction and the latest/head update.
	var slots []*pageSlot
	kept := ws.scratchKept[:0]
	var wasted int64
	freed := int64(0)
	mi := 0
	s.mu.Lock()
	for _, pg := range pages {
		miss := mi < len(misses) && misses[mi] == pg
		if miss {
			mi++
		}
		dp := ws.dirty[pg]
		diff := *dp.spec
		if diff.Empty() {
			// Prefetched pages never written live through exactly one
			// commit: fresh ones are retained (demoted to stale) so the
			// chunk they were prefetched for — which runs after this very
			// commit — still finds them; stale ones were a wasted
			// prediction and are dropped. Either way the empty diff keeps
			// them out of every commit statistic.
			if ws.predict && dp.pf == pfFresh {
				dp.pf = pfStale
				kept = append(kept, pg)
				continue
			}
			if dp.pf != pfNone {
				wasted++
			}
			freed -= 2 // dirty copy and twin both freed
			continue
		}
		slot := &pageSlot{
			page: pg,
			prev: s.latest[pg],
			diff: diff,
			seg:  s,
		}
		// A conflict means some other thread committed this page after our
		// snapshot; phase 2 must merge rather than install our copy.
		if slot.prev != nil && slot.prev.version.Num > oldV {
			slot.conflict = true
			freed -= 2 // our raw copy and twin freed; merge allocates
		} else {
			slot.fastData = dp.data // our copy becomes the committed page
			freed--                 // twin freed
		}
		pc.stats.DiffBytes += diff.Bytes()
		if miss {
			pc.stats.SpecMisses++
		} else {
			pc.stats.SpecHits++
		}
		slots = append(slots, slot)
	}

	if len(slots) == 0 {
		// Nothing to publish: behave as an update.
		ws.version = headBefore
		s.mu.Unlock()
		ws.resetDirty(pages, kept)
		s.allocPages(freed)
		s.addPulled(int64(pc.stats.PulledPages))
		s.notePrefetchWasted(wasted)
		return pc
	}

	v := &Version{
		Num:       headBefore + 1,
		Committer: ws.tid,
		Pages:     make(map[int]*pageSlot, len(slots)),
		slots:     slots,
	}
	for _, slot := range slots {
		slot.version = v
		v.Pages[slot.page] = slot
		s.latest[slot.page] = slot
		if slot.conflict {
			pc.stats.MergedPages++
		}
	}
	s.versions = append(s.versions, v)
	s.head = v.Num
	ws.version = v.Num
	pc.version = v
	pc.stats.CommittedPages = len(slots)
	s.mu.Unlock()

	ws.resetDirty(pages, kept)
	s.allocPages(freed)
	s.noteCommit(pc.stats)
	s.notePrefetchWasted(wasted)
	return pc
}

// resetDirty clears the dirty set after a commit, retaining only the
// prefetched pages in kept. pages is the commit's full (ascending) page
// list and kept an ascending subset of it; both are workspace scratch.
// A retained page stays byte-identical to the committed state at the
// workspace's new version: its own commit did not publish it (empty
// diff), and every prior patch imported remote bytes into data and twin
// alike.
func (ws *Workspace) resetDirty(pages, kept []int) {
	ws.scratchKept = kept
	if len(kept) == 0 {
		ws.dirty = make(map[int]*dirtyPage)
		return
	}
	ki := 0
	for _, pg := range pages {
		if ki < len(kept) && kept[ki] == pg {
			ki++
			continue
		}
		delete(ws.dirty, pg)
	}
}

// Complete runs the merge phase: every page the version touches gets its
// final content, merging the committer's diff over the previous version of
// the page where a conflict exists. Safe to call from any goroutine;
// multiple calls (and concurrent reader-forced resolution) are idempotent.
func (pc *PendingCommit) Complete() {
	if pc.version != nil {
		pc.version.complete()
	}
}

func (v *Version) complete() {
	for _, slot := range v.slots {
		slot.resolve()
	}
}

// Commit is the common single-phase form: serial ordering immediately
// followed by the merge. Returns the commit statistics.
func (ws *Workspace) Commit() CommitStats {
	pc := ws.BeginCommit()
	pc.Complete()
	return pc.stats
}

// CompleteThrough finishes the merge phase of every pending version with
// Num <= n, in version order. The simulation host uses this to execute the
// "parallel" barrier merges deterministically from a single goroutine while
// charging each virtual thread its own parallel cost; the result is
// byte-identical to truly parallel Complete calls.
func (s *Segment) CompleteThrough(n int64) {
	s.mu.Lock()
	var todo []*Version
	for _, v := range s.versions {
		if v.Num > n {
			break
		}
		if v.Pending() {
			todo = append(todo, v)
		}
	}
	s.mu.Unlock()
	for _, v := range todo {
		v.complete()
	}
}

// ReadCommitted copies bytes from the segment's state as of version `at`
// into buf, ignoring all workspaces. Used by the harness and tests to
// observe and hash final memory. Blocks on pending versions.
func (s *Segment) ReadCommitted(buf []byte, off int, at int64) {
	if off < 0 || off+len(buf) > s.size {
		panic("mem: ReadCommitted out of range")
	}
	for len(buf) > 0 {
		pg, po := s.pageIndex(off)
		n := s.pageSize - po
		if n > len(buf) {
			n = len(buf)
		}
		src := s.committedPage(pg, at)
		copy(buf[:n], src[po:po+n])
		buf = buf[n:]
		off += n
	}
}
