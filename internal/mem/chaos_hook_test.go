package mem

import "testing"

// The fault-perturb hook must accumulate modeled delay per faulted page —
// once per page, not per write — and TakeChaosFaultNS must drain it.
func TestFaultPerturbAccumulatesAndDrains(t *testing.T) {
	s := newTestSegment(t, 4*64, 64)
	ws, _ := s.Snapshot(0)
	var faultedPages []int
	ws.SetFaultPerturb(func(page int) int64 {
		faultedPages = append(faultedPages, page)
		return 100
	})

	ws.Write([]byte{1}, 0)  // faults page 0
	ws.Write([]byte{2}, 1)  // same page: no new fault
	ws.Write([]byte{3}, 70) // faults page 1

	if got := ws.TakeChaosFaultNS(); got != 200 {
		t.Fatalf("TakeChaosFaultNS = %d, want 200 (two faults x 100)", got)
	}
	if got := ws.TakeChaosFaultNS(); got != 0 {
		t.Fatalf("second take = %d, want 0 (drained)", got)
	}
	if len(faultedPages) != 2 || faultedPages[0] != 0 || faultedPages[1] != 1 {
		t.Fatalf("perturb saw pages %v, want [0 1]", faultedPages)
	}
}

// Prepopulate charges the same hook for each page it actually populates.
func TestPrepopulateChargesPerturb(t *testing.T) {
	s := newTestSegment(t, 4*64, 64)
	ws, _ := s.Snapshot(0)
	ws.SetFaultPerturb(func(page int) int64 { return 7 })

	ws.Write([]byte{1}, 0) // page 0 already resident
	ws.TakeChaosFaultNS()  // drain the write's fault charge
	n := ws.Prepopulate([]int{0, 1, 2})
	if n != 2 {
		t.Fatalf("Prepopulate populated %d pages, want 2 (page 0 resident)", n)
	}
	if got := ws.TakeChaosFaultNS(); got != 14 {
		t.Fatalf("TakeChaosFaultNS = %d, want 14 (two pages x 7)", got)
	}
}

// A nil perturb (the default) must charge nothing.
func TestNoPerturbNoCharge(t *testing.T) {
	s := newTestSegment(t, 4*64, 64)
	ws, _ := s.Snapshot(0)
	ws.Write([]byte{1}, 0)
	if got := ws.TakeChaosFaultNS(); got != 0 {
		t.Fatalf("TakeChaosFaultNS = %d without a perturb installed", got)
	}
}
