package mem

import (
	"math/rand"
	"testing"
)

const benchPage = 4096

// benchPair builds a page-size cur/twin pair with the given dirty-byte
// pattern (seeded, so every benchmark run sees the same bytes).
func benchPair(pattern string) (cur, twin []byte) {
	rng := rand.New(rand.NewSource(42))
	twin = make([]byte, benchPage)
	rng.Read(twin)
	cur = append([]byte(nil), twin...)
	switch pattern {
	case "clean":
	case "sparse":
		// A handful of short runs, like a few scattered stores.
		for i := 0; i < 8; i++ {
			off := rng.Intn(benchPage - 16)
			for k := 0; k < 8; k++ {
				cur[off+k] ^= 0x5a
			}
		}
	case "dense":
		// Every byte modified, like a freshly filled buffer: one
		// page-length run.
		for i := range cur {
			cur[i] ^= 0x5a
		}
	case "mixed":
		// Long dirty runs broken by single clean bytes — adversarial for
		// the word kernels (run bookkeeping dominates) and a bound on the
		// least favourable realistic page.
		for i := range cur {
			if i%61 != 0 {
				cur[i] ^= 0x5a
			}
		}
	default:
		panic("unknown pattern " + pattern)
	}
	return cur, twin
}

// BenchmarkComputeDiff compares the word-wide kernel against the byte-loop
// reference on clean, sparse-dirty and dense-dirty pages. The perf_opt
// acceptance bar is ≥2x on dense pages (word vs byte).
func BenchmarkComputeDiff(b *testing.B) {
	for _, pattern := range []string{"clean", "sparse", "dense", "mixed"} {
		cur, twin := benchPair(pattern)
		b.Run(pattern+"/word", func(b *testing.B) {
			b.SetBytes(benchPage)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				computeDiff(cur, twin)
			}
		})
		b.Run(pattern+"/byte", func(b *testing.B) {
			b.SetBytes(benchPage)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				computeDiffRef(cur, twin)
			}
		})
	}
}

// BenchmarkApplyWhereClean measures the masked word-wide merge against the
// byte-loop reference for a dense pulled diff over a half-dirty page.
func BenchmarkApplyWhereClean(b *testing.B) {
	base := make([]byte, benchPage)
	rand.New(rand.NewSource(42)).Read(base)
	remote := append([]byte(nil), base...)
	for i := range remote {
		if i%2 == 0 {
			remote[i] ^= 0xa5
		}
	}
	d := computeDiffRef(remote, base)
	mkpair := func() (dst, twin []byte) {
		dst = append([]byte(nil), base...)
		twin = append([]byte(nil), base...)
		for i := 0; i < benchPage; i += 4 {
			dst[i] ^= 0x5a
		}
		return dst, twin
	}
	b.Run("word", func(b *testing.B) {
		dst, twin := mkpair()
		b.SetBytes(benchPage)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.applyWhereClean(dst, twin)
		}
	})
	b.Run("byte", func(b *testing.B) {
		dst, twin := mkpair()
		b.SetBytes(benchPage)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			applyWhereCleanRef(d, dst, twin)
		}
	})
}

// BenchmarkBeginCommit measures the serial commit phase over 16 dense-dirty
// pages, with and without speculative pre-diffing. The speculated variant
// times only BeginCommit — PrepareCommit runs off the timer, as it runs off
// the token in the runtime — so the delta is the work speculation removes
// from the serial phase.
func BenchmarkBeginCommit(b *testing.B) {
	const pages = 16
	run := func(b *testing.B, speculate bool) {
		s, err := NewSegment(SegmentConfig{Name: "bench", Size: pages * benchPage, PageSize: benchPage})
		if err != nil {
			b.Fatal(err)
		}
		ws, err := s.Snapshot(0)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, benchPage)
		rand.New(rand.NewSource(42)).Read(buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			buf[0] = byte(i) // keep every round's pages genuinely dirty
			for pg := 0; pg < pages; pg++ {
				ws.Write(buf, pg*benchPage)
			}
			if speculate {
				ws.PrepareCommit()
			}
			b.StartTimer()
			pc := ws.BeginCommit()
			b.StopTimer()
			pc.Complete()
			b.StartTimer()
		}
	}
	b.Run("speculated", func(b *testing.B) { run(b, true) })
	b.Run("cold", func(b *testing.B) { run(b, false) })
}
