package mem

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Stress tests exercising the segment's concurrency contract: BeginCommit
// calls serialized by the caller (as the runtimes' token does), everything
// else — Complete, reads, updates, GC — racing freely. Run with -race.

func TestConcurrentCommitUpdateStress(t *testing.T) {
	const (
		threads = 8
		iters   = 60
		size    = 64 * 1024
	)
	s, err := NewSegment(SegmentConfig{Name: "stress", Size: size})
	if err != nil {
		t.Fatal(err)
	}
	var commitMu sync.Mutex // the "token"
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws, err := s.Snapshot(w)
			if err != nil {
				t.Errorf("snapshot %d: %v", w, err)
				return
			}
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, 128)
			for i := 0; i < iters; i++ {
				for k := 0; k < 4; k++ {
					off := rng.Intn(size - len(buf))
					ws.Read(buf, off)
					for j := range buf {
						buf[j] ^= byte(w + i + j)
					}
					ws.Write(buf, off)
				}
				commitMu.Lock()
				pc := ws.BeginCommit()
				commitMu.Unlock()
				pc.Complete()
				if i%7 == 0 {
					ws.Update()
				}
				if i%13 == 0 {
					s.GC()
				}
			}
		}(w)
	}
	wg.Wait()
	// The segment must still be internally consistent: a full read at head
	// succeeds and GC can drain completely.
	buf := make([]byte, size)
	s.ReadCommitted(buf, 0, s.Head())
	st := s.Stats()
	if st.Versions == 0 || st.CommittedPages == 0 {
		t.Fatalf("stress made no commits: %+v", st)
	}
	if st.CurPages < 0 {
		t.Fatalf("negative live pages: %+v", st)
	}
}

func TestConcurrentReadersDuringPendingMerges(t *testing.T) {
	// Readers force pending merges on demand; committers Complete late.
	s, _ := NewSegment(SegmentConfig{Name: "pend", Size: 1 << 16})
	var pcs []*PendingCommit
	for w := 0; w < 6; w++ {
		ws, _ := s.Snapshot(w)
		for pg := 0; pg < 8; pg++ {
			ws.Write([]byte{byte(w + 1)}, pg*4096+w)
		}
		pcs = append(pcs, ws.BeginCommit())
	}
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, 64)
			s.ReadCommitted(buf, (r%8)*4096, s.Head())
			for w := 0; w < 6; w++ {
				if buf[w] != byte(w+1) {
					t.Errorf("reader %d: byte %d = %d", r, w, buf[w])
				}
			}
		}(r)
	}
	for i := len(pcs) - 1; i >= 0; i-- {
		wg.Add(1)
		go func(pc *PendingCommit) {
			defer wg.Done()
			pc.Complete()
		}(pcs[i])
	}
	wg.Wait()
}

func TestUpdateToClampsAndPins(t *testing.T) {
	s, _ := NewSegment(SegmentConfig{Name: "ut", Size: 1 << 14})
	w0, _ := s.Snapshot(0)
	w1, _ := s.Snapshot(1)
	for i := 0; i < 5; i++ {
		w0.Write([]byte{byte(i + 1)}, i)
		w0.Commit()
	}
	// Partial update to version 2 only.
	if pulled := w1.UpdateTo(2); pulled != 1 {
		t.Fatalf("pulled %d pages, want 1 (same page each version)", pulled)
	}
	if w1.Version() != 2 {
		t.Fatalf("version = %d, want 2", w1.Version())
	}
	var b [5]byte
	w1.Read(b[:], 0)
	if b[0] != 1 || b[1] != 2 || b[2] != 0 {
		t.Fatalf("view at v2 = %v", b)
	}
	// Clamped to head.
	w1.UpdateTo(99)
	if w1.Version() != 5 {
		t.Fatalf("version = %d, want head 5", w1.Version())
	}
	// Backwards is a no-op.
	if pulled := w1.UpdateTo(1); pulled != 0 {
		t.Fatalf("backwards update pulled %d", pulled)
	}
}

func TestRebind(t *testing.T) {
	s, _ := NewSegment(SegmentConfig{Name: "rb", Size: 1 << 14})
	ws, _ := s.Snapshot(3)
	if err := s.Rebind(ws, 9); err != nil {
		t.Fatal(err)
	}
	if ws.Tid() != 9 {
		t.Fatalf("tid = %d", ws.Tid())
	}
	// Old tid is free again; new tid is taken.
	if _, err := s.Snapshot(3); err != nil {
		t.Errorf("old tid not freed: %v", err)
	}
	if _, err := s.Snapshot(9); err == nil {
		t.Error("new tid not reserved")
	}
	// Rebinding a released workspace fails.
	s.Release(ws)
	if err := s.Rebind(ws, 12); err == nil {
		t.Error("rebind of released workspace accepted")
	}
}

func TestPopulatedPagesGrows(t *testing.T) {
	s, _ := NewSegment(SegmentConfig{Name: "pp", Size: 1 << 16})
	if s.PopulatedPages() != 0 {
		t.Fatal("fresh segment populated")
	}
	ws, _ := s.Snapshot(0)
	for pg := 0; pg < 5; pg++ {
		ws.Write([]byte{1}, pg*4096)
	}
	ws.Commit()
	if got := s.PopulatedPages(); got != 5 {
		t.Fatalf("populated = %d, want 5", got)
	}
	s.GC()
	if got := s.PopulatedPages(); got != 5 {
		t.Fatalf("populated after GC = %d, want 5 (folded into base)", got)
	}
}

// TestLinearizableWithTokenDiscipline: under serialized commits, the final
// state equals a sequential replay in commit order — across random
// interleavings of the parallel phase-2 work.
func TestLinearizableWithTokenDiscipline(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		const size = 4096
		s, _ := NewSegment(SegmentConfig{Name: fmt.Sprint("lin", trial), Size: size})
		flat := make([]byte, size)
		var wss []*Workspace
		for w := 0; w < 4; w++ {
			ws, _ := s.Snapshot(w)
			wss = append(wss, ws)
		}
		type commitRec struct {
			pc     *PendingCommit
			writes map[int]byte
		}
		var pending []commitRec
		for step := 0; step < 40; step++ {
			w := rng.Intn(4)
			writes := map[int]byte{}
			for k := 0; k < rng.Intn(5); k++ {
				off := rng.Intn(size)
				// Per-step-unique values: a store of the value a byte
				// already holds is invisible to twin-diffing (the paper's
				// documented byte-merge artifact) and would desynchronize
				// the replay model.
				v := byte(step + 1)
				wss[w].Write([]byte{v}, off)
				writes[off] = v
			}
			// Serialized phase 1; phase 2 deferred to a random later point.
			pending = append(pending, commitRec{wss[w].BeginCommit(), writes})
			// Replay into the flat model in commit order: only the bytes
			// the workspace actually changed (its diff semantics).
			for off, v := range writes {
				flat[off] = v
			}
			// Randomly complete a few outstanding commits out of order.
			for len(pending) > 3 {
				i := rng.Intn(len(pending))
				pending[i].pc.Complete()
				pending = append(pending[:i], pending[i+1:]...)
			}
		}
		for _, p := range pending {
			p.pc.Complete()
		}
		got := make([]byte, size)
		s.ReadCommitted(got, 0, s.Head())
		if !bytes.Equal(got, flat) {
			t.Fatalf("trial %d: final state diverges from sequential replay", trial)
		}
	}
}
