// Package mem implements Conversion, a user-space reimplementation of the
// version-controlled memory substrate from Merrifield & Eriksson
// (EuroSys 2013) that the Consequence runtime builds on.
//
// A Segment is a paged, versioned address space. Each thread operates on a
// Workspace: an isolated snapshot of the segment at some version. Writes to
// a workspace trigger a copy-on-write "fault" that copies the page into a
// thread-local dirty set together with a twin (the pristine snapshot copy),
// exactly mirroring the kernel implementation's private page-table entries.
//
// A commit publishes the workspace's dirty pages as a new immutable Version.
// If another thread committed to the same page since the workspace's
// snapshot, the commit merges at byte granularity with a last-writer-wins
// policy: only the bytes the committer actually changed (dirty vs twin)
// overwrite the latest committed content. An update pulls committed versions
// into the workspace, refreshing clean pages wholesale and patching dirty
// pages only where the local thread has not written.
//
// Commits may be split into the two phases described in §4.2 of the
// Consequence paper: a serial ordering phase (BeginCommit, performed while
// holding the runtime's global token) and a parallel merge phase (Complete),
// enabling the parallel deterministic barrier.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the page size used when SegmentConfig.PageSize is zero.
// 4096 matches the hardware page size the paper's kernel implementation
// operates on.
const DefaultPageSize = 4096

// zeroPage is shared backing for never-written pages so that sparse
// segments cost nothing until touched.
var (
	zeroPages   = map[int][]byte{}
	zeroPagesMu sync.Mutex
)

func zeroPage(size int) []byte {
	zeroPagesMu.Lock()
	defer zeroPagesMu.Unlock()
	p, ok := zeroPages[size]
	if !ok {
		p = make([]byte, size)
		zeroPages[size] = p
	}
	return p
}

// SegmentConfig parameterizes a Segment.
type SegmentConfig struct {
	// Name identifies the segment in errors and stats ("heap", "globals").
	Name string
	// Size is the segment length in bytes. It is rounded up to a whole
	// number of pages.
	Size int
	// PageSize must be a power of two; 0 means DefaultPageSize.
	PageSize int
	// GCPageBudget bounds how many version pages a single GC invocation may
	// reclaim, modeling the paper's single-threaded Conversion collector
	// (§5: "a high volume of page allocation/freeing such that the
	// single-threaded Conversion garbage collector cannot keep up").
	// 0 means unlimited.
	GCPageBudget int
}

// Segment is a versioned, paged address space shared by many workspaces.
// All exported methods are safe for concurrent use.
type Segment struct {
	name     string
	pageSize int
	pageLog  uint // log2(pageSize)
	npages   int
	size     int

	mu sync.Mutex
	// floor is the version number the flat `base` table reflects; versions
	// (floor, head] are retained as deltas until GC squashes them.
	floor int64
	head  int64
	base  [][]byte // npages entries; nil means zero page
	// versions holds the retained delta chain, versions[i] has
	// Num == floor+1+i. Entries may be pending (phase 2 incomplete).
	versions []*Version
	// latest[pg] points at the most recent committed or pending version
	// touching pg, or nil if base content is current. Used to chain
	// parallel phase-2 merges per page.
	latest map[int]*pageSlot

	stats   Stats
	statsMu sync.Mutex

	workspaces map[int]*Workspace // live workspaces keyed by owner tid
}

// Version is one committed (or pending) set of page modifications.
type Version struct {
	// Num is the version's position in the segment's total commit order.
	Num int64
	// Committer is the thread ID that produced this version.
	Committer int
	// Pages maps page index -> slot holding the merged page content.
	Pages map[int]*pageSlot
	// slots lists the same slots in ascending page order (deterministic
	// phase-2 processing order).
	slots []*pageSlot
}

// Pending reports whether any of the version's pages still await their
// merge phase.
func (v *Version) Pending() bool {
	for _, slot := range v.slots {
		if !slot.resolved.Load() {
			return true
		}
	}
	return false
}

// PageIndexes returns the sorted-free set of page indexes this version
// modified (iteration order unspecified).
func (v *Version) PageIndexes() []int {
	idx := make([]int, 0, len(v.Pages))
	for pg := range v.Pages {
		idx = append(idx, pg)
	}
	return idx
}

// ForEachPageHash calls f with an FNV-1a content hash of every page this
// version modified, in ascending page order. It forces resolution of any
// still-pending slots, which is safe anywhere (resolve is idempotent and
// order-independent); the run journal uses it to record per-commit page
// hashes at publication time.
func (v *Version) ForEachPageHash(f func(page int, hash uint64)) {
	for _, slot := range v.slots {
		data := slot.resolve()
		h := uint64(14695981039346656037) // FNV-1a offset basis
		for _, b := range data {
			h = (h ^ uint64(b)) * 1099511628211
		}
		f(slot.page, h)
	}
}

// ForEachPageDiff calls f with the committer's own byte changes for every
// page this version modified, in ascending page order. Unlike
// ForEachPageHash this exposes the diff itself, not the merged content:
// replaying each version's diffs in version order onto a zero replica
// reproduces the committed content exactly (the merge chain resolves to
// "previous content + this diff" for conflict and non-conflict slots
// alike), which is what the commit log persists. The Diff's run data
// aliases the version's immutable buffers: read-only.
func (v *Version) ForEachPageDiff(f func(page int, d Diff)) {
	for _, slot := range v.slots {
		f(slot.page, slot.diff)
	}
}

// pageSlot is the unit of the per-page merge chain. prev points at the slot
// holding the page's content as of the previous version touching it (nil
// means the segment base table / zero page). data is filled in during
// phase 2.
// pageSlot is self-resolving: the committer's Complete resolves it during
// phase 2, but any reader that needs the page earlier may force resolution
// itself (resolve is idempotent and the result is order-independent data).
// This keeps the memory layer free of blocking, which matters both for the
// discrete-event host (a blocked virtual thread would stall the engine) and
// for deadlock-freedom in general.
type pageSlot struct {
	page    int
	version *Version
	prev    *pageSlot
	diff    Diff // the committer's own byte changes
	data    []byte
	// conflict marks that another thread committed this page between the
	// committer's snapshot and its commit; resolution must merge.
	conflict bool
	// fastData holds the committer's raw page when no merge is needed.
	fastData []byte

	once     sync.Once
	resolved atomic.Bool
	seg      *Segment
}

// resolve computes (once) and returns the slot's final page content,
// recursively forcing conflicting predecessors.
func (s *pageSlot) resolve() []byte {
	s.once.Do(func() {
		if s.conflict {
			base := s.prev.resolve()
			data := append([]byte(nil), base...)
			s.diff.apply(data)
			s.data = data
			s.seg.allocPages(1)
		} else {
			s.data = s.fastData
			s.fastData = nil
		}
		s.resolved.Store(true)
	})
	return s.data
}

// NewSegment creates an all-zero segment.
func NewSegment(cfg SegmentConfig) (*Segment, error) {
	ps := cfg.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if ps <= 0 || ps&(ps-1) != 0 {
		return nil, fmt.Errorf("mem: page size %d is not a power of two", ps)
	}
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("mem: segment %q has non-positive size %d", cfg.Name, cfg.Size)
	}
	np := (cfg.Size + ps - 1) / ps
	log := uint(0)
	for 1<<log != ps {
		log++
	}
	return &Segment{
		name:       cfg.Name,
		pageSize:   ps,
		pageLog:    log,
		npages:     np,
		size:       np * ps,
		base:       make([][]byte, np),
		latest:     make(map[int]*pageSlot),
		workspaces: make(map[int]*Workspace),
		stats:      Stats{GCPageBudget: cfg.GCPageBudget},
	}, nil
}

// Name returns the segment's configured name.
func (s *Segment) Name() string { return s.name }

// Size returns the segment length in bytes (rounded up to pages).
func (s *Segment) Size() int { return s.size }

// PageSize returns the page size in bytes.
func (s *Segment) PageSize() int { return s.pageSize }

// NumPages returns the number of pages in the segment.
func (s *Segment) NumPages() int { return s.npages }

// Head returns the latest version number (0 if nothing has committed).
func (s *Segment) Head() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head
}

// pageIndex converts a byte offset into (page index, offset within page).
func (s *Segment) pageIndex(off int) (int, int) {
	return off >> s.pageLog, off & (s.pageSize - 1)
}

// committedPage returns the content of pg as of version `at`, following
// the retained delta chain. The returned slice must not be mutated. If the
// governing version is still pending, its content is resolved on demand.
func (s *Segment) committedPage(pg int, at int64) []byte {
	s.mu.Lock()
	var slot *pageSlot
	// Walk back from `at` to floor looking for the newest version <= at
	// touching pg.
	for i := at - s.floor - 1; i >= 0; i-- {
		v := s.versions[i]
		if sl, ok := v.Pages[pg]; ok {
			slot = sl
			break
		}
	}
	if slot == nil {
		data := s.base[pg]
		s.mu.Unlock()
		if data == nil {
			return zeroPage(s.pageSize)
		}
		return data
	}
	s.mu.Unlock()
	return slot.resolve()
}

// Snapshot creates a workspace view of the segment at its current head.
// tid identifies the owning thread; at most one live workspace per tid.
func (s *Segment) Snapshot(tid int) (*Workspace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.workspaces[tid]; ok {
		return nil, fmt.Errorf("mem: segment %q already has a workspace for tid %d", s.name, tid)
	}
	ws := &Workspace{
		seg:     s,
		tid:     tid,
		version: s.head,
		dirty:   make(map[int]*dirtyPage),
	}
	s.workspaces[tid] = ws
	return ws, nil
}

// Release detaches a workspace, allowing GC to reclaim versions it pinned.
// The workspace must not be used afterwards.
func (s *Segment) Release(ws *Workspace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workspaces[ws.tid] == ws {
		delete(s.workspaces, ws.tid)
	}
	ws.discardLocked()
	ws.seg = nil
}

// Rebind transfers a workspace to a new thread id (thread-pool reuse: the
// recycled thread keeps its page table instead of forking a fresh one).
func (s *Segment) Rebind(ws *Workspace, newTid int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workspaces[ws.tid] != ws {
		return fmt.Errorf("mem: rebind of unregistered workspace (tid %d)", ws.tid)
	}
	if _, ok := s.workspaces[newTid]; ok {
		return fmt.Errorf("mem: rebind target tid %d already has a workspace", newTid)
	}
	delete(s.workspaces, ws.tid)
	ws.tid = newTid
	s.workspaces[newTid] = ws
	return nil
}

// PopulatedPages approximates the number of populated page-table entries a
// fork would have to copy: base pages plus retained version pages.
func (s *Segment) PopulatedPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.base {
		if p != nil {
			n++
		}
	}
	for _, v := range s.versions {
		n += len(v.Pages)
	}
	return n
}

// minWorkspaceVersionLocked returns the smallest snapshot version across
// live workspaces, or head if none.
func (s *Segment) minWorkspaceVersionLocked() int64 {
	minV := s.head
	for _, ws := range s.workspaces {
		if ws.version < minV {
			minV = ws.version
		}
	}
	return minV
}
