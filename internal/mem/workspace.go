package mem

import "fmt"

// Workspace is one thread's isolated view of a Segment: a snapshot version
// plus a private set of dirty pages. A workspace is owned by a single
// thread; only Segment-level operations (commit publication, GC) are
// internally synchronized.
type Workspace struct {
	seg     *Segment
	tid     int
	version int64 // snapshot version this view reflects
	dirty   map[int]*dirtyPage

	// Counters since the last TakeCounters call; the runtime converts
	// these into charged costs and stats.
	faults int64

	// faultPerturb, when set, is consulted on every serviced page fault
	// (CoW fault or prefetch population) and its result accumulates into
	// chaosFaultNS — the chaos subsystem's injected fault slowdown. The
	// runtime drains the accumulator (TakeChaosFaultNS) wherever it
	// charges fault or prefetch time, so the delay is pure modeled
	// latency: page contents and fault counts are untouched.
	faultPerturb func(page int) int64
	chaosFaultNS int64

	// predict enables write-set logging and page prefetching: faults and
	// first-writes are recorded into chunkWrites (the training signal for
	// the runtime's write-set predictor), and Prepopulate may install
	// prefetched pages that survive exactly one commit (see dirtyPage.pf).
	predict bool
	// chunkWrites logs the pages this chunk wrote (CoW faults plus first
	// writes to prefetched pages), in first-touch order, since the last
	// TakeChunkWrites. Only maintained while predict is set.
	chunkWrites []int

	// Commit-path scratch, reused across BeginCommit calls to avoid
	// re-allocating the sorted page list, the retained-prefetch list and
	// the pulled-page set on every commit. Owned by the workspace's
	// thread, like dirty.
	scratchPages   []int
	scratchKept    []int
	scratchTouched map[int]bool
}

// Prefetch states of a dirty page (dirtyPage.pf).
const (
	// pfNone: an ordinary copy-on-write page (faulted by a local write).
	pfNone uint8 = iota
	// pfFresh: installed by Prepopulate and not yet written. A fresh page
	// survives the next commit (the commit of the very sync op whose wait
	// the prefetch overlapped — the chunk it was prefetched for runs after
	// that commit), demoted to stale.
	pfFresh
	// pfStale: a prefetched page that survived one commit without ever
	// being written. The next commit drops it as a wasted prefetch unless
	// a Prepopulate re-predicts it first (refreshing it to pfFresh).
	pfStale
)

// dirtyPage is a privately writable copy of a page plus its pristine twin.
type dirtyPage struct {
	data []byte
	twin []byte
	// spec is the page's speculative diff (PrepareCommit). The invariant: a
	// non-nil spec always equals computeDiff(data, twin) over the current
	// contents. Local writes reset it to nil; remote imports do NOT, because
	// applyWhereClean is diff-preserving — it writes each pulled byte to
	// both data and twin only at positions where data[i] == twin[i], so
	// clean positions stay clean (both take the pulled byte) and dirty
	// positions are untouched in both, leaving the diff byte-identical.
	// TestApplyWhereCleanPreservesDiff/FuzzApplyWhereClean pin this.
	spec *Diff
	// pf is the page's prefetch state. A prefetched page holds data == twin
	// (no local modifications), which makes it semantically equivalent to a
	// clean page: updates import every remote byte into both copies
	// (applyWhereClean degenerates to a full copy), its diff is empty, and
	// commits drop it before any stats are counted — so prefetching can
	// never change memory contents, commit order, or commit statistics.
	pf uint8
}

// Tid returns the owning thread id.
func (ws *Workspace) Tid() int { return ws.tid }

// Version returns the snapshot version the workspace currently reflects.
func (ws *Workspace) Version() int64 { return ws.version }

// DirtyPages returns the number of pages currently copied-on-write.
func (ws *Workspace) DirtyPages() int { return len(ws.dirty) }

// TakeFaults returns and resets the number of copy-on-write faults since
// the previous call. The runtime charges page-fault costs from this.
func (ws *Workspace) TakeFaults() int64 {
	f := ws.faults
	ws.faults = 0
	return f
}

// SetFaultPerturb installs a per-fault delay source (nil removes it);
// see the faultPerturb field contract. Must be called by the owning
// thread.
func (ws *Workspace) SetFaultPerturb(f func(page int) int64) { ws.faultPerturb = f }

// TakeChaosFaultNS returns and resets the injected fault-servicing delay
// accumulated since the previous call; the runtime charges it alongside
// the modeled fault or prefetch cost it perturbs.
func (ws *Workspace) TakeChaosFaultNS() int64 {
	ns := ws.chaosFaultNS
	ws.chaosFaultNS = 0
	return ns
}

// Read copies len(buf) bytes starting at byte offset off into buf.
// Reads see the thread's own uncommitted stores (store buffer) overlaid on
// the snapshot, which is exactly TSO's read-own-writes-early behaviour.
func (ws *Workspace) Read(buf []byte, off int) {
	ws.checkRange(off, len(buf), "read")
	for len(buf) > 0 {
		pg, po := ws.seg.pageIndex(off)
		n := ws.seg.pageSize - po
		if n > len(buf) {
			n = len(buf)
		}
		var src []byte
		if dp, ok := ws.dirty[pg]; ok {
			src = dp.data
		} else {
			src = ws.seg.committedPage(pg, ws.version)
		}
		copy(buf[:n], src[po:po+n])
		buf = buf[n:]
		off += n
	}
}

// Write stores data at byte offset off, copy-on-write faulting each page on
// first touch.
func (ws *Workspace) Write(data []byte, off int) {
	ws.checkRange(off, len(data), "write")
	for len(data) > 0 {
		pg, po := ws.seg.pageIndex(off)
		n := ws.seg.pageSize - po
		if n > len(data) {
			n = len(data)
		}
		dp := ws.fault(pg)
		if dp.pf != pfNone {
			// First write to a prefetched page: the copy is already here, so
			// no fault was taken — the prefetch hit. It now carries local
			// modifications like any other dirty page, and it belongs in the
			// chunk's write set.
			dp.pf = pfNone
			ws.seg.notePrefetchHits(1)
			if ws.predict {
				ws.chunkWrites = append(ws.chunkWrites, pg)
			}
		}
		dp.spec = nil // the write invalidates any speculative diff
		copy(dp.data[po:po+n], data[:n])
		data = data[n:]
		off += n
	}
}

// fault returns the dirty copy of pg, creating it (and counting a fault) on
// first write, mirroring the kernel's copy-on-write page fault.
func (ws *Workspace) fault(pg int) *dirtyPage {
	if dp, ok := ws.dirty[pg]; ok {
		return dp
	}
	base := ws.seg.committedPage(pg, ws.version)
	dp := &dirtyPage{
		data: append([]byte(nil), base...),
		twin: append([]byte(nil), base...),
	}
	ws.dirty[pg] = dp
	ws.faults++
	if ws.faultPerturb != nil {
		ws.chaosFaultNS += ws.faultPerturb(pg)
	}
	ws.seg.noteFault(ws.predict)
	ws.seg.allocPages(2)
	if ws.predict {
		ws.chunkWrites = append(ws.chunkWrites, pg)
	}
	return dp
}

func (ws *Workspace) checkRange(off, n int, op string) {
	if off < 0 || n < 0 || off+n > ws.seg.size {
		panic(fmt.Sprintf("mem: %s [%d,%d) out of range of segment %q (size %d)",
			op, off, off+n, ws.seg.name, ws.seg.size))
	}
}

// Update advances the workspace to the segment head, importing remotely
// committed changes. Equivalent to UpdateTo with the current head.
func (ws *Workspace) Update() (pulled int) {
	return ws.UpdateTo(1 << 62)
}

// UpdateTo advances the workspace to version `at` (clamped to the current
// head; a no-op if the view is already there or past). Clean pages are
// refreshed implicitly (reads are served from the version chain); dirty
// pages are patched byte-wise so that only locations the local thread has
// not written take the remote values.
//
// The deterministic runtimes use the explicit target for barrier exits: the
// set of versions a thread imports must be fixed by the program's logical
// order, not by how far the head happens to have advanced when the thread
// physically wakes.
//
// It returns the number of distinct pages whose remote modifications were
// imported, which the runtime converts into page-propagation cost and the
// Figure 16 statistic.
func (ws *Workspace) UpdateTo(at int64) (pulled int) {
	s := ws.seg
	s.mu.Lock()
	head := at
	if head > s.head {
		head = s.head
	}
	if head <= ws.version {
		s.mu.Unlock()
		return 0
	}
	touched := make(map[int]bool)
	var patches []*pageSlot
	for i := ws.version - s.floor; i < head-s.floor; i++ {
		if i < 0 {
			// Should not happen: GC never passes a live workspace.
			panic(fmt.Sprintf("mem: workspace for tid %d (version %d) behind GC floor %d", ws.tid, ws.version, s.floor))
		}
		v := s.versions[i]
		for pg, slot := range v.Pages {
			touched[pg] = true
			if _, dirtyHere := ws.dirty[pg]; dirtyHere {
				patches = append(patches, slot)
			}
		}
	}
	ws.version = head
	s.mu.Unlock()
	// Patch dirty pages outside the segment lock; diffs are immutable after
	// phase 1 and patches is in version order because the version list is.
	for _, slot := range patches {
		dp := ws.dirty[slot.page]
		// Diff-preserving (see dirtyPage.spec): any speculative diff for
		// this page remains valid across the import.
		slot.diff.applyWhereClean(dp.data, dp.twin)
	}
	s.addPulled(int64(len(touched)))
	return len(touched)
}

// PrepareCommit speculatively computes the per-page diffs the next
// BeginCommit will need, so that work happens off the serial token path —
// the deterministic runtimes call it while a thread is still waiting for
// its turn in the global order. Pages that already hold a valid
// speculative diff are skipped, so repeated calls are cheap. A later local
// write invalidates a page's speculation (remote imports preserve it — see
// dirtyPage.spec) and BeginCommit re-diffs exactly the invalidated pages,
// making speculation invisible to commit results: version contents are
// byte-identical with and without it.
//
// Must be called by the owning thread; it reads and writes only
// thread-private state, so unlike BeginCommit it needs neither the
// caller's commit serialization nor the segment lock.
//
// Returns the number of pages diffed by this call (the runtime charges
// speculation cost from it).
func (ws *Workspace) PrepareCommit() int {
	prepared := 0
	for _, dp := range ws.dirty {
		if dp.spec == nil {
			d := computeDiff(dp.data, dp.twin)
			dp.spec = &d
			prepared++
		}
	}
	return prepared
}

// SetPredict switches write-set logging and prefetch support on or off.
// While enabled, the workspace records each chunk's written pages (see
// TakeChunkWrites) and BeginCommit retains unwritten prefetched pages for
// one commit instead of dropping them. Off by default; the deterministic
// runtime enables it when write-set prediction is configured.
func (ws *Workspace) SetPredict(on bool) {
	ws.predict = on
	if !on {
		ws.chunkWrites = nil
	}
}

// TakeChunkWrites returns the pages written since the previous call (CoW
// faults plus first writes to prefetched pages, in first-touch order,
// possibly with duplicates across Take boundaries — callers canonicalize)
// and resets the log. The returned slice is only valid until the next
// workspace write: it aliases the log buffer, which is reused. Always
// empty when predict is off.
func (ws *Workspace) TakeChunkWrites() []int {
	w := ws.chunkWrites
	ws.chunkWrites = ws.chunkWrites[:0]
	return w
}

// emptyDiff backs the speculative diff of prefetched pages: a prefetched
// page holds data == twin, whose diff is empty, so sharing one immutable
// zero-value Diff avoids a per-page allocation. BeginCommit copies specs
// by value and rediff replaces the pointer, so nothing ever writes
// through it.
var emptyDiff Diff

// Prepopulate installs copy-on-write copies of the given pages ahead of
// the writes a predictor expects, so those writes will not fault. It is
// the fault-servicing analogue of PrepareCommit: work hoisted off the
// serial token path into the deterministic-order wait.
//
// Pages already dirty are skipped (a previously prefetched page is
// refreshed to survive the next commit — re-predicting it renews its
// lease). Populated pages take the CoW copy without counting a fault and
// with an empty speculative diff pre-installed (valid because data ==
// twin). A mispredicted page is pure off-token waste: it stays
// byte-identical to the committed state through every update and commit
// patch (applyWhereClean imports all remote bytes into both copies), its
// commit diff is empty, and BeginCommit drops it before any statistic is
// counted — memory contents, commit order, and commit stats are exactly
// as if it had never been prefetched.
//
// Returns the number of pages newly populated (the runtime charges
// prefetch cost from it; refreshes are free — no copy happens).
func (ws *Workspace) Prepopulate(pages []int) (populated int) {
	for _, pg := range pages {
		if pg < 0 || pg >= ws.seg.NumPages() {
			continue
		}
		if dp, ok := ws.dirty[pg]; ok {
			if dp.pf == pfStale {
				dp.pf = pfFresh
			}
			continue
		}
		base := ws.seg.committedPage(pg, ws.version)
		dp := &dirtyPage{
			data: append([]byte(nil), base...),
			twin: append([]byte(nil), base...),
			spec: &emptyDiff,
			pf:   pfFresh,
		}
		ws.dirty[pg] = dp
		if ws.faultPerturb != nil {
			ws.chaosFaultNS += ws.faultPerturb(pg)
		}
		ws.seg.allocPages(2)
		populated++
	}
	return populated
}

// Discard drops all uncommitted local modifications.
func (ws *Workspace) Discard() {
	ws.seg.mu.Lock()
	defer ws.seg.mu.Unlock()
	ws.discardLocked()
}

func (ws *Workspace) discardLocked() {
	if n := len(ws.dirty); n > 0 {
		ws.seg.allocPages(int64(-2 * n))
		ws.dirty = make(map[int]*dirtyPage)
	}
}
