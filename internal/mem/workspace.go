package mem

import "fmt"

// Workspace is one thread's isolated view of a Segment: a snapshot version
// plus a private set of dirty pages. A workspace is owned by a single
// thread; only Segment-level operations (commit publication, GC) are
// internally synchronized.
type Workspace struct {
	seg     *Segment
	tid     int
	version int64 // snapshot version this view reflects
	dirty   map[int]*dirtyPage

	// Counters since the last TakeCounters call; the runtime converts
	// these into charged costs and stats.
	faults int64
}

// dirtyPage is a privately writable copy of a page plus its pristine twin.
type dirtyPage struct {
	data []byte
	twin []byte
}

// Tid returns the owning thread id.
func (ws *Workspace) Tid() int { return ws.tid }

// Version returns the snapshot version the workspace currently reflects.
func (ws *Workspace) Version() int64 { return ws.version }

// DirtyPages returns the number of pages currently copied-on-write.
func (ws *Workspace) DirtyPages() int { return len(ws.dirty) }

// TakeFaults returns and resets the number of copy-on-write faults since
// the previous call. The runtime charges page-fault costs from this.
func (ws *Workspace) TakeFaults() int64 {
	f := ws.faults
	ws.faults = 0
	return f
}

// Read copies len(buf) bytes starting at byte offset off into buf.
// Reads see the thread's own uncommitted stores (store buffer) overlaid on
// the snapshot, which is exactly TSO's read-own-writes-early behaviour.
func (ws *Workspace) Read(buf []byte, off int) {
	ws.checkRange(off, len(buf), "read")
	for len(buf) > 0 {
		pg, po := ws.seg.pageIndex(off)
		n := ws.seg.pageSize - po
		if n > len(buf) {
			n = len(buf)
		}
		var src []byte
		if dp, ok := ws.dirty[pg]; ok {
			src = dp.data
		} else {
			src = ws.seg.committedPage(pg, ws.version)
		}
		copy(buf[:n], src[po:po+n])
		buf = buf[n:]
		off += n
	}
}

// Write stores data at byte offset off, copy-on-write faulting each page on
// first touch.
func (ws *Workspace) Write(data []byte, off int) {
	ws.checkRange(off, len(data), "write")
	for len(data) > 0 {
		pg, po := ws.seg.pageIndex(off)
		n := ws.seg.pageSize - po
		if n > len(data) {
			n = len(data)
		}
		dp := ws.fault(pg)
		copy(dp.data[po:po+n], data[:n])
		data = data[n:]
		off += n
	}
}

// fault returns the dirty copy of pg, creating it (and counting a fault) on
// first write, mirroring the kernel's copy-on-write page fault.
func (ws *Workspace) fault(pg int) *dirtyPage {
	if dp, ok := ws.dirty[pg]; ok {
		return dp
	}
	base := ws.seg.committedPage(pg, ws.version)
	dp := &dirtyPage{
		data: append([]byte(nil), base...),
		twin: append([]byte(nil), base...),
	}
	ws.dirty[pg] = dp
	ws.faults++
	ws.seg.noteFaults(1)
	ws.seg.allocPages(2)
	return dp
}

func (ws *Workspace) checkRange(off, n int, op string) {
	if off < 0 || n < 0 || off+n > ws.seg.size {
		panic(fmt.Sprintf("mem: %s [%d,%d) out of range of segment %q (size %d)",
			op, off, off+n, ws.seg.name, ws.seg.size))
	}
}

// Update advances the workspace to the segment head, importing remotely
// committed changes. Equivalent to UpdateTo with the current head.
func (ws *Workspace) Update() (pulled int) {
	return ws.UpdateTo(1 << 62)
}

// UpdateTo advances the workspace to version `at` (clamped to the current
// head; a no-op if the view is already there or past). Clean pages are
// refreshed implicitly (reads are served from the version chain); dirty
// pages are patched byte-wise so that only locations the local thread has
// not written take the remote values.
//
// The deterministic runtimes use the explicit target for barrier exits: the
// set of versions a thread imports must be fixed by the program's logical
// order, not by how far the head happens to have advanced when the thread
// physically wakes.
//
// It returns the number of distinct pages whose remote modifications were
// imported, which the runtime converts into page-propagation cost and the
// Figure 16 statistic.
func (ws *Workspace) UpdateTo(at int64) (pulled int) {
	s := ws.seg
	s.mu.Lock()
	head := at
	if head > s.head {
		head = s.head
	}
	if head <= ws.version {
		s.mu.Unlock()
		return 0
	}
	touched := make(map[int]bool)
	var patches []*pageSlot
	for i := ws.version - s.floor; i < head-s.floor; i++ {
		if i < 0 {
			// Should not happen: GC never passes a live workspace.
			panic(fmt.Sprintf("mem: workspace for tid %d (version %d) behind GC floor %d", ws.tid, ws.version, s.floor))
		}
		v := s.versions[i]
		for pg, slot := range v.Pages {
			touched[pg] = true
			if _, dirtyHere := ws.dirty[pg]; dirtyHere {
				patches = append(patches, slot)
			}
		}
	}
	ws.version = head
	s.mu.Unlock()
	// Patch dirty pages outside the segment lock; diffs are immutable after
	// phase 1 and patches is in version order because the version list is.
	for _, slot := range patches {
		dp := ws.dirty[slot.page]
		slot.diff.applyWhereClean(dp.data, dp.twin)
	}
	s.addPulled(int64(len(touched)))
	return len(touched)
}

// Discard drops all uncommitted local modifications.
func (ws *Workspace) Discard() {
	ws.seg.mu.Lock()
	defer ws.seg.mu.Unlock()
	ws.discardLocked()
}

func (ws *Workspace) discardLocked() {
	if n := len(ws.dirty); n > 0 {
		ws.seg.allocPages(int64(-2 * n))
		ws.dirty = make(map[int]*dirtyPage)
	}
}
