package mem

import "fmt"

// Workspace is one thread's isolated view of a Segment: a snapshot version
// plus a private set of dirty pages. A workspace is owned by a single
// thread; only Segment-level operations (commit publication, GC) are
// internally synchronized.
type Workspace struct {
	seg     *Segment
	tid     int
	version int64 // snapshot version this view reflects
	dirty   map[int]*dirtyPage

	// Counters since the last TakeCounters call; the runtime converts
	// these into charged costs and stats.
	faults int64

	// Commit-path scratch, reused across BeginCommit calls to avoid
	// re-allocating the sorted page list and the pulled-page set on every
	// commit. Owned by the workspace's thread, like dirty.
	scratchPages   []int
	scratchTouched map[int]bool
}

// dirtyPage is a privately writable copy of a page plus its pristine twin.
type dirtyPage struct {
	data []byte
	twin []byte
	// spec is the page's speculative diff (PrepareCommit). The invariant: a
	// non-nil spec always equals computeDiff(data, twin) over the current
	// contents. Local writes reset it to nil; remote imports do NOT, because
	// applyWhereClean is diff-preserving — it writes each pulled byte to
	// both data and twin only at positions where data[i] == twin[i], so
	// clean positions stay clean (both take the pulled byte) and dirty
	// positions are untouched in both, leaving the diff byte-identical.
	// TestApplyWhereCleanPreservesDiff/FuzzApplyWhereClean pin this.
	spec *Diff
}

// Tid returns the owning thread id.
func (ws *Workspace) Tid() int { return ws.tid }

// Version returns the snapshot version the workspace currently reflects.
func (ws *Workspace) Version() int64 { return ws.version }

// DirtyPages returns the number of pages currently copied-on-write.
func (ws *Workspace) DirtyPages() int { return len(ws.dirty) }

// TakeFaults returns and resets the number of copy-on-write faults since
// the previous call. The runtime charges page-fault costs from this.
func (ws *Workspace) TakeFaults() int64 {
	f := ws.faults
	ws.faults = 0
	return f
}

// Read copies len(buf) bytes starting at byte offset off into buf.
// Reads see the thread's own uncommitted stores (store buffer) overlaid on
// the snapshot, which is exactly TSO's read-own-writes-early behaviour.
func (ws *Workspace) Read(buf []byte, off int) {
	ws.checkRange(off, len(buf), "read")
	for len(buf) > 0 {
		pg, po := ws.seg.pageIndex(off)
		n := ws.seg.pageSize - po
		if n > len(buf) {
			n = len(buf)
		}
		var src []byte
		if dp, ok := ws.dirty[pg]; ok {
			src = dp.data
		} else {
			src = ws.seg.committedPage(pg, ws.version)
		}
		copy(buf[:n], src[po:po+n])
		buf = buf[n:]
		off += n
	}
}

// Write stores data at byte offset off, copy-on-write faulting each page on
// first touch.
func (ws *Workspace) Write(data []byte, off int) {
	ws.checkRange(off, len(data), "write")
	for len(data) > 0 {
		pg, po := ws.seg.pageIndex(off)
		n := ws.seg.pageSize - po
		if n > len(data) {
			n = len(data)
		}
		dp := ws.fault(pg)
		dp.spec = nil // the write invalidates any speculative diff
		copy(dp.data[po:po+n], data[:n])
		data = data[n:]
		off += n
	}
}

// fault returns the dirty copy of pg, creating it (and counting a fault) on
// first write, mirroring the kernel's copy-on-write page fault.
func (ws *Workspace) fault(pg int) *dirtyPage {
	if dp, ok := ws.dirty[pg]; ok {
		return dp
	}
	base := ws.seg.committedPage(pg, ws.version)
	dp := &dirtyPage{
		data: append([]byte(nil), base...),
		twin: append([]byte(nil), base...),
	}
	ws.dirty[pg] = dp
	ws.faults++
	ws.seg.noteFaults(1)
	ws.seg.allocPages(2)
	return dp
}

func (ws *Workspace) checkRange(off, n int, op string) {
	if off < 0 || n < 0 || off+n > ws.seg.size {
		panic(fmt.Sprintf("mem: %s [%d,%d) out of range of segment %q (size %d)",
			op, off, off+n, ws.seg.name, ws.seg.size))
	}
}

// Update advances the workspace to the segment head, importing remotely
// committed changes. Equivalent to UpdateTo with the current head.
func (ws *Workspace) Update() (pulled int) {
	return ws.UpdateTo(1 << 62)
}

// UpdateTo advances the workspace to version `at` (clamped to the current
// head; a no-op if the view is already there or past). Clean pages are
// refreshed implicitly (reads are served from the version chain); dirty
// pages are patched byte-wise so that only locations the local thread has
// not written take the remote values.
//
// The deterministic runtimes use the explicit target for barrier exits: the
// set of versions a thread imports must be fixed by the program's logical
// order, not by how far the head happens to have advanced when the thread
// physically wakes.
//
// It returns the number of distinct pages whose remote modifications were
// imported, which the runtime converts into page-propagation cost and the
// Figure 16 statistic.
func (ws *Workspace) UpdateTo(at int64) (pulled int) {
	s := ws.seg
	s.mu.Lock()
	head := at
	if head > s.head {
		head = s.head
	}
	if head <= ws.version {
		s.mu.Unlock()
		return 0
	}
	touched := make(map[int]bool)
	var patches []*pageSlot
	for i := ws.version - s.floor; i < head-s.floor; i++ {
		if i < 0 {
			// Should not happen: GC never passes a live workspace.
			panic(fmt.Sprintf("mem: workspace for tid %d (version %d) behind GC floor %d", ws.tid, ws.version, s.floor))
		}
		v := s.versions[i]
		for pg, slot := range v.Pages {
			touched[pg] = true
			if _, dirtyHere := ws.dirty[pg]; dirtyHere {
				patches = append(patches, slot)
			}
		}
	}
	ws.version = head
	s.mu.Unlock()
	// Patch dirty pages outside the segment lock; diffs are immutable after
	// phase 1 and patches is in version order because the version list is.
	for _, slot := range patches {
		dp := ws.dirty[slot.page]
		// Diff-preserving (see dirtyPage.spec): any speculative diff for
		// this page remains valid across the import.
		slot.diff.applyWhereClean(dp.data, dp.twin)
	}
	s.addPulled(int64(len(touched)))
	return len(touched)
}

// PrepareCommit speculatively computes the per-page diffs the next
// BeginCommit will need, so that work happens off the serial token path —
// the deterministic runtimes call it while a thread is still waiting for
// its turn in the global order. Pages that already hold a valid
// speculative diff are skipped, so repeated calls are cheap. A later local
// write invalidates a page's speculation (remote imports preserve it — see
// dirtyPage.spec) and BeginCommit re-diffs exactly the invalidated pages,
// making speculation invisible to commit results: version contents are
// byte-identical with and without it.
//
// Must be called by the owning thread; it reads and writes only
// thread-private state, so unlike BeginCommit it needs neither the
// caller's commit serialization nor the segment lock.
//
// Returns the number of pages diffed by this call (the runtime charges
// speculation cost from it).
func (ws *Workspace) PrepareCommit() int {
	prepared := 0
	for _, dp := range ws.dirty {
		if dp.spec == nil {
			d := computeDiff(dp.data, dp.twin)
			dp.spec = &d
			prepared++
		}
	}
	return prepared
}

// Discard drops all uncommitted local modifications.
func (ws *Workspace) Discard() {
	ws.seg.mu.Lock()
	defer ws.seg.mu.Unlock()
	ws.discardLocked()
}

func (ws *Workspace) discardLocked() {
	if n := len(ws.dirty); n > 0 {
		ws.seg.allocPages(int64(-2 * n))
		ws.dirty = make(map[int]*dirtyPage)
	}
}
