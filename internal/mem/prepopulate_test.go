package mem

import (
	"bytes"
	"testing"
)

// TestPrepopulateAvoidsFault: a write landing on a prefetched page takes no
// copy-on-write fault and is counted as a prediction hit.
func TestPrepopulateAvoidsFault(t *testing.T) {
	s := newTestSegment(t, 4*64, 64)
	w0, _ := s.Snapshot(0)
	w0.Write([]byte{7, 7, 7}, 64) // page 1
	w0.Commit()

	w1, _ := s.Snapshot(1)
	w1.SetPredict(true)
	if n := w1.Prepopulate([]int{1}); n != 1 {
		t.Fatalf("Prepopulate = %d, want 1", n)
	}
	// The prefetched copy is the committed state.
	buf := make([]byte, 3)
	w1.Read(buf, 64)
	if !bytes.Equal(buf, []byte{7, 7, 7}) {
		t.Fatalf("prefetched page diverges from committed state: %v", buf)
	}
	faults := s.Stats().Faults
	w1.Write([]byte{9}, 64)
	st := s.Stats()
	if st.Faults != faults {
		t.Error("write to prefetched page faulted")
	}
	if st.PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d, want 1", st.PrefetchHits)
	}
	if st.PrefetchMisses != 0 {
		t.Errorf("PrefetchMisses = %d, want 0", st.PrefetchMisses)
	}
	// The chunk write log includes the hit (it belongs to the write set).
	if got := w1.TakeChunkWrites(); len(got) != 1 || got[0] != 1 {
		t.Errorf("chunk writes = %v, want [1]", got)
	}
}

// TestPrepopulateInvisibleToCommit: an unwritten prefetched page publishes
// nothing — commit stats and final memory are identical to a run that never
// prefetched.
func TestPrepopulateInvisibleToCommit(t *testing.T) {
	run := func(prefetch bool) (CommitStats, []byte) {
		s := newTestSegment(t, 4*64, 64)
		ws, _ := s.Snapshot(0)
		ws.SetPredict(true)
		if prefetch {
			ws.Prepopulate([]int{1, 2, 3})
		}
		ws.Write([]byte{1, 2, 3}, 0) // page 0 only
		cs := ws.Commit()
		final := make([]byte, 4*64)
		w2, _ := s.Snapshot(1)
		w2.Read(final, 0)
		return cs, final
	}
	csOff, memOff := run(false)
	csOn, memOn := run(true)
	if csOn != csOff {
		t.Errorf("commit stats differ: prefetch %+v, plain %+v", csOn, csOff)
	}
	if !bytes.Equal(memOn, memOff) {
		t.Error("final memory differs with prefetch on")
	}
}

// TestPrepopulateLease: an unwritten prefetched page survives exactly one
// commit; the next commit drops it and counts it wasted — unless a fresh
// prediction renews the lease.
func TestPrepopulateLease(t *testing.T) {
	s := newTestSegment(t, 4*64, 64)
	ws, _ := s.Snapshot(0)
	ws.SetPredict(true)

	ws.Prepopulate([]int{2})
	ws.Write([]byte{1}, 0)
	ws.Commit()
	if ws.DirtyPages() != 1 {
		t.Fatalf("prefetched page did not survive its first commit: %d dirty", ws.DirtyPages())
	}
	if w := s.Stats().PrefetchWasted; w != 0 {
		t.Fatalf("wasted after first commit = %d, want 0", w)
	}

	// Re-predicting the page renews the lease (no copy happens).
	if n := ws.Prepopulate([]int{2}); n != 0 {
		t.Fatalf("refresh counted as populated: %d", n)
	}
	ws.Write([]byte{2}, 0)
	ws.Commit()
	if ws.DirtyPages() != 1 {
		t.Fatal("refreshed page did not survive the second commit")
	}

	// No refresh: the stale page is dropped and counted wasted.
	ws.Write([]byte{3}, 0)
	ws.Commit()
	if ws.DirtyPages() != 0 {
		t.Fatalf("stale prefetched page retained: %d dirty", ws.DirtyPages())
	}
	if w := s.Stats().PrefetchWasted; w != 1 {
		t.Errorf("PrefetchWasted = %d, want 1", w)
	}
}

// TestPrepopulateTracksRemoteCommits: a prefetched page behaves like a
// clean page under Update — remote bytes land in it, and it still
// publishes nothing.
func TestPrepopulateTracksRemoteCommits(t *testing.T) {
	s := newTestSegment(t, 4*64, 64)
	w0, _ := s.Snapshot(0)
	w1, _ := s.Snapshot(1)
	w1.SetPredict(true)
	w1.Prepopulate([]int{1})

	w0.Write([]byte{5, 5}, 64) // remote commit to the prefetched page
	w0.Commit()

	if pulled := w1.Update(); pulled == 0 {
		t.Fatal("Update pulled nothing")
	}
	buf := make([]byte, 2)
	w1.Read(buf, 64)
	if !bytes.Equal(buf, []byte{5, 5}) {
		t.Fatalf("prefetched page missed the remote commit: %v", buf)
	}
	cs := w1.Commit()
	if cs.CommittedPages != 0 {
		t.Errorf("unwritten prefetched page published %d pages", cs.CommittedPages)
	}
}

func TestPrepopulateSkipsOutOfRange(t *testing.T) {
	s := newTestSegment(t, 4*64, 64)
	ws, _ := s.Snapshot(0)
	if n := ws.Prepopulate([]int{-1, 4, 100}); n != 0 {
		t.Fatalf("out-of-range pages populated: %d", n)
	}
	if ws.DirtyPages() != 0 {
		t.Fatal("out-of-range prepopulate left dirty pages")
	}
}

func BenchmarkPrepopulate(b *testing.B) {
	const pages = 64
	s, err := NewSegment(SegmentConfig{Name: "bench", Size: pages * 4096, PageSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	ws, _ := s.Snapshot(0)
	ws.SetPredict(true)
	set := make([]int, pages)
	for i := range set {
		set[i] = i
	}
	b.SetBytes(pages * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Prepopulate(set)
		ws.Discard()
	}
}
