package mem

import (
	"bytes"
	"reflect"
	"testing"
)

// Byte-at-a-time reference implementations of the word-wide kernels in
// diff.go. The fuzz targets below pin the optimized kernels to these; the
// benchmarks in diff_bench_test.go measure the speedup against them.

func computeDiffRef(cur, twin []byte) Diff {
	var d Diff
	for i := 0; i < len(cur); {
		if cur[i] == twin[i] {
			i++
			continue
		}
		start := i
		for i < len(cur) && cur[i] != twin[i] {
			i++
		}
		d.Runs = append(d.Runs, Run{Off: start, Data: append([]byte(nil), cur[start:i]...)})
	}
	return d
}

func applyWhereCleanRef(d Diff, dst, twin []byte) {
	for _, r := range d.Runs {
		for k, b := range r.Data {
			if dst[r.Off+k] == twin[r.Off+k] {
				dst[r.Off+k] = b
				twin[r.Off+k] = b
			}
		}
	}
}

// clip returns equal-length copies of a and b (truncated to the shorter),
// so fuzz inputs of any shape become a valid cur/twin pair. Lengths not
// divisible by 8 exercise the sub-word tail loops.
func clip(a, b []byte) ([]byte, []byte) {
	n := min(len(a), len(b))
	return append([]byte(nil), a[:n]...), append([]byte(nil), b[:n]...)
}

func fuzzSeedPairs(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1}, []byte{2})
	f.Add([]byte("12345678"), []byte("12345678"))                         // exactly one word, clean
	f.Add([]byte("abcdefgh"), []byte("abcdefgX"))                         // word with tail byte dirty
	f.Add([]byte("123456789abcd"), []byte("x23456789abcY"))               // 13 bytes: word + 5-byte tail
	f.Add(bytes.Repeat([]byte{0xaa}, 64), bytes.Repeat([]byte{0x55}, 64)) // dense
	f.Add(bytes.Repeat([]byte{7}, 31), bytes.Repeat([]byte{7}, 31))       // clean, 8∤31
	f.Add([]byte("same....DIFF....same....X"), []byte("same....diff....same....Y"))
}

// FuzzComputeDiff pins the word-wide diff kernel to the byte-loop
// reference: identical runs (offsets, lengths, bytes) for every cur/twin
// pair, including lengths not divisible by the word size.
func FuzzComputeDiff(f *testing.F) {
	fuzzSeedPairs(f)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		cur, twin := clip(a, b)
		got, want := computeDiff(cur, twin), computeDiffRef(cur, twin)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("computeDiff mismatch\ncur  %x\ntwin %x\ngot  %+v\nwant %+v", cur, twin, got, want)
		}
		// Byte-exactness invariant: runs never include an unchanged byte,
		// and applying the diff to a copy of twin reproduces cur.
		for _, r := range got.Runs {
			for k, by := range r.Data {
				if twin[r.Off+k] == by {
					t.Fatalf("run [%d,+%d) includes unchanged byte at %d", r.Off, len(r.Data), r.Off+k)
				}
			}
		}
		rt := append([]byte(nil), twin...)
		got.apply(rt)
		if !bytes.Equal(rt, cur) {
			t.Fatalf("apply(twin) != cur\ngot  %x\nwant %x", rt, cur)
		}
	})
}

// FuzzApplyWhereClean pins the masked word-wide merge to the byte-loop
// reference, and checks the diff-preservation property the speculative
// commit path depends on (see dirtyPage.spec): patching a page pair never
// changes what computeDiff reports for it.
func FuzzApplyWhereClean(f *testing.F) {
	fuzzSeedPairs(f)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		dst, twin := clip(a, b)
		// The incoming diff models a remote commit against the same base:
		// derive it from a scrambled copy so runs land both on clean and on
		// locally-dirty positions.
		remote := append([]byte(nil), twin...)
		for i := range remote {
			if i%3 != 0 {
				remote[i] ^= 0x5a
			}
		}
		d := computeDiffRef(remote, twin)

		dst2 := append([]byte(nil), dst...)
		twin2 := append([]byte(nil), twin...)
		before := computeDiff(dst, twin)

		d.applyWhereClean(dst, twin)
		applyWhereCleanRef(d, dst2, twin2)
		if !bytes.Equal(dst, dst2) || !bytes.Equal(twin, twin2) {
			t.Fatalf("applyWhereClean mismatch\ndst  %x\nref  %x\ntwin %x\nref  %x", dst, dst2, twin, twin2)
		}
		if after := computeDiff(dst, twin); !reflect.DeepEqual(before, after) {
			t.Fatalf("patch changed the local diff\nbefore %+v\nafter  %+v", before, after)
		}
	})
}

// TestApplyWhereCleanPreservesDiff is the deterministic statement of the
// preservation property for a hand-built case: a pulled run overlapping a
// locally dirty stretch takes effect only at clean bytes, and the local
// diff is byte-identical before and after.
func TestApplyWhereCleanPreservesDiff(t *testing.T) {
	twin := []byte("0123456789abcdef0123456789abcdef") // 32 bytes
	dst := append([]byte(nil), twin...)
	copy(dst[10:14], "WXYZ") // local store buffer: bytes 10..13 dirty

	d := Diff{Runs: []Run{{Off: 8, Data: []byte("remotekin")}}} // pulls 8..16
	before := computeDiff(dst, twin)

	d.applyWhereClean(dst, twin)

	if !bytes.Equal(dst[10:14], []byte("WXYZ")) {
		t.Errorf("local writes clobbered: %q", dst[10:14])
	}
	if !bytes.Equal(dst[8:10], []byte("re")) || !bytes.Equal(dst[14:17], []byte("kin")) {
		t.Errorf("clean bytes not imported: %q", dst[8:17])
	}
	if !bytes.Equal(dst[8:10], twin[8:10]) || !bytes.Equal(dst[14:17], twin[14:17]) {
		t.Error("twin not kept in sync at imported bytes")
	}
	after := computeDiff(dst, twin)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("import changed the local diff\nbefore %+v\nafter  %+v", before, after)
	}
}

// TestNonzeroByteMask exercises the exact per-byte mask on every byte
// pattern in one lane plus mixed-lane words.
func TestNonzeroByteMask(t *testing.T) {
	for v := 0; v < 256; v++ {
		want := uint64(0)
		if v != 0 {
			want = 0xff
		}
		if got := nonzeroByteMask(uint64(v)) & 0xff; got != want {
			t.Fatalf("nonzeroByteMask(%#x) low byte = %#x, want %#x", v, got, want)
		}
	}
	cases := map[uint64]uint64{
		0x0000000000000000: 0x0000000000000000,
		0x0100000000000080: 0xff000000000000ff,
		0x80007f0001ff0000: 0xff00ff00ffff0000,
		0xffffffffffffffff: 0xffffffffffffffff,
	}
	for x, want := range cases {
		if got := nonzeroByteMask(x); got != want {
			t.Errorf("nonzeroByteMask(%#016x) = %#016x, want %#016x", x, got, want)
		}
	}
}
