package mem

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTestSegment(t *testing.T, size, pageSize int) *Segment {
	t.Helper()
	s, err := NewSegment(SegmentConfig{Name: "test", Size: size, PageSize: pageSize})
	if err != nil {
		t.Fatalf("NewSegment: %v", err)
	}
	return s
}

func TestNewSegmentValidation(t *testing.T) {
	if _, err := NewSegment(SegmentConfig{Name: "x", Size: 0}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewSegment(SegmentConfig{Name: "x", Size: 100, PageSize: 100}); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	s, err := NewSegment(SegmentConfig{Name: "x", Size: 100, PageSize: 64})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if s.Size() != 128 {
		t.Errorf("size not rounded to pages: got %d want 128", s.Size())
	}
	if s.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", s.NumPages())
	}
}

func TestZeroInitialized(t *testing.T) {
	s := newTestSegment(t, 4*64, 64)
	ws, err := s.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*64)
	ws.Read(buf, 0)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
	if got := s.Stats().CurPages; got != 0 {
		t.Errorf("reading untouched segment allocated %d pages", got)
	}
}

func TestReadOwnWrites(t *testing.T) {
	s := newTestSegment(t, 256, 64)
	ws, _ := s.Snapshot(0)
	ws.Write([]byte{1, 2, 3}, 62) // crosses page boundary at 64
	buf := make([]byte, 3)
	ws.Read(buf, 62)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Fatalf("read-own-writes failed: %v", buf)
	}
	if ws.DirtyPages() != 2 {
		t.Errorf("crossing write dirtied %d pages, want 2", ws.DirtyPages())
	}
	// Uncommitted writes are invisible to other workspaces.
	ws2, _ := s.Snapshot(1)
	ws2.Read(buf, 62)
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Fatalf("isolation violated: %v", buf)
	}
}

func TestCommitPublishes(t *testing.T) {
	s := newTestSegment(t, 256, 64)
	w0, _ := s.Snapshot(0)
	w1, _ := s.Snapshot(1)

	w0.Write([]byte("hello"), 10)
	cs := w0.Commit()
	if cs.CommittedPages != 1 || cs.MergedPages != 0 || cs.DiffBytes != 5 {
		t.Errorf("commit stats = %+v", cs)
	}
	if s.Head() != 1 {
		t.Errorf("head = %d, want 1", s.Head())
	}

	// w1 does not see it until update.
	buf := make([]byte, 5)
	w1.Read(buf, 10)
	if !bytes.Equal(buf, make([]byte, 5)) {
		t.Fatal("w1 saw uncommitted-to-it data before update")
	}
	if pulled := w1.Update(); pulled != 1 {
		t.Errorf("pulled = %d, want 1", pulled)
	}
	w1.Read(buf, 10)
	if string(buf) != "hello" {
		t.Fatalf("after update read %q", buf)
	}
}

func TestForEachPageHash(t *testing.T) {
	s := newTestSegment(t, 256, 64)
	w0, _ := s.Snapshot(0)
	w0.Write([]byte("hello"), 10) // page 0
	w0.Write([]byte("x"), 130)    // page 2
	pc := w0.BeginCommit()
	v := pc.Version()
	if v == nil {
		t.Fatal("no version")
	}
	// Hashing before Complete must be safe (resolve is idempotent) and
	// ascending by page.
	var pages []int
	hashes := map[int]uint64{}
	v.ForEachPageHash(func(pg int, h uint64) {
		pages = append(pages, pg)
		hashes[pg] = h
	})
	pc.Complete()
	if len(pages) != 2 || pages[0] != 0 || pages[1] != 2 {
		t.Fatalf("pages = %v", pages)
	}
	// The hash is over the committed content: recompute from ReadCommitted.
	buf := make([]byte, 64)
	s.ReadCommitted(buf, 0, s.Head())
	h := uint64(14695981039346656037)
	for _, b := range buf {
		h = (h ^ uint64(b)) * 1099511628211
	}
	if hashes[0] != h {
		t.Fatalf("page 0 hash %016x, want %016x", hashes[0], h)
	}
	// A different write produces a different hash.
	w1, _ := s.Snapshot(1)
	w1.Update()
	w1.Write([]byte("hellp"), 10)
	pc1 := w1.BeginCommit()
	v1 := pc1.Version()
	var h1 uint64
	v1.ForEachPageHash(func(pg int, h uint64) {
		if pg == 0 {
			h1 = h
		}
	})
	pc1.Complete()
	if h1 == hashes[0] {
		t.Fatal("different content, same page hash")
	}
}

func TestEmptyDiffProducesNoVersion(t *testing.T) {
	s := newTestSegment(t, 256, 64)
	ws, _ := s.Snapshot(0)
	// Write the value that's already there (zero): a fault but no change.
	ws.Write([]byte{0, 0, 0}, 0)
	if ws.DirtyPages() != 1 {
		t.Fatal("expected a dirty page")
	}
	cs := ws.Commit()
	if cs.CommittedPages != 0 {
		t.Errorf("no-op commit published %d pages", cs.CommittedPages)
	}
	if s.Head() != 0 {
		t.Errorf("head advanced to %d on no-op commit", s.Head())
	}
	if got := s.Stats().CurPages; got != 0 {
		t.Errorf("no-op commit leaked %d pages", got)
	}
}

// TestByteMergeLastWriterWins is the core TSO merge semantics test:
// two threads write disjoint bytes of the same page; both writes survive.
// Overlapping bytes take the later committer's value.
func TestByteMergeLastWriterWins(t *testing.T) {
	s := newTestSegment(t, 64, 64)
	w0, _ := s.Snapshot(0)
	w1, _ := s.Snapshot(1)

	w0.Write([]byte{0xAA}, 0)
	w0.Write([]byte{0x11}, 32) // overlap with w1
	w1.Write([]byte{0xBB}, 63)
	w1.Write([]byte{0x22}, 32) // overlap with w0

	w0.Commit()
	cs := w1.Commit() // w1 commits second: conflict merge
	if cs.MergedPages != 1 {
		t.Errorf("expected 1 merged page, got %+v", cs)
	}

	buf := make([]byte, 64)
	s.ReadCommitted(buf, 0, s.Head())
	if buf[0] != 0xAA {
		t.Errorf("w0's disjoint byte lost: %#x", buf[0])
	}
	if buf[63] != 0xBB {
		t.Errorf("w1's disjoint byte lost: %#x", buf[63])
	}
	if buf[32] != 0x22 {
		t.Errorf("last-writer-wins violated at overlap: %#x want 0x22", buf[32])
	}
}

func TestCommitOrderDeterminesWinner(t *testing.T) {
	// Same writes, opposite commit order: opposite winner.
	s := newTestSegment(t, 64, 64)
	w0, _ := s.Snapshot(0)
	w1, _ := s.Snapshot(1)
	w0.Write([]byte{0x11}, 32)
	w1.Write([]byte{0x22}, 32)
	w1.Commit()
	w0.Commit()
	var b [1]byte
	s.ReadCommitted(b[:], 32, s.Head())
	if b[0] != 0x11 {
		t.Errorf("w0 committed last but byte = %#x", b[0])
	}
}

// TestUpdatePreservesLocalStores checks the store-buffer property: an
// update imports remote bytes only where the local thread has not written.
func TestUpdatePreservesLocalStores(t *testing.T) {
	s := newTestSegment(t, 64, 64)
	w0, _ := s.Snapshot(0)
	w1, _ := s.Snapshot(1)

	w1.Write([]byte{7}, 5) // local uncommitted store
	w0.Write([]byte{9}, 5) // remote store, same byte
	w0.Write([]byte{3}, 6) // remote store, different byte
	w0.Commit()

	w1.Update()
	buf := make([]byte, 2)
	w1.Read(buf, 5)
	if buf[0] != 7 {
		t.Errorf("local store clobbered by update: %d", buf[0])
	}
	if buf[1] != 3 {
		t.Errorf("remote store not imported: %d", buf[1])
	}
	// When w1 commits, its byte 5 wins (it is the later commit) but byte 6
	// keeps w0's value (w1 never wrote it).
	w1.Commit()
	s.ReadCommitted(buf, 5, s.Head())
	if buf[0] != 7 || buf[1] != 3 {
		t.Errorf("final state = %v, want [7 3]", buf)
	}
}

func TestTwoPhaseCommitParallel(t *testing.T) {
	// Three committers touch the same page; phase 1 in order 0,1,2, then
	// Complete runs concurrently in reverse order. The chain must resolve
	// and yield the same result as sequential commits.
	s := newTestSegment(t, 64, 64)
	var ws [3]*Workspace
	var pcs [3]*PendingCommit
	for i := range ws {
		ws[i], _ = s.Snapshot(i)
	}
	for i := range ws {
		ws[i].Write([]byte{byte(i + 1)}, i)  // disjoint bytes
		ws[i].Write([]byte{byte(i + 1)}, 40) // overlapping byte
		pcs[i] = ws[i].BeginCommit()
	}
	var wg sync.WaitGroup
	for i := 2; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pcs[i].Complete()
		}(i)
	}
	wg.Wait()
	buf := make([]byte, 64)
	s.ReadCommitted(buf, 0, s.Head())
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Errorf("disjoint bytes lost: % x", buf[:3])
	}
	if buf[40] != 3 {
		t.Errorf("overlap should be last committer's (3): %d", buf[40])
	}
}

func TestCompleteThroughMatchesParallelComplete(t *testing.T) {
	run := func(useThrough bool) []byte {
		s := newTestSegment(t, 128, 64)
		var pcs []*PendingCommit
		for i := 0; i < 4; i++ {
			w, _ := s.Snapshot(i)
			w.Write([]byte{byte(10 + i)}, 3)
			w.Write([]byte{byte(i)}, 64+i)
			pcs = append(pcs, w.BeginCommit())
		}
		if useThrough {
			s.CompleteThrough(s.Head())
		} else {
			var wg sync.WaitGroup
			for _, pc := range pcs {
				wg.Add(1)
				go func(pc *PendingCommit) { defer wg.Done(); pc.Complete() }(pc)
			}
			wg.Wait()
		}
		buf := make([]byte, 128)
		s.ReadCommitted(buf, 0, s.Head())
		return buf
	}
	if !bytes.Equal(run(true), run(false)) {
		t.Fatal("CompleteThrough result differs from parallel Complete")
	}
}

func TestGCSquashesVersions(t *testing.T) {
	s := newTestSegment(t, 256, 64)
	w0, _ := s.Snapshot(0)
	for i := 0; i < 10; i++ {
		w0.Write([]byte{byte(i + 1)}, i)
		w0.Commit()
	}
	if rv := s.RetainedVersions(); rv != 10 {
		t.Fatalf("retained %d versions, want 10", rv)
	}
	s.GC()
	if rv := s.RetainedVersions(); rv != 0 {
		t.Errorf("GC left %d versions (workspace is at head)", rv)
	}
	// State is preserved.
	buf := make([]byte, 10)
	s.ReadCommitted(buf, 0, s.Head())
	for i := range buf {
		if buf[i] != byte(i+1) {
			t.Fatalf("GC corrupted state at %d: %d", i, buf[i])
		}
	}
	// A lagging workspace pins versions: w1 snapshots before both commits,
	// so neither may be folded.
	w1, _ := s.Snapshot(1)
	w0.Write([]byte{99}, 0)
	w0.Commit()
	w2, _ := s.Snapshot(2)
	w0.Write([]byte{98}, 0)
	w0.Commit()
	s.GC()
	if rv := s.RetainedVersions(); rv != 2 {
		t.Errorf("w1 should pin both versions: retained %d, want 2", rv)
	}
	// Advancing w1 past the first commit lets exactly one version fold.
	s.Release(w1)
	w2.Update()
	s.GC()
	if rv := s.RetainedVersions(); rv != 0 {
		t.Errorf("all workspaces at head: retained %d, want 0", rv)
	}
}

func TestGCBudget(t *testing.T) {
	s, err := NewSegment(SegmentConfig{Name: "b", Size: 64 * 64, PageSize: 64, GCPageBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := s.Snapshot(0)
	// Each commit rewrites the same 8 pages, superseding the previous
	// version's pages.
	for i := 0; i < 6; i++ {
		for pg := 0; pg < 8; pg++ {
			w.Write([]byte{byte(i + 1)}, pg*64)
		}
		w.Commit()
	}
	if rv := s.RetainedVersions(); rv != 6 {
		t.Fatalf("retained %d versions, want 6", rv)
	}
	// First fold frees no base pages (base was zero), so the budget check
	// lets a second version fold too (8 reclaims) before stopping.
	s.GC()
	if rv := s.RetainedVersions(); rv != 4 {
		t.Fatalf("first GC: retained %d, want 4", rv)
	}
	// Each subsequent invocation folds exactly one version: folding one
	// reclaims 8 >= budget 2.
	s.GC()
	if rv := s.RetainedVersions(); rv != 3 {
		t.Errorf("budgeted GC folded more than one version: retained %d, want 3", rv)
	}
	// An unbudgeted segment drains fully in one call.
	st := s.Stats()
	if st.GCReclaimedPages == 0 {
		t.Error("no reclaims recorded")
	}
}

func TestSnapshotPerTidExclusive(t *testing.T) {
	s := newTestSegment(t, 64, 64)
	if _, err := s.Snapshot(7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(7); err == nil {
		t.Fatal("duplicate workspace for same tid allowed")
	}
}

func TestReleaseUnpinsGC(t *testing.T) {
	s := newTestSegment(t, 64, 64)
	w0, _ := s.Snapshot(0)
	w1, _ := s.Snapshot(1)
	w0.Write([]byte{1}, 0)
	w0.Commit()
	s.GC()
	if s.RetainedVersions() != 1 {
		t.Fatal("w1 should pin the version")
	}
	s.Release(w1)
	s.GC()
	if s.RetainedVersions() != 0 {
		t.Error("released workspace still pins versions")
	}
	// Released tid can snapshot again.
	if _, err := s.Snapshot(1); err != nil {
		t.Errorf("re-snapshot after release: %v", err)
	}
}

func TestDiscardDropsWrites(t *testing.T) {
	s := newTestSegment(t, 64, 64)
	w, _ := s.Snapshot(0)
	w.Write([]byte{1, 2, 3}, 0)
	w.Discard()
	if cs := w.Commit(); cs.CommittedPages != 0 {
		t.Errorf("discarded writes still committed: %+v", cs)
	}
	if got := s.Stats().CurPages; got != 0 {
		t.Errorf("discard leaked %d pages", got)
	}
}

func TestFaultAccounting(t *testing.T) {
	s := newTestSegment(t, 256, 64)
	w, _ := s.Snapshot(0)
	w.Write([]byte{1}, 0)
	w.Write([]byte{2}, 1) // same page: no new fault
	w.Write([]byte{3}, 64)
	if f := w.TakeFaults(); f != 2 {
		t.Errorf("TakeFaults = %d, want 2", f)
	}
	if f := w.TakeFaults(); f != 0 {
		t.Errorf("TakeFaults did not reset: %d", f)
	}
	if got := s.Stats().Faults; got != 2 {
		t.Errorf("segment fault stat = %d, want 2", got)
	}
}

func TestPeakPagesTracksDirtyAndCommitted(t *testing.T) {
	s := newTestSegment(t, 64*16, 64)
	w, _ := s.Snapshot(0)
	for pg := 0; pg < 4; pg++ {
		w.Write([]byte{1}, pg*64)
	}
	st := s.Stats()
	if st.CurPages != 8 { // 4 dirty + 4 twins
		t.Errorf("CurPages during local work = %d, want 8", st.CurPages)
	}
	w.Commit()
	st = s.Stats()
	if st.CurPages != 4 { // 4 committed version pages
		t.Errorf("CurPages after commit = %d, want 4", st.CurPages)
	}
	if st.PeakPages != 8 {
		t.Errorf("PeakPages = %d, want 8", st.PeakPages)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := newTestSegment(t, 64, 64)
	w, _ := s.Snapshot(0)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("write past end", func() { w.Write([]byte{1}, 64) })
	mustPanic("negative read", func() { w.Read(make([]byte, 1), -1) })
}

// --- property-based tests ---

// propMergeEquivalence: for random write sets by two threads, committing
// through workspaces yields the same final page as applying the writes to a
// flat array in commit order.
func TestPropMergeMatchesFlatReplay(t *testing.T) {
	const pageSize = 64
	f := func(seed int64, nWrites uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := NewSegment(SegmentConfig{Name: "p", Size: pageSize, PageSize: pageSize})
		w0, _ := s.Snapshot(0)
		w1, _ := s.Snapshot(1)
		flat := make([]byte, pageSize)

		type write struct {
			tid, off int
			val      byte
		}
		var writes []write
		n := int(nWrites%16) + 1
		for i := 0; i < n; i++ {
			writes = append(writes, write{
				tid: rng.Intn(2),
				off: rng.Intn(pageSize),
				val: byte(rng.Intn(255) + 1),
			})
		}
		for _, wr := range writes {
			ws := w0
			if wr.tid == 1 {
				ws = w1
			}
			ws.Write([]byte{wr.val}, wr.off)
		}
		// Commit order decided by seed; replay respects it: first committer's
		// bytes land first, second overwrite where they overlap.
		order := []*Workspace{w0, w1}
		if seed%2 == 0 {
			order[0], order[1] = order[1], order[0]
		}
		for _, ws := range order {
			for _, wr := range writes {
				if (wr.tid == 0) == (ws == w0) {
					flat[wr.off] = wr.val
				}
			}
			ws.Commit()
		}
		got := make([]byte, pageSize)
		s.ReadCommitted(got, 0, s.Head())
		return bytes.Equal(got, flat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// propDiffRoundtrip: diff(twin→cur) applied to twin reproduces cur, and the
// diff never contains an unchanged byte.
func TestPropDiffRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		twin := make([]byte, n)
		rng.Read(twin)
		cur := append([]byte(nil), twin...)
		for i := 0; i < rng.Intn(50); i++ {
			cur[rng.Intn(n)] = byte(rng.Intn(256))
		}
		d := computeDiff(cur, twin)
		for _, r := range d.Runs {
			for k, b := range r.Data {
				if twin[r.Off+k] == b {
					return false // unchanged byte captured: merge hazard
				}
			}
		}
		out := append([]byte(nil), twin...)
		d.apply(out)
		return bytes.Equal(out, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// propVersionMonotonic: heads and workspace versions never move backwards
// under an arbitrary interleaving of writes/commits/updates.
func TestPropVersionMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := NewSegment(SegmentConfig{Name: "m", Size: 512, PageSize: 64})
		var wss []*Workspace
		for i := 0; i < 3; i++ {
			w, _ := s.Snapshot(i)
			wss = append(wss, w)
		}
		lastHead := int64(0)
		lastV := make([]int64, 3)
		for step := 0; step < 100; step++ {
			i := rng.Intn(3)
			w := wss[i]
			switch rng.Intn(4) {
			case 0:
				w.Write([]byte{byte(rng.Intn(256))}, rng.Intn(512))
			case 1:
				w.Commit()
			case 2:
				w.Update()
			case 3:
				s.GC()
			}
			if h := s.Head(); h < lastHead {
				return false
			} else {
				lastHead = h
			}
			if w.Version() < lastV[i] {
				return false
			}
			lastV[i] = w.Version()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// propInterleavingIndependence: with commits serialized in a fixed order,
// the final memory state does not depend on when updates happen.
func TestPropUpdateTimingIrrelevant(t *testing.T) {
	run := func(seed int64, updateEvery int) []byte {
		rng := rand.New(rand.NewSource(seed))
		s, _ := NewSegment(SegmentConfig{Name: "u", Size: 256, PageSize: 64})
		var wss []*Workspace
		for i := 0; i < 3; i++ {
			w, _ := s.Snapshot(i)
			wss = append(wss, w)
		}
		for step := 0; step < 60; step++ {
			w := wss[step%3]
			w.Write([]byte{byte(rng.Intn(256))}, rng.Intn(256))
			if step%4 == 3 {
				w.Commit()
			}
			// Draw unconditionally so both runs consume the same stream.
			who := rng.Intn(3)
			if updateEvery > 0 && step%updateEvery == 0 {
				wss[who].Update()
			}
		}
		for _, w := range wss {
			w.Commit()
		}
		buf := make([]byte, 256)
		s.ReadCommitted(buf, 0, s.Head())
		return buf
	}
	for seed := int64(0); seed < 10; seed++ {
		a := run(seed, 0)
		b := run(seed, 1)
		c := run(seed, 7)
		if !bytes.Equal(a, b) || !bytes.Equal(a, c) {
			t.Fatalf("seed %d: update timing changed final state", seed)
		}
	}
}

func TestManyConcurrentReaders(t *testing.T) {
	// Committed pages may be read concurrently while other threads commit.
	s := newTestSegment(t, 4096, 64)
	w, _ := s.Snapshot(100)
	for pg := 0; pg < 64; pg++ {
		w.Write([]byte{byte(pg)}, pg*64)
	}
	w.Commit()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ws, err := s.Snapshot(r)
			if err != nil {
				t.Errorf("snapshot %d: %v", r, err)
				return
			}
			buf := make([]byte, 1)
			for pg := 0; pg < 64; pg++ {
				ws.Read(buf, pg*64)
				if buf[0] != byte(pg) {
					t.Errorf("reader %d page %d: got %d", r, pg, buf[0])
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestUpdateTimingExample(t *testing.T) {
	// Regression: update between two remote commits to the same dirty page
	// must not double-apply or skip diffs.
	s := newTestSegment(t, 64, 64)
	w0, _ := s.Snapshot(0)
	w1, _ := s.Snapshot(1)
	w1.Write([]byte{50}, 10) // local store at byte 10

	w0.Write([]byte{1}, 0)
	w0.Commit()
	w1.Update() // imports byte0=1
	w0.Write([]byte{2}, 1)
	w0.Commit()
	w1.Update() // imports byte1=2 only (byte0 diff already applied)

	buf := make([]byte, 3)
	w1.Read(buf, 0)
	if buf[0] != 1 || buf[1] != 2 {
		t.Errorf("view = %v", buf)
	}
	cs := w1.Commit()
	if cs.DiffBytes != 1 {
		t.Errorf("w1 commit should contain only its own byte: %+v", cs)
	}
	var b [1]byte
	s.ReadCommitted(b[:], 10, s.Head())
	if b[0] != 50 {
		t.Errorf("w1's store lost: %d", b[0])
	}
}

func ExampleWorkspace_Commit() {
	s, _ := NewSegment(SegmentConfig{Name: "heap", Size: 1 << 16})
	a, _ := s.Snapshot(0)
	b, _ := s.Snapshot(1)
	a.Write([]byte("deterministic"), 0)
	a.Commit()
	b.Update()
	buf := make([]byte, 13)
	b.Read(buf, 0)
	fmt.Println(string(buf))
	// Output: deterministic
}
