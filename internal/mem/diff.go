package mem

import (
	"encoding/binary"
	"math/bits"
)

// Diff is a sparse description of the bytes a committer changed within one
// page: a sorted, non-overlapping list of runs. It is the unit of
// byte-granularity merging, equivalent to the twin/diff comparison the
// kernel Conversion module performs.
//
// Runs are byte-exact: a run never contains a byte where cur == twin.
// This matters for correctness, not just size — applying a diff over a
// newer base must only overwrite bytes the committer actually changed, or
// last-writer-wins merging would resurrect stale values.
type Diff struct {
	Runs []Run
}

// Run is one contiguous range of modified bytes.
type Run struct {
	Off  int
	Data []byte
}

// Empty reports whether the diff changes no bytes.
func (d Diff) Empty() bool { return len(d.Runs) == 0 }

// Bytes returns the total number of bytes the diff modifies.
func (d Diff) Bytes() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// Word-wide scanning constants: lo has the low bit of every byte set, hi
// the high bit, low7 everything but the high bits.
const (
	wordBytes  = 8
	blockBytes = 4 * wordBytes // unrolled scan granularity
	loBits     = uint64(0x0101010101010101)
	hiBits     = uint64(0x8080808080808080)
	low7Bits   = uint64(0x7f7f7f7f7f7f7f7f)
)

// hasZeroByte is the classic zero-byte probe. It may flag spurious bytes
// above the first zero byte, but the lowest flagged byte is always the
// first true zero, which is the only bit the kernels below consume (via
// TrailingZeros64).
func hasZeroByte(x uint64) uint64 { return (x - loBits) & ^x & hiBits }

// nextDiffByte returns the smallest index >= i where cur and twin differ,
// or len(cur) if they agree to the end. Clean stretches are skipped 32
// bytes at a time (the unroll keeps loop overhead off the dominant path),
// then word-wide; the sub-word tail falls back to the byte loop.
func nextDiffByte(cur, twin []byte, i int) int {
	n := len(cur)
	for i+blockBytes <= n {
		c, t := cur[i:i+blockBytes], twin[i:i+blockBytes]
		x := binary.LittleEndian.Uint64(c) ^ binary.LittleEndian.Uint64(t)
		x |= binary.LittleEndian.Uint64(c[8:]) ^ binary.LittleEndian.Uint64(t[8:])
		x |= binary.LittleEndian.Uint64(c[16:]) ^ binary.LittleEndian.Uint64(t[16:])
		x |= binary.LittleEndian.Uint64(c[24:]) ^ binary.LittleEndian.Uint64(t[24:])
		if x != 0 {
			break // the difference is inside this block; locate it word-wide
		}
		i += blockBytes
	}
	for i+wordBytes <= n {
		if x := binary.LittleEndian.Uint64(cur[i:]) ^ binary.LittleEndian.Uint64(twin[i:]); x != 0 {
			// The lowest nonzero byte of the XOR is the first difference.
			return i + bits.TrailingZeros64(x)>>3
		}
		i += wordBytes
	}
	for i < n && cur[i] == twin[i] {
		i++
	}
	return i
}

// nextSameByte returns the smallest index >= i where cur and twin agree,
// or len(cur) if they differ to the end. Dirty stretches are skipped 32
// bytes at a time, then word-wide: a word whose XOR contains no zero byte
// differs at all eight positions.
func nextSameByte(cur, twin []byte, i int) int {
	n := len(cur)
	for i+blockBytes <= n {
		c, t := cur[i:i+blockBytes], twin[i:i+blockBytes]
		z := hasZeroByte(binary.LittleEndian.Uint64(c) ^ binary.LittleEndian.Uint64(t))
		z |= hasZeroByte(binary.LittleEndian.Uint64(c[8:]) ^ binary.LittleEndian.Uint64(t[8:]))
		z |= hasZeroByte(binary.LittleEndian.Uint64(c[16:]) ^ binary.LittleEndian.Uint64(t[16:]))
		z |= hasZeroByte(binary.LittleEndian.Uint64(c[24:]) ^ binary.LittleEndian.Uint64(t[24:]))
		if z != 0 {
			break // an agreeing byte is inside this block; locate it word-wide
		}
		i += blockBytes
	}
	for i+wordBytes <= n {
		x := binary.LittleEndian.Uint64(cur[i:]) ^ binary.LittleEndian.Uint64(twin[i:])
		if z := hasZeroByte(x); z != 0 {
			// The lowest zero byte of the XOR is the first agreement.
			return i + bits.TrailingZeros64(z)>>3
		}
		i += wordBytes
	}
	for i < n && cur[i] != twin[i] {
		i++
	}
	return i
}

// computeDiff compares cur against twin and returns byte-exact runs where
// they differ, capturing cur's bytes. Both slices must be the same length.
// The scan is word-wide (8 bytes per compare) in both the clean-skip and
// the run-extent phases; the runs produced are identical to a
// byte-at-a-time scan (FuzzComputeDiff pins this against the reference).
func computeDiff(cur, twin []byte) Diff {
	var d Diff
	i, n := 0, len(cur)
	for i < n {
		i = nextDiffByte(cur, twin, i)
		if i >= n {
			break
		}
		start := i
		i = nextSameByte(cur, twin, i)
		d.Runs = append(d.Runs, Run{Off: start, Data: append([]byte(nil), cur[start:i]...)})
	}
	return d
}

// apply overwrites dst with the diff's bytes. dst must be at least as long
// as the highest run extent.
func (d Diff) apply(dst []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
	}
}

// nonzeroByteMask returns a mask with 0xff at every byte position where x
// has a nonzero byte and 0x00 where x's byte is zero. Unlike the probe in
// nextSameByte this is exact at every position, which the masked-merge in
// applyWhereClean requires.
func nonzeroByteMask(x uint64) uint64 {
	y := ((x & low7Bits) + low7Bits) | x // high bit of each byte set iff byte nonzero
	return ((y & hiBits) >> 7) * 0xff
}

// applyWhereClean copies the diff's bytes into dst only at positions where
// dst still equals twin (i.e. the local thread has not overwritten them),
// keeping twin in sync so a later local diff excludes the imported bytes.
// This is how an Update patches remotely committed bytes into a locally
// dirty page without clobbering the thread's own store buffer.
//
// The merge is word-wide: eight bytes of dst/twin are compared at once and
// combined with the incoming bytes under a per-byte mask; the sub-word run
// tail falls back to the byte loop (FuzzApplyWhereClean pins equivalence
// to the byte-at-a-time reference).
func (d Diff) applyWhereClean(dst, twin []byte) {
	for _, r := range d.Runs {
		data, pos := r.Data, r.Off
		for len(data) >= wordBytes {
			d8 := binary.LittleEndian.Uint64(data)
			t8 := binary.LittleEndian.Uint64(twin[pos:])
			s8 := binary.LittleEndian.Uint64(dst[pos:])
			// dirty = positions the local thread overwrote; keep those.
			dirty := nonzeroByteMask(s8 ^ t8)
			merged := s8&dirty | d8&^dirty
			binary.LittleEndian.PutUint64(dst[pos:], merged)
			binary.LittleEndian.PutUint64(twin[pos:], t8&dirty|d8&^dirty)
			data = data[wordBytes:]
			pos += wordBytes
		}
		for k, b := range data {
			if dst[pos+k] == twin[pos+k] {
				dst[pos+k] = b
				twin[pos+k] = b
			}
		}
	}
}
