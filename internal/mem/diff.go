package mem

// Diff is a sparse description of the bytes a committer changed within one
// page: a sorted, non-overlapping list of runs. It is the unit of
// byte-granularity merging, equivalent to the twin/diff comparison the
// kernel Conversion module performs.
//
// Runs are byte-exact: a run never contains a byte where cur == twin.
// This matters for correctness, not just size — applying a diff over a
// newer base must only overwrite bytes the committer actually changed, or
// last-writer-wins merging would resurrect stale values.
type Diff struct {
	Runs []Run
}

// Run is one contiguous range of modified bytes.
type Run struct {
	Off  int
	Data []byte
}

// Empty reports whether the diff changes no bytes.
func (d Diff) Empty() bool { return len(d.Runs) == 0 }

// Bytes returns the total number of bytes the diff modifies.
func (d Diff) Bytes() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// computeDiff compares cur against twin and returns byte-exact runs where
// they differ, capturing cur's bytes. Both slices must be the same length.
func computeDiff(cur, twin []byte) Diff {
	var d Diff
	i, n := 0, len(cur)
	for i < n {
		if cur[i] == twin[i] {
			i++
			continue
		}
		start := i
		for i < n && cur[i] != twin[i] {
			i++
		}
		d.Runs = append(d.Runs, Run{Off: start, Data: append([]byte(nil), cur[start:i]...)})
	}
	return d
}

// apply overwrites dst with the diff's bytes. dst must be at least as long
// as the highest run extent.
func (d Diff) apply(dst []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
	}
}

// applyWhereClean copies the diff's bytes into dst only at positions where
// dst still equals twin (i.e. the local thread has not overwritten them),
// keeping twin in sync so a later local diff excludes the imported bytes.
// This is how an Update patches remotely committed bytes into a locally
// dirty page without clobbering the thread's own store buffer.
func (d Diff) applyWhereClean(dst, twin []byte) {
	for _, r := range d.Runs {
		for k, b := range r.Data {
			pos := r.Off + k
			if dst[pos] == twin[pos] {
				dst[pos] = b
				twin[pos] = b
			}
		}
	}
}
