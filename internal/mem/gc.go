package mem

// GC squashes fully-visible versions into the segment's flat base table,
// freeing superseded pages. A version is collectible once every live
// workspace's snapshot is at or past it and its merge phase has completed.
//
// The per-invocation reclaim budget (SegmentConfig.GCPageBudget) models the
// paper's single-threaded Conversion collector: programs that allocate and
// free pages faster than one collector thread can fold them accumulate
// retained versions, which is exactly the canneal / lu_ncb memory blowup in
// Figure 12.
//
// GC returns the number of pages reclaimed.
func (s *Segment) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()

	limit := s.minWorkspaceVersionLocked()
	budget := s.stats.GCPageBudget
	reclaimed := 0
	folded := 0
	for s.floor < limit && len(s.versions) > 0 {
		v := s.versions[0]
		if v.Pending() {
			break
		}
		if budget > 0 && reclaimed >= budget {
			break
		}
		for pg, slot := range v.Pages {
			if s.base[pg] != nil {
				reclaimed++ // superseded base page freed
				s.allocPages(-1)
			}
			s.base[pg] = slot.data
			// Drop the chain link: anything at or below the new floor is
			// reachable through the base table.
			slot.prev = nil
		}
		s.versions = s.versions[1:]
		s.floor++
		folded++
	}
	if folded > 0 || reclaimed > 0 {
		s.statsMu.Lock()
		s.stats.GCRuns++
		s.stats.GCReclaimedPages += int64(reclaimed)
		s.statsMu.Unlock()
	}
	return reclaimed
}

// RetainedVersions reports how many versions are currently held in the
// delta chain (committed but not yet folded into the base table).
func (s *Segment) RetainedVersions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.versions)
}
