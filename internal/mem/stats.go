package mem

// Stats aggregates a segment's activity counters. Reads via Segment.Stats
// return a consistent snapshot.
type Stats struct {
	// Faults is the number of copy-on-write page faults taken.
	Faults int64
	// Versions is the number of versions committed.
	Versions int64
	// CommittedPages is the total pages published across all versions.
	CommittedPages int64
	// MergedPages is the number of committed pages that required a
	// byte-granularity conflict merge.
	MergedPages int64
	// DiffBytes is the total number of changed bytes across all commits.
	DiffBytes int64
	// PulledPages is the total number of remote page modifications imported
	// by updates and commits (the Figure 16 "pages propagated" statistic
	// under TSO).
	PulledPages int64
	// SpecDiffHits counts committed pages whose speculative (pre-token)
	// diff was reused by the serial commit phase; SpecDiffMisses counts
	// committed pages that had to be diffed inside BeginCommit.
	SpecDiffHits   int64
	SpecDiffMisses int64
	// PrefetchHits counts writes that found their page already prefetched
	// (Workspace.Prepopulate) — each one a copy-on-write fault moved off
	// the serial path into a token wait. PrefetchMisses counts faults
	// taken while prediction was enabled (pages the predictor did not
	// cover). PrefetchWasted counts prefetched pages dropped unwritten at
	// a commit — mispredicted off-token work.
	PrefetchHits   int64
	PrefetchMisses int64
	PrefetchWasted int64
	// GCRuns is the number of garbage-collection invocations.
	GCRuns int64
	// GCReclaimedPages is the total pages reclaimed by GC.
	GCReclaimedPages int64
	// CurPages and PeakPages track live allocated pages (dirty copies,
	// twins, committed version pages) — the Figure 12 memory statistic.
	CurPages  int64
	PeakPages int64
	// GCPageBudget is the per-invocation reclaim bound (0 = unlimited),
	// modeling the single-threaded Conversion collector.
	GCPageBudget int
}

// Stats returns a snapshot of the segment's counters.
func (s *Segment) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// allocPages adjusts the live page count by n (which may be negative) and
// tracks the peak.
func (s *Segment) allocPages(n int64) {
	s.statsMu.Lock()
	s.stats.CurPages += n
	if s.stats.CurPages > s.stats.PeakPages {
		s.stats.PeakPages = s.stats.CurPages
	}
	s.statsMu.Unlock()
}

func (s *Segment) addPulled(n int64) {
	s.statsMu.Lock()
	s.stats.PulledPages += n
	s.statsMu.Unlock()
}

func (s *Segment) noteCommit(cs CommitStats) {
	s.statsMu.Lock()
	s.stats.Versions++
	s.stats.CommittedPages += int64(cs.CommittedPages)
	s.stats.MergedPages += int64(cs.MergedPages)
	s.stats.DiffBytes += int64(cs.DiffBytes)
	s.stats.PulledPages += int64(cs.PulledPages)
	s.stats.SpecDiffHits += int64(cs.SpecHits)
	s.stats.SpecDiffMisses += int64(cs.SpecMisses)
	s.statsMu.Unlock()
}

// noteFault records one copy-on-write fault; with prediction enabled the
// fault is also a prefetch miss (the predictor did not cover the page).
func (s *Segment) noteFault(predicted bool) {
	s.statsMu.Lock()
	s.stats.Faults++
	if predicted {
		s.stats.PrefetchMisses++
	}
	s.statsMu.Unlock()
}

func (s *Segment) notePrefetchHits(n int64) {
	s.statsMu.Lock()
	s.stats.PrefetchHits += n
	s.statsMu.Unlock()
}

func (s *Segment) notePrefetchWasted(n int64) {
	if n == 0 {
		return
	}
	s.statsMu.Lock()
	s.stats.PrefetchWasted += n
	s.statsMu.Unlock()
}
