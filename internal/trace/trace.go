// Package trace records the deterministic total order of synchronization
// events a runtime produces. Two runs of a deterministic runtime must
// produce byte-identical traces — across repetitions, schedule
// perturbation, and real-vs-simulated hosts — which the integration tests
// assert via the rolling hash.
package trace

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
)

// Op names a synchronization event kind.
type Op string

// Synchronization event kinds.
const (
	OpLock    Op = "lock"
	OpUnlock  Op = "unlock"
	OpWait    Op = "wait"
	OpSignal  Op = "signal"
	OpBcast   Op = "broadcast"
	OpBarrier Op = "barrier"
	OpSpawn   Op = "spawn"
	OpJoin    Op = "join"
	OpExit    Op = "exit"
	OpCommit  Op = "commit"
)

// Event is one entry in the deterministic total order.
type Event struct {
	Seq   int64 // position in the total order
	Tid   int   // acting thread
	Op    Op
	Obj   uint64 // object identity (mutex/cond/barrier id, child tid, ...)
	Clock int64  // acting thread's logical clock
}

func (e Event) String() string {
	return fmt.Sprintf("%06d t%02d %-9s obj=%d clk=%d", e.Seq, e.Tid, e.Op, e.Obj, e.Clock)
}

// Recorder accumulates events and a rolling FNV-1a hash of their canonical
// encoding. Safe for concurrent use (events arrive token-serialized, but
// the recorder does not rely on that).
type Recorder struct {
	mu     sync.Mutex
	seq    int64
	events []Event
	hash   uint64
	// keep bounds memory when recording long runs
	keep int
}

// New creates a recorder. keep bounds how many events are retained for
// inspection (0 = all); the hash always covers every event.
func New(keep int) *Recorder {
	h := fnv.New64a()
	return &Recorder{hash: h.Sum64(), keep: keep}
}

// Record appends an event, assigning its sequence number.
func (r *Recorder) Record(tid int, op Op, obj uint64, clock int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := Event{Seq: r.seq, Tid: tid, Op: op, Obj: obj, Clock: clock}
	r.seq++
	r.hash = mix(r.hash, e)
	if r.keep == 0 || len(r.events) < r.keep {
		r.events = append(r.events, e)
	}
}

// mix folds an event into the rolling hash. Clock values are included:
// under a deterministic runtime the logical clocks at sync points are part
// of the guaranteed-reproducible state.
func mix(h uint64, e Event) uint64 {
	const prime = 1099511628211
	for _, v := range []uint64{uint64(e.Seq), uint64(e.Tid), uint64(e.Clock), e.Obj} {
		h = (h ^ v) * prime
	}
	for i := 0; i < len(e.Op); i++ {
		h = (h ^ uint64(e.Op[i])) * prime
	}
	return h
}

// Hash returns the rolling hash over all recorded events.
func (r *Recorder) Hash() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hash
}

// Len returns the number of events recorded.
func (r *Recorder) Len() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Events returns the retained event prefix.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Diff returns a description of the first divergence between two traces,
// or "" if the retained prefixes and hashes agree.
func Diff(a, b *Recorder) string {
	ae, be := a.Events(), b.Events()
	n := len(ae)
	if len(be) < n {
		n = len(be)
	}
	for i := 0; i < n; i++ {
		if ae[i] != be[i] {
			return fmt.Sprintf("event %d differs:\n  a: %s\n  b: %s", i, ae[i], be[i])
		}
	}
	if a.Len() != b.Len() {
		return fmt.Sprintf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	if a.Hash() != b.Hash() {
		return "hashes differ beyond retained prefix"
	}
	return ""
}
