// Package trace records the deterministic total order of synchronization
// events a runtime produces. Two runs of a deterministic runtime must
// produce byte-identical traces — across repetitions, schedule
// perturbation, and real-vs-simulated hosts — which the integration tests
// assert via the rolling hash.
package trace

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// Op names a synchronization event kind.
type Op string

// Synchronization event kinds.
const (
	OpLock    Op = "lock"
	OpUnlock  Op = "unlock"
	OpWait    Op = "wait"
	OpSignal  Op = "signal"
	OpBcast   Op = "broadcast"
	OpBarrier Op = "barrier"
	OpSpawn   Op = "spawn"
	OpJoin    Op = "join"
	OpExit    Op = "exit"
	OpCommit  Op = "commit"
)

// NoShard marks an event without shard provenance: a run without
// per-shard granting, or a cross-shard edge (which belongs to every
// shard, so to none in particular).
const NoShard = -1

// Event is one entry in the deterministic total order.
type Event struct {
	Seq   int64 // position in the total order
	Tid   int   // acting thread
	Op    Op
	Obj   uint64 // object identity (mutex/cond/barrier id, child tid, ...)
	Clock int64  // acting thread's logical clock
	Shard int    // granting shard (NoShard = unsharded or cross-shard edge)
}

// String renders the event in the one-line form used by Dump and the
// divergence reports. The shard suffix appears only on events with shard
// provenance, so unsharded runs render exactly as before.
func (e Event) String() string {
	s := fmt.Sprintf("%06d t%02d %-9s obj=%d clk=%d", e.Seq, e.Tid, e.Op, e.Obj, e.Clock)
	if e.Shard >= 0 {
		s += fmt.Sprintf(" sh=%d", e.Shard)
	}
	return s
}

// ThreadHash pairs a thread id with its rolling per-thread hash.
type ThreadHash struct {
	Tid  int
	Hash uint64
}

// ShardHash pairs a granting shard with its rolling per-shard hash: the
// hash chain over only that shard's events, each folded with its
// shard-local sequence number, so a shard's grant stream can be compared
// between runs independent of how the streams interleaved globally.
type ShardHash struct {
	Shard int
	Hash  uint64
}

// Checkpoint summarizes a prefix of the event stream: after the first Seq
// events, the global rolling hash is Hash and each thread's rolling hash
// (over only its own events) is listed in Threads, ascending by tid.
// Under per-shard granting each shard's rolling hash is listed in Shards,
// ascending by shard (empty otherwise). Comparing the checkpoints of two
// runs localizes the first divergent interval in O(log n) hash probes
// without retaining full event history.
type Checkpoint struct {
	Seq     int64
	Hash    uint64
	Threads []ThreadHash
	Shards  []ShardHash
}

// Sink receives a copy of every recorded event and every interval
// checkpoint, in order. Calls are made while the recorder's lock is held:
// implementations must be fast, must not block indefinitely, and must not
// call back into the Recorder. The run journal (internal/journal) is the
// canonical sink.
type Sink interface {
	RecordEvent(e Event)
	RecordCheckpoint(c Checkpoint)
}

// Recorder accumulates events and a rolling FNV-1a hash of their canonical
// encoding. Safe for concurrent use (events arrive token-serialized, but
// the recorder does not rely on that).
type Recorder struct {
	mu     sync.Mutex
	seq    int64
	events []Event
	hash   uint64
	// keep bounds memory when recording long runs
	keep int

	// perThread and perShard are the rolling hash chains, kept sorted by
	// tid / shard at all times (new entries are insertion-sorted on first
	// appearance, which is rare) so a checkpoint is a copy, not a sort —
	// checkpoints fire every interval events and a long run accumulates
	// thousands of exited threads that would otherwise be re-sorted each
	// time. threadIdx / shardIdx map the id to its slice position for the
	// per-event hash update.
	perThread   []ThreadHash
	threadIdx   map[int]int
	perShard    []ShardHash
	shardIdx    map[int]int
	perShardSeq []int64 // shard-local event counts, parallel to perShard
	interval    int64   // checkpoint every interval events (0 = off)
	checkpoints []Checkpoint
	sink        Sink
}

// New creates a recorder. keep bounds how many events are retained for
// inspection (0 = all); the hash always covers every event.
func New(keep int) *Recorder {
	h := fnv.New64a()
	return &Recorder{
		hash:      h.Sum64(),
		keep:      keep,
		threadIdx: make(map[int]int),
		shardIdx:  make(map[int]int),
	}
}

// SetCheckpointInterval enables interval checkpoints: after every k events
// the recorder snapshots the global and per-thread rolling hashes
// (Checkpoints). k <= 0 disables. Must be called before the first Record;
// changing it mid-run would make checkpoint sequences incomparable.
func (r *Recorder) SetCheckpointInterval(k int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.interval = k
}

// CheckpointInterval reports the configured checkpoint interval.
func (r *Recorder) CheckpointInterval() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.interval
}

// SetSink installs s to receive every subsequent event and checkpoint.
// Pass nil to detach. Must be set before the run starts for the sink to
// see the full stream.
func (r *Recorder) SetSink(s Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sink = s
}

// Record appends an event without shard provenance, assigning its
// sequence number.
func (r *Recorder) Record(tid int, op Op, obj uint64, clock int64) {
	r.RecordSharded(tid, op, obj, clock, NoShard)
}

// RecordSharded appends an event carrying the granting shard (NoShard for
// cross-shard edges and unsharded runs). The global rolling hash folds the
// same fields as before — shard provenance never enters it, so a sharded
// run's global hash is comparable with hashes recorded before sharding
// existed — while each shard additionally maintains its own hash chain
// over its events, keyed by shard-local sequence.
func (r *Recorder) RecordSharded(tid int, op Op, obj uint64, clock int64, shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := Event{Seq: r.seq, Tid: tid, Op: op, Obj: obj, Clock: clock, Shard: shard}
	r.seq++
	if shard >= 0 {
		si, ok := r.shardIdx[shard]
		if !ok {
			si = insertSorted(&r.perShard, r.shardIdx, shard, func(id int) ShardHash {
				return ShardHash{Shard: id, Hash: fnvOffset}
			}, func(h ShardHash) int { return h.Shard })
			r.perShardSeq = append(r.perShardSeq, 0)
			copy(r.perShardSeq[si+1:], r.perShardSeq[si:])
			r.perShardSeq[si] = 0
		}
		// The per-shard chain positions the event by its shard-local seq,
		// so two runs agree on a shard's hash iff that shard saw the same
		// events in the same order — regardless of global interleaving.
		se := e
		se.Seq = r.perShardSeq[si]
		r.perShard[si].Hash = mix(r.perShard[si].Hash, se)
		r.perShardSeq[si]++
	}
	r.hash = mix(r.hash, e)
	ti, ok := r.threadIdx[tid]
	if !ok {
		ti = insertSorted(&r.perThread, r.threadIdx, tid, func(id int) ThreadHash {
			return ThreadHash{Tid: id, Hash: fnvOffset}
		}, func(h ThreadHash) int { return h.Tid })
	}
	r.perThread[ti].Hash = mix(r.perThread[ti].Hash, e)
	if r.keep == 0 || len(r.events) < r.keep {
		r.events = append(r.events, e)
	}
	if r.sink != nil {
		r.sink.RecordEvent(e)
	}
	if r.interval > 0 && r.seq%r.interval == 0 {
		c := r.checkpointLocked()
		r.checkpoints = append(r.checkpoints, c)
		if r.sink != nil {
			r.sink.RecordCheckpoint(c)
		}
	}
}

// fnvOffset is the FNV-1a 64-bit offset basis; per-thread hashes start
// from it so a thread's hash is itself a valid FNV-1a chain.
const fnvOffset = 14695981039346656037

// insertSorted places a new id's chain into the sorted slice s, keeping
// idx consistent, and returns the insertion position. New ids usually
// arrive in increasing order (the runtime assigns tids monotonically), so
// the common case is an append; a middle insert shifts the tail and
// refreshes its index entries.
func insertSorted[T any](s *[]T, idx map[int]int, id int, mk func(int) T, key func(T) int) int {
	i := sort.Search(len(*s), func(i int) bool { return key((*s)[i]) > id })
	*s = append(*s, mk(id))
	if i < len(*s)-1 {
		copy((*s)[i+1:], (*s)[i:])
		(*s)[i] = mk(id)
		for j := i + 1; j < len(*s); j++ {
			idx[key((*s)[j])] = j
		}
	}
	idx[id] = i
	return i
}

// checkpointLocked snapshots the current hashes. Caller holds r.mu. The
// chains are maintained in sorted order, so this is a pair of copies.
func (r *Recorder) checkpointLocked() Checkpoint {
	ths := append([]ThreadHash(nil), r.perThread...)
	var shs []ShardHash
	if len(r.perShard) > 0 {
		shs = append([]ShardHash(nil), r.perShard...)
	}
	return Checkpoint{Seq: r.seq, Hash: r.hash, Threads: ths, Shards: shs}
}

// ShardHashes returns the current per-shard rolling hashes, ascending by
// shard (nil when no sharded events were recorded).
func (r *Recorder) ShardHashes() []ShardHash {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checkpointLocked().Shards
}

// Checkpoints returns the interval checkpoints taken so far.
func (r *Recorder) Checkpoints() []Checkpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Checkpoint(nil), r.checkpoints...)
}

// ThreadHashes returns the current per-thread rolling hashes, ascending
// by tid.
func (r *Recorder) ThreadHashes() []ThreadHash {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checkpointLocked().Threads
}

// mix folds an event into the rolling hash. Clock values are included:
// under a deterministic runtime the logical clocks at sync points are part
// of the guaranteed-reproducible state.
func mix(h uint64, e Event) uint64 {
	const prime = 1099511628211
	for _, v := range []uint64{uint64(e.Seq), uint64(e.Tid), uint64(e.Clock), e.Obj} {
		h = (h ^ v) * prime
	}
	for i := 0; i < len(e.Op); i++ {
		h = (h ^ uint64(e.Op[i])) * prime
	}
	return h
}

// Hash returns the rolling hash over all recorded events.
func (r *Recorder) Hash() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hash
}

// Len returns the number of events recorded.
func (r *Recorder) Len() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Events returns the retained event prefix.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Diff returns a description of the first divergence between two traces,
// or "" if the retained prefixes and hashes agree.
func Diff(a, b *Recorder) string {
	ae, be := a.Events(), b.Events()
	n := len(ae)
	if len(be) < n {
		n = len(be)
	}
	for i := 0; i < n; i++ {
		if ae[i] != be[i] {
			return fmt.Sprintf("event %d differs:\n  a: %s\n  b: %s", i, ae[i], be[i])
		}
	}
	if a.Len() != b.Len() {
		return fmt.Sprintf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	if a.Hash() != b.Hash() {
		return "hashes differ beyond retained prefix"
	}
	return ""
}
