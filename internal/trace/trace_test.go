package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordAssignsSequence(t *testing.T) {
	r := New(0)
	r.Record(1, OpLock, 10, 100)
	r.Record(2, OpUnlock, 10, 200)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("events = %v", evs)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestHashSensitivity(t *testing.T) {
	base := func() *Recorder {
		r := New(0)
		r.Record(1, OpLock, 10, 100)
		return r
	}
	variants := map[string]func() *Recorder{
		"tid":   func() *Recorder { r := New(0); r.Record(2, OpLock, 10, 100); return r },
		"op":    func() *Recorder { r := New(0); r.Record(1, OpUnlock, 10, 100); return r },
		"obj":   func() *Recorder { r := New(0); r.Record(1, OpLock, 11, 100); return r },
		"clock": func() *Recorder { r := New(0); r.Record(1, OpLock, 10, 101); return r },
	}
	h := base().Hash()
	for name, mk := range variants {
		if mk().Hash() == h {
			t.Errorf("hash insensitive to %s", name)
		}
	}
	if base().Hash() != h {
		t.Error("hash not reproducible")
	}
}

func TestKeepBoundsRetention(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Record(i, OpLock, 1, int64(i))
	}
	if got := len(r.Events()); got != 3 {
		t.Fatalf("retained %d events, want 3", got)
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	// Hash still covers all ten.
	r2 := New(0)
	for i := 0; i < 10; i++ {
		r2.Record(i, OpLock, 1, int64(i))
	}
	if r.Hash() != r2.Hash() {
		t.Error("retention bound changed the hash")
	}
}

func TestDiff(t *testing.T) {
	a, b := New(0), New(0)
	a.Record(1, OpLock, 10, 100)
	b.Record(1, OpLock, 10, 100)
	if d := Diff(a, b); d != "" {
		t.Fatalf("identical traces diff: %s", d)
	}
	b.Record(2, OpUnlock, 10, 200)
	if d := Diff(a, b); !strings.Contains(d, "lengths differ") {
		t.Fatalf("diff = %q", d)
	}
	a.Record(3, OpUnlock, 10, 200)
	if d := Diff(a, b); !strings.Contains(d, "differs") {
		t.Fatalf("diff = %q", d)
	}
}

func TestDumpFormat(t *testing.T) {
	r := New(0)
	r.Record(7, OpBarrier, 42, 1234)
	out := r.Dump()
	for _, want := range []string{"t07", "barrier", "obj=42", "clk=1234"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump %q missing %q", out, want)
		}
	}
}

func TestCheckpoints(t *testing.T) {
	r := New(0)
	r.SetCheckpointInterval(4)
	for i := 0; i < 10; i++ {
		r.Record(i%3, OpLock, 1, int64(i))
	}
	cps := r.Checkpoints()
	if len(cps) != 2 {
		t.Fatalf("got %d checkpoints, want 2", len(cps))
	}
	if cps[0].Seq != 4 || cps[1].Seq != 8 {
		t.Fatalf("checkpoint seqs = %d, %d", cps[0].Seq, cps[1].Seq)
	}
	// A checkpoint's global hash equals the rolling hash of a fresh
	// recorder fed the same prefix.
	pre := New(0)
	for i := 0; i < 4; i++ {
		pre.Record(i%3, OpLock, 1, int64(i))
	}
	if cps[0].Hash != pre.Hash() {
		t.Error("checkpoint hash is not the prefix hash")
	}
	// Per-thread hashes are listed ascending by tid and cover only that
	// thread's events: tid 0 saw events 0 and 3 within the first four.
	if len(cps[0].Threads) != 3 {
		t.Fatalf("threads = %v", cps[0].Threads)
	}
	for i := 1; i < len(cps[0].Threads); i++ {
		if cps[0].Threads[i-1].Tid >= cps[0].Threads[i].Tid {
			t.Fatalf("thread hashes not ascending: %v", cps[0].Threads)
		}
	}
}

func TestPerThreadHashIsolation(t *testing.T) {
	// Interleaving another thread's events must not move a thread's own
	// rolling hash (it is a function of that thread's subsequence alone,
	// except for the shared global Seq, so compare traces where the other
	// thread's events come after).
	a, b := New(0), New(0)
	a.Record(1, OpLock, 10, 100)
	a.Record(1, OpUnlock, 10, 200)
	b.Record(1, OpLock, 10, 100)
	b.Record(1, OpUnlock, 10, 200)
	b.Record(2, OpLock, 11, 300)
	ha, hb := a.ThreadHashes(), b.ThreadHashes()
	if ha[0].Tid != 1 || hb[0].Tid != 1 || ha[0].Hash != hb[0].Hash {
		t.Fatalf("tid 1 hash moved: %v vs %v", ha, hb)
	}
	if len(hb) != 2 || hb[1].Tid != 2 {
		t.Fatalf("tid 2 hash missing: %v", hb)
	}
}

type captureSink struct {
	events []Event
	cps    []Checkpoint
}

func (s *captureSink) RecordEvent(e Event)           { s.events = append(s.events, e) }
func (s *captureSink) RecordCheckpoint(c Checkpoint) { s.cps = append(s.cps, c) }

func TestSinkReceivesStream(t *testing.T) {
	r := New(1) // tiny retention: the sink must still see everything
	r.SetCheckpointInterval(2)
	s := &captureSink{}
	r.SetSink(s)
	for i := 0; i < 5; i++ {
		r.Record(0, OpLock, uint64(i), int64(i))
	}
	if len(s.events) != 5 {
		t.Fatalf("sink saw %d events, want 5", len(s.events))
	}
	for i, e := range s.events {
		if e.Seq != int64(i) || e.Obj != uint64(i) {
			t.Fatalf("event %d = %v", i, e)
		}
	}
	if len(s.cps) != 2 || s.cps[0].Seq != 2 || s.cps[1].Seq != 4 {
		t.Fatalf("sink checkpoints = %v", s.cps)
	}
	r.SetSink(nil)
	r.Record(0, OpLock, 9, 9)
	if len(s.events) != 5 {
		t.Error("detached sink still receiving")
	}
}

// Property: the hash is order-sensitive — swapping any two adjacent
// distinct events changes it.
func TestPropHashOrderSensitive(t *testing.T) {
	f := func(tidA, tidB uint8, clkA, clkB uint16) bool {
		if tidA == tidB && clkA == clkB {
			return true
		}
		r1, r2 := New(0), New(0)
		r1.Record(int(tidA), OpLock, 1, int64(clkA))
		r1.Record(int(tidB), OpLock, 1, int64(clkB))
		r2.Record(int(tidB), OpLock, 1, int64(clkB))
		r2.Record(int(tidA), OpLock, 1, int64(clkA))
		return r1.Hash() != r2.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
