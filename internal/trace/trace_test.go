package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordAssignsSequence(t *testing.T) {
	r := New(0)
	r.Record(1, OpLock, 10, 100)
	r.Record(2, OpUnlock, 10, 200)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("events = %v", evs)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestHashSensitivity(t *testing.T) {
	base := func() *Recorder {
		r := New(0)
		r.Record(1, OpLock, 10, 100)
		return r
	}
	variants := map[string]func() *Recorder{
		"tid":   func() *Recorder { r := New(0); r.Record(2, OpLock, 10, 100); return r },
		"op":    func() *Recorder { r := New(0); r.Record(1, OpUnlock, 10, 100); return r },
		"obj":   func() *Recorder { r := New(0); r.Record(1, OpLock, 11, 100); return r },
		"clock": func() *Recorder { r := New(0); r.Record(1, OpLock, 10, 101); return r },
	}
	h := base().Hash()
	for name, mk := range variants {
		if mk().Hash() == h {
			t.Errorf("hash insensitive to %s", name)
		}
	}
	if base().Hash() != h {
		t.Error("hash not reproducible")
	}
}

func TestKeepBoundsRetention(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Record(i, OpLock, 1, int64(i))
	}
	if got := len(r.Events()); got != 3 {
		t.Fatalf("retained %d events, want 3", got)
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	// Hash still covers all ten.
	r2 := New(0)
	for i := 0; i < 10; i++ {
		r2.Record(i, OpLock, 1, int64(i))
	}
	if r.Hash() != r2.Hash() {
		t.Error("retention bound changed the hash")
	}
}

func TestDiff(t *testing.T) {
	a, b := New(0), New(0)
	a.Record(1, OpLock, 10, 100)
	b.Record(1, OpLock, 10, 100)
	if d := Diff(a, b); d != "" {
		t.Fatalf("identical traces diff: %s", d)
	}
	b.Record(2, OpUnlock, 10, 200)
	if d := Diff(a, b); !strings.Contains(d, "lengths differ") {
		t.Fatalf("diff = %q", d)
	}
	a.Record(3, OpUnlock, 10, 200)
	if d := Diff(a, b); !strings.Contains(d, "differs") {
		t.Fatalf("diff = %q", d)
	}
}

func TestDumpFormat(t *testing.T) {
	r := New(0)
	r.Record(7, OpBarrier, 42, 1234)
	out := r.Dump()
	for _, want := range []string{"t07", "barrier", "obj=42", "clk=1234"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump %q missing %q", out, want)
		}
	}
}

// Property: the hash is order-sensitive — swapping any two adjacent
// distinct events changes it.
func TestPropHashOrderSensitive(t *testing.T) {
	f := func(tidA, tidB uint8, clkA, clkB uint16) bool {
		if tidA == tidB && clkA == clkB {
			return true
		}
		r1, r2 := New(0), New(0)
		r1.Record(int(tidA), OpLock, 1, int64(clkA))
		r1.Record(int(tidB), OpLock, 1, int64(clkB))
		r2.Record(int(tidB), OpLock, 1, int64(clkB))
		r2.Record(int(tidA), OpLock, 1, int64(clkA))
		return r1.Hash() != r2.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
