// Package pth is the nondeterministic pthreads reference runtime: the
// denominator of every normalized result in the paper's evaluation. It
// provides the same api.T surface with none of the determinism machinery —
// no token, no isolation, no commits. Threads share one flat memory image;
// mutexes are FIFO queues; races behave like races.
//
// On the simulation host, execution is still reproducible (the engine is
// deterministic), which is what lets the harness compute stable baselines;
// on the real host, pth is genuinely racy and exists to demonstrate the
// nondeterminism the deterministic runtimes remove.
package pth

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/host"
)

// Config parameterizes the pthreads model.
type Config struct {
	SegmentSize int
	Model       costmodel.Model
}

// Runtime implements api.Runtime nondeterministically.
type Runtime struct {
	cfg   Config
	h     host.Host
	mu    sync.Mutex // guards all runtime state below
	mem   []byte
	wg    sync.WaitGroup
	began bool

	agg   api.RunStats
	aggMu sync.Mutex
}

// New creates a pthreads-model runtime on the given host.
func New(cfg Config, h host.Host) (*Runtime, error) {
	if cfg.SegmentSize <= 0 {
		return nil, fmt.Errorf("pth: segment size must be positive")
	}
	return &Runtime{cfg: cfg, h: h, mem: make([]byte, cfg.SegmentSize)}, nil
}

// Name implements api.Runtime.
func (rt *Runtime) Name() string { return "pthreads" }

// Run implements api.Runtime.
func (rt *Runtime) Run(root func(api.T)) error {
	if rt.began {
		panic("pth: Runtime is single-use")
	}
	rt.began = true
	t := &thread{rt: rt, tid: 0}
	rt.h.Go("t0", nil, func(b host.Binding) {
		t.b = b
		t.lastEvent = b.Now()
		root(t)
		t.finish()
	})
	return rt.h.Run()
}

// Checksum implements api.Runtime.
func (rt *Runtime) Checksum() uint64 {
	h := fnv.New64a()
	rt.mu.Lock()
	h.Write(rt.mem)
	rt.mu.Unlock()
	return h.Sum64()
}

// Stats implements api.Runtime.
func (rt *Runtime) Stats() api.RunStats {
	rt.aggMu.Lock()
	defer rt.aggMu.Unlock()
	return rt.agg
}

type thread struct {
	rt        *Runtime
	b         host.Binding
	tid       int
	nextTid   int // children allocated as parent-tid-scoped (nondeterministic anyway)
	done      bool
	joiners   []*thread
	localWork int64
	waitNS    int64
	barNS     int64
	lastEvent int64
	syncOps   int64
	objSeq    uint64
}

func (t *thread) account(cat *int64) {
	now := t.b.Now()
	*cat += now - t.lastEvent
	t.lastEvent = now
}

func (t *thread) charge(cat *int64, ns int64) {
	if ns > 0 {
		t.b.Charge(ns)
	}
	t.account(cat)
}

func (t *thread) finish() {
	t.rt.mu.Lock()
	t.done = true
	joiners := t.joiners
	t.joiners = nil
	t.rt.mu.Unlock()
	for _, j := range joiners {
		t.b.Wake(j.b)
	}
	t.account(&t.localWork)
	t.rt.aggMu.Lock()
	t.rt.agg.LocalWorkNS += t.localWork
	t.rt.agg.DetermWaitNS += t.waitNS
	t.rt.agg.BarrierWaitNS += t.barNS
	t.rt.agg.SyncOps += t.syncOps
	t.rt.agg.PerThread = append(t.rt.agg.PerThread, api.ThreadTime{
		Tid: t.tid, LocalWork: t.localWork, DetermWait: t.waitNS, BarrierWait: t.barNS,
	})
	if now := t.b.Now(); now > t.rt.agg.WallNS {
		t.rt.agg.WallNS = now
	}
	t.rt.aggMu.Unlock()
}

// Tid implements api.T.
func (t *thread) Tid() int { return t.tid }

// Compute implements api.T.
func (t *thread) Compute(n int64) {
	if n < 0 {
		panic("pth: negative compute")
	}
	t.charge(&t.localWork, t.rt.cfg.Model.Instr(n))
}

func memInstr(n int) int64 { return 2 + int64(n+7)/8 }

// Read implements api.T. Reads under the runtime lock: the model is not in
// the business of reproducing torn reads, only racy interleavings.
func (t *thread) Read(buf []byte, off int) {
	t.rt.mu.Lock()
	copy(buf, t.rt.mem[off:off+len(buf)])
	t.rt.mu.Unlock()
	t.charge(&t.localWork, t.rt.cfg.Model.Instr(memInstr(len(buf))))
}

// Write implements api.T.
func (t *thread) Write(data []byte, off int) {
	t.rt.mu.Lock()
	copy(t.rt.mem[off:off+len(data)], data)
	t.rt.mu.Unlock()
	t.charge(&t.localWork, t.rt.cfg.Model.Instr(memInstr(len(data))))
}

type pMutex struct {
	locked  bool
	waiters []*thread
}

func (*pMutex) ImplMutex() {}

type pCond struct{ waiters []*thread }

func (*pCond) ImplCond() {}

type pBarrier struct {
	parties int
	waiting []*thread
}

func (*pBarrier) ImplBarrier() {}

// NewMutex implements api.T.
func (t *thread) NewMutex() api.Mutex { return &pMutex{} }

// NewCond implements api.T.
func (t *thread) NewCond() api.Cond { return &pCond{} }

// NewBarrier implements api.T.
func (t *thread) NewBarrier(parties int) api.Barrier {
	if parties < 1 {
		panic("pth: barrier needs at least one party")
	}
	return &pBarrier{parties: parties}
}

// Lock implements api.T: FIFO mutex with futex-style blocking.
func (t *thread) Lock(mx api.Mutex) {
	m := mx.(*pMutex)
	t.syncOps++
	t.account(&t.localWork)
	t.rt.mu.Lock()
	if !m.locked {
		m.locked = true
		t.rt.mu.Unlock()
		t.charge(&t.localWork, t.rt.cfg.Model.SyncOpLocal)
		return
	}
	m.waiters = append(m.waiters, t)
	t.rt.mu.Unlock()
	t.b.Block() // woken holding the lock (direct handoff)
	t.account(&t.waitNS)
}

// Unlock implements api.T.
func (t *thread) Unlock(mx api.Mutex) {
	m := mx.(*pMutex)
	t.syncOps++
	t.account(&t.localWork)
	t.rt.mu.Lock()
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		t.rt.mu.Unlock()
		t.b.Wake(w.b) // lock stays held, ownership transfers
	} else {
		m.locked = false
		t.rt.mu.Unlock()
	}
	t.charge(&t.localWork, t.rt.cfg.Model.SyncOpLocal)
}

// Wait implements api.T.
func (t *thread) Wait(cx api.Cond, mx api.Mutex) {
	c := cx.(*pCond)
	t.syncOps++
	t.account(&t.localWork)
	t.rt.mu.Lock()
	c.waiters = append(c.waiters, t)
	t.rt.mu.Unlock()
	t.Unlock(mx)
	t.b.Block()
	t.account(&t.waitNS)
	t.Lock(mx)
}

// Signal implements api.T.
func (t *thread) Signal(cx api.Cond) {
	c := cx.(*pCond)
	t.syncOps++
	t.rt.mu.Lock()
	var w *thread
	if len(c.waiters) > 0 {
		w = c.waiters[0]
		c.waiters = c.waiters[1:]
	}
	t.rt.mu.Unlock()
	if w != nil {
		t.b.Wake(w.b)
	}
	t.charge(&t.localWork, t.rt.cfg.Model.SyncOpLocal)
}

// Broadcast implements api.T.
func (t *thread) Broadcast(cx api.Cond) {
	c := cx.(*pCond)
	t.syncOps++
	t.rt.mu.Lock()
	ws := c.waiters
	c.waiters = nil
	t.rt.mu.Unlock()
	for _, w := range ws {
		t.b.Wake(w.b)
	}
	t.charge(&t.localWork, t.rt.cfg.Model.SyncOpLocal)
}

// BarrierWait implements api.T.
func (t *thread) BarrierWait(bx api.Barrier) {
	bar := bx.(*pBarrier)
	t.syncOps++
	t.account(&t.localWork)
	t.rt.mu.Lock()
	if len(bar.waiting) == bar.parties-1 {
		ws := bar.waiting
		bar.waiting = nil
		t.rt.mu.Unlock()
		for _, w := range ws {
			t.b.Wake(w.b)
		}
		t.charge(&t.localWork, t.rt.cfg.Model.SyncOpLocal)
		return
	}
	bar.waiting = append(bar.waiting, t)
	t.rt.mu.Unlock()
	t.b.Block()
	t.account(&t.barNS)
}

// ImplHandle marks thread as an api.Handle.
func (t *thread) ImplHandle() {}

// Spawn implements api.T.
func (t *thread) Spawn(fn func(api.T)) api.Handle {
	t.syncOps++
	t.nextTid++
	child := &thread{rt: t.rt, tid: t.tid*100 + t.nextTid}
	t.charge(&t.localWork, t.rt.cfg.Model.ForkBase/5) // pthread_create
	t.rt.aggMu.Lock()
	t.rt.agg.ThreadsSpawned++
	t.rt.aggMu.Unlock()
	t.rt.h.Go(fmt.Sprintf("p%d", child.tid), t.b, func(b host.Binding) {
		child.b = b
		child.lastEvent = b.Now()
		fn(child)
		child.finish()
	})
	return child
}

// Join implements api.T.
func (t *thread) Join(h api.Handle) {
	child := h.(*thread)
	t.syncOps++
	t.account(&t.localWork)
	t.rt.mu.Lock()
	if child.done {
		t.rt.mu.Unlock()
		return
	}
	child.joiners = append(child.joiners, t)
	t.rt.mu.Unlock()
	t.b.Block()
	t.account(&t.waitNS)
}

var _ api.Runtime = (*Runtime)(nil)
var _ api.T = (*thread)(nil)
