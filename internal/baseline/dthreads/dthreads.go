// Package dthreads reproduces DThreads (Liu, Curtsinger, Berger — SOSP
// 2011), the paper's weaker baseline, per its description in §5:
// round-robin ordering, commits at synchronization operations,
// mprotect()-based isolation, a single global lock for all mutexes, and —
// the defining difference from DWC/Consequence — *synchronous* commits
// (Figure 3a): execution proceeds in rounds; every running thread must
// reach its next synchronization operation before the round's serial phase
// runs, in which threads commit and synchronize one at a time in thread-ID
// order.
//
// The synchronous fence is what produces the paper's Figure 1b pathology:
// a thread that synchronizes frequently spends most of its time waiting
// for threads that synchronize rarely.
package dthreads

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Config parameterizes the DThreads baseline.
type Config struct {
	SegmentSize int
	PageSize    int
	TraceKeep   int
	Model       costmodel.Model
}

// Runtime implements api.Runtime with DThreads semantics.
type Runtime struct {
	cfg   Config
	h     host.Host
	seg   *mem.Segment
	rec   *trace.Recorder
	began bool

	mu sync.Mutex // guards everything below
	// members are threads that count toward fence completeness (running,
	// not blocked on the lock / a cond / a barrier / a join).
	members map[int]*thread
	// arrived are members waiting at the fence with a pending serial op.
	arrived map[int]*thread
	round   *round
	nextTid int

	// The single global lock all mutexes alias to.
	glockHeld    bool
	glockOwner   int
	glockWaiters []*thread

	agg   api.RunStats
	aggMu sync.Mutex
}

type round struct {
	order []*thread
	idx   int
}

// New creates a DThreads runtime on the given host.
func New(cfg Config, h host.Host) (*Runtime, error) {
	if cfg.SegmentSize <= 0 {
		return nil, fmt.Errorf("dthreads: segment size must be positive")
	}
	seg, err := mem.NewSegment(mem.SegmentConfig{Name: "heap", Size: cfg.SegmentSize, PageSize: cfg.PageSize})
	if err != nil {
		return nil, err
	}
	keep := cfg.TraceKeep
	if keep == 0 {
		keep = 4096
	}
	return &Runtime{
		cfg:        cfg,
		h:          h,
		seg:        seg,
		rec:        trace.New(keep),
		members:    make(map[int]*thread),
		arrived:    make(map[int]*thread),
		glockOwner: -1,
	}, nil
}

// Name implements api.Runtime.
func (rt *Runtime) Name() string { return "dthreads" }

// Trace exposes the sync-order trace.
func (rt *Runtime) Trace() *trace.Recorder { return rt.rec }

// Run implements api.Runtime.
func (rt *Runtime) Run(root func(api.T)) error {
	if rt.began {
		panic("dthreads: Runtime is single-use")
	}
	rt.began = true
	ws, err := rt.seg.Snapshot(0)
	if err != nil {
		return err
	}
	t := &thread{rt: rt, tid: 0, ws: ws}
	rt.members[0] = t
	rt.nextTid = 1
	rt.h.Go("t0", nil, func(b host.Binding) {
		t.b = b
		t.lastEvent = b.Now()
		root(t)
		t.exit()
	})
	return rt.h.Run()
}

// Checksum implements api.Runtime.
func (rt *Runtime) Checksum() uint64 {
	h := fnv.New64a()
	buf := make([]byte, rt.seg.PageSize())
	at := rt.seg.Head()
	for pg := 0; pg < rt.seg.NumPages(); pg++ {
		rt.seg.ReadCommitted(buf, pg*rt.seg.PageSize(), at)
		h.Write(buf)
	}
	return h.Sum64()
}

// Stats implements api.Runtime.
func (rt *Runtime) Stats() api.RunStats {
	rt.aggMu.Lock()
	s := rt.agg
	rt.aggMu.Unlock()
	ms := rt.seg.Stats()
	s.Faults = ms.Faults
	s.Versions = ms.Versions
	s.CommittedPages = ms.CommittedPages
	s.MergedPages = ms.MergedPages
	s.PulledPages = ms.PulledPages
	s.PeakPages = ms.PeakPages
	return s
}

// maybeStartRoundLocked begins a serial phase if every member has arrived.
// Returns the first thread of the new round (to be woken by the caller),
// or nil.
func (rt *Runtime) maybeStartRoundLocked() *thread {
	if rt.round != nil || len(rt.members) == 0 || len(rt.arrived) != len(rt.members) {
		return nil
	}
	order := make([]*thread, 0, len(rt.arrived))
	for _, th := range rt.arrived {
		order = append(order, th)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].tid < order[j].tid })
	rt.arrived = make(map[int]*thread)
	rt.round = &round{order: order}
	return order[0]
}

type thread struct {
	rt  *Runtime
	tid int
	b   host.Binding
	ws  *mem.Workspace

	localWork, determWait, barrierWait, commitNS, faultNS, libNS int64

	lastEvent int64
	syncOps   int64

	done    bool
	joiners []*thread

	// op is the pending serial-phase action; it runs during this thread's
	// turn and returns whether the thread proceeds to local work (false =
	// it blocks again, category blockCat, and refreshes to updateTarget on
	// wake).
	op           func() bool
	blockCat     *int64
	updateTarget int64
}

func (t *thread) account(cat *int64) {
	now := t.b.Now()
	*cat += now - t.lastEvent
	t.lastEvent = now
}

func (t *thread) charge(cat *int64, ns int64) {
	if ns > 0 {
		t.b.Charge(ns)
	}
	t.account(cat)
}

// syncPoint arrives at the fence with a pending serial op, waits for the
// round, takes its serial turn, and (if the op said to proceed) resumes
// local work.
func (t *thread) syncPoint(op func() bool) {
	t.syncOps++
	t.account(&t.localWork)
	rt := t.rt
	rt.mu.Lock()
	t.op = op
	rt.arrived[t.tid] = t
	first := rt.maybeStartRoundLocked()
	rt.mu.Unlock()
	if first != t {
		if first != nil {
			t.b.Wake(first.b)
		}
		t.b.Block() // until our serial turn
	}
	t.account(&t.determWait)
	t.serialTurn()
}

// serialTurn: commit+update, run the pending op, pass the baton.
func (t *thread) serialTurn() {
	rt := t.rt
	m := &rt.cfg.Model

	// DThreads commits at every sync op: diff dirty pages against twins,
	// patch the shared image, and refresh the local view — all during the
	// serial phase.
	pc := t.ws.BeginCommit()
	st := pc.Stats()
	pc.Complete()
	t.charge(&t.commitNS, m.CommitFixed+
		int64(st.CommittedPages)*(m.CommitPageSerial+m.CommitPageMerge)+
		int64(st.PulledPages)*m.UpdatePage)

	proceed := t.op()
	t.op = nil

	rt.mu.Lock()
	r := rt.round
	r.idx++
	var next *thread
	endOfRound := false
	if r.idx < len(r.order) {
		next = r.order[r.idx]
	} else {
		rt.round = nil
		endOfRound = true
		next = rt.maybeStartRoundLocked()
	}
	rt.mu.Unlock()
	if endOfRound {
		// DThreads applies diffs directly to the shared image; nothing is
		// retained across rounds, which the unbudgeted fold models.
		rt.seg.GC()
	}
	if next != nil && next != t {
		t.b.Wake(next.b)
	}
	if !proceed {
		cat := t.blockCat
		if cat == nil {
			cat = &t.determWait
		}
		t.b.Block()
		t.account(cat)
		pulled := t.ws.UpdateTo(t.updateTarget)
		t.charge(&t.commitNS, int64(pulled)*m.UpdatePage)
	}
}

// admitLocked re-adds a blocked thread to fence membership and records the
// deterministic view target it must refresh to on wake. Caller holds
// rt.mu and wakes w afterwards.
func (rt *Runtime) admitLocked(w *thread) {
	rt.members[w.tid] = w
	w.updateTarget = rt.seg.Head()
}

// --- api.T ---

// Tid implements api.T.
func (t *thread) Tid() int { return t.tid }

// Compute implements api.T.
func (t *thread) Compute(n int64) {
	if n < 0 {
		panic("dthreads: negative compute")
	}
	t.charge(&t.localWork, t.rt.cfg.Model.Instr(n))
}

func memInstr(n int) int64 { return 2 + int64(n+7)/8 }

// Read implements api.T.
func (t *thread) Read(buf []byte, off int) {
	t.ws.Read(buf, off)
	t.charge(&t.localWork, t.rt.cfg.Model.Instr(memInstr(len(buf))))
}

// Write implements api.T. Faults cost the mprotect path: SIGSEGV, handler,
// mprotect syscalls.
func (t *thread) Write(data []byte, off int) {
	t.ws.Write(data, off)
	if f := t.ws.TakeFaults(); f > 0 {
		t.account(&t.localWork)
		t.charge(&t.faultNS, f*t.rt.cfg.Model.MprotectFault)
	}
	t.charge(&t.localWork, t.rt.cfg.Model.Instr(memInstr(len(data))))
}

type dtMutex struct{ id uint64 }

func (*dtMutex) ImplMutex() {}

type dtCond struct {
	id      uint64
	waiters []*thread
}

func (*dtCond) ImplCond() {}

type dtBarrier struct {
	id      uint64
	parties int
	waiting []*thread
}

func (*dtBarrier) ImplBarrier() {}

var objSeq struct {
	sync.Mutex
	n uint64
}

func nextObj() uint64 {
	objSeq.Lock()
	defer objSeq.Unlock()
	objSeq.n++
	return objSeq.n
}

// NewMutex implements api.T. All mutexes alias the single global lock; the
// handle exists only for trace identity.
func (t *thread) NewMutex() api.Mutex { return &dtMutex{id: nextObj()} }

// NewCond implements api.T.
func (t *thread) NewCond() api.Cond { return &dtCond{id: nextObj()} }

// NewBarrier implements api.T.
func (t *thread) NewBarrier(parties int) api.Barrier {
	if parties < 1 {
		panic("dthreads: barrier needs at least one party")
	}
	return &dtBarrier{id: nextObj(), parties: parties}
}

// Lock implements api.T: acquire the global lock during the serial phase.
func (t *thread) Lock(mx api.Mutex) {
	m := mx.(*dtMutex)
	rt := t.rt
	t.syncPoint(func() bool {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		rt.rec.Record(t.tid, trace.OpLock, m.id, 0)
		if !rt.glockHeld {
			rt.glockHeld, rt.glockOwner = true, t.tid
			return true
		}
		rt.glockWaiters = append(rt.glockWaiters, t)
		delete(rt.members, t.tid)
		t.blockCat = &t.determWait
		return false
	})
}

// Unlock implements api.T.
func (t *thread) Unlock(mx api.Mutex) {
	m := mx.(*dtMutex)
	rt := t.rt
	t.syncPoint(func() bool {
		rt.mu.Lock()
		rt.rec.Record(t.tid, trace.OpUnlock, m.id, 0)
		if rt.glockOwner != t.tid {
			rt.mu.Unlock()
			panic(fmt.Sprintf("dthreads: tid %d unlocking lock owned by %d", t.tid, rt.glockOwner))
		}
		var w *thread
		if len(rt.glockWaiters) > 0 {
			w = rt.glockWaiters[0]
			rt.glockWaiters = rt.glockWaiters[1:]
			rt.glockOwner = w.tid // direct handoff
			rt.admitLocked(w)
		} else {
			rt.glockHeld, rt.glockOwner = false, -1
		}
		rt.mu.Unlock()
		if w != nil {
			t.b.Wake(w.b)
		}
		return true
	})
}

// Wait implements api.T.
func (t *thread) Wait(cx api.Cond, mx api.Mutex) {
	c := cx.(*dtCond)
	rt := t.rt
	t.syncPoint(func() bool {
		rt.mu.Lock()
		rt.rec.Record(t.tid, trace.OpWait, c.id, 0)
		if rt.glockOwner != t.tid {
			rt.mu.Unlock()
			panic("dthreads: cond wait without holding the lock")
		}
		// Release the lock (handoff if contended) and sleep on the cond.
		var w *thread
		if len(rt.glockWaiters) > 0 {
			w = rt.glockWaiters[0]
			rt.glockWaiters = rt.glockWaiters[1:]
			rt.glockOwner = w.tid
			rt.admitLocked(w)
		} else {
			rt.glockHeld, rt.glockOwner = false, -1
		}
		c.waiters = append(c.waiters, t)
		delete(rt.members, t.tid)
		t.blockCat = &t.determWait
		rt.mu.Unlock()
		if w != nil {
			t.b.Wake(w.b)
		}
		return false
	})
	// Woken by a signal holding the lock (granted by the signaler).
}

// signalLocked moves one cond waiter to the lock (granting it if free).
// Returns the thread to wake, if it got the lock immediately.
func (rt *Runtime) signalLocked(c *dtCond) *thread {
	if len(c.waiters) == 0 {
		return nil
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	if !rt.glockHeld {
		rt.glockHeld, rt.glockOwner = true, w.tid
		rt.admitLocked(w)
		return w
	}
	rt.glockWaiters = append(rt.glockWaiters, w)
	return nil
}

// Signal implements api.T.
func (t *thread) Signal(cx api.Cond) {
	c := cx.(*dtCond)
	rt := t.rt
	t.syncPoint(func() bool {
		rt.mu.Lock()
		rt.rec.Record(t.tid, trace.OpSignal, c.id, 0)
		w := rt.signalLocked(c)
		rt.mu.Unlock()
		if w != nil {
			t.b.Wake(w.b)
		}
		return true
	})
}

// Broadcast implements api.T.
func (t *thread) Broadcast(cx api.Cond) {
	c := cx.(*dtCond)
	rt := t.rt
	t.syncPoint(func() bool {
		rt.mu.Lock()
		rt.rec.Record(t.tid, trace.OpBcast, c.id, 0)
		var wake []*thread
		for len(c.waiters) > 0 {
			if w := rt.signalLocked(c); w != nil {
				wake = append(wake, w)
			}
		}
		rt.mu.Unlock()
		for _, w := range wake {
			t.b.Wake(w.b)
		}
		return true
	})
}

// BarrierWait implements api.T.
func (t *thread) BarrierWait(bx api.Barrier) {
	bar := bx.(*dtBarrier)
	rt := t.rt
	t.syncPoint(func() bool {
		rt.mu.Lock()
		rt.rec.Record(t.tid, trace.OpBarrier, bar.id, 0)
		if len(bar.waiting) == bar.parties-1 {
			ws := bar.waiting
			bar.waiting = nil
			for _, w := range ws {
				rt.admitLocked(w)
			}
			rt.mu.Unlock()
			for _, w := range ws {
				t.b.Wake(w.b)
			}
			return true
		}
		bar.waiting = append(bar.waiting, t)
		delete(rt.members, t.tid)
		t.blockCat = &t.barrierWait
		rt.mu.Unlock()
		return false
	})
}

// ImplHandle marks thread as an api.Handle.
func (t *thread) ImplHandle() {}

// Spawn implements api.T.
func (t *thread) Spawn(fn func(api.T)) api.Handle {
	rt := t.rt
	m := &rt.cfg.Model
	var child *thread
	t.syncPoint(func() bool {
		rt.mu.Lock()
		tid := rt.nextTid
		rt.nextTid++
		rt.rec.Record(t.tid, trace.OpSpawn, uint64(tid), 0)
		rt.mu.Unlock()
		// Fork: DThreads threads are processes; copying the page table
		// costs per populated page (plus re-protection).
		t.charge(&t.libNS, m.ForkBase+int64(rt.seg.PopulatedPages())*m.ForkPerPage)
		ws, err := rt.seg.Snapshot(tid)
		if err != nil {
			panic(fmt.Sprintf("dthreads: spawn: %v", err))
		}
		child = &thread{rt: rt, tid: tid, ws: ws}
		rt.mu.Lock()
		rt.members[tid] = child
		rt.mu.Unlock()
		rt.aggMu.Lock()
		rt.agg.ThreadsSpawned++
		rt.aggMu.Unlock()
		rt.h.Go(fmt.Sprintf("t%d", tid), t.b, func(b host.Binding) {
			child.b = b
			child.lastEvent = b.Now()
			fn(child)
			child.exit()
		})
		return true
	})
	return child
}

// Join implements api.T.
func (t *thread) Join(h api.Handle) {
	child, ok := h.(*thread)
	if !ok {
		panic("dthreads: foreign handle")
	}
	rt := t.rt
	t.syncPoint(func() bool {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		rt.rec.Record(t.tid, trace.OpJoin, uint64(child.tid), 0)
		if child.done {
			return true
		}
		child.joiners = append(child.joiners, t)
		delete(rt.members, t.tid)
		t.blockCat = &t.determWait
		return false
	})
}

// exit finishes a thread.
func (t *thread) exit() {
	rt := t.rt
	t.syncPoint(func() bool {
		rt.mu.Lock()
		rt.rec.Record(t.tid, trace.OpExit, uint64(t.tid), 0)
		t.done = true
		joiners := t.joiners
		t.joiners = nil
		for _, j := range joiners {
			rt.admitLocked(j)
		}
		delete(rt.members, t.tid)
		rt.mu.Unlock()
		for _, j := range joiners {
			t.b.Wake(j.b)
		}
		rt.seg.Release(t.ws)
		rt.seg.GC()
		t.account(&t.localWork)
		rt.aggMu.Lock()
		rt.agg.LocalWorkNS += t.localWork
		rt.agg.DetermWaitNS += t.determWait
		rt.agg.BarrierWaitNS += t.barrierWait
		rt.agg.CommitNS += t.commitNS
		rt.agg.FaultNS += t.faultNS
		rt.agg.LibNS += t.libNS
		rt.agg.SyncOps += t.syncOps
		if now := t.b.Now(); now > rt.agg.WallNS {
			rt.agg.WallNS = now
		}
		rt.aggMu.Unlock()
		return true
	})
}

var _ api.Runtime = (*Runtime)(nil)
var _ api.T = (*thread)(nil)
