package baseline_test

import (
	"fmt"
	"testing"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/host/simhost"
)

// Baseline-specific semantics beyond the shared program matrix.

// TestDThreadsGlobalLockAliasing: under DThreads, two distinct mutexes are
// the same global lock — critical sections under different locks must
// never overlap.
func TestDThreadsGlobalLockAliasing(t *testing.T) {
	rt := makeRuntime(t, "dthreads", simhost.New(costmodel.Default()))
	if err := rt.Run(func(root api.T) {
		m1 := root.NewMutex()
		m2 := root.NewMutex()
		h := root.Spawn(func(w api.T) {
			w.Lock(m2)
			cur := api.AddU64(w, 0, 1)
			if max := api.U64(w, 8); cur > max {
				api.PutU64(w, 8, cur)
			}
			w.Compute(5_000)
			api.PutU64(w, 0, api.U64(w, 0)-1)
			w.Unlock(m2)
		})
		root.Lock(m1)
		cur := api.AddU64(root, 0, 1)
		if max := api.U64(root, 8); cur > max {
			api.PutU64(root, 8, cur)
		}
		root.Compute(5_000)
		api.PutU64(root, 0, api.U64(root, 0)-1)
		root.Unlock(m1)
		root.Join(h)
		if api.U64(root, 8) != 1 {
			panic(fmt.Sprintf("dthreads global lock overlapped: max holders %d", api.U64(root, 8)))
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDWCAlsoAliasesLocks: DWC shares the single-global-lock model.
func TestDWCAlsoAliasesLocks(t *testing.T) {
	rt := makeRuntime(t, "dwc", simhost.New(costmodel.Default()))
	if err := rt.Run(func(root api.T) {
		m1 := root.NewMutex()
		m2 := root.NewMutex()
		h := root.Spawn(func(w api.T) {
			w.Lock(m2)
			api.AddU64(w, 0, 1)
			w.Unlock(m2)
		})
		root.Lock(m1)
		api.AddU64(root, 0, 1)
		root.Unlock(m1)
		root.Join(h)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDThreadsCondChain: signal chains through multiple waiters work
// under the fence-round protocol.
func TestDThreadsCondChain(t *testing.T) {
	rt := makeRuntime(t, "dthreads", simhost.New(costmodel.Default()))
	if err := rt.Run(func(root api.T) {
		m := root.NewMutex()
		c := root.NewCond()
		const stages = 3
		var hs []api.Handle
		for i := 0; i < stages; i++ {
			i := i
			hs = append(hs, root.Spawn(func(w api.T) {
				w.Lock(m)
				for api.U64(w, 0) != uint64(i) {
					w.Wait(c, m)
				}
				api.PutU64(w, 0, uint64(i+1))
				w.Broadcast(c)
				w.Unlock(m)
			}))
		}
		for _, h := range hs {
			root.Join(h)
		}
		if api.U64(root, 0) != stages {
			panic(fmt.Sprintf("chain reached %d, want %d", api.U64(root, 0), stages))
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDThreadsBarrierReuse: the same barrier across many rounds under the
// fence protocol.
func TestDThreadsBarrierReuse(t *testing.T) {
	rt := makeRuntime(t, "dthreads", simhost.New(costmodel.Default()))
	if err := rt.Run(func(root api.T) {
		const n, rounds = 3, 5
		bar := root.NewBarrier(n)
		worker := func(id int) func(api.T) {
			return func(w api.T) {
				for r := 0; r < rounds; r++ {
					api.AddU64(w, 8*id, 1)
					w.BarrierWait(bar)
					// After the barrier everyone's increment is visible.
					for o := 0; o < n; o++ {
						if api.U64(w, 8*o) < uint64(r+1) {
							panic(fmt.Sprintf("round %d: worker %d stale", r, o))
						}
					}
				}
			}
		}
		var hs []api.Handle
		for i := 1; i < n; i++ {
			hs = append(hs, root.Spawn(worker(i)))
		}
		worker(0)(root)
		for _, h := range hs {
			root.Join(h)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDThreadsFrequentSyncherWaits: the Figure 1b pathology is measurable
// — a thread that synchronizes often accumulates determ-wait while a
// rarely-synchronizing thread computes.
func TestDThreadsFrequentSyncherWaits(t *testing.T) {
	rt := makeRuntime(t, "dthreads", simhost.New(costmodel.Default()))
	if err := rt.Run(func(root api.T) {
		m := root.NewMutex()
		h := root.Spawn(func(w api.T) {
			// Rare syncher: one long chunk between ops.
			for i := 0; i < 3; i++ {
				w.Compute(2_000_000)
				w.Lock(m)
				w.Unlock(m)
			}
		})
		// Frequent syncher.
		for i := 0; i < 30; i++ {
			root.Compute(1_000)
			root.Lock(m)
			root.Unlock(m)
		}
		root.Join(h)
	}); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.DetermWaitNS < st.LocalWorkNS {
		t.Errorf("fence rounds should dominate: determWait=%d localWork=%d",
			st.DetermWaitNS, st.LocalWorkNS)
	}
}

// TestPthreadsModelHasNoDeterminismMachinery: sanity on the reference
// model's stats.
func TestPthreadsModelHasNoDeterminismMachinery(t *testing.T) {
	rt := makeRuntime(t, "pthreads", simhost.New(costmodel.Default()))
	if err := rt.Run(counterProg(3, 10)); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.TokenGrants != 0 || st.Versions != 0 || st.Faults != 0 {
		t.Errorf("pthreads model has determinism artifacts: %+v", st)
	}
	if st.SyncOps == 0 || st.WallNS == 0 {
		t.Errorf("pthreads model recorded no activity: %+v", st)
	}
}
