// Package baseline_test exercises the three comparison runtimes against
// the same programs the det tests use, checking correctness everywhere and
// determinism for DThreads and DWC.
package baseline_test

import (
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/baseline/dthreads"
	"repro/internal/baseline/dwc"
	"repro/internal/baseline/pth"
	"repro/internal/costmodel"
	"repro/internal/host"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
)

const segSize = 1 << 20

func makeRuntime(t *testing.T, name string, h host.Host) api.Runtime {
	t.Helper()
	var rt api.Runtime
	var err error
	switch name {
	case "dthreads":
		rt, err = dthreads.New(dthreads.Config{SegmentSize: segSize, Model: costmodel.Default()}, h)
	case "dwc":
		rt, err = dwc.New(dwc.Config{SegmentSize: segSize, Model: costmodel.Default()}, h)
	case "pthreads":
		rt, err = pth.New(pth.Config{SegmentSize: segSize, Model: costmodel.Default()}, h)
	default:
		t.Fatalf("unknown runtime %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func counterProg(n, k int) func(api.T) {
	return func(t api.T) {
		m := t.NewMutex()
		var hs []api.Handle
		for i := 0; i < n; i++ {
			hs = append(hs, t.Spawn(func(t api.T) {
				for j := 0; j < k; j++ {
					t.Compute(500)
					t.Lock(m)
					api.AddU64(t, 0, 1)
					t.Unlock(m)
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
		// Copy the counter to a check slot so tests can verify via
		// checksum-independent readback.
		api.PutU64(t, 1024, api.U64(t, 0))
	}
}

func barrierProg(n, iters int) func(api.T) {
	return func(t api.T) {
		bar := t.NewBarrier(n)
		worker := func(id int) func(api.T) {
			return func(t api.T) {
				for it := 0; it < iters; it++ {
					api.AddU64(t, 8*id, uint64(id+it))
					t.Compute(int64(300 * (id + 1)))
					t.BarrierWait(bar)
				}
			}
		}
		var hs []api.Handle
		for i := 1; i < n; i++ {
			hs = append(hs, t.Spawn(worker(i)))
		}
		worker(0)(t)
		for _, h := range hs {
			t.Join(h)
		}
	}
}

func condProg() func(api.T) {
	return func(t api.T) {
		m := t.NewMutex()
		c := t.NewCond()
		h := t.Spawn(func(t api.T) {
			t.Lock(m)
			for api.U64(t, 0) == 0 {
				t.Wait(c, m)
			}
			api.PutU64(t, 8, api.U64(t, 0)*2)
			t.Unlock(m)
		})
		t.Compute(5000)
		t.Lock(m)
		api.PutU64(t, 0, 21)
		t.Signal(c)
		t.Unlock(m)
		t.Join(h)
	}
}

func TestAllBaselinesRunAllPrograms(t *testing.T) {
	progs := map[string]func(api.T){
		"counter": counterProg(4, 15),
		"barrier": barrierProg(4, 5),
		"cond":    condProg(),
	}
	hostsFns := map[string]func() host.Host{
		"sim":  func() host.Host { return simhost.New(costmodel.Default()) },
		"real": func() host.Host { return realhost.New(100*time.Microsecond, 5) },
	}
	for _, rtName := range []string{"dthreads", "dwc", "pthreads"} {
		for pName, prog := range progs {
			for hName, mk := range hostsFns {
				t.Run(rtName+"/"+pName+"/"+hName, func(t *testing.T) {
					rt := makeRuntime(t, rtName, mk())
					if err := rt.Run(prog); err != nil {
						t.Fatalf("run: %v", err)
					}
				})
			}
		}
	}
}

func TestCounterValueCorrectEverywhere(t *testing.T) {
	const n, k = 4, 15
	for _, rtName := range []string{"dthreads", "dwc", "pthreads"} {
		t.Run(rtName, func(t *testing.T) {
			rt := makeRuntime(t, rtName, simhost.New(costmodel.Default()))
			if err := rt.Run(func(root api.T) {
				counterProg(n, k)(root)
				if got := api.U64(root, 0); got != n*k {
					t.Errorf("%s: counter = %d, want %d", rtName, got, n*k)
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeterministicBaselinesAreDeterministic(t *testing.T) {
	progs := map[string]func(api.T){
		"counter": counterProg(4, 12),
		"barrier": barrierProg(3, 4),
		"cond":    condProg(),
	}
	for _, rtName := range []string{"dthreads", "dwc"} {
		for pName, prog := range progs {
			t.Run(rtName+"/"+pName, func(t *testing.T) {
				var sums []uint64
				for rep := 0; rep < 2; rep++ {
					rt := makeRuntime(t, rtName, simhost.New(costmodel.Default()))
					if err := rt.Run(prog); err != nil {
						t.Fatal(err)
					}
					sums = append(sums, rt.Checksum())
				}
				// And once on a perturbed real host.
				rt := makeRuntime(t, rtName, realhost.New(200*time.Microsecond, 17))
				if err := rt.Run(prog); err != nil {
					t.Fatal(err)
				}
				sums = append(sums, rt.Checksum())
				if sums[0] != sums[1] || sums[0] != sums[2] {
					t.Errorf("%s/%s nondeterministic: %x %x %x", rtName, pName, sums[0], sums[1], sums[2])
				}
			})
		}
	}
}

func TestDThreadsSlowerThanDWCOnFineGrainedLocks(t *testing.T) {
	// The synchronous fence should make DThreads pay more wall time than
	// DWC when one thread syncs often and another rarely (Figure 1b).
	prog := func(t api.T) {
		m := t.NewMutex()
		h := t.Spawn(func(t api.T) {
			for j := 0; j < 100; j++ {
				t.Lock(m)
				api.AddU64(t, 0, 1)
				t.Unlock(m)
				t.Compute(200)
			}
		})
		// Rare syncher: long chunks.
		for j := 0; j < 5; j++ {
			t.Compute(400_000)
			t.Lock(m)
			api.AddU64(t, 8, 1)
			t.Unlock(m)
		}
		t.Join(h)
	}
	run := func(name string) int64 {
		rt := makeRuntime(t, name, simhost.New(costmodel.Default()))
		if err := rt.Run(prog); err != nil {
			t.Fatal(err)
		}
		return rt.Stats().WallNS
	}
	dt := run("dthreads")
	dw := run("dwc")
	if dt <= dw {
		t.Errorf("expected DThreads (fence rounds) slower: dthreads=%d dwc=%d", dt, dw)
	}
}

func TestPthFasterThanDeterministicRuntimes(t *testing.T) {
	prog := counterProg(4, 20)
	run := func(name string) int64 {
		rt := makeRuntime(t, name, simhost.New(costmodel.Default()))
		if err := rt.Run(prog); err != nil {
			t.Fatal(err)
		}
		return rt.Stats().WallNS
	}
	p := run("pthreads")
	dw := run("dwc")
	dt := run("dthreads")
	if p >= dw || p >= dt {
		t.Errorf("pthreads should be fastest: pth=%d dwc=%d dthreads=%d", p, dw, dt)
	}
}
