// Package dwc reproduces DWC — "DThreads with Conversion" (Merrifield &
// Eriksson, EuroSys 2013) — the stronger of the paper's two baselines.
//
// DWC is the system Consequence directly extends: it already uses
// Conversion's versioned memory with asynchronous commits at
// synchronization operations, but orders those operations round-robin,
// treats every mutex as a single global lock, commits barrier pages
// serially, and has none of Consequence's §3 optimizations. That makes it
// expressible precisely as a configuration of the Consequence runtime with
// everything new switched off — which is also the honest framing: the
// paper's contribution is exactly the delta this package disables.
package dwc

import (
	"repro/internal/api"
	"repro/internal/clock"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host"
)

// Config parameterizes the DWC baseline.
type Config struct {
	SegmentSize     int
	PageSize        int
	GCPageBudget    int
	GCEveryNCommits int
	TraceKeep       int
	Model           costmodel.Model
}

// New creates a DWC runtime on the given host.
func New(cfg Config, h host.Host) (api.Runtime, error) {
	d := det.Default()
	d.Policy = clock.PolicyRR
	d.FastForward = false
	d.Coarsening = false
	d.AdaptiveOverflow = false
	d.UserspaceClockRead = false
	d.ThreadPool = false
	d.ParallelBarrier = false
	d.SpeculativeDiff = false
	d.WriteSetPrediction = false
	d.Shards = 1
	d.WorkerPool = false
	d.LazyFastForward = false
	d.SingleGlobalLock = true
	d.NameOverride = "dwc"
	d.SegmentSize = cfg.SegmentSize
	d.PageSize = cfg.PageSize
	d.GCPageBudget = cfg.GCPageBudget
	if cfg.GCEveryNCommits > 0 {
		d.GCEveryNCommits = cfg.GCEveryNCommits
	}
	if cfg.TraceKeep > 0 {
		d.TraceKeep = cfg.TraceKeep
	}
	d.Model = cfg.Model
	return det.New(d, h)
}
