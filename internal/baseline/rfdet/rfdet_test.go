package rfdet_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/baseline/rfdet"
	"repro/internal/costmodel"
	"repro/internal/host"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
)

func newRT(t *testing.T, h host.Host) *rfdet.Runtime {
	t.Helper()
	rt, err := rfdet.New(rfdet.Config{SegmentSize: 1 << 20, Model: costmodel.Default()}, h)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func counterProg(n, k int) func(api.T) {
	return func(root api.T) {
		m := root.NewMutex()
		var hs []api.Handle
		for i := 0; i < n; i++ {
			hs = append(hs, root.Spawn(func(w api.T) {
				for j := 0; j < k; j++ {
					w.Compute(500)
					w.Lock(m)
					api.AddU64(w, 0, 1)
					w.Unlock(m)
				}
			}))
		}
		for _, h := range hs {
			root.Join(h)
		}
		if got := api.U64(root, 0); got != uint64(n*k) {
			panic(fmt.Sprintf("counter = %d, want %d", got, n*k))
		}
	}
}

func TestCounterCorrectBothHosts(t *testing.T) {
	for name, h := range map[string]host.Host{
		"sim":  simhost.New(costmodel.Default()),
		"real": realhost.New(100*time.Microsecond, 5),
	} {
		t.Run(name, func(t *testing.T) {
			rt := newRT(t, h)
			if err := rt.Run(counterProg(4, 25)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeterministicAcrossRunsAndHosts(t *testing.T) {
	// Includes racy writes: LRC resolves them by happens-before
	// application order, which is deterministic under the token.
	prog := func(root api.T) {
		m := root.NewMutex()
		var hs []api.Handle
		for i := 0; i < 3; i++ {
			i := i
			hs = append(hs, root.Spawn(func(w api.T) {
				for j := 0; j < 20; j++ {
					w.Compute(int64(200 * (i + 1)))
					api.PutU64(w, 8, uint64(i*100+j)) // racy
					w.Lock(m)
					api.AddU64(w, 0, 1)
					w.Unlock(m)
				}
			}))
		}
		for _, h := range hs {
			root.Join(h)
		}
	}
	var sums, traces []uint64
	run := func(h host.Host) {
		rt := newRT(t, h)
		if err := rt.Run(prog); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, rt.Checksum())
		traces = append(traces, rt.Trace().Hash())
	}
	run(simhost.New(costmodel.Default()))
	run(simhost.New(costmodel.Default()))
	run(realhost.New(150*time.Microsecond, 3))
	run(realhost.New(150*time.Microsecond, 71))
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] || traces[i] != traces[0] {
			t.Fatalf("run %d diverged: %x/%x vs %x/%x", i, sums[i], traces[i], sums[0], traces[0])
		}
	}
}

func TestBarrierPropagatesAllToAll(t *testing.T) {
	const n = 4
	prog := func(root api.T) {
		bar := root.NewBarrier(n)
		worker := func(id int) func(api.T) {
			return func(w api.T) {
				for it := 1; it <= 3; it++ {
					api.PutU64(w, 8*id, uint64(it*10+id))
					w.BarrierWait(bar)
					for o := 0; o < n; o++ {
						if got := api.U64(w, 8*o); got != uint64(it*10+o) {
							panic(fmt.Sprintf("worker %d iter %d: slot %d = %d", id, it, o, got))
						}
					}
					w.BarrierWait(bar)
				}
			}
		}
		var hs []api.Handle
		for i := 1; i < n; i++ {
			hs = append(hs, root.Spawn(worker(i)))
		}
		worker(0)(root)
		for _, h := range hs {
			root.Join(h)
		}
	}
	rt := newRT(t, simhost.New(costmodel.Default()))
	if err := rt.Run(prog); err != nil {
		t.Fatal(err)
	}
}

func TestCondVar(t *testing.T) {
	prog := func(root api.T) {
		m := root.NewMutex()
		c := root.NewCond()
		h := root.Spawn(func(w api.T) {
			w.Lock(m)
			for api.U64(w, 0) == 0 {
				w.Wait(c, m)
			}
			api.PutU64(w, 8, api.U64(w, 0)*3)
			w.Unlock(m)
		})
		root.Compute(10_000)
		root.Lock(m)
		api.PutU64(root, 0, 14)
		root.Signal(c)
		root.Unlock(m)
		root.Join(h)
		if got := api.U64(root, 8); got != 42 {
			panic(fmt.Sprintf("cond result = %d", got))
		}
	}
	rt := newRT(t, simhost.New(costmodel.Default()))
	if err := rt.Run(prog); err != nil {
		t.Fatal(err)
	}
}

// TestSpaceLeak demonstrates §2.3's criticism: modifications released via
// a lock nobody ever re-acquires stay pinned for as long as any thread
// has not happened-after them — here, for the whole lifetime of two
// churning peers. (Happens-before is transitive, so the leak requires the
// leaker to stop releasing afterwards; a control run without the leaky
// write isolates the effect.)
func TestSpaceLeak(t *testing.T) {
	run := func(leak bool) int64 {
		rt := newRT(t, simhost.New(costmodel.Default()))
		if err := rt.Run(func(root api.T) {
			leaky := root.NewMutex()
			busy := root.NewMutex()
			// The leaker: dump 64 KiB into a lock nobody re-acquires, then
			// go quiet (pure compute — no further releases).
			leaker := root.Spawn(func(w api.T) {
				if leak {
					buf := make([]byte, 4096)
					for i := range buf {
						buf[i] = byte(i)
					}
					for pg := 0; pg < 16; pg++ {
						w.Write(buf, 65536+pg*4096)
					}
				}
				w.Lock(leaky)
				w.Unlock(leaky)
				w.Compute(3_000_000)
			})
			// Two peers churn the busy lock between themselves; their
			// mutual traffic is collectible, the leaker's interval is not.
			var peers []api.Handle
			for p := 0; p < 2; p++ {
				p := p
				peers = append(peers, root.Spawn(func(w api.T) {
					for i := 0; i < 60; i++ {
						w.Lock(busy)
						api.AddU64(w, 8*(1+p), 1)
						w.Unlock(busy)
						w.Compute(20_000)
					}
				}))
			}
			root.Join(leaker)
			for _, h := range peers {
				root.Join(h)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return rt.PeakRetainedBytes()
	}
	leakPeak := run(true)
	controlPeak := run(false)
	if leakPeak-controlPeak < 60*1024 {
		t.Fatalf("leak not visible: peak %d vs control %d", leakPeak, controlPeak)
	}
}

// TestPointToPointPropagation: a thread that never synchronizes with the
// writers' objects never pays for their data — the LRC property TSO lacks.
func TestPointToPointPropagation(t *testing.T) {
	run := func(join bool) int64 {
		rt := newRT(t, simhost.New(costmodel.Default()))
		if err := rt.Run(func(root api.T) {
			m := root.NewMutex()
			writer := root.Spawn(func(w api.T) {
				buf := make([]byte, 4096)
				for i := range buf {
					buf[i] = 7
				}
				for pg := 0; pg < 32; pg++ {
					w.Write(buf, 65536+pg*4096)
				}
				w.Lock(m)
				w.Unlock(m)
			})
			bystander := root.Spawn(func(w api.T) {
				w.Compute(500_000) // no shared sync objects at all
			})
			if join {
				root.Join(writer)
			} else {
				// Join in the other order so timing stays comparable.
				root.Join(writer)
			}
			root.Join(bystander)
		}); err != nil {
			t.Fatal(err)
		}
		return rt.AppliedBytes()
	}
	applied := run(true)
	// Only the root's join edge pulls the writer's 128 KiB; the bystander
	// pulls nothing. Under TSO every thread's next update would carry it.
	if applied < 128*1024 {
		t.Fatalf("join edge did not propagate: %d", applied)
	}
	if applied > 2*128*1024 {
		t.Fatalf("propagation not point-to-point: %d bytes applied", applied)
	}
}

func TestStatsPopulated(t *testing.T) {
	rt := newRT(t, simhost.New(costmodel.Default()))
	if err := rt.Run(counterProg(3, 10)); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.SyncOps == 0 || st.TokenGrants == 0 || st.WallNS == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if st.ThreadsSpawned != 3 {
		t.Fatalf("spawned = %d", st.ThreadsSpawned)
	}
}
