// Package rfdet is a deterministic lazy-release-consistency (LRC) runtime
// in the style of RFDet (Lu, Zhou, Bergan, Wang — PPoPP 2014), the
// relaxed-consistency system the paper's §5.3 estimates against but could
// not run (footnote 5: "the current implementation is provided without
// deterministic synchronization").
//
// Like Consequence, synchronization is totally ordered by the
// instruction-count token (LRC relaxes *memory*, not the sync order —
// §2.2: "clock operations fundamentally require global coordination").
// Unlike Consequence, memory propagation is point-to-point: a release
// attaches the thread's write log to the synchronization object as an
// *interval*; an acquire applies exactly the intervals that
// happens-before the acquisition (TreadMarks-style vector clocks). There
// is no global commit.
//
// This makes the paper's two §2.3 criticisms of LRC directly measurable:
//
//   - the space leak — intervals attached to an object that is never
//     re-acquired can never be reclaimed (Stats.RetainedBytes /
//     LeakedBytes);
//   - and the §6 counterpoint — for fine-grained locking, LRC's local
//     commits avoid the global propagation that limits TSO scalability
//     (harness table "lrc").
//
// Threads keep private full views of the segment (the write-log +
// private-workspace design of compiler-instrumented LRC systems; every
// store pays an instrumentation overhead in the cost model).
package rfdet

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/api"
	"repro/internal/clock"
	"repro/internal/costmodel"
	"repro/internal/host"
	"repro/internal/trace"
)

// Config parameterizes the LRC runtime.
type Config struct {
	SegmentSize int
	TraceKeep   int
	Model       costmodel.Model
	// FastForward mirrors det's §3.5 option (on by default via New).
	FastForward bool
}

// patch is one logged store.
type patch struct {
	off  int
	data []byte
}

// interval is a release's write log, identified by (owner, seq). gseq is
// the interval's position in the global release order (all releases happen
// under the token): applying needed intervals in gseq order respects
// happens-before, which is a suborder of the token order.
type interval struct {
	owner   int
	seq     int64
	gseq    int64
	patches []patch
	bytes   int64
}

type vclock map[int]int64

func (a vclock) join(b vclock) {
	for t, c := range b {
		if c > a[t] {
			a[t] = c
		}
	}
}

func (a vclock) clone() vclock {
	out := make(vclock, len(a))
	for t, c := range a {
		out[t] = c
	}
	return out
}

// Runtime implements api.Runtime with deterministic LRC semantics.
type Runtime struct {
	cfg   Config
	h     host.Host
	timed bool
	arb   *clock.Arbiter
	rec   *trace.Recorder

	mu      sync.Mutex // threads map (grant delivery)
	threads map[int]*thread

	// token-serialized state
	nextTid   int
	gseq      int64
	intervals map[int][]*interval // per owner, seq-ascending
	final     []byte              // last exiter's view, for Checksum
	finalVC   vclock

	// retainedBytes/peakRetained track unreclaimed interval bytes (the
	// space leak); appliedBytes totals point-to-point propagation. All
	// mutated under the token.
	retainedBytes int64
	peakRetained  int64
	appliedBytes  int64

	agg   api.RunStats
	aggMu sync.Mutex
	began bool
}

// New creates an LRC runtime on the given host.
func New(cfg Config, h host.Host) (*Runtime, error) {
	if cfg.SegmentSize <= 0 {
		return nil, fmt.Errorf("rfdet: segment size must be positive")
	}
	keep := cfg.TraceKeep
	if keep == 0 {
		keep = 4096
	}
	return &Runtime{
		cfg:       cfg,
		h:         h,
		timed:     h.Timed(),
		arb:       clock.New(clock.PolicyIC, true),
		rec:       trace.New(keep),
		threads:   make(map[int]*thread),
		intervals: make(map[int][]*interval),
	}, nil
}

// Name implements api.Runtime.
func (rt *Runtime) Name() string { return "rfdet-lrc" }

// Trace exposes the sync-order trace.
func (rt *Runtime) Trace() *trace.Recorder { return rt.rec }

// Run implements api.Runtime.
func (rt *Runtime) Run(root func(api.T)) error {
	if rt.began {
		panic("rfdet: Runtime is single-use")
	}
	rt.began = true
	t := rt.newThread(0, 0, make([]byte, rt.cfg.SegmentSize), vclock{})
	rt.nextTid = 1
	rt.h.Go("t0", nil, func(b host.Binding) {
		t.start(b)
		root(t)
		t.exit()
	})
	return rt.h.Run()
}

func (rt *Runtime) newThread(tid int, startClock int64, view []byte, vc vclock) *thread {
	t := &thread{
		rt:     rt,
		tid:    tid,
		view:   view,
		vc:     vc,
		icount: startClock,
	}
	rt.mu.Lock()
	rt.threads[tid] = t
	rt.mu.Unlock()
	rt.deliverFrom(nil, rt.arb.Register(tid, startClock))
	return t
}

func (rt *Runtime) deliverFrom(waker host.Binding, grant int) {
	if grant == clock.NoGrant {
		return
	}
	rt.mu.Lock()
	target, ok := rt.threads[grant]
	rt.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("rfdet: grant for unknown tid %d", grant))
	}
	if waker == nil {
		panic("rfdet: grant before any thread is running")
	}
	waker.Wake(target.b)
}

// gcIntervals drops interval prefixes every live thread has applied.
// Intervals covered by an object's clock but not by every thread's are
// exactly the paper's LRC space leak. Token-held.
func (rt *Runtime) gcIntervals() {
	minVC := vclock{}
	first := true
	rt.mu.Lock()
	for _, th := range rt.threads {
		if first {
			minVC = th.vc.clone()
			first = false
			continue
		}
		for owner := range minVC {
			if th.vc[owner] < minVC[owner] {
				minVC[owner] = th.vc[owner]
			}
		}
	}
	rt.mu.Unlock()
	if first {
		return
	}
	for owner, ivs := range rt.intervals {
		cut := 0
		for cut < len(ivs) && ivs[cut].seq <= minVC[owner] {
			rt.retainedBytes -= ivs[cut].bytes
			cut++
		}
		if cut > 0 {
			rt.intervals[owner] = ivs[cut:]
		}
	}
}

// Checksum implements api.Runtime: hash of the final thread's view (the
// last exiter has acquired every preceding exit edge, so its view is the
// deterministic final state).
func (rt *Runtime) Checksum() uint64 {
	h := fnv.New64a()
	h.Write(rt.final)
	return h.Sum64()
}

// Stats implements api.Runtime. PulledPages reports LRC's propagated
// bytes / 4096 for comparability with the TSO runtimes; PeakPages reports
// peak retained interval bytes the same way.
func (rt *Runtime) Stats() api.RunStats {
	rt.aggMu.Lock()
	s := rt.agg
	rt.aggMu.Unlock()
	s.PulledPages = rt.appliedBytes / 4096
	s.PeakPages = rt.peakRetained / 4096
	return s
}

// RetainedBytes reports interval bytes currently unreclaimable — §2.3's
// space leak, measured. Call after Run returns. (As threads exit, the
// collector's horizon shrinks to the survivors, so end-of-run retention
// understates the leak; PeakRetainedBytes captures it.)
func (rt *Runtime) RetainedBytes() int64 { return rt.retainedBytes }

// PeakRetainedBytes reports the maximum interval bytes ever outstanding.
func (rt *Runtime) PeakRetainedBytes() int64 { return rt.peakRetained }

// AppliedBytes reports total point-to-point propagation volume.
func (rt *Runtime) AppliedBytes() int64 { return rt.appliedBytes }

var _ api.Runtime = (*Runtime)(nil)
