package rfdet

import (
	"fmt"
	"sort"

	"repro/internal/api"
	"repro/internal/clock"
	"repro/internal/host"
	"repro/internal/trace"
)

// thread is one LRC thread: a private full view of the segment, a write
// log (the pending interval), and a vector clock of applied intervals.
type thread struct {
	rt  *Runtime
	tid int
	b   host.Binding

	view         []byte
	pending      []patch
	pendingBytes int64
	vc           vclock
	relSeq       int64

	icount  int64
	holding bool

	localWork, determWait, barrierWait, commitNS, libNS int64
	lastEvent                                           int64
	syncOps                                             int64

	done    bool
	joiners []int
	// barrierVC is set by the releasing barrier arrival before the wake.
	barrierVC vclock
	objSeq    uint64
}

func (t *thread) start(b host.Binding) {
	t.b = b
	t.lastEvent = b.Now()
}

func (t *thread) account(cat *int64) {
	now := t.b.Now()
	*cat += now - t.lastEvent
	t.lastEvent = now
}

func (t *thread) charge(cat *int64, ns int64) {
	if ns > 0 {
		t.b.Charge(ns)
	}
	t.account(cat)
}

func (t *thread) deliver(grant int) {
	if grant == clock.NoGrant {
		return
	}
	t.rt.deliverFrom(t.b, grant)
}

// --- token protocol (sync ordering is global, as in Consequence) ---

func (t *thread) acquireToken() {
	m := &t.rt.cfg.Model
	t.account(&t.localWork)
	t.charge(&t.libNS, m.SyscallClockRead)
	if g := t.rt.arb.Request(t.tid); g != t.tid {
		t.deliver(g)
		t.b.Block()
		t.icount = t.rt.arb.Count(t.tid)
	}
	t.holding = true
	t.account(&t.determWait)
	t.charge(&t.libNS, m.TokenHandoff)
}

func (t *thread) releaseToken() {
	t.holding = false
	t.icount++
	t.deliver(t.rt.arb.Release(t.tid))
}

func (t *thread) blockForToken() {
	t.b.Block()
	t.icount = t.rt.arb.Count(t.tid)
	t.holding = true
	t.account(&t.determWait)
	t.charge(&t.libNS, t.rt.cfg.Model.TokenHandoff)
}

// --- LRC memory ---

// Tid implements api.T.
func (t *thread) Tid() int { return t.tid }

// Compute implements api.T.
func (t *thread) Compute(n int64) {
	if n < 0 {
		panic("rfdet: negative compute")
	}
	t.icount += n
	t.charge(&t.localWork, t.rt.cfg.Model.Instr(n))
	t.deliver(t.rt.arb.Advance(t.tid, n))
}

func memInstr(n int) int64 { return 2 + int64(n+7)/8 }

// Read implements api.T: private view, no coordination.
func (t *thread) Read(buf []byte, off int) {
	copy(buf, t.view[off:off+len(buf)])
	n := memInstr(len(buf))
	t.icount += n
	t.charge(&t.localWork, t.rt.cfg.Model.Instr(n))
	t.deliver(t.rt.arb.Advance(t.tid, n))
}

// Write implements api.T: apply to the private view and log the store.
// Every store pays the compiler-instrumentation overhead LRC systems
// impose (roughly doubling the store's cost).
func (t *thread) Write(data []byte, off int) {
	copy(t.view[off:off+len(data)], data)
	t.pending = append(t.pending, patch{off: off, data: append([]byte(nil), data...)})
	t.pendingBytes += int64(len(data))
	n := 2 * memInstr(len(data))
	t.icount += n
	t.charge(&t.localWork, t.rt.cfg.Model.Instr(n))
	t.deliver(t.rt.arb.Advance(t.tid, n))
}

// releaseInterval publishes the pending write log as this thread's next
// interval and returns the updated clock component. Token-held. The
// interval is retained in the global store until every live thread has
// applied it — or forever, if some never do (the space leak).
func (t *thread) releaseInterval() {
	if len(t.pending) == 0 {
		t.relSeq++ // empty releases still advance the component
		t.vc[t.tid] = t.relSeq
		return
	}
	m := &t.rt.cfg.Model
	t.relSeq++
	t.vc[t.tid] = t.relSeq
	rt0 := t.rt
	rt0.gseq++
	iv := &interval{owner: t.tid, seq: t.relSeq, gseq: rt0.gseq, patches: t.pending, bytes: t.pendingBytes}
	t.pending = nil
	t.pendingBytes = 0
	rt := t.rt
	rt.intervals[t.tid] = append(rt.intervals[t.tid], iv)
	rt.retainedBytes += iv.bytes
	if rt.retainedBytes > rt.peakRetained {
		rt.peakRetained = rt.retainedBytes
	}
	// The release itself is local work: log finalization only.
	t.charge(&t.commitNS, m.CommitFixed/4+iv.bytes/64*int64(m.InstrNS*8))
}

// applyUpTo applies, in (owner, seq) order, every interval covered by
// target that this thread has not yet seen — the acquire side of
// happens-before propagation. Point-to-point: only this thread pays.
func (t *thread) applyUpTo(target vclock) {
	m := &t.rt.cfg.Model
	var needed []*interval
	for owner, upto := range target {
		have := t.vc[owner]
		if upto <= have || owner == t.tid {
			continue
		}
		for _, iv := range t.rt.intervals[owner] {
			if iv.seq > have && iv.seq <= upto {
				needed = append(needed, iv)
			}
		}
	}
	// Apply in global release order: happens-before is a suborder of the
	// token order, so causally later writes land last.
	sort.Slice(needed, func(i, j int) bool { return needed[i].gseq < needed[j].gseq })
	var applied int64
	for _, iv := range needed {
		for _, p := range iv.patches {
			copy(t.view[p.off:p.off+len(p.data)], p.data)
		}
		applied += iv.bytes
	}
	t.vc.join(target)
	if applied > 0 {
		t.rt.appliedBytes += applied
		// Per-byte apply cost plus a per-page-equivalent fixed cost.
		t.charge(&t.commitNS, applied/8*int64(m.InstrNS*8)+applied/4096*m.UpdatePage)
	}
	t.rt.gcIntervals()
}

// --- synchronization objects ---

type lrcMutex struct {
	id      uint64
	vc      vclock
	locked  bool
	owner   int
	waiters []int
}

func (*lrcMutex) ImplMutex() {}

type lrcCond struct {
	id      uint64
	vc      vclock
	waiters []int
}

func (*lrcCond) ImplCond() {}

type lrcBarrier struct {
	id      uint64
	vc      vclock
	parties int
	waiting []int
}

func (*lrcBarrier) ImplBarrier() {}

func (t *thread) newObjID() uint64 {
	// Object ids combine tid and a per-thread counter (deterministic).
	t.objSeq++
	return uint64(t.tid)<<32 | t.objSeq
}

// NewMutex implements api.T.
func (t *thread) NewMutex() api.Mutex { return &lrcMutex{id: t.newObjID(), vc: vclock{}, owner: -1} }

// NewCond implements api.T.
func (t *thread) NewCond() api.Cond { return &lrcCond{id: t.newObjID(), vc: vclock{}} }

// NewBarrier implements api.T.
func (t *thread) NewBarrier(parties int) api.Barrier {
	if parties < 1 {
		panic("rfdet: barrier needs at least one party")
	}
	return &lrcBarrier{id: t.newObjID(), vc: vclock{}, parties: parties}
}

// Lock implements api.T: acquire edge from the mutex.
func (t *thread) Lock(mx api.Mutex) {
	m := mx.(*lrcMutex)
	t.syncOps++
	for {
		if !t.holding {
			t.acquireToken()
		}
		if !m.locked {
			m.locked, m.owner = true, t.tid
			t.rt.rec.Record(t.tid, trace.OpLock, m.id, t.icount)
			t.applyUpTo(m.vc)
			break
		}
		m.waiters = append(m.waiters, t.tid)
		t.deliver(t.rt.arb.Depart(t.tid))
		t.releaseToken()
		t.blockForToken()
	}
	t.releaseToken()
}

// Unlock implements api.T: release edge into the mutex.
func (t *thread) Unlock(mx api.Mutex) {
	m := mx.(*lrcMutex)
	t.syncOps++
	t.acquireToken()
	if !m.locked || m.owner != t.tid {
		panic(fmt.Sprintf("rfdet: tid %d unlocking mutex %d it does not hold", t.tid, m.id))
	}
	m.locked, m.owner = false, -1
	t.rt.rec.Record(t.tid, trace.OpUnlock, m.id, t.icount)
	t.releaseInterval()
	m.vc.join(t.vc)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		t.deliver(t.rt.arb.ArriveWanting(w))
	}
	t.releaseToken()
}

// Wait implements api.T.
func (t *thread) Wait(cx api.Cond, mx api.Mutex) {
	c := cx.(*lrcCond)
	m := mx.(*lrcMutex)
	t.syncOps++
	t.acquireToken()
	if !m.locked || m.owner != t.tid {
		panic("rfdet: cond wait without holding the mutex")
	}
	m.locked, m.owner = false, -1
	t.rt.rec.Record(t.tid, trace.OpWait, c.id, t.icount)
	t.releaseInterval()
	m.vc.join(t.vc)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		t.deliver(t.rt.arb.ArriveWanting(w))
	}
	c.waiters = append(c.waiters, t.tid)
	t.deliver(t.rt.arb.Depart(t.tid))
	t.releaseToken()
	t.blockForToken()
	t.applyUpTo(c.vc)
	// Reacquire the mutex (token held).
	for m.locked {
		m.waiters = append(m.waiters, t.tid)
		t.deliver(t.rt.arb.Depart(t.tid))
		t.releaseToken()
		t.blockForToken()
	}
	m.locked, m.owner = true, t.tid
	t.rt.rec.Record(t.tid, trace.OpLock, m.id, t.icount)
	t.applyUpTo(m.vc)
	t.releaseToken()
}

// Signal implements api.T.
func (t *thread) Signal(cx api.Cond) {
	c := cx.(*lrcCond)
	t.syncOps++
	t.acquireToken()
	t.rt.rec.Record(t.tid, trace.OpSignal, c.id, t.icount)
	t.releaseInterval()
	c.vc.join(t.vc)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		t.deliver(t.rt.arb.ArriveWanting(w))
	}
	t.releaseToken()
}

// Broadcast implements api.T.
func (t *thread) Broadcast(cx api.Cond) {
	c := cx.(*lrcCond)
	t.syncOps++
	t.acquireToken()
	t.rt.rec.Record(t.tid, trace.OpBcast, c.id, t.icount)
	t.releaseInterval()
	c.vc.join(t.vc)
	for _, w := range c.waiters {
		t.deliver(t.rt.arb.ArriveWanting(w))
	}
	c.waiters = nil
	t.releaseToken()
}

// BarrierWait implements api.T: all-to-all edges — everyone releases into
// the barrier, everyone leaves with the joined clock.
func (t *thread) BarrierWait(bx api.Barrier) {
	bar := bx.(*lrcBarrier)
	t.syncOps++
	t.acquireToken()
	t.rt.rec.Record(t.tid, trace.OpBarrier, bar.id, t.icount)
	t.releaseInterval()
	bar.vc.join(t.vc)
	if bar.parties == 1 {
		t.applyUpTo(bar.vc)
		t.releaseToken()
		return
	}
	if len(bar.waiting) < bar.parties-1 {
		bar.waiting = append(bar.waiting, t.tid)
		t.deliver(t.rt.arb.Depart(t.tid))
		t.releaseToken()
		t.account(&t.localWork)
		t.b.Block()
		t.account(&t.barrierWait)
		t.icount = t.rt.arb.Count(t.tid)
		// Apply the clock the releasing arrival pinned for us.
		t.acquireToken()
		t.applyUpTo(t.barrierVC)
		t.releaseToken()
		return
	}
	// Last arrival: pin the joined clock, wake everyone, apply our own.
	waiters := bar.waiting
	bar.waiting = nil
	final := bar.vc.clone()
	for _, w := range waiters {
		rt := t.rt
		rt.mu.Lock()
		wt := rt.threads[w]
		rt.mu.Unlock()
		wt.barrierVC = final
		t.deliver(t.rt.arb.Arrive(w))
		t.b.Wake(wt.b)
	}
	t.applyUpTo(final)
	t.releaseToken()
}

// ImplHandle marks thread as an api.Handle.
func (t *thread) ImplHandle() {}

// Spawn implements api.T: fork copies the parent's view wholesale.
func (t *thread) Spawn(fn func(api.T)) api.Handle {
	rt := t.rt
	m := &rt.cfg.Model
	t.syncOps++
	t.acquireToken()
	tid := rt.nextTid
	rt.nextTid++
	rt.rec.Record(t.tid, trace.OpSpawn, uint64(tid), t.icount)
	view := append([]byte(nil), t.view...)
	t.charge(&t.libNS, m.ForkBase+int64(len(view)/4096)*m.ForkPerPage)
	child := rt.newThread(tid, t.icount, view, t.vc.clone())
	rt.aggMu.Lock()
	rt.agg.ThreadsSpawned++
	rt.aggMu.Unlock()
	rt.h.Go(fmt.Sprintf("t%d", tid), t.b, func(b host.Binding) {
		child.start(b)
		fn(child)
		child.exit()
	})
	t.releaseToken()
	return child
}

// Join implements api.T: acquire edge from the child's exit.
func (t *thread) Join(h api.Handle) {
	child, ok := h.(*thread)
	if !ok {
		panic("rfdet: foreign handle")
	}
	t.syncOps++
	for {
		if !t.holding {
			t.acquireToken()
		}
		if child.done {
			t.rt.rec.Record(t.tid, trace.OpJoin, uint64(child.tid), t.icount)
			t.applyUpTo(child.vc)
			t.releaseToken()
			return
		}
		child.joiners = append(child.joiners, t.tid)
		t.deliver(t.rt.arb.Depart(t.tid))
		t.releaseToken()
		t.blockForToken()
	}
}

// exit releases the thread's final interval and leaves the order.
func (t *thread) exit() {
	rt := t.rt
	t.syncOps++
	t.acquireToken()
	t.rt.rec.Record(t.tid, trace.OpExit, uint64(t.tid), t.icount)
	t.releaseInterval()
	// The exiting thread's state flows to joiners through child.vc; the
	// runtime also applies every outstanding interval into this view so
	// the *last* exiter leaves the deterministic final image.
	full := vclock{}
	rt.mu.Lock()
	for _, th := range rt.threads {
		full.join(th.vc)
	}
	rt.mu.Unlock()
	t.applyUpTo(full)
	rt.final = t.view
	rt.finalVC = t.vc.clone()
	t.done = true
	for _, j := range t.joiners {
		t.deliver(rt.arb.ArriveWanting(j))
	}
	t.joiners = nil

	t.account(&t.localWork)
	rt.aggMu.Lock()
	rt.agg.LocalWorkNS += t.localWork
	rt.agg.DetermWaitNS += t.determWait
	rt.agg.BarrierWaitNS += t.barrierWait
	rt.agg.CommitNS += t.commitNS
	rt.agg.LibNS += t.libNS
	rt.agg.SyncOps += t.syncOps
	rt.agg.TokenGrants = rt.arb.Stats().Grants
	rt.agg.PerThread = append(rt.agg.PerThread, api.ThreadTime{
		Tid: t.tid, LocalWork: t.localWork, DetermWait: t.determWait,
		BarrierWait: t.barrierWait, Commit: t.commitNS, Lib: t.libNS,
	})
	if now := t.b.Now(); now > rt.agg.WallNS {
		rt.agg.WallNS = now
	}
	rt.aggMu.Unlock()

	t.releaseToken()
	t.deliver(rt.arb.Unregister(t.tid))
	rt.mu.Lock()
	delete(rt.threads, t.tid)
	rt.mu.Unlock()
}

var _ api.T = (*thread)(nil)
