package api

import (
	"math"
	"testing"
	"testing/quick"
)

// memT is a trivial in-memory T implementation for testing the typed
// accessors.
type memT struct {
	buf [64]byte
}

func (m *memT) Tid() int                { return 0 }
func (m *memT) Compute(int64)           {}
func (m *memT) Read(b []byte, off int)  { copy(b, m.buf[off:]) }
func (m *memT) Write(b []byte, off int) { copy(m.buf[off:], b) }
func (m *memT) NewMutex() Mutex         { return nil }
func (m *memT) NewCond() Cond           { return nil }
func (m *memT) NewBarrier(int) Barrier  { return nil }
func (m *memT) Lock(Mutex)              {}
func (m *memT) Unlock(Mutex)            {}
func (m *memT) Wait(Cond, Mutex)        {}
func (m *memT) Signal(Cond)             {}
func (m *memT) Broadcast(Cond)          {}
func (m *memT) BarrierWait(Barrier)     {}
func (m *memT) Spawn(func(T)) Handle    { return nil }
func (m *memT) Join(Handle)             {}

func TestU64Roundtrip(t *testing.T) {
	f := func(v uint64, off uint8) bool {
		m := &memT{}
		o := int(off % 56)
		PutU64(m, o, v)
		return U64(m, o) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestI64Roundtrip(t *testing.T) {
	m := &memT{}
	for _, v := range []int64{0, -1, math.MinInt64, math.MaxInt64, 42} {
		PutI64(m, 8, v)
		if got := I64(m, 8); got != v {
			t.Errorf("I64 roundtrip %d -> %d", v, got)
		}
	}
}

func TestF64Roundtrip(t *testing.T) {
	m := &memT{}
	for _, v := range []float64{0, -1.5, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		PutF64(m, 16, v)
		if got := F64(m, 16); got != v {
			t.Errorf("F64 roundtrip %v -> %v", v, got)
		}
	}
	// NaN preserves its bit pattern through the byte roundtrip.
	PutF64(m, 16, math.NaN())
	if !math.IsNaN(F64(m, 16)) {
		t.Error("NaN lost")
	}
}

func TestU32Roundtrip(t *testing.T) {
	m := &memT{}
	PutU32(m, 4, 0xDEADBEEF)
	if got := U32(m, 4); got != 0xDEADBEEF {
		t.Errorf("U32 = %x", got)
	}
}

func TestAddHelpers(t *testing.T) {
	m := &memT{}
	if got := AddU64(m, 0, 5); got != 5 {
		t.Errorf("AddU64 first = %d", got)
	}
	if got := AddU64(m, 0, 7); got != 12 {
		t.Errorf("AddU64 second = %d", got)
	}
	PutF64(m, 8, 1.5)
	if got := AddF64(m, 8, 2.25); got != 3.75 {
		t.Errorf("AddF64 = %v", got)
	}
	if got := F64(m, 8); got != 3.75 {
		t.Errorf("AddF64 did not store: %v", got)
	}
}

func TestEndianness(t *testing.T) {
	m := &memT{}
	PutU64(m, 0, 0x0102030405060708)
	var b [8]byte
	m.Read(b[:], 0)
	if b[0] != 0x08 || b[7] != 0x01 {
		t.Errorf("not little-endian: % x", b)
	}
}
