// Package api defines the runtime-neutral programming interface that every
// workload is written against. The same benchmark program runs unchanged on
// the Consequence runtime (internal/det), the DThreads and DWC baselines,
// and the nondeterministic pthreads model — which is what makes the
// paper's cross-runtime comparisons apples-to-apples.
//
// The interface mirrors the pthreads surface the paper replaces: mutexes,
// condition variables, barriers, thread create/join — plus explicit
// Compute (retired instructions of local work) and Read/Write against the
// shared segment, which stand in for the instruction stream and memory
// accesses that the paper's runtime observes via performance counters and
// page protection.
package api

import (
	"encoding/binary"
	"math"
)

// Mutex, Cond, Barrier and Handle are opaque handles created by a T.
type (
	// Mutex is a mutual-exclusion lock handle.
	Mutex interface{ ImplMutex() }
	// Cond is a condition-variable handle.
	Cond interface{ ImplCond() }
	// Barrier is a barrier handle.
	Barrier interface{ ImplBarrier() }
	// Handle identifies a spawned thread for Join.
	Handle interface{ ImplHandle() }
)

// T is a thread's view of its runtime. All methods must be called from the
// owning thread.
type T interface {
	// Tid returns the thread's deterministic ID (the root thread is 0;
	// children get consecutive IDs in spawn order).
	Tid() int
	// Compute retires n instructions of thread-local work.
	Compute(n int64)
	// Read copies from the shared segment at byte offset off.
	Read(buf []byte, off int)
	// Write stores to the shared segment at byte offset off.
	Write(data []byte, off int)

	// NewMutex, NewCond and NewBarrier create synchronization objects.
	// Creation is a thread-local operation (as in pthreads).
	NewMutex() Mutex
	NewCond() Cond
	NewBarrier(parties int) Barrier

	// Lock and Unlock are pthread_mutex_lock/unlock equivalents.
	Lock(Mutex)
	Unlock(Mutex)
	// Wait atomically releases the mutex and blocks until signaled, then
	// reacquires the mutex before returning (pthread_cond_wait).
	Wait(Cond, Mutex)
	// Signal wakes one waiter; Broadcast wakes all.
	Signal(Cond)
	Broadcast(Cond)
	// BarrierWait blocks until the barrier's party count has arrived.
	BarrierWait(Barrier)

	// Spawn starts a new thread running fn; Join blocks until it finishes.
	Spawn(fn func(T)) Handle
	Join(Handle)
}

// Runtime runs a program to completion.
type Runtime interface {
	// Name identifies the runtime ("consequence-ic", "dthreads", ...).
	Name() string
	// Run executes root as thread 0 and blocks until every thread has
	// finished. It returns an error on deadlock (simulated hosts).
	Run(root func(T)) error
	// Checksum hashes the final committed memory state; deterministic
	// runtimes produce identical checksums across runs and hosts.
	Checksum() uint64
	// Stats returns accumulated run statistics.
	Stats() RunStats
}

// RunStats aggregates a completed run. Times are nanoseconds — virtual on
// the simulation host, wall-clock on the real host.
type RunStats struct {
	// WallNS is the makespan: the latest thread finish time.
	WallNS int64

	// Per-category time summed over all threads (the Figure 15 breakdown).
	LocalWorkNS   int64 // executing chunks
	DetermWaitNS  int64 // waiting for the token / deterministic order
	BarrierWaitNS int64 // waiting at barrier rendezvous
	CommitNS      int64 // Conversion commit + update work
	FaultNS       int64 // copy-on-write page faults
	LibNS         int64 // clock reads, overflow IRQs, token handoffs, forks

	// Memory substrate counters.
	Faults         int64
	Versions       int64
	CommittedPages int64
	MergedPages    int64
	PulledPages    int64 // Figure 16 TSO page propagation
	PeakPages      int64 // Figure 12 memory metric
	// Write-set prediction counters (Consequence runtimes; zero when the
	// runtime has no predictor or it is disabled): writes that found
	// their page prefetched, faults the predictor failed to cover, and
	// prefetched pages dropped unwritten.
	PrefetchHits   int64
	PrefetchMisses int64
	PrefetchWasted int64

	// Synchronization counters.
	TokenGrants    int64
	SyncOps        int64
	CoarsenedOps   int64 // sync ops absorbed into a coarsened chunk
	ThreadsSpawned int64
	ThreadsReused  int64

	// PerThread carries each thread's own breakdown, in tid order
	// (Figure 15 separates ferret's first pipeline thread from the rest).
	PerThread []ThreadTime
}

// ThreadTime is one thread's time breakdown.
type ThreadTime struct {
	Tid                                                    int
	LocalWork, DetermWait, BarrierWait, Commit, Fault, Lib int64
}

// --- typed accessors over the byte-addressed segment ---

// U64 reads a little-endian uint64 at off.
func U64(t T, off int) uint64 {
	var b [8]byte
	t.Read(b[:], off)
	return binary.LittleEndian.Uint64(b[:])
}

// PutU64 writes a little-endian uint64 at off.
func PutU64(t T, off int, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Write(b[:], off)
}

// I64 reads an int64 at off.
func I64(t T, off int) int64 { return int64(U64(t, off)) }

// PutI64 writes an int64 at off.
func PutI64(t T, off int, v int64) { PutU64(t, off, uint64(v)) }

// F64 reads a float64 at off.
func F64(t T, off int) float64 { return math.Float64frombits(U64(t, off)) }

// PutF64 writes a float64 at off.
func PutF64(t T, off int, v float64) { PutU64(t, off, math.Float64bits(v)) }

// U32 reads a little-endian uint32 at off.
func U32(t T, off int) uint32 {
	var b [4]byte
	t.Read(b[:], off)
	return binary.LittleEndian.Uint32(b[:])
}

// PutU32 writes a little-endian uint32 at off.
func PutU32(t T, off int, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	t.Write(b[:], off)
}

// AddU64 reads, adds delta, and writes back a uint64 at off. Not atomic:
// callers must hold a lock (or accept last-writer-wins merging).
func AddU64(t T, off int, delta uint64) uint64 {
	v := U64(t, off) + delta
	PutU64(t, off, v)
	return v
}

// AddF64 reads, adds delta, and writes back a float64 at off.
func AddF64(t T, off int, delta float64) float64 {
	v := F64(t, off) + delta
	PutF64(t, off, v)
	return v
}
