package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of 100: every quantile sits in bucket [64,128),
	// and the top-bucket clamp pins its upper edge at max=100.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("Max = %d, want 100", got)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("p100 = %v, want exactly 100 (max clamp)", q)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 64 || v > 100 {
			t.Errorf("Quantile(%v) = %v, want within [64,100]", q, v)
		}
	}

	// A bimodal distribution: the median must land in the low mode, p95
	// in the high mode.
	var h2 Histogram
	for i := 0; i < 90; i++ {
		h2.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1000)
	}
	if p50 := h2.Quantile(0.5); p50 < 8 || p50 > 16 {
		t.Errorf("bimodal p50 = %v, want in bucket [8,16)", p50)
	}
	if p95 := h2.Quantile(0.95); p95 < 512 || p95 > 1000 {
		t.Errorf("bimodal p95 = %v, want in [512,1000]", p95)
	}
	if p100 := h2.Quantile(1); p100 != 1000 {
		t.Errorf("bimodal p100 = %v, want 1000", p100)
	}

	// Quantiles must be monotone in q.
	last := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h2.Quantile(q)
		if v < last {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, v, last)
		}
		last = v
	}

	// Degenerate cases.
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	var zeros Histogram
	zeros.Observe(0)
	zeros.Observe(-5)
	if got := zeros.Quantile(0.99); got != 0 {
		t.Errorf("non-positive-only histogram quantile = %v, want 0", got)
	}
}

func TestHistogramSampleString(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lock_wait_ns", L("tid", 1))
	for i := 0; i < 4; i++ {
		h.Observe(100)
	}
	var sample Sample
	for _, s := range r.Snapshot() {
		if s.Name == "lock_wait_ns" {
			sample = s
		}
	}
	got := sample.String()
	for _, want := range []string{"lock_wait_ns{tid=1}", "count=4", "sum=400", "mean=100.0", "p50=", "p95=", "max=100"} {
		if !strings.Contains(got, want) {
			t.Errorf("histogram String() = %q, missing %q", got, want)
		}
	}
	if sample.Quantile(1) != 100 {
		t.Errorf("Sample.Quantile(1) = %v, want 100", sample.Quantile(1))
	}
	// Non-histogram samples render plain values and report zero quantiles.
	r.Counter("c").Add(7)
	for _, s := range r.Snapshot() {
		if s.Name == "c" {
			if s.String() != "c 7" {
				t.Errorf("counter String() = %q, want \"c 7\"", s.String())
			}
			if s.Quantile(0.5) != 0 {
				t.Errorf("counter Quantile = %v, want 0", s.Quantile(0.5))
			}
		}
	}
}
