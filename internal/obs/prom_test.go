package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSampleLine matches one exposition sample: name, optional {labels},
// and an integer or +Inf-free value.
var promSampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?)$`)

// checkPromFormat validates text as Prometheus exposition format 0.0.4:
// every line is a comment or a well-formed sample, every sample's family
// has a preceding TYPE line, and histogram buckets are cumulative with
// increasing le. Returns the number of sample lines.
func checkPromFormat(t *testing.T, text string) int {
	t.Helper()
	typed := map[string]string{}
	samples := 0
	lastBucket := map[string]int64{} // label-set key -> last cumulative count
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		samples++
		name := m[1]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(name, suffix); f != name && typed[f] == "histogram" {
				family = f
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("sample %q has no preceding TYPE line", line)
		}
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			// Cumulative check per series: counts never decrease.
			key := family + stripLe(m[2])
			v, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", m[3], err)
			}
			if v < lastBucket[key] {
				t.Fatalf("bucket series %s not cumulative: %d after %d", key, v, lastBucket[key])
			}
			lastBucket[key] = v
		}
	}
	return samples
}

// stripLe removes the le="..." label from a rendered label block so bucket
// lines of one series share a key.
var leRe = regexp.MustCompile(`,?le="[^"]*"`)

func stripLe(labels string) string { return leRe.ReplaceAllString(labels, "") }

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("det_sync_ops", L("tid", 0)).Add(10)
	r.Counter("det_sync_ops", L("tid", 1)).Add(20)
	r.Gauge("mem_peak_pages").Set(7)
	r.Func("clock_token_grants", func() int64 { return 42 })
	h := r.Histogram("commit_pages", L("tid", 0))
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if n := checkPromFormat(t, text); n == 0 {
		t.Fatal("no samples rendered")
	}

	for _, want := range []string{
		"# TYPE det_sync_ops counter\n",
		"# TYPE mem_peak_pages gauge\n",
		"# TYPE clock_token_grants gauge\n", // func gauges expose as gauge
		"# TYPE commit_pages histogram\n",
		`det_sync_ops{tid="0"} 10` + "\n",
		`det_sync_ops{tid="1"} 20` + "\n",
		"mem_peak_pages 7\n",
		"clock_token_grants 42\n",
		`commit_pages_bucket{tid="0",le="1"} 1` + "\n",
		`commit_pages_bucket{tid="0",le="3"} 2` + "\n",
		`commit_pages_bucket{tid="0",le="+Inf"} 3` + "\n",
		`commit_pages_sum{tid="0"} 104` + "\n",
		`commit_pages_count{tid="0"} 3` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// One TYPE line per family, not per label set.
	if n := strings.Count(text, "# TYPE det_sync_ops "); n != 1 {
		t.Errorf("det_sync_ops has %d TYPE lines, want 1", n)
	}

	// Rendering is deterministic for a fixed registry state.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Error("two renderings of the same registry differ")
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird", Label{Key: "path", Value: `a"b\c` + "\n"}).Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := `weird{path="a\"b\\c\n"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label rendering = %q, want to contain %q", b.String(), want)
	}
}

func TestListenAndServeMetrics(t *testing.T) {
	o := New()
	o.Registry().Counter("det_sync_ops", L("tid", 3)).Add(5)
	o.Lane(3) // registers obs_lane_dropped_total{tid=3}

	srv, err := o.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	checkPromFormat(t, text)
	for _, want := range []string{
		`det_sync_ops{tid="3"} 5`,
		`obs_lane_dropped_total{tid="3"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// pprof must be mounted too.
	pr, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d, want 200", pr.StatusCode)
	}
}
