package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistrySnapshotUnderConcurrentIncrements hammers one counter, one
// gauge and one histogram from many goroutines while snapshotting
// concurrently. Mid-run snapshots must be well-formed (monotone counter,
// histogram count consistent with buckets) and the final snapshot exact.
func TestRegistrySnapshotUnderConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 5000

	c := r.Counter("ops")
	g := r.Gauge("inflight")
	h := r.Histogram("sizes")

	var workersWG, snapWG sync.WaitGroup
	stop := make(chan struct{})
	var snapErr error
	var snapMu sync.Mutex
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range r.Snapshot() {
				if s.Name == "ops" {
					if s.Value < last {
						snapMu.Lock()
						snapErr = fmt.Errorf("counter went backwards: %d -> %d", last, s.Value)
						snapMu.Unlock()
						return
					}
					last = s.Value
				}
			}
		}
	}()

	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			// Also exercise concurrent registration of labeled series.
			mine := r.Counter("worker_ops", L("worker", w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i % 100))
				mine.Inc()
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	snapWG.Wait()
	snapMu.Lock()
	defer snapMu.Unlock()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	want := int64(workers * perWorker)
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var bucketSum int64
	for _, b := range h.Buckets() {
		bucketSum += b
	}
	if bucketSum != want {
		t.Errorf("histogram bucket sum = %d, want %d", bucketSum, want)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter("worker_ops", L("worker", w)).Value(); got != perWorker {
			t.Errorf("worker_ops{worker=%d} = %d, want %d", w, got, perWorker)
		}
	}
}

// TestRegistryLabelsDistinguishSeries verifies that the same name with
// different labels yields independent instruments, that label order does
// not matter, and that snapshots render in a stable sorted order.
func TestRegistryLabelsDistinguishSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lock_acquires", L("tid", 1), L("mutex", 7))
	b := r.Counter("lock_acquires", L("tid", 2), L("mutex", 7))
	if a == b {
		t.Fatal("different label sets returned the same counter")
	}
	// Same labels in a different order must alias.
	if c := r.Counter("lock_acquires", L("mutex", 7), L("tid", 1)); c != a {
		t.Fatal("label order changed series identity")
	}
	a.Add(3)
	b.Inc()

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples, want 2", len(snap))
	}
	got := []string{snap[0].String(), snap[1].String()}
	want := []string{
		"lock_acquires{mutex=7,tid=1} 3",
		"lock_acquires{mutex=7,tid=2} 1",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("snapshot[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRegistryFuncGauge verifies callback gauges are evaluated at
// snapshot time.
func TestRegistryFuncGauge(t *testing.T) {
	r := NewRegistry()
	v := int64(0)
	r.Func("external", func() int64 { return v })
	if s := r.Snapshot(); s[0].Value != 0 {
		t.Fatalf("func gauge = %d, want 0", s[0].Value)
	}
	v = 42
	if s := r.Snapshot(); s[0].Value != 42 {
		t.Fatalf("func gauge = %d, want 42", s[0].Value)
	}
}

// TestHistogramBuckets pins the power-of-two bucketing.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if got, want := h.Count(), int64(6); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), int64(1010); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	// v=0 -> bucket 0; v=1 -> 1; v=2,3 -> 2; v=4 -> 3; v=1000 -> 10.
	want := []int64{1, 1, 2, 1, 0, 0, 0, 0, 0, 0, 1}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}
