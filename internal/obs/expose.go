package obs

// Live HTTP exposition: a /metrics endpoint (Prometheus text format) plus
// the standard net/http/pprof profiling handlers, served from a background
// goroutine. The server only reads registry snapshots — atomic loads and
// callback gauges — so serving a scrape during a run cannot perturb the
// deterministic schedule; tier-1 determinism tests assert byte-identical
// results with the endpoint enabled.

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running metrics endpoint. Close it when the run ends.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// ListenAndServe starts serving the observer's registry at addr (a
// net.Listen "tcp" address; use ":0" for an ephemeral port and Addr to
// discover it). Routes: /metrics (Prometheus text format) and the usual
// /debug/pprof/... handlers. The returned Server is already serving.
func (o *Observer) ListenAndServe(addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		WritePrometheus(w, o.reg)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		lis: lis,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(lis)
	return s, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
