package obs

import "testing"

// TestLaneRingOverflowDropsOldest verifies the overflow contract: the
// newest events are retained in order, the oldest are evicted, and the
// eviction is counted.
func TestLaneRingOverflowDropsOldest(t *testing.T) {
	o := New(WithLaneCap(4))
	l := o.Lane(3)
	for i := 0; i < 10; i++ {
		l.Span(PhaseCompute, int64(i), int64(i+1))
	}
	if got, want := l.Total(), int64(10); got != want {
		t.Errorf("Total = %d, want %d", got, want)
	}
	if got, want := l.Dropped(), int64(6); got != want {
		t.Errorf("Dropped = %d, want %d", got, want)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Start != want {
			t.Errorf("event %d start = %d, want %d (oldest must be dropped first)", i, e.Start, want)
		}
	}
}

// TestLaneNoOverflow verifies the ring below capacity retains everything
// and reports zero drops.
func TestLaneNoOverflow(t *testing.T) {
	o := New(WithLaneCap(8))
	l := o.Lane(0)
	l.Span(PhaseCommit, 5, 9)
	l.Mark(MarkCommit, 9, 2)
	if got := l.Dropped(); got != 0 {
		t.Errorf("Dropped = %d, want 0", got)
	}
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("retained %d events, want 2", len(evs))
	}
	if evs[0].Phase != PhaseCommit || evs[0].Start != 5 || evs[0].End != 9 {
		t.Errorf("span event mangled: %+v", evs[0])
	}
	if evs[1].Phase != MarkCommit || !evs[1].Phase.Instant() || evs[1].Arg != 2 {
		t.Errorf("mark event mangled: %+v", evs[1])
	}
}

// TestObserverLanesSorted verifies Lanes returns tid order regardless of
// creation order, and that Lane is create-or-get.
func TestObserverLanesSorted(t *testing.T) {
	o := New()
	for _, tid := range []int{5, 1, 3} {
		o.Lane(tid)
	}
	if o.Lane(3) != o.Lane(3) {
		t.Fatal("Lane is not create-or-get")
	}
	ls := o.Lanes()
	if len(ls) != 3 {
		t.Fatalf("got %d lanes, want 3", len(ls))
	}
	for i, want := range []int{1, 3, 5} {
		if ls[i].Tid() != want {
			t.Errorf("lane %d tid = %d, want %d", i, ls[i].Tid(), want)
		}
	}
}

// TestPhaseNames pins the stable export names the trace format documents.
func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseCompute:     "compute",
		PhaseTokenWait:   "token-wait",
		PhaseBarrierWait: "barrier-wait",
		PhaseCommit:      "commit",
		PhaseMerge:       "merge",
		PhaseFault:       "fault",
		PhaseLib:         "lib",
		PhaseSpecDiff:    "spec-diff",
		MarkCoarsenBegin: "coarsen-begin",
		MarkCoarsenEnd:   "coarsen-end",
		MarkCommit:       "commit-mark",
		MarkLockBlock:    "lock-block",
		MarkLockAcquire:  "lock-acquire",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), name)
		}
		back, ok := PhaseByName(name)
		if !ok || back != p {
			t.Errorf("PhaseByName(%q) = %v,%v, want %v", name, back, ok, p)
		}
	}
	if _, ok := PhaseByName("no-such-phase"); ok {
		t.Error("PhaseByName accepted an unknown name")
	}
	if PhaseCompute.Instant() || !MarkCommit.Instant() || !MarkLockBlock.Instant() {
		t.Error("Instant() misclassifies phases")
	}
}
