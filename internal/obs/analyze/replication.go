package analyze

import (
	"sort"
	"strconv"

	"repro/internal/obs"
)

// ReplicationReport attributes write-path backpressure vs. read-path
// follower lag in one place (docs/replication.md): the commit log's
// append stalls say whether the WRITER was ever held back, the replica
// fleet's lag distribution and restart counters say how far the READ
// side trailed and how hard its supervisor worked. Present only when the
// run exported replica_* metrics — runs without a fleet (and trace-file
// inputs, which carry no metrics) omit the section so their reports are
// unchanged.
type ReplicationReport struct {
	// AppendStalls counts writer appends that blocked on the log's drain
	// goroutine — backpressure on the commit path itself.
	AppendStalls int64 `json:"append_stalls"`
	// Followers is the per-follower lag table at snapshot time.
	Followers []FollowerLane `json:"followers"`
	// Admitted is how many serving followers were inside the staleness
	// bound at snapshot time.
	Admitted int64 `json:"admitted"`
	// Restarts counts follower feed restarts (kills, tears, stalls).
	Restarts int64 `json:"restarts"`
	// Reads splits the fleet's read routing outcomes.
	ReadsServed     int64 `json:"reads_served"`
	ReadsRedirected int64 `json:"reads_redirected"`
	ReadsRejected   int64 `json:"reads_rejected"`
	// Lag quantiles (in versions) over every applied record, from the
	// replica_lag_hist histogram.
	LagP50 float64 `json:"lag_p50"`
	LagP95 float64 `json:"lag_p95"`
	LagMax int64   `json:"lag_max"`
	// CatchupMaxNS is the slowest restart-to-caught-up cycle.
	CatchupMaxNS int64 `json:"catchup_max_ns"`
}

// FollowerLane is one follower's standing at snapshot time.
type FollowerLane struct {
	Follower int `json:"follower"`
	// Role is "serve" or "archive" (the chaos-exempt full-history
	// backstop).
	Role string `json:"role"`
	// Lag is how many versions the follower trailed the frontier by.
	Lag int64 `json:"lag"`
}

// followerLabels extracts the follower id and role labels from a
// replica_lag sample.
func followerLabels(labels []obs.Label) (id int, role string, ok bool) {
	role = "serve"
	found := false
	for _, l := range labels {
		switch l.Key {
		case "follower":
			n, err := strconv.Atoi(l.Value)
			if err != nil {
				return 0, "", false
			}
			id, found = n, true
		case "role":
			role = l.Value
		}
	}
	return id, role, found
}

// replicationReport assembles Report.Replication from the commit log's
// and replica fleet's metrics. Leaves r.Replication nil when the run had
// no fleet.
func replicationReport(metrics []obs.Sample, r *Report) {
	rep := &ReplicationReport{}
	lanes := map[int]FollowerLane{}
	sawFleet := false
	for _, s := range metrics {
		switch s.Name {
		case "commitlog_append_stalls":
			rep.AppendStalls = s.Value
		case "replica_lag":
			if id, role, ok := followerLabels(s.Labels); ok {
				lanes[id] = FollowerLane{Follower: id, Role: role, Lag: s.Value}
				sawFleet = true
			}
		case "replica_admitted":
			rep.Admitted = s.Value
			sawFleet = true
		case "replica_restarts_total":
			rep.Restarts = s.Value
			sawFleet = true
		case "replica_reads_served":
			rep.ReadsServed = s.Value
			sawFleet = true
		case "replica_reads_redirected":
			rep.ReadsRedirected = s.Value
			sawFleet = true
		case "replica_reads_rejected":
			rep.ReadsRejected = s.Value
			sawFleet = true
		case "replica_lag_hist":
			rep.LagP50 = round2(s.Quantile(0.50))
			rep.LagP95 = round2(s.Quantile(0.95))
			rep.LagMax = s.Max
			sawFleet = true
		case "replica_catchup_ns":
			rep.CatchupMaxNS = s.Value
			sawFleet = true
		}
	}
	if !sawFleet {
		return
	}
	ids := make([]int, 0, len(lanes))
	for id := range lanes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rep.Followers = append(rep.Followers, lanes[id])
	}
	r.Replication = rep
}
