package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// ParseChromeTrace reconstructs an Input from a trace previously written by
// Observer.WriteChromeTrace. The exporter renders nanosecond timestamps as
// microseconds with exactly three decimals; parsing splits the decimal
// string rather than going through float64, so the round-trip back to
// nanoseconds is exact and a parsed trace analyzes byte-identically to the
// live Observer it came from.
//
// Events whose name is not a known phase (a future exporter addition, or a
// foreign trace) are skipped rather than rejected; the metadata events
// supply the process name and the set of thread lanes.
func ParseChromeTrace(r io.Reader) (*Input, error) {
	var doc struct {
		TraceEvents []struct {
			Ph   string      `json:"ph"`
			Tid  int         `json:"tid"`
			Name string      `json:"name"`
			Ts   json.Number `json:"ts"`
			Dur  json.Number `json:"dur"`
			Args struct {
				Name    string `json:"name"`
				Arg     int64  `json:"arg"`
				Dropped int64  `json:"dropped"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("analyze: parse trace: %w", err)
	}

	in := &Input{}
	lanes := map[int]*Lane{}
	lane := func(tid int) *Lane {
		l, ok := lanes[tid]
		if !ok {
			l = &Lane{Tid: tid}
			lanes[tid] = l
		}
		return l
	}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				in.Process = ev.Args.Name
			case "thread_name":
				lane(ev.Tid)
			}
		case "i":
			if ev.Name == "events-dropped" {
				lane(ev.Tid).Dropped = ev.Args.Dropped
				continue
			}
			p, ok := obs.PhaseByName(ev.Name)
			if !ok || !p.Instant() {
				continue
			}
			ts, err := usecToNS(ev.Ts)
			if err != nil {
				return nil, err
			}
			l := lane(ev.Tid)
			l.Events = append(l.Events, obs.Event{Phase: p, Start: ts, End: ts, Arg: ev.Args.Arg})
		case "X":
			p, ok := obs.PhaseByName(ev.Name)
			if !ok || p.Instant() {
				continue
			}
			ts, err := usecToNS(ev.Ts)
			if err != nil {
				return nil, err
			}
			dur, err := usecToNS(ev.Dur)
			if err != nil {
				return nil, err
			}
			l := lane(ev.Tid)
			l.Events = append(l.Events, obs.Event{Phase: p, Start: ts, End: ts + dur})
		}
	}
	if len(lanes) == 0 {
		return nil, fmt.Errorf("analyze: trace has no thread lanes")
	}

	tids := make([]int, 0, len(lanes))
	for tid := range lanes {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		in.Lanes = append(in.Lanes, *lanes[tid])
	}
	return in, nil
}

// usecToNS converts a microsecond decimal string ("1.234", the exporter's
// fixed three-decimal format) to integer nanoseconds without a float64
// detour. Fractions shorter than three digits (hand-edited traces) are
// right-padded; longer ones are truncated to nanosecond precision.
func usecToNS(n json.Number) (int64, error) {
	s := n.String()
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	intPart, frac, _ := strings.Cut(s, ".")
	if intPart == "" {
		intPart = "0"
	}
	if len(frac) < 3 {
		frac += strings.Repeat("0", 3-len(frac))
	}
	frac = frac[:3]
	us, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("analyze: bad timestamp %q: %w", n.String(), err)
	}
	fns, err := strconv.ParseInt(frac, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("analyze: bad timestamp %q: %w", n.String(), err)
	}
	ns := us*1000 + fns
	if neg {
		ns = -ns
	}
	return ns, nil
}
