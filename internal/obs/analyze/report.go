package analyze

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the analyzer's output. Field order is the JSON contract: the
// encoding is byte-stable for a fixed input (struct order, no maps, floats
// pre-rounded to two decimals), so reports can be pinned in tests and
// diffed across runs.
type Report struct {
	// Process is the free-form run description the trace was recorded
	// under (e.g. "consequence-ic ferret t=8").
	Process string `json:"process"`
	// Partial is set when any lane dropped events: totals undercount and
	// the critical path may have seams.
	Partial       bool  `json:"partial"`
	DroppedEvents int64 `json:"dropped_events"`
	Threads       int   `json:"threads"`
	// StartNS/WallNS bound the recorded run in host nanoseconds.
	StartNS int64 `json:"start_ns"`
	WallNS  int64 `json:"wall_ns"`
	// PhaseTotals sums each time phase over all threads; Pct is the share
	// of total thread-time (threads × wall).
	PhaseTotals   []PhaseTotal   `json:"phase_totals"`
	ThreadReports []ThreadReport `json:"thread_reports"`
	CriticalPath  CriticalPath   `json:"critical_path"`
	// Locks is the per-mutex contention table, most-waited first.
	Locks     []LockReport `json:"locks"`
	TokenWait TokenWait    `json:"token_wait"`
	// MergeOverlap quantifies the §4.2 parallel-commit overlap.
	MergeOverlap MergeOverlap  `json:"merge_overlap"`
	Commits      CommitSummary `json:"commits"`
	// Coarsening holds the §3.1 what-if estimates per fusion factor k.
	Coarsening []WhatIf `json:"coarsening_what_if"`
	// Sharding is the per-shard arbiter breakdown under stage-2 per-shard
	// granting; nil (and omitted) for unsharded runs and trace-file inputs.
	Sharding *ShardingReport `json:"sharding,omitempty"`
	// Replication attributes writer backpressure (commit-log append
	// stalls) vs. replica-fleet follower lag; nil (and omitted) for runs
	// without a fleet and trace-file inputs.
	Replication *ReplicationReport `json:"replication,omitempty"`
}

// PhaseTotal is one phase's share of some whole (thread-time for
// Report.PhaseTotals, path length for CriticalPath.ByPhase).
type PhaseTotal struct {
	Phase   string  `json:"phase"`
	TotalNS int64   `json:"total_ns"`
	Pct     float64 `json:"pct"`
}

// ThreadReport is one thread's time breakdown plus its share of the
// critical path.
type ThreadReport struct {
	Tid            int     `json:"tid"`
	StartNS        int64   `json:"start_ns"`
	EndNS          int64   `json:"end_ns"`
	ComputeNS      int64   `json:"compute_ns"`
	TokenWaitNS    int64   `json:"token_wait_ns"`
	BarrierWaitNS  int64   `json:"barrier_wait_ns"`
	CommitNS       int64   `json:"commit_ns"`
	MergeNS        int64   `json:"merge_ns"`
	FaultNS        int64   `json:"fault_ns"`
	LibNS          int64   `json:"lib_ns"`
	SpawnNS        int64   `json:"spawn_ns"`
	HandoffNS      int64   `json:"handoff_ns"`
	FastForwardNS  int64   `json:"fast_forward_ns"`
	SpecDiffNS     int64   `json:"spec_diff_ns"`
	PrefetchNS     int64   `json:"prefetch_ns"`
	UtilizationPct float64 `json:"utilization_pct"`
	CritPathNS     int64   `json:"critical_path_ns"`
}

// CriticalPath is the reconstructed serialization chain (see critpath.go
// for the construction).
type CriticalPath struct {
	TotalNS  int64         `json:"total_ns"`
	WallPct  float64       `json:"wall_pct"`
	Handoffs int           `json:"handoffs"`
	ByPhase  []PhaseTotal  `json:"by_phase"`
	Segments []PathSegment `json:"segments"`
}

// PathSegment is one contiguous stretch of the critical path on one
// thread in one phase.
type PathSegment struct {
	Tid     int    `json:"tid"`
	Phase   string `json:"phase"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// LockReport is one mutex's contention profile.
type LockReport struct {
	Mutex     uint64 `json:"mutex"`
	Acquires  int64  `json:"acquires"`
	Blocks    int64  `json:"blocks"`
	WaitNS    int64  `json:"wait_ns"`
	MaxWaitNS int64  `json:"max_wait_ns"`
	// Waiters is the number of distinct threads that ever blocked on it.
	Waiters int `json:"waiters"`
	// WaitPct is this lock's share of all token-wait time.
	WaitPct float64 `json:"wait_pct"`
}

// TokenWait splits all token-wait time into lock contention vs. the
// residual cost of deterministic ordering itself.
type TokenWait struct {
	TotalNS int64   `json:"total_ns"`
	LockNS  int64   `json:"lock_ns"`
	OrderNS int64   `json:"order_ns"`
	LockPct float64 `json:"lock_pct"`
}

// MergeOverlap quantifies concurrent page-merge work: TotalNS of merge
// spans packed into BusyNS of wall time; OverlapNS is what serial merging
// would have added.
type MergeOverlap struct {
	TotalNS      int64   `json:"total_ns"`
	BusyNS       int64   `json:"busy_ns"`
	OverlapNS    int64   `json:"overlap_ns"`
	ParallelismX float64 `json:"parallelism_x"`
}

// CommitSummary aggregates the commit markers.
type CommitSummary struct {
	Count             int64 `json:"count"`
	PagesTotal        int64 `json:"pages_total"`
	SerialNSPerCommit int64 `json:"serial_ns_per_commit"`
}

// WhatIf is the coarsening estimate for one fusion factor (see
// whatIfCoarsen).
type WhatIf struct {
	K                int     `json:"k"`
	FusedPhases      int64   `json:"fused_phases"`
	EstSavedSerialNS int64   `json:"est_saved_serial_ns"`
	EstSavedWaitNS   int64   `json:"est_saved_wait_ns"`
	EstWallPct       float64 `json:"est_wall_pct"`
}

// JSON renders the report as stable, indented JSON (a trailing newline
// included, so files are diff-friendly).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ms renders nanoseconds as milliseconds with microsecond precision.
func ms(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// maxTextRows bounds the per-table row count of the text report; the JSON
// report always carries everything.
const maxTextRows = 10

// WriteText renders the human-readable report.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("run          %s\n", r.Process)
	p("wall         %s ms, %d threads\n", ms(r.WallNS), r.Threads)
	if r.Partial {
		p("WARNING      report is PARTIAL: %d timeline events dropped (raise obs.WithLaneCap)\n", r.DroppedEvents)
	}
	p("commits      %d (%d pages, %s ms serial each)\n",
		r.Commits.Count, r.Commits.PagesTotal, ms(r.Commits.SerialNSPerCommit))

	p("\nphase totals (%% of %d threads x wall)\n", r.Threads)
	for _, pt := range r.PhaseTotals {
		p("  %-13s %12s ms  %6.2f%%\n", pt.Phase, ms(pt.TotalNS), pt.Pct)
	}

	cp := &r.CriticalPath
	p("\ncritical path  %s ms = %.2f%% of wall, %d handoffs, %d segments\n",
		ms(cp.TotalNS), cp.WallPct, cp.Handoffs, len(cp.Segments))
	for _, pt := range cp.ByPhase {
		p("  %-13s %12s ms  %6.2f%% of path\n", pt.Phase, ms(pt.TotalNS), pt.Pct)
	}

	p("\nthreads        start..end ms      compute   token-wait    util%%   on-path\n")
	for _, t := range r.ThreadReports {
		p("  t%-4d %10s..%-10s %10s %12s %8.2f %9s\n",
			t.Tid, ms(t.StartNS), ms(t.EndNS), ms(t.ComputeNS), ms(t.TokenWaitNS),
			t.UtilizationPct, ms(t.CritPathNS))
	}

	p("\ntoken wait     %s ms total: %s ms lock contention (%.2f%%), %s ms deterministic order\n",
		ms(r.TokenWait.TotalNS), ms(r.TokenWait.LockNS), r.TokenWait.LockPct, ms(r.TokenWait.OrderNS))
	if len(r.Locks) > 0 {
		p("  mutex              acquires   blocks   waiters   blocked-wait ms   max ms   %% of wait\n")
		for i, l := range r.Locks {
			if i == maxTextRows {
				p("  ... %d more locks in the JSON report\n", len(r.Locks)-maxTextRows)
				break
			}
			p("  %-18x %9d %8d %9d %17s %8s %10.2f\n",
				l.Mutex, l.Acquires, l.Blocks, l.Waiters, ms(l.WaitNS), ms(l.MaxWaitNS), l.WaitPct)
		}
	}

	mo := &r.MergeOverlap
	if mo.TotalNS > 0 {
		p("\nmerge overlap  %s ms of merge in %s ms of wall (%.2fx parallel, %s ms saved)\n",
			ms(mo.TotalNS), ms(mo.BusyNS), mo.ParallelismX, ms(mo.OverlapNS))
	}

	if sh := r.Sharding; sh != nil {
		p("\nshard arbiters  %.2fx grant parallelism, %s ms on cross-shard edges\n",
			sh.GrantParallelismX, ms(sh.GlobalEdgeBusyNS))
		p("  shard      busy ms   frontier ms    util%%\n")
		for _, l := range sh.Shards {
			p("  %-5d %12s %13s %8.2f\n",
				l.Shard, ms(l.BusyNS), ms(l.FrontierNS), l.UtilizationPct)
		}
	}

	if rp := r.Replication; rp != nil {
		p("\nreplication    %d append stalls (writer backpressure); fleet: %d restarts, %d admitted\n",
			rp.AppendStalls, rp.Restarts, rp.Admitted)
		p("  reads        %d served, %d redirected, %d rejected\n",
			rp.ReadsServed, rp.ReadsRedirected, rp.ReadsRejected)
		p("  lag          p50 %.2f, p95 %.2f, max %d versions; slowest catch-up %s ms\n",
			rp.LagP50, rp.LagP95, rp.LagMax, ms(rp.CatchupMaxNS))
		for _, f := range rp.Followers {
			p("  follower %-4d %-8s lag %d\n", f.Follower, f.Role, f.Lag)
		}
	}

	if len(r.Coarsening) > 0 {
		p("\ncoarsening what-if (fuse k consecutive coordination phases; estimates)\n")
		p("  k   fused phases   saved serial ms   saved wait ms   ~wall%%\n")
		for _, wi := range r.Coarsening {
			p("  %-3d %12d %17s %15s %8.2f\n",
				wi.K, wi.FusedPhases, ms(wi.EstSavedSerialNS), ms(wi.EstSavedWaitNS), wi.EstWallPct)
		}
	}
	return nil
}
