package analyze_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

var update = flag.Bool("update", false, "rewrite the golden report file")

const (
	goldenTrace  = "../testdata/golden_trace.json"
	goldenReport = "../testdata/golden_report.json"
)

// analyzeGolden parses and analyzes the repository's golden trace (the
// fixed simhost run chrometrace_test pins byte-for-byte).
func analyzeGolden(t *testing.T) *analyze.Report {
	t.Helper()
	f, err := os.Open(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := analyze.ParseChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analyze.Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestGoldenReport pins the analyzer's JSON output on the golden trace
// byte-for-byte: the trace bytes are pinned by TestChromeTraceGolden, so
// any report change here is an analyzer behavior change and must be
// reviewed (rerun with -update to accept).
func TestGoldenReport(t *testing.T) {
	rep := analyzeGolden(t)
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(filepath.FromSlash(goldenReport), got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenReport, len(got))
		return
	}
	want, err := os.ReadFile(goldenReport)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report differs from golden file (len %d vs %d).\nRerun with -update and review the diff.\n--- got ---\n%s",
			len(got), len(want), got)
	}
}

// TestGoldenReportShape spot-checks the analyses on the golden trace with
// human-auditable assertions (the byte pin above catches drift; this
// explains what the numbers must mean).
func TestGoldenReportShape(t *testing.T) {
	rep := analyzeGolden(t)

	if rep.Partial || rep.DroppedEvents != 0 {
		t.Errorf("golden trace reported partial (dropped=%d)", rep.DroppedEvents)
	}
	if rep.Threads != 3 {
		t.Errorf("threads = %d, want 3 (the golden fixture spawns t0,t1,t2)", rep.Threads)
	}

	cp := rep.CriticalPath
	if cp.TotalNS <= 0 || cp.TotalNS > rep.WallNS {
		t.Errorf("critical path %d ns out of range (wall %d)", cp.TotalNS, rep.WallNS)
	}
	if len(cp.Segments) == 0 || cp.Handoffs == 0 {
		t.Errorf("critical path has %d segments, %d handoffs; the contended fixture must hand off",
			len(cp.Segments), cp.Handoffs)
	}
	var segSum, thrSum int64
	for _, s := range cp.Segments {
		if s.EndNS <= s.StartNS {
			t.Errorf("empty/inverted path segment %+v", s)
		}
		segSum += s.EndNS - s.StartNS
	}
	if segSum != cp.TotalNS {
		t.Errorf("segment sum %d != path total %d", segSum, cp.TotalNS)
	}
	for _, tr := range rep.ThreadReports {
		thrSum += tr.CritPathNS
	}
	if thrSum != cp.TotalNS {
		t.Errorf("per-thread path sum %d != path total %d", thrSum, cp.TotalNS)
	}

	// The fixture contends on exactly one mutex; all lock wait must be
	// attributed to it and bounded by total token wait.
	if len(rep.Locks) != 1 {
		t.Fatalf("got %d locks, want 1: %+v", len(rep.Locks), rep.Locks)
	}
	l := rep.Locks[0]
	if l.Blocks == 0 || l.WaitNS <= 0 || l.Waiters < 2 {
		t.Errorf("lock %d: blocks=%d wait=%d waiters=%d; fixture contends this mutex from two threads",
			l.Mutex, l.Blocks, l.WaitNS, l.Waiters)
	}
	if l.Acquires < l.Blocks {
		t.Errorf("lock %d: acquires %d < blocks %d", l.Mutex, l.Acquires, l.Blocks)
	}
	tw := rep.TokenWait
	if l.WaitNS != tw.LockNS {
		t.Errorf("single lock wait %d != TokenWait.LockNS %d", l.WaitNS, tw.LockNS)
	}
	if tw.LockNS+tw.OrderNS != tw.TotalNS || tw.LockNS > tw.TotalNS {
		t.Errorf("token wait split inconsistent: lock %d + order %d != total %d", tw.LockNS, tw.OrderNS, tw.TotalNS)
	}

	// Text rendering must mention the headline numbers.
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical path", "token wait", "mutex", rep.Process} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, b.String())
		}
	}
}

// TestLiveVsParsedIdentical is the analyzer's round-trip contract: a
// report built from a live Observer and one built from that observer's
// exported Chrome trace must be byte-identical.
func TestLiveVsParsedIdentical(t *testing.T) {
	for _, bench := range []string{"histogram", "ferret"} {
		opts := harness.Options{
			Bench:   bench,
			Runtime: harness.KindConsequenceIC,
			Threads: 4,
			Scale:   1,
			Seed:    42,
		}
		_, ob, live, err := harness.AnalyzeCell(opts)
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		if err := ob.WriteChromeTrace(&trace, harness.CellName(opts)); err != nil {
			t.Fatal(err)
		}
		in, err := analyze.ParseChromeTrace(&trace)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := analyze.Analyze(in)
		if err != nil {
			t.Fatal(err)
		}
		lj, _ := live.JSON()
		pj, _ := parsed.JSON()
		if !bytes.Equal(lj, pj) {
			t.Errorf("%s: live and parsed-trace reports differ:\n--- live ---\n%s\n--- parsed ---\n%s", bench, lj, pj)
		}
	}
}

// TestReportInvariants checks the properties that must hold for any run:
// the critical path is bounded by wall time, and the report's phase totals
// reconcile exactly with the runtime's own RunStats breakdown.
func TestReportInvariants(t *testing.T) {
	for _, bench := range []string{"histogram", "kmeans", "swaptions"} {
		res, _, rep, err := harness.AnalyzeCell(harness.Options{
			Bench:   bench,
			Runtime: harness.KindConsequenceIC,
			Threads: 8,
			Scale:   1,
			Seed:    42,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.CriticalPath.TotalNS > rep.WallNS {
			t.Errorf("%s: critical path %d > wall %d", bench, rep.CriticalPath.TotalNS, rep.WallNS)
		}
		if rep.WallNS != res.Stats.WallNS {
			t.Errorf("%s: report wall %d != RunStats wall %d", bench, rep.WallNS, res.Stats.WallNS)
		}

		total := func(phase string) int64 {
			for _, pt := range rep.PhaseTotals {
				if pt.Phase == phase {
					return pt.TotalNS
				}
			}
			t.Fatalf("%s: phase %q missing from totals", bench, phase)
			return 0
		}
		st := res.Stats
		for _, c := range []struct {
			name string
			rep  int64
			stat int64
		}{
			{"compute", total("compute"), st.LocalWorkNS},
			{"token-wait", total("token-wait"), st.DetermWaitNS},
			{"barrier-wait", total("barrier-wait"), st.BarrierWaitNS},
			{"commit+merge", total("commit") + total("merge") + total("spec-diff"), st.CommitNS},
			{"fault", total("fault") + total("prefetch"), st.FaultNS},
			{"lib", total("lib") + total("spawn") + total("handoff") +
				total("fast-forward"), st.LibNS},
		} {
			if c.rep != c.stat {
				t.Errorf("%s: report %s total %d != RunStats %d", bench, c.name, c.rep, c.stat)
			}
		}
		if rep.TokenWait.TotalNS != total("token-wait") {
			t.Errorf("%s: TokenWait.TotalNS %d != phase total %d", bench, rep.TokenWait.TotalNS, total("token-wait"))
		}
		// Commit marker count must agree with the memory substrate.
		if rep.Commits.Count == 0 || rep.Commits.PagesTotal != st.CommittedPages {
			t.Errorf("%s: commit summary %+v vs RunStats committed pages %d", bench, rep.Commits, st.CommittedPages)
		}
	}
}

func TestAnalyzeRejectsEmptyInput(t *testing.T) {
	if _, err := analyze.Analyze(&analyze.Input{}); err == nil {
		t.Error("Analyze accepted an input with no lanes")
	}
	if _, err := analyze.Analyze(&analyze.Input{Lanes: []analyze.Lane{{Tid: 0}}}); err == nil {
		t.Error("Analyze accepted lanes with no events")
	}
	if _, err := analyze.ParseChromeTrace(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Error("ParseChromeTrace accepted a trace with no lanes")
	}
	if _, err := analyze.ParseChromeTrace(strings.NewReader("not json")); err == nil {
		t.Error("ParseChromeTrace accepted garbage")
	}
}

// TestPartialReport: dropped events must flag the report partial.
func TestPartialReport(t *testing.T) {
	in := &analyze.Input{
		Process: "truncated",
		Lanes: []analyze.Lane{{
			Tid:     0,
			Dropped: 17,
			Events:  []obs.Event{{Phase: obs.PhaseCompute, Start: 0, End: 100}},
		}},
	}
	rep, err := analyze.Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial || rep.DroppedEvents != 17 {
		t.Errorf("partial=%v dropped=%d, want true/17", rep.Partial, rep.DroppedEvents)
	}
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "PARTIAL") {
		t.Errorf("text report does not warn about partial data:\n%s", b.String())
	}
}

// TestReplicationReport: a run exporting replica fleet metrics must get
// the replication section (writer backpressure and follower lag in one
// place); runs without a fleet omit it so their reports are unchanged.
func TestReplicationReport(t *testing.T) {
	lanes := []analyze.Lane{{
		Tid:    0,
		Events: []obs.Event{{Phase: obs.PhaseCompute, Start: 0, End: 100}},
	}}
	reg := obs.NewRegistry()
	reg.Func("commitlog_append_stalls", func() int64 { return 3 })
	reg.Func("replica_restarts_total", func() int64 { return 2 })
	reg.Func("replica_reads_served", func() int64 { return 10 })
	reg.Func("replica_reads_redirected", func() int64 { return 4 })
	reg.Func("replica_reads_rejected", func() int64 { return 1 })
	reg.Func("replica_admitted", func() int64 { return 2 })
	reg.Func("replica_catchup_ns", func() int64 { return 5_000_000 })
	reg.Func("replica_lag", func() int64 { return 1 }, obs.L("follower", 0), obs.L("role", "serve"))
	reg.Func("replica_lag", func() int64 { return 7 }, obs.L("follower", 2), obs.L("role", "archive"))
	h := reg.Histogram("replica_lag_hist")
	for i := 0; i < 100; i++ {
		h.Observe(int64(i % 5))
	}
	rep, err := analyze.Analyze(&analyze.Input{Process: "fleet", Lanes: lanes, Metrics: reg.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	rp := rep.Replication
	if rp == nil {
		t.Fatal("replication section missing despite replica metrics")
	}
	if rp.AppendStalls != 3 || rp.Restarts != 2 || rp.Admitted != 2 {
		t.Errorf("stalls/restarts/admitted = %d/%d/%d, want 3/2/2", rp.AppendStalls, rp.Restarts, rp.Admitted)
	}
	if rp.ReadsServed != 10 || rp.ReadsRedirected != 4 || rp.ReadsRejected != 1 {
		t.Errorf("reads = %d/%d/%d, want 10/4/1", rp.ReadsServed, rp.ReadsRedirected, rp.ReadsRejected)
	}
	if rp.CatchupMaxNS != 5_000_000 || rp.LagMax != 4 || rp.LagP95 <= 0 {
		t.Errorf("catchup/lag = %d/%d/%.2f", rp.CatchupMaxNS, rp.LagMax, rp.LagP95)
	}
	if len(rp.Followers) != 2 || rp.Followers[0].Role != "serve" || rp.Followers[1].Role != "archive" ||
		rp.Followers[1].Follower != 2 || rp.Followers[1].Lag != 7 {
		t.Errorf("follower lanes wrong: %+v", rp.Followers)
	}
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "replication") || !strings.Contains(b.String(), "archive") {
		t.Errorf("text report missing replication section:\n%s", b.String())
	}

	bare, err := analyze.Analyze(&analyze.Input{Process: "nofleet", Lanes: lanes})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Replication != nil {
		t.Error("replication section present without replica metrics")
	}
}
