// Package analyze turns a recorded observability timeline (internal/obs)
// into the attribution answers the paper's evaluation (§5, Figures 10–16)
// is built on: which work sits on the serialized token critical path, which
// locks cause the token waiting, how much of the commit work overlaps, and
// what chunk coarsening would buy.
//
// The analyzer is strictly post-hoc: it consumes either a finished
// Observer (FromObserver) or a previously exported Chrome trace JSON
// (ParseChromeTrace), normalizes both into the same Input, and produces an
// identical Report either way — a trace file is as actionable as a live
// run. Nothing here feeds back into the runtime; determinism is untouched
// by construction.
//
// Three analyses beyond simple phase accounting:
//
//   - Critical path. The serialization critical path is reconstructed by a
//     backward sticky scan from the run's finish: walking time backwards,
//     the path stays on its current thread while that thread is doing real
//     work, and when the thread is blocked (token-wait, barrier-wait) the
//     path hands off to the thread that was holding the serialized
//     resource — preferring token-serialized phases (commit, lib) over
//     concurrent ones (merge, fault, compute). The result covers the run
//     wall-to-wall, so its length is bounded by the wall time, and its
//     per-phase composition says what a perf PR must shrink to move the
//     finish line.
//
//   - Per-lock wait attribution. The runtime marks lock-block (queueing on
//     a held mutex) and lock-acquire instants with the mutex id; every
//     token-wait span between a block and its matching acquire is
//     contention on that mutex. Token-wait outside such a window is
//     token-order wait (the cost of determinism itself: waiting for the
//     global token with no lock involved, or in cond/join/barrier paths).
//
//   - Coarsening what-if. From the recorded commit markers the analyzer
//     finds runs of coordination phases separated by short chunks (the
//     fusible ones, in the spirit of §3.1's chunk coarsening) and
//     estimates, for fusion factors k, the serial and wait time that
//     removing the redundant token round-trips would save.
package analyze

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// Lane is one thread's recorded timeline, in normalized form.
type Lane struct {
	Tid     int
	Events  []obs.Event
	Dropped int64
}

// Input is the analyzer's source material: a set of per-thread timelines
// plus the free-form process description the trace was exported under.
// Build one with FromObserver or ParseChromeTrace.
type Input struct {
	Process string
	Lanes   []Lane
	// Metrics is the run's metric snapshot (nil for Chrome-trace inputs,
	// which carry no registry). Used for analyses that need runtime state
	// the timelines don't record, e.g. the per-shard arbiter gauges.
	Metrics []obs.Sample
}

// FromObserver snapshots a finished Observer into an Input. Call only
// after the observed run has completed (Observer.Lanes' contract).
func FromObserver(o *obs.Observer, process string) *Input {
	in := &Input{Process: process, Metrics: o.Registry().Snapshot()}
	for _, l := range o.Lanes() {
		in.Lanes = append(in.Lanes, Lane{
			Tid:     l.Tid(),
			Events:  l.Events(),
			Dropped: l.Dropped(),
		})
	}
	return in
}

// whatIfKs are the fusion factors the coarsening estimate is evaluated at.
var whatIfKs = []int{2, 4, 8}

// Analyze runs every analysis over the input and assembles the Report.
func Analyze(in *Input) (*Report, error) {
	if len(in.Lanes) == 0 {
		return nil, fmt.Errorf("analyze: input has no thread lanes")
	}
	lanes := normalize(in.Lanes)

	r := &Report{Process: in.Process, Threads: len(lanes)}
	r.StartNS = math.MaxInt64
	for _, l := range lanes {
		r.DroppedEvents += l.Dropped
		for _, e := range l.Events {
			if e.Start < r.StartNS {
				r.StartNS = e.Start
			}
			if e.End > r.WallNS {
				r.WallNS = e.End
			}
		}
	}
	if r.StartNS == math.MaxInt64 {
		return nil, fmt.Errorf("analyze: no events in any lane")
	}
	r.Partial = r.DroppedEvents > 0

	phaseTotals(lanes, r)
	attributeLocks(lanes, r)
	criticalPath(lanes, r)
	mergeOverlap(lanes, r)
	whatIfCoarsen(lanes, r)
	shardingReport(in.Metrics, r)
	replicationReport(in.Metrics, r)
	return r, nil
}

// normalize sorts each lane's events into a canonical order — by start
// time, instants before the span that begins at the same instant, shorter
// spans first — so an Input built from a live Observer and one parsed back
// from its exported trace analyze identically. Lanes are returned in tid
// order.
func normalize(ls []Lane) []Lane {
	out := append([]Lane(nil), ls...)
	sort.Slice(out, func(i, j int) bool { return out[i].Tid < out[j].Tid })
	for i := range out {
		evs := append([]obs.Event(nil), out[i].Events...)
		sort.SliceStable(evs, func(a, b int) bool {
			ea, eb := evs[a], evs[b]
			if ea.Start != eb.Start {
				return ea.Start < eb.Start
			}
			if ia, ib := ea.Phase.Instant(), eb.Phase.Instant(); ia != ib {
				return ia
			}
			return ea.End < eb.End
		})
		out[i].Events = evs
	}
	return out
}

// phaseTotals fills the per-phase and per-thread time accounting.
func phaseTotals(lanes []Lane, r *Report) {
	var totals [obs.NumTimePhases]int64
	for _, l := range lanes {
		tr := ThreadReport{Tid: l.Tid, StartNS: math.MaxInt64}
		var sums [obs.NumTimePhases]int64
		for _, e := range l.Events {
			if e.Start < tr.StartNS {
				tr.StartNS = e.Start
			}
			if e.End > tr.EndNS {
				tr.EndNS = e.End
			}
			if !e.Phase.Instant() {
				sums[e.Phase] += e.End - e.Start
			}
			if e.Phase == obs.MarkCommit {
				r.Commits.Count++
				r.Commits.PagesTotal += e.Arg
			}
		}
		if tr.StartNS == math.MaxInt64 {
			tr.StartNS = 0
		}
		for p, ns := range sums {
			totals[p] += ns
		}
		tr.ComputeNS = sums[obs.PhaseCompute]
		tr.TokenWaitNS = sums[obs.PhaseTokenWait]
		tr.BarrierWaitNS = sums[obs.PhaseBarrierWait]
		tr.CommitNS = sums[obs.PhaseCommit]
		tr.MergeNS = sums[obs.PhaseMerge]
		tr.FaultNS = sums[obs.PhaseFault]
		tr.LibNS = sums[obs.PhaseLib]
		tr.SpawnNS = sums[obs.PhaseSpawn]
		tr.HandoffNS = sums[obs.PhaseHandoff]
		tr.FastForwardNS = sums[obs.PhaseFastForward]
		tr.SpecDiffNS = sums[obs.PhaseSpecDiff]
		tr.PrefetchNS = sums[obs.PhasePrefetch]
		if live := tr.EndNS - tr.StartNS; live > 0 {
			tr.UtilizationPct = pct(tr.ComputeNS, live)
		}
		r.ThreadReports = append(r.ThreadReports, tr)
	}
	cpu := r.WallNS * int64(len(lanes))
	for p := obs.Phase(0); p < obs.NumTimePhases; p++ {
		r.PhaseTotals = append(r.PhaseTotals, PhaseTotal{
			Phase:   p.String(),
			TotalNS: totals[p],
			Pct:     pct(totals[p], cpu),
		})
	}
	if r.Commits.Count > 0 {
		r.Commits.SerialNSPerCommit = totals[obs.PhaseCommit] / r.Commits.Count
	}
}

// attributeLocks splits token-wait time into per-mutex contention (waits
// inside a lock-block → lock-acquire window) and residual token-order
// wait, walking each lane's events in recorded order.
func attributeLocks(lanes []Lane, r *Report) {
	type lockAgg struct {
		acquires, blocks, waitNS, maxWaitNS int64
		waiters                             map[int]bool
	}
	aggs := map[uint64]*lockAgg{}
	get := func(id uint64) *lockAgg {
		a, ok := aggs[id]
		if !ok {
			a = &lockAgg{waiters: map[int]bool{}}
			aggs[id] = a
		}
		return a
	}
	for _, l := range lanes {
		var curLock uint64
		var curWait int64 // token-wait ns inside the current block window
		for _, e := range l.Events {
			switch e.Phase {
			case obs.MarkLockBlock:
				curLock, curWait = uint64(e.Arg), 0
				a := get(curLock)
				a.blocks++
				a.waiters[l.Tid] = true
			case obs.MarkLockAcquire:
				a := get(uint64(e.Arg))
				a.acquires++
				if curLock == uint64(e.Arg) && curWait > 0 {
					a.waitNS += curWait
					if curWait > a.maxWaitNS {
						a.maxWaitNS = curWait
					}
					r.TokenWait.LockNS += curWait
				}
				curLock, curWait = 0, 0
			case obs.PhaseTokenWait:
				d := e.End - e.Start
				r.TokenWait.TotalNS += d
				if curLock != 0 {
					curWait += d
				} else {
					r.TokenWait.OrderNS += d
				}
			}
		}
		// A window left open at lane end (blocked thread never re-armed —
		// possible only on truncated timelines) counts as order wait.
		if curWait > 0 {
			r.TokenWait.OrderNS += curWait
		}
	}
	// Waits inside a window that closed without its acquire (dropped
	// events) also land in OrderNS via the fallthrough above; reconcile.
	r.TokenWait.OrderNS = r.TokenWait.TotalNS - r.TokenWait.LockNS
	r.TokenWait.LockPct = pct(r.TokenWait.LockNS, r.TokenWait.TotalNS)

	ids := make([]uint64, 0, len(aggs))
	for id := range aggs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := aggs[id]
		r.Locks = append(r.Locks, LockReport{
			Mutex:     id,
			Acquires:  a.acquires,
			Blocks:    a.blocks,
			WaitNS:    a.waitNS,
			MaxWaitNS: a.maxWaitNS,
			Waiters:   len(a.waiters),
			WaitPct:   pct(a.waitNS, r.TokenWait.TotalNS),
		})
	}
	// Most-contended first; id ascending for stable ties.
	sort.SliceStable(r.Locks, func(i, j int) bool {
		if r.Locks[i].WaitNS != r.Locks[j].WaitNS {
			return r.Locks[i].WaitNS > r.Locks[j].WaitNS
		}
		return r.Locks[i].Mutex < r.Locks[j].Mutex
	})
}

// mergeOverlap measures how much page-merge work ran concurrently: the
// parallel two-phase barrier commit (§4.2) shows up as merge spans from
// different threads covering the same wall time.
func mergeOverlap(lanes []Lane, r *Report) {
	type edge struct {
		at    int64
		delta int
	}
	var edges []edge
	for _, l := range lanes {
		for _, e := range l.Events {
			if e.Phase == obs.PhaseMerge && e.End > e.Start {
				r.MergeOverlap.TotalNS += e.End - e.Start
				edges = append(edges, edge{e.Start, +1}, edge{e.End, -1})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // close before open at a tie
	})
	active, last := 0, int64(0)
	for _, e := range edges {
		if active > 0 {
			r.MergeOverlap.BusyNS += e.at - last
		}
		active += e.delta
		last = e.at
	}
	r.MergeOverlap.OverlapNS = r.MergeOverlap.TotalNS - r.MergeOverlap.BusyNS
	if r.MergeOverlap.BusyNS > 0 {
		r.MergeOverlap.ParallelismX = round2(float64(r.MergeOverlap.TotalNS) / float64(r.MergeOverlap.BusyNS))
	}
}

// whatIfCoarsen estimates what fusing k consecutive coordination phases
// would save, from the recorded commit markers. A coordination phase is a
// token-held commit; two consecutive phases on a thread are fusible when
// the chunk between them is short — at most fusibleChunkFactor times the
// fixed serial cost of a coordination round, mirroring the adaptive
// policy's rationale (§3.1: fuse only chunks comparable to the
// coordination overhead they eliminate). Fusing a maximal run of m
// fusible phases into groups of k leaves ceil(m/k) phases; each removed
// phase saves one fixed serial round (estimated as the minimum observed
// commit span plus the mean lib cost per coordination phase) and the mean
// token-wait it induced on the queue.
const fusibleChunkFactor = 4

func whatIfCoarsen(lanes []Lane, r *Report) {
	// Fixed serial cost per coordination phase.
	minCommit := int64(math.MaxInt64)
	var libNS, tokenWaitNS, tokenWaits int64
	for _, l := range lanes {
		for _, e := range l.Events {
			switch e.Phase {
			case obs.PhaseCommit:
				if d := e.End - e.Start; d > 0 && d < minCommit {
					minCommit = d
				}
			case obs.PhaseLib, obs.PhaseSpawn, obs.PhaseHandoff, obs.PhaseFastForward:
				// All four are runtime-library overhead (the pre-split
				// PhaseLib); the round-cost estimate must not change with
				// the phase refinement.
				libNS += e.End - e.Start
			case obs.PhaseTokenWait:
				tokenWaitNS += e.End - e.Start
				tokenWaits++
			}
		}
	}
	if r.Commits.Count == 0 || minCommit == math.MaxInt64 {
		return
	}
	roundNS := minCommit + libNS/r.Commits.Count
	meanWaitNS := int64(0)
	if tokenWaits > 0 {
		meanWaitNS = tokenWaitNS / tokenWaits
	}
	fusibleGap := int64(fusibleChunkFactor) * roundNS

	// Per thread: lengths of maximal runs of commit marks whose gaps are
	// all fusible.
	var runs []int64
	for _, l := range lanes {
		var lastCommit int64 = -1
		run := int64(0)
		for _, e := range l.Events {
			if e.Phase != obs.MarkCommit {
				continue
			}
			if lastCommit >= 0 && e.Start-lastCommit <= fusibleGap {
				run++
			} else {
				if run > 1 {
					runs = append(runs, run)
				}
				run = 1
			}
			lastCommit = e.Start
		}
		if run > 1 {
			runs = append(runs, run)
		}
	}
	for _, k := range whatIfKs {
		var removed int64
		for _, m := range runs {
			removed += m - (m+int64(k)-1)/int64(k)
		}
		w := WhatIf{
			K:                k,
			FusedPhases:      removed,
			EstSavedSerialNS: removed * roundNS,
			EstSavedWaitNS:   removed * meanWaitNS,
		}
		w.EstWallPct = pct(w.EstSavedSerialNS, r.WallNS)
		r.Coarsening = append(r.Coarsening, w)
	}
}

// pct returns 100*num/den rounded to two decimals (0 when den <= 0).
func pct(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return round2(100 * float64(num) / float64(den))
}

// round2 rounds to two decimal places, keeping report floats stable to
// render and compare.
func round2(x float64) float64 { return math.Round(x*100) / 100 }
