package analyze

import (
	"sort"

	"repro/internal/obs"
)

// Critical-path reconstruction: a backward sticky scan over the merged
// timelines.
//
// Walking time backwards from the run's finish, the path stays on its
// current thread while that thread has a working (non-wait) span. When the
// current thread is blocked — token-wait, barrier-wait — or has no span at
// all (not yet spawned, already exited), whoever held the serialized
// resource was the reason the clock kept moving: the path hands off to the
// thread doing the highest-priority work at that instant, preferring
// token-serialized phases (commit, then lib) over work that legitimately
// runs in parallel (fault, merge, compute). If every thread is waiting
// (possible only at seams where the recorded spans have zero length), the
// interval is attributed to the current thread's wait phase.
//
// The scan is resolved over elementary intervals between consecutive span
// boundaries, so the result is exact with respect to the recorded spans,
// deterministic (all ties break toward the lowest tid), and its total
// length never exceeds the wall time.

// workPriority orders phases for the handoff choice; lower is better.
// Wait phases are never chosen while any thread works.
var workPriority = map[obs.Phase]int{
	obs.PhaseCommit:      0,
	obs.PhaseLib:         1,
	obs.PhaseHandoff:     2, // token-serialized, like the lib it split from
	obs.PhaseSpawn:       3,
	obs.PhaseFastForward: 4,
	obs.PhaseFault:       5,
	obs.PhaseMerge:       6,
	obs.PhaseSpecDiff:    7, // like merge: commit work that runs in parallel
	obs.PhaseCompute:     8,
	obs.PhaseTokenWait:   9,
	obs.PhaseBarrierWait: 10,
}

// isWait reports whether p is a blocked phase.
func isWait(p obs.Phase) bool {
	return p == obs.PhaseTokenWait || p == obs.PhaseBarrierWait
}

// laneSpans is one thread's time-phase spans, sorted by start; spans
// within a lane are non-overlapping (they are the thread's own accounting
// intervals).
type laneSpans struct {
	tid   int
	spans []obs.Event
}

// spanAt returns the phase of the span covering [at, at+ε), if any.
func (ls *laneSpans) spanAt(at int64) (obs.Phase, bool) {
	i := sort.Search(len(ls.spans), func(i int) bool { return ls.spans[i].End > at })
	if i < len(ls.spans) && ls.spans[i].Start <= at {
		return ls.spans[i].Phase, true
	}
	return 0, false
}

// criticalPath fills r.CriticalPath (and the per-thread path shares).
func criticalPath(lanes []Lane, r *Report) {
	var threads []laneSpans
	boundarySet := map[int64]bool{}
	lastEnd, cur := int64(-1), -1
	for _, l := range lanes {
		ls := laneSpans{tid: l.Tid}
		for _, e := range l.Events {
			if e.Phase.Instant() || e.End <= e.Start {
				continue
			}
			ls.spans = append(ls.spans, e)
			boundarySet[e.Start] = true
			boundarySet[e.End] = true
			if e.End > lastEnd {
				lastEnd, cur = e.End, l.Tid
			}
		}
		threads = append(threads, ls)
	}
	if cur < 0 {
		return
	}
	boundaries := make([]int64, 0, len(boundarySet))
	for b := range boundarySet {
		boundaries = append(boundaries, b)
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i] < boundaries[j] })

	idx := map[int]int{}
	for i, t := range threads {
		idx[t.tid] = i
	}

	// Backward scan over elementary intervals.
	var rev []PathSegment
	handoffs := 0
	for bi := len(boundaries) - 1; bi > 0; bi-- {
		a, b := boundaries[bi-1], boundaries[bi]
		if a >= lastEnd {
			continue
		}
		if b > lastEnd {
			b = lastEnd
		}
		// Stay with the current thread while it works.
		phase, ok := threads[idx[cur]].spanAt(a)
		if !ok || isWait(phase) {
			// Handoff: pick the best-working thread over this interval.
			bestTid, bestPhase, bestPrio := -1, obs.Phase(0), len(workPriority)
			for _, t := range threads {
				p, has := t.spanAt(a)
				if !has || isWait(p) {
					continue
				}
				if prio := workPriority[p]; prio < bestPrio {
					bestTid, bestPhase, bestPrio = t.tid, p, prio
				}
			}
			if bestTid >= 0 {
				if bestTid != cur {
					handoffs++
					cur = bestTid
				}
				phase, ok = bestPhase, true
			}
		}
		if !ok {
			// Nobody has a span here (a gap before the first event);
			// skip — the path starts where recording starts.
			continue
		}
		rev = append(rev, PathSegment{Tid: cur, Phase: phase.String(), StartNS: a, EndNS: b})
	}

	// Reverse into chronological order, merging adjacent segments with the
	// same thread and phase.
	cp := &r.CriticalPath
	for i := len(rev) - 1; i >= 0; i-- {
		s := rev[i]
		if n := len(cp.Segments); n > 0 {
			last := &cp.Segments[n-1]
			if last.Tid == s.Tid && last.Phase == s.Phase && last.EndNS == s.StartNS {
				last.EndNS = s.EndNS
				continue
			}
		}
		cp.Segments = append(cp.Segments, s)
	}
	cp.Handoffs = handoffs

	byPhase := map[string]int64{}
	byThread := map[int]int64{}
	for _, s := range cp.Segments {
		d := s.EndNS - s.StartNS
		cp.TotalNS += d
		byPhase[s.Phase] += d
		byThread[s.Tid] += d
	}
	cp.WallPct = pct(cp.TotalNS, r.WallNS)
	for p := obs.Phase(0); p < obs.NumTimePhases; p++ {
		name := p.String()
		if ns := byPhase[name]; ns > 0 {
			cp.ByPhase = append(cp.ByPhase, PhaseTotal{Phase: name, TotalNS: ns, Pct: pct(ns, cp.TotalNS)})
		}
	}
	for i := range r.ThreadReports {
		r.ThreadReports[i].CritPathNS = byThread[r.ThreadReports[i].Tid]
	}
}
