package analyze

import (
	"sort"
	"strconv"

	"repro/internal/obs"
)

// ShardingReport summarizes per-shard arbiter activity under stage-2
// per-shard granting (docs/scheduler.md). It is present only when the run
// exported the clock_shard_busy_ns gauges — i.e. the runtime actually
// granted per shard; unsharded runs (and Chrome-trace inputs, which carry
// no metrics) omit the section entirely so their reports are unchanged.
type ShardingReport struct {
	Shards []ShardLane `json:"shards"`
	// GlobalEdgeBusyNS is arbiter time spent inside cross-shard
	// (global-scope) grants: barrier rendezvous and every other edge that
	// folds the shard clocks through the merge rule.
	GlobalEdgeBusyNS int64 `json:"global_edge_busy_ns"`
	// GrantParallelismX is (Σ per-shard busy + global-edge busy) / wall:
	// the effective number of concurrently active grant loops. A single
	// global arbiter pins this at ≤ 1.0; values above 1.0 are ordering
	// work the shards retired in parallel.
	GrantParallelismX float64 `json:"grant_parallelism_x"`
}

// ShardLane is one arbitration shard's activity.
type ShardLane struct {
	Shard int `json:"shard"`
	// BusyNS is the time this shard's grant loop had an op in flight.
	BusyNS int64 `json:"busy_ns"`
	// FrontierNS is the shard's logical clock at the end of the run — how
	// far its domain advanced independently of the others.
	FrontierNS int64 `json:"frontier_ns"`
	// UtilizationPct is BusyNS as a share of wall time.
	UtilizationPct float64 `json:"utilization_pct"`
}

// shardLabel extracts the integer "shard" label from a metric sample.
func shardLabel(labels []obs.Label) (int, bool) {
	for _, l := range labels {
		if l.Key == "shard" {
			n, err := strconv.Atoi(l.Value)
			return n, err == nil
		}
	}
	return 0, false
}

// shardingReport assembles Report.Sharding from the runtime's clock-shard
// gauges. Leaves r.Sharding nil when no per-shard busy samples exist.
func shardingReport(metrics []obs.Sample, r *Report) {
	busy := map[int]int64{}
	frontier := map[int]int64{}
	var globalBusy int64
	for _, s := range metrics {
		switch s.Name {
		case "clock_shard_busy_ns":
			if sh, ok := shardLabel(s.Labels); ok {
				busy[sh] = s.Value
			}
		case "clock_shard_frontier_ns":
			if sh, ok := shardLabel(s.Labels); ok {
				frontier[sh] = s.Value
			}
		case "clock_global_edge_busy_ns":
			globalBusy = s.Value
		}
	}
	if len(busy) == 0 {
		return
	}

	sh := &ShardingReport{GlobalEdgeBusyNS: globalBusy}
	var total int64
	ids := make([]int, 0, len(busy))
	for id := range busy {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		total += busy[id]
		sh.Shards = append(sh.Shards, ShardLane{
			Shard:          id,
			BusyNS:         busy[id],
			FrontierNS:     frontier[id],
			UtilizationPct: pct(busy[id], r.WallNS),
		})
	}
	if r.WallNS > 0 {
		sh.GrantParallelismX = round2(float64(total+globalBusy) / float64(r.WallNS))
	}
	r.Sharding = sh
}
