package obs

// Chrome trace-event JSON export. The output is the "JSON Object Format"
// of the Trace Event specification: {"traceEvents": [...]}, loadable in
// chrome://tracing and in Perfetto (ui.perfetto.dev). Each runtime thread
// renders as one lane (trace tid = runtime tid), each time-category phase
// as a complete ("X") event whose name and category are the Phase's
// stable string, and each marker as a thread-scoped instant ("i") event.
//
// The encoding is hand-rolled rather than encoding/json for a contract
// the tests rely on: a fixed simhost run must export byte-identical JSON
// across runs and platforms. Timestamps are virtual (or wall) nanoseconds
// rendered as microseconds with exactly three decimals, events are
// ordered lane-by-lane in recording order, and no map iteration is
// involved anywhere.

import (
	"bufio"
	"fmt"
	"io"
)

// usec renders ns as microseconds with fixed millinanosecond precision
// ("1.234"), the unit Chrome's ts/dur fields expect.
func usec(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// writeChromeTrace emits the observer's timeline for process (a free-form
// run description, e.g. "consequence-ic ferret t=8").
func writeChromeTrace(w io.Writer, o *Observer, process string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":%q}}", process)
	for _, l := range o.Lanes() {
		fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"t%d\"}}", l.Tid(), l.Tid())
		if d := l.Dropped(); d > 0 {
			// Surface ring overflow in the viewer rather than silently
			// truncating the lane's history.
			fmt.Fprintf(bw, ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"name\":\"events-dropped\",\"cat\":\"obs\",\"ts\":0.000,\"args\":{\"dropped\":%d}}", l.Tid(), d)
		}
	}
	for _, l := range o.Lanes() {
		tid := l.Tid()
		for _, e := range l.Events() {
			name := e.Phase.String()
			if e.Phase.Instant() {
				fmt.Fprintf(bw, ",\n{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"name\":%q,\"cat\":%q,\"ts\":%s,\"args\":{\"arg\":%d}}",
					tid, name, name, usec(e.Start), e.Arg)
				continue
			}
			fmt.Fprintf(bw, ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"name\":%q,\"cat\":%q,\"ts\":%s,\"dur\":%s}",
				tid, name, name, usec(e.Start), usec(e.End-e.Start))
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}
