package obs

import (
	"testing"
	"time"
)

func TestSamplerRecordsDeltas(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("work_items")
	g := r.Gauge("queue_depth")
	c.Add(5)
	g.Set(3)

	s := NewSampler(r, time.Millisecond)
	// Wait until at least one point captured the state above.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Points()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Add(2)
	g.Set(1)
	// Wait until a point has captured the post-update state — checking the
	// point count alone races Stop against the sampler when both early
	// points landed before the updates above.
	sawFinal := func() bool {
		pts := s.Points()
		if len(pts) < 2 {
			return false
		}
		for _, sm := range pts[len(pts)-1].Samples {
			if sm.Name == "work_items" {
				return sm.Value == 7
			}
		}
		return false
	}
	for !sawFinal() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()

	pts := s.Points()
	if len(pts) < 2 {
		t.Fatalf("got %d sample points, want >= 2", len(pts))
	}
	// Deltas telescope: their sum over all points is the last snapshot's
	// value (counters count up; gauge movements may be negative).
	var cSum, gSum int64
	for _, pt := range pts {
		cSum += pt.Deltas["work_items"]
		gSum += pt.Deltas["queue_depth"]
	}
	last := pts[len(pts)-1]
	var cLast, gLast int64
	for _, sm := range last.Samples {
		switch sm.Name {
		case "work_items":
			cLast = sm.Value
		case "queue_depth":
			gLast = sm.Value
		}
	}
	if cSum != cLast {
		t.Errorf("counter delta sum %d != last snapshot %d", cSum, cLast)
	}
	if gSum != gLast {
		t.Errorf("gauge delta sum %d != last snapshot %d", gSum, gLast)
	}
	if cLast != 7 {
		t.Errorf("last counter snapshot %d, want 7", cLast)
	}
	if pts[0].Elapsed <= 0 {
		t.Error("first point has non-positive Elapsed")
	}
	// Points are safe to read after Stop and do not grow further.
	n := len(s.Points())
	time.Sleep(5 * time.Millisecond)
	if got := len(s.Points()); got != n {
		t.Errorf("points grew after Stop: %d -> %d", n, got)
	}
}
