package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind distinguishes the instrument behind a Sample.
type MetricKind uint8

// Metric kinds.
const (
	// KindCounter is a monotonically increasing atomic count.
	KindCounter MetricKind = iota
	// KindGauge is an instantaneous atomic value.
	KindGauge
	// KindHistogram is a power-of-two-bucketed distribution.
	KindHistogram
	// KindFunc is a gauge computed by callback at snapshot time — the
	// bridge that subsumes pre-existing stats structs (mem.Segment.Stats,
	// clock.Arbiter.Stats, the det aggregates) under one snapshot API.
	KindFunc
)

// String names the kind.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindFunc:
		return "func"
	default:
		return "unknown"
	}
}

// Label is one key=value metric dimension (e.g. tid, mutex).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label from any value.
func L(key string, value any) Label {
	return Label{Key: key, Value: fmt.Sprint(value)}
}

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; mutation is a single atomic add.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value. All methods are safe for concurrent
// use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of histogram buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. power-of-two ranges
// [2^(i-1), 2^i). Bucket 0 holds v <= 0.
const histBuckets = 64

// Histogram is a power-of-two-bucketed distribution of int64 observations.
// All methods are safe for concurrent use; Observe is two atomic adds and
// an atomic increment.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets + 1]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 if none, or if all were <= 0).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns the q-quantile (0 <= q <= 1) estimated by linear
// interpolation inside the power-of-two bucket where the quantile's rank
// lands. The top occupied bucket is clamped to the recorded maximum, so
// p100 is exact and high quantiles do not inflate to the bucket's upper
// bound.
func (h *Histogram) Quantile(q float64) float64 {
	return quantile(h.Buckets(), h.Count(), h.Max(), q)
}

// quantile interpolates a quantile from non-cumulative power-of-two
// bucket counts (bucket 0: v <= 0; bucket i: [2^(i-1), 2^i)), the total
// count, and the observed maximum. Shared by Histogram.Quantile and
// Sample rendering, which only has the snapshot's bucket slice.
func quantile(buckets []int64, count, max int64, q float64) float64 {
	if count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	var cum float64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		cum += float64(n)
		if cum < rank {
			continue
		}
		if i == 0 {
			return 0
		}
		lo := float64(int64(1) << (i - 1))
		hi := float64(int64(1) << i)
		if i == len(buckets)-1 && float64(max) >= lo {
			// Top occupied bucket: the true upper edge is the max.
			hi = float64(max)
		}
		if hi < lo {
			hi = lo
		}
		// Position of the rank inside this bucket, linearly interpolated.
		pos := 1 - (cum-rank)/float64(n)
		return lo + pos*(hi-lo)
	}
	return float64(max)
}

// Buckets returns the non-cumulative per-bucket counts, trimmed of
// trailing empty buckets. Bucket i counts values in [2^(i-1), 2^i);
// bucket 0 counts values <= 0.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, 0, 8)
	last := -1
	for i := range h.buckets {
		n := h.buckets[i].Load()
		out = append(out, n)
		if n != 0 {
			last = i
		}
	}
	return out[:last+1]
}

// metric is one registered instrument.
type metric struct {
	name   string
	labels []Label
	kind   MetricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64
}

// Registry holds named, labeled metrics. Registration (the
// Counter/Gauge/Histogram/Func lookups) takes a lock; the returned
// instruments mutate with lock-free atomics, so hot paths should cache
// the instrument pointer rather than re-looking it up per event.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// key canonicalizes a name + label set (labels sorted by key).
func key(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String(), ls
}

// lookup returns the metric for (name, labels), creating it with mk if
// absent. Panics if the name+labels is already registered with a
// different kind — that is a programming error, not a runtime condition.
func (r *Registry) lookup(name string, labels []Label, kind MetricKind, mk func() *metric) *metric {
	k, ls := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[k]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", k, kind, m.kind))
		}
		return m
	}
	m := mk()
	m.name, m.labels, m.kind = name, ls, kind
	r.metrics[k] = m
	return m
}

// Counter returns the counter registered under name+labels, creating it
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, KindCounter, func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, KindGauge, func() *metric { return &metric{g: &Gauge{}} }).g
}

// Histogram returns the histogram registered under name+labels, creating
// it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, labels, KindHistogram, func() *metric { return &metric{h: &Histogram{}} }).h
}

// Func registers a callback gauge: fn is evaluated at every Snapshot.
// fn must be safe to call from any goroutine (typically it reads an
// existing mutex-guarded stats struct). Re-registering the same
// name+labels replaces the callback.
func (r *Registry) Func(name string, fn func() int64, labels ...Label) {
	m := r.lookup(name, labels, KindFunc, func() *metric { return &metric{} })
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Sample is one metric's state in a Snapshot.
type Sample struct {
	Name   string
	Labels []Label
	Kind   MetricKind
	// Value is the counter/gauge/func value; for histograms it is the
	// observation count.
	Value int64
	// Sum, Max and Buckets are populated for histograms only (see
	// Histogram.Buckets for bucket semantics).
	Sum     int64
	Max     int64
	Buckets []int64
}

// Quantile returns the q-quantile of a histogram sample, interpolated
// from its buckets (0 for non-histogram samples).
func (s Sample) Quantile(q float64) float64 {
	if s.Kind != KindHistogram {
		return 0
	}
	return quantile(s.Buckets, s.Value, s.Max, q)
}

// String renders the sample in a stable, human-readable form.
func (s Sample) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%s", l.Key, l.Value)
		}
		b.WriteByte('}')
	}
	if s.Kind == KindHistogram {
		mean := float64(0)
		if s.Value > 0 {
			mean = float64(s.Sum) / float64(s.Value)
		}
		fmt.Fprintf(&b, " count=%d sum=%d mean=%.1f p50=%.1f p95=%.1f max=%d",
			s.Value, s.Sum, mean, s.Quantile(0.5), s.Quantile(0.95), s.Max)
	} else {
		fmt.Fprintf(&b, " %d", s.Value)
	}
	return b.String()
}

// Snapshot returns every metric's current state, sorted by canonical name
// for deterministic rendering. It is safe to call mid-run: counters and
// gauges are read atomically (each sample is individually consistent; the
// set is not a global atomic cut), and func gauges are evaluated inline.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	ms := make([]*metric, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		ms = append(ms, r.metrics[k])
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = m.c.Value()
		case KindGauge:
			s.Value = m.g.Value()
		case KindHistogram:
			s.Value = m.h.Count()
			s.Sum = m.h.Sum()
			s.Max = m.h.Max()
			s.Buckets = m.h.Buckets()
		case KindFunc:
			s.Value = m.fn()
		}
		out = append(out, s)
	}
	return out
}
