package obs

import "sync/atomic"

// Event is one timeline entry: a span (time-category phase, End >= Start)
// or an instantaneous marker (End == Start, Phase.Instant() true). Times
// are host nanoseconds: virtual on simhost, wall-clock on realhost.
type Event struct {
	Phase Phase
	// Start and End bound the span in host nanoseconds.
	Start, End int64
	// Arg is a phase-specific payload: pages committed for MarkCommit,
	// estimated chunk length for MarkCoarsenBegin, absorbed sync ops for
	// MarkCoarsenEnd, the mutex id for MarkLockBlock/MarkLockAcquire;
	// 0 for plain time spans.
	Arg int64
}

// Lane is one thread's event ring. It is deliberately not synchronized:
// exactly one thread (the lane's owner) may call Add, which makes
// recording lock-free; Events must wait until the owning thread has
// finished, which the exporter's contract guarantees. The event counters
// (Total, Dropped) are atomics so mid-run metric snapshots — the
// obs_lane_dropped_total series — can read them from any goroutine.
type Lane struct {
	tid     int
	ring    []Event
	next    int // ring index of the next write
	total   atomic.Int64
	dropped atomic.Int64
}

// newLane creates a lane with the given ring capacity.
func newLane(tid, capacity int) *Lane {
	return &Lane{tid: tid, ring: make([]Event, 0, capacity)}
}

// Tid returns the owning thread's id.
func (l *Lane) Tid() int { return l.tid }

// Add appends an event. When the ring is full the oldest event is
// overwritten (and counted as dropped). Owner thread only.
func (l *Lane) Add(e Event) {
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next++
		if l.next == len(l.ring) {
			l.next = 0
		}
		l.dropped.Add(1)
	}
	l.total.Add(1)
}

// Span records a time-category span from start to end.
func (l *Lane) Span(p Phase, start, end int64) {
	l.Add(Event{Phase: p, Start: start, End: end})
}

// Mark records an instantaneous marker at time at with payload arg.
func (l *Lane) Mark(p Phase, at, arg int64) {
	l.Add(Event{Phase: p, Start: at, End: at, Arg: arg})
}

// Total returns the number of events ever added (retained + dropped).
// Safe to call from any goroutine.
func (l *Lane) Total() int64 { return l.total.Load() }

// Dropped returns how many of the oldest events were evicted by ring
// overflow. Safe to call from any goroutine (it backs the per-thread
// obs_lane_dropped_total metric).
func (l *Lane) Dropped() int64 { return l.dropped.Load() }

// Events returns the retained events, oldest first. Call only after the
// owning thread has finished.
func (l *Lane) Events() []Event {
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}
