package obs

// Background registry sampler: periodic snapshots turned into per-interval
// deltas, so a run's metrics become a coarse time series ("commits per
// 100ms", "token handoffs per interval") without any per-event recording
// cost. Like the HTTP exposition this is read-only — the sampling
// goroutine takes snapshots (atomic loads, callback gauges) and never
// feeds anything back into the runtime.

import (
	"sync"
	"time"
)

// SamplePoint is one sampling interval's registry state.
type SamplePoint struct {
	// Elapsed is the time since the sampler started.
	Elapsed time.Duration
	// Samples is the full snapshot at this instant.
	Samples []Sample
	// Deltas maps a metric's canonical String-style key (name plus sorted
	// labels) to the change in its primary value since the previous point:
	// counter/func increments, histogram observation-count increments, and
	// gauge movements (which may be negative).
	Deltas map[string]int64
}

// Sampler periodically snapshots a Registry in the background.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	mu     sync.Mutex
	points []SamplePoint
}

// NewSampler starts sampling reg every interval. Call Stop to halt it;
// Points returns what was recorded. Intervals below 1ms are clamped.
func NewSampler(reg *Registry, interval time.Duration) *Sampler {
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

// sampleKey canonicalizes one sample for delta matching across snapshots.
func sampleKey(s Sample) string {
	k, _ := key(s.Name, s.Labels)
	return k
}

func (s *Sampler) run() {
	defer close(s.done)
	start := time.Now()
	prev := map[string]int64{}
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		snap := s.reg.Snapshot()
		pt := SamplePoint{
			Elapsed: time.Since(start),
			Samples: snap,
			Deltas:  make(map[string]int64, len(snap)),
		}
		cur := make(map[string]int64, len(snap))
		for _, sm := range snap {
			k := sampleKey(sm)
			cur[k] = sm.Value
			pt.Deltas[k] = sm.Value - prev[k]
		}
		prev = cur
		s.mu.Lock()
		s.points = append(s.points, pt)
		s.mu.Unlock()
	}
}

// Stop halts the sampling goroutine and waits for it to exit. Idempotent
// via sync.Once semantics is not needed: callers stop a sampler once, at
// run end.
func (s *Sampler) Stop() {
	close(s.stop)
	<-s.done
}

// Points returns the recorded sample points (safe after Stop, or mid-run
// for a consistent prefix).
func (s *Sampler) Points() []SamplePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SamplePoint(nil), s.points...)
}
