package obs

// Prometheus text-format exposition (version 0.0.4) of a Registry
// snapshot. This is the scrape side of the observability layer: the
// registry's atomic instruments are safe to sample mid-run, so an HTTP
// handler (see expose.go) can serve live metrics from an executing
// workload without touching the deterministic schedule.
//
// The rendering is the plain-text format every Prometheus-compatible
// scraper ingests: one `# TYPE` line per metric family, one sample line
// per label set, histograms expanded into cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`. Like the Chrome trace export the output
// is deterministic for a fixed registry state (Snapshot sorts by canonical
// name; no map iteration), so tests pin it byte-for-byte.

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// PromContentType is the Content-Type for the Prometheus text exposition
// format, to be sent by HTTP handlers serving WritePrometheus output.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promType maps a metric kind to its exposition TYPE. Func gauges are
// plain gauges to a scraper.
func promType(k MetricKind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// promEscape escapes a label value per the exposition format.
var promEscape = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabels renders a label set as {k1="v1",k2="v2"}, with extra
// appended last (used for the histogram `le` label). Returns "" for an
// empty set.
func promLabels(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range append(append([]Label(nil), labels...), extra...) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", l.Key, promEscape.Replace(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders a snapshot of the registry in the Prometheus
// text exposition format. Safe to call mid-run (Snapshot's contract).
func WritePrometheus(w io.Writer, r *Registry) error {
	return writePromSamples(w, r.Snapshot())
}

// writePromSamples renders already-snapshotted samples. Snapshot returns
// samples sorted by canonical name, so all label sets of one family are
// adjacent: the TYPE line is emitted once, at the family's first sample.
func writePromSamples(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	prev := ""
	for _, s := range samples {
		if s.Name != prev {
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, promType(s.Kind))
			prev = s.Name
		}
		if s.Kind != KindHistogram {
			fmt.Fprintf(bw, "%s%s %d\n", s.Name, promLabels(s.Labels), s.Value)
			continue
		}
		// Histogram: cumulative buckets. Bucket i of the power-of-two
		// scheme counts integer values in [2^(i-1), 2^i), i.e. <= 2^i - 1;
		// bucket 0 counts values <= 0.
		var cum int64
		for i, n := range s.Buckets {
			cum += n
			var le int64
			if i > 0 {
				le = int64(1)<<i - 1
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, L("le", le)), cum)
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, Label{Key: "le", Value: "+Inf"}), s.Value)
		fmt.Fprintf(bw, "%s_sum%s %d\n", s.Name, promLabels(s.Labels), s.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", s.Name, promLabels(s.Labels), s.Value)
	}
	return bw.Flush()
}
