package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/simhost"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// observedRun executes a fixed multi-phase program (mutex contention,
// a barrier, compute, shared-memory writes) on the simulation host with
// an observer attached, and returns the exported Chrome trace bytes.
func observedRun(t *testing.T) []byte {
	t.Helper()
	cfg := det.Default()
	cfg.SegmentSize = 1 << 20
	h := simhost.New(costmodel.Default())
	rt, err := det.New(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	rt.SetObserver(o)
	err = rt.Run(func(t0 api.T) {
		m := t0.NewMutex()
		bar := t0.NewBarrier(3)
		var hs []api.Handle
		for i := 0; i < 2; i++ {
			i := i
			hs = append(hs, t0.Spawn(func(tt api.T) {
				tt.Compute(int64(3000 + 500*i))
				tt.Lock(m)
				// A long critical section, so later arrivals block on the
				// held mutex: the golden trace then carries lock-block /
				// lock-acquire marker pairs with real token-wait between
				// them, which the analyzer's per-lock attribution tests
				// (internal/obs/analyze) depend on.
				tt.Compute(6000)
				api.AddU64(tt, 0, uint64(i+1))
				tt.Unlock(m)
				tt.BarrierWait(bar)
				tt.Compute(2500)
				api.PutU64(tt, 64*(i+1), uint64(i))
			}))
		}
		t0.Compute(1000)
		t0.Lock(m)
		t0.Compute(6000)
		api.AddU64(t0, 0, 100)
		t0.Unlock(m)
		t0.BarrierWait(bar)
		for _, h := range hs {
			t0.Join(h)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf, "golden"); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChromeTraceGolden asserts that a fixed simhost run exports
// bit-stable Chrome trace JSON: identical across repeated runs in this
// process, valid JSON, and byte-identical to the checked-in golden file.
// Regenerate the golden with:
//
//	go test ./internal/obs -run TestChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	got := observedRun(t)
	again := observedRun(t)
	if !bytes.Equal(got, again) {
		t.Fatal("two identical observed runs exported different trace bytes")
	}
	if !json.Valid(got) {
		t.Fatalf("exported trace is not valid JSON:\n%s", got)
	}

	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from golden file (len %d vs %d); rerun with -update if the format changed intentionally", len(got), len(want))
	}
}

// TestChromeTraceShape checks the structural contract the docs promise:
// one lane (thread_name metadata) per thread, at least four distinct span
// categories, and microsecond timestamps.
func TestChromeTraceShape(t *testing.T) {
	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Tid  int             `json:"tid"`
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(observedRun(t), &doc); err != nil {
		t.Fatal(err)
	}
	lanes := map[int]bool{}
	cats := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				lanes[e.Tid] = true
			}
		case "X":
			cats[e.Cat] = true
		}
	}
	if len(lanes) != 3 {
		t.Errorf("got %d thread lanes, want 3", len(lanes))
	}
	if len(cats) < 4 {
		t.Errorf("got %d span categories (%v), want >= 4", len(cats), cats)
	}
	for _, c := range []string{"compute", "token-wait", "commit"} {
		if !cats[c] {
			t.Errorf("category %q missing from trace (have %v)", c, cats)
		}
	}
}
