// Package obs is the runtime observability layer: a low-overhead metrics
// registry and a phase-resolved span timeline, exportable as Chrome
// trace-event JSON (chrome://tracing / Perfetto).
//
// The package answers the question the end-of-run aggregate statistics
// (api.RunStats) cannot: *where* a run spent its time. The paper's
// evaluation (§5, Figures 10–16) attributes time to token wait, commit,
// merge and compute per thread; the timeline here records exactly those
// categories as begin/end spans into per-thread ring buffers, so a run
// renders as one lane per thread in a trace viewer.
//
// Design constraints, in priority order:
//
//  1. A disabled observer must cost nothing. The runtime keeps a nil
//     observer (and nil per-thread lane) by default; every instrumentation
//     site is a single pointer nil-check on the fast path. Tier-1
//     determinism and benchmark results are byte-identical with the
//     observer attached or absent — the observer only *reads* clocks the
//     runtime already reads and appends to thread-private buffers; it
//     never feeds back into scheduling, arbitration or memory state.
//
//  2. Recording must not synchronize threads. Each thread writes spans
//     only to its own Lane (a fixed-capacity ring; oldest events are
//     dropped and counted when it overflows), and registry counters are
//     single atomic adds. Nothing recording-side takes a lock that another
//     recording thread contends.
//
//  3. Host-agnostic time. Spans carry whatever the host's clock returns:
//     virtual nanoseconds on simhost (so traces of simulated runs are
//     bit-reproducible), wall-clock nanoseconds on realhost.
//
// Typical use:
//
//	o := obs.New()
//	rt.SetObserver(o)          // before Run
//	rt.Run(prog)
//	o.WriteChromeTrace(w, "consequence-ic histogram")
//	for _, s := range o.Registry().Snapshot() { fmt.Println(s) }
package obs

import (
	"io"
	"sort"
	"sync"
)

// Phase classifies a span or marker on the timeline. The first
// NumTimePhases values are the mutually exclusive time categories every
// instant of a thread's execution falls into (the runtime's accounting
// boundaries); values after NumTimePhases are instantaneous markers.
type Phase uint8

// Time-category phases (span events). These refine the api.RunStats
// breakdown: Commit, Merge and SpecDiff together are RunStats.CommitNS;
// Fault and Prefetch together are RunStats.FaultNS; Lib, Spawn, Handoff
// and FastForward together are RunStats.LibNS.
const (
	// PhaseCompute is thread-local work: Compute instructions, memory
	// operations, and benchmark logic between runtime entry points.
	PhaseCompute Phase = iota
	// PhaseTokenWait is time blocked waiting for the global token in the
	// deterministic order (the paper's "determ. wait").
	PhaseTokenWait
	// PhaseBarrierWait is time parked at a barrier rendezvous after the
	// thread's own commit work is done.
	PhaseBarrierWait
	// PhaseCommit is the serial part of a Conversion commit/update: version
	// ordering, page publication, and pulling remote modifications.
	PhaseCommit
	// PhaseMerge is the page-merge part of a commit. Under the parallel
	// two-phase barrier (§4.2) it runs outside the token, overlapping
	// across arrivals — visible on the timeline as concurrent merge spans.
	PhaseMerge
	// PhaseFault is copy-on-write page-fault servicing.
	PhaseFault
	// PhaseLib is residual runtime-library overhead: clock reads and
	// counter-overflow interrupts. Token handoffs and thread fork/reuse
	// costs, which lived here through PR 5, are now attributed to
	// PhaseHandoff and PhaseSpawn; all four (with PhaseFastForward) fold
	// into RunStats.LibNS so the Figure 15 breakdown is unchanged.
	PhaseLib
	// PhaseSpecDiff is speculative pre-token diffing: commit diff work
	// hoisted off the serial token path into the window where the thread
	// is about to wait for the deterministic order, so it overlaps other
	// threads' token-held work. Folds into RunStats.CommitNS together with
	// Commit and Merge.
	PhaseSpecDiff
	// PhasePrefetch is predicted page pre-population
	// (mem.Workspace.Prepopulate): copy-on-write copies taken during a
	// token wait for the pages the write-set predictor expects the next
	// chunk to touch, so the chunk's faults are serviced off the serial
	// path. The fault-servicing analogue of PhaseSpecDiff; folds into
	// RunStats.FaultNS together with Fault.
	PhasePrefetch
	// PhaseSpawn is thread-creation cost on whichever thread pays it: the
	// fork/page-table-population charge on a fresh spawn, the free-list
	// pop + worker wake on a pooled spawn (spawner side), and the view
	// rebind + page pulls of the adopted worker's warm-up (worker side).
	// Splitting it out of PhaseLib lets the analyzer show how much of the
	// critical path is spawning — the quantity the worker pool attacks.
	// Folds into RunStats.LibNS.
	PhaseSpawn
	// PhaseHandoff is token-arbitration transfer cost: global token
	// handoffs, shard-local sub-token re-acquires, and the shard-clock
	// merges charged at cross-shard edges. Folds into RunStats.LibNS.
	PhaseHandoff
	// PhaseFastForward is the deferred counter-resync work a lazily
	// fast-forwarded thread performs when it actually takes the token
	// (§3.5, docs/scheduler.md). Folds into RunStats.LibNS.
	PhaseFastForward

	// NumTimePhases is the number of span (time-category) phases.
	NumTimePhases
)

// Instant-marker phases (zero-duration events).
const (
	// MarkCoarsenBegin records the decision to keep the token through the
	// next chunk (§3.1). Arg is the estimated chunk length (instructions).
	MarkCoarsenBegin Phase = NumTimePhases + 1 + iota
	// MarkCoarsenEnd records the end of a coarsened chunk. Arg is the
	// number of sync operations the chunk absorbed.
	MarkCoarsenEnd
	// MarkCommit records a completed commit+update. Arg is the number of
	// pages committed.
	MarkCommit
	// MarkLockBlock records a thread queueing on a held mutex (the blocking
	// path of the deterministic mutex_lock, §4.1). Arg is the mutex id. The
	// token-wait spans between this mark and the matching MarkLockAcquire
	// are contention on that mutex — the analyzer's per-lock attribution
	// (internal/obs/analyze) keys off this pairing.
	MarkLockBlock
	// MarkLockAcquire records a completed mutex acquisition. Arg is the
	// mutex id. Emitted for contended and uncontended acquisitions alike,
	// so per-mutex counts match det_lock_acquires.
	MarkLockAcquire
)

// phaseNames maps phases to their stable export names. These strings are
// part of the trace format (docs/observability.md documents them); do not
// reuse or renumber.
var phaseNames = map[Phase]string{
	PhaseCompute:     "compute",
	PhaseTokenWait:   "token-wait",
	PhaseBarrierWait: "barrier-wait",
	PhaseCommit:      "commit",
	PhaseMerge:       "merge",
	PhaseFault:       "fault",
	PhaseLib:         "lib",
	PhaseSpecDiff:    "spec-diff",
	PhasePrefetch:    "prefetch",
	PhaseSpawn:       "spawn",
	PhaseHandoff:     "handoff",
	PhaseFastForward: "fast-forward",
	MarkCoarsenBegin: "coarsen-begin",
	MarkCoarsenEnd:   "coarsen-end",
	MarkCommit:       "commit-mark",
	MarkLockBlock:    "lock-block",
	MarkLockAcquire:  "lock-acquire",
}

// String returns the phase's stable export name.
func (p Phase) String() string {
	if s, ok := phaseNames[p]; ok {
		return s
	}
	return "unknown"
}

// PhaseByName is the inverse of Phase.String: it resolves a stable export
// name back to its Phase. The trace analyzer uses it to reconstruct a
// timeline from exported Chrome trace JSON.
func PhaseByName(name string) (Phase, bool) {
	for p, s := range phaseNames {
		if s == name {
			return p, true
		}
	}
	return 0, false
}

// Instant reports whether p is an instantaneous marker rather than a time
// category.
func (p Phase) Instant() bool { return p > NumTimePhases }

// Observer bundles a metrics registry and a span timeline for one run.
// One Observer observes one Runtime; attach it before Run.
type Observer struct {
	reg *Registry

	mu      sync.Mutex
	lanes   map[int]*Lane
	laneCap int
}

// DefaultLaneCap is the default per-thread ring-buffer capacity, in
// events. At roughly 3–6 spans per synchronization operation this holds
// the full timeline of any tier-1 workload.
const DefaultLaneCap = 1 << 16

// Option configures an Observer.
type Option func(*Observer)

// WithLaneCap sets the per-thread ring capacity (events retained per
// lane). When a lane overflows, the oldest events are dropped and counted
// (Lane.Dropped).
func WithLaneCap(n int) Option {
	return func(o *Observer) {
		if n > 0 {
			o.laneCap = n
		}
	}
}

// New creates an empty Observer.
func New(opts ...Option) *Observer {
	o := &Observer{
		reg:     NewRegistry(),
		lanes:   make(map[int]*Lane),
		laneCap: DefaultLaneCap,
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Registry returns the observer's metrics registry.
func (o *Observer) Registry() *Registry { return o.reg }

// Lane returns (creating if needed) the span lane for thread tid. The
// returned lane must only be written by the thread that owns tid; the
// create-or-get itself is safe for concurrent use.
func (o *Observer) Lane(tid int) *Lane {
	o.mu.Lock()
	defer o.mu.Unlock()
	l, ok := o.lanes[tid]
	if !ok {
		l = newLane(tid, o.laneCap)
		o.lanes[tid] = l
		// Surface ring overflow in the metrics, per thread, so truncated
		// timelines are detectable without exporting the trace. Dropped is
		// an atomic read, safe to sample mid-run.
		o.reg.Func("obs_lane_dropped_total", l.Dropped, L("tid", tid))
	}
	return l
}

// Lanes returns all lanes in tid order. Call only after the observed run
// has finished (or from a quiesced runtime): lane contents are read
// without synchronization against their owning threads.
func (o *Observer) Lanes() []*Lane {
	o.mu.Lock()
	defer o.mu.Unlock()
	ls := make([]*Lane, 0, len(o.lanes))
	for _, l := range o.lanes {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].tid < ls[j].tid })
	return ls
}

// WriteChromeTrace exports the timeline (and a registry snapshot) as
// Chrome trace-event JSON. See chrometrace.go for the format contract.
func (o *Observer) WriteChromeTrace(w io.Writer, process string) error {
	return writeChromeTrace(w, o, process)
}
