package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/commitlog"
	"repro/internal/det"
	"repro/internal/journal"
	"repro/internal/obs"
)

func TestRunIsDeterministic(t *testing.T) {
	o := Options{Bench: "word_count", Runtime: KindConsequenceIC, Threads: 4, Scale: 1, Seed: 9}
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.WallNS != b.WallNS || a.Checksum != b.Checksum {
		t.Fatalf("harness runs differ: wall %d vs %d, sum %x vs %x",
			a.WallNS, b.WallNS, a.Checksum, b.Checksum)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{Bench: "nope", Runtime: KindPthreads, Threads: 2}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run(Options{Bench: "histogram", Runtime: "alien", Threads: 2}); err == nil {
		t.Error("unknown runtime accepted")
	}
	if _, err := Run(Options{Bench: "histogram", Runtime: KindPthreads}); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestBestOverPicksMinimum(t *testing.T) {
	o := Options{Bench: "histogram", Runtime: KindPthreads, Scale: 1, Seed: 1}
	best, err := BestOver(o, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []int{1, 2, 4} {
		oo := o
		oo.Threads = th
		r, err := Run(oo)
		if err != nil {
			t.Fatal(err)
		}
		if r.WallNS < best.WallNS {
			t.Fatalf("BestOver missed threads=%d (%d < %d)", th, r.WallNS, best.WallNS)
		}
	}
}

func TestRunAllPreservesOrderAndConcurrency(t *testing.T) {
	opts := []Options{
		{Bench: "histogram", Runtime: KindPthreads, Threads: 2, Seed: 1},
		{Bench: "swaptions", Runtime: KindPthreads, Threads: 2, Seed: 1},
		{Bench: "histogram", Runtime: KindConsequenceIC, Threads: 2, Seed: 1},
	}
	rs, err := RunAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	for i, r := range rs {
		if r.Opts.Bench != opts[i].Bench || r.Opts.Runtime != opts[i].Runtime {
			t.Errorf("result %d out of order: %+v", i, r.Opts)
		}
		if r.WallNS <= 0 {
			t.Errorf("result %d has no wall time", i)
		}
	}
}

func TestModifyAppliesToConsequenceOnly(t *testing.T) {
	called := false
	_, err := Run(Options{
		Bench: "swaptions", Runtime: KindConsequenceIC, Threads: 2, Seed: 1,
		Modify: func(c *det.Config) { called = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("Modify not applied to consequence runtime")
	}
	called = false
	if _, err := Run(Options{
		Bench: "swaptions", Runtime: KindDThreads, Threads: 2, Seed: 1,
		Modify: func(c *det.Config) { called = true },
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("Modify applied to a non-consequence runtime")
	}
}

// JournalPath must attach the divergence journal without changing the
// cell's result, write byte-identical journals for identical options,
// and refuse non-consequence runtimes.
func TestJournalPathOption(t *testing.T) {
	dir := t.TempDir()
	o := Options{Bench: "word_count", Runtime: KindConsequenceIC, Threads: 4, Scale: 1, Seed: 9}
	plain, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	oj := o
	oj.JournalPath = filepath.Join(dir, "a.csqj")
	a, err := Run(oj)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != plain.Checksum || a.WallNS != plain.WallNS {
		t.Fatalf("journaling perturbed the cell: sum %x vs %x, wall %d vs %d",
			a.Checksum, plain.Checksum, a.WallNS, plain.WallNS)
	}
	oj.JournalPath = filepath.Join(dir, "b.csqj")
	if _, err := Run(oj); err != nil {
		t.Fatal(err)
	}
	ba, _ := os.ReadFile(filepath.Join(dir, "a.csqj"))
	bb, _ := os.ReadFile(filepath.Join(dir, "b.csqj"))
	if len(ba) == 0 || !bytes.Equal(ba, bb) {
		t.Fatalf("identical cells wrote different journal bytes (%d vs %d)", len(ba), len(bb))
	}
	d, err := journal.Load(filepath.Join(dir, "a.csqj"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta["bench"] != "word_count" || d.Meta["threads"] != "4" {
		t.Fatalf("journal meta incomplete: %v", d.Meta)
	}
	if _, err := Run(Options{
		Bench: "histogram", Runtime: KindPthreads, Threads: 2,
		JournalPath: filepath.Join(dir, "p.csqj"),
	}); err == nil {
		t.Error("journaling accepted on a non-consequence runtime")
	}
}

// CommitLogDir must attach the persistent commit log without changing
// the cell's result, replay to the cell's exact checksum, and refuse
// non-consequence runtimes.
func TestCommitLogDirOption(t *testing.T) {
	o := Options{Bench: "word_count", Runtime: KindConsequenceIC, Threads: 4, Scale: 1, Seed: 9}
	plain, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	ol := o
	ol.CommitLogDir = filepath.Join(t.TempDir(), "clog")
	a, err := Run(ol)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != plain.Checksum || a.WallNS != plain.WallNS {
		t.Fatalf("commit logging perturbed the cell: sum %x vs %x, wall %d vs %d",
			a.Checksum, plain.Checksum, a.WallNS, plain.WallNS)
	}
	st, err := commitlog.Replay(ol.CommitLogDir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checksum() != plain.Checksum {
		t.Fatalf("replayed checksum %016x, cell %016x", st.Checksum(), plain.Checksum)
	}
	if st.Meta()["bench"] != "word_count" || st.Meta()["threads"] != "4" {
		t.Fatalf("commit log meta incomplete: %v", st.Meta())
	}
	if _, err := Run(Options{
		Bench: "histogram", Runtime: KindPthreads, Threads: 2,
		CommitLogDir: filepath.Join(t.TempDir(), "clog"),
	}); err == nil {
		t.Error("commit logging accepted on a non-consequence runtime")
	}
}

func TestWithLRCPopulatesPages(t *testing.T) {
	r, err := Run(Options{
		Bench: "word_count", Runtime: KindConsequenceIC, Threads: 4, Seed: 3, WithLRC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.LRCPages <= 0 {
		t.Error("LRC tracker recorded nothing")
	}
	if r.Stats.PulledPages <= 0 {
		t.Error("TSO propagation recorded nothing")
	}
}

// Small-sweep figure smoke tests: each figure function runs end to end and
// renders a non-empty table, deterministically.
func TestFiguresSmoke(t *testing.T) {
	s := Sweep{Threads: []int{2, 4}, Scale: 1, Seed: 5}
	t.Run("fig13", func(t *testing.T) {
		t.Parallel()
		data, text, err := Fig13(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != len(Fig13Benches) || !strings.Contains(text, "adaptive-coarsening") {
			t.Error("fig13 incomplete")
		}
	})
	t.Run("fig14", func(t *testing.T) {
		t.Parallel()
		data, _, err := Fig14(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, bench := range []string{"reverse_index", "ferret"} {
			if data[bench]["adaptive"] <= 0 {
				t.Errorf("%s missing adaptive point", bench)
			}
		}
	})
	t.Run("fig15", func(t *testing.T) {
		t.Parallel()
		data, _, err := Fig15(s)
		if err != nil {
			t.Fatal(err)
		}
		// ferret must be split.
		if _, ok := data["ferret_1"]; !ok {
			t.Error("ferret_1 breakdown missing")
		}
		if _, ok := data["ferret_n"]; !ok {
			t.Error("ferret_n breakdown missing")
		}
		for label, byKind := range data {
			for kind, b := range byKind {
				sum := b.Local + b.DetermWait + b.BarrierWait + b.Commit + b.Fault + b.Lib
				if sum < 0.99 || sum > 1.01 {
					t.Errorf("%s/%s breakdown sums to %f", label, kind, sum)
				}
			}
		}
	})
	t.Run("fig16", func(t *testing.T) {
		t.Parallel()
		rows, _, err := Fig16(s, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Error("no benchmarks qualified for fig16")
		}
		for _, r := range rows {
			if r.TSOPages <= 0 || r.LRCPages < 0 {
				t.Errorf("%s: bad page counts %+v", r.Bench, r)
			}
		}
	})
}

func TestFig10SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	rows, text, err := Fig10(Sweep{Threads: []int{2}, Scale: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("fig10 has %d rows, want 19", len(rows))
	}
	for _, r := range rows {
		for k, s := range r.Slowdown {
			if s < 0.5 {
				t.Errorf("%s/%s: deterministic runtime faster than half pthreads (%f) — model broken?", r.Bench, k, s)
			}
		}
	}
	if !strings.Contains(text, "five hardest") {
		t.Error("fig10 summary missing")
	}
}

// Replicas must attach a live replica fleet without changing the cell's
// result, pass the follower-checksum determinism gate (including under
// follower chaos), export replica metrics into the cell's observer, and
// refuse to run without a commit log.
func TestReplicasOption(t *testing.T) {
	o := Options{Bench: "word_count", Runtime: KindConsequenceIC, Threads: 4, Scale: 1, Seed: 9}
	plain, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.New()
	or := o
	or.CommitLogDir = filepath.Join(t.TempDir(), "clog")
	or.Replicas = 2
	or.Observer = ob
	a, err := Run(or)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != plain.Checksum || a.WallNS != plain.WallNS {
		t.Fatalf("replica fleet perturbed the cell: sum %x vs %x, wall %d vs %d",
			a.Checksum, plain.Checksum, a.WallNS, plain.WallNS)
	}
	if a.Replica == nil {
		t.Fatal("Result.Replica not populated")
	}
	if a.Replica.Followers != 2 { // serving only; the archive is not counted
		t.Fatalf("fleet had %d serving followers, want 2", a.Replica.Followers)
	}
	found := false
	for _, s := range ob.Registry().Snapshot() {
		if s.Name == "replica_lag" {
			found = true
		}
	}
	if !found {
		t.Error("replica_lag missing from the cell observer's registry")
	}

	oc := o
	oc.CommitLogDir = filepath.Join(t.TempDir(), "clog-chaos")
	oc.Replicas = 2
	oc.Chaos = "follower-kill:3"
	c, err := Run(oc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Checksum != plain.Checksum {
		t.Fatalf("follower chaos perturbed the cell checksum: %x vs %x", c.Checksum, plain.Checksum)
	}

	if _, err := Run(Options{
		Bench: "histogram", Runtime: KindConsequenceIC, Threads: 2, Replicas: 1,
	}); err == nil {
		t.Error("replicas accepted without a commit log")
	}
}
