package harness

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// CellName is the canonical process description for one observed cell —
// the string traces are exported under and analysis reports are headed
// with.
func CellName(o Options) string {
	return fmt.Sprintf("%s %s t=%d scale=%d seed=%d", o.Runtime, o.Bench, o.Threads, o.Scale, o.Seed)
}

// AnalyzeCell runs one cell with a fresh Observer attached and returns the
// run result, the observer (for trace export), and the critical-path
// analysis report. The observer never changes the cell's result (the
// Options.Observer contract); analysis is post-hoc.
func AnalyzeCell(o Options) (Result, *obs.Observer, *analyze.Report, error) {
	ob := obs.New()
	o.Observer = ob
	res, err := Run(o)
	if err != nil {
		return res, nil, nil, err
	}
	rep, err := analyze.Analyze(analyze.FromObserver(ob, CellName(o)))
	if err != nil {
		return res, ob, nil, err
	}
	return res, ob, rep, nil
}
