package harness

import (
	"fmt"

	"repro/internal/det"
	"repro/internal/obs"
)

// Supplementary studies beyond the paper's numbered figures: ablations of
// design choices the paper argues qualitatively (blocking vs polling
// mutexes, the §2.7 chunk limit, the single-threaded collector budget).
// Regenerate with `consequence-bench -table <name>`.

// TablePolling compares the paper's blocking deterministic mutex against
// the Kendo-style polling acquisition it replaces (§4.1), across the
// lock-heavy benchmarks. Polling is swept over Kendo's tuning knob (the
// clock bump per failed attempt) plus the self-tuning nudge (bump 0).
func TablePolling(s Sweep) (map[string]map[string]int64, string, error) {
	const threads = 8
	benches := []string{"reverse_index", "word_count", "water_nsquared", "dedup"}
	bumps := []int64{0, 1_000, 10_000, 100_000}
	data := map[string]map[string]int64{}
	var rows [][]string
	for _, bench := range benches {
		data[bench] = map[string]int64{}
		blocking, err := Run(Options{Bench: bench, Runtime: KindConsequenceIC, Threads: threads, Scale: s.Scale, Seed: s.Seed})
		if err != nil {
			return nil, "", err
		}
		data[bench]["blocking"] = blocking.WallNS
		line := []string{bench, ms(blocking.WallNS)}
		for _, bump := range bumps {
			bump := bump
			r, err := Run(Options{
				Bench: bench, Runtime: KindConsequenceIC, Threads: threads,
				Scale: s.Scale, Seed: s.Seed,
				Modify: func(c *det.Config) {
					c.PollingMutex = true
					c.PollingBump = bump
				},
			})
			if err != nil {
				return nil, "", err
			}
			key := fmt.Sprintf("polling-%d", bump)
			data[bench][key] = r.WallNS
			line = append(line, ms(r.WallNS))
		}
		rows = append(rows, line)
	}
	header := []string{"benchmark", "blocking"}
	for _, bump := range bumps {
		if bump == 0 {
			header = append(header, "poll-nudge")
		} else {
			header = append(header, fmt.Sprintf("poll-%d", bump))
		}
	}
	text := "Blocking vs Kendo-style polling mutexes (ms, 8 threads, lower is better)\n" +
		renderTable(header, rows)
	return data, text, nil
}

// TableChunkLimit sweeps the §2.7 ad-hoc-synchronization chunk limit: the
// forced periodic commits tax programs that do not need them — the reason
// the paper evaluates with the mechanism disabled.
func TableChunkLimit(s Sweep) (map[string]map[string]int64, string, error) {
	const threads = 8
	benches := []string{"string_match", "swaptions", "canneal", "reverse_index"}
	limits := []int64{0, 10_000_000, 1_000_000, 100_000, 20_000}
	data := map[string]map[string]int64{}
	var rows [][]string
	for _, bench := range benches {
		data[bench] = map[string]int64{}
		line := []string{bench}
		for _, limit := range limits {
			limit := limit
			r, err := Run(Options{
				Bench: bench, Runtime: KindConsequenceIC, Threads: threads,
				Scale: s.Scale, Seed: s.Seed,
				Modify: func(c *det.Config) { c.ChunkLimit = limit },
			})
			if err != nil {
				return nil, "", err
			}
			key := fmt.Sprintf("limit-%d", limit)
			data[bench][key] = r.WallNS
			line = append(line, ms(r.WallNS))
		}
		rows = append(rows, line)
	}
	header := []string{"benchmark"}
	for _, limit := range limits {
		if limit == 0 {
			header = append(header, "disabled")
		} else {
			header = append(header, fmt.Sprintf("%d", limit))
		}
	}
	text := "Ad-hoc synchronization chunk limit sweep (ms, 8 threads; §2.7 — lower limits mean more forced commits)\n" +
		renderTable(header, rows)
	return data, text, nil
}

// TablePageSize sweeps the isolation granularity: smaller pages mean more
// copy-on-write faults but less false sharing (fewer byte-granularity
// merges and less propagation); larger pages amortize faults but inflate
// conflicts. The paper inherits the hardware's 4 KiB; the substrate here
// makes the trade-off measurable.
func TablePageSize(s Sweep) (map[string]map[string]int64, string, error) {
	const threads = 8
	benches := []string{"canneal", "lu_ncb", "ocean_cp", "word_count"}
	sizes := []int{1024, 4096, 16384}
	data := map[string]map[string]int64{}
	var rows [][]string
	for _, bench := range benches {
		data[bench] = map[string]int64{}
		line := []string{bench}
		for _, size := range sizes {
			size := size
			r, err := Run(Options{
				Bench: bench, Runtime: KindConsequenceIC, Threads: threads,
				Scale: s.Scale, Seed: s.Seed,
				Modify: func(c *det.Config) { c.PageSize = size },
			})
			if err != nil {
				return nil, "", err
			}
			key := fmt.Sprintf("page-%d", size)
			data[bench][key] = r.WallNS
			line = append(line, fmt.Sprintf("%s (%d merged, %d faults)",
				ms(r.WallNS), r.Stats.MergedPages, r.Stats.Faults))
		}
		rows = append(rows, line)
	}
	header := []string{"benchmark"}
	for _, size := range sizes {
		header = append(header, fmt.Sprintf("%dB pages", size))
	}
	text := "Isolation granularity: runtime (ms) with merged-page and fault counts vs page size (8 threads)\n" +
		renderTable(header, rows)
	return data, text, nil
}

// TableLRC runs the deterministic-LRC runtime (internal/baseline/rfdet)
// against Consequence-IC — the comparison the paper's footnote 5 could
// not make. §6 predicts LRC helps exactly the fine-grained-locking
// programs (commits become per-object, point-to-point) and §2.3 predicts
// it costs space; both columns are here.
func TableLRC(s Sweep) (map[string]map[string]int64, string, error) {
	benches := []string{"reverse_index", "word_count", "water_nsquared", "dedup", "ferret", "canneal", "ocean_cp"}
	data := map[string]map[string]int64{}
	var rows [][]string
	for _, bench := range benches {
		data[bench] = map[string]int64{}
		line := []string{bench}
		for _, th := range []int{8, 32} {
			tso, err := Run(Options{Bench: bench, Runtime: KindConsequenceIC, Threads: th, Scale: s.Scale, Seed: s.Seed})
			if err != nil {
				return nil, "", err
			}
			lrc, err := Run(Options{Bench: bench, Runtime: KindRFDet, Threads: th, Scale: s.Scale, Seed: s.Seed})
			if err != nil {
				return nil, "", err
			}
			data[bench][fmt.Sprintf("tso-%d", th)] = tso.WallNS
			data[bench][fmt.Sprintf("lrc-%d", th)] = lrc.WallNS
			line = append(line, ms(tso.WallNS), ms(lrc.WallNS),
				fmt.Sprintf("%.2fx", float64(tso.WallNS)/float64(lrc.WallNS)),
				fmt.Sprint(lrc.Stats.PeakPages))
		}
		rows = append(rows, line)
	}
	header := []string{"benchmark",
		"tso@8(ms)", "lrc@8(ms)", "tso/lrc@8", "lrc-retained@8(pg)",
		"tso@32(ms)", "lrc@32(ms)", "tso/lrc@32", "lrc-retained@32(pg)"}
	text := "TSO (Consequence-IC) vs an actual deterministic-LRC runtime (rfdet); ratios > 1 mean LRC wins\n" +
		renderTable(header, rows)
	return data, text, nil
}

// TablePrefetch ablates write-set prediction (internal/predict): per-site
// page prefetch overlapped with the token wait. Results are identical
// either way — scripts/check.sh asserts the checksums and sync traces
// byte-for-byte — so the interesting columns are the wall-time delta and
// how well the last-value predictor covers the fault stream (hits vs
// misses vs prefetched-but-unwritten pages).
func TablePrefetch(s Sweep) (map[string]map[string]int64, string, error) {
	const threads = 8
	benches := []string{"canneal", "water_nsquared", "kmeans", "histogram", "ocean_cp", "dedup"}
	data := map[string]map[string]int64{}
	var rows [][]string
	for _, bench := range benches {
		off, err := Run(Options{
			Bench: bench, Runtime: KindConsequenceIC, Threads: threads,
			Scale: s.Scale, Seed: s.Seed,
			Modify: func(c *det.Config) { c.WriteSetPrediction = false },
		})
		if err != nil {
			return nil, "", err
		}
		on, err := Run(Options{Bench: bench, Runtime: KindConsequenceIC, Threads: threads, Scale: s.Scale, Seed: s.Seed})
		if err != nil {
			return nil, "", err
		}
		st := on.Stats
		data[bench] = map[string]int64{
			"off":    off.WallNS,
			"on":     on.WallNS,
			"hits":   st.PrefetchHits,
			"misses": st.PrefetchMisses,
			"wasted": st.PrefetchWasted,
		}
		covered := ""
		if tot := st.PrefetchHits + st.PrefetchMisses; tot > 0 {
			covered = fmt.Sprintf("%.1f%%", 100*float64(st.PrefetchHits)/float64(tot))
		}
		rows = append(rows, []string{bench, ms(off.WallNS), ms(on.WallNS),
			fmt.Sprintf("%.2fx", float64(off.WallNS)/float64(on.WallNS)),
			fmt.Sprint(st.PrefetchHits), fmt.Sprint(st.PrefetchMisses),
			fmt.Sprint(st.PrefetchWasted), covered})
	}
	header := []string{"benchmark", "off(ms)", "on(ms)", "off/on", "hits", "misses", "wasted", "coverage"}
	text := "Write-set prediction ablation (8 threads; hits = writes landing on prefetched pages, coverage = hits/(hits+misses))\n" +
		renderTable(header, rows)
	return data, text, nil
}

// TableShards sweeps the scheduler scale-out trio (docs/scheduler.md):
// sharded token arbitration with the worker pool and lazy fast-forward,
// against the legacy single-token scheduler. Results are identical at
// every shard count — scripts/check.sh pins the checksums and sync traces
// byte-for-byte — so the interesting columns are the wall-time speedup
// and how many sub-token grants stayed shard-local (the cheap re-acquire
// path that never crosses threads).
func TableShards(s Sweep) (map[string]map[string]int64, string, error) {
	const threads = 8
	benches := []string{"kmeans", "water_nsquared", "canneal", "histogram", "dedup", "ferret"}
	shardCounts := []int{2, 4, 8}
	data := map[string]map[string]int64{}
	var rows [][]string
	for _, bench := range benches {
		base, err := Run(Options{Bench: bench, Runtime: KindConsequenceIC, Threads: threads, Scale: s.Scale, Seed: s.Seed})
		if err != nil {
			return nil, "", err
		}
		data[bench] = map[string]int64{"shards1": base.WallNS}
		line := []string{bench, ms(base.WallNS)}
		for _, n := range shardCounts {
			// A fresh observer per cell: attaching never changes the result,
			// and the clock_shard_* gauges read this run's arbiter alone.
			o := obs.New()
			res, err := Run(Options{
				Bench: bench, Runtime: KindConsequenceIC, Threads: threads,
				Scale: s.Scale, Seed: s.Seed, Shards: n, Observer: o,
			})
			if err != nil {
				return nil, "", err
			}
			if res.Checksum != base.Checksum {
				return nil, "", fmt.Errorf("harness: %s checksum diverged at %d shards: %x vs %x",
					bench, n, res.Checksum, base.Checksum)
			}
			locals, transfers := shardCounters(o)
			data[bench][fmt.Sprintf("shards%d", n)] = res.WallNS
			data[bench][fmt.Sprintf("locals%d", n)] = locals
			data[bench][fmt.Sprintf("transfers%d", n)] = transfers
			local := "-"
			if tot := locals + transfers; tot > 0 {
				local = fmt.Sprintf("%.1f%%", 100*float64(locals)/float64(tot))
			}
			line = append(line, ms(res.WallNS),
				fmt.Sprintf("%.2fx", float64(base.WallNS)/float64(res.WallNS)), local)
		}
		rows = append(rows, line)
	}
	header := []string{"benchmark", "1(ms)",
		"2(ms)", "x", "local", "4(ms)", "x", "local", "8(ms)", "x", "local"}
	text := "Scheduler scale-out sweep (8 threads; shards >= 2 also enables the worker pool and lazy fast-forward; x = speedup vs the legacy single-token scheduler; local = shard-local re-acquires / (re-acquires + cross-shard transfers))\n" +
		renderTable(header, rows)
	return data, text, nil
}

// shardCounters reads the sharded arbiter's sub-token traffic split from
// an observer attached to one finished cell: grants that stayed on the
// cheap shard-local re-acquire path vs grants that crossed shards.
func shardCounters(o *obs.Observer) (locals, transfers int64) {
	for _, s := range o.Registry().Snapshot() {
		switch s.Name {
		case "clock_shard_local_reacquires":
			locals = s.Value
		case "clock_shard_transfers":
			transfers = s.Value
		}
	}
	return locals, transfers
}

// Tables maps table names to their generators (the -table CLI flag).
var Tables = map[string]func(Sweep) (map[string]map[string]int64, string, error){
	"polling":    TablePolling,
	"chunklimit": TableChunkLimit,
	"pagesize":   TablePageSize,
	"lrc":        TableLRC,
	"prefetch":   TablePrefetch,
	"shards":     TableShards,
}
