// Package harness runs the paper's evaluation grid: (benchmark × runtime ×
// thread count × configuration) on the simulation host, and renders each
// of the evaluation section's figures (10–16) as a table. Every cell is a
// deterministic function of the options, so regenerated figures are
// bit-stable.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/baseline/dthreads"
	"repro/internal/baseline/dwc"
	"repro/internal/baseline/pth"
	"repro/internal/baseline/rfdet"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/commitlog"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/simhost"
	"repro/internal/journal"
	"repro/internal/lrc"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/workload"
)

// Kind names a runtime under test.
type Kind string

// The five runtimes of the paper's evaluation, plus the deterministic-LRC
// runtime the paper could only estimate (§5.3 footnote 5).
const (
	KindConsequenceIC Kind = "consequence-ic"
	KindConsequenceRR Kind = "consequence-rr"
	KindDThreads      Kind = "dthreads"
	KindDWC           Kind = "dwc"
	KindPthreads      Kind = "pthreads"
	KindRFDet         Kind = "rfdet-lrc"
)

// DetKinds are the deterministic runtimes compared in Figure 10.
var DetKinds = []Kind{KindConsequenceIC, KindConsequenceRR, KindDThreads, KindDWC}

// Options selects one run.
type Options struct {
	Bench   string
	Runtime Kind
	Threads int
	Scale   int
	Seed    int64
	// Shards, when >= 2, applies the scheduler scale-out set
	// (det.Config.EnableScaleOut): sharded token arbitration with
	// per-shard granting authority (docs/scheduler.md stage 2) plus the
	// worker pool pre-spawned to Threads and lazy fast-forward. Consequence
	// runtimes only; the cell's checksum is unchanged by construction.
	Shards int
	// Modify tweaks the det configuration (ablations, coarsening sweeps);
	// it runs after Shards is applied, so it can override the trio.
	// Only honoured by the Consequence runtimes.
	Modify func(*det.Config)
	// WithLRC attaches the happens-before propagation tracker
	// (Consequence runtimes only).
	WithLRC bool
	// Observer, when non-nil, is attached to the run so the cell records
	// a phase timeline and metrics (Consequence runtimes only). Use a
	// fresh Observer per cell; attaching never changes the cell's result.
	Observer *obs.Observer
	// Chaos, when non-empty, arms seeded fault injection for the cell: a
	// "profile[:seed]" spec (see internal/chaos). Consequence runtimes
	// only; a fresh injector is built per run, so identical options replay
	// identically — and the cell's checksum is unchanged by construction.
	Chaos string
	// JournalPath, when non-empty, writes the run's divergence journal
	// (internal/journal: every sync event, interval hash checkpoints, and
	// each commit's page hashes) to this file. Consequence runtimes only.
	// Journaling is observation off the token critical path: the cell's
	// checksum and sync trace are identical with it on or off, and two
	// identical cells write byte-identical journals — scripts/check.sh
	// asserts both.
	JournalPath string
	// CommitLogDir, when non-empty, writes the run's persistent commit log
	// (internal/commitlog: every committed version's page diffs in a
	// segmented, CRC-framed on-disk log) into this directory, which must be
	// empty. Consequence runtimes only. Like journaling, logging is
	// observation off the token critical path: the cell's checksum and sync
	// trace are identical with it on or off, identical cells write
	// byte-identical logs, and conseq-replay reconstructs the cell's final
	// state from the directory — scripts/check.sh gates all three.
	CommitLogDir string
	// Replicas, when >= 1, starts a supervised replica fleet
	// (internal/replica) of that many serving followers plus a
	// chaos-exempt archive, all tailing the commit log live. Requires
	// CommitLogDir. After the run the harness waits for the fleet to
	// catch up and verifies every follower's checksum against the
	// runtime's — the replication determinism gate. The fleet shares the
	// cell's chaos injector, so follower-kill/stall/tear profiles reach
	// it, and its metrics land in the Observer's registry when one is
	// attached; the cell's own checksum is unchanged by construction.
	Replicas int
}

// Result is one run's outcome.
type Result struct {
	Opts     Options
	WallNS   int64
	Stats    api.RunStats
	Checksum uint64
	LRCPages int64
	// Replica carries the fleet's counters when Options.Replicas was set.
	Replica *replica.FleetStats
}

// Run executes one configuration on a fresh simulation host. (Named
// results so the deferred journal close can surface its error.)
func Run(o Options) (res Result, retErr error) {
	spec, err := workload.ByName(o.Bench)
	if err != nil {
		return Result{}, err
	}
	if o.Threads <= 0 {
		return Result{}, fmt.Errorf("harness: threads must be positive")
	}
	p := workload.Params{Threads: o.Threads, Scale: o.Scale, Seed: o.Seed}
	segSize := spec.SegmentSize(p)
	model := costmodel.Default()
	h := simhost.New(model)
	if o.Chaos != "" && o.Runtime != KindConsequenceIC && o.Runtime != KindConsequenceRR {
		return Result{}, fmt.Errorf("harness: chaos injection requires a consequence runtime (got %s)", o.Runtime)
	}
	if o.JournalPath != "" && o.Runtime != KindConsequenceIC && o.Runtime != KindConsequenceRR {
		return Result{}, fmt.Errorf("harness: journaling requires a consequence runtime (got %s)", o.Runtime)
	}
	if o.CommitLogDir != "" && o.Runtime != KindConsequenceIC && o.Runtime != KindConsequenceRR {
		return Result{}, fmt.Errorf("harness: commit logging requires a consequence runtime (got %s)", o.Runtime)
	}
	if o.Replicas > 0 && o.CommitLogDir == "" {
		return Result{}, fmt.Errorf("harness: replicas require a commit log (set CommitLogDir)")
	}

	var rt api.Runtime
	var tracker *lrc.Tracker
	var cl *commitlog.Log
	var fl *replica.Fleet
	switch o.Runtime {
	case KindConsequenceIC, KindConsequenceRR:
		c := det.Default()
		if o.Runtime == KindConsequenceRR {
			c.Policy = clock.PolicyRR
		}
		c.SegmentSize = segSize
		c.Model = model
		if o.Chaos != "" {
			in, err := chaos.Parse(o.Chaos)
			if err != nil {
				return Result{}, err
			}
			c.Chaos = in
		}
		c.EnableScaleOut(o.Shards, o.Threads)
		if o.Modify != nil {
			o.Modify(&c)
		}
		drt, err := det.New(c, h)
		if err != nil {
			return Result{}, err
		}
		if o.WithLRC {
			tracker = lrc.New()
			drt.SetHooks(tracker)
		}
		if o.Observer != nil {
			drt.SetObserver(o.Observer)
		}
		if o.JournalPath != "" {
			jw, err := journal.Create(o.JournalPath, map[string]string{
				"bench":   o.Bench,
				"runtime": string(o.Runtime),
				"threads": fmt.Sprint(o.Threads),
				"scale":   fmt.Sprint(o.Scale),
				"seed":    fmt.Sprint(o.Seed),
				"shards":  fmt.Sprint(max(o.Shards, 1)),
				// Grant mode matters when diffing journals: per-shard
				// granting orders events differently from stage 1.
				"shard-grants": fmt.Sprint(o.Shards >= 2),
			})
			if err != nil {
				return Result{}, err
			}
			drt.SetJournal(jw)
			defer func() {
				if cerr := jw.Close(); cerr != nil && retErr == nil {
					retErr = fmt.Errorf("harness: closing journal: %w", cerr)
				}
			}()
		}
		if o.CommitLogDir != "" {
			cl, err = commitlog.Create(o.CommitLogDir, commitlog.Options{
				Meta: map[string]string{
					"bench":        o.Bench,
					"runtime":      string(o.Runtime),
					"threads":      fmt.Sprint(o.Threads),
					"scale":        fmt.Sprint(o.Scale),
					"seed":         fmt.Sprint(o.Seed),
					"shards":       fmt.Sprint(max(o.Shards, 1)),
					"shard-grants": fmt.Sprint(o.Shards >= 2),
				},
			})
			if err != nil {
				return Result{}, err
			}
			if err := drt.SetCommitLog(cl); err != nil {
				return Result{}, err
			}
			// Like the journal close: a deferred-close write error must
			// surface as the cell's error, not vanish.
			defer func() {
				if cerr := cl.Close(); cerr != nil && retErr == nil {
					retErr = fmt.Errorf("harness: closing commit log: %w", cerr)
				}
			}()
			if o.Replicas > 0 {
				// Fleet metrics go to the observer's registry when one is
				// attached, so AnalyzeCell picks up the replication section.
				reg := obs.NewRegistry()
				if o.Observer != nil {
					reg = o.Observer.Registry()
				}
				fl = replica.New(o.CommitLogDir, cl, replica.Options{
					Followers:         o.Replicas,
					Archive:           true,
					Seed:              o.Seed,
					Chaos:             c.Chaos,
					Registry:          reg,
					SnapshotOnRestart: true,
				})
				if err := fl.Start(); err != nil {
					return Result{}, err
				}
				defer fl.Close()
			}
		}
		rt = drt
	case KindDThreads:
		rt, err = dthreads.New(dthreads.Config{SegmentSize: segSize, Model: model}, h)
	case KindDWC:
		rt, err = dwc.New(dwc.Config{SegmentSize: segSize, Model: model}, h)
	case KindPthreads:
		rt, err = pth.New(pth.Config{SegmentSize: segSize, Model: model}, h)
	case KindRFDet:
		rt, err = rfdet.New(rfdet.Config{SegmentSize: segSize, Model: model}, h)
	default:
		return Result{}, fmt.Errorf("harness: unknown runtime %q", o.Runtime)
	}
	if err != nil {
		return Result{}, err
	}
	if err := rt.Run(spec.Prog(p)); err != nil {
		return Result{}, fmt.Errorf("%s on %s (t=%d): %w", o.Bench, o.Runtime, o.Threads, err)
	}
	if fl != nil {
		// The replication determinism gate: every follower — whatever
		// chaos its feed absorbed — must converge to the runtime's exact
		// final state.
		if err := fl.WaitCaughtUp(cl.Stats().LastVersion, 60*time.Second); err != nil {
			return Result{}, fmt.Errorf("harness: replica fleet: %w", err)
		}
		for i, f := range fl.Followers() {
			if got := f.Checksum(); got != rt.Checksum() {
				return Result{}, fmt.Errorf("harness: follower %d checksum %016x != runtime checksum %016x", i, got, rt.Checksum())
			}
		}
	}
	res = Result{
		Opts:     o,
		Stats:    rt.Stats(),
		Checksum: rt.Checksum(),
	}
	res.WallNS = res.Stats.WallNS
	if tracker != nil {
		res.LRCPages = tracker.LRCPages()
	}
	if fl != nil {
		st := fl.Stats()
		res.Replica = &st
	}
	return res, nil
}

// RunAll executes a batch of options concurrently (each run is an
// independent deterministic simulation) and returns results in input
// order. The first error aborts the batch.
func RunAll(opts []Options) ([]Result, error) {
	results := make([]Result, len(opts))
	errs := make([]error, len(opts))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = Run(opts[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// BestOver runs o across the given thread counts and returns the result
// with the lowest wall time (the paper's Figure 10 methodology: "we
// measured the performance using 2–32 threads, and retained the
// corresponding best result").
func BestOver(o Options, threads []int) (Result, error) {
	var opts []Options
	for _, th := range threads {
		oo := o
		oo.Threads = th
		opts = append(opts, oo)
	}
	rs, err := RunAll(opts)
	if err != nil {
		return Result{}, err
	}
	best := rs[0]
	for _, r := range rs[1:] {
		if r.WallNS < best.WallNS {
			best = r
		}
	}
	return best, nil
}
