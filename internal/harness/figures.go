package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/det"
	"repro/internal/workload"
)

// Sweep configures a figure regeneration.
type Sweep struct {
	// Threads is the thread-count axis (Figure 10 takes the best over it).
	Threads []int
	Scale   int
	Seed    int64
}

// DefaultSweep mirrors the paper's 2–32 thread sweep.
func DefaultSweep() Sweep {
	return Sweep{Threads: []int{2, 4, 8, 16, 32}, Scale: 1, Seed: 42}
}

func (s Sweep) threads() []int {
	if len(s.Threads) == 0 {
		return []int{2, 4, 8}
	}
	return s.Threads
}

func renderTable(header []string, rows [][]string) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	return b.String()
}

func ms(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e6) }

// Fig10Row is one benchmark's normalized best-runtime slowdowns.
type Fig10Row struct {
	Bench    string
	PthNS    int64
	Slowdown map[Kind]float64 // best runtime / best pthreads
}

// Fig10 reproduces Figure 10: best runtime over the thread sweep for each
// deterministic runtime, normalized to the best pthreads runtime.
func Fig10(s Sweep) ([]Fig10Row, string, error) {
	var rows []Fig10Row
	for _, spec := range workload.All() {
		base := Options{Bench: spec.Name, Scale: s.Scale, Seed: s.Seed}
		bp := base
		bp.Runtime = KindPthreads
		pb, err := BestOver(bp, s.threads())
		if err != nil {
			return nil, "", err
		}
		row := Fig10Row{Bench: spec.Name, PthNS: pb.WallNS, Slowdown: map[Kind]float64{}}
		for _, k := range DetKinds {
			bo := base
			bo.Runtime = k
			rb, err := BestOver(bo, s.threads())
			if err != nil {
				return nil, "", err
			}
			row.Slowdown[k] = float64(rb.WallNS) / float64(pb.WallNS)
		}
		rows = append(rows, row)
	}

	var out [][]string
	maxByKind := map[Kind]float64{}
	for _, r := range rows {
		line := []string{r.Bench, ms(r.PthNS)}
		for _, k := range DetKinds {
			line = append(line, fmt.Sprintf("%.2fx", r.Slowdown[k]))
			if r.Slowdown[k] > maxByKind[k] {
				maxByKind[k] = r.Slowdown[k]
			}
		}
		out = append(out, line)
	}
	header := []string{"benchmark", "pth(ms)"}
	for _, k := range DetKinds {
		header = append(header, string(k))
	}
	text := "Figure 10: best runtime normalized to best pthreads (lower is better)\n" +
		renderTable(header, out)
	text += "max slowdown:"
	for _, k := range DetKinds {
		text += fmt.Sprintf("  %s=%.2fx", k, maxByKind[k])
	}
	text += "\n"

	// The paper's headline: Consequence-IC improvement over DThreads and
	// DWC on the five most challenging benchmarks (highest Consequence-IC
	// slowdowns).
	sorted := append([]Fig10Row(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Slowdown[KindConsequenceIC] > sorted[j].Slowdown[KindConsequenceIC]
	})
	hard := sorted[:5]
	gm := func(k Kind) float64 {
		prod := 1.0
		for _, r := range hard {
			prod *= r.Slowdown[k] / r.Slowdown[KindConsequenceIC]
		}
		return math.Pow(prod, 1.0/float64(len(hard)))
	}
	var names []string
	for _, r := range hard {
		names = append(names, r.Bench)
	}
	text += fmt.Sprintf("five hardest (%s): consequence-ic is %.1fx better than dthreads, %.1fx better than dwc\n",
		strings.Join(names, ", "), gm(KindDThreads), gm(KindDWC))
	return rows, text, nil
}

// Fig11Benches are the six benchmarks whose thread scaling Figure 11
// examines (the DThreads/DWC collapse cases).
var Fig11Benches = []string{"ocean_cp", "lu_ncb", "ferret", "kmeans", "water_nsquared", "canneal"}

// Fig11 reproduces Figure 11: runtime vs thread count.
func Fig11(s Sweep) (map[string]map[int]map[Kind]int64, string, error) {
	kinds := append([]Kind{KindPthreads}, DetKinds...)
	data := map[string]map[int]map[Kind]int64{}
	text := "Figure 11: runtime (ms) vs thread count\n"
	for _, bench := range Fig11Benches {
		data[bench] = map[int]map[Kind]int64{}
		var rows [][]string
		for _, th := range s.threads() {
			data[bench][th] = map[Kind]int64{}
			line := []string{fmt.Sprint(th)}
			var opts []Options
			for _, k := range kinds {
				opts = append(opts, Options{Bench: bench, Runtime: k, Threads: th, Scale: s.Scale, Seed: s.Seed})
			}
			rs, err := RunAll(opts)
			if err != nil {
				return nil, "", err
			}
			for i, k := range kinds {
				data[bench][th][k] = rs[i].WallNS
				line = append(line, ms(rs[i].WallNS))
			}
			rows = append(rows, line)
		}
		header := []string{"threads"}
		for _, k := range kinds {
			header = append(header, string(k))
		}
		text += "\n" + bench + ":\n" + renderTable(header, rows)
	}
	return data, text, nil
}

// Fig12 reproduces Figure 12: peak memory (pages) vs thread count for
// Consequence and DThreads.
func Fig12(s Sweep) (map[string]map[int]map[Kind]int64, string, error) {
	kinds := []Kind{KindConsequenceIC, KindDThreads}
	data := map[string]map[int]map[Kind]int64{}
	text := "Figure 12: peak memory pages vs thread count\n"
	for _, spec := range workload.All() {
		bench := spec.Name
		data[bench] = map[int]map[Kind]int64{}
		var rows [][]string
		for _, th := range s.threads() {
			data[bench][th] = map[Kind]int64{}
			line := []string{fmt.Sprint(th)}
			for _, k := range kinds {
				r, err := Run(Options{Bench: bench, Runtime: k, Threads: th, Scale: s.Scale, Seed: s.Seed})
				if err != nil {
					return nil, "", err
				}
				data[bench][th][k] = r.Stats.PeakPages
				line = append(line, fmt.Sprint(r.Stats.PeakPages))
			}
			rows = append(rows, line)
		}
		text += "\n" + bench + ":\n" + renderTable([]string{"threads", "consequence-ic", "dthreads"}, rows)
	}
	return data, text, nil
}

// Fig13Benches are the eight difficult benchmarks of the optimization
// study.
var Fig13Benches = []string{"ferret", "reverse_index", "kmeans", "dedup", "ocean_cp", "lu_ncb", "lu_cb", "canneal"}

// Fig13Variants maps each §3/§4 optimization to the config change that
// disables it.
var Fig13Variants = []struct {
	Name    string
	Disable func(*det.Config)
}{
	{"adaptive-coarsening", func(c *det.Config) { c.Coarsening = false }},
	{"fast-forward", func(c *det.Config) { c.FastForward = false }},
	{"parallel-barrier", func(c *det.Config) { c.ParallelBarrier = false }},
	{"thread-reuse", func(c *det.Config) { c.ThreadPool = false }},
	{"userspace-reads", func(c *det.Config) { c.UserspaceClockRead = false }},
	{"adaptive-overflow", func(c *det.Config) { c.AdaptiveOverflow = false }},
}

// Fig13 reproduces Figure 13: per-optimization speedup (runtime with the
// optimization disabled divided by the full configuration; higher means
// the optimization contributes more), at 8 threads.
func Fig13(s Sweep) (map[string]map[string]float64, string, error) {
	const threads = 8
	data := map[string]map[string]float64{}
	var rows [][]string
	for _, bench := range Fig13Benches {
		full, err := Run(Options{Bench: bench, Runtime: KindConsequenceIC, Threads: threads, Scale: s.Scale, Seed: s.Seed})
		if err != nil {
			return nil, "", err
		}
		data[bench] = map[string]float64{}
		line := []string{bench}
		for _, v := range Fig13Variants {
			r, err := Run(Options{
				Bench: bench, Runtime: KindConsequenceIC, Threads: threads,
				Scale: s.Scale, Seed: s.Seed, Modify: v.Disable,
			})
			if err != nil {
				return nil, "", err
			}
			sp := float64(r.WallNS) / float64(full.WallNS)
			data[bench][v.Name] = sp
			line = append(line, fmt.Sprintf("%.2fx", sp))
		}
		rows = append(rows, line)
	}
	header := []string{"benchmark"}
	for _, v := range Fig13Variants {
		header = append(header, v.Name)
	}
	text := "Figure 13: speedup contributed by each optimization (runtime without it / full config, 8 threads)\n" +
		renderTable(header, rows)
	return data, text, nil
}

// Fig14Levels is the static coarsening sweep (0 = coarsening off).
var Fig14Levels = []int{0, 2, 4, 8, 16, 32, 64, 128}

// Fig14 reproduces Figure 14: static coarsening levels vs adaptive
// coarsening for reverse_index and ferret.
func Fig14(s Sweep) (map[string]map[string]int64, string, error) {
	const threads = 8
	data := map[string]map[string]int64{}
	var rows [][]string
	for _, bench := range []string{"reverse_index", "ferret"} {
		data[bench] = map[string]int64{}
		line := []string{bench}
		for _, lvl := range Fig14Levels {
			lvl := lvl
			r, err := Run(Options{
				Bench: bench, Runtime: KindConsequenceIC, Threads: threads,
				Scale: s.Scale, Seed: s.Seed,
				Modify: func(c *det.Config) {
					if lvl == 0 {
						c.Coarsening = false
					} else {
						c.StaticLevel = lvl
					}
				},
			})
			if err != nil {
				return nil, "", err
			}
			data[bench][fmt.Sprintf("static-%d", lvl)] = r.WallNS
			line = append(line, ms(r.WallNS))
		}
		r, err := Run(Options{Bench: bench, Runtime: KindConsequenceIC, Threads: threads, Scale: s.Scale, Seed: s.Seed})
		if err != nil {
			return nil, "", err
		}
		data[bench]["adaptive"] = r.WallNS
		line = append(line, ms(r.WallNS))
		rows = append(rows, line)
	}
	header := []string{"benchmark"}
	for _, lvl := range Fig14Levels {
		header = append(header, fmt.Sprintf("static=%d", lvl))
	}
	header = append(header, "adaptive")
	text := "Figure 14: runtime (ms) under static coarsening levels vs adaptive (8 threads, lower is better)\n" +
		renderTable(header, rows)
	return data, text, nil
}

// Fig15Benches are the breakdown benchmarks of Figure 15.
var Fig15Benches = []string{
	"string_match", "ocean_cp", "lu_cb", "lu_ncb", "canneal",
	"water_nsquared", "water_spatial", "kmeans", "ferret", "dedup", "reverse_index",
}

// Breakdown is a per-category share of total thread time.
type Breakdown struct {
	Local, DetermWait, BarrierWait, Commit, Fault, Lib float64
}

func (b Breakdown) row() []string {
	f := func(v float64) string { return fmt.Sprintf("%5.1f%%", 100*v) }
	return []string{f(b.Local), f(b.DetermWait), f(b.BarrierWait), f(b.Commit), f(b.Fault), f(b.Lib)}
}

// Fig15 reproduces Figure 15: time breakdown at 8 threads for pthreads,
// DWC and Consequence-IC. ferret is split into its first pipeline thread
// (ferret_1) and the remaining threads (ferret_n), as in the paper.
func Fig15(s Sweep) (map[string]map[Kind]Breakdown, string, error) {
	const threads = 8
	kinds := []Kind{KindPthreads, KindDWC, KindConsequenceIC}
	data := map[string]map[Kind]Breakdown{}
	var rows [][]string
	add := func(label string, k Kind, b Breakdown) {
		if data[label] == nil {
			data[label] = map[Kind]Breakdown{}
		}
		data[label][k] = b
		rows = append(rows, append([]string{label, string(k)}, b.row()...))
	}
	for _, bench := range Fig15Benches {
		for _, k := range kinds {
			r, err := Run(Options{Bench: bench, Runtime: k, Threads: threads, Scale: s.Scale, Seed: s.Seed})
			if err != nil {
				return nil, "", err
			}
			if bench == "ferret" {
				b1, bn := splitFerret(r)
				add("ferret_1", k, b1)
				add("ferret_n", k, bn)
				continue
			}
			add(bench, k, normalize(
				r.Stats.LocalWorkNS, r.Stats.DetermWaitNS, r.Stats.BarrierWaitNS,
				r.Stats.CommitNS, r.Stats.FaultNS, r.Stats.LibNS))
		}
	}
	text := "Figure 15: time breakdown at 8 threads\n" +
		renderTable([]string{"benchmark", "runtime", "local", "determ", "barrier", "commit", "fault", "lib"}, rows)
	return data, text, nil
}

func normalize(local, determ, barrier, commit, fault, lib int64) Breakdown {
	total := float64(local + determ + barrier + commit + fault + lib)
	if total <= 0 {
		return Breakdown{}
	}
	return Breakdown{
		Local:       float64(local) / total,
		DetermWait:  float64(determ) / total,
		BarrierWait: float64(barrier) / total,
		Commit:      float64(commit) / total,
		Fault:       float64(fault) / total,
		Lib:         float64(lib) / total,
	}
}

// splitFerret separates thread 1 (the first spawned pipeline thread) from
// the rest.
func splitFerret(r Result) (b1, bn Breakdown) {
	var one, rest [6]int64
	for _, tt := range r.Stats.PerThread {
		dst := &rest
		if tt.Tid == 1 {
			dst = &one
		}
		dst[0] += tt.LocalWork
		dst[1] += tt.DetermWait
		dst[2] += tt.BarrierWait
		dst[3] += tt.Commit
		dst[4] += tt.Fault
		dst[5] += tt.Lib
	}
	b1 = normalize(one[0], one[1], one[2], one[3], one[4], one[5])
	bn = normalize(rest[0], rest[1], rest[2], rest[3], rest[4], rest[5])
	return
}

// Fig16Row is one benchmark's page-propagation comparison.
type Fig16Row struct {
	Bench    string
	TSOPages int64
	LRCPages int64
}

// Fig16 reproduces Figure 16: pages propagated under TSO (Consequence)
// versus the expected count for an LRC system, for benchmarks with enough
// page traffic to be meaningful (the paper used a 10K-update cutoff at
// full problem sizes; the cutoff here scales with our reduced inputs).
func Fig16(s Sweep, minPages int64) ([]Fig16Row, string, error) {
	const threads = 8
	if minPages <= 0 {
		minPages = 500
	}
	var out []Fig16Row
	var rows [][]string
	var totalRed, n float64
	for _, spec := range workload.All() {
		r, err := Run(Options{
			Bench: spec.Name, Runtime: KindConsequenceIC, Threads: threads,
			Scale: s.Scale, Seed: s.Seed, WithLRC: true,
		})
		if err != nil {
			return nil, "", err
		}
		if r.Stats.PulledPages < minPages {
			continue
		}
		row := Fig16Row{Bench: spec.Name, TSOPages: r.Stats.PulledPages, LRCPages: r.LRCPages}
		out = append(out, row)
		red := 1 - float64(row.LRCPages)/float64(row.TSOPages)
		totalRed += red
		n++
		rows = append(rows, []string{
			spec.Name, fmt.Sprint(row.TSOPages), fmt.Sprint(row.LRCPages),
			fmt.Sprintf("%.1f%%", 100*red),
		})
	}
	text := "Figure 16: total pages propagated, TSO (Consequence) vs expected LRC (8 threads)\n" +
		renderTable([]string{"benchmark", "tso-pages", "lrc-pages", "lrc-reduction"}, rows)
	if n > 0 {
		text += fmt.Sprintf("average reduction across %d benchmarks: %.1f%%\n", int(n), 100*totalRed/n)
	}
	return out, text, nil
}
