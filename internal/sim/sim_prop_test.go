package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: across arbitrary advance patterns, the engine executes events
// in nondecreasing virtual time (single-threaded alternation means procs'
// observations of a shared log are totally ordered).
func TestPropGlobalTimeMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var log []int64
		n := rng.Intn(6) + 2
		for i := 0; i < n; i++ {
			steps := rng.Intn(30) + 1
			deltas := make([]int64, steps)
			for k := range deltas {
				deltas[k] = int64(rng.Intn(500))
			}
			e.Go("p", int64(rng.Intn(100)), func(p *Proc) {
				for _, d := range deltas {
					p.Advance(d)
					log = append(log, p.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i] < log[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: park/unpark chains preserve causality — a consumer resumed by
// a producer never observes a time before the unpark point.
func TestPropUnparkCausality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		stages := rng.Intn(5) + 2
		procs := make([]*Proc, stages)
		ok := true
		var wakeTimes []int64
		for i := 0; i < stages; i++ {
			i := i
			delay := int64(rng.Intn(1000) + 1)
			e.Go("stage", 0, func(p *Proc) {
				procs[i] = p
				if i > 0 {
					p.Park()
					// Must resume at or after the waker's unpark time.
					if p.Now() < wakeTimes[i-1] {
						ok = false
					}
				}
				p.Advance(delay)
				if i+1 < stages {
					// Wait (in virtual time) until the successor parked.
					for procs[i+1] == nil || !procs[i+1].Parked() {
						p.Advance(1)
					}
					wakeTimes = append(wakeTimes, p.Now())
					procs[i+1].UnparkAt(p.Now())
				}
			})
		}
		return e.Run() == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
