// Package sim is a deterministic discrete-event simulation engine with
// process-style virtual threads.
//
// Each virtual thread (Proc) is an ordinary goroutine writing straight-line
// code, but exactly one proc runs at a time: the engine resumes the proc
// whose next event is earliest in virtual time, and the proc runs until it
// advances its own clock, parks, or exits, at which point control returns
// to the engine. Because execution is strictly alternating and the event
// queue is ordered by (time, sequence), a simulation is a deterministic
// function of its inputs — which is what lets the benchmark harness
// regenerate the paper's figures bit-identically on any machine.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Engine owns the virtual clock and event queue.
type Engine struct {
	pq      eventHeap
	seq     int64
	yieldc  chan yield
	alive   int
	parked  map[*Proc]bool
	running bool
}

// Proc is one virtual thread. Its methods must only be called from within
// its own body function, except where noted.
type Proc struct {
	eng    *Engine
	name   string
	now    int64
	resume chan struct{}
	// scheduled guards the ≤1-outstanding-event invariant.
	scheduled bool
	// reason describes what the proc is (about to be) parked on; set by
	// the proc itself before Park and surfaced in the deadlock report.
	reason string
}

type yieldKind int

const (
	yScheduled yieldKind = iota // proc advanced and has an event queued
	yParked                     // proc is waiting for an Unpark
	yExited
)

type yield struct {
	p    *Proc
	kind yieldKind
}

type event struct {
	at  int64
	seq int64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New creates an empty engine.
func New() *Engine {
	return &Engine{
		yieldc: make(chan yield),
		parked: make(map[*Proc]bool),
	}
}

// Go creates a virtual thread that begins executing fn at virtual time
// `start`. May be called before Run (from the host) or during Run (from a
// running proc). The name appears in deadlock reports.
func (e *Engine) Go(name string, start int64, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, now: start, resume: make(chan struct{})}
	e.alive++
	e.schedule(p, start)
	go func() {
		<-p.resume
		fn(p)
		e.yieldc <- yield{p, yExited}
	}()
	return p
}

func (e *Engine) schedule(p *Proc, at int64) {
	if p.scheduled {
		panic(fmt.Sprintf("sim: proc %q scheduled twice", p.name))
	}
	p.scheduled = true
	e.seq++
	heap.Push(&e.pq, event{at: at, seq: e.seq, p: p})
}

// Run executes events until no runnable procs remain. It returns an error
// describing a deadlock if parked procs remain when the queue drains.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(event)
		p := ev.p
		p.scheduled = false
		if ev.at > p.now {
			p.now = ev.at
		}
		p.resume <- struct{}{}
		y := <-e.yieldc
		switch y.kind {
		case yExited:
			e.alive--
		case yParked:
			e.parked[y.p] = true
		case yScheduled:
			// nothing: event already queued
		}
	}
	if e.alive > 0 {
		var names []string
		for p := range e.parked {
			if p.reason != "" {
				names = append(names, fmt.Sprintf("%s (%s)", p.name, p.reason))
			} else {
				names = append(names, p.name)
			}
		}
		sort.Strings(names)
		return fmt.Errorf("sim: deadlock — %d proc(s) parked forever: %v", e.alive, names)
	}
	return nil
}

// Now returns the proc's virtual time in nanoseconds.
func (p *Proc) Now() int64 { return p.now }

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// SetBlockReason records what the proc is about to park on. Must be
// called from the proc's own body; the value appears next to the proc's
// name in the engine's deadlock report and has no scheduling effect.
func (p *Proc) SetBlockReason(reason string) { p.reason = reason }

// Advance elapses d nanoseconds of virtual time for this proc, yielding to
// any proc with an earlier event. d must be non-negative; zero is a no-op.
func (p *Proc) Advance(d int64) {
	if d < 0 {
		panic("sim: negative advance")
	}
	if d == 0 {
		return
	}
	p.now += d
	// Fast path: if every queued event is strictly later, the engine would
	// pop this proc right back (a same-time event would win the seq
	// tie-break, so strict inequality is required). Skipping the yield is
	// behavior-identical — same schedule, same clocks — and saves the two
	// goroutine switches that otherwise dominate simulated runs.
	if pq := p.eng.pq; len(pq) == 0 || pq[0].at > p.now {
		return
	}
	p.eng.schedule(p, p.now)
	p.eng.yieldc <- yield{p, yScheduled}
	<-p.resume
}

// Park suspends the proc until another proc calls UnparkAt. The proc's
// clock on resume is max(its own time, the unpark time).
func (p *Proc) Park() {
	p.eng.yieldc <- yield{p, yParked}
	<-p.resume
	delete(p.eng.parked, p)
	p.reason = "" // a stale reason must not outlive the park it described
}

// UnparkAt schedules a parked proc to resume at virtual time `at` (or its
// own current time if later). Must be called from a running proc, or
// before Run. Unparking a proc that is not parked is an error the caller
// must prevent (the host layer's wake-permit handles the wake-before-block
// race).
func (p *Proc) UnparkAt(at int64) {
	if !p.eng.parked[p] {
		panic(fmt.Sprintf("sim: unpark of non-parked proc %q", p.name))
	}
	if at < p.now {
		at = p.now
	}
	p.eng.schedule(p, at)
}

// Parked reports whether p is currently parked. Meaningful only from
// within another running proc (execution is single-threaded).
func (p *Proc) Parked() bool { return p.eng.parked[p] }
