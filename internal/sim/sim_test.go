package sim

import (
	"fmt"
	"testing"
)

func TestAdvanceOrdersProcsByVirtualTime(t *testing.T) {
	e := New()
	var order []string
	e.Go("slow", 0, func(p *Proc) {
		p.Advance(100)
		order = append(order, "slow")
	})
	e.Go("fast", 0, func(p *Proc) {
		p.Advance(10)
		order = append(order, "fast")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBrokenBySchedulingSequence(t *testing.T) {
	// Same virtual time: the earlier-scheduled event runs first,
	// deterministically.
	for trial := 0; trial < 5; trial++ {
		e := New()
		var order []int
		for i := 0; i < 4; i++ {
			i := i
			e.Go(fmt.Sprint(i), 0, func(p *Proc) {
				p.Advance(50)
				order = append(order, i)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("trial %d: order = %v", trial, order)
			}
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := New()
	var consumer *Proc
	value := 0
	e.Go("consumer", 0, func(p *Proc) {
		consumer = p
		p.Park()
		if value != 42 {
			t.Errorf("woken before producer wrote: %d", value)
		}
		if p.Now() != 75 {
			t.Errorf("consumer resumed at %d, want 75", p.Now())
		}
	})
	e.Go("producer", 0, func(p *Proc) {
		p.Advance(1) // let consumer park first
		value = 42
		p.Advance(49)
		consumer.UnparkAt(75)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnparkInThePastResumesAtOwnTime(t *testing.T) {
	e := New()
	var a *Proc
	e.Go("a", 0, func(p *Proc) {
		a = p
		p.Advance(100)
		p.Park()
		if p.Now() != 100 {
			t.Errorf("resumed at %d, want 100 (unpark time was earlier)", p.Now())
		}
	})
	e.Go("b", 0, func(p *Proc) {
		p.Advance(150) // a is parked at its time 100 by now
		a.UnparkAt(50)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	e.Go("stuck", 0, func(p *Proc) { p.Park() })
	err := e.Run()
	if err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := New()
	var times []int64
	e.Go("parent", 0, func(p *Proc) {
		p.Advance(10)
		p.eng.Go("child", p.Now(), func(c *Proc) {
			c.Advance(5)
			times = append(times, c.Now())
		})
		p.Advance(100)
		times = append(times, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 15 || times[1] != 110 {
		t.Fatalf("times = %v", times)
	}
}

func TestZeroAdvanceIsNoop(t *testing.T) {
	e := New()
	ran := false
	e.Go("p", 0, func(p *Proc) {
		p.Advance(0)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("proc did not run")
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := New()
	panicked := make(chan bool, 1)
	e.Go("p", 0, func(p *Proc) {
		defer func() {
			panicked <- recover() != nil
			// Re-yield as exited so the engine can finish.
		}()
		p.Advance(-1)
	})
	// The panic unwinds the proc goroutine; the deferred send fires, but
	// the engine handshake is broken — run Run in a goroutine and only
	// check the panic flag.
	go e.Run() //nolint:errcheck
	if !<-panicked {
		t.Fatal("negative advance did not panic")
	}
}

func TestDeterministicLongInterleaving(t *testing.T) {
	run := func() []int64 {
		e := New()
		var log []int64
		for i := 0; i < 8; i++ {
			i := i
			e.Go(fmt.Sprint(i), int64(i), func(p *Proc) {
				for k := 0; k < 50; k++ {
					p.Advance(int64((i*7+k*13)%29 + 1))
					log = append(log, int64(i)*1_000_000+p.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
