// Package journal persists a deterministic run's observable history — the
// total order of synchronization events, per-commit page content hashes,
// and interval hash checkpoints — as a compact binary append-only file.
// Two runs of the same program are byte-identical at the journal level, so
// comparing two journals (cmd/conseq-diff) localizes the *first* divergent
// event instead of reporting a bare hash mismatch.
//
// # Format
//
// A journal is a 5-byte header ("CSQJ" + format version 2) followed by a
// stream of records until EOF. Each record is a one-byte kind followed by
// a kind-specific payload; integers are unsigned varints (binary.Uvarint)
// and hashes are fixed 8-byte little-endian words:
//
//	meta       (0x01): n, then n pairs of (key, value) length-prefixed strings
//	event      (0x02): seq, tid, opcode, obj, clock, shard+1
//	commit     (0x03): atSeq, version, tid, clock, npages, then npages x (page, hash)
//	checkpoint (0x04): seq, hash, nthreads, then nthreads x (tid, hash),
//	                   nshards, then nshards x (shard, hash)
//
// An event's opcode is a fixed one-byte code for the known trace.Op values
// (opcode 0 escapes to a length-prefixed string for forward compatibility).
// An event's shard field is its granting-shard provenance offset by one (0
// = no shard: an unsharded run or a cross-shard edge); a checkpoint's
// shard list carries the per-shard rolling hashes under per-shard
// granting. A commit's atSeq is the number of trace events recorded when
// the commit was journaled, which interleaves the commit stream into the
// event total order. Signed values (clocks, seqs) are non-negative by
// construction and encoded as uvarints.
//
// Version 1 files — the same records without the event shard field and
// checkpoint shard list — are still decoded; their events load with
// trace.NoShard provenance.
//
// Writing is off the critical path: Writer encodes into an in-memory block
// under a mutex (callers are token-serialized already) and hands full
// blocks to a background goroutine that does the file I/O. Stats exposes
// events/commits/checkpoints/bytes/flush-stall counters for the journal_*
// metrics. Journaling must never change program results; scripts/check.sh
// gates journal-on vs journal-off byte-identical checksums and traces.
package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// magic identifies a journal file; the trailing byte is the format version
// written by this encoder. The reader also accepts version 1 (no shard
// provenance).
var magic = []byte{'C', 'S', 'Q', 'J', 2}

// Record kinds.
const (
	kindMeta       = 0x01
	kindEvent      = 0x02
	kindCommit     = 0x03
	kindCheckpoint = 0x04
)

// opCodes maps the known trace ops to stable one-byte codes. Code 0 is
// reserved as the string-escape for ops unknown to this encoder version.
var opCodes = map[trace.Op]byte{
	trace.OpLock:    1,
	trace.OpUnlock:  2,
	trace.OpWait:    3,
	trace.OpSignal:  4,
	trace.OpBcast:   5,
	trace.OpBarrier: 6,
	trace.OpSpawn:   7,
	trace.OpJoin:    8,
	trace.OpExit:    9,
	trace.OpCommit:  10,
}

// opNames is the inverse of opCodes.
var opNames = func() map[byte]trace.Op {
	m := make(map[byte]trace.Op, len(opCodes))
	for op, c := range opCodes {
		m[c] = op
	}
	return m
}()

// PageHash is one page's content hash inside a commit record.
type PageHash struct {
	Page int    // page index in the segment
	Hash uint64 // FNV-1a over the committed page bytes
}

// Commit records one committed version: which thread published it, at what
// logical clock, and the content hash of every page it changed. AtSeq is
// the trace event count at journaling time, ordering the commit against
// the sync-event stream.
type Commit struct {
	AtSeq   int64
	Version int64
	Tid     int
	Clock   int64
	Pages   []PageHash
}

// Stats counts a Writer's activity; all fields are cumulative.
type Stats struct {
	Events      int64
	Commits     int64
	Checkpoints int64
	Bytes       int64 // encoded bytes (header + all records)
	FlushStalls int64 // writes that blocked because the I/O goroutine was behind
}

// blockSize is the encode-buffer threshold at which a block is handed to
// the background writer.
const blockSize = 32 << 10

// Writer appends a run's history to a journal file. Methods are safe for
// concurrent use; encoding happens under a mutex and file I/O on a
// background goroutine so journaling stays off the token critical path.
// Writer implements trace.Sink.
type Writer struct {
	mu     sync.Mutex
	buf    []byte
	closed bool

	ch   chan []byte
	done chan error
	out  io.Writer
	file *os.File // nil when writing to a caller-supplied io.Writer

	events      atomic.Int64
	commits     atomic.Int64
	checkpoints atomic.Int64
	bytes       atomic.Int64
	stalls      atomic.Int64
}

// Create creates (truncating) a journal file at path and writes the header
// and meta record. Close flushes and closes the file.
func Create(path string, meta map[string]string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := newWriter(f, meta)
	w.file = f
	return w, nil
}

// NewWriter writes a journal to out (header and meta record immediately
// queued). Close flushes but does not close out.
func NewWriter(out io.Writer, meta map[string]string) *Writer {
	return newWriter(out, meta)
}

func newWriter(out io.Writer, meta map[string]string) *Writer {
	w := &Writer{
		out:  out,
		ch:   make(chan []byte, 8),
		done: make(chan error, 1),
	}
	go w.drain()
	w.buf = append(w.buf, magic...)
	w.encodeMeta(meta)
	return w
}

// drain is the background I/O goroutine: it writes blocks in order and
// reports the first error on done at close time.
func (w *Writer) drain() {
	bw := bufio.NewWriterSize(w.out, 64<<10)
	var err error
	for b := range w.ch {
		if err == nil {
			_, err = bw.Write(b)
		}
	}
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	w.done <- err
}

// encodeMeta appends the meta record to the current block. Keys are sorted
// so identical runs produce identical bytes.
func (w *Writer) encodeMeta(meta map[string]string) {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.buf = append(w.buf, kindMeta)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(keys)))
	for _, k := range keys {
		w.buf = appendString(w.buf, k)
		w.buf = appendString(w.buf, meta[k])
	}
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// RecordEvent journals one sync-trace event (trace.Sink).
func (w *Writer) RecordEvent(e trace.Event) {
	w.mu.Lock()
	w.buf = append(w.buf, kindEvent)
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Seq))
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Tid))
	if code, ok := opCodes[e.Op]; ok {
		w.buf = append(w.buf, code)
	} else {
		w.buf = append(w.buf, 0)
		w.buf = appendString(w.buf, string(e.Op))
	}
	w.buf = binary.AppendUvarint(w.buf, e.Obj)
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Clock))
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Shard+1))
	w.flushIfFullLocked()
	w.mu.Unlock()
	w.events.Add(1)
}

// RecordCheckpoint journals an interval hash checkpoint (trace.Sink).
func (w *Writer) RecordCheckpoint(c trace.Checkpoint) {
	w.mu.Lock()
	w.buf = append(w.buf, kindCheckpoint)
	w.buf = binary.AppendUvarint(w.buf, uint64(c.Seq))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, c.Hash)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(c.Threads)))
	for _, th := range c.Threads {
		w.buf = binary.AppendUvarint(w.buf, uint64(th.Tid))
		w.buf = binary.LittleEndian.AppendUint64(w.buf, th.Hash)
	}
	w.buf = binary.AppendUvarint(w.buf, uint64(len(c.Shards)))
	for _, sh := range c.Shards {
		w.buf = binary.AppendUvarint(w.buf, uint64(sh.Shard))
		w.buf = binary.LittleEndian.AppendUint64(w.buf, sh.Hash)
	}
	w.flushIfFullLocked()
	w.mu.Unlock()
	w.checkpoints.Add(1)
}

// RecordCommit journals one committed version's page content hashes.
func (w *Writer) RecordCommit(c Commit) {
	w.mu.Lock()
	w.buf = append(w.buf, kindCommit)
	w.buf = binary.AppendUvarint(w.buf, uint64(c.AtSeq))
	w.buf = binary.AppendUvarint(w.buf, uint64(c.Version))
	w.buf = binary.AppendUvarint(w.buf, uint64(c.Tid))
	w.buf = binary.AppendUvarint(w.buf, uint64(c.Clock))
	w.buf = binary.AppendUvarint(w.buf, uint64(len(c.Pages)))
	for _, p := range c.Pages {
		w.buf = binary.AppendUvarint(w.buf, uint64(p.Page))
		w.buf = binary.LittleEndian.AppendUint64(w.buf, p.Hash)
	}
	w.flushIfFullLocked()
	w.mu.Unlock()
	w.commits.Add(1)
}

// flushIfFullLocked hands the block to the I/O goroutine once it exceeds
// blockSize. Caller holds w.mu.
func (w *Writer) flushIfFullLocked() {
	if len(w.buf) < blockSize {
		return
	}
	w.sendLocked()
}

// sendLocked queues the current block, counting a stall if the I/O
// goroutine is behind. Caller holds w.mu.
func (w *Writer) sendLocked() {
	if len(w.buf) == 0 {
		return
	}
	b := w.buf
	w.buf = make([]byte, 0, blockSize+4096)
	w.bytes.Add(int64(len(b)))
	select {
	case w.ch <- b:
	default:
		w.stalls.Add(1)
		w.ch <- b
	}
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() Stats {
	return Stats{
		Events:      w.events.Load(),
		Commits:     w.commits.Load(),
		Checkpoints: w.checkpoints.Load(),
		Bytes:       w.bytes.Load(),
		FlushStalls: w.stalls.Load(),
	}
}

// Close flushes buffered records, waits for the I/O goroutine, and closes
// the file (when the writer was opened with Create). Safe to call once.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.sendLocked()
	close(w.ch)
	w.mu.Unlock()
	err := <-w.done
	if w.file != nil {
		if cerr := w.file.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
