package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Divergence kinds reported by Diff.
const (
	DivNone   = "none"   // journals are equivalent
	DivEvent  = "event"  // sync-trace events differ at Seq
	DivCommit = "commit" // same events up to Seq, but a commit's pages differ
	DivLength = "length" // one journal is a strict prefix of the other
	DivMeta   = "meta"   // run parameters differ (results incomparable)
)

// EventRef is a rendered event in a report (JSON-friendly copy of
// trace.Event plus its one-line rendering).
type EventRef struct {
	Seq    int64  `json:"seq"`
	Tid    int    `json:"tid"`
	Op     string `json:"op"`
	Obj    uint64 `json:"obj"`
	Clock  int64  `json:"clock"`
	Render string `json:"render"`
}

func mkEventRef(e trace.Event) *EventRef {
	return &EventRef{Seq: e.Seq, Tid: e.Tid, Op: string(e.Op), Obj: e.Obj, Clock: e.Clock, Render: e.String()}
}

// PageDiff is one differing page hash inside a divergent commit.
type PageDiff struct {
	Page  int    `json:"page"`
	HashA string `json:"hash_a"` // %016x; empty when the side lacks the page
	HashB string `json:"hash_b"`
}

// CommitRef summarizes a commit record in a report.
type CommitRef struct {
	AtSeq   int64 `json:"at_seq"`
	Version int64 `json:"version"`
	Tid     int   `json:"tid"`
	Clock   int64 `json:"clock"`
	Pages   int   `json:"pages"`
}

func mkCommitRef(c Commit) CommitRef {
	return CommitRef{AtSeq: c.AtSeq, Version: c.Version, Tid: c.Tid, Clock: c.Clock, Pages: len(c.Pages)}
}

// HeldLock is a mutex held by a thread at the divergence point.
type HeldLock struct {
	Tid     int      `json:"tid"`
	Mutexes []uint64 `json:"mutexes"`
}

// Report localizes the first divergence between two journals. Kind is one
// of the Div* constants; for DivEvent, EventA/EventB are the first
// differing events; for DivCommit, CommitA/CommitB and PageDiffs identify
// the differing version and pages. Context lists the last common events
// before the divergence, HeldLocks the mutexes held per thread at that
// point (replayed from the common prefix), and RecentCommits each side's
// last commit per thread before the divergence.
type Report struct {
	Kind      string   `json:"kind"`
	Seq       int64    `json:"seq"` // first divergent event seq (DivEvent/DivLength) or atSeq (DivCommit)
	Detail    string   `json:"detail"`
	Probes    int      `json:"probes"` // checkpoint hash comparisons used to localize
	EventsA   int64    `json:"events_a"`
	EventsB   int64    `json:"events_b"`
	CommitsA  int64    `json:"commits_a"`
	CommitsB  int64    `json:"commits_b"`
	MetaDiffs []string `json:"meta_diffs,omitempty"`

	EventA *EventRef `json:"event_a,omitempty"`
	EventB *EventRef `json:"event_b,omitempty"`

	CommitA   *CommitRef `json:"commit_a,omitempty"`
	CommitB   *CommitRef `json:"commit_b,omitempty"`
	PageDiffs []PageDiff `json:"page_diffs,omitempty"`

	Context       []string    `json:"context,omitempty"` // last N common events, rendered
	HeldLocks     []HeldLock  `json:"held_locks,omitempty"`
	RecentCommits []CommitRef `json:"recent_commits,omitempty"`
}

// DiffOptions tunes Diff. Zero value is ready to use.
type DiffOptions struct {
	Context int // common events of context to include (default 8)
}

// Diff localizes the first divergence between two journals. It first
// probes the interval checkpoints (binary search over prefix hashes, one
// comparison per probe) to narrow the search to one interval, then
// compares events and commits inside it; with checkpoints every K events
// this is O(log n) probes plus O(K) event comparisons, matching the
// Merkle-interval scheme in docs/divergence.md.
func Diff(a, b *Data, opts DiffOptions) *Report {
	if opts.Context <= 0 {
		opts.Context = 8
	}
	rep := &Report{
		Kind:     DivNone,
		EventsA:  int64(len(a.Events)),
		EventsB:  int64(len(b.Events)),
		CommitsA: int64(len(a.Commits)),
		CommitsB: int64(len(b.Commits)),
	}
	rep.MetaDiffs = metaDiffs(a.Meta, b.Meta)
	if len(rep.MetaDiffs) > 0 {
		rep.Kind = DivMeta
		rep.Detail = "run parameters differ; results are not comparable"
		return rep
	}

	// Phase 1: checkpoint probe. Checkpoints with equal Seq prefixes and
	// equal hashes prove the prefix identical without touching events.
	lo := 0 // events below lo are proven identical
	probes := 0
	ca, cb := a.Checkpoints, b.Checkpoints
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	comparable := true
	for i := 0; i < n; i++ {
		if ca[i].Seq != cb[i].Seq {
			comparable = false // different checkpoint intervals: fall back
			break
		}
	}
	if comparable && n > 0 {
		// Binary search for the first checkpoint whose prefix hash
		// differs; everything before the previous one is identical.
		first := sort.Search(n, func(i int) bool {
			probes++
			return ca[i].Hash != cb[i].Hash
		})
		if first > 0 {
			lo = int(ca[first-1].Seq)
		}
	}
	rep.Probes = probes

	// Phase 2: event scan inside the suspect interval.
	ae, be := a.Events, b.Events
	ne := len(ae)
	if len(be) < ne {
		ne = len(be)
	}
	if lo > ne {
		lo = ne // checkpoints claim more events than present (truncated file)
	}
	div := -1
	for i := lo; i < ne; i++ {
		if ae[i] != be[i] {
			div = i
			break
		}
	}

	// Phase 3: commit-stream scan. Commits interleave with events via
	// AtSeq; a commit divergence strictly before the event divergence is
	// the earlier (and therefore first) observable difference.
	cdiv, cA, cB, pd := firstCommitDiff(a.Commits, b.Commits)

	eventSeq := int64(-1)
	if div >= 0 {
		eventSeq = int64(div)
	} else if len(ae) != len(be) {
		eventSeq = int64(ne)
	}

	switch {
	case cdiv >= 0 && (eventSeq < 0 || cdiv <= eventSeq):
		rep.Kind = DivCommit
		rep.Seq = cdiv
		rep.CommitA = cA
		rep.CommitB = cB
		rep.PageDiffs = pd
		rep.Detail = commitDetail(cA, cB, pd)
		fillContext(rep, a, b, cdiv, opts.Context)
	case div >= 0:
		rep.Kind = DivEvent
		rep.Seq = int64(div)
		rep.EventA = mkEventRef(ae[div])
		rep.EventB = mkEventRef(be[div])
		rep.Detail = fmt.Sprintf("first divergent event at seq %d: tid %d vs tid %d, %s vs %s, clk %d vs %d",
			div, ae[div].Tid, be[div].Tid, ae[div].Op, be[div].Op, ae[div].Clock, be[div].Clock)
		fillContext(rep, a, b, int64(div), opts.Context)
	case len(ae) != len(be):
		rep.Kind = DivLength
		rep.Seq = int64(ne)
		rep.Detail = fmt.Sprintf("common prefix of %d events, then one side ends (%d vs %d events)", ne, len(ae), len(be))
		fillContext(rep, a, b, int64(ne), opts.Context)
	default:
		rep.Detail = "journals are equivalent"
	}
	return rep
}

// metaDiffs lists keys whose values differ between the two runs' meta
// records (sorted; missing keys render as "").
func metaDiffs(a, b map[string]string) []string {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var out []string
	for k := range keys {
		if a[k] != b[k] {
			out = append(out, fmt.Sprintf("%s: %q vs %q", k, a[k], b[k]))
		}
	}
	sort.Strings(out)
	return out
}

// firstCommitDiff finds the first index where the commit streams disagree.
// It returns the ordering seq (AtSeq) of the divergence, refs for both
// sides, and the differing pages (for same-version content divergence).
// Returns -1 when the streams agree.
func firstCommitDiff(a, b []Commit) (int64, *CommitRef, *CommitRef, []PageDiff) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if commitsEqual(a[i], b[i]) {
			continue
		}
		ra, rb := mkCommitRef(a[i]), mkCommitRef(b[i])
		seq := a[i].AtSeq
		if b[i].AtSeq < seq {
			seq = b[i].AtSeq
		}
		return seq, &ra, &rb, pageDiffs(a[i].Pages, b[i].Pages)
	}
	if len(a) != len(b) {
		var ra, rb *CommitRef
		var seq int64
		if len(a) > n {
			r := mkCommitRef(a[n])
			ra, seq = &r, a[n].AtSeq
		} else {
			r := mkCommitRef(b[n])
			rb, seq = &r, b[n].AtSeq
		}
		return seq, ra, rb, nil
	}
	return -1, nil, nil, nil
}

func commitsEqual(a, b Commit) bool {
	if a.AtSeq != b.AtSeq || a.Version != b.Version || a.Tid != b.Tid || a.Clock != b.Clock || len(a.Pages) != len(b.Pages) {
		return false
	}
	for i := range a.Pages {
		if a.Pages[i] != b.Pages[i] {
			return false
		}
	}
	return true
}

// pageDiffs lists pages whose hashes differ (or that only one side wrote).
func pageDiffs(a, b []PageHash) []PageDiff {
	am := map[int]uint64{}
	for _, p := range a {
		am[p.Page] = p.Hash
	}
	bm := map[int]uint64{}
	for _, p := range b {
		bm[p.Page] = p.Hash
	}
	pages := map[int]bool{}
	for pg := range am {
		pages[pg] = true
	}
	for pg := range bm {
		pages[pg] = true
	}
	var out []PageDiff
	for pg := range pages {
		ha, oka := am[pg]
		hb, okb := bm[pg]
		if oka && okb && ha == hb {
			continue
		}
		d := PageDiff{Page: pg}
		if oka {
			d.HashA = fmt.Sprintf("%016x", ha)
		}
		if okb {
			d.HashB = fmt.Sprintf("%016x", hb)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

func commitDetail(a, b *CommitRef, pd []PageDiff) string {
	switch {
	case a == nil:
		return fmt.Sprintf("side B has an extra commit (version %d, tid %d, at seq %d)", b.Version, b.Tid, b.AtSeq)
	case b == nil:
		return fmt.Sprintf("side A has an extra commit (version %d, tid %d, at seq %d)", a.Version, a.Tid, a.AtSeq)
	case len(pd) > 0:
		return fmt.Sprintf("commit version %d (tid %d, clk %d, at seq %d): %d page hash(es) differ",
			a.Version, a.Tid, a.Clock, a.AtSeq, len(pd))
	default:
		return fmt.Sprintf("commit streams diverge: version %d (tid %d) vs version %d (tid %d)",
			a.Version, a.Tid, b.Version, b.Tid)
	}
}

// fillContext populates Context (last common events before seq), HeldLocks
// (replayed lock/unlock state over the common prefix; trace.OpWait releases
// the mutex it names), and RecentCommits (each side's last commit per tid
// at or before seq, side A first).
func fillContext(rep *Report, a, b *Data, seq int64, n int) {
	ev := a.Events
	if int64(len(ev)) > seq {
		ev = ev[:seq]
	}
	start := len(ev) - n
	if start < 0 {
		start = 0
	}
	for _, e := range ev[start:] {
		rep.Context = append(rep.Context, e.String())
	}

	held := map[int][]uint64{}
	for _, e := range ev {
		switch e.Op {
		case trace.OpLock:
			held[e.Tid] = append(held[e.Tid], e.Obj)
		case trace.OpUnlock, trace.OpWait:
			s := held[e.Tid]
			for i := len(s) - 1; i >= 0; i-- {
				if s[i] == e.Obj {
					held[e.Tid] = append(s[:i], s[i+1:]...)
					break
				}
			}
		}
	}
	tids := make([]int, 0, len(held))
	for tid, s := range held {
		if len(s) > 0 {
			tids = append(tids, tid)
		}
	}
	sort.Ints(tids)
	for _, tid := range tids {
		rep.HeldLocks = append(rep.HeldLocks, HeldLock{Tid: tid, Mutexes: held[tid]})
	}

	for _, side := range []*Data{a, b} {
		last := map[int]Commit{}
		order := []int{}
		for _, c := range side.Commits {
			if c.AtSeq > seq {
				break
			}
			if _, ok := last[c.Tid]; !ok {
				order = append(order, c.Tid)
			}
			last[c.Tid] = c
		}
		sort.Ints(order)
		for _, tid := range order {
			rep.RecentCommits = append(rep.RecentCommits, mkCommitRef(last[tid]))
		}
	}
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report for humans.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "divergence: %s\n", r.Kind)
	fmt.Fprintf(w, "  %s\n", r.Detail)
	fmt.Fprintf(w, "  events: %d vs %d   commits: %d vs %d   checkpoint probes: %d\n",
		r.EventsA, r.EventsB, r.CommitsA, r.CommitsB, r.Probes)
	for _, m := range r.MetaDiffs {
		fmt.Fprintf(w, "  meta %s\n", m)
	}
	if r.Kind == DivNone || r.Kind == DivMeta {
		return
	}
	if r.EventA != nil && r.EventB != nil {
		fmt.Fprintf(w, "\nfirst divergent event (seq %d):\n  a: %s\n  b: %s\n", r.Seq, r.EventA.Render, r.EventB.Render)
	}
	if len(r.PageDiffs) > 0 {
		fmt.Fprintf(w, "\ndiffering pages (commit version %d):\n", r.CommitA.Version)
		for _, p := range r.PageDiffs {
			ha, hb := p.HashA, p.HashB
			if ha == "" {
				ha = strings.Repeat("-", 16)
			}
			if hb == "" {
				hb = strings.Repeat("-", 16)
			}
			fmt.Fprintf(w, "  page %6d: %s vs %s\n", p.Page, ha, hb)
		}
	}
	if len(r.Context) > 0 {
		fmt.Fprintf(w, "\nlast %d common events:\n", len(r.Context))
		for _, c := range r.Context {
			fmt.Fprintf(w, "  %s\n", c)
		}
	}
	if len(r.HeldLocks) > 0 {
		fmt.Fprintf(w, "\nheld locks at divergence:\n")
		for _, h := range r.HeldLocks {
			fmt.Fprintf(w, "  t%02d: mutexes %v\n", h.Tid, h.Mutexes)
		}
	}
	if len(r.RecentCommits) > 0 {
		fmt.Fprintf(w, "\nlast commit per thread before divergence (side a, then b):\n")
		for _, c := range r.RecentCommits {
			fmt.Fprintf(w, "  t%02d: version %d at seq %d, clk %d, %d page(s)\n", c.Tid, c.Version, c.AtSeq, c.Clock, c.Pages)
		}
	}
}
