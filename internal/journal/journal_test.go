package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// record feeds a recorder-with-journal pair n synthetic events across
// three threads, with a commit after every fourth event.
func record(t *testing.T, w *Writer, rec *trace.Recorder, n int) {
	t.Helper()
	ops := []trace.Op{trace.OpLock, trace.OpUnlock, trace.OpBarrier, trace.OpSignal}
	for i := 0; i < n; i++ {
		rec.Record(i%3, ops[i%len(ops)], uint64(10+i%5), int64(100+i))
		if i%4 == 3 {
			w.RecordCommit(Commit{
				AtSeq:   int64(i + 1),
				Version: int64(i / 4),
				Tid:     i % 3,
				Clock:   int64(100 + i),
				Pages:   []PageHash{{Page: i % 7, Hash: uint64(0xabc + i)}, {Page: 20 + i%3, Hash: uint64(i)}},
			})
		}
	}
}

func mkJournal(t *testing.T, path string, n int) {
	t.Helper()
	w, err := Create(path, map[string]string{"bench": "synthetic", "threads": "3"})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(0)
	rec.SetCheckpointInterval(8)
	rec.SetSink(w)
	record(t, w, rec, n)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.csqj")

	w, err := Create(path, map[string]string{"bench": "kmeans", "seed": "42"})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(0)
	rec.SetCheckpointInterval(4)
	rec.SetSink(w)
	record(t, w, rec, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta["bench"] != "kmeans" || d.Meta["seed"] != "42" {
		t.Fatalf("meta = %v", d.Meta)
	}
	want := rec.Events()
	if len(d.Events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(d.Events), len(want))
	}
	for i := range want {
		if d.Events[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, d.Events[i], want[i])
		}
	}
	if len(d.Commits) != 2 {
		t.Fatalf("decoded %d commits, want 2", len(d.Commits))
	}
	if d.Commits[1].Version != 1 || len(d.Commits[1].Pages) != 2 {
		t.Fatalf("commit[1] = %+v", d.Commits[1])
	}
	wantCps := rec.Checkpoints()
	if len(d.Checkpoints) != len(wantCps) {
		t.Fatalf("decoded %d checkpoints, want %d", len(d.Checkpoints), len(wantCps))
	}
	for i, cp := range wantCps {
		got := d.Checkpoints[i]
		if got.Seq != cp.Seq || got.Hash != cp.Hash || len(got.Threads) != len(cp.Threads) {
			t.Fatalf("checkpoint %d = %+v, want %+v", i, got, cp)
		}
		for j := range cp.Threads {
			if got.Threads[j] != cp.Threads[j] {
				t.Fatalf("checkpoint %d thread %d = %v, want %v", i, j, got.Threads[j], cp.Threads[j])
			}
		}
	}
}

func TestWriterDeterministicBytes(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	mkJournal(t, a, 50)
	mkJournal(t, b, 50)
	ba, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("identical runs produced different journal bytes")
	}
}

func TestStats(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, nil)
	rec := trace.New(0)
	rec.SetCheckpointInterval(4)
	rec.SetSink(w)
	record(t, w, rec, 12)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Events != 12 || st.Commits != 3 || st.Checkpoints != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != int64(buf.Len()) {
		t.Fatalf("bytes = %d, file = %d", st.Bytes, buf.Len())
	}
}

func TestDiffIdentical(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	mkJournal(t, a, 40)
	mkJournal(t, b, 40)
	da, _ := Load(a)
	db, _ := Load(b)
	rep := Diff(da, db, DiffOptions{})
	if rep.Kind != DivNone {
		t.Fatalf("identical journals diverge: %+v", rep)
	}
}

// TestDiffPinpointsSwappedGrant injects a single swapped pair of events
// (modeling a swapped token grant) and asserts Diff names exactly that
// event, using checkpoint probes.
func TestDiffPinpointsSwappedGrant(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	mkJournal(t, a, 200)
	mkJournal(t, b, 200)
	da, _ := Load(a)
	db, _ := Load(b)

	// Swap events 123 and 124 on side B, renumbering their seqs as a real
	// swapped grant would.
	const at = 123
	db.Events[at], db.Events[at+1] = db.Events[at+1], db.Events[at]
	db.Events[at].Seq, db.Events[at+1].Seq = int64(at), int64(at+1)
	RecomputeCheckpoints(db) // a genuinely divergent run has consistent checkpoints

	rep := Diff(da, db, DiffOptions{Context: 4})
	if rep.Kind != DivEvent {
		t.Fatalf("kind = %s, want event (%+v)", rep.Kind, rep)
	}
	if rep.Seq != at {
		t.Fatalf("divergence at seq %d, want %d", rep.Seq, at)
	}
	if rep.EventA == nil || rep.EventB == nil {
		t.Fatal("missing event refs")
	}
	if rep.EventA.Tid != da.Events[at].Tid || rep.EventB.Tid != db.Events[at].Tid {
		t.Fatalf("tids = %d/%d", rep.EventA.Tid, rep.EventB.Tid)
	}
	if rep.Probes == 0 {
		t.Error("no checkpoint probes used despite checkpoints present")
	}
	if len(rep.Context) != 4 {
		t.Fatalf("context = %d lines, want 4", len(rep.Context))
	}
	// Context is the immediately preceding common events.
	if !strings.Contains(rep.Context[3], "000122") {
		t.Fatalf("context tail = %q, want seq 122", rep.Context[3])
	}
}

// TestDiffPinpointsFlippedPage flips one page hash in one commit record
// (modeling a single corrupted page byte) and asserts Diff reports a
// commit divergence naming exactly that version and page.
func TestDiffPinpointsFlippedPage(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	mkJournal(t, a, 200)
	mkJournal(t, b, 200)
	da, _ := Load(a)
	db, _ := Load(b)

	const ci = 17
	db.Commits[ci].Pages[1].Hash ^= 0x80 // one flipped bit

	rep := Diff(da, db, DiffOptions{})
	if rep.Kind != DivCommit {
		t.Fatalf("kind = %s, want commit (%s)", rep.Kind, rep.Detail)
	}
	if rep.CommitA == nil || rep.CommitA.Version != da.Commits[ci].Version {
		t.Fatalf("commit ref = %+v, want version %d", rep.CommitA, da.Commits[ci].Version)
	}
	if len(rep.PageDiffs) != 1 || rep.PageDiffs[0].Page != da.Commits[ci].Pages[1].Page {
		t.Fatalf("page diffs = %+v", rep.PageDiffs)
	}
	if rep.PageDiffs[0].HashA == rep.PageDiffs[0].HashB {
		t.Fatal("page diff hashes equal")
	}
}

func TestDiffLengthAndMeta(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	mkJournal(t, a, 30)
	mkJournal(t, b, 30)
	da, _ := Load(a)
	db, _ := Load(b)
	db.Events = db.Events[:20]
	RecomputeCheckpoints(db)
	rep := Diff(da, db, DiffOptions{})
	if rep.Kind != DivLength || rep.Seq != 20 {
		t.Fatalf("rep = %+v", rep)
	}

	db2, _ := Load(b)
	db2.Meta["threads"] = "4"
	rep = Diff(da, db2, DiffOptions{})
	if rep.Kind != DivMeta || len(rep.MetaDiffs) != 1 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestDiffReportRendering(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	mkJournal(t, a, 100)
	mkJournal(t, b, 100)
	da, _ := Load(a)
	db, _ := Load(b)
	db.Events[50].Clock++
	RecomputeCheckpoints(db)
	rep := Diff(da, db, DiffOptions{})

	var txt bytes.Buffer
	rep.WriteText(&txt)
	for _, want := range []string{"divergence: event", "first divergent event (seq 50)", "last", "common events"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind": "event"`, `"seq": 50`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("json report missing %q", want)
		}
	}
}

func TestWriteFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	mkJournal(t, a, 60)
	da, err := Load(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(b, da); err != nil {
		t.Fatal(err)
	}
	db, err := Load(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep := Diff(da, db, DiffOptions{}); rep.Kind != DivNone {
		t.Fatalf("re-encoded journal diverges: %s", rep.Detail)
	}
	if len(db.Checkpoints) != len(da.Checkpoints) {
		t.Fatalf("checkpoints %d vs %d", len(db.Checkpoints), len(da.Checkpoints))
	}
}

func TestDecodeTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	mkJournal(t, path, 60)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Any strict prefix must either decode fewer records or fail with
	// ErrTruncated — never panic, never fabricate data.
	for cut := 0; cut < len(full); cut += 7 {
		_, err := Decode(bytes.NewReader(full[:cut]))
		if err != nil && !errors.Is(err, ErrTruncated) && cut >= len(magic) {
			// Cutting inside a varint can also surface as a framing error;
			// both are acceptable, panics are not. Just require an error
			// or a successful shorter decode.
			continue
		}
	}
	// A cut mid-record (inside the final commit) must report truncation.
	_, err = Decode(bytes.NewReader(full[:len(full)-3]))
	if err == nil {
		t.Fatal("mid-record truncation decoded cleanly")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	_, err := Decode(bytes.NewReader([]byte("XXXX\x01")))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v", err)
	}
	_, err = Decode(bytes.NewReader([]byte{'C', 'S', 'Q', 'J', 9}))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v", err)
	}
	// Unknown record kind.
	bad := append(append([]byte{}, magic...), 0x7f)
	_, err = Decode(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v", err)
	}
}

// FuzzDecode hammers the decoder with mutated journals: it must never
// panic or allocate unboundedly, only return data or an error.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, map[string]string{"bench": "fuzz"})
	rec := trace.New(0)
	rec.SetCheckpointInterval(4)
	rec.SetSink(w)
	for i := 0; i < 20; i++ {
		rec.Record(i%2, trace.OpLock, uint64(i), int64(i))
	}
	w.RecordCommit(Commit{AtSeq: 20, Version: 1, Tid: 0, Clock: 20, Pages: []PageHash{{Page: 3, Hash: 0xdead}}})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("CSQJ\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(bytes.NewReader(data))
		if err == nil && d == nil {
			t.Fatal("nil data without error")
		}
	})
}
