package journal

import "repro/internal/trace"

// RecomputeCheckpoints rebuilds d.Checkpoints from d.Events at the same
// interval as the existing checkpoints (no-op when the journal has none).
// Use after editing a decoded journal (e.g. conseq-diff's perturb modes)
// to keep it internally consistent: Diff's checkpoint probe assumes a
// journal's checkpoints are true prefix hashes of its events, which holds
// for every journal the runtime writes.
func RecomputeCheckpoints(d *Data) {
	if len(d.Checkpoints) == 0 {
		return
	}
	k := d.Checkpoints[0].Seq
	if k <= 0 {
		return
	}
	r := trace.New(1)
	r.SetCheckpointInterval(k)
	for _, e := range d.Events {
		r.RecordSharded(e.Tid, e.Op, e.Obj, e.Clock, e.Shard)
	}
	d.Checkpoints = r.Checkpoints()
}

// WriteFile re-encodes a decoded journal to path, interleaving commits and
// checkpoints back into the event order (a commit with AtSeq m and a
// checkpoint with Seq m both precede the event with Seq m).
func WriteFile(path string, d *Data) error {
	w, err := Create(path, d.Meta)
	if err != nil {
		return err
	}
	ci, ki := 0, 0
	emit := func(upto int64) {
		for ci < len(d.Commits) && d.Commits[ci].AtSeq <= upto {
			w.RecordCommit(d.Commits[ci])
			ci++
		}
		for ki < len(d.Checkpoints) && d.Checkpoints[ki].Seq <= upto {
			w.RecordCheckpoint(d.Checkpoints[ki])
			ki++
		}
	}
	for _, e := range d.Events {
		emit(e.Seq)
		w.RecordEvent(e)
	}
	emit(1 << 62)
	return w.Close()
}
