package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

// Decode sanity caps: a record claiming more elements than these is
// corrupt (they bound allocation when fuzzing truncated/garbage inputs).
const (
	maxString  = 1 << 20
	maxPages   = 1 << 24
	maxThreads = 1 << 20
	maxMeta    = 1 << 16
)

// ErrTruncated reports a journal that ends mid-record — typically a run
// that was killed before Close.
var ErrTruncated = errors.New("journal: truncated")

// Data is a fully decoded journal.
type Data struct {
	Meta        map[string]string
	Events      []trace.Event
	Commits     []Commit
	Checkpoints []trace.Checkpoint
}

// Load reads and decodes the journal file at path.
func Load(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	d, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	return d, nil
}

// Decode reads a journal stream. It fails with ErrTruncated (wrapped) when
// the stream ends mid-record and a descriptive error on corrupt framing.
func Decode(r io.Reader) (*Data, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("reading header: %w", truncated(err))
	}
	for i := 0; i < 4; i++ {
		if hdr[i] != magic[i] {
			return nil, fmt.Errorf("bad magic %q", hdr[:4])
		}
	}
	version := int(hdr[4])
	if version < 1 || version > int(magic[4]) {
		return nil, fmt.Errorf("unsupported journal version %d", hdr[4])
	}
	d := &Data{Meta: map[string]string{}}
	rec := 0
	for {
		kind, err := br.ReadByte()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", rec, err)
		}
		switch kind {
		case kindMeta:
			err = decodeMeta(br, d)
		case kindEvent:
			err = decodeEvent(br, d, version)
		case kindCommit:
			err = decodeCommit(br, d)
		case kindCheckpoint:
			err = decodeCheckpoint(br, d, version)
		default:
			return nil, fmt.Errorf("record %d: unknown kind 0x%02x", rec, kind)
		}
		if err != nil {
			return nil, fmt.Errorf("record %d (kind 0x%02x): %w", rec, kind, err)
		}
		rec++
	}
}

// truncated maps io.EOF/io.ErrUnexpectedEOF inside a record to
// ErrTruncated while preserving other errors.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

func readUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, truncated(err)
	}
	return v, nil
}

func readHash(br *bufio.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return 0, truncated(err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := readUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", fmt.Errorf("string length %d exceeds cap", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", truncated(err)
	}
	return string(b), nil
}

func decodeMeta(br *bufio.Reader, d *Data) error {
	n, err := readUvarint(br)
	if err != nil {
		return err
	}
	if n > maxMeta {
		return fmt.Errorf("meta count %d exceeds cap", n)
	}
	for i := uint64(0); i < n; i++ {
		k, err := readString(br)
		if err != nil {
			return err
		}
		v, err := readString(br)
		if err != nil {
			return err
		}
		d.Meta[k] = v
	}
	return nil
}

func decodeEvent(br *bufio.Reader, d *Data, version int) error {
	seq, err := readUvarint(br)
	if err != nil {
		return err
	}
	tid, err := readUvarint(br)
	if err != nil {
		return err
	}
	code, err := br.ReadByte()
	if err != nil {
		return truncated(err)
	}
	var op trace.Op
	if code == 0 {
		s, err := readString(br)
		if err != nil {
			return err
		}
		op = trace.Op(s)
	} else {
		var ok bool
		op, ok = opNames[code]
		if !ok {
			return fmt.Errorf("unknown opcode %d", code)
		}
	}
	obj, err := readUvarint(br)
	if err != nil {
		return err
	}
	clock, err := readUvarint(br)
	if err != nil {
		return err
	}
	shard := trace.NoShard
	if version >= 2 {
		s, err := readUvarint(br)
		if err != nil {
			return err
		}
		shard = int(s) - 1
	}
	d.Events = append(d.Events, trace.Event{
		Seq: int64(seq), Tid: int(tid), Op: op, Obj: obj, Clock: int64(clock),
		Shard: shard,
	})
	return nil
}

func decodeCommit(br *bufio.Reader, d *Data) error {
	var vals [5]uint64
	for i := range vals {
		v, err := readUvarint(br)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	npages := vals[4]
	if npages > maxPages {
		return fmt.Errorf("page count %d exceeds cap", npages)
	}
	c := Commit{
		AtSeq:   int64(vals[0]),
		Version: int64(vals[1]),
		Tid:     int(vals[2]),
		Clock:   int64(vals[3]),
	}
	if npages > 0 {
		c.Pages = make([]PageHash, 0, min(npages, 4096))
	}
	for i := uint64(0); i < npages; i++ {
		pg, err := readUvarint(br)
		if err != nil {
			return err
		}
		h, err := readHash(br)
		if err != nil {
			return err
		}
		c.Pages = append(c.Pages, PageHash{Page: int(pg), Hash: h})
	}
	d.Commits = append(d.Commits, c)
	return nil
}

func decodeCheckpoint(br *bufio.Reader, d *Data, version int) error {
	seq, err := readUvarint(br)
	if err != nil {
		return err
	}
	hash, err := readHash(br)
	if err != nil {
		return err
	}
	n, err := readUvarint(br)
	if err != nil {
		return err
	}
	if n > maxThreads {
		return fmt.Errorf("thread count %d exceeds cap", n)
	}
	c := trace.Checkpoint{Seq: int64(seq), Hash: hash}
	if n > 0 {
		c.Threads = make([]trace.ThreadHash, 0, min(n, 4096))
	}
	for i := uint64(0); i < n; i++ {
		tid, err := readUvarint(br)
		if err != nil {
			return err
		}
		h, err := readHash(br)
		if err != nil {
			return err
		}
		c.Threads = append(c.Threads, trace.ThreadHash{Tid: int(tid), Hash: h})
	}
	if version >= 2 {
		ns, err := readUvarint(br)
		if err != nil {
			return err
		}
		if ns > maxThreads {
			return fmt.Errorf("shard count %d exceeds cap", ns)
		}
		for i := uint64(0); i < ns; i++ {
			sh, err := readUvarint(br)
			if err != nil {
				return err
			}
			h, err := readHash(br)
			if err != nil {
				return err
			}
			c.Shards = append(c.Shards, trace.ShardHash{Shard: int(sh), Hash: h})
		}
	}
	d.Checkpoints = append(d.Checkpoints, c)
	return nil
}
