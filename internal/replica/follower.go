// Package replica serves reads from a supervised fleet of commit-log
// followers — the read scale-out layer the commit log's
// replica-equivalence property (docs/commitlog.md) pays for. Each
// follower feeds an incremental replica of the run's committed memory
// from internal/commitlog, either live (Log.Stream) or by tailing the
// directory (Reader.ForEachAvailableFrom), and answers versioned reads:
// ReadAt(version, page) returns the page's committed content at exactly
// that version, ReadLatest returns the follower's newest state under an
// explicit staleness bound.
//
// The robustness machinery is the point (docs/replication.md). A
// supervisor goroutine per follower recovers panics (including injected
// follower-kill chaos), restarts the follower from the newest retained
// snapshot with replay-resume, and wraps every directory read in a
// jittered, capped, seeded-deterministic retry/backoff loop so torn
// tails and unreadable segments degrade to latency, never to wrong
// answers. Followers whose lag exceeds the fleet's bound are drained
// from latest-read routing (they still serve explicitly-versioned reads)
// and re-admitted after catch-up. Because followers are pure consumers,
// none of this can move the writer's results: any read at version v
// returns byte-identical content on every follower that can serve it,
// across every chaos profile and crash/restart schedule —
// scripts/check.sh gates exactly that.
package replica

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/commitlog"
)

// ErrFutureVersion reports a ReadAt target the follower has not applied
// yet (the caller may retry, or route to a less-lagged follower).
var ErrFutureVersion = fmt.Errorf("replica: version not yet applied")

// ErrEvictedVersion reports a ReadAt target older than the follower's
// history floor: either before the snapshot it restarted from, or pruned
// past its undo window.
var ErrEvictedVersion = fmt.Errorf("replica: version evicted from history")

// pageRev is one undo entry: the content a page had BEFORE the commit at
// Ver replaced it. ReadAt(v) for v < Ver serves from the first entry
// with Ver > v; the entries for a page ascend by Ver.
type pageRev struct {
	ver  int64
	data []byte
}

// Follower is one replica: the current committed pages plus a bounded
// per-page undo history for versioned reads. Applies come from the
// follower's feed goroutine; reads take the read-lock, so many readers
// share a follower. All returned slices are copies.
type Follower struct {
	id       int
	pageSize int
	npages   int
	window   int64 // undo history depth in versions; <= 0 keeps everything

	mu      sync.RWMutex
	pages   map[int][]byte
	hist    map[int][]pageRev
	version int64 // last applied commit's version
	atSeq   int64
	applied int64 // commit records applied since the last restore
	floor   int64 // oldest version answerable (snapshot restore raises it)
}

// newFollower builds an empty follower with the log's geometry.
func newFollower(id, pageSize, npages int, window int64) *Follower {
	return &Follower{
		id:       id,
		pageSize: pageSize,
		npages:   npages,
		window:   window,
		pages:    make(map[int][]byte),
		hist:     make(map[int][]pageRev),
	}
}

// ID returns the follower's index in its fleet.
func (f *Follower) ID() int { return f.id }

// Version returns the last applied commit's version.
func (f *Follower) Version() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.version
}

// Floor returns the oldest version the follower can answer ReadAt for:
// the version of the snapshot it last restored from, raised further as
// the undo window prunes.
func (f *Follower) Floor() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.effectiveFloor()
}

// effectiveFloor combines the restore floor with the undo window (mu
// held).
func (f *Follower) effectiveFloor() int64 {
	floor := f.floor
	if f.window > 0 && f.version-f.window > floor {
		floor = f.version - f.window
	}
	return floor
}

// reset discards all replica state (a restart from scratch).
func (f *Follower) reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pages = make(map[int][]byte)
	f.hist = make(map[int][]pageRev)
	f.version, f.atSeq, f.applied, f.floor = 0, 0, 0, 0
}

// restore resets the replica to a snapshot record's state; history before
// the snapshot is unknown, so the floor rises to its version.
func (f *Follower) restore(s commitlog.Snapshot) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pages = make(map[int][]byte)
	f.hist = make(map[int][]pageRev)
	for _, pd := range s.Pages {
		buf := make([]byte, f.pageSize)
		for _, r := range pd.Runs {
			copy(buf[r.Off:], r.Data)
		}
		f.pages[pd.Page] = buf
	}
	f.version, f.atSeq = s.Version, s.AtSeq
	f.applied = 0
	f.floor = s.Version
}

// apply advances the replica by one commit. Duplicates (a resubscribe
// overlapping the already-applied prefix) are skipped and report false;
// a version gap is an error — the feed must restart rather than serve a
// state no writer ever had.
func (f *Follower) apply(c commitlog.Commit) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.Version <= f.version {
		return false, nil // duplicate: already applied
	}
	if c.Version != f.version+1 {
		// On a fresh follower this means history was truncated underneath
		// it with no snapshot to anchor on; mid-stream it is a gap. Either
		// way the feed must restart rather than serve a state no writer
		// ever had.
		return false, fmt.Errorf("replica: version gap %d -> %d", f.version, c.Version)
	}
	for _, pd := range c.Pages {
		buf := f.pages[pd.Page]
		if buf == nil {
			buf = make([]byte, f.pageSize)
			f.pages[pd.Page] = buf
		}
		// Undo entry: the content this commit replaces.
		prev := make([]byte, f.pageSize)
		copy(prev, buf)
		f.hist[pd.Page] = append(f.hist[pd.Page], pageRev{ver: c.Version, data: prev})
		for _, r := range pd.Runs {
			copy(buf[r.Off:], r.Data)
		}
	}
	f.version, f.atSeq = c.Version, c.AtSeq
	f.applied++
	f.prune()
	return true, nil
}

// prune drops undo entries older than the window (mu held). An entry at
// ver answers reads for versions < ver, so it is droppable once every
// answerable version has a newer entry or the current page to serve from.
func (f *Follower) prune() {
	if f.window <= 0 {
		return
	}
	cut := f.version - f.window
	if cut <= 0 {
		return
	}
	for pg, revs := range f.hist {
		i := 0
		for i < len(revs) && revs[i].ver <= cut {
			i++
		}
		if i == 0 {
			continue
		}
		if i == len(revs) {
			delete(f.hist, pg)
			continue
		}
		f.hist[pg] = append([]pageRev(nil), revs[i:]...)
	}
}

// ReadAt returns a copy of the page's committed content at exactly
// version v. The determinism contract: every follower able to serve
// (v, pg) returns byte-identical content, regardless of its own crash or
// chaos history.
func (f *Follower) ReadAt(v int64, pg int) ([]byte, error) {
	if pg < 0 || pg >= f.npages {
		return nil, fmt.Errorf("replica: page %d out of range [0,%d)", pg, f.npages)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if v > f.version {
		return nil, ErrFutureVersion
	}
	if v < f.effectiveFloor() {
		return nil, ErrEvictedVersion
	}
	// The first undo entry newer than v holds the content v saw; with no
	// such entry the page has not changed since v, so current content is
	// the answer.
	for _, rev := range f.hist[pg] {
		if rev.ver > v {
			out := make([]byte, f.pageSize)
			copy(out, rev.data)
			return out, nil
		}
	}
	out := make([]byte, f.pageSize)
	if buf, ok := f.pages[pg]; ok {
		copy(out, buf)
	}
	return out, nil
}

// ReadLatest returns a copy of the page's newest applied content and the
// version it is current as of. Staleness policy (the lag bound) is the
// fleet's job; a bare follower always answers.
func (f *Follower) ReadLatest(pg int) ([]byte, int64, error) {
	if pg < 0 || pg >= f.npages {
		return nil, 0, fmt.Errorf("replica: page %d out of range [0,%d)", pg, f.npages)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]byte, f.pageSize)
	if buf, ok := f.pages[pg]; ok {
		copy(out, buf)
	}
	return out, f.version, nil
}

// Checksum hashes the follower's current state — every page ascending,
// untouched pages as zeros — exactly as the live runtime's Checksum and
// commitlog.State.Checksum do, so a caught-up follower must equal both.
func (f *Follower) Checksum() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	h := fnv.New64a()
	zero := make([]byte, f.pageSize)
	for pg := 0; pg < f.npages; pg++ {
		if buf, ok := f.pages[pg]; ok {
			h.Write(buf)
		} else {
			h.Write(zero)
		}
	}
	return h.Sum64()
}
