package replica

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/commitlog"
	"repro/internal/obs"
)

// ErrNoFollower reports a read no follower could serve: every follower is
// either lagging past the bound (ReadLatest) or missing the requested
// version's history (ReadAt).
var ErrNoFollower = fmt.Errorf("replica: no follower can serve this read")

// Options configures a Fleet.
type Options struct {
	// Followers is the number of serving followers (default 2).
	Followers int
	// HistoryVersions bounds each follower's per-page undo history: a
	// follower at version v answers ReadAt down to v-HistoryVersions (or
	// its restart snapshot, whichever is newer). 0 applies the default
	// (256); negative keeps unbounded history.
	HistoryVersions int64
	// MaxLag is the staleness bound in versions (default 64): a follower
	// lagging further is drained from latest-read routing — it still
	// serves explicitly-versioned ReadAt — and re-admitted once it
	// catches back up within the bound.
	MaxLag int64
	// Archive adds one extra chaos-exempt follower with unbounded
	// history that never serves ReadLatest: the availability backstop
	// that guarantees every committed (version, page) stays answerable
	// regardless of the serving fleet's crash schedule. The determinism
	// gate leans on it: with an archive, the set of servable versioned
	// reads is chaos-invariant.
	Archive bool
	// Seed drives the fleet's jittered backoff draws and, combined with
	// Chaos, the injected follower faults; fixed seed, fixed schedule.
	Seed int64
	// RetryBase/RetryCap bound the exponential backoff between a
	// follower's restart attempts (defaults 500µs, 100ms). Jitter is
	// seeded-deterministic: the k-th backoff of follower i is a pure
	// function of (Seed, i, k).
	RetryBase time.Duration
	RetryCap  time.Duration
	// StallTimeout restarts a follower that made no progress while the
	// writer's frontier advanced for this long (default 2s) — the
	// stalled-stream death mode.
	StallTimeout time.Duration
	// PollInterval paces directory tailing between records appearing
	// (default 2ms); live streams push and do not poll.
	PollInterval time.Duration
	// Chaos arms follower-side fault injection (follower-kill,
	// follower-stall, follower-tear knobs); each follower draws from its
	// own stream. Never applied to the archive follower.
	Chaos *chaos.Injector
	// Registry, when non-nil, registers the replica_* metrics
	// (replica_lag per follower, replica_restarts_total,
	// replica_reads_{served,redirected,rejected}, the replica_lag_hist
	// histogram and replica_catchup_ns) for the analyzer.
	Registry *obs.Registry
	// SnapshotOnRestart, in live mode, has the supervisor call
	// Log.RequestSnapshot before a killed follower rebuilds, so the
	// rebuild replays from a fresh anchor instead of a long tail.
	SnapshotOnRestart bool
	// RepairOnError, in directory mode, invokes commitlog.Repair when a
	// scan hits an unreadable segment (not a mere torn tail, which
	// tolerant reads skip). Only safe when no writer is alive on the
	// directory.
	RepairOnError bool
	// OnApply, when non-nil, observes every commit a follower applies
	// (called from the follower's feed goroutine, after the apply).
	// conseq-replay -follow uses it for per-commit output.
	OnApply func(follower int, c commitlog.Commit)
}

// withDefaults fills the zero-value knobs.
func (o Options) withDefaults() Options {
	if o.Followers <= 0 {
		o.Followers = 2
	}
	if o.HistoryVersions == 0 {
		o.HistoryVersions = 256
	}
	if o.MaxLag <= 0 {
		o.MaxLag = 64
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 500 * time.Microsecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 100 * time.Millisecond
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 2 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Millisecond
	}
	return o
}

// FleetStats is a point-in-time summary of the fleet's activity.
type FleetStats struct {
	Followers       int   // serving followers (excludes the archive)
	Admitted        int   // followers currently inside the lag bound
	Frontier        int64 // newest committed version the fleet knows of
	Restarts        int64 // follower restarts (kills, tears, stalls, panics)
	ReadsServed     int64 // reads answered by an admitted follower
	ReadsRedirected int64 // reads answered only after falling back to a drained or archive follower
	ReadsRejected   int64 // reads no follower could answer
	Catchups        int64 // completed restart-to-caught-up cycles
	CatchupNSLast   int64 // wall ns of the most recent catch-up
	CatchupNSMax    int64 // wall ns of the slowest catch-up
}

// errTear marks an injected (or real) mid-stream read failure: the
// follower keeps its state and resubscribes from version+1.
var errTear = fmt.Errorf("replica: subscription torn mid-stream")

// errKicked marks a supervisor-forced restart (stalled stream).
var errKicked = fmt.Errorf("replica: follower kicked by stall watchdog")

// follower runtime state owned by the fleet.
type fstate struct {
	f       *Follower
	archive bool

	// Feed-goroutine-owned (no locking): the chaos draw stream, the next
	// directory record to scan (-1 = recompute from the newest anchor),
	// and whether the end trailer has been seen.
	cs     *chaos.Stream
	cursor int64
	sawEnd bool

	admitted    atomic.Bool
	finished    atomic.Bool // feed reached the log's end
	restartReq  atomic.Bool // stall watchdog asked for a restart
	stream      atomic.Pointer[commitlog.Stream]
	lastVersion atomic.Int64 // progress marker for the stall watchdog
	lastMoveNS  atomic.Int64 // wall clock of the last progress

	restartStartNS atomic.Int64 // wall clock of the current (re)start
	restartTarget  atomic.Int64 // frontier at (re)start: catch-up goal
	caughtUp       atomic.Bool
}

// Fleet is a supervised set of followers behind a versioned read API.
// Create with New, Start it, read with ReadAt/ReadLatest, Close when
// done. All methods are safe for concurrent use.
type Fleet struct {
	dir string
	log *commitlog.Log // nil in directory (out-of-process) mode
	o   Options

	pageSize int
	npages   int
	states   []*fstate // serving followers, then optionally the archive

	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
	started bool

	frontier atomic.Int64
	rr       atomic.Int64 // round-robin read cursor

	restarts        atomic.Int64
	readsServed     atomic.Int64
	readsRedirected atomic.Int64
	readsRejected   atomic.Int64
	catchups        atomic.Int64
	catchupNSLast   atomic.Int64
	catchupNSMax    atomic.Int64

	lagHist     *obs.Histogram // nil without a registry
	catchupHist *obs.Histogram
}

// New prepares a fleet over a commit-log directory. live, when non-nil,
// is the in-process writer: followers subscribe to its Stream and the
// supervisor may request snapshots from it. With live nil the fleet
// tails the directory (the out-of-process mode conseq-replay -follow
// uses). Nothing runs until Start.
func New(dir string, live *commitlog.Log, o Options) *Fleet {
	return &Fleet{dir: dir, log: live, o: o.withDefaults(), stop: make(chan struct{})}
}

// Start reads the log's geometry (blocking with backoff until the first
// segment's meta frame is durable, so it can be called while the writer
// warms up), builds the followers and launches the feed and watchdog
// goroutines.
func (fl *Fleet) Start() error {
	if fl.started {
		return fmt.Errorf("replica: fleet already started")
	}
	if fl.log != nil {
		fl.log.Sync()
	}
	r := (*commitlog.Reader)(nil)
	bo := fl.backoffFor(-1)
	for attempt := 0; ; attempt++ {
		var err error
		if r, err = commitlog.OpenReader(fl.dir); err == nil {
			break
		}
		if fl.log != nil {
			return err // an attached writer's directory must be readable
		}
		if !fl.sleep(bo.next(attempt)) {
			return fmt.Errorf("replica: closed before the log appeared: %w", err)
		}
	}
	fl.pageSize, fl.npages = r.PageSize(), r.NumPages()
	for i := 0; i < fl.o.Followers; i++ {
		s := &fstate{f: newFollower(i, fl.pageSize, fl.npages, fl.o.HistoryVersions), cursor: -1}
		if fl.o.Chaos != nil {
			s.cs = fl.o.Chaos.FollowerStream(i)
		}
		fl.states = append(fl.states, s)
	}
	if fl.o.Archive {
		// The archive is chaos-exempt and keeps unbounded history.
		fl.states = append(fl.states, &fstate{f: newFollower(len(fl.states), fl.pageSize, fl.npages, -1), archive: true, cursor: -1})
	}
	fl.registerMetrics()
	now := time.Now().UnixNano()
	for _, s := range fl.states {
		s.lastMoveNS.Store(now)
		fl.wg.Add(1)
		go fl.supervise(s)
	}
	fl.wg.Add(1)
	go fl.watchdog()
	fl.started = true
	return nil
}

// Close stops every follower and waits for the goroutines to exit. The
// followers keep their state: reads keep working against whatever was
// applied. Idempotent.
func (fl *Fleet) Close() {
	if fl.stopped.CompareAndSwap(false, true) {
		close(fl.stop)
		for _, s := range fl.states {
			if st := s.stream.Load(); st != nil {
				st.Close()
			}
		}
	}
	fl.wg.Wait()
}

// Followers returns the serving followers plus the archive (last, when
// configured) — test and digest hooks; routing goes through
// ReadAt/ReadLatest.
func (fl *Fleet) Followers() []*Follower {
	out := make([]*Follower, len(fl.states))
	for i, s := range fl.states {
		out[i] = s.f
	}
	return out
}

// Done reports whether every feed has retired at the log's end trailer
// (always false while the writer is still running).
func (fl *Fleet) Done() bool {
	if !fl.started {
		return false
	}
	for _, s := range fl.states {
		if !s.finished.Load() {
			return false
		}
	}
	return true
}

// Dir returns the commit-log directory the fleet follows.
func (fl *Fleet) Dir() string { return fl.dir }

// NumPages returns the replica geometry's page count (0 before Start).
func (fl *Fleet) NumPages() int { return fl.npages }

// Frontier returns the newest committed version the fleet knows of.
func (fl *Fleet) Frontier() int64 {
	fl.refreshFrontier()
	return fl.frontier.Load()
}

// Stats snapshots the fleet counters.
func (fl *Fleet) Stats() FleetStats {
	st := FleetStats{
		Frontier:        fl.Frontier(),
		Restarts:        fl.restarts.Load(),
		ReadsServed:     fl.readsServed.Load(),
		ReadsRedirected: fl.readsRedirected.Load(),
		ReadsRejected:   fl.readsRejected.Load(),
		Catchups:        fl.catchups.Load(),
		CatchupNSLast:   fl.catchupNSLast.Load(),
		CatchupNSMax:    fl.catchupNSMax.Load(),
	}
	for _, s := range fl.states {
		if s.archive {
			continue
		}
		st.Followers++
		if s.admitted.Load() {
			st.Admitted++
		}
	}
	return st
}

// WaitCaughtUp blocks until every follower (archive included) has
// applied at least version target, or the timeout expires.
func (fl *Fleet) WaitCaughtUp(target int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		behind := -1
		for _, s := range fl.states {
			if s.f.Version() < target {
				behind = s.f.id
				break
			}
		}
		if behind < 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica: follower %d still behind version %d after %v", behind, target, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ReadAt serves a versioned read: byte-identical on every follower able
// to serve it, by the replica-equivalence argument. Routing prefers
// admitted followers round-robin; a read only a drained or archive
// follower can answer counts as redirected; a read nobody can answer is
// rejected with the last follower error.
func (fl *Fleet) ReadAt(v int64, pg int) ([]byte, error) {
	n := len(fl.states)
	if n == 0 {
		return nil, fmt.Errorf("replica: fleet not started")
	}
	start := int(fl.rr.Add(1))
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for k := 0; k < n; k++ {
			s := fl.states[(start+k)%n]
			admitted := s.admitted.Load() && !s.archive
			if (pass == 0) != admitted {
				continue
			}
			b, err := s.f.ReadAt(v, pg)
			if err != nil {
				lastErr = err
				continue
			}
			if pass == 0 {
				fl.readsServed.Add(1)
			} else {
				fl.readsRedirected.Add(1)
			}
			return b, nil
		}
	}
	fl.readsRejected.Add(1)
	if lastErr == nil {
		lastErr = ErrNoFollower
	}
	return nil, fmt.Errorf("%w (version %d page %d): %v", ErrNoFollower, v, pg, lastErr)
}

// ReadLatest serves the newest state within the staleness bound: the
// least-lagged admitted follower answers, with the version the content
// is current as of. With every serving follower drained the read is
// rejected — bounded staleness degrades to unavailability, never to a
// silent stale answer.
func (fl *Fleet) ReadLatest(pg int) ([]byte, int64, error) {
	frontier := fl.Frontier()
	var best *fstate
	var bestV int64 = -1
	for _, s := range fl.states {
		if s.archive || !s.admitted.Load() {
			continue
		}
		if v := s.f.Version(); v > bestV && frontier-v <= fl.o.MaxLag {
			best, bestV = s, v
		}
	}
	if best == nil {
		fl.readsRejected.Add(1)
		return nil, 0, fmt.Errorf("%w (every follower lags past %d versions)", ErrNoFollower, fl.o.MaxLag)
	}
	b, v, err := best.f.ReadLatest(pg)
	if err != nil {
		fl.readsRejected.Add(1)
		return nil, 0, err
	}
	fl.readsServed.Add(1)
	return b, v, nil
}
