package replica

import (
	"testing"
	"time"

	"repro/internal/commitlog"
)

// benchFleet builds a caught-up live fleet over nCommits synthetic
// commits.
func benchFleet(b *testing.B, nCommits int) (*Fleet, func()) {
	b.Helper()
	dir := b.TempDir()
	l, err := commitlog.Create(dir, commitlog.Options{SegmentBytes: 1 << 16, SnapshotEvery: 256})
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Begin(tPageSize, tNumPages); err != nil {
		b.Fatal(err)
	}
	for _, c := range mkCommitsB(nCommits) {
		l.Append(c)
	}
	fl := New(dir, l, Options{Followers: 2, Archive: true, HistoryVersions: 128, Seed: 1})
	if err := fl.Start(); err != nil {
		b.Fatal(err)
	}
	if err := fl.WaitCaughtUp(int64(nCommits), 30*time.Second); err != nil {
		b.Fatal(err)
	}
	return fl, func() {
		l.Close()
		fl.Close()
	}
}

// mkCommitsB mirrors the test stream without *testing.T plumbing.
func mkCommitsB(n int) []commitlog.Commit {
	return mkCommits(n)
}

// BenchmarkReplicaReads measures fleet.ReadAt throughput at a recent
// version (the admitted-follower fast path).
func BenchmarkReplicaReads(b *testing.B) {
	const n = 2000
	fl, done := benchFleet(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int64(n - 50 + i%50)
		if _, err := fl.ReadAt(v, i%tNumPages); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
	done()
}

// BenchmarkRestartCatchup measures restart-to-caught-up: the
// snapshot-anchored rebuild a supervisor performs after a follower
// death — open the directory, find the newest anchor, restore and
// replay the tail back to the frontier.
func BenchmarkRestartCatchup(b *testing.B) {
	const n = 2000
	dir := b.TempDir()
	l, err := commitlog.Create(dir, commitlog.Options{SegmentBytes: 1 << 16, SnapshotEvery: 256})
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Begin(tPageSize, tNumPages); err != nil {
		b.Fatal(err)
	}
	for _, c := range mkCommitsB(n) {
		l.Append(c)
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := newFollower(0, tPageSize, tNumPages, 128)
		r, err := commitlog.OpenReader(dir)
		if err != nil {
			b.Fatal(err)
		}
		anchor, err := r.NewestAnchorRec()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ForEachAvailableFrom(anchor, func(_ int64, rc commitlog.Record) error {
			switch rc.Kind {
			case commitlog.KindSnapshot:
				if f.Version() == 0 {
					f.restore(rc.Snapshot)
				}
			case commitlog.KindCommit:
				if _, err := f.apply(rc.Commit); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if f.Version() != n {
			b.Fatalf("rebuilt to %d, want %d", f.Version(), n)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/restart")
}
