package replica

import (
	"errors"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/commitlog"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Test geometry matches the commitlog package's tests.
const (
	tPageSize = 64
	tNumPages = 16
)

// mkCommits builds the same deterministic synthetic commit stream the
// commitlog tests use: version v writes a few bytes to pages keyed off
// v, pages ascending within a record.
func mkCommits(n int) []commitlog.Commit {
	cs := make([]commitlog.Commit, 0, n)
	for v := 1; v <= n; v++ {
		c := commitlog.Commit{AtSeq: int64(3 * v), Version: int64(v), Tid: v % 4, Clock: int64(100 * v)}
		for k := 0; k < 1+v%3; k++ {
			pg := (v*7 + k*5) % tNumPages
			off := (v * 11) % (tPageSize - 8)
			data := []byte{byte(v), byte(v >> 8), byte(k + 1), 0xAB}
			c.Pages = append(c.Pages, commitlog.PageDiff{Page: pg, Runs: []mem.Run{{Off: off, Data: data}}})
		}
		for i := 1; i < len(c.Pages); i++ {
			for j := i; j > 0 && c.Pages[j-1].Page > c.Pages[j].Page; j-- {
				c.Pages[j-1], c.Pages[j] = c.Pages[j], c.Pages[j-1]
			}
		}
		dedup := c.Pages[:1]
		for _, pd := range c.Pages[1:] {
			if pd.Page != dedup[len(dedup)-1].Page {
				dedup = append(dedup, pd)
			}
		}
		c.Pages = dedup
		cs = append(cs, c)
	}
	return cs
}

// refPages replays commits[0:upto] into a fresh page array — the
// independent reference every follower answer is checked against.
func refPages(commits []commitlog.Commit, upto int64) [][]byte {
	pages := make([][]byte, tNumPages)
	for i := range pages {
		pages[i] = make([]byte, tPageSize)
	}
	for _, c := range commits {
		if c.Version > upto {
			break
		}
		for _, pd := range c.Pages {
			for _, r := range pd.Runs {
				copy(pages[pd.Page][r.Off:], r.Data)
			}
		}
	}
	return pages
}

func refChecksum(pages [][]byte) uint64 {
	h := fnv.New64a()
	for _, p := range pages {
		h.Write(p)
	}
	return h.Sum64()
}

// writeLog writes the commit stream to a fresh log directory and closes
// it (end trailer included) unless keepOpen, in which case the live log
// is returned.
func writeLog(t *testing.T, dir string, commits []commitlog.Commit, opts commitlog.Options, keepOpen bool) *commitlog.Log {
	t.Helper()
	l, err := commitlog.Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(tPageSize, tNumPages); err != nil {
		t.Fatal(err)
	}
	for _, c := range commits {
		l.Append(c)
	}
	if keepOpen {
		return l
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return nil
}

// A bare follower must answer ReadAt for every (version, page) with
// exactly the reference content, skip duplicates, reject gaps, and
// evict past its undo window.
func TestFollowerVersionedReads(t *testing.T) {
	const n = 60
	commits := mkCommits(n)
	f := newFollower(0, tPageSize, tNumPages, -1)
	for _, c := range commits {
		applied, err := f.apply(c)
		if err != nil || !applied {
			t.Fatalf("apply v%d: applied=%v err=%v", c.Version, applied, err)
		}
	}
	if dup, err := f.apply(commits[10]); dup || err != nil {
		t.Fatalf("duplicate apply: applied=%v err=%v", dup, err)
	}
	if _, err := f.apply(commitlog.Commit{Version: n + 5}); err == nil {
		t.Fatal("gap apply must error")
	}
	if f.Version() != n {
		t.Fatalf("version %d after gap/dup, want %d", f.Version(), n)
	}
	for v := int64(0); v <= n; v++ {
		want := refPages(commits, v)
		for pg := 0; pg < tNumPages; pg++ {
			got, err := f.ReadAt(v, pg)
			if err != nil {
				t.Fatalf("ReadAt(%d,%d): %v", v, pg, err)
			}
			if string(got) != string(want[pg]) {
				t.Fatalf("ReadAt(%d,%d) differs from reference", v, pg)
			}
		}
	}
	if _, err := f.ReadAt(n+1, 0); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("future read: %v", err)
	}

	// A windowed follower evicts old versions but stays exact inside the
	// window.
	w := newFollower(1, tPageSize, tNumPages, 8)
	for _, c := range commits {
		if _, err := w.apply(c); err != nil {
			t.Fatal(err)
		}
	}
	if w.Floor() != n-8 {
		t.Fatalf("windowed floor %d, want %d", w.Floor(), n-8)
	}
	if _, err := w.ReadAt(n-9, 0); !errors.Is(err, ErrEvictedVersion) {
		t.Fatalf("evicted read: %v", err)
	}
	for v := int64(n - 8); v <= n; v++ {
		want := refPages(commits, v)
		for pg := 0; pg < tNumPages; pg++ {
			got, err := w.ReadAt(v, pg)
			if err != nil {
				t.Fatalf("windowed ReadAt(%d,%d): %v", v, pg, err)
			}
			if string(got) != string(want[pg]) {
				t.Fatalf("windowed ReadAt(%d,%d) differs", v, pg)
			}
		}
	}
}

// A live fleet must converge to the writer's exact state and serve any
// sampled version byte-identically to an independent replay (the
// archive backstopping versions the serving followers evicted).
func TestFleetLiveConverges(t *testing.T) {
	const n = 300
	dir := t.TempDir()
	commits := mkCommits(n)
	l := writeLog(t, dir, nil, commitlog.Options{SegmentBytes: 4096, SnapshotEvery: 64}, true)
	fl := New(dir, l, Options{Followers: 2, Archive: true, HistoryVersions: 32, Seed: 7})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	for _, c := range commits {
		l.Append(c)
	}
	if err := fl.WaitCaughtUp(n, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	wantSum := refChecksum(refPages(commits, n))
	for _, f := range fl.Followers() {
		if got := f.Checksum(); got != wantSum {
			t.Fatalf("follower %d checksum %016x, want %016x", f.ID(), got, wantSum)
		}
	}
	for _, v := range []int64{0, 1, n / 4, n / 2, n - 1, n} {
		want := refPages(commits, v)
		for pg := 0; pg < tNumPages; pg++ {
			got, err := fl.ReadAt(v, pg)
			if err != nil {
				t.Fatalf("ReadAt(%d,%d): %v", v, pg, err)
			}
			if string(got) != string(want[pg]) {
				t.Fatalf("ReadAt(%d,%d) differs from reference", v, pg)
			}
		}
	}
	b, v, err := fl.ReadLatest(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != n || string(b) != string(refPages(commits, n)[3]) {
		t.Fatalf("ReadLatest page 3: version %d", v)
	}
	st := fl.Stats()
	if st.ReadsServed == 0 || st.ReadsRejected != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Old versions outlive the serving followers' undo window only via
	// the archive, so some reads above must have redirected.
	if st.ReadsRedirected == 0 {
		t.Fatalf("no read redirected to the archive: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fl.Close()
	if got := fl.Frontier(); got != n {
		t.Fatalf("frontier %d after close, want %d", got, n)
	}
}

// The determinism gate in miniature: under every follower chaos profile
// and several seeds, a chaos-torn fleet must answer every sampled
// ReadAt byte-identically to the independent reference replay, and
// kill/tear profiles must actually exercise restarts.
func TestFleetChaosDeterminism(t *testing.T) {
	const n = 400
	commits := mkCommits(n)
	samples := []int64{1, 37, n / 3, n / 2, n - 1, n}
	for _, profile := range []string{"follower-kill", "follower-stall", "follower-tear"} {
		for seed := int64(1); seed <= 3; seed++ {
			dir := t.TempDir()
			l := writeLog(t, dir, nil, commitlog.Options{SegmentBytes: 4096, SnapshotEvery: 32}, true)
			in, err := chaos.New(profile, seed)
			if err != nil {
				t.Fatal(err)
			}
			fl := New(dir, l, Options{
				Followers: 2, Archive: true, HistoryVersions: 64,
				Seed: seed, Chaos: in, SnapshotOnRestart: true,
			})
			if err := fl.Start(); err != nil {
				t.Fatal(err)
			}
			// Let the subscriptions attach before the bulk of the run so
			// the commits flow through the live apply path (and its chaos
			// hooks) rather than being absorbed by the bootstrap snapshot.
			l.Append(commits[0])
			if err := fl.WaitCaughtUp(1, 10*time.Second); err != nil {
				t.Fatalf("%s:%d: %v", profile, seed, err)
			}
			for _, c := range commits[1:] {
				l.Append(c)
			}
			if err := fl.WaitCaughtUp(n, 20*time.Second); err != nil {
				t.Fatalf("%s:%d: %v", profile, seed, err)
			}
			wantSum := refChecksum(refPages(commits, n))
			for _, f := range fl.Followers() {
				if got := f.Checksum(); got != wantSum {
					t.Fatalf("%s:%d follower %d checksum %016x, want %016x", profile, seed, f.ID(), got, wantSum)
				}
			}
			for _, v := range samples {
				want := refPages(commits, v)
				for pg := 0; pg < tNumPages; pg++ {
					got, err := fl.ReadAt(v, pg)
					if err != nil {
						t.Fatalf("%s:%d ReadAt(%d,%d): %v", profile, seed, v, pg, err)
					}
					if string(got) != string(want[pg]) {
						t.Fatalf("%s:%d ReadAt(%d,%d) differs from reference", profile, seed, v, pg)
					}
				}
			}
			st := fl.Stats()
			if profile != "follower-stall" && st.Restarts == 0 {
				t.Fatalf("%s:%d injected no restarts (stats %+v, chaos %+v)", profile, seed, st, in.Stats())
			}
			if st.Restarts > 0 && st.Catchups == 0 {
				t.Fatalf("%s:%d restarted without a measured catch-up: %+v", profile, seed, st)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			fl.Close()
		}
	}
}

// Directory mode must tail a log being written by another process
// (simulated here by a writer the fleet is not attached to) and finish
// at the end trailer with the exact final state.
func TestFleetDirModeTailsToEnd(t *testing.T) {
	const n = 150
	dir := t.TempDir()
	commits := mkCommits(n)
	l := writeLog(t, dir, nil, commitlog.Options{SegmentBytes: 2048, SnapshotEvery: 40}, true)
	l.Sync() // make the meta frame durable so the tailing fleet can read geometry
	fl := New(dir, nil, Options{Followers: 1, Archive: true, PollInterval: time.Millisecond, Seed: 3})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	for i, c := range commits {
		l.Append(c)
		if i == n/2 {
			l.Sync() // make a mid-run prefix durable so tailing overlaps writing
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fl.WaitCaughtUp(n, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, s := range fl.states {
			if !s.finished.Load() {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("feeds did not finish at the end trailer")
		}
		time.Sleep(time.Millisecond)
	}
	wantSum := refChecksum(refPages(commits, n))
	for _, f := range fl.Followers() {
		if got := f.Checksum(); got != wantSum {
			t.Fatalf("follower %d checksum %016x, want %016x", f.ID(), got, wantSum)
		}
	}
	if got := fl.Frontier(); got != n {
		t.Fatalf("frontier %d, want %d", got, n)
	}
}

// Bounded staleness must degrade to rejection, never to a silent stale
// answer: with the frontier far ahead every serving follower drains
// (latest reads rejected, versioned reads still served), and catching
// back up re-admits them.
func TestFleetDrainAndReadmit(t *testing.T) {
	const half, n = 100, 200
	dir := t.TempDir()
	commits := mkCommits(n)
	l := writeLog(t, dir, nil, commitlog.Options{SegmentBytes: 4096, SnapshotEvery: 50}, true)
	fl := New(dir, l, Options{Followers: 2, MaxLag: 20, Seed: 11})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	for _, c := range commits[:half] {
		l.Append(c)
	}
	if err := fl.WaitCaughtUp(half, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The writer commits far past the followers (simulated by raising
	// the frontier before the stream delivers): every follower drains.
	fl.raiseFrontier(half + 100)
	for _, s := range fl.states {
		fl.updateAdmission(s)
		if s.admitted.Load() {
			t.Fatalf("follower %d admitted at lag %d > MaxLag", s.f.ID(), half+100-s.f.Version())
		}
	}
	if _, _, err := fl.ReadLatest(0); !errors.Is(err, ErrNoFollower) {
		t.Fatalf("drained fleet served a latest read: %v", err)
	}
	rejected := fl.Stats().ReadsRejected
	if rejected == 0 {
		t.Fatal("rejection not counted")
	}
	// Versioned reads still work from drained followers (counted as
	// redirected).
	if _, err := fl.ReadAt(half, 2); err != nil {
		t.Fatalf("drained follower refused a versioned read: %v", err)
	}
	if fl.Stats().ReadsRedirected == 0 {
		t.Fatal("drained versioned read not counted as redirected")
	}
	// Catch-up past the bound re-admits.
	for _, c := range commits[half:] {
		l.Append(c)
	}
	if err := fl.WaitCaughtUp(n, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fl.Stats().Admitted != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("followers not re-admitted: %+v", fl.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := fl.ReadLatest(0); err != nil {
		t.Fatalf("re-admitted fleet rejected a latest read: %v", err)
	}
}

// Backoff delays must be deterministic per (seed, follower), jittered,
// and capped.
func TestBackoffDeterministicCapped(t *testing.T) {
	fl := New("/nonexistent", nil, Options{Seed: 5, RetryBase: time.Millisecond, RetryCap: 16 * time.Millisecond})
	a, b := fl.backoffFor(2), fl.backoffFor(2)
	other := fl.backoffFor(3)
	differs := false
	for i := 0; i < 20; i++ {
		da, db := a.next(i), b.next(i)
		if da != db {
			t.Fatalf("attempt %d: %v != %v across replays", i, da, db)
		}
		if da > 16*time.Millisecond+8*time.Millisecond {
			t.Fatalf("attempt %d: %v exceeds cap+jitter", i, da)
		}
		if da != other.next(i) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("followers 2 and 3 drew identical backoff sequences")
	}
}

// An obs registry attached to the fleet must expose the replica metric
// family.
func TestFleetMetricsRegistered(t *testing.T) {
	const n = 50
	dir := t.TempDir()
	commits := mkCommits(n)
	l := writeLog(t, dir, nil, commitlog.Options{}, true)
	reg := obs.NewRegistry()
	fl := New(dir, l, Options{Followers: 1, Archive: true, Registry: reg, Seed: 1})
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	for _, c := range commits {
		l.Append(c)
	}
	if err := fl.WaitCaughtUp(n, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.ReadAt(n, 0); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"replica_lag": false, "replica_restarts_total": false,
		"replica_reads_served": false, "replica_reads_redirected": false,
		"replica_reads_rejected": false, "replica_catchup_ns": false,
		"replica_admitted": false, "replica_lag_hist": false,
		"replica_catchup_ns_hist": false,
	}
	for _, s := range reg.Snapshot() {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("metric %s not registered", name)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
