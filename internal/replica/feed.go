package replica

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/commitlog"
	"repro/internal/obs"
)

// errKilled marks a follower death (panic or injected kill): its
// in-memory state is untrusted, so the supervisor rebuilds from the
// newest retained snapshot.
var errKilled = fmt.Errorf("replica: follower died")

// errClosing marks a feed unwound by Fleet.Close; the supervisor exits
// without counting a restart.
var errClosing = fmt.Errorf("replica: fleet closing")

// supervise owns one follower's feed for the fleet's lifetime: run the
// feed, classify the failure, decide how much state survives, back off
// (jittered, capped, seeded) and go again.
func (fl *Fleet) supervise(s *fstate) {
	defer fl.wg.Done()
	bo := fl.backoffFor(s.f.id)
	for attempt := 0; ; attempt++ {
		var err error
		if fl.log != nil {
			err = fl.feedLive(s, attempt)
		} else {
			err = fl.feedDir(s, attempt)
		}
		if err == nil {
			// The log ended cleanly and the follower holds its final
			// state; one last admission check and the feed retires.
			s.finished.Store(true)
			fl.updateAdmission(s)
			return
		}
		if fl.stopped.Load() || errors.Is(err, errClosing) {
			return
		}
		fl.restarts.Add(1)
		s.restartReq.Store(false)
		switch {
		case errors.Is(err, errKilled):
			// Crash: nothing in memory is trusted. Rebuild from the
			// newest retained snapshot (optionally minting a fresh one
			// first to cap replay cost).
			s.f.reset()
			s.cursor = -1
			if fl.log != nil && fl.o.SnapshotOnRestart {
				fl.log.RequestSnapshot()
			}
		case errors.Is(err, errTear), errors.Is(err, errKicked):
			// Read-side failure: state is intact, resubscribe from
			// version+1 — the no-gap, no-duplicate path.
		default:
			// A version gap or an unreadable interior segment. In
			// directory mode with a known-dead writer the supervisor may
			// repair the log first; either way the follower rebuilds
			// from scratch so it cannot serve a state no writer had.
			if fl.log == nil && fl.o.RepairOnError {
				if _, rerr := commitlog.Repair(fl.dir); rerr != nil {
					err = fmt.Errorf("%w (repair also failed: %v)", err, rerr)
				}
			}
			s.f.reset()
			s.cursor = -1
		}
		_ = err
		if !fl.sleep(bo.next(attempt)) {
			return
		}
	}
}

// feedLive runs one live-mode feed attempt: directory catch-up when the
// follower has no state, then an exact-splice subscription to the
// writer. Returns nil only when the log has ended and the follower is
// final.
func (fl *Fleet) feedLive(s *fstate, attempt int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errKilled, r)
		}
	}()
	fl.beginAttempt(s)
	if s.f.Version() == 0 {
		// Snapshot-anchored rebuild: force buffered records durable,
		// then replay the newest snapshot-led tail from the directory.
		fl.log.Sync()
		if _, err := fl.scanDir(s); err != nil {
			return err
		}
	}
	st, err := fl.log.Stream(s.f.Version() + 1)
	if err != nil {
		// The writer already closed, so the directory holds everything;
		// finish from there.
		if _, err := fl.scanDir(s); err != nil {
			return err
		}
		return nil
	}
	s.stream.Store(st)
	defer func() {
		s.stream.Store(nil)
		st.Close()
	}()
	for {
		c, ok := st.Next()
		if !ok {
			break
		}
		if err := fl.applyOne(s, c); err != nil {
			return err
		}
	}
	if fl.stopped.Load() {
		return errClosing
	}
	if s.restartReq.Load() {
		return errKicked
	}
	// Clean end of stream: the log closed. Pick up the end trailer (and
	// prove there is no residue) with a final directory pass.
	if _, err := fl.scanDir(s); err != nil {
		return err
	}
	return nil
}

// feedDir runs one directory-mode feed attempt: poll the segment files
// for new records with a jittered interval until the end trailer
// appears. Returns nil only at a clean end trailer.
func (fl *Fleet) feedDir(s *fstate, attempt int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errKilled, r)
		}
	}()
	fl.beginAttempt(s)
	bo := fl.backoffFor(^s.f.id) // poll jitter stream, distinct from restart backoff
	for {
		if fl.stopped.Load() {
			return errClosing
		}
		if s.restartReq.Load() {
			return errKicked
		}
		progressed, err := fl.scanDir(s)
		if err != nil {
			return err
		}
		if s.sawEnd {
			return nil
		}
		if progressed {
			continue
		}
		// Nothing new yet: poll, with seeded jitter so a fleet of
		// followers does not stat the directory in lockstep.
		d := fl.o.PollInterval + time.Duration(bo.rng.below(int64(fl.o.PollInterval)))
		if !fl.sleep(d) {
			return errClosing
		}
	}
}

// scanDir advances the follower from the directory: a tolerant scan
// from its cursor (first call picks the newest snapshot anchor, or
// record zero for the archive) applying snapshots, commits and the end
// trailer. A torn tail simply ends the scan; interior decode errors
// surface for the supervisor's repair/rebuild path.
func (fl *Fleet) scanDir(s *fstate) (progressed bool, err error) {
	r, err := commitlog.OpenReader(fl.dir)
	if err != nil {
		return false, err
	}
	if s.cursor < 0 {
		s.cursor = 0
		if !s.archive && s.f.Version() == 0 {
			if anchor, err := r.NewestAnchorRec(); err == nil {
				s.cursor = anchor
			}
		}
	}
	startV := s.f.Version()
	restored := false
	_, err = r.ForEachAvailableFrom(s.cursor, func(rec int64, rc commitlog.Record) error {
		switch rc.Kind {
		case commitlog.KindSnapshot:
			switch {
			case s.f.Version() == 0:
				s.f.restore(rc.Snapshot)
				restored = true
				fl.noteProgress(s)
			case rc.Snapshot.Version > s.f.Version():
				// A snapshot ahead of us means the scan skipped commits.
				return fmt.Errorf("replica: snapshot at version %d overtakes follower at %d",
					rc.Snapshot.Version, s.f.Version())
			}
			// Snapshots at or behind our version are replay overlap: skip.
		case commitlog.KindCommit:
			if err := fl.applyOne(s, rc.Commit); err != nil {
				return err
			}
		case commitlog.KindEnd:
			fl.raiseFrontier(rc.End.Version)
			s.sawEnd = true
		}
		s.cursor = rec + 1
		return nil
	})
	return restored || s.f.Version() > startV, err
}

// applyOne pushes one commit into the follower with the chaos hooks
// around it: an injected stall delays the apply (slow disk), a tear
// aborts the feed with state intact, a kill panics — the supervisor's
// recover turns it into a from-snapshot rebuild. Duplicates (replay
// overlap after a resubscribe) are skipped by the follower itself.
func (fl *Fleet) applyOne(s *fstate, c commitlog.Commit) error {
	if cs := s.cs; cs != nil {
		if d := cs.FollowerStall(); d > 0 {
			if !fl.sleep(time.Duration(d)) {
				return errClosing
			}
		}
		if cs.FollowerTear() {
			return errTear
		}
		if cs.FollowerKill() {
			panic("injected follower kill")
		}
	}
	applied, err := s.f.apply(c)
	if err != nil {
		return err
	}
	if applied && fl.o.OnApply != nil {
		fl.o.OnApply(s.f.id, c)
	}
	fl.noteProgress(s)
	return nil
}

// beginAttempt stamps a feed (re)start: the catch-up target is the
// frontier as of now, and the clock for restart-to-caught-up starts.
func (fl *Fleet) beginAttempt(s *fstate) {
	fl.refreshFrontier()
	s.restartStartNS.Store(time.Now().UnixNano())
	s.restartTarget.Store(fl.frontier.Load())
	s.caughtUp.Store(false)
	fl.updateAdmission(s)
}

// noteProgress records an applied record: frontier, lag, admission and
// the restart-to-caught-up latency when the attempt's target is reached.
func (fl *Fleet) noteProgress(s *fstate) {
	v := s.f.Version()
	fl.raiseFrontier(v)
	s.lastVersion.Store(v)
	s.lastMoveNS.Store(time.Now().UnixNano())
	if fl.lagHist != nil {
		lag := fl.frontier.Load() - v
		if lag < 0 {
			lag = 0
		}
		fl.lagHist.Observe(lag)
	}
	if !s.caughtUp.Load() && v >= s.restartTarget.Load() {
		s.caughtUp.Store(true)
		ns := time.Now().UnixNano() - s.restartStartNS.Load()
		fl.catchups.Add(1)
		fl.catchupNSLast.Store(ns)
		for {
			old := fl.catchupNSMax.Load()
			if ns <= old || fl.catchupNSMax.CompareAndSwap(old, ns) {
				break
			}
		}
		if fl.catchupHist != nil {
			fl.catchupHist.Observe(ns)
		}
	}
	fl.updateAdmission(s)
}

// updateAdmission drains or re-admits a follower against the staleness
// bound. The archive never serves latest reads, so it stays drained.
func (fl *Fleet) updateAdmission(s *fstate) {
	if s.archive {
		s.admitted.Store(false)
		return
	}
	lag := fl.frontier.Load() - s.f.Version()
	s.admitted.Store(lag <= fl.o.MaxLag)
}

// raiseFrontier CAS-maxes the fleet's known committed frontier.
func (fl *Fleet) raiseFrontier(v int64) {
	for {
		old := fl.frontier.Load()
		if v <= old || fl.frontier.CompareAndSwap(old, v) {
			return
		}
	}
}

// refreshFrontier folds in the writer's own frontier (live mode; in
// directory mode the frontier is whatever the followers have seen).
func (fl *Fleet) refreshFrontier() {
	if fl.log != nil {
		fl.raiseFrontier(fl.log.Stats().LastVersion)
	}
}

// watchdog is the fleet's monitor goroutine: it refreshes the frontier,
// re-evaluates admission (a stalled follower must drain even though it
// is not applying), and kicks followers that made no progress while the
// frontier advanced past StallTimeout.
func (fl *Fleet) watchdog() {
	defer fl.wg.Done()
	tick := fl.o.StallTimeout / 4
	if tick > 20*time.Millisecond {
		tick = 20 * time.Millisecond
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-fl.stop:
			return
		case <-t.C:
		}
		fl.refreshFrontier()
		now := time.Now().UnixNano()
		frontier := fl.frontier.Load()
		for _, s := range fl.states {
			if s.finished.Load() {
				continue
			}
			fl.updateAdmission(s)
			v := s.f.Version()
			if v != s.lastVersion.Load() {
				s.lastVersion.Store(v)
				s.lastMoveNS.Store(now)
				continue
			}
			if frontier > v && now-s.lastMoveNS.Load() > int64(fl.o.StallTimeout) {
				// Stalled: ask the feed to restart and unblock it if it
				// is parked in Stream.Next.
				s.lastMoveNS.Store(now) // one kick per timeout window
				s.restartReq.Store(true)
				if st := s.stream.Load(); st != nil {
					st.Close()
				}
			}
		}
	}
}

// sleep waits d or until the fleet closes; false means closing.
func (fl *Fleet) sleep(d time.Duration) bool {
	if d <= 0 {
		d = time.Microsecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-fl.stop:
		return false
	case <-t.C:
		return true
	}
}

// splitmix64 is the same generator the chaos and scheduler layers use;
// the fleet keeps its own so backoff jitter is deterministic per
// (Seed, follower) without coupling to chaos draw order.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) below(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// backoff produces the jittered, capped, exponential restart delays.
type backoff struct {
	base, cap time.Duration
	rng       rng
}

// backoffFor builds the seeded backoff source for one follower (or a
// derived id for auxiliary jitter streams).
func (fl *Fleet) backoffFor(id int) *backoff {
	seed := uint64(fl.o.Seed)*0x9e3779b97f4a7c15 + uint64(int64(id))*0xbf58476d1ce4e5b9 + 0x7265706c696361 // "replica"
	return &backoff{base: fl.o.RetryBase, cap: fl.o.RetryCap, rng: rng{state: seed}}
}

// next returns the delay before retry number attempt (0-based): base
// doubled per attempt, capped, with ±50% jitter.
func (b *backoff) next(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	half := int64(d / 2)
	return time.Duration(half + b.rng.below(half+1))
}

// registerMetrics exposes the fleet on the run's obs registry; nil
// registry means headless (tests, conseq-replay) and skips the
// histograms too.
func (fl *Fleet) registerMetrics() {
	reg := fl.o.Registry
	if reg == nil {
		return
	}
	for _, s := range fl.states {
		s := s
		role := "serve"
		if s.archive {
			role = "archive"
		}
		reg.Func("replica_lag", func() int64 {
			lag := fl.frontier.Load() - s.f.Version()
			if lag < 0 {
				lag = 0
			}
			return lag
		}, obs.L("follower", s.f.id), obs.L("role", role))
	}
	reg.Func("replica_restarts_total", fl.restarts.Load)
	reg.Func("replica_reads_served", fl.readsServed.Load)
	reg.Func("replica_reads_redirected", fl.readsRedirected.Load)
	reg.Func("replica_reads_rejected", fl.readsRejected.Load)
	reg.Func("replica_catchup_ns", fl.catchupNSMax.Load)
	reg.Func("replica_admitted", func() int64 {
		n := int64(0)
		for _, s := range fl.states {
			if s.admitted.Load() {
				n++
			}
		}
		return n
	})
	fl.lagHist = reg.Histogram("replica_lag_hist")
	fl.catchupHist = reg.Histogram("replica_catchup_ns_hist")
}
