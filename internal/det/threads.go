package det

import (
	"fmt"

	"repro/internal/api"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Spawn implements api.T: create a new deterministic thread. Thread
// creation is a synchronization operation: it runs under the token, so the
// child's tid, starting clock (the parent's clock) and memory view (the
// parent's just-committed state) are all deterministic.
//
// With the thread pool enabled (§3.3), a finished thread's workspace is
// reused instead of forked: the expensive page-table copy becomes a cheap
// view update. The modeled fork cost scales with the segment's populated
// pages, exactly the effect the paper describes.
func (t *Thread) Spawn(fn func(api.T)) api.Handle {
	rt := t.rt
	m := &rt.cfg.Model
	t.syncOpStart(siteID(siteSpawn, 0))
	t.tokenBegin() // commits our writes: the child must see them
	t.uncoarsen()

	tid := rt.nextTid
	rt.nextTid++
	t.record(trace.OpSpawn, uint64(tid))
	if h := rt.hooks; h != nil {
		h.OnRelease(t.tid, spawnObj(tid))
	}

	var child *Thread
	reused := false
	var adopted *worker
	var adoptedB host.Binding
	if rt.cfg.WorkerPool {
		if w := rt.popWorker(tid); w != nil {
			// Adopt a parked worker (docs/scheduler.md): the spawner pays
			// only the free-list pop + registration + wake; the worker does
			// its own view warm-up off this thread's critical path. The
			// head pin below makes the child's initial view byte-identical
			// to a fresh fork's.
			var ws *mem.Workspace
			var warmPulls int64
			if w.ws != nil {
				ws = w.ws
				w.ws = nil
				if err := rt.seg.Rebind(ws, tid); err != nil {
					panic(fmt.Sprintf("det: pool rebind: %v", err))
				}
			} else {
				// Pre-spawned worker, first adoption: its real fork happened
				// at startup with an empty page table; the stale view it
				// would now pull is modeled as the populated page count.
				var err error
				ws, err = rt.seg.Snapshot(tid)
				if err != nil {
					panic(fmt.Sprintf("det: spawn: %v", err))
				}
				warmPulls = int64(rt.seg.PopulatedPages())
			}
			t.account(obs.PhaseCompute)
			if rt.cfg.ShardGrants {
				// Stage 2 (docs/scheduler.md): the spawner only dispatches the
				// adoption; re-registration is priced by the worker's first
				// sub-token acquisition and the wake latency host-side.
				t.charge(obs.PhaseSpawn, m.PoolAdoptDispatch)
			} else {
				t.charge(obs.PhaseSpawn, m.PoolWorkerWake)
			}
			child = rt.attachThread(tid, t.icount, ws)
			child.worker = w
			head := rt.seg.Head()
			// Assign under rt.mu: the started-gate. If the worker's task has
			// not started yet (b unset), its startup section — ordered by the
			// same mutex — sees next assigned and skips its initial park; no
			// wake is sent (there is no binding to wake). Otherwise the wake
			// below pairs with the worker's park as usual.
			rt.mu.Lock()
			w.next, w.fn = child, fn
			w.head = head
			w.warm, w.warmPulls = true, warmPulls
			adoptedB = w.b
			rt.mu.Unlock()
			adopted = w
			reused = true
		} else {
			// No worker free: fork, and run the child on a new worker so
			// its slot is poolable at exit.
			t.account(obs.PhaseCompute)
			t.charge(obs.PhaseSpawn, m.ForkBase+int64(rt.seg.PopulatedPages())*m.ForkPerPage)
			var err error
			child, err = rt.newThread(tid, t.icount)
			if err != nil {
				panic(fmt.Sprintf("det: spawn: %v", err))
			}
		}
	} else if rt.cfg.ThreadPool && rt.pooledWorkspaces() > 0 {
		rt.mu.Lock()
		ws := rt.pool[len(rt.pool)-1]
		rt.pool = rt.pool[:len(rt.pool)-1]
		rt.mu.Unlock()
		if err := rt.seg.Rebind(ws, tid); err != nil {
			panic(fmt.Sprintf("det: pool rebind: %v", err))
		}
		t.account(obs.PhaseCompute)
		pulled := ws.UpdateTo(rt.seg.Head())
		t.charge(obs.PhaseSpawn, m.PoolReuse+int64(pulled)*m.UpdatePage)
		child = rt.attachThread(tid, t.icount, ws)
		reused = true
	} else {
		// Fork: every populated page-table entry is copied into the child.
		t.account(obs.PhaseCompute)
		t.charge(obs.PhaseSpawn, m.ForkBase+int64(rt.seg.PopulatedPages())*m.ForkPerPage)
		var err error
		child, err = rt.newThread(tid, t.icount)
		if err != nil {
			panic(fmt.Sprintf("det: spawn: %v", err))
		}
	}
	rt.noteSpawn(reused)
	if h := rt.hooks; h != nil {
		h.OnSpawn(t.tid, tid)
	}
	switch {
	case adopted != nil:
		if adoptedB != nil {
			t.b.Wake(adoptedB)
		}
	case rt.cfg.WorkerPool:
		rt.spawnWorker(child, fn, t.b)
	default:
		rt.h.Go(fmt.Sprintf("t%d", tid), t.b, func(b host.Binding) {
			child.start(b)
			rt.threadMain(child, fn)
		})
	}
	t.tokenEnd(coarsenNever, 0)
	return child
}

// pooledWorkspaces returns the legacy workspace-pool depth.
func (rt *Runtime) pooledWorkspaces() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.pool)
}

// spawnObj derives the hook object id for a spawn/exit edge of a tid.
func spawnObj(tid int) uint64 { return 1<<63 | uint64(tid) }

// ImplHandle marks Thread as an api.Handle.
func (t *Thread) ImplHandle() {}

// Join implements api.T: block until the child thread has exited.
func (t *Thread) Join(h api.Handle) {
	child, ok := h.(*Thread)
	if !ok {
		panic("det: foreign handle")
	}
	t.syncOpStart(siteID(siteJoin, 0))
	if t.rt.cfg.ShardGrants {
		// Arbitrate the join in the child's provisional home shard
		// (tid-derived, computable without racing the running child). If
		// the child is still running, its exit retargets us to its final
		// domain shard via SetScope before the wake; if it has already
		// exited, the provisional request simply lands in the home shard.
		t.curShard = child.tid % t.rt.cfg.Shards
	}
	for {
		t.tokenBegin()
		t.uncoarsen()
		if child.done {
			t.record(trace.OpJoin, uint64(child.tid))
			if hk := t.rt.hooks; hk != nil {
				hk.OnAcquire(t.tid, spawnObj(child.tid))
				hk.OnUpdate(t.tid, t.ws.Version())
			}
			t.tokenEnd(coarsenNever, 0)
			return
		}
		child.joiners = append(child.joiners, t.tid)
		t.deliver(t.rt.arb.Depart(t.tid))
		t.releaseTokenRaw()
		t.blockForToken(diagJoinWait, fmt.Sprintf("join t%d", child.tid))
		// Woken holding the token; loop re-checks done (guaranteed now).
	}
}

// exit finishes a thread: commit final writes, wake joiners, recycle or
// release the workspace, fold statistics, and leave the clock order.
func (t *Thread) exit() {
	rt := t.rt
	t.syncOpStart(siteID(siteExit, 0))
	t.tokenBegin() // commits final writes
	t.uncoarsen()
	t.done = true
	t.record(trace.OpExit, uint64(t.tid))
	if h := rt.hooks; h != nil {
		h.OnRelease(t.tid, spawnObj(t.tid))
	}
	for _, j := range t.joiners {
		if rt.cfg.ShardGrants {
			// Retarget the blocked joiner to this exit's domain shard so the
			// join grant is arbitrated where the exit event lives; the joiner
			// refreshes its own curShard from the arbiter on wakeup.
			rt.arb.SetScope(j, t.curShard)
		}
		t.deliver(rt.arb.ArriveWanting(j))
	}
	t.joiners = nil

	// Deregister while still holding the token. The pooling decision below
	// depends on how many threads remain; doing the map delete after the
	// token release would let another exiting thread observe us as still
	// live, pool its worker, and park forever.
	rt.mu.Lock()
	delete(rt.threads, t.tid)
	remaining := len(rt.threads)
	rt.mu.Unlock()

	switch {
	case t.worker != nil && remaining > 0 && rt.workerSlotFree():
		// Park this thread's worker, keeping the workspace warm for the
		// next Spawn to adopt. The snapshot stays at the current head,
		// pinning later versions until reuse — the realistic memory cost
		// of pooling. Insertion is token-held, keyed (exit clock, tid), so
		// the free-list order — and every later adoption — is
		// replay-stable.
		t.ws.UpdateTo(rt.seg.Head())
		w := t.worker
		w.ws = t.ws
		w.pooled = true
		rt.mu.Lock()
		rt.insertWorkerLocked(w, [2]int64{t.icount, int64(t.tid)})
		rt.mu.Unlock()
	case rt.cfg.ThreadPool && !rt.cfg.WorkerPool && rt.pooledWorkspaces() < rt.cfg.PoolCap:
		// Legacy workspace-only pool (PR 3): keep the workspace, the host
		// task ends.
		t.ws.UpdateTo(rt.seg.Head())
		rt.mu.Lock()
		rt.pool = append(rt.pool, t.ws)
		rt.mu.Unlock()
	default:
		rt.seg.Release(t.ws)
	}
	if rt.cfg.WorkerPool && remaining == 0 {
		rt.drainWorkers(t)
	}

	t.account(obs.PhaseCompute)
	rt.aggregate(t)
	t.releaseTokenRaw()
	t.deliver(rt.arb.Unregister(t.tid))
	t.diagPhase.Store(diagDone)
}

// workerSlotFree reports whether the worker free list has pool capacity.
func (rt *Runtime) workerSlotFree() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.workers) < rt.cfg.PoolCap
}
