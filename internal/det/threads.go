package det

import (
	"fmt"

	"repro/internal/api"
	"repro/internal/host"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Spawn implements api.T: create a new deterministic thread. Thread
// creation is a synchronization operation: it runs under the token, so the
// child's tid, starting clock (the parent's clock) and memory view (the
// parent's just-committed state) are all deterministic.
//
// With the thread pool enabled (§3.3), a finished thread's workspace is
// reused instead of forked: the expensive page-table copy becomes a cheap
// view update. The modeled fork cost scales with the segment's populated
// pages, exactly the effect the paper describes.
func (t *Thread) Spawn(fn func(api.T)) api.Handle {
	rt := t.rt
	m := &rt.cfg.Model
	t.syncOpStart(siteID(siteSpawn, 0))
	t.tokenBegin() // commits our writes: the child must see them
	t.uncoarsen()

	tid := rt.nextTid
	rt.nextTid++
	t.record(trace.OpSpawn, uint64(tid))
	if h := rt.hooks; h != nil {
		h.OnRelease(t.tid, spawnObj(tid))
	}

	var child *Thread
	reused := false
	rt.mu.Lock()
	nPooled := len(rt.pool)
	rt.mu.Unlock()
	if rt.cfg.ThreadPool && nPooled > 0 {
		rt.mu.Lock()
		ws := rt.pool[len(rt.pool)-1]
		rt.pool = rt.pool[:len(rt.pool)-1]
		rt.mu.Unlock()
		if err := rt.seg.Rebind(ws, tid); err != nil {
			panic(fmt.Sprintf("det: pool rebind: %v", err))
		}
		t.account(obs.PhaseCompute)
		pulled := ws.UpdateTo(rt.seg.Head())
		t.charge(obs.PhaseLib, m.PoolReuse+int64(pulled)*m.UpdatePage)
		child = rt.attachThread(tid, t.icount, ws)
		reused = true
	} else {
		// Fork: every populated page-table entry is copied into the child.
		t.account(obs.PhaseCompute)
		t.charge(obs.PhaseLib, m.ForkBase+int64(rt.seg.PopulatedPages())*m.ForkPerPage)
		var err error
		child, err = rt.newThread(tid, t.icount)
		if err != nil {
			panic(fmt.Sprintf("det: spawn: %v", err))
		}
	}
	rt.noteSpawn(reused)
	if h := rt.hooks; h != nil {
		h.OnSpawn(t.tid, tid)
	}
	rt.h.Go(fmt.Sprintf("t%d", tid), t.b, func(b host.Binding) {
		child.start(b)
		rt.threadMain(child, fn)
	})
	t.tokenEnd(coarsenNever, 0)
	return child
}

// spawnObj derives the hook object id for a spawn/exit edge of a tid.
func spawnObj(tid int) uint64 { return 1<<63 | uint64(tid) }

// ImplHandle marks Thread as an api.Handle.
func (t *Thread) ImplHandle() {}

// Join implements api.T: block until the child thread has exited.
func (t *Thread) Join(h api.Handle) {
	child, ok := h.(*Thread)
	if !ok {
		panic("det: foreign handle")
	}
	t.syncOpStart(siteID(siteJoin, 0))
	for {
		t.tokenBegin()
		t.uncoarsen()
		if child.done {
			t.record(trace.OpJoin, uint64(child.tid))
			if hk := t.rt.hooks; hk != nil {
				hk.OnAcquire(t.tid, spawnObj(child.tid))
				hk.OnUpdate(t.tid, t.ws.Version())
			}
			t.tokenEnd(coarsenNever, 0)
			return
		}
		child.joiners = append(child.joiners, t.tid)
		t.deliver(t.rt.arb.Depart(t.tid))
		t.releaseTokenRaw()
		t.blockForToken(diagJoinWait, fmt.Sprintf("join t%d", child.tid))
		// Woken holding the token; loop re-checks done (guaranteed now).
	}
}

// exit finishes a thread: commit final writes, wake joiners, recycle or
// release the workspace, fold statistics, and leave the clock order.
func (t *Thread) exit() {
	rt := t.rt
	t.syncOpStart(siteID(siteExit, 0))
	t.tokenBegin() // commits final writes
	t.uncoarsen()
	t.done = true
	t.record(trace.OpExit, uint64(t.tid))
	if h := rt.hooks; h != nil {
		h.OnRelease(t.tid, spawnObj(t.tid))
	}
	for _, j := range t.joiners {
		t.deliver(rt.arb.ArriveWanting(j))
	}
	t.joiners = nil

	rt.mu.Lock()
	poolIt := rt.cfg.ThreadPool && len(rt.pool) < rt.cfg.PoolCap
	rt.mu.Unlock()
	if poolIt {
		// Keep the workspace for reuse. Its snapshot stays at the current
		// head, pinning later versions until reuse — the realistic memory
		// cost of pooling.
		t.ws.UpdateTo(rt.seg.Head())
		rt.mu.Lock()
		rt.pool = append(rt.pool, t.ws)
		rt.mu.Unlock()
	} else {
		rt.seg.Release(t.ws)
	}

	t.account(obs.PhaseCompute)
	rt.aggregate(t)
	t.releaseTokenRaw()
	t.deliver(rt.arb.Unregister(t.tid))
	t.diagPhase.Store(diagDone)
	rt.mu.Lock()
	delete(rt.threads, t.tid)
	rt.mu.Unlock()
}
