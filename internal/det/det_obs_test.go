package det_test

import (
	"reflect"
	"testing"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/simhost"
	"repro/internal/obs"
)

// obsProg is a fixed program exercising every instrumented phase: spawn,
// mutex contention (token wait), commits, a barrier, page faults,
// coarsenable unlock chains, and join/exit.
func obsProg(threads, rounds int) func(api.T) {
	return func(t api.T) {
		m := t.NewMutex()
		bar := t.NewBarrier(threads + 1)
		var hs []api.Handle
		for i := 0; i < threads; i++ {
			i := i
			hs = append(hs, t.Spawn(func(tt api.T) {
				for r := 0; r < rounds; r++ {
					tt.Compute(int64(500 + 150*i))
					tt.Lock(m)
					api.AddU64(tt, 0, 1)
					tt.Unlock(m)
					api.PutU64(tt, 128*(i+1), uint64(r))
				}
				tt.BarrierWait(bar)
				tt.Compute(900)
			}))
		}
		t.BarrierWait(bar)
		for _, h := range hs {
			t.Join(h)
		}
	}
}

type fingerprint struct {
	checksum  uint64
	traceHash uint64
	stats     api.RunStats
}

// runFP executes obsProg on a fresh simulated runtime, with or without an
// observer attached, and returns the run's deterministic fingerprint.
func runFP(t *testing.T, observe bool) (fingerprint, *obs.Observer) {
	t.Helper()
	cfg := det.Default()
	cfg.SegmentSize = 1 << 20
	rt, err := det.New(cfg, simhost.New(costmodel.Default()))
	if err != nil {
		t.Fatal(err)
	}
	var o *obs.Observer
	if observe {
		o = obs.New()
		rt.SetObserver(o)
	}
	if err := rt.Run(obsProg(4, 20)); err != nil {
		t.Fatal(err)
	}
	return fingerprint{
		checksum:  rt.Checksum(),
		traceHash: rt.Trace().Hash(),
		stats:     rt.Stats(),
	}, o
}

// TestObserverDoesNotPerturbDeterminism is the instrumentation regression
// gate: a run with the observability layer attached must produce exactly
// the same sync-order hash, memory checksum, and RunStats as a run
// without it — determinism and the Figure 15 breakdown are unaffected by
// observation. Two observer-free runs are also compared, pinning the
// baseline the seed guaranteed.
func TestObserverDoesNotPerturbDeterminism(t *testing.T) {
	plain1, _ := runFP(t, false)
	plain2, _ := runFP(t, false)
	observed, o := runFP(t, true)

	if plain1.checksum != plain2.checksum || plain1.traceHash != plain2.traceHash {
		t.Fatalf("observer-free runs diverged: %x/%x vs %x/%x",
			plain1.checksum, plain1.traceHash, plain2.checksum, plain2.traceHash)
	}
	if !reflect.DeepEqual(plain1.stats, plain2.stats) {
		t.Fatalf("observer-free RunStats diverged:\n%+v\nvs\n%+v", plain1.stats, plain2.stats)
	}

	if observed.checksum != plain1.checksum {
		t.Errorf("observed checksum %x != plain %x", observed.checksum, plain1.checksum)
	}
	if observed.traceHash != plain1.traceHash {
		t.Errorf("observed sync-order hash %x != plain %x", observed.traceHash, plain1.traceHash)
	}
	if !reflect.DeepEqual(observed.stats, plain1.stats) {
		t.Errorf("observed RunStats differ from plain:\n%+v\nvs\n%+v", observed.stats, plain1.stats)
	}

	// The observer must actually have observed something, and its span
	// totals must agree with the RunStats it claims to refine: per
	// thread, the timeline's per-phase sums are exactly the breakdown.
	lanes := o.Lanes()
	if len(lanes) != 5 {
		t.Fatalf("got %d lanes, want 5", len(lanes))
	}
	perTid := map[int]api.ThreadTime{}
	for _, tt := range observed.stats.PerThread {
		perTid[tt.Tid] = tt
	}
	for _, l := range lanes {
		if l.Dropped() != 0 {
			t.Errorf("tid %d dropped %d events; ring too small for this workload", l.Tid(), l.Dropped())
		}
		var sums [obs.NumTimePhases]int64
		for _, e := range l.Events() {
			if !e.Phase.Instant() {
				sums[e.Phase] += e.End - e.Start
			}
		}
		tt, ok := perTid[l.Tid()]
		if !ok {
			t.Errorf("lane tid %d has no PerThread entry", l.Tid())
			continue
		}
		checks := []struct {
			name string
			span int64
			stat int64
		}{
			{"compute", sums[obs.PhaseCompute], tt.LocalWork},
			{"token-wait", sums[obs.PhaseTokenWait], tt.DetermWait},
			{"barrier-wait", sums[obs.PhaseBarrierWait], tt.BarrierWait},
			{"commit+merge", sums[obs.PhaseCommit] + sums[obs.PhaseMerge] + sums[obs.PhaseSpecDiff], tt.Commit},
			{"fault", sums[obs.PhaseFault], tt.Fault},
			{"lib", sums[obs.PhaseLib] + sums[obs.PhaseSpawn] +
				sums[obs.PhaseHandoff] + sums[obs.PhaseFastForward], tt.Lib},
		}
		for _, c := range checks {
			if c.span != c.stat {
				t.Errorf("tid %d %s: span total %d != stats %d", l.Tid(), c.name, c.span, c.stat)
			}
		}
	}
}

// TestObserverRegistrySubsumesRunStats verifies the registry's func
// gauges report the same values as the pre-existing ad-hoc stats structs
// they subsume.
func TestObserverRegistrySubsumesRunStats(t *testing.T) {
	observed, o := runFP(t, true)
	snap := map[string]int64{}
	for _, s := range o.Registry().Snapshot() {
		if len(s.Labels) == 0 {
			snap[s.Name] = s.Value
		}
	}
	st := observed.stats
	for name, want := range map[string]int64{
		"mem_faults":          st.Faults,
		"mem_versions":        st.Versions,
		"mem_committed_pages": st.CommittedPages,
		"mem_merged_pages":    st.MergedPages,
		"mem_pulled_pages":    st.PulledPages,
		"mem_peak_pages":      st.PeakPages,
		"clock_token_grants":  st.TokenGrants,
		"det_threads_spawned": st.ThreadsSpawned,
		"det_commit_ns":       st.CommitNS,
	} {
		if got, ok := snap[name]; !ok || got != want {
			t.Errorf("registry %s = %d (present=%v), want %d", name, got, ok, want)
		}
	}

	// Per-thread labeled counters must sum to the aggregate.
	var syncOps int64
	for _, s := range o.Registry().Snapshot() {
		if s.Name == "det_sync_ops" {
			syncOps += s.Value
		}
	}
	if syncOps != st.SyncOps {
		t.Errorf("sum of det_sync_ops{tid} = %d, want %d", syncOps, st.SyncOps)
	}
}
