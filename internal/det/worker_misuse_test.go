package det

import (
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/host/simhost"
)

// runMisusePooled is runMisuse under the pooled scheduler lifecycle
// (EnableScaleOut): delivery-path violations must surface the same
// structured RuntimeErrors when grants flow to worker-hosted threads.
func runMisusePooled(t *testing.T, prog func(api.T)) {
	t.Helper()
	c := Default()
	c.SegmentSize = 1 << 20
	c.EnableScaleOut(4, 2)
	rt, err := New(c, simhost.New(costmodel.Default()))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }() // tolerate panics unwinding Run
		_ = rt.Run(prog)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("misuse scenario hung")
	}
}

// deliverFrom's two corrupted-handoff guards, exercised under the pooled
// lifecycle. Both fire before any thread context is established, so they
// carry Tid -1 by contract — the error is about the grant, not a thread.
func TestDeliverFromRuntimeErrorsPooled(t *testing.T) {
	cases := []struct {
		name     string
		wantCode string
		wantOp   string
		detail   string
		trigger  func(root api.T)
	}{
		{
			name:     "unknown-tid",
			wantCode: "unknown-tid",
			wantOp:   "lookup",
			detail:   "token grant for unknown tid 9999",
			trigger: func(root api.T) {
				// A grant naming a tid with no registered thread: the
				// arbiter and the thread table have diverged.
				dt := root.(*Thread)
				dt.rt.deliverFrom(dt.b, 9999)
			},
		},
		{
			name:     "self-grant",
			wantCode: "self-grant",
			wantOp:   "deliver",
			detail:   "token grant before any thread is running",
			trigger: func(root api.T) {
				// A grant with no waker binding outside setup: nobody can
				// perform the wake, so the handoff protocol is corrupted.
				dt := root.(*Thread)
				dt.rt.deliverFrom(nil, dt.tid)
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runMisusePooled(t, func(root api.T) {
				// Exercise the pool first so the violation happens with
				// worker-hosted threads in the table, not just the root.
				h := root.Spawn(func(t api.T) { t.Compute(100) })
				root.Join(h)
				re := catchRuntimeError(func() { tc.trigger(root) })
				if re == nil {
					t.Error("no RuntimeError surfaced")
					return
				}
				if re.Code != tc.wantCode {
					t.Errorf("Code = %q, want %q", re.Code, tc.wantCode)
				}
				if re.Op != tc.wantOp {
					t.Errorf("Op = %q, want %q", re.Op, tc.wantOp)
				}
				if re.Tid != -1 {
					t.Errorf("Tid = %d, want -1 (no thread context)", re.Tid)
				}
				if msg := re.Error(); !strings.Contains(msg, tc.detail) ||
					!strings.Contains(msg, tc.wantCode) {
					t.Errorf("rendered error %q missing %q or %q", msg, tc.detail, tc.wantCode)
				}
			})
		})
	}
}
