package det_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/commitlog"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/simhost"
)

// mixedProg exercises every chaos injection point: mutexes (token waits,
// commit delays, unlock coarsening), a reused barrier (arrival skew,
// prefetch training and therefore mispredictions), racy writes (faults),
// and spawn/join. Deterministic by runtime guarantee, racy by design.
func mixedProg(n, rounds int) func(api.T) {
	return func(t api.T) {
		m := t.NewMutex()
		bar := t.NewBarrier(n)
		var hs []api.Handle
		for i := 0; i < n; i++ {
			i := i
			hs = append(hs, t.Spawn(func(t api.T) {
				for r := 0; r < rounds; r++ {
					t.Compute(int64(200 * (i + 1)))
					// Racy word plus a private slot: write-set prediction
					// trains on the repeated sites.
					api.PutU64(t, 0, uint64(i*1000+r))
					api.PutU64(t, uint64OffsetFor(i), api.U64(t, 0))
					t.Lock(m)
					api.AddU64(t, 8, 1)
					t.Unlock(m)
					t.BarrierWait(bar)
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
	}
}

func uint64OffsetFor(i int) int { return 64 + 8*i }

// TestChaosPreservesResults is the determinism-under-chaos property the
// whole subsystem exists for: every (profile, seed) pair must reproduce
// the unperturbed run's checksum and sync-trace hash byte-for-byte on the
// simulation host, while actually injecting (non-zero event counters).
// The chaos gate in scripts/check.sh asserts the same property over the
// golden benchmarks; this is the in-tree fast version.
func TestChaosPreservesResults(t *testing.T) {
	baseSum, baseTrace, _ := run(t, cfg(), simhost.New(costmodel.Default()), mixedProg(4, 12))
	baseHash := baseTrace.Hash()

	for _, profile := range chaos.Profiles() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s:%d", profile, seed), func(t *testing.T) {
				in, err := chaos.New(profile, seed)
				if err != nil {
					t.Fatal(err)
				}
				// Follower profiles only have a target when a replica
				// fleet is attached; TestFleetChaosDeterminism
				// (internal/replica) and TestReplicasOption
				// (internal/harness) assert their non-vacuous,
				// results-pinned runs against a live fleet.
				if p := in.Profile(); p.FollowerKillPer10K > 0 || p.FollowerTearPer10K > 0 || p.FollowerStallNS > 0 {
					t.Skip("follower profile: needs a replica fleet")
				}
				c := cfg()
				c.Chaos = in
				// The logstall knob only has a target with a commit log
				// attached; give stall-bearing profiles one, with segment
				// and snapshot cadences small enough that the drain's
				// stall points (rolls, snapshots) actually fire.
				var cl *commitlog.Log
				if in.Profile().LogStallNS > 0 {
					var err error
					cl, err = commitlog.Create(t.TempDir(), commitlog.Options{
						SegmentBytes: 4096, SnapshotEvery: 8,
					})
					if err != nil {
						t.Fatal(err)
					}
					c.CommitLog = cl
				}
				sum, tr, _ := run(t, c, simhost.New(costmodel.Default()), mixedProg(4, 12))
				if cl != nil {
					if err := cl.Close(); err != nil {
						t.Fatal(err)
					}
				}
				if sum != baseSum {
					t.Errorf("checksum %016x != unperturbed %016x", sum, baseSum)
				}
				if h := tr.Hash(); h != baseHash {
					t.Errorf("trace hash %016x != unperturbed %016x", h, baseHash)
				}
				st := in.Stats()
				injected := st.ChargeJitterEvents + st.WakeDelays + st.OverflowShrinks +
					st.MispredictDrops + st.BarrierSkews + st.FaultDelays + st.CommitDelays + st.LogStalls
				if injected == 0 {
					t.Errorf("profile %s injected nothing — the gate would be vacuous", profile)
				}
			})
		}
	}
}

// Chaos replay: the same (profile, seed) must reproduce not only results
// but the perturbed virtual time itself.
func TestChaosReplaysVirtualTime(t *testing.T) {
	wall := func() int64 {
		in, err := chaos.New("storm", 7)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg()
		c.Chaos = in
		_, _, rt := run(t, c, simhost.New(costmodel.Default()), mixedProg(3, 8))
		return rt.Stats().WallNS
	}
	a, b := wall(), wall()
	if a != b {
		t.Fatalf("perturbed virtual time not replayed: %d != %d", a, b)
	}
}

// A deterministic deadlock on the simulation host must be proven and
// reported with each parked thread's blocking site — not hang, and not
// report an opaque park.
func TestSimDeadlockNamesBlockingSite(t *testing.T) {
	rt, err := det.New(cfg(), simhost.New(costmodel.Default()))
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(root api.T) {
		m := root.NewMutex()
		root.Lock(m)
		root.Spawn(func(t api.T) {
			t.Lock(m) // parks forever: the owner exits without unlocking
			t.Unlock(m)
		})
		root.Compute(5_000) // give the child time to park
		// Root exits still holding m and never joining: the child can
		// never acquire it.
	})
	if err == nil {
		t.Fatal("deadlock not reported")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadlock") {
		t.Fatalf("error does not name a deadlock: %v", err)
	}
	if !strings.Contains(msg, "mutex ") {
		t.Fatalf("deadlock report does not name the blocking site: %v", err)
	}
}
