package det_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/simhost"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/trace"
)

// runJournaled executes prog with a journal attached and returns the
// journal path plus the run's checksum and trace.
func runJournaled(t *testing.T, c det.Config, path string, prog func(api.T)) (uint64, *trace.Recorder) {
	t.Helper()
	w, err := journal.Create(path, map[string]string{"prog": "test"})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := det.New(c, simhost.New(costmodel.Default()))
	if err != nil {
		t.Fatal(err)
	}
	rt.SetJournal(w)
	if err := rt.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return rt.Checksum(), rt.Trace()
}

// Journaling is observation only: checksum and sync trace must be
// byte-identical with the journal on or off, on every host — the
// in-process version of the scripts/check.sh journal gate.
func TestJournalDoesNotPerturbResults(t *testing.T) {
	for _, prog := range []struct {
		name string
		fn   func(api.T)
	}{{"counter", counterProg(4, 20)}, {"racy", racyProg(4)}} {
		t.Run(prog.name, func(t *testing.T) {
			for _, hm := range allHosts() {
				t.Run(hm.name, func(t *testing.T) {
					sum0, rec0, _ := run(t, cfg(), hm.mk(), prog.fn)

					path := filepath.Join(t.TempDir(), "run.csqj")
					w, err := journal.Create(path, nil)
					if err != nil {
						t.Fatal(err)
					}
					rt, err := det.New(cfg(), hm.mk())
					if err != nil {
						t.Fatal(err)
					}
					rt.SetJournal(w)
					if err := rt.Run(prog.fn); err != nil {
						t.Fatalf("run: %v", err)
					}
					if err := w.Close(); err != nil {
						t.Fatal(err)
					}
					if sum := rt.Checksum(); sum != sum0 {
						t.Errorf("journaled checksum %x != %x", sum, sum0)
					}
					if h := rt.Trace().Hash(); h != rec0.Hash() {
						t.Errorf("journaled trace hash %x != %x", h, rec0.Hash())
					}
				})
			}
		})
	}
}

// Two identical runs must write byte-identical journals, and the decoded
// journal must reproduce the run's events, checkpoints and commits.
func TestJournalReproducibleAndComplete(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.csqj"), filepath.Join(dir, "b.csqj")
	prog := counterProg(4, 20)
	_, recA := runJournaled(t, cfg(), a, prog)
	_, _ = runJournaled(t, cfg(), b, prog)

	ba, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("identical runs wrote different journal bytes")
	}

	d, err := journal.Load(a)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(d.Events)) != recA.Len() {
		t.Fatalf("journal has %d events, trace recorded %d", len(d.Events), recA.Len())
	}
	if len(d.Commits) == 0 {
		t.Fatal("no commit records journaled")
	}
	for _, c := range d.Commits {
		if len(c.Pages) == 0 {
			t.Fatalf("commit version %d journaled with no pages", c.Version)
		}
	}
	wantCps := recA.Checkpoints()
	if len(d.Checkpoints) != len(wantCps) {
		t.Fatalf("journal has %d checkpoints, recorder %d", len(d.Checkpoints), len(wantCps))
	}
	// Journals from identical runs diff as equivalent.
	da, _ := journal.Load(a)
	db, _ := journal.Load(b)
	if rep := journal.Diff(da, db, journal.DiffOptions{}); rep.Kind != journal.DivNone {
		t.Fatalf("identical journals diverge: %s", rep.Detail)
	}
}

// journal_* metrics must appear once an observer and journal are both
// attached, in either order.
func TestJournalMetrics(t *testing.T) {
	for _, order := range []string{"journal-first", "observer-first"} {
		t.Run(order, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.csqj")
			w, err := journal.Create(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := det.New(cfg(), simhost.New(costmodel.Default()))
			if err != nil {
				t.Fatal(err)
			}
			o := obs.New()
			if order == "journal-first" {
				rt.SetJournal(w)
				rt.SetObserver(o)
			} else {
				rt.SetObserver(o)
				rt.SetJournal(w)
			}
			if err := rt.Run(counterProg(2, 5)); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got := map[string]int64{}
			for _, s := range o.Registry().Snapshot() {
				got[s.Name] = s.Value
			}
			if got["journal_events"] == 0 || got["journal_bytes"] == 0 || got["journal_commits"] == 0 {
				t.Fatalf("journal metrics missing or zero: %v", got)
			}
			st := w.Stats()
			if got["journal_events"] != st.Events {
				t.Fatalf("journal_events %d != writer stats %d", got["journal_events"], st.Events)
			}
		})
	}
}
