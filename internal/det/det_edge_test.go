package det_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/clock"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
	"repro/internal/trace"
)

// Edge cases and misuse of the runtime: panics must be deterministic and
// descriptive, configuration corners must work.

func mustPanicContaining(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		// Panic values are strings or structured *det.RuntimeError values;
		// either way the rendering must name the condition.
		if msg := fmt.Sprint(r); !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

func TestUnlockNotOwnerPanics(t *testing.T) {
	rt, _ := det.New(cfg(), simhost.New(costmodel.Default()))
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }() // the panic unwinds through Run's goroutine
		_ = rt.Run(func(root api.T) {
			m := root.NewMutex()
			mustPanicContaining(t, "does not hold", func() { root.Unlock(m) })
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hung")
	}
}

func TestWaitWithoutMutexPanics(t *testing.T) {
	rt, _ := det.New(cfg(), simhost.New(costmodel.Default()))
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		_ = rt.Run(func(root api.T) {
			m := root.NewMutex()
			c := root.NewCond()
			mustPanicContaining(t, "does not hold", func() { root.Wait(c, m) })
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hung")
	}
}

func TestSinglePartyBarrier(t *testing.T) {
	_, _, rt := run(t, cfg(), simhost.New(costmodel.Default()), func(root api.T) {
		bar := root.NewBarrier(1)
		for i := 0; i < 5; i++ {
			api.AddU64(root, 0, 1)
			root.BarrierWait(bar)
		}
	})
	var b [8]byte
	rt.Segment().ReadCommitted(b[:], 0, rt.Segment().Head())
	if b[0] != 5 {
		t.Fatalf("counter = %d", b[0])
	}
}

func TestSingleGlobalLockAliasing(t *testing.T) {
	// Two distinct mutexes must exclude each other under SingleGlobalLock.
	c := cfg()
	c.SingleGlobalLock = true
	c.Coarsening = false
	_, _, rt := run(t, c, simhost.New(costmodel.Default()), func(root api.T) {
		m1 := root.NewMutex()
		m2 := root.NewMutex()
		h := root.Spawn(func(w api.T) {
			w.Lock(m2) // same underlying lock as m1
			cur := api.AddU64(w, 0, 1)
			if max := api.U64(w, 8); cur > max {
				api.PutU64(w, 8, cur)
			}
			w.Compute(5000)
			api.PutU64(w, 0, api.U64(w, 0)-1)
			w.Unlock(m2)
		})
		root.Lock(m1)
		cur := api.AddU64(root, 0, 1)
		if max := api.U64(root, 8); cur > max {
			api.PutU64(root, 8, cur)
		}
		root.Compute(5000)
		api.PutU64(root, 0, api.U64(root, 0)-1)
		root.Unlock(m1)
		root.Join(h)
	})
	var b [16]byte
	rt.Segment().ReadCommitted(b[:], 0, rt.Segment().Head())
	if b[8] != 1 {
		t.Fatalf("max concurrent holders = %d, want 1 (global lock must alias)", b[8])
	}
}

func TestPollingMutexCorrectAndDeterministic(t *testing.T) {
	prog := counterProg(4, 20)
	c := cfg()
	c.PollingMutex = true
	c.PollingBump = 2_000 // fixed bump: host-independent clocks
	sum1, rec1, rt := run(t, c, simhost.New(costmodel.Default()), prog)
	var b [8]byte
	rt.Segment().ReadCommitted(b[:], 0, rt.Segment().Head())
	if got := uint64(b[0]) | uint64(b[1])<<8; got != 80 {
		t.Fatalf("polling counter = %d, want 80", got)
	}
	sum2, rec2, _ := run(t, c, realhost.New(150*time.Microsecond, 9), prog)
	if sum1 != sum2 || rec1.Hash() != rec2.Hash() {
		t.Errorf("fixed-bump polling nondeterministic:\n%s", trace.Diff(rec1, rec2))
	}
	// The self-tuning nudge is deterministic per host (sim), though its
	// clocks depend on publish granularity (documented).
	cN := cfg()
	cN.PollingMutex = true
	a, ra, _ := run(t, cN, simhost.New(costmodel.Default()), prog)
	b2, rb, _ := run(t, cN, simhost.New(costmodel.Default()), prog)
	if a != b2 || ra.Hash() != rb.Hash() {
		t.Error("nudge polling nondeterministic across sim runs")
	}
}

func TestPoolCapBoundsReuse(t *testing.T) {
	c := cfg()
	c.PoolCap = 1
	_, _, rt := run(t, c, simhost.New(costmodel.Default()), func(root api.T) {
		for it := 0; it < 4; it++ {
			var hs []api.Handle
			for i := 0; i < 3; i++ {
				hs = append(hs, root.Spawn(func(w api.T) { w.Compute(1000) }))
			}
			for _, h := range hs {
				root.Join(h)
			}
		}
	})
	st := rt.Stats()
	if st.ThreadsReused == 0 {
		t.Error("pool cap 1 should still allow some reuse")
	}
	if st.ThreadsReused > 4 {
		t.Errorf("pool cap 1 reused %d threads (max one per iteration possible)", st.ThreadsReused)
	}
}

func TestRRWithCoarsening(t *testing.T) {
	c := cfg()
	c.Policy = clock.PolicyRR
	sum1, _, rt := run(t, c, simhost.New(costmodel.Default()), counterProg(3, 30))
	if rt.Stats().CoarsenedOps == 0 {
		t.Log("RR coarsened nothing (allowed, but unexpected for this workload)")
	}
	sum2, _, _ := run(t, c, realhost.New(100*time.Microsecond, 2), counterProg(3, 30))
	if sum1 != sum2 {
		t.Error("RR+coarsening nondeterministic")
	}
}

func TestDeadlockReportedOnSim(t *testing.T) {
	// Classic AB/BA deadlock: the simulated host must report it rather
	// than hang.
	c := cfg()
	c.Coarsening = false
	rt, _ := det.New(c, simhost.New(costmodel.Default()))
	err := rt.Run(func(root api.T) {
		a, b := root.NewMutex(), root.NewMutex()
		h := root.Spawn(func(w api.T) {
			w.Lock(b)
			w.Compute(50_000)
			w.Lock(a)
			w.Unlock(a)
			w.Unlock(b)
		})
		root.Lock(a)
		root.Compute(50_000)
		root.Lock(b)
		root.Unlock(b)
		root.Unlock(a)
		root.Join(h)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("AB/BA deadlock not reported: %v", err)
	}
}

func TestGCBudgetConfigRespected(t *testing.T) {
	c := cfg()
	c.GCPageBudget = 7
	c.GCEveryNCommits = 1
	_, _, rt := run(t, c, simhost.New(costmodel.Default()), counterProg(2, 10))
	if rt.Segment().Stats().GCPageBudget != 7 {
		t.Error("GC budget not threaded through")
	}
}

func TestTraceRecordsExpectedShape(t *testing.T) {
	_, rec, _ := run(t, cfg(), simhost.New(costmodel.Default()), func(root api.T) {
		m := root.NewMutex()
		h := root.Spawn(func(w api.T) {
			w.Lock(m)
			w.Unlock(m)
		})
		root.Join(h)
	})
	var ops []trace.Op
	for _, e := range rec.Events() {
		ops = append(ops, e.Op)
	}
	// Expect: spawn, (child) lock, unlock, exit — join and root exit after.
	counts := map[trace.Op]int{}
	for _, op := range ops {
		counts[op]++
	}
	if counts[trace.OpSpawn] != 1 || counts[trace.OpLock] != 1 ||
		counts[trace.OpUnlock] != 1 || counts[trace.OpJoin] != 1 || counts[trace.OpExit] != 2 {
		t.Fatalf("unexpected op counts %v in trace:\n%s", counts, rec.Dump())
	}
}

func TestNegativeComputePanics(t *testing.T) {
	rt, _ := det.New(cfg(), simhost.New(costmodel.Default()))
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		_ = rt.Run(func(root api.T) {
			mustPanicContaining(t, "negative", func() { root.Compute(-5) })
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hung")
	}
}

func TestConfigValidation(t *testing.T) {
	c := cfg()
	c.SegmentSize = 0
	if _, err := det.New(c, simhost.New(costmodel.Default())); err == nil {
		t.Error("zero segment accepted")
	}
	c = cfg()
	c.StaticLevel = 1
	if _, err := det.New(c, simhost.New(costmodel.Default())); err == nil {
		t.Error("static level 1 accepted")
	}
}
