package det_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
)

// Additional behavioural coverage: condition-variable corner cases,
// nested spawning, and concurrent distinct barriers.

func TestSignalWithNoWaitersIsLost(t *testing.T) {
	// pthreads semantics: a signal with no waiter has no effect; a waiter
	// arriving later must re-check its predicate and block.
	_, _, rt := run(t, cfg(), simhost.New(costmodel.Default()), func(root api.T) {
		m := root.NewMutex()
		c := root.NewCond()
		root.Lock(m)
		root.Signal(c) // nobody waiting: lost
		root.Unlock(m)
		h := root.Spawn(func(w api.T) {
			w.Lock(m)
			// Predicate already true — must NOT wait (a wait here would
			// deadlock, which the sim detects).
			if api.U64(w, 0) == 0 {
				api.PutU64(w, 8, 1) // saw zero: fine, no wait needed
			}
			w.Unlock(m)
		})
		root.Join(h)
	})
	_ = rt
}

func TestBroadcastWakesAllDeterministically(t *testing.T) {
	prog := func(root api.T) {
		m := root.NewMutex()
		c := root.NewCond()
		const n = 5
		var hs []api.Handle
		for i := 0; i < n; i++ {
			i := i
			hs = append(hs, root.Spawn(func(w api.T) {
				w.Lock(m)
				for api.U64(w, 0) == 0 {
					w.Wait(c, m)
				}
				// Record wake order: deterministic under the runtime.
				order := api.AddU64(w, 8, 1)
				api.PutU64(w, 16+8*i, order)
				w.Unlock(m)
			}))
		}
		root.Compute(50_000) // let all waiters park
		root.Lock(m)
		api.PutU64(root, 0, 1)
		root.Broadcast(c)
		root.Unlock(m)
		for _, h := range hs {
			root.Join(h)
		}
	}
	sum1, rec1, rt := run(t, cfg(), simhost.New(costmodel.Default()), prog)
	var count [8]byte
	rt.Segment().ReadCommitted(count[:], 8, rt.Segment().Head())
	if count[0] != 5 {
		t.Fatalf("broadcast woke %d of 5 waiters", count[0])
	}
	sum2, rec2, _ := run(t, cfg(), realhost.New(200*time.Microsecond, 13), prog)
	if sum1 != sum2 || rec1.Hash() != rec2.Hash() {
		t.Error("broadcast wake order nondeterministic across hosts")
	}
}

func TestNestedSpawn(t *testing.T) {
	// A child spawning grandchildren: tid allocation and join edges must
	// hold transitively.
	prog := func(root api.T) {
		h := root.Spawn(func(child api.T) {
			var gs []api.Handle
			for i := 0; i < 3; i++ {
				i := i
				gs = append(gs, child.Spawn(func(g api.T) {
					api.AddU64(g, 8*(1+i), uint64(g.Tid()))
				}))
			}
			for _, g := range gs {
				child.Join(g)
			}
			// Child sees all grandchildren's writes.
			total := uint64(0)
			for i := 0; i < 3; i++ {
				total += api.U64(child, 8*(1+i))
			}
			api.PutU64(child, 0, total)
		})
		root.Join(h)
		if api.U64(root, 0) == 0 {
			panic("grandchildren's writes not visible through join chain")
		}
	}
	for _, hm := range allHosts() {
		t.Run(hm.name, func(t *testing.T) {
			run(t, cfg(), hm.mk(), prog)
		})
	}
}

func TestTwoIndependentBarriers(t *testing.T) {
	// Two disjoint groups using two different barriers concurrently: the
	// groups must not interfere.
	prog := func(root api.T) {
		barA := root.NewBarrier(2)
		barB := root.NewBarrier(2)
		group := func(bar api.Barrier, base int) func(api.T) {
			return func(w api.T) {
				for it := 0; it < 4; it++ {
					api.AddU64(w, base, 1)
					w.BarrierWait(bar)
				}
			}
		}
		h1 := root.Spawn(group(barA, 256))
		h2 := root.Spawn(group(barA, 264))
		h3 := root.Spawn(group(barB, 512))
		h4 := root.Spawn(group(barB, 520))
		for _, h := range []api.Handle{h1, h2, h3, h4} {
			root.Join(h)
		}
		for _, off := range []int{256, 264, 512, 520} {
			if got := api.U64(root, off); got != 4 {
				panic(fmt.Sprintf("slot %d = %d, want 4", off, got))
			}
		}
	}
	for _, hm := range allHosts() {
		t.Run(hm.name, func(t *testing.T) {
			run(t, cfg(), hm.mk(), prog)
		})
	}
}

func TestManySmallSegmentPages(t *testing.T) {
	// Tiny pages stress the diff/merge machinery.
	c := cfg()
	c.PageSize = 256
	sum1, _, _ := run(t, c, simhost.New(costmodel.Default()), counterProg(3, 15))
	sum2, _, _ := run(t, c, realhost.New(100*time.Microsecond, 4), counterProg(3, 15))
	if sum1 != sum2 {
		t.Error("tiny pages nondeterministic")
	}
}
