package det

import (
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/commitlog"
	"repro/internal/host"
	"repro/internal/journal"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/trace"
)

// breakdown accumulates per-phase time for Figure 15, indexed by the
// obs.Phase time categories. Values are nanoseconds between accounting
// boundaries (virtual on the simulation host, wall on the real host).
// obs.PhaseCommit and obs.PhaseMerge fold into RunStats.CommitNS
// together (see Runtime.aggregate).
type breakdown [obs.NumTimePhases]int64

// Thread is one deterministic thread. It implements api.T; all methods
// must be called by the owning thread.
type Thread struct {
	rt  *Runtime
	tid int
	b   host.Binding
	ws  *mem.Workspace

	// icount mirrors the arbiter's clock for this thread. It is advanced
	// locally on every compute/memory operation and resynchronized from
	// the arbiter after every wake (release increments and fast-forwards
	// happen arbiter-side).
	icount   int64
	overflow *clock.Overflow
	// pending is locally retired but not yet published progress (timed
	// hosts publish only at overflow boundaries and chunk ends, like the
	// hardware counter the runtime models); toOverflow counts instructions
	// until the next overflow.
	pending    int64
	toOverflow int64

	holding bool // holds the global token

	// worker is the pooled worker this thread runs on (nil for the root
	// thread, and for every thread when Config.WorkerPool is off).
	worker *worker
	// curShard is the arbitration shard of the sync op in progress, -1
	// for cross-shard edges and whenever sharding is off. Set by
	// syncOpStart (Join overrides it with the child's home shard, a
	// waker's retarget refreshes it in blockForToken), consumed by the
	// handoff and release charge sites; under ShardGrants it is also the
	// request scope passed to the arbiter.
	curShard int
	// domShard is the thread's domain shard under ShardGrants: the shard
	// of its most recent shardable op (home shard, tid mod Shards, until
	// one happens). Exit is arbitrated there, and exit retargets parked
	// joiners to it.
	domShard int
	// tokenAcqNS is the host time at which the thread's current token
	// hold began (after any sub-token-busy top-up); releaseTokenRaw
	// accrues the held span to the scope's busy bucket. ShardGrants only.
	tokenAcqNS int64

	coarse          coarsenState
	lastSyncIcount  int64
	lastCommitCount int64 // icount at last commit (ad-hoc chunk limit)
	// prevUnlockID records which mutex the previous sync op unlocked (0 =
	// previous op was not an unlock), so the chunk now ending can train
	// the matching unlock estimate. The paper keeps one thread-local
	// estimate for unlock coarsening (§3.1); we refine it to
	// per-(thread, mutex), because a pipeline thread's post-unlock chunk
	// length depends on which queue lock it released — a single estimate
	// mixes a long processing chunk with a tiny loop-back chunk and
	// mispredicts both (see DESIGN.md).
	prevUnlockID uint64
	unlockEWMA   map[uint64]*ewma

	// pred is the thread's write-set history (nil when prediction is
	// disabled), keyed by sync site like unlockEWMA: chunkSite is the
	// site of the sync op that started the current chunk, so at the next
	// sync op the chunk's observed write set (ws.TakeChunkWrites) trains
	// that site, and speculate consults the same key to prefetch.
	// predScratch is the reused prediction output buffer.
	pred        *predict.Table
	chunkSite   uint64
	predScratch []int

	// bd accumulates the per-phase time breakdown. lastEvent is the host
	// time at the last accounting boundary: every call to account/charge
	// closes the interval [lastEvent, Now) into one obs.Phase bucket and —
	// when an observer lane is attached — emits that same interval as a
	// begin/end span on the thread's timeline (the obs span API), so the
	// Figure 15 aggregates and the phase-resolved trace are two views of
	// the identical boundaries.
	bd        breakdown
	lastEvent int64
	// lane is the thread's observability span ring (nil when no observer
	// is attached — the disabled fast path is this one nil check).
	lane *obs.Lane

	syncOps      int64
	coarsenedOps int64
	// mSyncOps/mCoarsenedOps/mCommits/hChunk are live per-thread labeled
	// metrics, non-nil only when an observer is attached. mLockAcq caches
	// per-(thread, mutex) acquisition counters so the hot path skips the
	// registry lookup.
	mSyncOps      *obs.Counter
	mCoarsenedOps *obs.Counter
	mCommits      *obs.Counter
	hChunk        *obs.Histogram
	mLockAcq      map[uint64]*obs.Counter

	// chaosT is the thread's chaos stream for barrier skew and commit
	// delays (nil when chaos is disabled; Stream methods are nil-safe).
	chaosT *chaos.Stream

	// diagPhase/diagClock mirror the thread's state for failure
	// diagnostics (RuntimeError, Runtime.DumpState). Atomic because the
	// real host's watchdog renders them from another goroutine; written
	// only at sync-op and park boundaries, so a live thread's mirror may
	// trail its true clock — fine for a diagnostic dump.
	diagPhase atomic.Int32
	diagClock atomic.Int64

	// exit/join state, token-serialized
	done    bool
	joiners []int

	// barrierTarget is the version this thread must update to when it
	// leaves a barrier; written by the releasing (last) arrival before the
	// wake, per-thread so that barrier reuse cannot leak a later round's
	// version to an earlier round's waiter.
	barrierTarget int64

	// objSeq allocates deterministic sync-object ids local to this thread.
	objSeq uint64
}

// start binds the thread to its host context; first thing run on the
// thread's goroutine/proc.
func (t *Thread) start(b host.Binding) {
	t.b = b
	t.lastEvent = b.Now()
}

// Tid implements api.T.
func (t *Thread) Tid() int { return t.tid }

// account closes the current accounting interval into phase p, and emits
// it as a span when an observer lane is attached. Zero-length intervals
// (common on the simulation host, where time only moves on Charge) are
// neither accumulated nor recorded.
func (t *Thread) account(p obs.Phase) {
	now := t.b.Now()
	if now != t.lastEvent {
		t.bd[p] += now - t.lastEvent
		if t.lane != nil {
			t.lane.Span(p, t.lastEvent, now)
		}
		t.lastEvent = now
	}
}

// charge elapses modeled time and accounts it to phase p.
func (t *Thread) charge(p obs.Phase, ns int64) {
	if ns > 0 {
		t.b.Charge(ns)
	}
	t.account(p)
}

// mark emits an instantaneous observer marker at the thread's current
// host time; a no-op without an observer.
func (t *Thread) mark(p obs.Phase, arg int64) {
	if t.lane != nil {
		t.lane.Mark(p, t.b.Now(), arg)
	}
}

// deliver wakes the thread granted by an arbiter result.
func (t *Thread) deliver(grant int) {
	if grant == clock.NoGrant {
		return
	}
	if grant == t.tid {
		panic(t.runtimeError("self-grant", "deliver", 0,
			"tid %d delivered a token grant to itself", t.tid))
	}
	t.rt.deliverFrom(t.b, grant)
}

// Compute implements api.T: retire n instructions of local work.
func (t *Thread) Compute(n int64) {
	if n < 0 {
		panic("det: negative compute")
	}
	t.advance(n)
	t.maybeForceCommit()
}

// advance retires n instructions. On a timed host the clock is published
// to the arbiter only at counter-overflow boundaries (§3.2) — each
// overflow costs an interrupt and is the moment a waiting thread can learn
// it has become the GMIC — and at chunk ends (publishPending); in between,
// progress accumulates locally like an unread hardware counter. Untimed
// hosts publish every operation (latency is real there, not modeled).
//
// Advancing also enforces the adaptive-coarsening budget: if a coarsened
// chunk turns out to be longer than the estimate that justified it
// (the paper's "the next chunk is very long (which cannot be known ahead
// of time)" hazard), the token is released at the budget boundary instead
// of serializing every other thread for the rest of the chunk.
func (t *Thread) advance(n int64) {
	if n == 0 {
		return
	}
	if n < 0 {
		panic("det: negative advance")
	}
	m := &t.rt.cfg.Model
	rem := n
	for rem > 0 {
		step := rem
		// Coarsened-chunk budget boundary (adaptive mode only; decisions
		// depend only on instruction counts, so they are host-independent
		// and deterministic).
		overBudget := false
		if t.holding && t.coarse.active && t.rt.cfg.StaticLevel == 0 {
			budget := t.coarse.startIcount + t.coarse.maxChunk - t.icount
			if budget <= 0 {
				overBudget = true
				budget = 0
			} else if budget < step {
				step = budget
				overBudget = true
			}
		}
		if step > 0 {
			if t.rt.timed {
				// Split at overflow boundaries.
				if t.toOverflow <= 0 && t.rt.cfg.Policy == clock.PolicyIC {
					t.toOverflow = t.overflow.Next(t.tid, t.icount, t.rt.arb)
				}
				if t.rt.cfg.Policy == clock.PolicyIC && t.toOverflow < step {
					step = t.toOverflow
					overBudget = false // re-evaluate next round
				}
				t.charge(obs.PhaseCompute, m.Instr(step))
				t.icount += step
				t.pending += step
				t.toOverflow -= step
				if t.toOverflow == 0 && t.rt.cfg.Policy == clock.PolicyIC {
					t.publishPending()
					t.charge(obs.PhaseLib, m.OverflowIRQ)
				}
			} else {
				t.icount += step
				t.deliver(t.rt.arb.Advance(t.tid, step))
			}
			rem -= step
		}
		if overBudget && t.holding && t.coarse.active {
			// End the coarsened chunk mid-stream: publish and hand the
			// token back.
			t.mark(obs.MarkCoarsenEnd, int64(t.coarse.ops))
			t.coarse.active = false
			t.commitAndUpdate()
			t.releaseTokenRaw()
		}
	}
}

// publishPending pushes locally accumulated clock progress to the arbiter.
func (t *Thread) publishPending() {
	if t.pending > 0 {
		p := t.pending
		t.pending = 0
		t.deliver(t.rt.arb.Advance(t.tid, p))
	}
}

// maybeForceCommit implements the ad-hoc synchronization bound (§2.7).
func (t *Thread) maybeForceCommit() {
	limit := t.rt.cfg.ChunkLimit
	if limit <= 0 || t.icount-t.lastCommitCount < limit {
		return
	}
	// A forced commit is not an operation on any lock object: it is a
	// global publication, i.e. a cross-shard edge.
	t.curShard = -1
	t.tokenBegin()
	t.tokenEnd(coarsenNever, 0)
}

// memInstr models the retired instructions of an n-byte memory operation.
func memInstr(n int) int64 { return 2 + int64(n+7)/8 }

// Read implements api.T.
func (t *Thread) Read(buf []byte, off int) {
	t.ws.Read(buf, off)
	t.advance(memInstr(len(buf)))
}

// Write implements api.T.
func (t *Thread) Write(data []byte, off int) {
	t.ws.Write(data, off)
	if f := t.ws.TakeFaults(); f > 0 {
		t.account(obs.PhaseCompute)
		// Chaos fault delays accumulate per serviced fault in the
		// workspace; charging them with the modeled fault cost keeps the
		// perturbation pure time.
		t.charge(obs.PhaseFault, f*t.rt.cfg.Model.PageFault+t.ws.TakeChaosFaultNS())
	}
	t.advance(memInstr(len(data)))
	t.maybeForceCommit()
}

// --- token protocol ---

// speculate runs the off-token commit pipeline on the way into a token
// wait (§4.2 extended: only publication must be ordered — everything else
// may overlap the deterministic-order wait). Three steps: import the
// remote versions already published (their diffs are immutable after
// phase 1, the same property barrierSleep's off-token update relies on),
// shrinking the pull window the token-held serial phase must process to
// whatever commits during the wait; pre-diff the workspace's dirty pages,
// so the serial phase pays only publication cost for every page not
// locally rewritten in the meantime; and pre-populate the pages the
// write-set predictor expects the next chunk to touch, so its
// copy-on-write faults are serviced here instead of on the path. The
// import is a prefix of the window the commit would import anyway,
// patched in the same version order, and prefetched pages are
// byte-identical to the committed state until written (dropped unwritten),
// so commit results are byte-identical with and without any of it.
// A no-op when disabled or when there is nothing to import, diff, or
// prefetch.
func (t *Thread) speculate() {
	cfg := &t.rt.cfg
	m := &cfg.Model
	if cfg.SpeculativeDiff {
		t.account(obs.PhaseCompute)
		ns := int64(t.ws.Update()) * m.UpdatePage
		ns += int64(t.ws.PrepareCommit()) * m.SpecDiffPage
		if ns > 0 {
			t.charge(obs.PhaseSpecDiff, ns)
		}
	}
	t.prefetchNext()
}

// prefetchNext pre-populates the pages the write-set predictor expects
// the next chunk to write, charging prefetch time off the critical path.
// Called wherever a thread is about to wait with the token released: on
// the way into a token wait (speculate) and on the way into a barrier
// rendezvous sleep (barrierSleep) — the latter matters because barrier
// programs never block in acquireToken, so without it the whole barrier
// class (stencil codes re-writing the same tile every iteration) would
// never prefetch. A no-op when prediction is disabled or the site is
// untrained.
func (t *Thread) prefetchNext() {
	if t.pred == nil {
		return
	}
	// The chunk that follows the sync op now waiting is keyed by that
	// op's site (chunkSite, set in syncOpStart before any token work).
	t.predScratch = t.pred.Predict(t.chunkSite, t.predScratch[:0])
	if len(t.predScratch) > 0 {
		t.account(obs.PhaseCompute)
		if n := t.ws.Prepopulate(t.predScratch); n > 0 {
			t.charge(obs.PhasePrefetch,
				int64(n)*t.rt.cfg.Model.PrepopulatePage+t.ws.TakeChaosFaultNS())
		}
	}
}

// specPrepare pre-diffs the workspace ahead of a commit that never had a
// token wait to overlap — the commits that end or punctuate a coarsened
// chunk, where the token never left the thread and speculate never ran.
// The diff work still happens token-held, but through the speculative
// path (SpecDiffPage + CommitPagePublish per page) instead of the heavier
// in-commit serial path (CommitPageSerial per page). Gated with the
// prediction knob so that disabling WriteSetPrediction reproduces the
// pre-prediction time model exactly; a no-op after a speculated wait
// (everything is already diffed).
func (t *Thread) specPrepare() {
	cfg := &t.rt.cfg
	if !cfg.WriteSetPrediction || !cfg.SpeculativeDiff {
		return
	}
	t.account(obs.PhaseCompute)
	if n := t.ws.PrepareCommit(); n > 0 {
		t.charge(obs.PhaseSpecDiff, int64(n)*cfg.Model.SpecDiffPage)
	}
}

// serialCommitCost models the token-held serial phase of a commit:
// speculatively diffed pages pay only ordering/publication bookkeeping,
// pages whose diff had to be computed under the token pay the full serial
// cost. With speculation disabled every page is a miss and the cost
// reduces exactly to the pre-speculation model.
//
// A commit whose dirty set turned out empty after diffing publishes
// nothing — no version, no conflict checks, no head movement — so with
// prediction enabled it skips the per-commit publication floor
// (CommitFixed) and pays only for the pages it pulled. Lock-heavy
// programs commit at every unlock whether or not the critical section
// wrote; their empty commits are pure floor. Gated with the prediction
// knob so disabling it reproduces the earlier time model exactly.
func (t *Thread) serialCommitCost(st mem.CommitStats) int64 {
	m := &t.rt.cfg.Model
	if t.rt.cfg.WriteSetPrediction && st.CommittedPages == 0 {
		return int64(st.PulledPages) * m.UpdatePage
	}
	return m.CommitFixed +
		int64(st.SpecMisses)*m.CommitPageSerial +
		int64(st.SpecHits)*m.CommitPagePublish +
		int64(st.PulledPages)*m.UpdatePage
}

// chargeCommitSerial charges the commit's serial-phase cost — plus the
// chaos profile's injected commit slowdown — and feeds the live
// mem_commit_serial_ns metric.
func (t *Thread) chargeCommitSerial(st mem.CommitStats) {
	ns := t.serialCommitCost(st) + t.chaosT.CommitDelay()
	t.charge(obs.PhaseCommit, ns)
	t.rt.commitSerialNS.Add(ns)
}

// acquireToken blocks until this thread holds the global token. Must not
// already hold it.
func (t *Thread) acquireToken() {
	m := &t.rt.cfg.Model
	// The wait ahead is exactly the window speculation exists for: pre-diff
	// dirty pages now, so the token-held commit only publishes.
	t.speculate()
	t.publishPending()
	t.account(obs.PhaseCompute)
	// End-of-chunk clock read. Legacy and stage-1 sharding publish the
	// chunk count through the syscall path (the user-space fast path
	// applies only inside coarsened chunks, see tokenBegin). Under
	// per-shard granting a shard-scoped op instead publishes to the
	// shard's in-process clock word — a user-space store, same price as
	// the in-chunk fast path; only global edges (barriers and other
	// all-shard rendezvous) still pay the syscall to fold every shard.
	clockRead := m.SyscallClockRead
	if t.rt.cfg.ShardGrants && t.curShard >= 0 {
		clockRead = m.UserClockRead
	}
	t.charge(obs.PhaseLib, clockRead)
	woken := false
	var g int
	if t.rt.cfg.ShardGrants {
		g = t.rt.arb.RequestSharded(t.tid, t.curShard)
	} else {
		g = t.rt.arb.Request(t.tid)
	}
	if g != t.tid {
		t.deliver(g)
		t.park(diagTokenWait, "global token")
		t.resyncClock()
		woken = true
	}
	t.holding = true
	t.account(obs.PhaseTokenWait)
	t.chargeHandoff(woken)
	t.overflow.ResetChunk()
	t.toOverflow = 0
}

// chargeHandoff prices taking the global token. The price depends on how
// the token arrived, never on anything that could change grant order:
//
//   - Legacy (Shards < 2, no lazy FF): the full Model.TokenHandoff,
//     exactly the pre-scale-out time model.
//   - Lazy fast-forward (woken wake paths): the slim Model.WakeHandoff on
//     the wake, plus the deferred Model.FastForwardResync charged here —
//     when the thread actually takes the token — as its own phase.
//   - Sharded arbitration, shardable op: a shard-local sub-token
//     re-acquire (this thread was the shard's last holder) costs only
//     Model.ShardHandoff; a sub-token transfer costs the full handoff.
//   - Sharded arbitration, cross-shard edge: the full handoff plus
//     (Shards−1) × Model.ShardClockRead to fold every shard clock.
//   - Per-shard granting (ShardGrants): the stage-2 pricing and
//     virtual-time anchoring in chargeShardedHandoff.
func (t *Thread) chargeHandoff(woken bool) {
	cfg := &t.rt.cfg
	m := &cfg.Model
	base := m.TokenHandoff
	var ff int64
	if woken && cfg.FastForward && cfg.LazyFastForward {
		base = m.WakeHandoff
		ff = m.FastForwardResync
	}
	if ss := t.rt.shardSet; ss != nil {
		if cfg.ShardGrants {
			t.chargeShardedHandoff(ss, base, ff)
			return
		}
		if t.curShard >= 0 {
			if ss.NoteGrant(t.curShard, t.tid) && m.ShardHandoff < base+ff {
				// The sub-token never left this thread: no transfer, no
				// deferred resync to pay.
				base, ff = m.ShardHandoff, 0
			}
		} else {
			ss.Merge(t.icount)
			base += int64(ss.Shards()-1) * m.ShardClockRead
		}
	}
	t.charge(obs.PhaseHandoff, base)
	if ff > 0 {
		t.charge(obs.PhaseFastForward, ff)
	}
}

// chargeShardedHandoff prices taking the token under per-shard granting
// and anchors the op in its scope's virtual time (stage 2,
// docs/scheduler.md). The op may not begin before its scope's frontier —
// the instant the scope's previous op released, i.e. the sub-token-busy
// model. Wakes are already anchored there (Runtime.deliverFrom), so the
// top-up below is usually zero for woken threads; it is what serializes
// the immediate-grant path behind the sub-token. Pricing: a shard-local
// re-acquire costs Model.ShardHandoff, a within-shard transfer
// Model.ShardTransfer (one holder cache line plus the shard clock, no
// global fold), and a cross-shard edge the full base handoff plus
// (Shards−1) × Model.ShardClockRead for the fold of every shard clock —
// after which every partition's sub-token is engaged (SetAllHolders).
func (t *Thread) chargeShardedHandoff(ss *clock.ShardSet, base, ff int64) {
	m := &t.rt.cfg.Model
	scope := t.curShard
	if t.rt.timed {
		if f := ss.Frontier(scope); f > t.b.Now() {
			t.charge(obs.PhaseTokenWait, f-t.b.Now())
		}
	}
	t.tokenAcqNS = t.b.Now()
	if scope >= 0 {
		if ss.NoteGrant(scope, t.tid) {
			if m.ShardHandoff < base+ff {
				base, ff = m.ShardHandoff, 0
			}
		} else if m.ShardTransfer < base+ff {
			base, ff = m.ShardTransfer, 0
		}
	} else {
		ss.Merge(t.icount)
		ss.SetAllHolders(t.tid)
		base += int64(ss.Shards()-1) * m.ShardClockRead
	}
	t.charge(obs.PhaseHandoff, base)
	if ff > 0 {
		t.charge(obs.PhaseFastForward, ff)
	}
}

// releaseTokenRaw gives up the token without committing. The arbiter
// advances our clock by one (the sync op itself); mirror it. Under
// sharded arbitration the release clock is also published to the op's
// shard (or, for a cross-shard edge, to every shard) before the arbiter
// hands the token on, so the next holder observes up-to-date shard
// clocks.
func (t *Thread) releaseTokenRaw() {
	t.publishPending()
	t.holding = false
	t.icount++
	if ss := t.rt.shardSet; ss != nil {
		if t.curShard >= 0 {
			ss.NoteRelease(t.curShard, t.icount)
		} else {
			ss.ReleaseAll(t.icount)
		}
		if t.rt.cfg.ShardGrants {
			// Publish the scope's virtual-time frontier BEFORE the arbiter
			// hands the token on, so a grant-time wake anchors against this
			// op's release instant; accrue the held span to the scope's
			// busy bucket for the grant-parallelism metric.
			now := t.b.Now()
			ss.PublishFrontier(t.curShard, now)
			ss.AddBusy(t.curShard, now-t.tokenAcqNS)
		}
	}
	t.deliver(t.rt.arb.Release(t.tid))
}

// resyncClock refreshes the local clock mirror after a wake: arbiter-side
// fast-forwards and release increments may have moved it. Pending progress
// must already have been published (we only block after a release).
func (t *Thread) resyncClock() {
	if t.pending != 0 {
		panic(t.runtimeError("unpublished-progress", "resync", 0,
			"%d instruction(s) of unpublished clock progress across a block", t.pending))
	}
	t.icount = t.rt.arb.Count(t.tid)
}

// blockForToken parks until a grant wakes us holding the token; phase and
// reason describe the wait for failure diagnostics. The caller must
// already have departed and released.
func (t *Thread) blockForToken(phase int32, reason string) {
	t.speculate() // overlap the sleep with pre-diffing, like acquireToken
	t.park(phase, reason)
	t.resyncClock()
	if t.rt.cfg.ShardGrants {
		// The waker may have retargeted our request scope while we slept
		// (exit does, pointing joiners at the child's actual domain shard);
		// refresh the local mirror so this op releases into the scope the
		// grant was actually made in.
		t.curShard = t.rt.arb.Scope(t.tid)
	}
	t.holding = true
	t.account(obs.PhaseTokenWait)
	t.chargeHandoff(true)
	t.overflow.ResetChunk()
	t.toOverflow = 0
	// Acquire semantics: import everything committed while we slept.
	t.commitAndUpdate()
}

// tokenBegin enters the global coordination phase: acquire the token (if
// not coarsening through it), adapt the MIMD max-chunk, and commit+update.
func (t *Thread) tokenBegin() {
	if t.holding {
		// Inside a coarsened chunk: the token never left us, remote commits
		// are impossible, so no commit/update is needed. Pay the chunk-end
		// clock read — user-space if the optimization is on (§3.4) — and
		// pre-diff what the chunk has written so far, spreading the
		// eventual chunk-ending commit's diff work across the chunk's sync
		// ops instead of leaving it all for the in-commit serial path.
		m := &t.rt.cfg.Model
		cost := m.SyscallClockRead
		if t.rt.cfg.UserspaceClockRead {
			cost = m.UserClockRead
		}
		t.account(obs.PhaseCompute)
		t.charge(obs.PhaseLib, cost)
		t.specPrepare()
		return
	}
	t.acquireToken()
	t.mimdAdapt()
	t.commitAndUpdate()
}

// tokenEnd leaves the coordination phase: either keep holding the token
// (coarsening) or commit any deferred writes and release.
func (t *Thread) tokenEnd(kind coarsenKind, nextEstimate int64) {
	wasCoarse := t.coarse.active
	if t.maybeCoarsen(kind, nextEstimate) {
		t.coarsenedOps++
		if t.mCoarsenedOps != nil {
			t.mCoarsenedOps.Inc()
		}
		if !wasCoarse {
			t.mark(obs.MarkCoarsenBegin, nextEstimate)
		}
		return
	}
	if t.coarse.active {
		t.mark(obs.MarkCoarsenEnd, int64(t.coarse.ops))
		t.coarse.active = false
		t.commitAndUpdate() // publish writes deferred during the chunk
	}
	t.releaseTokenRaw()
}

// uncoarsen force-ends a coarsened chunk while still holding the token,
// publishing deferred writes. Used by operations that terminate coarsening
// (cond, barrier, join, exit) on entry.
func (t *Thread) uncoarsen() {
	if t.coarse.active {
		t.mark(obs.MarkCoarsenEnd, int64(t.coarse.ops))
		t.coarse.active = false
		t.commitAndUpdate()
	}
}

// commitAndUpdate publishes the workspace's dirty pages as a new version
// and advances the view past all remote commits (the paper's
// convCommitAndUpdateMem). Must hold the token: commit order is the
// deterministic total order. The serial ordering/publication work and the
// page-merge work are accounted (and traced) as distinct commit and merge
// phases; api.RunStats folds both into CommitNS.
func (t *Thread) commitAndUpdate() {
	if !t.holding {
		panic(t.runtimeError("commit-without-token", "commit", 0,
			"commit attempted without holding the global token"))
	}
	m := &t.rt.cfg.Model
	// Commits that end a coarsened chunk never waited, so speculate never
	// pre-diffed them; do it here through the cheaper speculative path
	// (a no-op after a speculated wait — everything is already diffed).
	t.specPrepare()
	t.account(obs.PhaseCompute)
	pc := t.ws.BeginCommit()
	st := pc.Stats()
	t.chargeCommitSerial(st)
	t.journalCommit(pc.Version())
	t.logCommit(pc.Version())
	pc.Complete()
	t.charge(obs.PhaseMerge, int64(st.CommittedPages)*m.CommitPageMerge)
	t.mark(obs.MarkCommit, int64(st.CommittedPages))
	if t.mCommits != nil {
		t.mCommits.Inc()
	}
	t.lastCommitCount = t.icount
	if h := t.rt.hooks; h != nil {
		h.OnCommit(t.tid, pc.Version())
		h.OnUpdate(t.tid, t.ws.Version())
	}
	t.rt.commitCount++
	if n := t.rt.cfg.GCEveryNCommits; n > 0 && t.rt.commitCount%int64(n) == 0 {
		t.rt.seg.GC()
	}
}

// record emits a trace event at the thread's current clock. Under
// per-shard granting the event carries its granting-shard provenance so
// the recorder can fold per-shard rolling hashes alongside the global
// chain (curShard is the scope the token was granted under, refreshed on
// every syncOpStart and after waker-retargeted wakeups).
func (t *Thread) record(op trace.Op, obj uint64) {
	if t.rt.cfg.ShardGrants {
		t.rt.rec.RecordSharded(t.tid, op, obj, t.icount, t.curShard)
		return
	}
	t.rt.rec.Record(t.tid, op, obj, t.icount)
}

// journalCommit records a just-published version's page content hashes in
// the run journal (no-op without one, or for empty commits). Called
// token-held immediately after BeginCommit, so the version number and the
// event-order position (AtSeq) are replay-stable; hashing forces early
// slot resolution, which mem documents as idempotent and
// order-independent, so results are unchanged.
func (t *Thread) journalCommit(v *mem.Version) {
	jw := t.rt.journal
	if jw == nil || v == nil {
		return
	}
	c := journal.Commit{
		AtSeq:   t.rt.rec.Len(),
		Version: v.Num,
		Tid:     t.tid,
		Clock:   t.icount,
	}
	c.Pages = make([]journal.PageHash, 0, len(v.Pages))
	v.ForEachPageHash(func(pg int, h uint64) {
		c.Pages = append(c.Pages, journal.PageHash{Page: pg, Hash: h})
	})
	jw.RecordCommit(c)
}

// logCommit appends a just-published version's page diffs to the commit
// log (no-op without one, or for empty commits). Called token-held at the
// same point as journalCommit, so the two artifacts share the AtSeq
// interleave contract and cross-reference record for record. The diffs
// are the committer's own byte runs — immutable once published — so the
// log's drain goroutine can encode them off the critical path without
// copying.
func (t *Thread) logCommit(v *mem.Version) {
	l := t.rt.clog
	if l == nil || v == nil {
		return
	}
	c := commitlog.Commit{
		AtSeq:   t.rt.rec.Len(),
		Version: v.Num,
		Tid:     t.tid,
		Clock:   t.icount,
	}
	c.Pages = make([]commitlog.PageDiff, 0, len(v.Pages))
	v.ForEachPageDiff(func(pg int, d mem.Diff) {
		c.Pages = append(c.Pages, commitlog.PageDiff{Page: pg, Runs: d.Runs})
	})
	l.Append(c)
}

// Sync-site kinds, composed with the operation's object id into the
// write-set predictor's site keys. Distinct kinds keep a Lock and an
// Unlock of the same mutex from sharing one history entry: the chunk
// after a Lock is the critical section, the chunk after its Unlock is
// whatever follows — different code, different write sets.
const (
	siteLock uint64 = iota + 1
	siteUnlock
	siteCondWait
	siteSignal
	siteBroadcast
	siteBarrier
	siteSpawn
	siteJoin
	siteExit
)

// siteID composes a predictor site key from a sync-op kind and its object
// id. Object ids are deterministic (tid-and-sequence for user objects), so
// site keys are too. Spawn/join/exit pass obj 0: their per-instance ids
// never repeat, so keying on them would never produce a second visit to
// train against.
func siteID(kind, obj uint64) uint64 { return kind<<56 | obj&(1<<56-1) }

// shardOf maps a sync site to its arbitration shard: lock-object
// operations shard by object id through the configured Sharder (and move
// the thread's domain shard); barriers, forks and joins are cross-shard
// edges (-1). Under per-shard granting (stage 2) spawn and exit are
// instead arbitrated in the acting thread's domain shard, and a join is
// scoped to the child's home (threads.go) — only barriers and other
// rendezvous ops remain global edges. Only called when sharding is on. A
// Sharder that returns an out-of-range shard is a configuration bug
// surfaced as a RuntimeError, not silently clamped.
func (t *Thread) shardOf(site uint64) int {
	switch site >> 56 {
	case siteLock, siteUnlock, siteCondWait, siteSignal, siteBroadcast:
		obj := site & (1<<56 - 1)
		sh := t.rt.sharder.Shard(obj, t.rt.cfg.Shards)
		if sh < 0 || sh >= t.rt.cfg.Shards {
			panic(t.runtimeError("bad-shard", "shard", obj,
				"Sharder returned shard %d for object %d with %d shards", sh, obj, t.rt.cfg.Shards))
		}
		if t.rt.cfg.ShardGrants {
			t.domShard = sh
		}
		return sh
	case siteSpawn, siteExit:
		// Stage 2 only: thread creation and destruction are ordered in the
		// acting thread's domain shard (a joiner is retargeted to the
		// exit's domain, see threads.go), so fork/join programs do not
		// rendezvous every partition per lifecycle op. Stage 1 keeps both
		// as global edges — its pricing-only time model is frozen.
		if t.rt.cfg.ShardGrants {
			return t.domShard
		}
		return -1
	default:
		return -1
	}
}

// syncOpStart updates per-thread chunk statistics at the start of every
// synchronization operation; site is the operation's predictor key
// (siteID). Unlock estimates only learn from chunks that followed an
// unlock of the matching mutex — the case they are consulted for. The
// write-set predictor follows the same discipline: the chunk now ending
// trains the site that started it, and the site now starting becomes the
// key the next speculate consults.
func (t *Thread) syncOpStart(site uint64) {
	if t.rt.shardSet != nil {
		t.curShard = t.shardOf(site)
	}
	chunk := t.icount - t.lastSyncIcount
	if t.prevUnlockID != 0 {
		t.unlockEstimator(t.prevUnlockID).update(float64(chunk))
		t.prevUnlockID = 0
	}
	if t.pred != nil {
		writes := t.ws.TakeChunkWrites()
		if t.chunkSite != 0 {
			t.pred.Train(t.chunkSite, writes)
		}
		t.chunkSite = site
	}
	t.lastSyncIcount = t.icount
	t.diagClock.Store(t.icount)
	t.syncOps++
	if t.mSyncOps != nil {
		t.mSyncOps.Inc()
		t.hChunk.Observe(chunk)
	}
}

// noteLockAcquire bumps the per-(thread, mutex) acquisition counter and
// drops a lock-acquire marker on the timeline; a no-op without an
// observer. The counter pointer is cached per mutex so repeated
// acquisitions skip the registry lookup.
func (t *Thread) noteLockAcquire(mutexID uint64) {
	if t.rt.obs == nil {
		return
	}
	t.mark(obs.MarkLockAcquire, int64(mutexID))
	c, ok := t.mLockAcq[mutexID]
	if !ok {
		c = t.rt.obs.Registry().Counter("det_lock_acquires",
			obs.L("tid", t.tid), obs.L("mutex", mutexID))
		t.mLockAcq[mutexID] = c
	}
	c.Inc()
}

// unlockEstimator returns this thread's post-unlock chunk estimator for
// the given mutex.
func (t *Thread) unlockEstimator(mutexID uint64) *ewma {
	if t.unlockEWMA == nil {
		t.unlockEWMA = make(map[uint64]*ewma)
	}
	e, ok := t.unlockEWMA[mutexID]
	if !ok {
		e = &ewma{}
		t.unlockEWMA[mutexID] = e
	}
	return e
}

// mimdAdapt implements the multiplicative-increase, multiplicative-decrease
// max-chunk policy (§3.1): consecutive coordination entries by the same
// thread double its budget; interleaved entries halve it. Token-held.
func (t *Thread) mimdAdapt() {
	cfg := &t.rt.cfg
	if !cfg.Coarsening || cfg.StaticLevel >= 2 {
		return
	}
	c := &t.coarse
	if t.rt.lastCoordTid == t.tid {
		c.maxChunk *= 2
		if c.maxChunk > cfg.MaxChunkCap {
			c.maxChunk = cfg.MaxChunkCap
		}
	} else {
		c.maxChunk /= 2
		if c.maxChunk < cfg.MaxChunkFloor {
			c.maxChunk = cfg.MaxChunkFloor
		}
	}
	t.rt.lastCoordTid = t.tid
}

var _ api.T = (*Thread)(nil)
