package det

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/host"
)

// RuntimeError is the structured diagnostic the runtime panics with when a
// synchronization invariant is violated (unlocking an unheld mutex,
// committing without the token, a zero-party barrier, a double wake, ...).
// It replaces bare string panics so a failure names the offending thread's
// full deterministic context — enough to replay the run to the violation —
// instead of only the violated condition. Callers that want to contain a
// misuse recover it and inspect the fields; Code is the stable
// programmatic key, Error() the human rendering.
type RuntimeError struct {
	// Code identifies the violated invariant: "unlock-unheld",
	// "commit-without-token", "zero-party-barrier", "double-wake",
	// "self-grant", "unknown-tid", "unpublished-progress".
	Code string
	// Tid and Clock are the offending thread's identity and logical clock
	// at the violation (Tid -1 when no thread context exists).
	Tid   int
	Clock int64
	// Phase is what the thread was doing ("running", "token-wait", ...).
	Phase string
	// Op is the API operation that tripped the invariant; Object the sync
	// object involved (0 = none).
	Op     string
	Object uint64
	// HeldLocks lists the mutex ids the thread held, ascending.
	HeldLocks []uint64
	// PendingCommits is the thread's uncommitted dirty-page count — writes
	// that would have been lost had the program died here.
	PendingCommits int
	// Detail is the condition-specific explanation.
	Detail string
}

// Error implements error.
func (e *RuntimeError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "det: %s: %s", e.Code, e.Detail)
	if e.Tid >= 0 {
		fmt.Fprintf(&b, " [tid=%d clock=%d phase=%s op=%s", e.Tid, e.Clock, e.Phase, e.Op)
		if e.Object != 0 {
			fmt.Fprintf(&b, " obj=%d", e.Object)
		}
		fmt.Fprintf(&b, " held-locks=%v pending-commit-pages=%d]", e.HeldLocks, e.PendingCommits)
	}
	return b.String()
}

// Diagnostic thread phases, stored atomically so the real host's watchdog
// (a different goroutine) can render DumpState while threads run.
const (
	diagRunning int32 = iota
	diagTokenWait
	diagMutexWait
	diagCondWait
	diagJoinWait
	diagBarrierWait
	diagDone
)

var diagNames = [...]string{
	diagRunning:     "running",
	diagTokenWait:   "token-wait",
	diagMutexWait:   "mutex-wait",
	diagCondWait:    "cond-wait",
	diagJoinWait:    "join-wait",
	diagBarrierWait: "barrier-wait",
	diagDone:        "done",
}

// runtimeError builds a RuntimeError with the thread's current context
// filled in. Must be called by the owning thread (it reads the workspace).
func (t *Thread) runtimeError(code, op string, obj uint64, format string, a ...any) *RuntimeError {
	return &RuntimeError{
		Code:           code,
		Tid:            t.tid,
		Clock:          t.icount,
		Phase:          diagNames[t.diagPhase.Load()],
		Op:             op,
		Object:         obj,
		HeldLocks:      t.rt.heldLocksOf(t.tid),
		PendingCommits: t.ws.DirtyPages(),
		Detail:         fmt.Sprintf(format, a...),
	}
}

// park records why the thread is about to sleep — the diagnostic phase
// (read by DumpState) and the host block reason (rendered by the sim
// host's deadlock report and the real host's watchdog dump) — then blocks,
// clearing the phase on wake. All runtime blocking funnels through here.
func (t *Thread) park(phase int32, reason string) {
	t.diagPhase.Store(phase)
	t.diagClock.Store(t.icount)
	if br, ok := t.b.(host.BlockReasoner); ok {
		br.SetBlockReason(reason)
	}
	t.b.Block()
	t.diagPhase.Store(diagRunning)
}

// noteLockHeld records (or erases) tid's ownership of a mutex for failure
// diagnostics. Ownership changes are token-serialized; the map is still
// mutex-guarded because DumpState and RuntimeError construction read it
// from arbitrary goroutines.
func (rt *Runtime) noteLockHeld(tid int, mutexID uint64, held bool) {
	rt.diagMu.Lock()
	defer rt.diagMu.Unlock()
	if rt.heldLocks == nil {
		rt.heldLocks = make(map[int]map[uint64]bool)
	}
	set := rt.heldLocks[tid]
	if held {
		if set == nil {
			set = make(map[uint64]bool)
			rt.heldLocks[tid] = set
		}
		set[mutexID] = true
	} else {
		delete(set, mutexID)
	}
}

// heldLocksOf returns a sorted copy of tid's held mutex ids.
func (rt *Runtime) heldLocksOf(tid int) []uint64 {
	rt.diagMu.Lock()
	defer rt.diagMu.Unlock()
	set := rt.heldLocks[tid]
	if len(set) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// DumpState renders the runtime's failure-diagnostic snapshot: every live
// thread's phase, last-recorded clock and held locks, plus the arbiter's
// token state. Safe to call from any goroutine at any time (the watchdog
// and -timeout handlers call it while threads run), so it reads only the
// atomic diagnostic mirrors — live threads may be mid-operation and their
// clocks slightly stale.
func (rt *Runtime) DumpState() string {
	rt.mu.Lock()
	tids := make([]int, 0, len(rt.threads))
	byTid := make(map[int]*Thread, len(rt.threads))
	for tid, th := range rt.threads {
		tids = append(tids, tid)
		byTid[tid] = th
	}
	rt.mu.Unlock()
	sort.Ints(tids)

	var b strings.Builder
	fmt.Fprintf(&b, "det: runtime state (%s, %d live thread(s)):\n", rt.Name(), len(tids))
	for _, tid := range tids {
		th := byTid[tid]
		fmt.Fprintf(&b, "  t%-4d phase=%-12s clock=%-12d held-locks=%v\n",
			tid, diagNames[th.diagPhase.Load()], th.diagClock.Load(), rt.heldLocksOf(tid))
	}
	b.WriteString(rt.arb.DumpState())
	if rt.shardSet != nil {
		b.WriteString("\n")
		b.WriteString(rt.shardSet.DumpState())
	}
	return b.String()
}
