package det

import "testing"

// TestSiteIDKeying pins the predictor key composition: kinds and object
// ids must never collide (a Lock and an Unlock of the same mutex lead into
// different chunks with different write sets), the kind must occupy the
// top byte, and keys must be nonzero for every real kind (zero is the
// predictor's "no site" sentinel).
func TestSiteIDKeying(t *testing.T) {
	kinds := []uint64{siteLock, siteUnlock, siteCondWait, siteSignal,
		siteBroadcast, siteBarrier, siteSpawn, siteJoin, siteExit}
	seen := map[uint64]bool{}
	for _, k := range kinds {
		for _, obj := range []uint64{0, 1, 5, 1<<56 - 1} {
			id := siteID(k, obj)
			if id == 0 {
				t.Errorf("siteID(%d, %d) = 0, the no-site sentinel", k, obj)
			}
			if id>>56 != k {
				t.Errorf("siteID(%d, %d) top byte = %d, want the kind", k, obj, id>>56)
			}
			if seen[id] {
				t.Errorf("siteID collision at kind %d obj %d", k, obj)
			}
			seen[id] = true
		}
	}
	// Object ids are masked into the low 56 bits; two ids differing only
	// above that would collide — the object id allocators never get there,
	// and this documents the boundary.
	if siteID(siteLock, 7) != siteID(siteLock, 7|1<<56) {
		t.Error("mask boundary moved: update the keying doc")
	}
}
