// Package det implements Consequence: a deterministic multithreading
// runtime with total-store-order memory consistency (Merrifield, Devietti,
// Eriksson — EuroSys 2015).
//
// Threads execute local work against isolated workspaces of a versioned
// memory segment (internal/mem, the Conversion substrate). Every
// synchronization operation requires the single global token, granted in a
// deterministic order by the logical-clock arbiter (internal/clock):
// instruction-count (GMIC/Kendo) order for Consequence-IC, round-robin for
// Consequence-RR. Writes accumulate in per-thread store buffers and publish
// as totally-ordered versions at token-held commits, giving TSO.
//
// The optimizations from §3 of the paper are all implemented and
// individually switchable (Config): adaptive coarsening, adaptive counter
// overflow, thread reuse for fork-join programs, user-space clock reads,
// fast-forward, and the parallel two-phase barrier commit of §4.2.
//
// The runtime is host-agnostic: on internal/host/realhost threads are
// goroutines running in parallel with wall-clock time; on
// internal/host/simhost they are virtual threads with a modeled cost for
// every operation, which is how the benchmark harness regenerates the
// paper's figures deterministically. The logical behaviour — sync order,
// logical clocks, memory state — is identical on both hosts.
package det

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/commitlog"
	"repro/internal/costmodel"
	"repro/internal/host"
	"repro/internal/journal"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/trace"
)

// Config selects the runtime's policies and optimizations. The zero value
// is not valid; start from Default().
type Config struct {
	// Policy is the deterministic ordering discipline: clock.PolicyIC
	// (Consequence-IC) or clock.PolicyRR (Consequence-RR).
	Policy clock.Policy
	// FastForward enables §3.5: a woken thread's clock jumps to the last
	// token releaser's clock.
	FastForward bool

	// Coarsening enables §3.1 chunk coarsening. With StaticLevel == 0 the
	// adaptive policy is used (per-lock and per-thread EWMA chunk
	// estimates bounded by an MIMD-adapted max chunk length); with
	// StaticLevel >= 2, exactly that many coordination phases are fused.
	Coarsening  bool
	StaticLevel int
	// MaxChunkInit/Floor/Cap bound the MIMD adaptation of the maximum
	// coarsened chunk length, in instructions.
	MaxChunkInit  int64
	MaxChunkFloor int64
	MaxChunkCap   int64
	// CoarsenChunkThreshold gates the adaptive policy: a chunk is only
	// fused into a token-held span if its estimated length is at most this
	// many instructions — i.e., comparable to the coordination overhead
	// fusion eliminates. Chunks longer than this do real parallel work
	// that would be serialized for no net gain. (An extension to §3.1's
	// scheme; see DESIGN.md.)
	CoarsenChunkThreshold int64

	// AdaptiveOverflow enables §3.2; OverflowBase is the static interval
	// (and the adaptive policy's per-chunk reset value).
	AdaptiveOverflow bool
	OverflowBase     int64

	// UserspaceClockRead enables §3.4: clock reads at sync ops inside a
	// coarsened chunk skip the syscall.
	UserspaceClockRead bool
	// ThreadPool enables §3.3 thread reuse for fork-join programs.
	ThreadPool bool
	// PoolCap bounds the number of pooled workspaces (and, under
	// WorkerPool, parked workers).
	PoolCap int
	// WorkerPool upgrades §3.3 thread reuse from workspace recycling to
	// full worker reuse (docs/scheduler.md): an exiting thread parks its
	// host task and workspace on a replay-stable free list keyed by
	// (exit clock, tid), and a later Spawn adopts the warmest parked
	// worker instead of forking. The spawner pays only
	// Model.PoolWorkerWake; the adopted worker performs its own view
	// warm-up off the spawner's critical path. Results (checksums, sync
	// traces) are identical with the pool on or off — only modeled time
	// and its placement move.
	WorkerPool bool
	// PoolPrespawn pre-creates this many parked workers before the root
	// thread starts (requires WorkerPool), so even a program's first
	// spawns adopt instead of forking: worker creation cost lands on the
	// workers' own timelines at startup, overlapping the root thread's
	// ramp-up. Bounded by PoolCap.
	PoolPrespawn int
	// LazyFastForward defers a woken thread's counter fast-forward off
	// the wake path (§3.5 refined, docs/scheduler.md): the wake itself
	// pays only Model.WakeHandoff, and the deferred resync
	// (Model.FastForwardResync) is charged when the thread actually
	// takes the token. Logical clock values are unchanged — the arbiter
	// still fast-forwards exactly as with eager FF — so grant order and
	// traces are identical; only the charge structure moves. Effective
	// only when FastForward is on.
	LazyFastForward bool
	// Shards partitions lock objects into this many arbitration shards
	// (docs/scheduler.md), each with its own sub-token and shard clock,
	// merged only at cross-shard edges (barriers, forks, joins, exits).
	// Without ShardGrants the global grant order is unchanged — the
	// sharded structure grants in exactly the single-token order, which
	// is the stage-1 determinism argument — but a shard-local sub-token
	// re-acquire is priced at Model.ShardHandoff instead of a full
	// TokenHandoff. 0 and 1 both mean the legacy single token and
	// reproduce the pre-shard time model exactly (dwc-strict keeps
	// Shards = 1).
	Shards int
	// Sharder maps lock object ids to shards; nil selects FNVSharder
	// (fnv32a hash + modulo). Only consulted when Shards >= 2.
	Sharder Sharder
	// ShardGrants promotes the shards from priced bookkeeping to real
	// granting authority (stage 2, docs/scheduler.md): every request
	// names a scope — the operation's shard, or a global scope for
	// cross-shard edges (spawn, barrier, forced commits) — per-shard
	// release clocks advance independently, blocked threads fast-forward
	// only into their scope's clock domain, and grants follow the
	// deterministic merge rule (shard clock, shard id, tid). Results
	// (checksums) are byte-identical to the legacy order for race-free
	// programs, but the sync trace legitimately changes: events carry
	// shard provenance and interleave per the merge rule instead of the
	// single-token order (the ordering-contract equivalence argument in
	// docs/scheduler.md). Requires PolicyIC and Shards >= 2.
	ShardGrants bool
	// ParallelBarrier enables the two-phase parallel barrier commit (§4.2).
	ParallelBarrier bool
	// SpeculativeDiff hoists commit diff computation off the token path: a
	// thread about to wait for the global token pre-diffs its dirty pages
	// (mem.Workspace.PrepareCommit), and the token-held serial phase reuses
	// those diffs, re-diffing only pages invalidated by a local write or a
	// pulled remote version. Commit order and memory contents are
	// byte-identical either way (Determinator and the Deterministic
	// Consistency model make the same observation: only publication must
	// be ordered, diffing is free to overlap).
	SpeculativeDiff bool
	// WriteSetPrediction moves copy-on-write fault servicing off the token
	// critical path the same way SpeculativeDiff moves diffing: each
	// thread keeps a deterministic per-sync-site history of the pages its
	// chunks wrote (internal/predict, keyed like the unlock chunk
	// estimators), and on the next visit to a site pre-populates the
	// predicted pages (mem.Workspace.Prepopulate) while waiting for the
	// deterministic order. Prediction is advisory: a mispredicted page is
	// byte-identical to the committed state and is dropped unpublished, so
	// checksums, sync traces and commit order are identical with it on or
	// off — only the modeled time moves. The knob also gates the
	// satellite serial-path trims that ride on the same machinery
	// (pre-diffing coarsened-chunk commits, skipping the publish floor for
	// empty commits), so disabling it reproduces the pre-prediction time
	// model exactly.
	WriteSetPrediction bool

	// ChunkLimit > 0 forces a commit+update after that many instructions
	// without one, supporting ad-hoc synchronization (§2.7). The paper's
	// evaluation (and ours) runs with it disabled.
	ChunkLimit int64

	// SingleGlobalLock aliases every mutex to one global lock, the
	// DThreads/DWC locking model the paper contrasts against ("the mutual
	// exclusion implementation replaces all locks with a single global
	// lock"). Used by the DWC baseline.
	SingleGlobalLock bool
	// PollingMutex replaces the paper's blocking mutex_lock with the
	// Kendo-style polling acquisition it improves upon (§4.1): a loser
	// does not depart and queue — it bumps its own clock past the current
	// minimum and retries, burning token rounds until the lock frees.
	// PollingBump is the clock increment per failed attempt (Kendo's
	// program-specific tuning knob; 0 means re-contend just past the next
	// eligible thread). Exists for the blocking-vs-polling ablation.
	PollingMutex bool
	PollingBump  int64
	// NameOverride replaces the reported runtime name (baselines built as
	// det configurations use it).
	NameOverride string

	// SegmentSize and PageSize configure the shared memory segment.
	SegmentSize int
	PageSize    int
	// GCPageBudget bounds each GC pass (0 = unlimited); GCEveryNCommits is
	// the collection cadence.
	GCPageBudget    int
	GCEveryNCommits int

	// TraceKeep bounds retained trace events (hashing always covers all).
	TraceKeep int
	// JournalCheckpointK is the interval, in sync-trace events, between
	// rolling-hash checkpoints (trace.Checkpoint; 0 disables). Checkpoints
	// are cheap in-memory snapshots of the global and per-thread hashes;
	// with a run journal attached they are also persisted, letting
	// conseq-diff localize a divergence in O(log n) hash probes.
	JournalCheckpointK int64
	// Model is the simulation cost model (ignored on untimed hosts).
	Model costmodel.Model

	// Chaos, when non-nil, arms seeded fault injection: New wraps the host
	// so every Charge is jittered and every wake delayed per the profile,
	// and each thread draws its overflow-shrink, misprediction, barrier-
	// skew, fault- and commit-delay streams from the injector. Injectors
	// are single-use — create a fresh one per runtime so replays line up.
	// Perturbations are confined to modeled time and advisory predictions,
	// so results (checksums, sync traces) are identical with chaos on or
	// off; scripts/check.sh gates on exactly that.
	Chaos *chaos.Injector

	// CommitLog, when non-nil, attaches a persistent commit log: both
	// commit sites append each published version's page diffs (sync-order
	// seq, tid, clock, per-page byte runs) to the segmented on-disk log,
	// from which internal/commitlog can Replay any version, Resume a run,
	// or Stream committed versions to a live follower (docs/commitlog.md).
	// Equivalent to calling SetCommitLog before Run. Logging never changes
	// results — checksums and sync traces are byte-identical with the log
	// on or off, and identical runs produce byte-identical log files;
	// scripts/check.sh gates both. The caller owns the log and must Close
	// it after Run to flush.
	CommitLog *commitlog.Log
}

// Default returns the full Consequence-IC configuration, all optimizations
// enabled.
func Default() Config {
	return Config{
		Policy:                clock.PolicyIC,
		FastForward:           true,
		Coarsening:            true,
		MaxChunkInit:          200_000,
		MaxChunkFloor:         60_000,
		MaxChunkCap:           2_000_000,
		CoarsenChunkThreshold: 12_000,
		AdaptiveOverflow:      true,
		OverflowBase:          10_000,
		UserspaceClockRead:    true,
		ThreadPool:            true,
		PoolCap:               64,
		Shards:                1,
		ParallelBarrier:       true,
		SpeculativeDiff:       true,
		WriteSetPrediction:    true,
		SegmentSize:           1 << 24,
		// GCPageBudget models the single-threaded Conversion collector: a
		// bounded reclaim per pass, so programs that churn pages faster
		// than one collector thread can fold them retain versions — the
		// canneal / lu_ncb memory growth of Figure 12.
		GCPageBudget:       192,
		GCEveryNCommits:    16,
		TraceKeep:          4096,
		JournalCheckpointK: 256,
		Model:              costmodel.Default(),
	}
}

// EnableScaleOut applies the scheduler scale-out set (docs/scheduler.md)
// for a run with the given thread count: Shards-way per-shard granting
// (ShardGrants), the deterministic worker pool pre-spawned to the thread
// count, and lazy fast-forward. A shards value below 2 leaves the
// configuration untouched — the legacy single-token time model. Results
// (checksums) are identical at every shard count for race-free programs;
// the sync trace at shards >= 2 follows the per-shard merge-rule order
// (deterministic and replay-stable, but different events/interleave than
// shards = 1 — see the stage-2 equivalence argument in docs/scheduler.md).
func (c *Config) EnableScaleOut(shards, threads int) {
	if shards < 2 {
		return
	}
	c.Shards = shards
	c.ShardGrants = true
	c.WorkerPool = true
	c.LazyFastForward = true
	c.PoolPrespawn = threads
}

// Hooks receives token-serialized notifications of runtime events; the LRC
// propagation study (internal/lrc, Figure 16) plugs in here. All methods
// are invoked with the global token held, so implementations need no
// locking and see the deterministic total order.
type Hooks interface {
	// OnAcquire fires when tid completes an acquire-flavoured operation on
	// a sync object (lock acquisition, cond wakeup, barrier exit, join,
	// child start).
	OnAcquire(tid int, obj uint64)
	// OnRelease fires when tid performs a release-flavoured operation
	// (unlock, signal/broadcast, barrier entry, spawn, exit).
	OnRelease(tid int, obj uint64)
	// OnCommit fires after tid commits version v (nil if the commit had no
	// changed pages).
	OnCommit(tid int, v *mem.Version)
	// OnUpdate fires after tid imports remote versions up to `to`.
	OnUpdate(tid int, to int64)
	// OnSpawn fires when parent creates child (the fork copies the
	// parent's view wholesale).
	OnSpawn(parent, child int)
}

// Runtime is one deterministic execution context. Create with New, use
// once via Run.
type Runtime struct {
	cfg     Config
	h       host.Host
	timed   bool
	arb     *clock.Arbiter
	seg     *mem.Segment
	rec     *trace.Recorder
	hooks   Hooks
	obs     *obs.Observer
	journal *journal.Writer
	clog    *commitlog.Log

	mu      sync.Mutex // guards threads map, pool and workers
	threads map[int]*Thread
	pool    []*mem.Workspace
	// workers is the parked-worker free list (WorkerPool), kept sorted by
	// free-list key ascending so the warmest worker pops from the end.
	// Mutations are token-serialized (spawn adopts, exit parks, the last
	// exit drains) — the list order, and therefore which worker a spawn
	// adopts, is replay-stable.
	workers   []*worker
	workerSeq int

	// shardSet/sharder are the sharded-arbitration bookkeeping, nil/unused
	// when cfg.Shards < 2.
	shardSet *clock.ShardSet
	sharder  Sharder

	// diagMu guards heldLocks: per-tid held mutex ids for failure
	// diagnostics (RuntimeError, DumpState). Ownership changes are
	// token-serialized, but diagnostic readers run on other goroutines.
	diagMu    sync.Mutex
	heldLocks map[int]map[uint64]bool

	// token-serialized state (mutated only while holding the token)
	nextTid      int
	lastCoordTid int
	commitCount  int64
	globalMutex  *dMutex // all mutexes alias here when SingleGlobalLock

	// commitSerialNS accumulates the time charged inside token-held serial
	// commit phases (BeginCommit charges only — merge and speculation are
	// excluded). Atomic so a live metrics scrape can read it mid-run.
	commitSerialNS atomic.Int64

	started bool
	agg     aggStats
	aggMu   sync.Mutex
}

type aggStats struct {
	api.RunStats
}

// New creates a runtime on the given host.
func New(cfg Config, h host.Host) (*Runtime, error) {
	if cfg.SegmentSize <= 0 {
		return nil, fmt.Errorf("det: segment size must be positive")
	}
	if cfg.Coarsening && cfg.StaticLevel == 1 {
		return nil, fmt.Errorf("det: static coarsening level 1 is meaningless (use 0 for adaptive or >= 2)")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("det: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.PoolPrespawn < 0 {
		return nil, fmt.Errorf("det: negative prespawn count %d", cfg.PoolPrespawn)
	}
	if cfg.PoolPrespawn > 0 && !cfg.WorkerPool {
		return nil, fmt.Errorf("det: PoolPrespawn requires WorkerPool")
	}
	if cfg.WorkerPool && cfg.PoolCap <= 0 {
		return nil, fmt.Errorf("det: WorkerPool requires a positive PoolCap")
	}
	if cfg.ShardGrants {
		if cfg.Shards < 2 {
			return nil, fmt.Errorf("det: ShardGrants requires Shards >= 2 (got %d)", cfg.Shards)
		}
		if cfg.Policy != clock.PolicyIC {
			return nil, fmt.Errorf("det: ShardGrants requires PolicyIC (round-robin has no clock domain to shard)")
		}
	}
	seg, err := mem.NewSegment(mem.SegmentConfig{
		Name:         "heap",
		Size:         cfg.SegmentSize,
		PageSize:     cfg.PageSize,
		GCPageBudget: cfg.GCPageBudget,
	})
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		cfg:          cfg,
		h:            chaos.WrapHost(h, cfg.Chaos),
		timed:        h.Timed(),
		arb:          clock.New(cfg.Policy, cfg.FastForward),
		seg:          seg,
		rec:          trace.New(cfg.TraceKeep),
		threads:      make(map[int]*Thread),
		lastCoordTid: -1,
	}
	if cfg.JournalCheckpointK > 0 {
		rt.rec.SetCheckpointInterval(cfg.JournalCheckpointK)
	}
	if cfg.SingleGlobalLock {
		rt.globalMutex = &dMutex{id: 1, owner: -1}
	}
	if cfg.Shards >= 2 {
		rt.shardSet = clock.NewShardSet(cfg.Shards)
		rt.sharder = cfg.Sharder
		if rt.sharder == nil {
			rt.sharder = FNVSharder{}
		}
	}
	if cfg.ShardGrants {
		rt.arb.EnableShardGrants(cfg.Shards)
	}
	if cfg.CommitLog != nil {
		if err := rt.SetCommitLog(cfg.CommitLog); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// SetHooks installs event hooks; must be called before Run.
func (rt *Runtime) SetHooks(h Hooks) {
	if rt.started {
		panic("det: SetHooks after Run")
	}
	rt.hooks = h
}

// SetObserver attaches an observability layer; must be called before Run
// (pass nil to detach). Attaching registers func gauges that subsume the
// pre-existing ad-hoc counters — the memory substrate's Segment.Stats,
// the arbiter's Arbiter.Stats, and the runtime's own aggregates — under
// the observer's single snapshot API, and makes every thread record
// phase spans into its timeline lane. An attached observer never changes
// runtime behaviour: sync order, logical clocks, memory state and
// RunStats are identical with and without it (asserted by
// TestObserverDoesNotPerturbDeterminism).
func (rt *Runtime) SetObserver(o *obs.Observer) {
	if rt.started {
		panic("det: SetObserver after Run")
	}
	rt.obs = o
	if o == nil {
		return
	}
	r := o.Registry()
	memFunc := func(f func(mem.Stats) int64) func() int64 {
		return func() int64 { return f(rt.seg.Stats()) }
	}
	r.Func("mem_faults", memFunc(func(s mem.Stats) int64 { return s.Faults }))
	r.Func("mem_versions", memFunc(func(s mem.Stats) int64 { return s.Versions }))
	r.Func("mem_committed_pages", memFunc(func(s mem.Stats) int64 { return s.CommittedPages }))
	r.Func("mem_merged_pages", memFunc(func(s mem.Stats) int64 { return s.MergedPages }))
	r.Func("mem_diff_bytes", memFunc(func(s mem.Stats) int64 { return s.DiffBytes }))
	r.Func("mem_pulled_pages", memFunc(func(s mem.Stats) int64 { return s.PulledPages }))
	r.Func("mem_spec_diff_hits", memFunc(func(s mem.Stats) int64 { return s.SpecDiffHits }))
	r.Func("mem_spec_diff_misses", memFunc(func(s mem.Stats) int64 { return s.SpecDiffMisses }))
	r.Func("mem_prefetch_hits", memFunc(func(s mem.Stats) int64 { return s.PrefetchHits }))
	r.Func("mem_prefetch_misses", memFunc(func(s mem.Stats) int64 { return s.PrefetchMisses }))
	r.Func("mem_prefetch_wasted", memFunc(func(s mem.Stats) int64 { return s.PrefetchWasted }))
	r.Func("mem_commit_serial_ns", rt.commitSerialNS.Load)
	r.Func("mem_gc_runs", memFunc(func(s mem.Stats) int64 { return s.GCRuns }))
	r.Func("mem_gc_reclaimed_pages", memFunc(func(s mem.Stats) int64 { return s.GCReclaimedPages }))
	r.Func("mem_cur_pages", memFunc(func(s mem.Stats) int64 { return s.CurPages }))
	r.Func("mem_peak_pages", memFunc(func(s mem.Stats) int64 { return s.PeakPages }))
	arbFunc := func(f func(clock.Stats) int64) func() int64 {
		return func() int64 { return f(rt.arb.Stats()) }
	}
	r.Func("clock_token_grants", arbFunc(func(s clock.Stats) int64 { return s.Grants }))
	r.Func("clock_departs", arbFunc(func(s clock.Stats) int64 { return s.Departs }))
	r.Func("clock_fast_forwards", arbFunc(func(s clock.Stats) int64 { return s.FastForwards }))
	r.Func("clock_fast_forward_skip", arbFunc(func(s clock.Stats) int64 { return s.FastForwardSkip }))
	if ss := rt.shardSet; ss != nil {
		ssFunc := func(f func(clock.ShardStats) int64) func() int64 {
			return func() int64 { return f(ss.Stats()) }
		}
		r.Func("clock_shard_local_reacquires", ssFunc(func(s clock.ShardStats) int64 { return s.Locals }))
		r.Func("clock_shard_transfers", ssFunc(func(s clock.ShardStats) int64 { return s.Transfers }))
		r.Func("clock_shard_merges", ssFunc(func(s clock.ShardStats) int64 { return s.Merges }))
		for i := 0; i < ss.Shards(); i++ {
			sh := i
			r.Func("clock_shard_grants", func() int64 { return ss.Stats().Grants[sh] }, obs.L("shard", sh))
		}
		if rt.cfg.ShardGrants {
			// Stage-2 virtual-time gauges: per-shard token-held busy time
			// and frontier, plus the cross-shard edges' bucket. The analyzer
			// divides busy by wall for per-shard arbiter utilization and the
			// grant-parallelism metric.
			for i := 0; i < ss.Shards(); i++ {
				sh := i
				r.Func("clock_shard_busy_ns", func() int64 { b, _ := ss.BusyNS(); return b[sh] }, obs.L("shard", sh))
				r.Func("clock_shard_frontier_ns", func() int64 { return ss.FrontierNS(sh) }, obs.L("shard", sh))
			}
			r.Func("clock_global_edge_busy_ns", func() int64 { _, g := ss.BusyNS(); return g })
		}
	}
	aggFunc := func(f func(api.RunStats) int64) func() int64 {
		return func() int64 {
			rt.aggMu.Lock()
			defer rt.aggMu.Unlock()
			return f(rt.agg.RunStats)
		}
	}
	if in := rt.cfg.Chaos; in != nil {
		chFunc := func(f func(chaos.Stats) int64) func() int64 {
			return func() int64 { return f(in.Stats()) }
		}
		r.Func("chaos_charge_jitter_events", chFunc(func(s chaos.Stats) int64 { return s.ChargeJitterEvents }))
		r.Func("chaos_charge_jitter_ns", chFunc(func(s chaos.Stats) int64 { return s.ChargeJitterNS }))
		r.Func("chaos_wake_delays", chFunc(func(s chaos.Stats) int64 { return s.WakeDelays }))
		r.Func("chaos_wake_delay_ns", chFunc(func(s chaos.Stats) int64 { return s.WakeDelayNS }))
		r.Func("chaos_overflow_shrinks", chFunc(func(s chaos.Stats) int64 { return s.OverflowShrinks }))
		r.Func("chaos_mispredict_drops", chFunc(func(s chaos.Stats) int64 { return s.MispredictDrops }))
		r.Func("chaos_barrier_skews", chFunc(func(s chaos.Stats) int64 { return s.BarrierSkews }))
		r.Func("chaos_barrier_skew_ns", chFunc(func(s chaos.Stats) int64 { return s.BarrierSkewNS }))
		r.Func("chaos_fault_delays", chFunc(func(s chaos.Stats) int64 { return s.FaultDelays }))
		r.Func("chaos_fault_delay_ns", chFunc(func(s chaos.Stats) int64 { return s.FaultDelayNS }))
		r.Func("chaos_commit_delays", chFunc(func(s chaos.Stats) int64 { return s.CommitDelays }))
		r.Func("chaos_commit_delay_ns", chFunc(func(s chaos.Stats) int64 { return s.CommitDelayNS }))
	}
	r.Func("det_threads_spawned", aggFunc(func(s api.RunStats) int64 { return s.ThreadsSpawned }))
	r.Func("det_threads_reused", aggFunc(func(s api.RunStats) int64 { return s.ThreadsReused }))
	r.Func("det_local_work_ns", aggFunc(func(s api.RunStats) int64 { return s.LocalWorkNS }))
	r.Func("det_determ_wait_ns", aggFunc(func(s api.RunStats) int64 { return s.DetermWaitNS }))
	r.Func("det_barrier_wait_ns", aggFunc(func(s api.RunStats) int64 { return s.BarrierWaitNS }))
	r.Func("det_commit_ns", aggFunc(func(s api.RunStats) int64 { return s.CommitNS }))
	rt.registerJournalMetrics()
	rt.registerCommitLogMetrics()
}

// SetJournal attaches a run journal; must be called before Run (nil
// detaches). Every sync-trace event and interval checkpoint streams to the
// writer through the trace sink, and both commit sites record each
// published version's page-set with per-page content hashes
// (docs/divergence.md). Journaling never changes results — checksums and
// sync traces are byte-identical with the journal on or off, which
// scripts/check.sh gates. The caller owns the writer and must Close it
// after Run to flush.
func (rt *Runtime) SetJournal(w *journal.Writer) {
	if rt.started {
		panic("det: SetJournal after Run")
	}
	rt.journal = w
	if w == nil {
		rt.rec.SetSink(nil)
		return
	}
	rt.rec.SetSink(w)
	rt.registerJournalMetrics()
}

// registerJournalMetrics exposes journal_* func gauges once both an
// observer and a journal are attached (either attach order works:
// SetObserver and SetJournal both call this).
func (rt *Runtime) registerJournalMetrics() {
	if rt.obs == nil || rt.journal == nil {
		return
	}
	r := rt.obs.Registry()
	jFunc := func(f func(journal.Stats) int64) func() int64 {
		return func() int64 { return f(rt.journal.Stats()) }
	}
	r.Func("journal_events", jFunc(func(s journal.Stats) int64 { return s.Events }))
	r.Func("journal_commits", jFunc(func(s journal.Stats) int64 { return s.Commits }))
	r.Func("journal_checkpoints", jFunc(func(s journal.Stats) int64 { return s.Checkpoints }))
	r.Func("journal_bytes", jFunc(func(s journal.Stats) int64 { return s.Bytes }))
	r.Func("journal_flush_stalls", jFunc(func(s journal.Stats) int64 { return s.FlushStalls }))
}

// SetCommitLog attaches a persistent commit log; must be called before
// Run. The log is bound to the runtime's memory geometry (Begin) and from
// then on both commit sites append each published version's page diffs at
// its sync-order position (the same AtSeq interleave contract the run
// journal uses, so the two artifacts cross-reference record for record).
// With a chaos injector armed, the log's write path is perturbed by the
// injector's logstall stream — real-time-only stalls that exercise
// backpressure without touching results. The caller owns the log and must
// Close it after Run to flush and write the end trailer.
func (rt *Runtime) SetCommitLog(l *commitlog.Log) error {
	if rt.started {
		panic("det: SetCommitLog after Run")
	}
	rt.clog = l
	if l == nil {
		return nil
	}
	if rt.cfg.Chaos != nil {
		cs := rt.cfg.Chaos.LogStream()
		l.SetPerturb(func() int64 { return cs.LogStall() })
	}
	if err := l.Begin(rt.seg.PageSize(), rt.seg.NumPages()); err != nil {
		return err
	}
	rt.registerCommitLogMetrics()
	return nil
}

// registerCommitLogMetrics exposes commitlog_* func gauges once both an
// observer and a commit log are attached (either attach order works:
// SetObserver and SetCommitLog both call this).
func (rt *Runtime) registerCommitLogMetrics() {
	if rt.obs == nil || rt.clog == nil {
		return
	}
	r := rt.obs.Registry()
	cFunc := func(f func(commitlog.Stats) int64) func() int64 {
		return func() int64 { return f(rt.clog.Stats()) }
	}
	r.Func("commitlog_commits", cFunc(func(s commitlog.Stats) int64 { return s.Commits }))
	r.Func("commitlog_snapshots", cFunc(func(s commitlog.Stats) int64 { return s.Snapshots }))
	r.Func("commitlog_segments", cFunc(func(s commitlog.Stats) int64 { return s.Segments }))
	r.Func("commitlog_rolls", cFunc(func(s commitlog.Stats) int64 { return s.Rolls }))
	r.Func("commitlog_truncated", cFunc(func(s commitlog.Stats) int64 { return s.Truncated }))
	r.Func("commitlog_bytes", cFunc(func(s commitlog.Stats) int64 { return s.Bytes }))
	r.Func("commitlog_append_stalls", cFunc(func(s commitlog.Stats) int64 { return s.AppendStalls }))
}

// Observer returns the attached observability layer, or nil.
func (rt *Runtime) Observer() *obs.Observer { return rt.obs }

// Name implements api.Runtime.
func (rt *Runtime) Name() string {
	if rt.cfg.NameOverride != "" {
		return rt.cfg.NameOverride
	}
	return "consequence-" + map[clock.Policy]string{clock.PolicyIC: "ic", clock.PolicyRR: "rr"}[rt.cfg.Policy]
}

// Segment exposes the shared segment (tests and the harness read it).
func (rt *Runtime) Segment() *mem.Segment { return rt.seg }

// Trace exposes the sync-order trace recorder.
func (rt *Runtime) Trace() *trace.Recorder { return rt.rec }

// Run implements api.Runtime: executes root as thread 0 and waits for all
// threads.
func (rt *Runtime) Run(root func(api.T)) error {
	if rt.started {
		panic("det: Runtime is single-use")
	}
	rt.started = true
	t, err := rt.newThread(0, 0)
	if err != nil {
		return err
	}
	rt.nextTid = 1
	// Pre-spawned workers start (and pay their creation cost) on their own
	// timelines before the root thread runs, so a program's first spawns
	// can adopt instead of forking. No token exists yet: the list build is
	// single-threaded and its order (creation order) is deterministic.
	prespawn := rt.cfg.PoolPrespawn
	if prespawn > rt.cfg.PoolCap {
		prespawn = rt.cfg.PoolCap
	}
	for i := 0; i < prespawn; i++ {
		rt.spawnWorker(nil, nil, nil)
	}
	rt.h.Go("t0", nil, func(b host.Binding) {
		t.start(b)
		rt.threadMain(t, root)
	})
	return rt.h.Run()
}

// newThread allocates thread bookkeeping (workspace, arbiter registration).
// Called before the thread's host goroutine starts; for children this runs
// under the parent's token, making tids and registration deterministic.
func (rt *Runtime) newThread(tid int, startClock int64) (*Thread, error) {
	ws, err := rt.seg.Snapshot(tid)
	if err != nil {
		return nil, err
	}
	t := rt.attachThread(tid, startClock, ws)
	return t, nil
}

func (rt *Runtime) attachThread(tid int, startClock int64, ws *mem.Workspace) *Thread {
	t := &Thread{
		rt:       rt,
		tid:      tid,
		ws:       ws,
		icount:   startClock,
		curShard: -1,
		overflow: clock.NewOverflow(rt.cfg.OverflowBase, rt.cfg.AdaptiveOverflow),
	}
	if rt.cfg.ShardGrants {
		// Home shard: where the thread's exit (and any join on it) is
		// arbitrated until a shardable op moves its domain. tid-derived, so
		// a joiner can compute it without racing the running child.
		t.domShard = tid % rt.cfg.Shards
	}
	t.coarse.maxChunk = rt.cfg.MaxChunkInit
	if in := rt.cfg.Chaos; in != nil {
		// Per-thread perturbation streams, keyed (seed, subsystem, tid):
		// each subsystem draws independently, so one consuming more draws
		// never shifts another's sequence. Re-arming a pooled workspace's
		// fault perturb on reuse retargets it to the new tid's stream.
		t.chaosT = in.ThreadStream(tid)
		t.overflow.SetPerturb(in.OverflowStream(tid).OverflowInterval)
		ws.SetFaultPerturb(in.FaultStream(tid).FaultDelay)
	}
	if rt.cfg.WriteSetPrediction {
		// One history table per thread, like the unlock estimators: tables
		// are consulted only from the owning thread and trained only on its
		// own deterministic chunk history, so no cross-thread state exists
		// to perturb. A pooled workspace keeps SetPredict across Rebind;
		// re-arming is idempotent.
		t.pred = predict.New()
		ws.SetPredict(true)
		if in := rt.cfg.Chaos; in != nil {
			// Forced mispredictions: drop predicted pages per the profile.
			// Safe because prediction is advisory by contract.
			t.pred.SetPerturb(in.PredictStream(tid).FilterPrediction)
		}
	}
	if o := rt.obs; o != nil {
		// Per-thread instruments, cached so the hot paths pay one nil
		// check (lane) or one atomic add (counters), never a registry
		// lookup.
		r := o.Registry()
		t.lane = o.Lane(tid)
		tl := obs.L("tid", tid)
		t.mSyncOps = r.Counter("det_sync_ops", tl)
		t.mCoarsenedOps = r.Counter("det_coarsened_ops", tl)
		t.mCommits = r.Counter("det_commits", tl)
		t.hChunk = r.Histogram("det_chunk_instructions", tl)
		t.mLockAcq = make(map[uint64]*obs.Counter)
	}
	rt.mu.Lock()
	rt.threads[tid] = t
	rt.mu.Unlock()
	rt.deliverFrom(nil, rt.arb.Register(tid, startClock))
	return t
}

func (rt *Runtime) threadMain(t *Thread, fn func(api.T)) {
	fn(t)
	t.exit()
}

// lookup returns the thread with the given tid.
func (rt *Runtime) lookup(tid int) *Thread {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	th, ok := rt.threads[tid]
	if !ok {
		panic(&RuntimeError{
			Code: "unknown-tid", Tid: -1, Op: "lookup",
			Detail: fmt.Sprintf("token grant for unknown tid %d", tid),
		})
	}
	return th
}

// deliverFrom wakes the thread granted the token by an arbiter operation.
// waker is the binding performing the wake (nil only during setup, when no
// grant can occur). A host-level double-wake panic — a wake sent to a
// thread that already holds its wake permit, i.e. a corrupted handoff — is
// rewrapped as a structured RuntimeError naming the target's state.
func (rt *Runtime) deliverFrom(waker host.Binding, grant int) {
	if grant == clock.NoGrant {
		return
	}
	target := rt.lookup(grant)
	if waker == nil {
		panic(&RuntimeError{
			Code: "self-grant", Tid: -1, Op: "deliver",
			Detail: "token grant before any thread is running",
		})
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*RuntimeError); ok {
				panic(r)
			}
			panic(&RuntimeError{
				Code:      "double-wake",
				Tid:       target.tid,
				Clock:     target.diagClock.Load(),
				Phase:     diagNames[target.diagPhase.Load()],
				Op:        "wake",
				HeldLocks: rt.heldLocksOf(target.tid),
				Detail:    fmt.Sprintf("waking tid %d which already holds a wake permit: %v", target.tid, r),
			})
		}
	}()
	if rt.cfg.ShardGrants && rt.timed {
		if aw, ok := waker.(host.AnchoredWaker); ok {
			// Anchor the wake at the granted op's scope frontier instead of
			// the waker's own clock: the target's sub-token became free at
			// that instant, so ops granted in different shards resume in
			// overlapping virtual time. The frontier was published before
			// the arbiter produced this grant (releaseTokenRaw), and both
			// reads are token-serialized, so the anchor is deterministic.
			aw.WakeFrom(target.b, rt.shardSet.Frontier(rt.arb.Scope(grant)))
			return
		}
	}
	waker.Wake(target.b)
}

// Checksum implements api.Runtime: FNV-1a over the final committed state.
func (rt *Runtime) Checksum() uint64 {
	h := fnv.New64a()
	buf := make([]byte, rt.seg.PageSize())
	at := rt.seg.Head()
	for pg := 0; pg < rt.seg.NumPages(); pg++ {
		rt.seg.ReadCommitted(buf, pg*rt.seg.PageSize(), at)
		h.Write(buf)
	}
	return h.Sum64()
}

// Stats implements api.Runtime.
func (rt *Runtime) Stats() api.RunStats {
	rt.aggMu.Lock()
	s := rt.agg.RunStats
	rt.aggMu.Unlock()
	ms := rt.seg.Stats()
	s.Faults = ms.Faults
	s.Versions = ms.Versions
	s.CommittedPages = ms.CommittedPages
	s.MergedPages = ms.MergedPages
	s.PulledPages = ms.PulledPages
	s.PeakPages = ms.PeakPages
	s.PrefetchHits = ms.PrefetchHits
	s.PrefetchMisses = ms.PrefetchMisses
	s.PrefetchWasted = ms.PrefetchWasted
	s.TokenGrants = rt.arb.Stats().Grants
	return s
}

// aggregate folds a finished thread's accumulators into the runtime totals.
// Called with the token held (exit is a sync op), so it is serialized, but
// Stats may read concurrently — hence aggMu.
func (rt *Runtime) aggregate(t *Thread) {
	rt.aggMu.Lock()
	defer rt.aggMu.Unlock()
	a := &rt.agg.RunStats
	// Commit, merge and speculative diffing are distinct trace phases but
	// one RunStats category, preserving the seed's Figure 15 breakdown;
	// likewise prefetch is page-population time and folds into Fault, and
	// spawn, handoff and fast-forward are the scheduler refinement of Lib.
	commitNS := t.bd[obs.PhaseCommit] + t.bd[obs.PhaseMerge] + t.bd[obs.PhaseSpecDiff]
	faultNS := t.bd[obs.PhaseFault] + t.bd[obs.PhasePrefetch]
	libNS := t.bd[obs.PhaseLib] + t.bd[obs.PhaseSpawn] + t.bd[obs.PhaseHandoff] + t.bd[obs.PhaseFastForward]
	a.LocalWorkNS += t.bd[obs.PhaseCompute]
	a.DetermWaitNS += t.bd[obs.PhaseTokenWait]
	a.BarrierWaitNS += t.bd[obs.PhaseBarrierWait]
	a.CommitNS += commitNS
	a.FaultNS += faultNS
	a.LibNS += libNS
	a.SyncOps += t.syncOps
	a.CoarsenedOps += t.coarsenedOps
	a.PerThread = append(a.PerThread, api.ThreadTime{
		Tid:         t.tid,
		LocalWork:   t.bd[obs.PhaseCompute],
		DetermWait:  t.bd[obs.PhaseTokenWait],
		BarrierWait: t.bd[obs.PhaseBarrierWait],
		Commit:      commitNS,
		Fault:       faultNS,
		Lib:         libNS,
	})
	if now := t.b.Now(); now > a.WallNS {
		a.WallNS = now
	}
}

// noteSpawn records spawn accounting (token-held).
func (rt *Runtime) noteSpawn(reused bool) {
	rt.aggMu.Lock()
	defer rt.aggMu.Unlock()
	rt.agg.ThreadsSpawned++
	if reused {
		rt.agg.ThreadsReused++
	}
}

var _ api.Runtime = (*Runtime)(nil)
