package det_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
)

// The determinism fuzzer: generate a random multithreaded program from a
// seed — deadlock-free by construction — and assert that its final memory
// and synchronization order are identical across repeated simulator runs
// and schedule-perturbed real-host runs.
//
// Program shape: W workers execute R barrier-separated rounds; inside each
// round every worker runs its own random mix of compute, shared-memory
// reads/writes (racy on purpose), and lock-protected increments over a
// small set of mutexes (one lock held at a time). Optionally a bounded
// producer/consumer exchange runs across the whole program. Barrier rounds
// and queue roles are agreed at generation time, so every blocking
// construct is balanced.

type fuzzOp struct {
	kind  int // 0 compute, 1 write, 2 read, 3 locked increment
	n     int64
	off   int
	mutex int
}

type fuzzProgram struct {
	workers  int
	rounds   int
	mutexes  int
	ops      [][][]fuzzOp // [worker][round][ops]
	useQueue bool
	items    int
}

func genFuzzProgram(seed int64) fuzzProgram {
	rng := rand.New(rand.NewSource(seed))
	p := fuzzProgram{
		workers:  2 + rng.Intn(4),
		rounds:   1 + rng.Intn(3),
		mutexes:  1 + rng.Intn(3),
		useQueue: rng.Intn(2) == 0,
		items:    5 + rng.Intn(20),
	}
	p.ops = make([][][]fuzzOp, p.workers)
	for w := 0; w < p.workers; w++ {
		p.ops[w] = make([][]fuzzOp, p.rounds)
		for r := 0; r < p.rounds; r++ {
			n := rng.Intn(12)
			for i := 0; i < n; i++ {
				op := fuzzOp{kind: rng.Intn(4)}
				switch op.kind {
				case 0:
					op.n = int64(rng.Intn(20_000) + 100)
				case 1, 2:
					op.off = rng.Intn(64 * 1024)
					op.n = int64(rng.Intn(64) + 1)
				case 3:
					op.mutex = rng.Intn(p.mutexes)
					op.off = rng.Intn(16) // slot within the mutex's page
				}
				p.ops[w][r] = append(p.ops[w][r], op)
			}
		}
	}
	return p
}

// build renders the generated program as a root function. Layout: worker
// scratch at 0..64K (racy), mutex-protected counters at 128K (one page per
// mutex), queue at 256K, results at 384K.
func (p fuzzProgram) build() func(api.T) {
	return func(root api.T) {
		var mxs []api.Mutex
		for i := 0; i < p.mutexes; i++ {
			mxs = append(mxs, root.NewMutex())
		}
		bar := root.NewBarrier(p.workers)
		var qm api.Mutex
		var qNotEmpty, qNotFull api.Cond
		if p.useQueue {
			qm = root.NewMutex()
			qNotEmpty = root.NewCond()
			qNotFull = root.NewCond()
		}
		const qBase = 256 * 1024
		qPut := func(t api.T, v uint64) {
			t.Lock(qm)
			for api.U64(t, qBase+8)-api.U64(t, qBase) == 4 {
				t.Wait(qNotFull, qm)
			}
			tail := api.U64(t, qBase+8)
			api.PutU64(t, qBase+24+8*int(tail%4), v)
			api.PutU64(t, qBase+8, tail+1)
			t.Signal(qNotEmpty)
			t.Unlock(qm)
		}
		qGet := func(t api.T) (uint64, bool) {
			t.Lock(qm)
			defer t.Unlock(qm)
			for {
				head, tail := api.U64(t, qBase), api.U64(t, qBase+8)
				if head != tail {
					v := api.U64(t, qBase+24+8*int(head%4))
					api.PutU64(t, qBase, head+1)
					t.Signal(qNotFull)
					return v, true
				}
				if api.U64(t, qBase+16) != 0 {
					return 0, false
				}
				t.Wait(qNotEmpty, qm)
			}
		}

		worker := func(w int) func(api.T) {
			return func(t api.T) {
				buf := make([]byte, 64)
				for r := 0; r < p.rounds; r++ {
					for _, op := range p.ops[w][r] {
						switch op.kind {
						case 0:
							t.Compute(op.n)
						case 1:
							for i := range buf[:op.n] {
								buf[i] = byte(w + r + i)
							}
							t.Write(buf[:op.n], op.off)
						case 2:
							t.Read(buf[:op.n], op.off)
						case 3:
							t.Lock(mxs[op.mutex])
							api.AddU64(t, 128*1024+4096*op.mutex+8*op.off, uint64(w+1))
							t.Unlock(mxs[op.mutex])
						}
					}
					t.BarrierWait(bar)
				}
				// Queue roles: worker 0 produces, the rest consume.
				if p.useQueue {
					if w == 0 {
						for i := 0; i < p.items; i++ {
							qPut(t, uint64(i+1))
						}
						t.Lock(qm)
						api.PutU64(t, qBase+16, 1)
						t.Broadcast(qNotEmpty)
						t.Unlock(qm)
					} else {
						var sum uint64
						for {
							v, ok := qGet(t)
							if !ok {
								break
							}
							sum += v
						}
						api.PutU64(t, 384*1024+8*w, sum)
					}
				}
			}
		}
		var hs []api.Handle
		for w := 1; w < p.workers; w++ {
			hs = append(hs, root.Spawn(worker(w)))
		}
		worker(0)(root)
		for _, h := range hs {
			root.Join(h)
		}
	}
}

// checkDeterministic runs the program everywhere and compares.
func checkDeterministic(t *testing.T, seed int64) {
	t.Helper()
	p := genFuzzProgram(seed)
	prog := p.build()
	type obs struct {
		label string
		sum   uint64
		trace uint64
	}
	var all []obs
	run := func(label string, h host.Host) {
		c := det.Default()
		c.SegmentSize = 1 << 20
		rt, err := det.New(c, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(prog); err != nil {
			t.Fatalf("seed %d %s: %v", seed, label, err)
		}
		all = append(all, obs{label, rt.Checksum(), rt.Trace().Hash()})
	}
	run("sim#1", simhost.New(costmodel.Default()))
	run("sim#2", simhost.New(costmodel.Default()))
	run("real#1", realhost.New(100*time.Microsecond, seed*3+1))
	run("real#2", realhost.New(100*time.Microsecond, seed*7+5))
	for _, o := range all[1:] {
		if o.sum != all[0].sum || o.trace != all[0].trace {
			t.Errorf("seed %d: %s (sum %x trace %x) != %s (sum %x trace %x) — program: %d workers, %d rounds, %d mutexes, queue=%v",
				seed, o.label, o.sum, o.trace, all[0].label, all[0].sum, all[0].trace,
				p.workers, p.rounds, p.mutexes, p.useQueue)
			return
		}
	}
}

// TestFuzzDeterminismSeeds runs a fixed spread of generated programs.
func TestFuzzDeterminismSeeds(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 3
	}
	for seed := int64(0); seed < int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkDeterministic(t, seed)
		})
	}
}

// FuzzDeterminism is the native fuzz target: `go test -fuzz=FuzzDeterminism
// ./internal/det` explores the program space; the seed corpus runs as part
// of the normal test suite.
func FuzzDeterminism(f *testing.F) {
	for _, s := range []int64{1, 42, 12345} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkDeterministic(t, seed)
	})
}
