package det_test

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/simhost"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// TestExpositionDoesNotPerturbDeterminism extends the observer regression
// gate to the live exposition paths: a run with the metrics HTTP endpoint
// serving scrapes and the background sampler snapshotting the registry
// mid-run must still produce exactly the same checksum, sync-order hash,
// and RunStats as an unobserved run. The exposition side only reads atomic
// instruments, so the deterministic schedule cannot see it.
func TestExpositionDoesNotPerturbDeterminism(t *testing.T) {
	plain, _ := runFP(t, false)

	cfg := det.Default()
	cfg.SegmentSize = 1 << 20
	rt, err := det.New(cfg, simhost.New(costmodel.Default()))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	rt.SetObserver(o)

	srv, err := o.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sampler := obs.NewSampler(o.Registry(), time.Millisecond)

	// Scrape concurrently with the run, so exposition demonstrably
	// overlaps execution rather than just bracketing it.
	scrapes := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		var last error
		for {
			select {
			case <-stop:
				scrapes <- last
				return
			default:
			}
			resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
			if err != nil {
				last = err
				continue
			}
			_, last = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
	}()

	if err := rt.Run(obsProg(4, 20)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-scrapes; err != nil {
		t.Fatalf("scraping during the run failed: %v", err)
	}
	sampler.Stop()

	observed := fingerprint{
		checksum:  rt.Checksum(),
		traceHash: rt.Trace().Hash(),
		stats:     rt.Stats(),
	}
	if observed.checksum != plain.checksum {
		t.Errorf("checksum with exposition %x != plain %x", observed.checksum, plain.checksum)
	}
	if observed.traceHash != plain.traceHash {
		t.Errorf("sync-order hash with exposition %x != plain %x", observed.traceHash, plain.traceHash)
	}
	if !reflect.DeepEqual(observed.stats, plain.stats) {
		t.Errorf("RunStats with exposition differ from plain:\n%+v\nvs\n%+v", observed.stats, plain.stats)
	}

	// The final scrape must expose the run's metrics in parseable form.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"# TYPE clock_token_grants gauge", "obs_lane_dropped_total{tid=\"0\"} 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("final /metrics missing %q", want)
		}
	}
}

// TestAnalyzerReconcilesWithRunStats ties the analyzer to the runtime it
// observes: report phase totals must equal the RunStats breakdown, and the
// per-lock attribution must see the obsProg mutex from every worker.
func TestAnalyzerReconcilesWithRunStats(t *testing.T) {
	observed, o := runFP(t, true)
	rep, err := analyze.Analyze(analyze.FromObserver(o, "obsProg"))
	if err != nil {
		t.Fatal(err)
	}
	st := observed.stats
	if rep.WallNS != st.WallNS {
		t.Errorf("report wall %d != RunStats %d", rep.WallNS, st.WallNS)
	}
	total := func(phase string) int64 {
		for _, pt := range rep.PhaseTotals {
			if pt.Phase == phase {
				return pt.TotalNS
			}
		}
		return -1
	}
	if got := total("token-wait"); got != st.DetermWaitNS {
		t.Errorf("token-wait total %d != DetermWaitNS %d", got, st.DetermWaitNS)
	}
	if got := total("commit") + total("merge") + total("spec-diff"); got != st.CommitNS {
		t.Errorf("commit+merge total %d != CommitNS %d", got, st.CommitNS)
	}
	if rep.CriticalPath.TotalNS <= 0 || rep.CriticalPath.TotalNS > rep.WallNS {
		t.Errorf("critical path %d out of (0, wall=%d]", rep.CriticalPath.TotalNS, rep.WallNS)
	}
	// obsProg's workers serialize on one mutex, but its critical sections
	// are so short that the mutex is always free by the time the next
	// thread's Lock obtains the token: every acquisition is uncontended
	// (4 threads x 20 rounds), and all token-wait is deterministic-order
	// wait, none lock contention. This is exactly the distinction the
	// attribution exists to draw — a blocked-on-held-mutex fixture is
	// covered by the golden-trace tests in internal/obs/analyze.
	if len(rep.Locks) != 1 || rep.Locks[0].Acquires != 80 || rep.Locks[0].Blocks != 0 {
		t.Errorf("lock attribution %+v; want 80 uncontended acquires of one mutex", rep.Locks)
	}
	if rep.TokenWait.LockNS != 0 || rep.TokenWait.OrderNS != rep.TokenWait.TotalNS || rep.TokenWait.TotalNS != st.DetermWaitNS {
		t.Errorf("token-wait split %+v; want all %d ns attributed to deterministic order", rep.TokenWait, st.DetermWaitNS)
	}
}
