package det

// Adaptive coarsening (§3.1): fuse several global coordination phases —
// token acquire, commit, release — into one long token-held chunk,
// trading the fixed costs of coordination against serializing other
// threads' sync ops. The runtime estimates the next chunk's length with
// exponentially weighted moving averages (one per lock for lock
// operations, one per thread for unlock operations) and coarsens only
// while the estimated total stays under a per-thread maximum chunk length
// adapted by an MIMD policy (see Thread.mimdAdapt). All inputs are
// deterministic (instruction counts and token order), so coarsening
// decisions are too.

// coarsenKind classifies a sync op's eligibility for continuing a
// coarsened chunk.
type coarsenKind int

const (
	// coarsenNever: operations that terminate coarsening (cond, barrier,
	// spawn, join, exit — per §3.1 rule (b), extended to thread events).
	coarsenNever coarsenKind = iota
	// coarsenLock: a lock acquisition; the next chunk is the critical
	// section, estimated by the lock's own EWMA.
	coarsenLock
	// coarsenUnlock: a lock release; the next chunk runs to the thread's
	// next sync op, estimated by the thread-local EWMA.
	coarsenUnlock
)

type coarsenState struct {
	active      bool
	ops         int
	startIcount int64
	maxChunk    int64
}

// maybeCoarsen decides, at the end of a token-held operation, whether to
// keep holding the token through the next chunk. Returns true to coarsen
// (caller skips commit and release).
func (t *Thread) maybeCoarsen(kind coarsenKind, nextEstimate int64) bool {
	cfg := &t.rt.cfg
	if !cfg.Coarsening || kind == coarsenNever {
		return false
	}
	c := &t.coarse
	if cfg.StaticLevel >= 2 {
		// Static level L: fuse exactly L coordination phases.
		if !c.active {
			c.active = true
			c.ops = 1
			c.startIcount = t.icount
			return true
		}
		c.ops++
		return c.ops < cfg.StaticLevel
	}
	// Adaptive: continue only if (a) the estimated next chunk is small
	// enough that serializing it costs no more than the coordination it
	// saves, and (b) the chunk so far plus the estimate fits the MIMD
	// budget. No history means no estimate — be conservative and end the
	// chunk.
	if nextEstimate < 0 || nextEstimate > cfg.CoarsenChunkThreshold {
		return false
	}
	var soFar int64
	if c.active {
		soFar = t.icount - c.startIcount
	}
	if soFar+nextEstimate > c.maxChunk {
		return false
	}
	if !c.active {
		c.active = true
		c.ops = 1
		c.startIcount = t.icount
	} else {
		c.ops++
	}
	return true
}

// ewma is an exponentially weighted moving average of chunk lengths.
type ewma struct {
	val float64
	set bool
}

// ewmaAlpha weights the newest observation.
const ewmaAlpha = 0.25

func (e *ewma) update(x float64) {
	if !e.set {
		e.val, e.set = x, true
		return
	}
	e.val = ewmaAlpha*x + (1-ewmaAlpha)*e.val
}

// estimate returns the current estimate, or -1 if no history exists.
func (e *ewma) estimate() int64 {
	if !e.set {
		return -1
	}
	return int64(e.val)
}
