package det

import (
	"fmt"

	"repro/internal/api"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/obs"
)

// worker is a reusable host task (goroutine on the real host, proc on the
// simulation host) that runs deterministic threads one after another
// (Config.WorkerPool, docs/scheduler.md). Between threads it parks on the
// runtime's free list; a Spawn adopts it by popping the list, assigning
// next/fn under the token, and waking it. Everything that decides *which*
// worker runs *which* thread happens token-held, so placement — and with
// it every modeled charge — is replay-stable.
//
// Field ownership: b is written once by the worker under rt.mu;
// next/fn/head/warm/warmPulls are written by the adopting thread under
// rt.mu and read by the worker either in its startup section (same mutex
// — the started-gate for adoptions that land before the task starts) or
// after its park, ordered by the wake permit; terminate is written by the
// draining thread and read after a park or in the startup section;
// pooled is only ever touched from the worker's own goroutine (exit runs
// on it).
type worker struct {
	seq int
	b   host.Binding
	// ws is the workspace a pooled worker keeps between threads (nil
	// while running one, and on pre-spawned workers until first pooled).
	ws *mem.Workspace

	next *Thread
	fn   func(api.T)
	// head is the segment version the adopted worker must update its view
	// to before running next — pinned by the spawner under the token, so
	// the child's initial view is byte-identical to a fresh fork's
	// regardless of what commits while the worker wakes.
	head int64
	// warm marks an adoption (vs. a fresh spawn run directly): the worker
	// performs its own view warm-up off the spawner's critical path.
	warm bool
	// warmPulls, when > 0, overrides the modeled pull count for the
	// warm-up charge: a pre-spawned worker's workspace is snapshotted at
	// adoption (its real fork happened at startup with an empty page
	// table), so the stale view it would have pulled is modeled as the
	// segment's populated pages.
	warmPulls int64
	// selfCharge makes the worker pay its own creation cost (pre-spawned
	// workers have no parent to charge; a fresh spawn's fork is charged
	// to the spawner, as before).
	selfCharge bool
	pooled     bool
	terminate  bool
	key        [2]int64
	// parkReason caches the watchdog-exempt block-reason string (parkIdle
	// runs once per adoption; formatting it each time is measurable).
	parkReason string
}

// spawnWorker creates a worker host task. With child == nil this is a
// pre-spawned idle worker: it charges its own creation cost and waits on
// the free list. With a child, the worker runs it immediately (the fresh
// spawn path under WorkerPool; the spawner has already paid the fork
// charge and pre-assigned next before the task starts).
func (rt *Runtime) spawnWorker(child *Thread, fn func(api.T), parent host.Binding) {
	w := &worker{seq: rt.workerSeq, selfCharge: child == nil, next: child, fn: fn}
	rt.workerSeq++
	if child != nil {
		child.worker = w
	} else {
		rt.mu.Lock()
		rt.insertWorkerLocked(w, [2]int64{-1, -int64(w.seq)})
		rt.mu.Unlock()
	}
	rt.h.Go(fmt.Sprintf("w%d", w.seq), parent, func(b host.Binding) {
		rt.runWorker(w, b)
	})
}

// runWorker is a worker's task body: run assigned threads until the run
// drains the pool or the worker's last thread declines to re-pool it.
func (rt *Runtime) runWorker(w *worker, b host.Binding) {
	rt.mu.Lock()
	w.b = b
	term := w.terminate
	// Started-gate: an adoption that happened before this task started
	// (real host, between Go and here) assigned next under rt.mu and saw
	// b == nil, so it sent no wake — this task must skip its initial park
	// or it would sleep forever.
	early := w.next != nil
	rt.mu.Unlock()
	if term {
		return
	}
	m := &rt.cfg.Model
	if w.selfCharge && rt.timed {
		b.Charge(m.ForkBase + int64(rt.seg.PopulatedPages())*m.ForkPerPage)
	}
	if w.selfCharge && !early {
		// A pre-spawned worker parks once before its first thread, even if
		// an adoption assigned next after this task started but before it
		// parked: that adopter saw b set and sent a wake, and skipping the
		// park would leave the permit armed to spuriously release the
		// thread's next real block. (A fresh-spawn worker has next
		// pre-assigned and no wake pending, so it must not park; neither
		// must an early-adopted pre-spawned worker — see above.)
		rt.parkIdle(w, b)
	}
	for {
		if w.terminate {
			return
		}
		t, fn := w.next, w.fn
		w.next, w.fn = nil, nil
		t.start(b)
		if w.warm {
			// Worker-side warm-up, off the spawner's critical path: rebind
			// the still-live mappings to the new tid and pull the view
			// forward to the pinned spawn-time head — the same logical
			// operations the legacy workspace pool performed on the
			// spawner, with identical results, but priced as a live-worker
			// rebind (WorkerWarmup) rather than a cold-pool rebuild
			// (PoolReuse) and placed on the worker's own timeline.
			pulls := int64(t.ws.UpdateTo(w.head))
			if w.warmPulls > 0 {
				pulls, w.warmPulls = w.warmPulls, 0
			}
			if rt.cfg.ShardGrants {
				// Stage 2 accounting: the rebind is scheduling work, but the
				// view pull-forward is the same commit-propagation that a
				// barrier exit charges to the commit phase (sync.go) — split
				// the charge the same way so the phases mean the same thing
				// at every view-advance site.
				t.charge(obs.PhaseSpawn, m.WorkerWarmup)
				if pulls > 0 {
					t.charge(obs.PhaseCommit, pulls*m.UpdatePage)
				}
			} else {
				t.charge(obs.PhaseSpawn, m.WorkerWarmup+pulls*m.UpdatePage)
			}
			w.warm = false
		}
		rt.threadMain(t, fn)
		if !w.pooled {
			return
		}
		w.pooled = false
		rt.parkIdle(w, b)
	}
}

// parkIdle blocks a worker between threads, with an idle-exempt block
// reason so the real host's watchdog does not mistake a parked pool
// worker for a stalled thread (host.IdleReasonPrefix). The reason string
// is built once per worker — a pooled worker parks once per adoption, on
// the run's hottest host path.
func (rt *Runtime) parkIdle(w *worker, b host.Binding) {
	if br, ok := b.(host.BlockReasoner); ok {
		if w.parkReason == "" {
			w.parkReason = fmt.Sprintf("%spooled worker w%d", host.IdleReasonPrefix, w.seq)
		}
		br.SetBlockReason(w.parkReason)
	}
	b.Block()
}

// insertWorkerLocked adds w to the free list in ascending key order.
// Caller holds rt.mu; callers other than pre-spawn hold the token, which
// is what makes the list order — and so each adoption — replay-stable.
// Keys are (exit clock, tid) for exited workers and (-1, -seq) for
// pre-spawned ones, so adoptions prefer the warmest recently-exited
// worker and fall back to cold pre-spawned slots in creation order.
func (rt *Runtime) insertWorkerLocked(w *worker, key [2]int64) {
	w.key = key
	i := len(rt.workers)
	for i > 0 {
		k := rt.workers[i-1].key
		if k[0] < key[0] || (k[0] == key[0] && k[1] <= key[1]) {
			break
		}
		i--
	}
	rt.workers = append(rt.workers, nil)
	copy(rt.workers[i+1:], rt.workers[i:])
	rt.workers[i] = w
}

// popWorker removes and returns the worker for a child about to be spawned
// as tid, or nil. Stage 1 pops the highest-keyed (warmest) worker. Under
// per-shard granting the child's *arbitration* placement is already fixed
// by its tid-derived home shard (exit and join order in that domain, see
// threads.go), so the free-list choice is pure warmth scheduling, and
// stage 2 inverts it: pop the *coldest* worker. In a fork-round, early
// dispatches then absorb the stale workers' warm-up pulls while the
// spawner is still dispatching the rest, so the last-dispatched child —
// the one the join's critical path runs through — adopts the warmest
// worker and starts almost immediately. Both rules read only the
// token-held key order, so placement stays replay-stable.
//
// Even a worker whose task has not yet started (b still unset — possible
// on the real host between Go and the goroutine's first instruction) is
// adoptable: the adopter assigns next under rt.mu (started-gate) and the
// worker's startup, ordered by the same mutex, sees the assignment and
// skips its initial park instead of requiring a wake. Adoption therefore
// never races with startup, and the pop — the token-held placement
// decision — is replay-stable by list position alone.
func (rt *Runtime) popWorker(tid int) *worker {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := len(rt.workers)
	if n == 0 {
		return nil
	}
	i := n - 1
	if rt.cfg.ShardGrants {
		i = 0
	}
	w := rt.workers[i]
	rt.workers = append(rt.workers[:i], rt.workers[i+1:]...)
	return w
}

// drainWorkers terminates every parked worker. Called token-held by the
// run's last exiting thread, so the simulation host's deadlock detection
// never sees an idle worker parked forever, and Run's wait completes.
func (rt *Runtime) drainWorkers(t *Thread) {
	rt.mu.Lock()
	ws := rt.workers
	rt.workers = nil
	var wake []host.Binding
	for _, w := range ws {
		w.terminate = true
		wake = append(wake, w.b) // nil if the task has not started yet
	}
	rt.mu.Unlock()
	for i, w := range ws {
		if w.ws != nil {
			rt.seg.Release(w.ws)
			w.ws = nil
		}
		if wake[i] != nil {
			t.b.Wake(wake[i])
		}
	}
}
