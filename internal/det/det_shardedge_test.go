package det_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host"
	"repro/internal/host/simhost"
	"repro/internal/journal"
	"repro/internal/trace"
)

// Cross-shard edge suite (docs/scheduler.md stage 2): per-shard granting
// hands real authority to the shard grant loops, so every place where
// ordering crosses a shard boundary — fork/join, barrier rendezvous, and
// a lock migrating between threads homed in different shards — exercises
// the merge rule. The suite asserts, per edge kind and per shard count:
//
//  1. one total order: repeated runs yield identical event streams, on
//     the simulation host and the (perturbed) real host;
//  2. byte-identical checksums vs the legacy single-shard runtime;
//  3. byte-identical journals across repeated runs on both hosts.
//
// Only the interleave may differ from legacy (the per-count golden set in
// scripts/check.sh pins those), never the results.

// forkJoinTreeProg builds a two-level spawn tree: the root forks width
// children, each child forks width grandchildren. Child tids land in
// different home shards, so every join is a potential cross-shard edge
// (the exit retargets the joiner to its domain shard).
func forkJoinTreeProg(width int) func(api.T) {
	return func(t api.T) {
		var hs []api.Handle
		for i := 0; i < width; i++ {
			i := i
			hs = append(hs, t.Spawn(func(t api.T) {
				var gs []api.Handle
				for j := 0; j < width; j++ {
					j := j
					gs = append(gs, t.Spawn(func(t api.T) {
						t.Compute(int64(50 * (i + j + 1)))
						api.AddU64(t, 8*(i*width+j), uint64(i*100+j))
					}))
				}
				for _, g := range gs {
					t.Join(g)
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
	}
}

// barrierRoundsProg runs n threads through several barrier rounds with
// tid-skewed compute, the classic global (all-shard) rendezvous edge.
func barrierRoundsProg(n, rounds int) func(api.T) {
	return func(t api.T) {
		b := t.NewBarrier(n)
		var hs []api.Handle
		for i := 0; i < n; i++ {
			i := i
			hs = append(hs, t.Spawn(func(t api.T) {
				for r := 0; r < rounds; r++ {
					t.Compute(int64(100 * (i + 1)))
					api.PutU64(t, 8*i, uint64(r*1000+i))
					t.BarrierWait(b)
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
	}
}

// lockMigrationProg makes n threads cycle through k mutexes in rotated
// order. The mutex objects hash to different arbitration shards, so the
// sub-token for each thread migrates shard-to-shard on every acquisition
// — the lock-migration edge of the merge rule.
func lockMigrationProg(n, k int) func(api.T) {
	return func(t api.T) {
		ms := make([]api.Mutex, k)
		for i := range ms {
			ms[i] = t.NewMutex()
		}
		var hs []api.Handle
		for i := 0; i < n; i++ {
			i := i
			hs = append(hs, t.Spawn(func(t api.T) {
				for j := 0; j < 3*k; j++ {
					m := (i + j) % k
					t.Lock(ms[m])
					api.AddU64(t, 8*m, 1)
					t.Unlock(ms[m])
					t.Compute(int64(80 * (m + 1)))
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
	}
}

// shardEdgeHosts is allHosts without the unperturbed real host: the
// perturbed one subsumes it for schedule-independence claims, and the
// suite is large (edges x shard counts x repeats).
func shardEdgeHosts() []hostMaker {
	all := allHosts()
	return []hostMaker{all[0], all[2]}
}

// TestCrossShardEdges is the table-driven suite over edge kinds and shard
// counts.
func TestCrossShardEdges(t *testing.T) {
	edges := []struct {
		name string
		prog func(api.T)
	}{
		{"forkjoin", forkJoinTreeProg(3)},
		{"barrier", barrierRoundsProg(4, 3)},
		{"lockmigration", lockMigrationProg(4, 5)},
	}
	for _, edge := range edges {
		t.Run(edge.name, func(t *testing.T) {
			sumLegacy, _, _ := run(t, cfg(), simhost.New(costmodel.Default()), edge.prog)
			for _, shards := range []int{2, 3, 4, 8} {
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					for _, hm := range shardEdgeHosts() {
						t.Run(hm.name, func(t *testing.T) {
							sumA, recA, _ := run(t, scaleOutCfg(shards, 4), hm.mk(), edge.prog)
							if sumA != sumLegacy {
								t.Errorf("checksum %x != legacy %x", sumA, sumLegacy)
							}
							// One total order: a repeat reproduces the
							// event stream exactly, not just the hash.
							sumB, recB, _ := run(t, scaleOutCfg(shards, 4), hm.mk(), edge.prog)
							if sumB != sumA {
								t.Errorf("repeat checksum %x != %x", sumB, sumA)
							}
							if d := trace.Diff(recA, recB); d != "" {
								t.Errorf("repeat trace diverged: %s", d)
							}
						})
					}
				})
			}
		})
	}
}

// journaledShardRun executes prog at the given shard count with a journal
// attached and returns the journal bytes.
func journaledShardRun(t *testing.T, shards int, h host.Host, path string, prog func(api.T)) []byte {
	t.Helper()
	w, err := journal.Create(path, map[string]string{"suite": "shardedge"})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := det.New(scaleOutCfg(shards, 4), h)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetJournal(w)
	if err := rt.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCrossShardJournalsByteIdentical: with per-shard granting on, two
// identical runs must write byte-identical journals (v2 format: shard
// provenance + per-shard hash chains), and the sim and real hosts must
// agree with each other too — the journal encodes only deterministic
// state.
func TestCrossShardJournalsByteIdentical(t *testing.T) {
	prog := forkJoinTreeProg(3)
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			var first []byte
			for rep := 0; rep < 2; rep++ {
				for _, hm := range shardEdgeHosts() {
					p := filepath.Join(dir, fmt.Sprintf("%s-%d.csqj", hm.name, rep))
					b := journaledShardRun(t, shards, hm.mk(), p, prog)
					if first == nil {
						first = b
						continue
					}
					if !bytes.Equal(b, first) {
						t.Fatalf("journal %s rep %d differs from the first run (%d vs %d bytes)",
							hm.name, rep, len(b), len(first))
					}
				}
			}
		})
	}
}
