package det_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/clock"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
	"repro/internal/trace"
)

func cfg() det.Config {
	c := det.Default()
	c.SegmentSize = 1 << 20
	return c
}

type hostMaker struct {
	name string
	mk   func() host.Host
}

func allHosts() []hostMaker {
	return []hostMaker{
		{"sim", func() host.Host { return simhost.New(costmodel.Default()) }},
		{"real", func() host.Host { return realhost.New(0, 0) }},
		{"real-perturbed", func() host.Host { return realhost.New(300*time.Microsecond, 42) }},
	}
}

// run executes prog on a fresh runtime and returns (checksum, trace).
func run(t *testing.T, c det.Config, h host.Host, prog func(api.T)) (uint64, *trace.Recorder, *det.Runtime) {
	t.Helper()
	rt, err := det.New(c, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	return rt.Checksum(), rt.Trace(), rt
}

// counterProg: n threads increment a shared counter k times each under a
// mutex. Deterministic and race-free.
func counterProg(n, k int) func(api.T) {
	return func(t api.T) {
		m := t.NewMutex()
		var hs []api.Handle
		for i := 0; i < n; i++ {
			hs = append(hs, t.Spawn(func(t api.T) {
				for j := 0; j < k; j++ {
					t.Compute(500)
					t.Lock(m)
					api.AddU64(t, 0, 1)
					t.Unlock(m)
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
	}
}

func TestMutexCounterAllHosts(t *testing.T) {
	const n, k = 4, 25
	for _, hm := range allHosts() {
		t.Run(hm.name, func(t *testing.T) {
			_, _, rt := run(t, cfg(), hm.mk(), counterProg(n, k))
			var b [8]byte
			rt.Segment().ReadCommitted(b[:], 0, rt.Segment().Head())
			got := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
			if got != n*k {
				t.Fatalf("counter = %d, want %d", got, n*k)
			}
		})
	}
}

// racyProg: threads write overlapping bytes without locks. Nondeterministic
// under pthreads; must be schedule-independent here.
func racyProg(n int) func(api.T) {
	return func(t api.T) {
		var hs []api.Handle
		for i := 0; i < n; i++ {
			i := i
			hs = append(hs, t.Spawn(func(t api.T) {
				for j := 0; j < 30; j++ {
					t.Compute(int64(100 * (i + 1)))
					// All threads fight over the same word, racily.
					api.PutU64(t, 0, uint64(i*1000+j))
					// And each writes its own slot.
					api.PutU64(t, 8+8*i, api.U64(t, 0))
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
	}
}

func TestDeterminismAcrossRunsAndHosts(t *testing.T) {
	progs := map[string]func(api.T){
		"counter": counterProg(4, 20),
		"racy":    racyProg(4),
	}
	for pname, prog := range progs {
		t.Run(pname, func(t *testing.T) {
			type result struct {
				name  string
				sum   uint64
				thash uint64
				rec   *trace.Recorder
			}
			var results []result
			for _, hm := range allHosts() {
				for rep := 0; rep < 2; rep++ {
					sum, rec, _ := run(t, cfg(), hm.mk(), prog)
					results = append(results, result{
						name:  fmt.Sprintf("%s#%d", hm.name, rep),
						sum:   sum,
						thash: rec.Hash(),
						rec:   rec,
					})
				}
			}
			base := results[0]
			for _, r := range results[1:] {
				if r.sum != base.sum {
					t.Errorf("%s: memory checksum %x != %s's %x", r.name, r.sum, base.name, base.sum)
				}
				if r.thash != base.thash {
					t.Errorf("%s: trace hash differs from %s\n%s", r.name, base.name, trace.Diff(base.rec, r.rec))
				}
			}
		})
	}
}

func TestRRPolicyDeterministic(t *testing.T) {
	c := cfg()
	c.Policy = clock.PolicyRR
	c.Coarsening = false
	sum1, rec1, _ := run(t, c, simhost.New(costmodel.Default()), counterProg(3, 10))
	sum2, rec2, _ := run(t, c, realhost.New(200*time.Microsecond, 7), counterProg(3, 10))
	if sum1 != sum2 {
		t.Errorf("checksums differ: %x vs %x", sum1, sum2)
	}
	if rec1.Hash() != rec2.Hash() {
		t.Errorf("RR traces differ:\n%s", trace.Diff(rec1, rec2))
	}
}

func TestCondVarPipeline(t *testing.T) {
	// Bounded queue of capacity 4 between one producer and two consumers,
	// built from a mutex and two cond vars. Offsets: 0=head, 8=tail,
	// 16=closed flag, 24..: ring of 4 items; 64: consumed-sum slot per
	// consumer.
	const items = 40
	prog := func(t api.T) {
		m := t.NewMutex()
		notEmpty := t.NewCond()
		notFull := t.NewCond()
		consumer := func(slot int) func(api.T) {
			return func(t api.T) {
				sum := uint64(0)
				for {
					t.Lock(m)
					for api.U64(t, 0) == api.U64(t, 8) && api.U64(t, 16) == 0 {
						t.Wait(notEmpty, m)
					}
					if api.U64(t, 0) == api.U64(t, 8) { // closed and drained
						t.Unlock(m)
						break
					}
					head := api.U64(t, 0)
					v := api.U64(t, 24+8*int(head%4))
					api.PutU64(t, 0, head+1)
					t.Signal(notFull)
					t.Unlock(m)
					t.Compute(2000) // "process" the item
					sum += v
				}
				api.PutU64(t, 64+8*slot, sum)
			}
		}
		c1 := t.Spawn(consumer(0))
		c2 := t.Spawn(consumer(1))
		for i := 1; i <= items; i++ {
			t.Lock(m)
			for api.U64(t, 8)-api.U64(t, 0) == 4 {
				t.Wait(notFull, m)
			}
			tail := api.U64(t, 8)
			api.PutU64(t, 24+8*int(tail%4), uint64(i))
			api.PutU64(t, 8, tail+1)
			t.Signal(notEmpty)
			t.Unlock(m)
		}
		t.Lock(m)
		api.PutU64(t, 16, 1)
		t.Broadcast(notEmpty)
		t.Unlock(m)
		t.Join(c1)
		t.Join(c2)
		// Fold the two consumer sums.
		api.PutU64(t, 128, api.U64(t, 64)+api.U64(t, 72))
	}
	want := uint64(items * (items + 1) / 2)
	for _, hm := range allHosts() {
		t.Run(hm.name, func(t *testing.T) {
			_, _, rt := run(t, cfg(), hm.mk(), prog)
			var b [8]byte
			rt.Segment().ReadCommitted(b[:], 128, rt.Segment().Head())
			got := leU64(b[:])
			if got != want {
				t.Fatalf("consumed sum = %d, want %d", got, want)
			}
		})
	}
	// Determinism of the split between the two consumers.
	s1, r1, _ := run(t, cfg(), simhost.New(costmodel.Default()), prog)
	s2, r2, _ := run(t, cfg(), realhost.New(250*time.Microsecond, 3), prog)
	if s1 != s2 || r1.Hash() != r2.Hash() {
		t.Errorf("pipeline split nondeterministic:\n%s", trace.Diff(r1, r2))
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestBarrierPhases(t *testing.T) {
	// Classic two-phase stencil: in each iteration every thread writes its
	// slot, barrier, then reads neighbours' slots from the *previous*
	// phase. Any barrier bug shows up as a stale or future value.
	const n, iters = 4, 6
	prog := func(t api.T) {
		bar := t.NewBarrier(n)
		worker := func(id int) func(api.T) {
			return func(t api.T) {
				for it := 1; it <= iters; it++ {
					api.PutU64(t, 8*id, uint64(it*100+id))
					t.BarrierWait(bar)
					left := api.U64(t, 8*((id+n-1)%n))
					right := api.U64(t, 8*((id+1)%n))
					wantL := uint64(it*100 + (id+n-1)%n)
					wantR := uint64(it*100 + (id+1)%n)
					if left != wantL || right != wantR {
						panic(fmt.Sprintf("thread %d iter %d: saw %d,%d want %d,%d",
							id, it, left, right, wantL, wantR))
					}
					t.Compute(int64(500 * (id + 1)))
					t.BarrierWait(bar)
				}
			}
		}
		var hs []api.Handle
		for i := 1; i < n; i++ {
			hs = append(hs, t.Spawn(worker(i)))
		}
		worker(0)(t)
		for _, h := range hs {
			t.Join(h)
		}
	}
	for _, hm := range allHosts() {
		t.Run(hm.name, func(t *testing.T) {
			run(t, cfg(), hm.mk(), prog)
		})
	}
	// Serial barrier variant must agree bit-for-bit on memory.
	cSerial := cfg()
	cSerial.ParallelBarrier = false
	sum1, _, _ := run(t, cfg(), simhost.New(costmodel.Default()), prog)
	sum2, _, _ := run(t, cSerial, simhost.New(costmodel.Default()), prog)
	if sum1 != sum2 {
		t.Error("parallel and serial barriers disagree on final memory")
	}
}

func TestThreadPoolReuse(t *testing.T) {
	// Fork-join per iteration, kmeans style: with the pool on, later spawns
	// reuse workspaces.
	prog := func(t api.T) {
		for it := 0; it < 5; it++ {
			var hs []api.Handle
			for i := 0; i < 3; i++ {
				i := i
				hs = append(hs, t.Spawn(func(t api.T) {
					api.AddU64(t, 8*i, 1)
				}))
			}
			for _, h := range hs {
				t.Join(h)
			}
		}
	}
	c := cfg()
	_, _, rt := run(t, c, simhost.New(costmodel.Default()), prog)
	st := rt.Stats()
	if st.ThreadsSpawned != 15 {
		t.Fatalf("spawned %d, want 15", st.ThreadsSpawned)
	}
	if st.ThreadsReused < 10 {
		t.Errorf("reused %d, want >= 10 (pool should serve later iterations)", st.ThreadsReused)
	}
	cNoPool := cfg()
	cNoPool.ThreadPool = false
	_, _, rt2 := run(t, cNoPool, simhost.New(costmodel.Default()), prog)
	if rt2.Stats().ThreadsReused != 0 {
		t.Error("pool disabled but threads reused")
	}
	if rt.Checksum() != rt2.Checksum() {
		t.Error("thread pool changed program results")
	}
}

func TestCoarseningPreservesResults(t *testing.T) {
	prog := counterProg(4, 30)
	var sums []uint64
	var recs []*trace.Recorder
	for _, variant := range []struct {
		name string
		mod  func(*det.Config)
	}{
		{"off", func(c *det.Config) { c.Coarsening = false }},
		{"adaptive", func(c *det.Config) {}},
		{"static4", func(c *det.Config) { c.StaticLevel = 4 }},
	} {
		c := cfg()
		variant.mod(&c)
		sum, rec, _ := run(t, c, simhost.New(costmodel.Default()), prog)
		sums = append(sums, sum)
		recs = append(recs, rec)
	}
	if sums[0] != sums[1] || sums[0] != sums[2] {
		t.Errorf("coarsening changed memory results: %x %x %x", sums[0], sums[1], sums[2])
	}
	_ = recs // traces legitimately differ (commit placement), memory must not
}

func TestCoarseningActuallyCoarsens(t *testing.T) {
	// High-rate fine-grained locking: adaptive coarsening should absorb a
	// meaningful share of sync ops.
	prog := func(t api.T) {
		m := t.NewMutex()
		h := t.Spawn(func(t api.T) {
			for j := 0; j < 200; j++ {
				t.Lock(m)
				t.Compute(50)
				api.AddU64(t, 0, 1)
				t.Unlock(m)
				t.Compute(50)
			}
		})
		for j := 0; j < 10; j++ {
			t.Compute(20_000)
			t.Lock(m)
			api.AddU64(t, 8, 1)
			t.Unlock(m)
		}
		t.Join(h)
	}
	_, _, rt := run(t, cfg(), simhost.New(costmodel.Default()), prog)
	st := rt.Stats()
	if st.CoarsenedOps == 0 {
		t.Errorf("no ops coarsened (syncOps=%d)", st.SyncOps)
	}
}

func TestAdHocSpinNeedsChunkLimit(t *testing.T) {
	// T1 sets a flag; T0 spins on it (§2.7). Without a chunk limit the
	// spinner's chunk never ends, so it never refreshes its view and spins
	// on a stale flag forever (we bound the loop to observe the staleness
	// rather than livelock). With a chunk limit, the forced periodic
	// commit+update lets the flag value through.
	mkProg := func(saw *bool) func(api.T) {
		return func(t api.T) {
			h := t.Spawn(func(t api.T) {
				t.Compute(10_000)
				api.PutU64(t, 0, 1)
				// The write publishes at this thread's exit commit.
			})
			for i := 0; i < 3000; i++ {
				if api.U64(t, 0) != 0 {
					*saw = true
					break
				}
				t.Compute(100)
			}
			t.Join(h)
		}
	}
	var sawNoLimit, sawLimit bool
	cNoLimit := cfg()
	rt1, _ := det.New(cNoLimit, simhost.New(costmodel.Default()))
	if err := rt1.Run(mkProg(&sawNoLimit)); err != nil {
		t.Fatalf("no-limit run: %v", err)
	}
	if sawNoLimit {
		t.Error("spinner saw the flag without any chunk-ending event")
	}
	cLimit := cfg()
	cLimit.ChunkLimit = 50_000
	rt2, _ := det.New(cLimit, simhost.New(costmodel.Default()))
	if err := rt2.Run(mkProg(&sawLimit)); err != nil {
		t.Fatalf("limit run: %v", err)
	}
	if !sawLimit {
		t.Error("chunk limit did not break the ad-hoc spin")
	}
}

func TestStoreBufferingTSOSemantics(t *testing.T) {
	// A thread always reads its own writes immediately; remote writes
	// appear only after a synchronization point.
	prog := func(t api.T) {
		m := t.NewMutex()
		api.PutU64(t, 0, 7)
		if got := api.U64(t, 0); got != 7 {
			panic("read-own-write failed")
		}
		h := t.Spawn(func(t api.T) {
			// Spawn edge: child must see parent's pre-spawn write.
			if got := api.U64(t, 0); got != 7 {
				panic(fmt.Sprintf("spawn edge missing: %d", got))
			}
			t.Lock(m)
			api.PutU64(t, 8, 77)
			t.Unlock(m)
		})
		t.Join(h)
		// Join edge: parent sees child's committed write.
		if got := api.U64(t, 8); got != 77 {
			panic(fmt.Sprintf("join edge missing: %d", got))
		}
	}
	for _, hm := range allHosts() {
		t.Run(hm.name, func(t *testing.T) {
			run(t, cfg(), hm.mk(), prog)
		})
	}
}

func TestBreakdownAccountingSane(t *testing.T) {
	_, _, rt := run(t, cfg(), simhost.New(costmodel.Default()), counterProg(4, 20))
	st := rt.Stats()
	total := st.LocalWorkNS + st.DetermWaitNS + st.BarrierWaitNS + st.CommitNS + st.FaultNS + st.LibNS
	if total <= 0 {
		t.Fatalf("empty breakdown: %+v", st)
	}
	if st.WallNS <= 0 || st.WallNS > total {
		t.Errorf("wall %d vs summed thread time %d inconsistent", st.WallNS, total)
	}
	if st.Versions == 0 || st.CommittedPages == 0 {
		t.Errorf("no commits recorded: %+v", st)
	}
	if st.SyncOps == 0 || st.TokenGrants == 0 {
		t.Errorf("no sync activity recorded: %+v", st)
	}
}

func TestManyThreadsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	// 16 threads, mixed locks and barrier, on sim and perturbed real.
	prog := func(t api.T) {
		const n = 16
		m := t.NewMutex()
		bar := t.NewBarrier(n)
		worker := func(id int) func(api.T) {
			return func(t api.T) {
				for it := 0; it < 8; it++ {
					t.Compute(int64(1000 * (id%4 + 1)))
					t.Lock(m)
					api.AddU64(t, 0, uint64(id+1))
					t.Unlock(m)
					t.BarrierWait(bar)
				}
			}
		}
		var hs []api.Handle
		for i := 1; i < n; i++ {
			hs = append(hs, t.Spawn(worker(i)))
		}
		worker(0)(t)
		for _, h := range hs {
			t.Join(h)
		}
	}
	s1, r1, _ := run(t, cfg(), simhost.New(costmodel.Default()), prog)
	s2, r2, _ := run(t, cfg(), realhost.New(150*time.Microsecond, 99), prog)
	if s1 != s2 {
		t.Errorf("stress checksums differ")
	}
	if r1.Hash() != r2.Hash() {
		t.Errorf("stress traces differ:\n%s", trace.Diff(r1, r2))
	}
}
