package det_test

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
	"repro/internal/trace"
)

// scaleOutCfg is cfg() with the scheduler scale-out trio enabled
// (docs/scheduler.md): sharded arbitration, the worker pool pre-spawned to
// threads, and lazy fast-forward.
func scaleOutCfg(shards, threads int) det.Config {
	c := cfg()
	c.EnableScaleOut(shards, threads)
	return c
}

// The scale-out trio must not change a single observable: same memory
// checksum, same synchronization trace (order AND clocks), on every host.
// Only wall time may move.
func TestScaleOutMatchesLegacy(t *testing.T) {
	progs := map[string]func(api.T){
		"counter": counterProg(4, 20),
		"racy":    racyProg(4),
	}
	for pname, prog := range progs {
		t.Run(pname, func(t *testing.T) {
			for _, hm := range allHosts() {
				t.Run(hm.name, func(t *testing.T) {
					sum0, rec0, _ := run(t, cfg(), hm.mk(), prog)
					sum1, rec1, rt1 := run(t, scaleOutCfg(4, 4), hm.mk(), prog)
					if sum1 != sum0 {
						t.Errorf("scale-out checksum %x != legacy %x", sum1, sum0)
					}
					if h0, h1 := rec0.Hash(), rec1.Hash(); h1 != h0 {
						t.Errorf("scale-out trace hash %x != legacy %x\n%s",
							h1, h0, trace.Diff(rec0, rec1))
					}
					// Adoption is guaranteed on every host: the started-gate
					// lets popWorker hand out even a pre-spawned worker whose
					// goroutine has not reached its first park (the adopter
					// assigns next under rt.mu and skips the wake; the
					// worker's startup sees the assignment and skips the
					// park), so with the pool pre-spawned to the thread count
					// no spawn ever falls back to a fresh fork.
					if reused := rt1.Stats().ThreadsReused; reused == 0 {
						t.Error("worker pool never engaged: ThreadsReused = 0")
					}
				})
			}
		})
	}
}

// Checksum and trace must be invariant across the whole shard matrix — the
// in-process version of the scripts/check.sh golden gate.
func TestShardMatrixDeterminism(t *testing.T) {
	prog := counterProg(4, 20)
	sum0, rec0, _ := run(t, cfg(), simhost.New(costmodel.Default()), prog)
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sum, rec, _ := run(t, scaleOutCfg(shards, 4), simhost.New(costmodel.Default()), prog)
			if sum != sum0 {
				t.Errorf("checksum %x != shards=1 %x", sum, sum0)
			}
			if rec.Hash() != rec0.Hash() {
				t.Errorf("trace hash %x != shards=1 %x\n%s",
					rec.Hash(), rec0.Hash(), trace.Diff(rec0, rec))
			}
		})
	}
}

// EnableScaleOut below 2 shards is a no-op by contract: the config stays
// the legacy one, and a run reproduces the legacy time model bit for bit —
// not just the checksum but every RunStats field, including WallNS.
func TestShardsOneIsLegacyTimeModel(t *testing.T) {
	c := cfg()
	c.EnableScaleOut(1, 8)
	if !reflect.DeepEqual(c, cfg()) {
		t.Fatalf("EnableScaleOut(1, 8) changed the config:\n got %+v\nwant %+v", c, cfg())
	}
	prog := counterProg(4, 20)
	_, _, rt0 := run(t, cfg(), simhost.New(costmodel.Default()), prog)
	_, _, rt1 := run(t, c, simhost.New(costmodel.Default()), prog)
	s0, s1 := rt0.Stats(), rt1.Stats()
	if !reflect.DeepEqual(s0, s1) {
		t.Errorf("RunStats diverged at Shards=1:\n got %+v\nwant %+v", s1, s0)
	}
}

// Pre-spawned workers that never get adopted must be drained when the run
// ends: on the simulation host a leaked parked worker is a deadlock error
// from Run, so a nil error is the drain proof.
func TestPrespawnedWorkersDrain(t *testing.T) {
	c := scaleOutCfg(4, 8) // 8 parked workers, program spawns only 2
	sum0, _, _ := run(t, cfg(), simhost.New(costmodel.Default()), counterProg(2, 10))
	sum1, _, _ := run(t, c, simhost.New(costmodel.Default()), counterProg(2, 10))
	if sum1 != sum0 {
		t.Errorf("checksum %x != legacy %x", sum1, sum0)
	}
}

// Started-gate regression (ISSUE 7): on the real host, spawns race the
// pre-spawned workers' goroutine startup — before the gate, popWorker
// skipped workers whose binding was unset and the spawn fell back to a
// fresh fork. With the gate, every spawn must adopt a pooled worker when
// the pool was pre-spawned to cover them, no matter how early the spawns
// happen, and results must match the legacy runtime byte for byte.
func TestStartedGateRecoversPrespawnedWorkers(t *testing.T) {
	prog := counterProg(4, 5) // root spawns immediately: maximal startup race
	sum0, rec0, _ := run(t, cfg(), realhost.New(0, 0), prog)
	for i := 0; i < 20; i++ { // the race is wall-clock timing: many attempts
		sum1, rec1, rt1 := run(t, scaleOutCfg(2, 4), realhost.New(0, 0), prog)
		if sum1 != sum0 {
			t.Fatalf("attempt %d: checksum %x != legacy %x", i, sum1, sum0)
		}
		if rec1.Hash() != rec0.Hash() {
			t.Fatalf("attempt %d: trace hash %x != legacy %x\n%s",
				i, rec1.Hash(), rec0.Hash(), trace.Diff(rec0, rec1))
		}
		st := rt1.Stats()
		if st.ThreadsReused != st.ThreadsSpawned {
			t.Fatalf("attempt %d: %d of %d spawns adopted a pooled worker; the started-gate must recover them all",
				i, st.ThreadsReused, st.ThreadsSpawned)
		}
	}
}

// On the real host, parked pool workers declare their blocks idle
// (host.IdleReasonPrefix), so an armed stall watchdog must stay quiet
// through a pooled run even though workers sit blocked between threads.
func TestWorkerPoolQuietUnderWatchdog(t *testing.T) {
	h := realhost.New(0, 0)
	var fires atomic.Int32
	h.SetWatchdog(5*time.Second, func(string) { fires.Add(1) })
	sum0, _, _ := run(t, cfg(), realhost.New(0, 0), counterProg(4, 20))
	sum1, _, _ := run(t, scaleOutCfg(4, 4), h, counterProg(4, 20))
	if sum1 != sum0 {
		t.Errorf("checksum %x != legacy %x", sum1, sum0)
	}
	if n := fires.Load(); n != 0 {
		t.Errorf("watchdog fired %d times during a pooled run", n)
	}
}

// benchRT builds a fresh sim-hosted runtime for the scheduler benchmarks.
func benchRT(b *testing.B, c det.Config) *det.Runtime {
	b.Helper()
	c.SegmentSize = 1 << 20
	rt, err := det.New(c, simhost.New(costmodel.Default()))
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkTokenHandoff measures the host-level cost of the token
// ping-pong: two threads alternating lock/unlock on one mutex, the
// worst case for the arbitration path. Reported per sync op.
func BenchmarkTokenHandoff(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := det.Default()
			c.EnableScaleOut(shards, 2)
			rt := benchRT(b, c)
			b.ResetTimer()
			err := rt.Run(func(t api.T) {
				m := t.NewMutex()
				h := t.Spawn(func(t api.T) {
					for i := 0; i < b.N; i++ {
						t.Lock(m)
						t.Unlock(m)
					}
				})
				for i := 0; i < b.N; i++ {
					t.Lock(m)
					t.Unlock(m)
				}
				t.Join(h)
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkForkJoin measures thread lifecycle cost: spawn a trivial child
// and join it, once per iteration — the path the worker pool exists to
// shorten. A few untimed warm-up iterations run before the clock starts,
// so the pooled side measures steady-state adoption (worker parked, view
// warm) rather than the cold first-adoption rebuild, mirroring how the
// pool is hit in a real run after start-up.
func BenchmarkForkJoin(b *testing.B) {
	for _, mode := range []struct {
		name   string
		shards int
	}{{"legacy", 1}, {"pooled", 4}} {
		b.Run(mode.name, func(b *testing.B) {
			c := det.Default()
			c.EnableScaleOut(mode.shards, 2)
			rt := benchRT(b, c)
			err := rt.Run(func(t api.T) {
				for i := 0; i < 8; i++ {
					t.Join(t.Spawn(func(t api.T) { t.Compute(100) }))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h := t.Spawn(func(t api.T) { t.Compute(100) })
					t.Join(h)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkGrantParallel measures host-level arbitration throughput under
// per-shard granting: 4 threads ping-ponging on 4 disjoint mutexes (two
// threads per mutex), so at shards >= 4 every grant is shard-local and
// the shard count sweep exposes how much of the serial arbiter the merge
// rule actually removed. Reported per sync op.
func BenchmarkGrantParallel(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := det.Default()
			c.EnableScaleOut(shards, 8)
			rt := benchRT(b, c)
			err := rt.Run(func(t api.T) {
				ms := make([]api.Mutex, 4)
				for i := range ms {
					ms[i] = t.NewMutex()
				}
				pair := func(m api.Mutex, n int) func(api.T) {
					return func(t api.T) {
						for i := 0; i < n; i++ {
							t.Lock(m)
							t.Unlock(m)
						}
					}
				}
				// Warm the pool and the arbitration state before timing.
				for _, m := range ms {
					t.Join(t.Spawn(pair(m, 16)))
				}
				b.ResetTimer()
				hs := make([]api.Handle, 0, 8)
				for _, m := range ms {
					hs = append(hs, t.Spawn(pair(m, b.N)), t.Spawn(pair(m, b.N)))
				}
				for _, h := range hs {
					t.Join(h)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
