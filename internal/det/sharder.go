package det

// Sharder maps sync-object ids to arbitration shards for sharded token
// arbitration (Config.Shards, docs/scheduler.md). Implementations must be
// pure functions: Shard must return the same value in [0, shards) for the
// same inputs on every call, or replay determinism is lost. The runtime
// consults it only for shardable operations (mutex lock/unlock, condition
// wait/signal/broadcast); barriers, forks, joins and exits are cross-shard
// edges and never reach the Sharder.
type Sharder interface {
	// Shard returns obj's shard index in [0, shards).
	Shard(obj uint64, shards int) int
}

// FNVSharder is the default Sharder: fnv32a over the object id's eight
// little-endian bytes, modulo the shard count. FNV spreads the runtime's
// densely-allocated object ids (tid-and-sequence composites) evenly across
// shards, where a bare modulo would alias objects allocated by the same
// thread into the same shard.
type FNVSharder struct{}

// Shard implements Sharder.
func (FNVSharder) Shard(obj uint64, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < 8; i++ {
		h ^= uint32(obj >> (8 * i) & 0xff)
		h *= prime32
	}
	return int(h % uint32(shards))
}
