package det_test

import (
	"testing"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/host/simhost"
)

// stencilProg is an iterative barrier program where every thread re-writes
// its own pages each round — the access pattern write-set prediction is
// built for. Each thread's slab spans two pages so prefetch must cover
// multi-page sets.
func stencilProg(n, iters int) func(api.T) {
	return func(t api.T) {
		const slab = 2 * 4096
		bar := t.NewBarrier(n)
		worker := func(id int) func(api.T) {
			return func(t api.T) {
				base := id * slab
				for it := 1; it <= iters; it++ {
					api.PutU64(t, base, uint64(it*1000+id))
					api.PutU64(t, base+4096, uint64(it*2000+id))
					t.Compute(2000)
					t.BarrierWait(bar)
				}
			}
		}
		var hs []api.Handle
		for i := 1; i < n; i++ {
			hs = append(hs, t.Spawn(worker(i)))
		}
		worker(0)(t)
		for _, h := range hs {
			t.Join(h)
		}
	}
}

// TestPredictionPreservesResults is the subsystem's core contract: write-set
// prediction is a pure overlap optimization, so checksums and sync-order
// traces are byte-identical with it on or off — on every host, for both the
// lock-keyed and the barrier-keyed prefetch paths.
func TestPredictionPreservesResults(t *testing.T) {
	progs := map[string]func(api.T){
		"locks":    counterProg(4, 20),
		"barriers": stencilProg(4, 6),
	}
	for name, prog := range progs {
		t.Run(name, func(t *testing.T) {
			for _, hm := range allHosts() {
				t.Run(hm.name, func(t *testing.T) {
					on := cfg()
					on.WriteSetPrediction = true
					off := cfg()
					off.WriteSetPrediction = false
					sumOn, trOn, _ := run(t, on, hm.mk(), prog)
					sumOff, trOff, _ := run(t, off, hm.mk(), prog)
					if sumOn != sumOff {
						t.Errorf("checksum differs: on %016x, off %016x", sumOn, sumOff)
					}
					if trOn.Hash() != trOff.Hash() {
						t.Errorf("trace hash differs: on %016x, off %016x", trOn.Hash(), trOff.Hash())
					}
				})
			}
		})
	}
}

// TestPredictionEngages guards against the subsystem silently never firing
// (a regression that determinism tests cannot catch, since prediction off
// is also correct): the iterative stencil must hit on most of its repeated
// writes, and its prediction counters must reproduce exactly across runs
// and stay zero when disabled.
func TestPredictionEngages(t *testing.T) {
	runStats := func(predict bool) api.RunStats {
		c := cfg()
		c.WriteSetPrediction = predict
		_, _, rt := run(t, c, simhost.New(costmodel.Default()), stencilProg(4, 8))
		return rt.Stats()
	}
	on := runStats(true)
	if on.PrefetchHits == 0 {
		t.Fatalf("stencil produced no prefetch hits (misses %d)", on.PrefetchMisses)
	}
	if on.PrefetchHits < on.PrefetchMisses {
		t.Errorf("iterative stencil should mostly hit: %d hits vs %d misses",
			on.PrefetchHits, on.PrefetchMisses)
	}
	again := runStats(true)
	if again.PrefetchHits != on.PrefetchHits || again.PrefetchMisses != on.PrefetchMisses ||
		again.PrefetchWasted != on.PrefetchWasted {
		t.Errorf("prediction counters not reproducible: %d/%d/%d vs %d/%d/%d",
			again.PrefetchHits, again.PrefetchMisses, again.PrefetchWasted,
			on.PrefetchHits, on.PrefetchMisses, on.PrefetchWasted)
	}
	off := runStats(false)
	if off.PrefetchHits != 0 || off.PrefetchMisses != 0 || off.PrefetchWasted != 0 {
		t.Errorf("disabled run counted prefetches: %d/%d/%d",
			off.PrefetchHits, off.PrefetchMisses, off.PrefetchWasted)
	}
}

// TestPredictionAcrossThreadCounts pins that per-thread history tables keep
// results thread-count-stable: for every thread count the predicted run
// matches the unpredicted run of the same shape.
func TestPredictionAcrossThreadCounts(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		on := cfg()
		on.WriteSetPrediction = true
		off := cfg()
		off.WriteSetPrediction = false
		sumOn, trOn, _ := run(t, on, simhost.New(costmodel.Default()), stencilProg(n, 5))
		sumOff, trOff, _ := run(t, off, simhost.New(costmodel.Default()), stencilProg(n, 5))
		if sumOn != sumOff || trOn.Hash() != trOff.Hash() {
			t.Errorf("n=%d: prediction changed results (checksum %016x vs %016x)", n, sumOn, sumOff)
		}
	}
}
