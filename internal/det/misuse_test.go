package det

import (
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/costmodel"
	"repro/internal/host/simhost"
)

// Sync-misuse paths must surface a *RuntimeError carrying the offending
// thread's full deterministic context, not a bare string panic. These
// tests run in-package so they can reach the internal entry points
// (commitAndUpdate, deliverFrom) that misbehaving programs would hit.

// catchRuntimeError runs f and returns the *RuntimeError it panics with;
// any other panic propagates, a clean return yields nil.
func catchRuntimeError(f func()) (re *RuntimeError) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*RuntimeError); ok {
				re = e
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// runMisuse executes prog on a fresh sim-hosted runtime, bounded so a
// broken invariant can never hang the suite.
func runMisuse(t *testing.T, prog func(api.T)) {
	t.Helper()
	c := Default()
	c.SegmentSize = 1 << 20
	rt, err := New(c, simhost.New(costmodel.Default()))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }() // tolerate panics unwinding Run
		_ = rt.Run(prog)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("misuse scenario hung")
	}
}

func TestMisuseRuntimeErrors(t *testing.T) {
	cases := []struct {
		name     string
		wantCode string
		wantOp   string
		detail   string // substring the rendered error must contain
		// trigger runs on the root thread and must panic *RuntimeError.
		trigger func(root api.T)
	}{
		{
			name:     "unlock-unheld",
			wantCode: "unlock-unheld",
			wantOp:   "unlock",
			detail:   "does not hold",
			trigger: func(root api.T) {
				m := root.NewMutex()
				root.Unlock(m)
			},
		},
		{
			name:     "unlock-while-other-held",
			wantCode: "unlock-unheld",
			wantOp:   "unlock",
			detail:   "does not hold",
			trigger: func(root api.T) {
				held := root.NewMutex()
				other := root.NewMutex()
				root.Lock(held)
				// Dirty a page so PendingCommits is populated.
				api.PutU64(root, 0, 42)
				root.Unlock(other)
			},
		},
		{
			name:     "zero-party-barrier",
			wantCode: "zero-party-barrier",
			wantOp:   "barrier-init",
			detail:   "at least one party",
			trigger: func(root api.T) {
				root.NewBarrier(0)
			},
		},
		{
			name:     "commit-without-token",
			wantCode: "commit-without-token",
			wantOp:   "commit",
			detail:   "without holding the global token",
			trigger: func(root api.T) {
				// Reach into the internal commit path the way a corrupted
				// token protocol would: a commit attempt with no token held.
				root.(*Thread).commitAndUpdate()
			},
		},
		{
			name:     "double-wake",
			wantCode: "double-wake",
			wantOp:   "wake",
			detail:   "already holds a wake permit",
			trigger: func(root api.T) {
				// Two back-to-back wakes of the same (running) thread: the
				// second finds the wake permit still pending — the corrupted
				// token-handoff case the host detects.
				dt := root.(*Thread)
				dt.rt.deliverFrom(dt.b, dt.tid)
				dt.rt.deliverFrom(dt.b, dt.tid)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runMisuse(t, func(root api.T) {
				re := catchRuntimeError(func() { tc.trigger(root) })
				if re == nil {
					t.Errorf("no RuntimeError surfaced")
					return
				}
				if re.Code != tc.wantCode {
					t.Errorf("Code = %q, want %q", re.Code, tc.wantCode)
				}
				if re.Op != tc.wantOp {
					t.Errorf("Op = %q, want %q", re.Op, tc.wantOp)
				}
				if re.Tid != 0 {
					t.Errorf("Tid = %d, want 0 (root)", re.Tid)
				}
				if re.Phase == "" {
					t.Errorf("Phase not populated")
				}
				if msg := re.Error(); !strings.Contains(msg, tc.detail) ||
					!strings.Contains(msg, tc.wantCode) {
					t.Errorf("rendered error %q missing %q or %q", msg, tc.detail, tc.wantCode)
				}
			})
		})
	}
}

// The diagnostics must reflect the thread's actual state: held locks and
// pending (uncommitted) dirty pages at the violation.
func TestRuntimeErrorDiagnosticsPopulated(t *testing.T) {
	runMisuse(t, func(root api.T) {
		held := root.NewMutex()
		other := root.NewMutex()
		root.Lock(held)
		api.PutU64(root, 0, 42) // one dirty page, uncommitted
		re := catchRuntimeError(func() { root.Unlock(other) })
		if re == nil {
			t.Error("no RuntimeError surfaced")
			return
		}
		heldID := held.(*dMutex).id
		found := false
		for _, id := range re.HeldLocks {
			if id == heldID {
				found = true
			}
		}
		if !found {
			t.Errorf("HeldLocks = %v, want to contain %d", re.HeldLocks, heldID)
		}
		if re.Object != other.(*dMutex).id {
			t.Errorf("Object = %d, want %d", re.Object, other.(*dMutex).id)
		}
		if re.Clock <= 0 {
			t.Errorf("Clock = %d, want > 0 after real work", re.Clock)
		}
		// Clean up so the program exits through the normal path.
		root.Unlock(held)
	})
}

// A violation raised before the store buffer commits must count the dirty
// pages still pending. Uses commit-without-token as the trigger: it fires
// before any commit, unlike unlock-unheld (whose token acquisition already
// flushed the buffer).
func TestRuntimeErrorCountsPendingCommits(t *testing.T) {
	runMisuse(t, func(root api.T) {
		api.PutU64(root, 0, 42)   // one dirty page, uncommitted
		api.PutU64(root, 4096, 7) // a second page
		re := catchRuntimeError(func() { root.(*Thread).commitAndUpdate() })
		if re == nil {
			t.Error("commit-without-token did not surface a RuntimeError")
			return
		}
		if re.PendingCommits < 2 {
			t.Errorf("PendingCommits = %d, want >= 2 uncommitted dirty pages", re.PendingCommits)
		}
	})
}

// DumpState must render every live thread with phase, clock and held
// locks, plus the arbiter's token state — the -timeout/-watchdog bundle.
func TestDumpState(t *testing.T) {
	runMisuse(t, func(root api.T) {
		m := root.NewMutex()
		root.Lock(m)
		dump := root.(*Thread).rt.DumpState()
		for _, want := range []string{"runtime state", "t0", "phase=", "held-locks=[", "arbiter:", "holder="} {
			if !strings.Contains(dump, want) {
				t.Errorf("DumpState missing %q:\n%s", want, dump)
			}
		}
		root.Unlock(m)
	})
}
