package det

import (
	"strconv"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/trace"
)

// dMutex is the deterministic mutex (§4.1). State is mutated only while
// holding the global token. Unlike Kendo's polling locks, a loser blocks:
// it departs from GMIC consideration, queues, and is re-armed for the
// token by the unlocker (clock.ArriveWanting), so it wakes already holding
// the token and retries — the paper's first blocking deterministic
// mutex_lock().
type dMutex struct {
	id         uint64
	locked     bool
	owner      int
	acquiredAt int64 // owner's clock at acquisition, for the CS-length EWMA
	waiters    []int
	csEWMA     ewma
}

func (*dMutex) ImplMutex() {}

// dCond is the deterministic condition variable.
type dCond struct {
	id      uint64
	waiters []int
}

func (*dCond) ImplCond() {}

// dBarrier is the deterministic barrier with Conversion's parallel
// two-phase commit (§4.2).
type dBarrier struct {
	id      uint64
	parties int
	waiting []int // tids blocked at the rendezvous, in arrival order
}

func (*dBarrier) ImplBarrier() {}

// newObjID allocates a deterministic sync-object id: creation is
// thread-local (as pthread_*_init is), so ids combine tid and a per-thread
// counter.
func (t *Thread) newObjID() uint64 {
	t.objSeq++
	return uint64(t.tid)<<32 | t.objSeq
}

// NewMutex implements api.T. Under SingleGlobalLock (the DThreads/DWC
// locking model) every mutex is the same global lock.
func (t *Thread) NewMutex() api.Mutex {
	if t.rt.globalMutex != nil {
		return t.rt.globalMutex
	}
	return &dMutex{id: t.newObjID(), owner: -1}
}

// NewCond implements api.T.
func (t *Thread) NewCond() api.Cond { return &dCond{id: t.newObjID()} }

// NewBarrier implements api.T.
func (t *Thread) NewBarrier(parties int) api.Barrier {
	if parties < 1 {
		panic(t.runtimeError("zero-party-barrier", "barrier-init", 0,
			"barrier needs at least one party (got %d)", parties))
	}
	return &dBarrier{id: t.newObjID(), parties: parties}
}

// Lock implements api.T (Figure 7's mutexLock).
func (t *Thread) Lock(mx api.Mutex) {
	m := mx.(*dMutex)
	t.syncOpStart(siteID(siteLock, m.id))
	for {
		t.tokenBegin()
		if !m.locked {
			m.locked, m.owner, m.acquiredAt = true, t.tid, t.icount
			t.rt.noteLockHeld(t.tid, m.id, true)
			t.record(trace.OpLock, m.id)
			t.noteLockAcquire(m.id)
			if h := t.rt.hooks; h != nil {
				h.OnAcquire(t.tid, m.id)
			}
			break
		}
		if t.rt.cfg.PollingMutex {
			// Kendo-style polling (§4.1's contrast): bump our clock out of
			// GMIC contention, give up the token, and re-contend. Every
			// failed attempt costs a full coordination round.
			t.uncoarsen()
			if bump := t.rt.cfg.PollingBump; bump > 0 {
				t.icount += bump
				t.deliver(t.rt.arb.Advance(t.tid, bump))
			} else {
				newCount, g := t.rt.arb.NudgePast(t.tid)
				t.icount = newCount
				t.deliver(g)
			}
			t.releaseTokenRaw()
			continue
		}
		// Blocking path (the paper's contribution): queue, leave GMIC
		// consideration, give up the token, and sleep until the unlocker
		// re-arms us (we wake holding the token and retry).
		t.mark(obs.MarkLockBlock, int64(m.id))
		m.waiters = append(m.waiters, t.tid)
		t.uncoarsen()
		t.deliver(t.rt.arb.Depart(t.tid))
		t.releaseTokenRaw()
		t.blockForToken(diagMutexWait, "mutex "+strconv.FormatUint(m.id, 10))
	}
	t.tokenEnd(coarsenLock, m.csEWMA.estimate())
}

// Unlock implements api.T (Figure 9's mutexUnlock). Unlike Kendo, unlock
// must hold the token because it performs a commit.
func (t *Thread) Unlock(mx api.Mutex) {
	m := mx.(*dMutex)
	t.syncOpStart(siteID(siteUnlock, m.id))
	t.tokenBegin()
	t.unlockLocked(m, trace.OpUnlock)
	t.tokenEnd(coarsenUnlock, t.unlockEstimator(m.id).estimate())
	t.prevUnlockID = m.id
}

// unlockLocked releases m (token held) and re-arms the next waiter.
func (t *Thread) unlockLocked(m *dMutex, op trace.Op) {
	if !m.locked || m.owner != t.tid {
		panic(t.runtimeError("unlock-unheld", "unlock", m.id,
			"tid %d unlocking mutex %d it does not hold (owner %d)", t.tid, m.id, m.owner))
	}
	m.csEWMA.update(float64(t.icount - m.acquiredAt))
	m.locked, m.owner = false, -1
	t.rt.noteLockHeld(t.tid, m.id, false)
	t.record(op, m.id)
	if h := t.rt.hooks; h != nil {
		h.OnRelease(t.tid, m.id)
	}
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		// Re-arm: the waiter rejoins GMIC consideration wanting the token;
		// it is granted (and thereby woken) in deterministic clock order
		// once we release. Passing wanting-status on the waiter's behalf —
		// rather than letting it race to request after a wake — is what
		// makes the handoff deterministic (the paper's footnote 4).
		t.deliver(t.rt.arb.ArriveWanting(w))
	}
}

// Wait implements api.T: pthread_cond_wait. Atomically releases the mutex
// and sleeps; on wake (signal + token grant) reacquires the mutex.
func (t *Thread) Wait(cx api.Cond, mx api.Mutex) {
	c := cx.(*dCond)
	m := mx.(*dMutex)
	t.syncOpStart(siteID(siteCondWait, c.id))
	t.tokenBegin()
	t.uncoarsen() // cond ops terminate coarsened chunks (§3.1)
	t.unlockLocked(m, trace.OpWait)
	c.waiters = append(c.waiters, t.tid)
	t.deliver(t.rt.arb.Depart(t.tid))
	t.releaseTokenRaw()
	t.blockForToken(diagCondWait, "cond "+strconv.FormatUint(c.id, 10))
	if h := t.rt.hooks; h != nil {
		h.OnAcquire(t.tid, c.id)
	}
	// Reacquire the mutex; we already hold the token.
	for m.locked {
		t.mark(obs.MarkLockBlock, int64(m.id))
		m.waiters = append(m.waiters, t.tid)
		t.deliver(t.rt.arb.Depart(t.tid))
		t.releaseTokenRaw()
		t.blockForToken(diagMutexWait, "mutex "+strconv.FormatUint(m.id, 10))
	}
	m.locked, m.owner, m.acquiredAt = true, t.tid, t.icount
	t.rt.noteLockHeld(t.tid, m.id, true)
	t.record(trace.OpLock, m.id)
	t.noteLockAcquire(m.id)
	if h := t.rt.hooks; h != nil {
		h.OnAcquire(t.tid, m.id)
	}
	t.tokenEnd(coarsenNever, 0)
}

// Signal implements api.T: wake (re-arm) the longest-waiting thread.
func (t *Thread) Signal(cx api.Cond) {
	c := cx.(*dCond)
	t.syncOpStart(siteID(siteSignal, c.id))
	t.tokenBegin()
	t.uncoarsen()
	t.record(trace.OpSignal, c.id)
	if h := t.rt.hooks; h != nil {
		h.OnRelease(t.tid, c.id)
	}
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		t.deliver(t.rt.arb.ArriveWanting(w))
	}
	t.tokenEnd(coarsenNever, 0)
}

// Broadcast implements api.T: wake all waiters.
func (t *Thread) Broadcast(cx api.Cond) {
	c := cx.(*dCond)
	t.syncOpStart(siteID(siteBroadcast, c.id))
	t.tokenBegin()
	t.uncoarsen()
	t.record(trace.OpBcast, c.id)
	if h := t.rt.hooks; h != nil {
		h.OnRelease(t.tid, c.id)
	}
	for _, w := range c.waiters {
		t.deliver(t.rt.arb.ArriveWanting(w))
	}
	c.waiters = nil
	t.tokenEnd(coarsenNever, 0)
}

// BarrierWait implements api.T (§4.2). With ParallelBarrier enabled,
// commits use Conversion's two-phase protocol: the serial ordering phase
// runs under the token, the expensive page merging runs after the token is
// released and overlaps across arrivals. Every participant leaves the
// barrier with a view of the same segment version.
func (t *Thread) BarrierWait(bx api.Barrier) {
	bar := bx.(*dBarrier)
	t.syncOpStart(siteID(siteBarrier, bar.id))
	// Chaos arrival skew: stretch this arrival's pre-rendezvous time,
	// randomizing when (never in what logical order) arrivals land.
	if d := t.chaosT.BarrierSkew(); d > 0 {
		t.charge(obs.PhaseCompute, d)
	}
	if !t.holding {
		t.acquireToken()
		t.mimdAdapt()
	}
	if t.coarse.active {
		t.mark(obs.MarkCoarsenEnd, int64(t.coarse.ops))
		t.coarse.active = false // barrier terminates coarsening; commit below
	}
	t.record(trace.OpBarrier, bar.id)
	m := &t.rt.cfg.Model

	if bar.parties == 1 {
		t.commitAndUpdate()
		if h := t.rt.hooks; h != nil {
			h.OnRelease(t.tid, bar.id)
			h.OnAcquire(t.tid, bar.id)
		}
		t.releaseTokenRaw()
		return
	}

	last := len(bar.waiting) == bar.parties-1
	if t.rt.cfg.ParallelBarrier {
		// A coarsened arrival never waited, so nothing is pre-diffed yet;
		// a no-op for arrivals that speculated on the way in.
		t.specPrepare()
		t.account(obs.PhaseCompute)
		pc := t.ws.BeginCommit()
		st := pc.Stats()
		t.chargeCommitSerial(st)
		t.journalCommit(pc.Version())
		t.logCommit(pc.Version())
		if h := t.rt.hooks; h != nil {
			h.OnCommit(t.tid, pc.Version())
			h.OnRelease(t.tid, bar.id) // entry edge: after the commit
		}
		if !last {
			bar.waiting = append(bar.waiting, t.tid)
			t.deliver(t.rt.arb.Depart(t.tid))
			t.releaseTokenRaw()
			// Phase 2 runs outside the token, in parallel with other
			// arrivals' merges and with threads not in the barrier.
			t.charge(obs.PhaseMerge, int64(st.CommittedPages)*m.CommitPageMerge)
			pc.Complete()
			t.barrierSleep(bar)
			return
		}
		// Last arrival: finish our merge, then release everyone at one
		// deterministic version.
		t.charge(obs.PhaseMerge, int64(st.CommittedPages)*m.CommitPageMerge)
		pc.Complete()
		t.rt.seg.CompleteThrough(t.rt.seg.Head())
		t.barrierRelease(bar)
	} else {
		// Serial barrier: the whole commit (ordering + merge) happens
		// under the token, arrival by arrival.
		t.commitAndUpdate()
		if h := t.rt.hooks; h != nil {
			h.OnRelease(t.tid, bar.id)
		}
		if !last {
			bar.waiting = append(bar.waiting, t.tid)
			t.deliver(t.rt.arb.Depart(t.tid))
			t.releaseTokenRaw()
			t.barrierSleep(bar)
			return
		}
		t.barrierRelease(bar)
	}
}

// barrierSleep parks at the rendezvous and, once released, advances the
// view to the barrier's final version. The exit hooks for sleepers are
// fired by the releasing arrival (token-held, deterministic) — not here,
// where the token is not held.
func (t *Thread) barrierSleep(bar *dBarrier) {
	m := &t.rt.cfg.Model
	// The rendezvous is the barrier path's off-token wait: prefetch the
	// next chunk's predicted write set here, like speculate does for token
	// waits. The copies are taken at the pre-barrier version; the UpdateTo
	// below patches them forward like any clean page, so they stay
	// byte-identical to committed state until written.
	t.prefetchNext()
	t.account(obs.PhaseCommit)
	t.park(diagBarrierWait, "barrier "+strconv.FormatUint(bar.id, 10)+" rendezvous")
	t.account(obs.PhaseBarrierWait)
	t.resyncClock()
	pulled := t.ws.UpdateTo(t.barrierTarget)
	t.charge(obs.PhaseCommit, int64(pulled)*m.UpdatePage)
	t.lastCommitCount = t.icount
}

// barrierRelease (token held, called by the last arrival) fixes the
// barrier's final version, updates our own view, re-admits all waiters to
// clock consideration, wakes them, and releases the token.
func (t *Thread) barrierRelease(bar *dBarrier) {
	m := &t.rt.cfg.Model
	final := t.rt.seg.Head()
	pulled := t.ws.UpdateTo(final)
	t.charge(obs.PhaseCommit, int64(pulled)*m.UpdatePage)
	t.lastCommitCount = t.icount
	if h := t.rt.hooks; h != nil {
		h.OnUpdate(t.tid, t.ws.Version())
		h.OnAcquire(t.tid, bar.id)
	}
	waiters := bar.waiting
	bar.waiting = nil // reset for barrier reuse
	for _, w := range waiters {
		wt := t.rt.lookup(w)
		// Record the release version per waiter before waking: a reused
		// barrier may start its next round before this round's waiters
		// have run, and they must not observe the next round's version.
		wt.barrierTarget = final
		if h := t.rt.hooks; h != nil {
			h.OnUpdate(w, final)
			h.OnAcquire(w, bar.id)
		}
		t.deliver(t.rt.arb.Arrive(w))
		t.b.Wake(wt.b)
	}
	t.releaseTokenRaw()
}
