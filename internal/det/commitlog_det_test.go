package det_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/api"
	"repro/internal/commitlog"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/simhost"
	"repro/internal/journal"
)

// runWithLog runs prog with a commit log attached in dir and returns the
// live checksum and trace hash.
func runWithLog(t *testing.T, c det.Config, dir string, opts commitlog.Options, prog func(api.T)) (uint64, uint64) {
	t.Helper()
	cl, err := commitlog.Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.CommitLog = cl
	sum, tr, _ := run(t, c, simhost.New(costmodel.Default()), prog)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.Commits == 0 {
		t.Fatal("commit log recorded nothing")
	}
	return sum, tr.Hash()
}

// TestCommitLogInvisibleAndReplays is the subsystem's core contract in
// one test: logging does not change results, and the log replays to the
// exact live state — full history, time travel to every logged version,
// and snapshot resume all checksum-identical.
func TestCommitLogInvisibleAndReplays(t *testing.T) {
	baseSum, baseTrace, _ := run(t, cfg(), simhost.New(costmodel.Default()), mixedProg(4, 12))
	dir := t.TempDir()
	sum, traceHash := runWithLog(t, cfg(), dir, commitlog.Options{SegmentBytes: 4096, SnapshotEvery: 16}, mixedProg(4, 12))
	if sum != baseSum {
		t.Fatalf("logging changed the checksum: %016x != %016x", sum, baseSum)
	}
	if traceHash != baseTrace.Hash() {
		t.Fatalf("logging changed the sync trace: %016x != %016x", traceHash, baseTrace.Hash())
	}

	st, err := commitlog.Replay(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.SawEnd {
		t.Fatal("clean close left no verified end trailer")
	}
	if st.Checksum() != baseSum {
		t.Fatalf("replayed checksum %016x, live run %016x", st.Checksum(), baseSum)
	}

	// Time travel to a mid-run version replays without error and lands on
	// the requested version exactly.
	mid := st.Version / 2
	mst, err := commitlog.Replay(dir, mid)
	if err != nil {
		t.Fatal(err)
	}
	if mst.Version != mid {
		t.Fatalf("time travel to %d landed at %d", mid, mst.Version)
	}

	rst, err := commitlog.Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Checksum() != baseSum {
		t.Fatalf("resume checksum %016x, live run %016x", rst.Checksum(), baseSum)
	}
	if rst.Commits >= st.Commits {
		t.Fatalf("resume applied %d commits, full replay %d — snapshots unused", rst.Commits, st.Commits)
	}
}

// TestCommitLogByteIdentical: two identical runs must produce
// byte-identical log directories — the determinism property check.sh
// gates on the golden benches, in-tree and fast.
func TestCommitLogByteIdentical(t *testing.T) {
	opts := commitlog.Options{SegmentBytes: 4096, SnapshotEvery: 16, Meta: map[string]string{"bench": "mixed"}}
	dirA, dirB := t.TempDir(), t.TempDir()
	runWithLog(t, cfg(), dirA, opts, mixedProg(4, 12))
	runWithLog(t, cfg(), dirB, opts, mixedProg(4, 12))
	entsA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	entsB, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(entsA) != len(entsB) {
		t.Fatalf("%d vs %d log files", len(entsA), len(entsB))
	}
	for i := range entsA {
		if entsA[i].Name() != entsB[i].Name() {
			t.Fatalf("file %d: %s vs %s", i, entsA[i].Name(), entsB[i].Name())
		}
		a, _ := os.ReadFile(filepath.Join(dirA, entsA[i].Name()))
		b, _ := os.ReadFile(filepath.Join(dirB, entsB[i].Name()))
		if string(a) != string(b) {
			t.Fatalf("%s differs between identical runs", entsA[i].Name())
		}
	}
}

// TestCommitLogCrossChecksJournal runs with the hash journal and the
// commit log attached together and verifies them against each other
// record for record: same commit sequence (AtSeq/Version/Tid/Clock), same
// page sets, and the replayed page content hashing to the journal's
// recorded page hashes. This is the in-process version of
// `conseq-replay -verify`.
func TestCommitLogCrossChecksJournal(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(t.TempDir(), "run.csqj")
	jw, err := journal.Create(jpath, map[string]string{"bench": "mixed"})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := commitlog.Create(dir, commitlog.Options{SegmentBytes: 8192, SnapshotEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.CommitLog = cl
	rt, err := det.New(c, simhost.New(costmodel.Default()))
	if err != nil {
		t.Fatal(err)
	}
	rt.SetJournal(jw)
	if err := rt.Run(mixedProg(4, 12)); err != nil {
		t.Fatal(err)
	}
	liveSum := rt.Checksum()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	jd, err := journal.Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(jd.Commits) == 0 {
		t.Fatal("journal recorded no commits")
	}
	i := 0
	st, err := commitlog.ReplayWith(dir, -1, func(st *commitlog.State, lc commitlog.Commit) error {
		if i >= len(jd.Commits) {
			return fmt.Errorf("commit log has more commits than the journal (%d)", len(jd.Commits))
		}
		jc := jd.Commits[i]
		i++
		if lc.AtSeq != jc.AtSeq || lc.Version != jc.Version || lc.Tid != jc.Tid || lc.Clock != jc.Clock {
			return fmt.Errorf("commit %d: log (seq %d v%d tid %d clk %d) != journal (seq %d v%d tid %d clk %d)",
				i-1, lc.AtSeq, lc.Version, lc.Tid, lc.Clock, jc.AtSeq, jc.Version, jc.Tid, jc.Clock)
		}
		if len(lc.Pages) != len(jc.Pages) {
			return fmt.Errorf("commit %d: %d logged pages, journal has %d", i-1, len(lc.Pages), len(jc.Pages))
		}
		for k, pd := range lc.Pages {
			if pd.Page != jc.Pages[k].Page {
				return fmt.Errorf("commit %d: page set diverges at %d", i-1, k)
			}
			if got := st.PageHash(pd.Page); got != jc.Pages[k].Hash {
				return fmt.Errorf("commit %d page %d: replayed hash %016x, journal %016x",
					i-1, pd.Page, got, jc.Pages[k].Hash)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(jd.Commits) {
		t.Fatalf("replayed %d commits, journal has %d", i, len(jd.Commits))
	}
	if st.Checksum() != liveSum {
		t.Fatalf("replay checksum %016x, live %016x", st.Checksum(), liveSum)
	}
}

// TestCommitLogSharded: the log's total order must hold under sharded
// token arbitration too.
func TestCommitLogSharded(t *testing.T) {
	c := cfg()
	c.EnableScaleOut(2, 4)
	base, _, _ := run(t, c, simhost.New(costmodel.Default()), mixedProg(4, 10))
	dir := t.TempDir()
	c2 := cfg()
	c2.EnableScaleOut(2, 4)
	sum, _ := runWithLog(t, c2, dir, commitlog.Options{}, mixedProg(4, 10))
	if sum != base {
		t.Fatalf("logging changed a sharded run: %016x != %016x", sum, base)
	}
	st, err := commitlog.Replay(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checksum() != base {
		t.Fatalf("sharded replay checksum %016x, live %016x", st.Checksum(), base)
	}
}

// TestCommitLogStreamFollowsRun tails a live run and must see every
// logged commit in version order, ending cleanly at log close.
func TestCommitLogStreamFollowsRun(t *testing.T) {
	dir := t.TempDir()
	cl, err := commitlog.Create(dir, commitlog.Options{SegmentBytes: 4096, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.CommitLog = cl
	rt, err := det.New(c, simhost.New(costmodel.Default()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cl.Stream(1)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int64, 1)
	go func() {
		var last, n int64
		for {
			lc, ok := s.Next()
			if !ok {
				break
			}
			if lc.Version != last+1 {
				got <- -lc.Version
				return
			}
			last = lc.Version
			n++
		}
		got <- n
	}()
	if err := rt.Run(mixedProg(4, 12)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	n := <-got
	if n <= 0 {
		t.Fatalf("follower saw a gap (version %d)", -n)
	}
	if n != cl.Stats().Commits {
		t.Fatalf("follower saw %d commits, log has %d", n, cl.Stats().Commits)
	}
}
