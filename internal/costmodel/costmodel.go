// Package costmodel holds the virtual-time cost parameters shared by all
// simulated runtimes. The values are calibrated to the paper's testbed
// class (2 GHz Xeon, Linux 2.6.37): absolute numbers are order-of-magnitude
// models of syscall, page-fault and futex costs, and the figures compare
// ratios across runtimes that all share one model, so the reproduced
// shapes are insensitive to modest miscalibration.
package costmodel

// Model lists every chargeable operation in virtual nanoseconds (except
// InstrNS, which is per instruction).
type Model struct {
	// InstrNS is the virtual time per retired instruction (ns). 0.5
	// corresponds to 2 GHz at IPC 1.
	InstrNS float64

	// PageFault is a Conversion copy-on-write fault (kernel-module path).
	PageFault int64
	// MprotectFault is a DThreads-style fault: SIGSEGV delivery, handler,
	// and two mprotect syscalls — considerably dearer than the kernel path.
	MprotectFault int64

	// CommitFixed is the per-commit syscall/bookkeeping floor.
	CommitFixed int64
	// CommitPageSerial is phase-1 (ordering) work per committed page when
	// the page's diff must be computed inside the token-held serial phase
	// (no speculation, or the speculative diff was invalidated).
	CommitPageSerial int64
	// CommitPagePublish is phase-1 work per committed page whose diff was
	// already computed speculatively: only the ordering/publication
	// bookkeeping remains under the token.
	CommitPagePublish int64
	// SpecDiffPage is the cost of speculatively diffing one dirty page off
	// the token path (word-wide twin comparison), paid while the thread is
	// waiting for its turn in the deterministic order — i.e. in parallel
	// with other threads' token-held work.
	SpecDiffPage int64
	// PrepopulatePage is the cost of pre-populating one predicted page off
	// the token path (mem.Workspace.Prepopulate): the CoW copy is taken
	// during a token wait instead of at the chunk's first write. Cheaper
	// than PageFault because the copy happens in user space on a warm
	// path, with no trap, no kernel entry, and the twin written in the
	// same pass; but the page must be charged — the copy is real work the
	// waiting thread performs. A misprediction wastes exactly this much
	// off-token time and nothing on the serial path.
	PrepopulatePage int64
	// CommitPageMerge is phase-2 work per committed page: diffing the twin
	// and installing (or byte-merging) the result.
	CommitPageMerge int64
	// UpdatePage is the cost per remote page imported by an update.
	UpdatePage int64

	// TokenHandoff is the cost of passing the global token.
	TokenHandoff int64
	// Wakeup is the wake-to-running latency. The paper's runtime notifies
	// waiters from kernel space through shared memory (§3.4), "avoiding
	// costly signals to user space", so this is far below a cold
	// signal-delivery path.
	Wakeup int64

	// SyscallClockRead reads the performance counter via the kernel module;
	// UserClockRead is the user-space fast path (§3.4).
	SyscallClockRead int64
	UserClockRead    int64
	// OverflowIRQ is the cost of one counter-overflow interrupt (§3.2).
	OverflowIRQ int64

	// ForkBase and ForkPerPage model process creation with a populated
	// Conversion page table (§3.3); PoolReuse is the cheap path that
	// reuses a pooled thread.
	ForkBase    int64
	ForkPerPage int64
	PoolReuse   int64

	// PoolWorkerWake is the spawner-side cost of adopting a parked pooled
	// worker (docs/scheduler.md): a free-list pop, the deterministic
	// registration of the new tid, and a futex wake of the worker's parked
	// task. The worker's own warm-up (view rebind and page pulls, modeled
	// as WorkerWarmup + pulled×UpdatePage) runs on the worker's timeline,
	// overlapping the spawner — which is the point: the spawner's critical
	// path pays only this term instead of ForkBase or PoolReuse.
	PoolWorkerWake int64

	// PoolAdoptDispatch is the spawner-side cost of a pool adoption under
	// per-shard granting (docs/scheduler.md stage 2): pop the free list,
	// publish the assignment, and trip the worker's wake, then move on.
	// The deterministic re-registration that the legacy PoolWorkerWake
	// also covered is not a separate charge in stage 2 — the worker's
	// first sub-token acquisition prices it (ShardHandoff/ShardTransfer),
	// and the wake latency itself is already modeled host-side (Wakeup) —
	// the same waker-to-woken cost move lazy fast-forward makes for token
	// wakes.
	PoolAdoptDispatch int64

	// WorkerWarmup is the adopted worker's wake-to-ready cost: swap the
	// workspace's address-space base to the new tid and revalidate its
	// view against the pinned spawn head. Much cheaper than PoolReuse —
	// the legacy workspace pool reconstructs a cold workspace's mappings
	// from pool state, while a live worker's mappings never went away, so
	// adoption pays only the rebind and the per-page delta pulls
	// (UpdatePage each) for commits that landed while it was parked.
	WorkerWarmup int64

	// WakeHandoff is the wake-side share of a token handoff under lazy
	// fast-forward (§3.5, docs/scheduler.md): the futex wake plus reading
	// the grant word, with the woken thread's counter fast-forward
	// *deferred*. FastForwardResync is that deferred resync, charged when
	// the thread actually takes the token and publishes its clock. The
	// split replaces TokenHandoff on wake paths when
	// Config.LazyFastForward is set; WakeHandoff + FastForwardResync <
	// TokenHandoff because deferral batches the counter reprogramming
	// with the clock read the thread was about to do anyway.
	WakeHandoff       int64
	FastForwardResync int64

	// ShardHandoff is a sub-token re-acquire within one arbitration shard
	// by the shard's previous holder (docs/scheduler.md): no cross-thread
	// transfer, no remote cache line, just revalidating the locally-held
	// sub-token against the shard clock. Charged instead of TokenHandoff
	// when Config.Shards ≥ 2 and the acquiring thread was the shard's
	// last holder. ShardClockRead is the per-foreign-shard cost of the
	// shard-clock merge performed at cross-shard edges (barriers, forks,
	// joins, exits): a cross-shard op pays (Shards−1)×ShardClockRead on
	// top of its handoff to fold every shard clock into the global order.
	ShardHandoff   int64
	ShardClockRead int64

	// ShardTransfer is a sub-token handoff between threads within one
	// arbitration shard under per-shard granting (stage 2,
	// docs/scheduler.md): one remote cache-line transfer for the shard's
	// holder word plus the shard-clock publish, but no global fold — the
	// other shards' clock lines stay untouched. Sits between ShardHandoff
	// (shard-local re-acquire) and TokenHandoff (full cross-shard edge).
	ShardTransfer int64

	// SyncOpLocal is the cost of an uncontended pthreads mutex/barrier
	// operation (the nondeterministic baseline's only sync overhead).
	SyncOpLocal int64
}

// Default returns the calibrated model.
func Default() Model {
	return Model{
		InstrNS:           0.5,
		PageFault:         3_500,
		MprotectFault:     12_000,
		CommitFixed:       1_400,
		CommitPageSerial:  300,
		CommitPagePublish: 60,
		SpecDiffPage:      120,
		PrepopulatePage:   1_200,
		CommitPageMerge:   2_400,
		UpdatePage:        700,
		TokenHandoff:      350,
		Wakeup:            1_600,
		SyscallClockRead:  600,
		UserClockRead:     80,
		OverflowIRQ:       1_200,
		ForkBase:          120_000,
		ForkPerPage:       450,
		PoolReuse:         15_000,
		PoolWorkerWake:    1_800,
		PoolAdoptDispatch: 600,
		WorkerWarmup:      4_000,
		WakeHandoff:       130,
		FastForwardResync: 90,
		ShardHandoff:      120,
		ShardClockRead:    40,
		ShardTransfer:     200,
		SyncOpLocal:       90,
	}
}

// Instr converts an instruction count to virtual nanoseconds.
func (m Model) Instr(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(float64(n) * m.InstrNS)
}
