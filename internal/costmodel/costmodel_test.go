package costmodel

import "testing"

func TestInstrConversion(t *testing.T) {
	m := Default()
	if got := m.Instr(0); got != 0 {
		t.Errorf("Instr(0) = %d", got)
	}
	if got := m.Instr(-5); got != 0 {
		t.Errorf("Instr(negative) = %d", got)
	}
	if got := m.Instr(2000); got != int64(2000*m.InstrNS) {
		t.Errorf("Instr(2000) = %d", got)
	}
}

func TestDefaultOrderings(t *testing.T) {
	// Relationships the evaluation's shapes depend on; a calibration edit
	// that breaks one of these deserves a failing test.
	m := Default()
	if m.MprotectFault <= m.PageFault {
		t.Error("mprotect fault should cost more than the kernel CoW path")
	}
	if m.UserClockRead >= m.SyscallClockRead {
		t.Error("user-space clock read should be cheaper than the syscall")
	}
	if m.PoolReuse >= m.ForkBase {
		t.Error("pool reuse should be cheaper than a fork")
	}
	if m.SyncOpLocal >= m.CommitFixed {
		t.Error("a pthreads sync op should be far cheaper than a commit")
	}
	for name, v := range map[string]int64{
		"PageFault": m.PageFault, "CommitFixed": m.CommitFixed,
		"CommitPageSerial": m.CommitPageSerial, "CommitPageMerge": m.CommitPageMerge,
		"UpdatePage": m.UpdatePage, "TokenHandoff": m.TokenHandoff,
		"Wakeup": m.Wakeup, "OverflowIRQ": m.OverflowIRQ,
		"ForkBase": m.ForkBase, "ForkPerPage": m.ForkPerPage,
	} {
		if v <= 0 {
			t.Errorf("%s must be positive, got %d", name, v)
		}
	}
	if m.InstrNS <= 0 {
		t.Error("InstrNS must be positive")
	}
}
