// Package clock implements Consequence's deterministic logical clock: the
// bookkeeping that decides, deterministically, which thread may hold the
// single global token required for every synchronization operation.
//
// Two ordering policies are provided, matching the paper's §2.1:
//
//   - IC (instruction count, the Kendo/GMIC policy): the token may only be
//     acquired by the requesting thread whose logical clock — a count of
//     retired instructions — is the global minimum among eligible threads,
//     with ties broken by thread ID. The paper reads hardware performance
//     counters; here the runtime advances each thread's clock explicitly
//     (compiler-instrumentation style counting, which the paper notes is an
//     equally sound clock source).
//
//   - RR (round robin): the token cycles through eligible threads in thread
//     ID order, one synchronization operation per turn. This is the policy
//     of DThreads and DWC, and of the Consequence-RR configuration.
//
// The Arbiter is pure bookkeeping: every mutating call returns the thread
// (if any) that should now be granted the token. The runtime is responsible
// for actually blocking and waking threads; determinism follows because
// grant decisions depend only on deterministic inputs (published clock
// values, eligibility transitions that occur at token-serialized points,
// and thread IDs).
package clock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Policy selects the deterministic ordering discipline.
type Policy int

const (
	// PolicyIC orders synchronization by global-minimum instruction count.
	PolicyIC Policy = iota
	// PolicyRR orders synchronization round-robin by thread ID.
	PolicyRR
)

// String names the policy as it appears in runtime names ("IC", "RR").
func (p Policy) String() string {
	switch p {
	case PolicyIC:
		return "IC"
	case PolicyRR:
		return "RR"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// NoGrant is returned by arbiter operations when no thread becomes eligible
// to take the token as a result of the operation.
const NoGrant = -1

type threadState struct {
	tid   int
	count int64
	// eligible threads participate in GMIC / ring consideration. A thread
	// departs (becomes ineligible) when it blocks on a lock queue or
	// condition variable — the paper's clockDepart().
	eligible bool
	// wanting threads have requested the token and are blocked until
	// granted.
	wanting bool
	// scope is the shard of the thread's pending/latest request under
	// sharded granting (GlobalScope for cross-shard edges); unused in the
	// legacy single-domain mode.
	scope int
}

// Arbiter is the deterministic token arbiter. All methods are safe for
// concurrent use.
type Arbiter struct {
	mu      sync.Mutex
	policy  Policy
	threads map[int]*threadState
	order   []int // registered tids, sorted (the RR ring)
	holder  int
	// rrNext is the tid whose turn it is (RR policy). It may name an
	// unregistered tid after exits; grant search starts at the first
	// registered tid >= rrNext (cyclically).
	rrNext int
	// lastRelease is the clock of the thread that most recently released
	// the token; used by the fast-forward optimization (§3.5).
	lastRelease int64
	// fastForward enables §3.5 on Arrive.
	fastForward bool
	// nShards > 0 switches grant decisions to sharded granting (stage 2,
	// shardgrant.go): per-shard release clocks, scoped fast-forward, and
	// the (count, shard id, tid) merge rule.
	nShards     int
	shardClocks []int64

	// stats
	grants   int64
	departs  int64
	ffJumps  int64
	ffAmount int64
}

// New creates an arbiter with the given policy. fastForward enables the
// §3.5 optimization (only meaningful under PolicyIC).
func New(policy Policy, fastForward bool) *Arbiter {
	return &Arbiter{
		policy:      policy,
		threads:     make(map[int]*threadState),
		holder:      NoGrant,
		rrNext:      0,
		fastForward: fastForward,
	}
}

// Policy returns the arbiter's ordering policy.
func (a *Arbiter) Policy() Policy { return a.policy }

// Register adds a thread with the given starting clock. The thread starts
// eligible and not wanting. Returns a grant if the registration unblocks
// one (it cannot under current policies, but the signature is uniform).
func (a *Arbiter) Register(tid int, start int64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.threads[tid]; ok {
		panic(fmt.Sprintf("clock: tid %d registered twice", tid))
	}
	a.threads[tid] = &threadState{tid: tid, count: start, eligible: true, scope: GlobalScope}
	i := sort.SearchInts(a.order, tid)
	a.order = append(a.order, 0)
	copy(a.order[i+1:], a.order[i:])
	a.order[i] = tid
	return a.grantLocked()
}

// Unregister removes an exited thread. Returns a grant if its removal
// unblocks one.
func (a *Arbiter) Unregister(tid int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tid)
	if st.wanting {
		panic(fmt.Sprintf("clock: tid %d unregistered while waiting for token", tid))
	}
	if a.holder == tid {
		panic(fmt.Sprintf("clock: tid %d unregistered while holding token", tid))
	}
	delete(a.threads, tid)
	i := sort.SearchInts(a.order, tid)
	a.order = append(a.order[:i], a.order[i+1:]...)
	return a.grantLocked()
}

// Advance adds delta retired instructions to the thread's clock and returns
// a grant if the advance makes some waiting thread the new global minimum.
func (a *Arbiter) Advance(tid int, delta int64) int {
	if delta < 0 {
		panic("clock: negative advance")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.state(tid).count += delta
	return a.grantLocked()
}

// Count returns the thread's current clock.
func (a *Arbiter) Count(tid int) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state(tid).count
}

// Request records that tid wants the token. If the grant conditions already
// hold, the token is assigned immediately and Request returns tid; the
// caller proceeds without blocking. Otherwise the caller must block until
// some later operation returns tid as its grant.
func (a *Arbiter) Request(tid int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tid)
	if a.holder == tid {
		panic(fmt.Sprintf("clock: tid %d requested token it already holds", tid))
	}
	if !st.eligible {
		panic(fmt.Sprintf("clock: departed tid %d requested token", tid))
	}
	st.wanting = true
	return a.grantLocked()
}

// Release gives up the token and returns the next grant, if any.
// The releaser's clock is advanced by one instruction: the synchronization
// operation itself retires work (Kendo does the same), and without it two
// threads at equal clocks would livelock — the smaller tid would win the
// token forever.
func (a *Arbiter) Release(tid int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.holder != tid {
		panic(fmt.Sprintf("clock: tid %d released token held by %d", tid, a.holder))
	}
	a.holder = NoGrant
	st := a.state(tid)
	st.count++
	a.lastRelease = st.count
	if a.nShards > 0 {
		a.foldReleaseLocked(st, st.count)
	}
	if a.policy == PolicyRR {
		a.rrNext = tid + 1
	}
	return a.grantLocked()
}

// TransferTo hands the token directly from the current holder to tid,
// bypassing arbitration. The Consequence mutexUnlock path uses this when
// the thread it wakes is the next thread in the deterministic order
// (paper §4.1 footnote: the token must pass directly to the woken thread to
// avoid nondeterminism). tid must be eligible and not already waiting.
func (a *Arbiter) TransferTo(from, to int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.holder != from {
		panic(fmt.Sprintf("clock: transfer from %d but holder is %d", from, a.holder))
	}
	st := a.state(to)
	if !st.eligible {
		panic(fmt.Sprintf("clock: transfer to departed tid %d", to))
	}
	fromSt := a.state(from)
	fromSt.count++
	a.lastRelease = fromSt.count
	if a.nShards > 0 {
		a.foldReleaseLocked(fromSt, fromSt.count)
	}
	if a.policy == PolicyRR {
		a.rrNext = from + 1
	}
	a.holder = to
	st.wanting = false
	a.grants++
}

// NudgePast raises tid's clock to just above the smallest clock among the
// *other* eligible threads (and by at least one), removing tid from GMIC
// contention for one round — the Kendo polling-lock discipline: a loser
// "increments their logical clock by some value until they are no longer
// the GMIC". Returns the new clock and any follow-on grant.
func (a *Arbiter) NudgePast(tid int) (int64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tid)
	target := st.count + 1
	// Exceed the minimum clock among the other eligible threads.
	var minOther int64
	found := false
	for _, other := range a.threads {
		if other.tid == tid || !other.eligible {
			continue
		}
		if !found || other.count < minOther {
			minOther = other.count
			found = true
		}
	}
	if found && minOther+1 > target {
		target = minOther + 1
	}
	st.count = target
	return target, a.grantLocked()
}

// Depart removes tid from GMIC/ring consideration (the paper's
// clockDepart()) — used when a thread blocks on a lock queue or condition
// variable so that it cannot stall the global order. Departing while
// holding the token is allowed (Figure 7 calls clockDepart before
// releaseToken); the token itself is relinquished separately via Release.
// Returns the follow-on grant, if any.
func (a *Arbiter) Depart(tid int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tid)
	st.eligible = false
	st.wanting = false
	a.departs++
	return a.grantLocked()
}

// Arrive re-adds tid to consideration after a Depart. With fast-forward
// enabled, the thread's clock jumps to the clock of the last token releaser
// if that is larger (§3.5), preventing a long-blocked thread from pinning
// the global minimum. Returns the follow-on grant, if any.
func (a *Arbiter) Arrive(tid int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tid)
	st.eligible = true
	if target := a.ffTargetLocked(st); a.fastForward && target > st.count {
		a.ffJumps++
		a.ffAmount += target - st.count
		st.count = target
	}
	return a.grantLocked()
}

// ArriveWanting atomically re-admits tid to consideration (with
// fast-forward, as Arrive) and marks it as waiting for the token — on the
// thread's behalf, by whoever is waking it. A deterministic runtime must
// re-arm a sleeping thread this way: if the woken thread raced to call
// Request itself, whether it made the next grant round would depend on
// real-time scheduling (the hazard the paper's footnote 4 describes).
// Returns the follow-on grant, if any (none while the caller holds the
// token).
func (a *Arbiter) ArriveWanting(tid int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tid)
	st.eligible = true
	if target := a.ffTargetLocked(st); a.fastForward && target > st.count {
		a.ffJumps++
		a.ffAmount += target - st.count
		st.count = target
	}
	st.wanting = true
	return a.grantLocked()
}

// LastRelease returns the clock of the most recent token release. The
// sharded-arbitration invariant tests compare it against merged shard
// clocks: no shard clock may ever exceed it.
func (a *Arbiter) LastRelease() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastRelease
}

// Holder returns the tid currently holding the token, or NoGrant.
func (a *Arbiter) Holder() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.holder
}

// IsMinEligible reports whether tid currently has the smallest clock
// (ties by tid) among eligible threads — i.e., whether it is the GMIC.
// The adaptive overflow policy's rule 2 only applies to the GMIC thread:
// it is the one whose progress gates every waiter.
func (a *Arbiter) IsMinEligible(tid int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	self, ok := a.threads[tid]
	if !ok || !self.eligible {
		return false
	}
	for _, st := range a.threads {
		if !st.eligible || st.tid == tid {
			continue
		}
		if st.count < self.count || (st.count == self.count && st.tid < tid) {
			return false
		}
	}
	return true
}

// MinWantingAbove returns the smallest clock value among threads waiting
// for the token whose clock is strictly greater than `above`, and whether
// one exists. The adaptive counter-overflow policy (§3.2) uses this: a
// running GMIC thread sets its next overflow to fire just as its clock
// passes the next waiter's.
func (a *Arbiter) MinWantingAbove(above int64) (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	best := int64(0)
	found := false
	for _, st := range a.threads {
		if st.wanting && st.count > above && (!found || st.count < best) {
			best = st.count
			found = true
		}
	}
	return best, found
}

// state looks up tid or panics: calls against unknown threads are runtime
// bugs, not recoverable conditions.
func (a *Arbiter) state(tid int) *threadState {
	st, ok := a.threads[tid]
	if !ok {
		panic(fmt.Sprintf("clock: unknown tid %d", tid))
	}
	return st
}

// grantLocked evaluates the grant condition and assigns the token if some
// waiting thread qualifies. Returns the granted tid or NoGrant.
func (a *Arbiter) grantLocked() int {
	if a.holder != NoGrant {
		return NoGrant
	}
	switch a.policy {
	case PolicyIC:
		if a.nShards > 0 {
			return a.grantShardedLocked()
		}
		return a.grantICLocked()
	case PolicyRR:
		return a.grantRRLocked()
	default:
		panic("clock: unknown policy")
	}
}

// grantICLocked: grant to the unique eligible minimum of (count, tid) if it
// is waiting. If the minimum belongs to a running (non-waiting) thread, no
// waiter may proceed yet — the running thread could still synchronize at a
// lower clock.
func (a *Arbiter) grantICLocked() int {
	var min *threadState
	for _, tid := range a.order {
		st := a.threads[tid]
		if !st.eligible {
			continue
		}
		if min == nil || st.count < min.count || (st.count == min.count && st.tid < min.tid) {
			min = st
		}
	}
	if min == nil || !min.wanting {
		return NoGrant
	}
	a.holder = min.tid
	min.wanting = false
	a.grants++
	return min.tid
}

// grantRRLocked: the turn belongs to the first eligible thread at or after
// rrNext in cyclic tid order. Grant only if that specific thread is
// waiting; otherwise everyone waits for it to synchronize (this is exactly
// the round-robin pathology of Figure 1b).
func (a *Arbiter) grantRRLocked() int {
	if len(a.order) == 0 {
		return NoGrant
	}
	turn := a.turnLocked()
	if turn == nil || !turn.wanting {
		return NoGrant
	}
	a.holder = turn.tid
	turn.wanting = false
	a.grants++
	return turn.tid
}

// turnLocked finds the thread whose RR turn it is.
func (a *Arbiter) turnLocked() *threadState {
	i := sort.SearchInts(a.order, a.rrNext)
	n := len(a.order)
	for k := 0; k < n; k++ {
		st := a.threads[a.order[(i+k)%n]]
		if st.eligible {
			return st
		}
	}
	return nil
}

// Stats reports arbitration counters.
type Stats struct {
	Grants          int64
	Departs         int64
	FastForwards    int64
	FastForwardSkip int64 // total instructions skipped by fast-forwards
}

// DumpState renders the arbiter's thread table — holder, and each
// registered thread's clock, eligibility and wanting flags — for failure
// diagnostics (watchdog stall dumps, RuntimeError context). Safe to call
// from any goroutine at any time.
func (a *Arbiter) DumpState() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "arbiter: policy=%s holder=%d grants=%d departs=%d\n", a.policy, a.holder, a.grants, a.departs)
	if a.nShards > 0 {
		fmt.Fprintf(&b, "  shard clocks: %v\n", a.shardClocks)
	}
	for _, tid := range a.order {
		st := a.threads[tid]
		fmt.Fprintf(&b, "  t%-4d clock=%-12d eligible=%-5v wanting=%v", tid, st.count, st.eligible, st.wanting)
		if a.nShards > 0 {
			fmt.Fprintf(&b, " scope=%d", st.scope)
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// Stats returns a snapshot of arbitration counters.
func (a *Arbiter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{Grants: a.grants, Departs: a.departs, FastForwards: a.ffJumps, FastForwardSkip: a.ffAmount}
}
