package clock

import (
	"strings"
	"testing"
)

// The ShardSet is pure bookkeeping: it never grants. These tests pin the
// three behaviours the runtime's pricing depends on — locality detection,
// monotone shard clocks, and the merge-equalizes-everything edge rule.

func TestShardSetRejectsZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardSet(0) did not panic")
		}
	}()
	NewShardSet(0)
}

func TestShardSetGrantLocality(t *testing.T) {
	s := NewShardSet(2)
	// First grant on a shard is never local — nobody has held it.
	if s.NoteGrant(0, 5) {
		t.Error("first grant on shard 0 reported local")
	}
	// Same thread re-acquiring its own shard's sub-token: the cheap path.
	if !s.NoteGrant(0, 5) {
		t.Error("re-acquire by holder not reported local")
	}
	// A different thread taking the sub-token is a transfer.
	if s.NoteGrant(0, 7) {
		t.Error("handoff to a new thread reported local")
	}
	// Holder state is per shard: tid 5 still owns nothing on shard 1.
	if s.NoteGrant(1, 5) {
		t.Error("first grant on shard 1 reported local")
	}
	st := s.Stats()
	if st.Locals != 1 || st.Transfers != 3 {
		t.Errorf("locals/transfers = %d/%d, want 1/3", st.Locals, st.Transfers)
	}
	if st.Grants[0] != 3 || st.Grants[1] != 1 {
		t.Errorf("per-shard grants = %v, want [3 1]", st.Grants)
	}
}

func TestShardSetClocksMonotone(t *testing.T) {
	s := NewShardSet(2)
	s.NoteRelease(0, 100)
	s.NoteRelease(0, 60) // stale: must be ignored, not rolled back
	if got := s.Clock(0); got != 100 {
		t.Errorf("shard 0 clock = %d, want 100", got)
	}
	if got := s.Clock(1); got != 0 {
		t.Errorf("shard 1 clock = %d, want untouched 0", got)
	}
}

func TestShardSetMergeEqualizes(t *testing.T) {
	s := NewShardSet(3)
	s.NoteRelease(0, 10)
	s.NoteRelease(1, 50)
	s.NoteRelease(2, 30)
	if got := s.Merge(40); got != 50 {
		t.Fatalf("Merge(40) = %d, want max 50", got)
	}
	for sh := 0; sh < 3; sh++ {
		if got := s.Clock(sh); got != 50 {
			t.Errorf("after merge, shard %d clock = %d, want 50", sh, got)
		}
	}
	// The caller's clock can also be the max.
	if got := s.Merge(80); got != 80 {
		t.Errorf("Merge(80) = %d, want 80", got)
	}
	if st := s.Stats(); st.Merges != 2 {
		t.Errorf("merges = %d, want 2", st.Merges)
	}
}

func TestShardSetReleaseAll(t *testing.T) {
	s := NewShardSet(2)
	s.NoteRelease(1, 90)
	s.ReleaseAll(70)
	if got := s.Clock(0); got != 70 {
		t.Errorf("shard 0 clock = %d, want 70", got)
	}
	if got := s.Clock(1); got != 90 {
		t.Errorf("shard 1 clock = %d, want monotone 90", got)
	}
	if st := s.Stats(); st.Merges != 0 {
		t.Errorf("ReleaseAll counted a merge: %d", st.Merges)
	}
}

func TestShardSetStatsSnapshotIsolated(t *testing.T) {
	s := NewShardSet(1)
	s.NoteGrant(0, 3)
	st := s.Stats()
	st.Grants[0] = 999
	if got := s.Stats().Grants[0]; got != 1 {
		t.Errorf("Stats shares its Grants slice: %d", got)
	}
}

func TestShardSetDumpState(t *testing.T) {
	s := NewShardSet(2)
	s.NoteGrant(1, 4)
	s.NoteRelease(1, 12)
	d := s.DumpState()
	for _, want := range []string{"shards: n=2", "shard 0", "shard 1", "holder=4", "clock=12"} {
		if !strings.Contains(d, want) {
			t.Errorf("DumpState missing %q:\n%s", want, d)
		}
	}
}

// Shard clocks are derived from token-release clocks, so no shard clock —
// and no merged clock — may ever run ahead of the arbiter's last release.
// Drive an Arbiter and a ShardSet together the way the runtime does and
// check the invariant at every step.
func TestShardClocksNeverExceedArbiterRelease(t *testing.T) {
	a := New(PolicyIC, false)
	s := NewShardSet(4)
	const n = 4
	clocks := make([]int64, n)
	for tid := 0; tid < n; tid++ {
		a.Register(tid, 0)
	}
	// Deterministic pseudo-random walk: each thread advances by a tid- and
	// step-dependent stride, requests, and on grant releases into its shard.
	granted := a.Request(0)
	for step := 0; step < 200; step++ {
		tid := step % n
		if tid == granted {
			continue
		}
		stride := int64(1 + (step*7+tid*13)%29)
		clocks[tid] += stride
		g := a.Advance(tid, stride)
		if g == NoGrant {
			g = a.Request(tid)
		}
		for g != NoGrant {
			sh := g % s.Shards()
			s.NoteGrant(sh, g)
			s.NoteRelease(sh, clocks[g])
			next := a.Release(g)
			last := a.LastRelease()
			for i := 0; i < s.Shards(); i++ {
				if c := s.Clock(i); c > last {
					t.Fatalf("step %d: shard %d clock %d > arbiter last release %d", step, i, c, last)
				}
			}
			if merged := s.Merge(0); merged > last {
				t.Fatalf("step %d: merged clock %d > arbiter last release %d", step, merged, last)
			}
			g = next
		}
	}
}
