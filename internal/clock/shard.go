package clock

import (
	"fmt"
	"strings"
	"sync"
)

// ShardSet is the bookkeeping half of sharded token arbitration
// (docs/scheduler.md): lock objects are partitioned into N shards, each
// with its own sub-token holder and shard clock. The global grant order is
// still decided by the Arbiter — the ShardSet never grants anything — but
// it records, per shard, who last held the shard's sub-token and the
// release clock of the shard's last operation, so the runtime can tell a
// cheap shard-local re-acquire (the previous holder taking its own
// sub-token back) from a full cross-thread transfer, and can price the
// shard-clock merge that cross-shard edges (barriers, forks, joins, exits)
// must perform.
//
// All methods are called with the global token held (grant decisions are
// token-serialized), so the state transitions are deterministic; the mutex
// only protects concurrent *reads* from Stats/DumpState.
type ShardSet struct {
	mu      sync.Mutex
	holders []int   // last tid granted each shard's sub-token (NoGrant = never)
	clocks  []int64 // shard clock: release clock of the shard's last op
	grants  []int64 // per-shard grant counts

	locals    int64 // sub-token re-acquires by the shard's previous holder
	transfers int64 // sub-token handoffs to a different thread
	merges    int64 // cross-shard merges performed at edges
}

// NewShardSet creates a ShardSet with n shards (n ≥ 1).
func NewShardSet(n int) *ShardSet {
	if n < 1 {
		panic(fmt.Sprintf("clock: ShardSet needs at least 1 shard, got %d", n))
	}
	s := &ShardSet{
		holders: make([]int, n),
		clocks:  make([]int64, n),
		grants:  make([]int64, n),
	}
	for i := range s.holders {
		s.holders[i] = NoGrant
	}
	return s
}

// Shards returns the shard count.
func (s *ShardSet) Shards() int { return len(s.holders) }

// NoteGrant records that tid was granted shard sh's sub-token and reports
// whether this was a shard-local re-acquire (tid already held it — the
// cheap path priced at Model.ShardHandoff instead of TokenHandoff).
func (s *ShardSet) NoteGrant(sh, tid int) (local bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grants[sh]++
	if s.holders[sh] == tid {
		s.locals++
		return true
	}
	s.holders[sh] = tid
	s.transfers++
	return false
}

// NoteRelease publishes clk as shard sh's clock at sub-token release.
// Shard clocks are monotone: a stale clk (possible only through a runtime
// bug) is ignored rather than rolled back.
func (s *ShardSet) NoteRelease(sh int, clk int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if clk > s.clocks[sh] {
		s.clocks[sh] = clk
	}
}

// Merge performs a cross-shard edge: every shard clock is folded together
// with clk, the merged value is published back to all shards, and the
// merged clock is returned. After a Merge all shard clocks are equal —
// the edge (barrier, fork, join, exit) has synchronized the partitions.
func (s *ShardSet) Merge(clk int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.merges++
	max := clk
	for _, c := range s.clocks {
		if c > max {
			max = c
		}
	}
	for i := range s.clocks {
		s.clocks[i] = max
	}
	return max
}

// ReleaseAll publishes clk to every shard clock (monotone, like
// NoteRelease) without counting a merge: the release half of a cross-shard
// edge, whose merged clock every shard must observe.
func (s *ShardSet) ReleaseAll(clk int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.clocks {
		if clk > s.clocks[i] {
			s.clocks[i] = clk
		}
	}
}

// Clock returns shard sh's current shard clock.
func (s *ShardSet) Clock(sh int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clocks[sh]
}

// ShardStats is a snapshot of a ShardSet's counters.
type ShardStats struct {
	Shards    int
	Locals    int64   // shard-local sub-token re-acquires (cheap path)
	Transfers int64   // cross-thread sub-token handoffs
	Merges    int64   // cross-shard edge merges
	Grants    []int64 // per-shard grant counts
}

// Stats returns a snapshot of the shard counters.
func (s *ShardSet) Stats() ShardStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardStats{
		Shards:    len(s.holders),
		Locals:    s.locals,
		Transfers: s.transfers,
		Merges:    s.merges,
		Grants:    append([]int64(nil), s.grants...),
	}
}

// DumpState renders the per-shard table for failure diagnostics.
func (s *ShardSet) DumpState() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "shards: n=%d locals=%d transfers=%d merges=%d\n",
		len(s.holders), s.locals, s.transfers, s.merges)
	for i := range s.holders {
		fmt.Fprintf(&b, "  shard %-3d holder=%-4d clock=%-12d grants=%d\n",
			i, s.holders[i], s.clocks[i], s.grants[i])
	}
	return strings.TrimRight(b.String(), "\n")
}
