package clock

import (
	"fmt"
	"strings"
	"sync"
)

// ShardSet is the bookkeeping half of sharded token arbitration
// (docs/scheduler.md): lock objects are partitioned into N shards, each
// with its own sub-token holder and shard clock. Grant decisions live in
// the Arbiter (legacy single-domain, or the stage-2 sharded merge rule in
// shardgrant.go) — the ShardSet never grants anything — but it records,
// per shard, who last held the shard's sub-token and the release clock of
// the shard's last operation, so the runtime can tell a cheap shard-local
// re-acquire (the previous holder taking its own sub-token back) from a
// full cross-thread transfer, and can price the shard-clock merge that
// cross-shard edges (barriers, forks, joins, exits) must perform. Under
// per-shard granting it additionally carries each shard's virtual-time
// frontier — the anchor that lets operations in different shards overlap
// in modeled time — and per-shard busy accounting for the
// grant-parallelism metric.
//
// All methods are called with the global token held (grant decisions are
// token-serialized), so the state transitions are deterministic; the mutex
// only protects concurrent *reads* from Stats/DumpState.
type ShardSet struct {
	mu      sync.Mutex
	holders []int   // last tid granted each shard's sub-token (NoGrant = never)
	clocks  []int64 // shard clock: release clock of the shard's last op
	grants  []int64 // per-shard grant counts

	locals    int64 // sub-token re-acquires by the shard's previous holder
	transfers int64 // sub-token handoffs to a different thread
	merges    int64 // cross-shard merges performed at edges

	// Stage-2 (per-shard granting) virtual-time state, all written with
	// the machine token held:
	frontiers    []int64 // virtual ns at which each shard's last op released
	busy         []int64 // summed token-held virtual ns per shard
	globalBusyNS int64   // token-held virtual ns of cross-shard edges
}

// NewShardSet creates a ShardSet with n shards (n ≥ 1).
func NewShardSet(n int) *ShardSet {
	if n < 1 {
		panic(fmt.Sprintf("clock: ShardSet needs at least 1 shard, got %d", n))
	}
	s := &ShardSet{
		holders:   make([]int, n),
		clocks:    make([]int64, n),
		grants:    make([]int64, n),
		frontiers: make([]int64, n),
		busy:      make([]int64, n),
	}
	for i := range s.holders {
		s.holders[i] = NoGrant
	}
	return s
}

// Shards returns the shard count.
func (s *ShardSet) Shards() int { return len(s.holders) }

// NoteGrant records that tid was granted shard sh's sub-token and reports
// whether this was a shard-local re-acquire (tid already held it — the
// cheap path priced at Model.ShardHandoff instead of TokenHandoff).
func (s *ShardSet) NoteGrant(sh, tid int) (local bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grants[sh]++
	if s.holders[sh] == tid {
		s.locals++
		return true
	}
	s.holders[sh] = tid
	s.transfers++
	return false
}

// NoteRelease publishes clk as shard sh's clock at sub-token release.
// Shard clocks are monotone: a stale clk (possible only through a runtime
// bug) is ignored rather than rolled back.
func (s *ShardSet) NoteRelease(sh int, clk int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if clk > s.clocks[sh] {
		s.clocks[sh] = clk
	}
}

// Merge performs a cross-shard edge: every shard clock is folded together
// with clk, the merged value is published back to all shards, and the
// merged clock is returned. After a Merge all shard clocks are equal —
// the edge (barrier, fork, join, exit) has synchronized the partitions.
func (s *ShardSet) Merge(clk int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.merges++
	max := clk
	for _, c := range s.clocks {
		if c > max {
			max = c
		}
	}
	for i := range s.clocks {
		s.clocks[i] = max
	}
	return max
}

// ReleaseAll publishes clk to every shard clock (monotone, like
// NoteRelease) without counting a merge: the release half of a cross-shard
// edge, whose merged clock every shard must observe.
func (s *ShardSet) ReleaseAll(clk int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.clocks {
		if clk > s.clocks[i] {
			s.clocks[i] = clk
		}
	}
}

// Clock returns shard sh's current shard clock.
func (s *ShardSet) Clock(sh int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clocks[sh]
}

// SetAllHolders marks tid as the holder of every shard's sub-token — a
// cross-shard edge engages all partitions, so the next single-shard op on
// any shard by a different thread is a transfer, not a local re-acquire.
func (s *ShardSet) SetAllHolders(tid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.holders {
		s.holders[i] = tid
	}
}

// PublishFrontier records that scope's last operation released at virtual
// time ns (scope GlobalScope publishes to every shard). Frontiers are
// monotone per shard: under per-shard granting every op in a shard is
// anchored at or after the shard's previous frontier.
func (s *ShardSet) PublishFrontier(scope int, ns int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if scope != GlobalScope {
		if ns > s.frontiers[scope] {
			s.frontiers[scope] = ns
		}
		return
	}
	for i := range s.frontiers {
		if ns > s.frontiers[i] {
			s.frontiers[i] = ns
		}
	}
}

// Frontier returns scope's virtual-time anchor: the frontier of the named
// shard, or the maximum over all shards for GlobalScope. An operation
// entering scope may not begin its token-held work before this instant —
// its scope's sub-token is virtually busy until then.
func (s *ShardSet) Frontier(scope int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if scope != GlobalScope {
		return s.frontiers[scope]
	}
	var max int64
	for _, f := range s.frontiers {
		if f > max {
			max = f
		}
	}
	return max
}

// AddBusy accrues ns of token-held work to scope (GlobalScope accrues to
// the cross-shard bucket). The observability layer divides these by wall
// time for per-shard arbiter utilization and the grant-parallelism metric.
func (s *ShardSet) AddBusy(scope int, ns int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if scope == GlobalScope {
		s.globalBusyNS += ns
		return
	}
	s.busy[scope] += ns
}

// BusyNS returns each shard's accrued token-held virtual ns and the
// cross-shard edges' bucket.
func (s *ShardSet) BusyNS() ([]int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.busy...), s.globalBusyNS
}

// FrontierNS returns shard sh's current frontier (for metrics).
func (s *ShardSet) FrontierNS(sh int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frontiers[sh]
}

// ShardStats is a snapshot of a ShardSet's counters.
type ShardStats struct {
	Shards    int
	Locals    int64   // shard-local sub-token re-acquires (cheap path)
	Transfers int64   // cross-thread sub-token handoffs
	Merges    int64   // cross-shard edge merges
	Grants    []int64 // per-shard grant counts
}

// Stats returns a snapshot of the shard counters.
func (s *ShardSet) Stats() ShardStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardStats{
		Shards:    len(s.holders),
		Locals:    s.locals,
		Transfers: s.transfers,
		Merges:    s.merges,
		Grants:    append([]int64(nil), s.grants...),
	}
}

// DumpState renders the per-shard table for failure diagnostics.
func (s *ShardSet) DumpState() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "shards: n=%d locals=%d transfers=%d merges=%d\n",
		len(s.holders), s.locals, s.transfers, s.merges)
	for i := range s.holders {
		fmt.Fprintf(&b, "  shard %-3d holder=%-4d clock=%-12d grants=%d\n",
			i, s.holders[i], s.clocks[i], s.grants[i])
	}
	return strings.TrimRight(b.String(), "\n")
}
