package clock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestICGrantsGlobalMinimum(t *testing.T) {
	a := New(PolicyIC, false)
	a.Register(0, 100)
	a.Register(1, 50)
	a.Register(2, 75)

	// Thread 0 requests at clock 100; threads 1 and 2 are below it.
	if g := a.Request(0); g != NoGrant {
		t.Fatalf("granted %d while lower clocks exist", g)
	}
	// Thread 2 advances past 100: still blocked by thread 1 at 50.
	if g := a.Advance(2, 60); g != NoGrant {
		t.Fatalf("granted %d while thread 1 is at 50", g)
	}
	// Thread 1 advances to 120: thread 0 (clock 100) is now the minimum.
	if g := a.Advance(1, 70); g != 0 {
		t.Fatalf("grant = %d, want 0", g)
	}
	if a.Holder() != 0 {
		t.Fatalf("holder = %d, want 0", a.Holder())
	}
}

func TestICTieBreaksByTid(t *testing.T) {
	a := New(PolicyIC, false)
	a.Register(3, 10)
	a.Register(1, 10)
	a.Register(2, 99)
	a.Request(3)
	if g := a.Request(1); g != 1 {
		t.Fatalf("equal clocks: grant = %d, want tid 1", g)
	}
	// After 1 releases, 3 becomes the minimum and gets the queued grant.
	if g := a.Release(1); g != 3 {
		t.Fatalf("after release grant = %d, want 3", g)
	}
}

func TestICImmediateGrantWhenAlreadyMinimum(t *testing.T) {
	a := New(PolicyIC, false)
	a.Register(0, 5)
	a.Register(1, 10)
	if g := a.Request(0); g != 0 {
		t.Fatalf("minimum requester not granted immediately: %d", g)
	}
}

func TestRRCyclesInTidOrder(t *testing.T) {
	a := New(PolicyRR, false)
	for tid := 0; tid < 3; tid++ {
		a.Register(tid, 0)
	}
	// All three request "simultaneously": grants must come 0,1,2,0,...
	if g := a.Request(1); g != NoGrant {
		t.Fatalf("tid 1 granted out of turn: %d", g)
	}
	if g := a.Request(2); g != NoGrant {
		t.Fatalf("tid 2 granted out of turn: %d", g)
	}
	if g := a.Request(0); g != 0 {
		t.Fatalf("tid 0's turn: grant = %d", g)
	}
	if g := a.Release(0); g != 1 {
		t.Fatalf("next turn grant = %d, want 1", g)
	}
	if g := a.Release(1); g != 2 {
		t.Fatalf("next turn grant = %d, want 2", g)
	}
	if g := a.Release(2); g != NoGrant {
		t.Fatalf("nobody waiting but grant = %d", g)
	}
	// Ring wrapped back to 0.
	if g := a.Request(0); g != 0 {
		t.Fatalf("wrap-around grant = %d, want 0", g)
	}
	a.Release(0)
}

func TestRRWaitsForTurnHolder(t *testing.T) {
	// The Figure 1b pathology: the ring waits on an eligible thread that
	// has not requested, even though others are ready.
	a := New(PolicyRR, false)
	a.Register(0, 0)
	a.Register(1, 0)
	if g := a.Request(1); g != NoGrant {
		t.Fatal("tid 1 must wait for tid 0's turn")
	}
	// Thread 0 departs (blocks on a lock): ring skips it.
	if g := a.Depart(0); g != 1 {
		t.Fatalf("depart should unblock tid 1: grant = %d", g)
	}
}

func TestDepartRemovesFromConsideration(t *testing.T) {
	a := New(PolicyIC, false)
	a.Register(0, 10)
	a.Register(1, 1000)
	// Thread 1 requests; thread 0 is lower but departs (blocked on lock).
	if g := a.Request(1); g != NoGrant {
		t.Fatal("premature grant")
	}
	if g := a.Depart(0); g != 1 {
		t.Fatalf("grant after depart = %d, want 1", g)
	}
	a.Release(1)
	// Thread 0 arrives back with its low clock: it is the minimum again.
	a.Arrive(0)
	if g := a.Request(0); g != 0 {
		t.Fatal("arrived thread with min clock not granted")
	}
}

func TestFastForward(t *testing.T) {
	a := New(PolicyIC, true)
	a.Register(0, 10)
	a.Register(1, 500)
	a.Depart(0)
	// Thread 1 takes and releases the token at clock 500.
	if g := a.Request(1); g != 1 {
		t.Fatal("sole eligible thread not granted")
	}
	a.Release(1)
	// Thread 0 arrives: fast-forward lifts it to the releaser's clock
	// (501: release itself retires one instruction).
	a.Arrive(0)
	if c := a.Count(0); c != 501 {
		t.Fatalf("fast-forwarded count = %d, want 501", c)
	}
	st := a.Stats()
	if st.FastForwards != 1 || st.FastForwardSkip != 491 {
		t.Errorf("ff stats = %+v", st)
	}
	// Without fast-forward the clock stays put.
	b := New(PolicyIC, false)
	b.Register(0, 10)
	b.Register(1, 500)
	b.Depart(0)
	b.Request(1)
	b.Release(1)
	b.Arrive(0)
	if c := b.Count(0); c != 10 {
		t.Fatalf("count with ff disabled = %d, want 10", c)
	}
}

func TestDepartWhileHoldingToken(t *testing.T) {
	// Figure 7's failed-lock path: clockDepart while still holding the
	// token, then release. The release grant must skip the departed thread.
	a := New(PolicyIC, false)
	a.Register(0, 5)
	a.Register(1, 100)
	if g := a.Request(0); g != 0 {
		t.Fatal("min requester not granted")
	}
	a.Request(1)
	a.Depart(0) // departing holder: no grant (token still held)
	if g := a.Release(0); g != 1 {
		t.Fatalf("grant after departed holder released = %d, want 1", g)
	}
}

func TestReleaseAdvancesClock(t *testing.T) {
	// Two threads at equal clocks alternate instead of livelocking.
	a := New(PolicyIC, false)
	a.Register(0, 10)
	a.Register(1, 10)
	if g := a.Request(0); g != 0 {
		t.Fatal("tid 0 should win the tie")
	}
	a.Request(1)
	if g := a.Release(0); g != 1 {
		t.Fatalf("after release, tid 1 must win (tid 0 advanced): grant = %d", g)
	}
	if c := a.Count(0); c != 11 {
		t.Errorf("releaser clock = %d, want 11", c)
	}
}

func TestTransferTo(t *testing.T) {
	a := New(PolicyIC, false)
	a.Register(0, 0)
	a.Register(1, 5)
	a.Request(0)
	a.TransferTo(0, 1)
	if a.Holder() != 1 {
		t.Fatalf("holder = %d after transfer", a.Holder())
	}
	if g := a.Release(1); g != NoGrant {
		t.Fatal("spurious grant")
	}
}

func TestUnregisterUnblocks(t *testing.T) {
	a := New(PolicyIC, false)
	a.Register(0, 1)
	a.Register(1, 100)
	if g := a.Request(1); g != NoGrant {
		t.Fatal("premature grant")
	}
	if g := a.Unregister(0); g != 1 {
		t.Fatalf("grant after unregister = %d, want 1", g)
	}
}

func TestMinWantingAbove(t *testing.T) {
	a := New(PolicyIC, false)
	a.Register(0, 10)
	a.Register(1, 100)
	a.Register(2, 200)
	a.Request(1)
	a.Request(2)
	if v, ok := a.MinWantingAbove(10); !ok || v != 100 {
		t.Errorf("MinWantingAbove(10) = %d,%v", v, ok)
	}
	if v, ok := a.MinWantingAbove(150); !ok || v != 200 {
		t.Errorf("MinWantingAbove(150) = %d,%v", v, ok)
	}
	if _, ok := a.MinWantingAbove(300); ok {
		t.Error("MinWantingAbove(300) should find nothing")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	cases := []struct {
		name string
		f    func(a *Arbiter)
	}{
		{"double register", func(a *Arbiter) { a.Register(0, 0) }},
		{"unknown advance", func(a *Arbiter) { a.Advance(99, 1) }},
		{"negative advance", func(a *Arbiter) { a.Advance(0, -1) }},
		{"release not holder", func(a *Arbiter) { a.Release(0) }},
		{"request while holding", func(a *Arbiter) { a.Request(0); a.Request(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := New(PolicyIC, false)
			a.Register(0, 0)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.f(a)
		})
	}
}

// Property: under IC, for any interleaving of advances, the sequence of
// grants is exactly the sequence produced by repeatedly picking the
// lexicographically smallest (count, tid) among waiting threads when all
// running threads' counts exceed it.
func TestPropICGrantOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(PolicyIC, false)
		const n = 5
		counts := make([]int64, n)
		for tid := 0; tid < n; tid++ {
			counts[tid] = int64(rng.Intn(100))
			a.Register(tid, counts[tid])
		}
		// All threads request; they must be granted (processing release
		// immediately) in sorted (count, tid) order.
		type key struct {
			c   int64
			tid int
		}
		var want []key
		for tid := 0; tid < n; tid++ {
			want = append(want, key{counts[tid], tid})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].c != want[j].c {
				return want[i].c < want[j].c
			}
			return want[i].tid < want[j].tid
		})
		// Each thread requests once, and exits (unregisters) after its
		// grant — a still-registered thread below a waiter's clock
		// correctly blocks that waiter, so exit is what lets the full
		// order drain.
		var got []int
		grant := NoGrant
		drain := func() {
			for grant != NoGrant {
				got = append(got, grant)
				g1 := a.Release(grant)
				g2 := a.Unregister(grant)
				grant = g1
				if g2 != NoGrant {
					grant = g2
				}
			}
		}
		for tid := 0; tid < n; tid++ {
			if g := a.Request(tid); g != NoGrant {
				grant = g
			}
			drain()
		}
		if len(got) != n {
			return false
		}
		for i, tid := range got {
			if want[i].tid != tid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RR grants visit every requesting thread exactly once per cycle,
// in ascending tid order starting from the ring position.
func TestPropRRFairness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		a := New(PolicyRR, false)
		for tid := 0; tid < n; tid++ {
			a.Register(tid, 0)
		}
		// Everybody requests in random order; grants must be 0..n-1.
		perm := rng.Perm(n)
		grant := NoGrant
		for _, tid := range perm {
			if g := a.Request(tid); g != NoGrant {
				grant = g
			}
		}
		var got []int
		for grant != NoGrant {
			got = append(got, grant)
			grant = a.Release(grant)
		}
		if len(got) != n {
			return false
		}
		for i, tid := range got {
			if tid != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOverflowAdaptive(t *testing.T) {
	a := New(PolicyIC, false)
	a.Register(0, 0)
	a.Register(1, 300)
	a.Request(1) // waiter at 300

	o := NewOverflow(100, true)
	// Rule 2: fire just past the waiter's clock.
	if iv := o.Next(0, 0, a); iv != 301 {
		t.Errorf("interval = %d, want 301", iv)
	}
	// Past all waiters: rule 3 doubles.
	if iv := o.Next(0, 400, a); iv != 100 {
		t.Errorf("first backoff interval = %d, want 100", iv)
	}
	if iv := o.Next(0, 500, a); iv != 200 {
		t.Errorf("doubled interval = %d, want 200", iv)
	}
	o.ResetChunk()
	if iv := o.Next(0, 600, a); iv != 100 {
		t.Errorf("interval after chunk reset = %d, want 100", iv)
	}
}

func TestOverflowStatic(t *testing.T) {
	a := New(PolicyIC, false)
	a.Register(0, 0)
	o := NewOverflow(0, false)
	if iv := o.Next(0, 0, a); iv != DefaultOverflowBase {
		t.Errorf("static interval = %d", iv)
	}
	if iv := o.Next(0, 1<<30, a); iv != DefaultOverflowBase {
		t.Errorf("static interval drifted: %d", iv)
	}
}
