package clock

import "testing"

// The overflow perturb hook may shrink intervals but the result is clamped
// to >= 1: a non-positive interval would stall instruction retirement.
func TestOverflowPerturbClamped(t *testing.T) {
	o := NewOverflow(100, false)
	a := New(PolicyIC, false)

	o.SetPerturb(func(iv int64) int64 { return iv / 2 })
	if got := o.Next(0, 0, a); got != 50 {
		t.Fatalf("Next = %d, want 50 (perturb halves)", got)
	}

	o.SetPerturb(func(iv int64) int64 { return 0 })
	if got := o.Next(0, 0, a); got != 1 {
		t.Fatalf("Next = %d, want clamp to 1 for zero perturb", got)
	}
	o.SetPerturb(func(iv int64) int64 { return -500 })
	if got := o.Next(0, 0, a); got != 1 {
		t.Fatalf("Next = %d, want clamp to 1 for negative perturb", got)
	}

	o.SetPerturb(nil)
	if got := o.Next(0, 0, a); got != 100 {
		t.Fatalf("Next = %d, want 100 after removing the perturb", got)
	}
}
