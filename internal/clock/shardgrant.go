package clock

import "fmt"

// Sharded granting (stage 2, docs/scheduler.md): the arbiter itself is
// partitioned into per-shard grant domains. Every request names a scope —
// one shard for shardable operations (mutex and condition ops, exits in
// the exiting thread's domain, joins in the child's domain) or GlobalScope
// for true cross-shard edges (spawn, barrier rendezvous, forced commits).
// Each shard keeps its own release clock, blocked threads fast-forward
// only to their scope's shard clock instead of the global last release,
// and the grant decision orders candidates by the merge rule
//
//	(count, shard id, tid)   — lexicographic, GlobalScope sorting last —
//
// where count is the requester's logical clock after fast-forwarding into
// its shard's clock domain. The rule is a total order over deterministic
// inputs, so the interleave of the per-shard grant sequences is
// replay-stable by construction: host timing can delay a grant but never
// change which thread is granted next.
//
// The free-runner gate makes grant *timing* irrelevant to grant *order*:
// a candidate is granted only when no eligible non-wanting thread could
// still submit a request that the merge rule would place earlier. A
// free-running thread x with clock c_x can at best request shard 0 at
// key (c_x, 0, x.tid) — clocks are monotone — so the candidate (c, k, w)
// is held back exactly when c_x < c, or c_x == c and (k > 0 or
// x.tid < w.tid). This is the sharded generalization of the legacy GMIC
// condition "the eligible minimum must be the one wanting".

// GlobalScope is the request scope of a cross-shard edge: the operation
// rendezvouses with every shard, and its grant key sorts after any
// single-shard request at the same clock.
const GlobalScope = -1

// keyGlobal is GlobalScope's position in the merge rule's shard-id slot:
// larger than any real shard index, so cross-shard edges yield to
// single-shard requests at equal clocks.
const keyGlobal = 1 << 30

// EnableShardGrants switches the arbiter to sharded granting with n
// shards. Must be called before any thread registers, and only under
// PolicyIC (round-robin has no clock domain to shard).
func (a *Arbiter) EnableShardGrants(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.policy != PolicyIC {
		panic("clock: sharded granting requires PolicyIC")
	}
	if n < 2 {
		panic(fmt.Sprintf("clock: sharded granting needs at least 2 shards, got %d", n))
	}
	if len(a.threads) > 0 {
		panic("clock: EnableShardGrants after threads registered")
	}
	a.nShards = n
	a.shardClocks = make([]int64, n)
}

// ShardGrants reports whether sharded granting is enabled.
func (a *Arbiter) ShardGrants() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nShards > 0
}

// RequestSharded is Request with an explicit scope: shard in [0, n) for a
// single-shard operation, or GlobalScope for a cross-shard edge. The scope
// sticks to the thread — Depart/ArriveWanting re-arms and fast-forwards
// against the same scope — until the next RequestSharded or SetScope.
func (a *Arbiter) RequestSharded(tid, shard int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.checkScope(shard)
	st := a.state(tid)
	if a.holder == tid {
		panic(fmt.Sprintf("clock: tid %d requested token it already holds", tid))
	}
	if !st.eligible {
		panic(fmt.Sprintf("clock: departed tid %d requested token", tid))
	}
	st.scope = shard
	st.wanting = true
	return a.grantLocked()
}

// SetScope retargets a blocked thread's request scope. The exit path uses
// it to point a parked joiner at the exiting child's actual domain shard
// (unknown when the joiner requested) before re-arming it; the call is
// token-serialized, so the retarget is deterministic.
func (a *Arbiter) SetScope(tid, shard int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.checkScope(shard)
	a.state(tid).scope = shard
}

// Scope returns tid's current request scope (meaningful only under
// sharded granting). The runtime reads it when routing a wake to compute
// the target's virtual-time anchor.
func (a *Arbiter) Scope(tid int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state(tid).scope
}

// ShardClock returns shard sh's release clock under sharded granting.
func (a *Arbiter) ShardClock(sh int) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shardClocks[sh]
}

// checkScope panics on a scope outside [0, n) ∪ {GlobalScope}.
func (a *Arbiter) checkScope(shard int) {
	if a.nShards == 0 {
		panic("clock: scoped call without EnableShardGrants")
	}
	if shard != GlobalScope && (shard < 0 || shard >= a.nShards) {
		panic(fmt.Sprintf("clock: scope %d out of range (%d shards)", shard, a.nShards))
	}
}

// foldReleaseLocked publishes a release at clock clk into the releaser's
// scope: a single-shard release overwrites its shard's clock (the shard's
// "last release", mirroring the legacy lastRelease semantics per domain);
// a global edge folds every shard clock and the release together to their
// maximum — the rendezvous all partitions observe.
func (a *Arbiter) foldReleaseLocked(st *threadState, clk int64) {
	if st.scope != GlobalScope {
		a.shardClocks[st.scope] = clk
		return
	}
	max := clk
	for _, c := range a.shardClocks {
		if c > max {
			max = c
		}
	}
	for i := range a.shardClocks {
		a.shardClocks[i] = max
	}
}

// ffTargetLocked returns the clock a thread arriving back into
// consideration fast-forwards to: its scope's shard clock, or the maximum
// over all shards for a global edge. Per-shard targets are what lets two
// blocked threads in different shards resume without dragging each other's
// clock domain forward.
func (a *Arbiter) ffTargetLocked(st *threadState) int64 {
	if a.nShards == 0 {
		return a.lastRelease
	}
	if st.scope != GlobalScope {
		return a.shardClocks[st.scope]
	}
	var max int64
	for _, c := range a.shardClocks {
		if c > max {
			max = c
		}
	}
	return max
}

// shardKey returns st's shard-id slot in the merge rule.
func shardKey(st *threadState) int {
	if st.scope == GlobalScope {
		return keyGlobal
	}
	return st.scope
}

// mergeLess orders two wanting threads by the merge rule
// (count, shard id, tid).
func mergeLess(x, y *threadState) bool {
	if x.count != y.count {
		return x.count < y.count
	}
	if kx, ky := shardKey(x), shardKey(y); kx != ky {
		return kx < ky
	}
	return x.tid < y.tid
}

// grantShardedLocked evaluates the sharded grant condition: pick the
// merge-rule minimum among wanting threads, then apply the free-runner
// gate (see the package comment above) so that the grant order is
// independent of when free-running threads publish their clocks.
func (a *Arbiter) grantShardedLocked() int {
	var cand *threadState
	for _, tid := range a.order {
		st := a.threads[tid]
		if !st.eligible || !st.wanting {
			continue
		}
		if cand == nil || mergeLess(st, cand) {
			cand = st
		}
	}
	if cand == nil {
		return NoGrant
	}
	ck := shardKey(cand)
	for _, tid := range a.order {
		st := a.threads[tid]
		if !st.eligible || st.wanting || st.tid == cand.tid {
			continue
		}
		// st free-runs: its earliest possible future request key is
		// (st.count, 0, st.tid). Hold the candidate back if that key could
		// precede the candidate's — clocks only grow, so the check is exact.
		if st.count < cand.count || (st.count == cand.count && (ck > 0 || st.tid < cand.tid)) {
			return NoGrant
		}
	}
	a.holder = cand.tid
	cand.wanting = false
	a.grants++
	return cand.tid
}
