package clock

// DefaultOverflowBase is the conservative initial overflow interval from
// §3.2: 5,000 retired instructions.
const DefaultOverflowBase = 5000

// Overflow computes the performance-counter overflow schedule for one
// thread. In the paper, a thread's clock progress is published to waiters
// via counter-overflow interrupts; the interval is a trade-off between
// notification latency (waiters learn late that they are the new GMIC) and
// interrupt overhead. The adaptive policy (§3.2) applies three rules:
//
//  1. at each chunk start the interval resets to a conservative base;
//  2. if some thread is waiting for the token at a clock above ours, the
//     next overflow fires exactly when our clock passes theirs;
//  3. otherwise the interval doubles.
//
// Overflow frequency affects only real-time latency and overhead, never
// logical ordering, so adaptation requires no determinism argument.
type Overflow struct {
	base     int64
	adaptive bool
	interval int64
	// perturb, when set, rewrites each interval Next returns (chaos
	// injection: forced shrinkage). Results are clamped to >= 1 — a
	// non-positive interval would stall instruction retirement. Safe to
	// perturb freely because overflow frequency affects only latency and
	// overhead, never logical ordering.
	perturb func(interval int64) int64
}

// NewOverflow creates a schedule with the given base interval (0 means
// DefaultOverflowBase).
func NewOverflow(base int64, adaptive bool) *Overflow {
	if base <= 0 {
		base = DefaultOverflowBase
	}
	return &Overflow{base: base, adaptive: adaptive, interval: base}
}

// ResetChunk applies rule 1 at the start of each chunk.
func (o *Overflow) ResetChunk() { o.interval = o.base }

// SetPerturb installs an interval rewriter applied to every value Next
// returns (nil removes it). The chaos subsystem uses this to force
// adversarial overflow shrinkage.
func (o *Overflow) SetPerturb(f func(interval int64) int64) { o.perturb = f }

// Next returns how many instructions may retire before the next overflow,
// given the thread's identity, current clock and the arbiter's state.
func (o *Overflow) Next(tid int, cur int64, a *Arbiter) int64 {
	return o.applyPerturb(o.next(tid, cur, a))
}

// applyPerturb runs the installed rewriter, clamping to >= 1.
func (o *Overflow) applyPerturb(iv int64) int64 {
	if o.perturb == nil {
		return iv
	}
	if p := o.perturb(iv); p >= 1 {
		return p
	}
	return 1
}

func (o *Overflow) next(tid int, cur int64, a *Arbiter) int64 {
	if !o.adaptive {
		return o.base
	}
	waiterAbove := false
	if w, ok := a.MinWantingAbove(cur); ok {
		if a.IsMinEligible(tid) {
			// Rule 2: we are the GMIC — fire just as our clock exceeds the
			// next waiter's.
			return w - cur + 1
		}
		waiterAbove = true
	}
	// Rule 3: back off. Growth is capped tightly: a waiter that appears
	// *after* we armed the counter cannot be notified before the armed
	// overflow fires, so the cap is exactly the worst-case notification
	// latency we impose on late-arriving waiters. When a waiter already
	// exists above us (we will gate it once the threads below us pass it),
	// the bound is tighter still.
	iv := o.interval
	cap := o.base * 4
	if waiterAbove {
		cap = o.base * 2
	}
	if iv > cap {
		iv = cap
	}
	if o.interval < o.base*4 {
		o.interval *= 2
	}
	return iv
}
