package clock

import "testing"

// newSharded builds an arbiter with sharded granting over n shards and
// the given (tid, start-clock) registrations.
func newSharded(t *testing.T, n int, starts map[int]int64) *Arbiter {
	t.Helper()
	a := New(PolicyIC, false)
	a.EnableShardGrants(n)
	for tid, c := range starts {
		a.Register(tid, c)
	}
	return a
}

// The merge rule (count, shard id, tid): at equal clocks the lower shard
// id wins, and within a shard the lower tid.
func TestMergeRuleShardThenTid(t *testing.T) {
	a := newSharded(t, 4, map[int]int64{0: 10, 1: 10, 2: 10})
	// tid 2 wants shard 3, tid 0 wants shard 1 — same clock: shard 1 first.
	if g := a.RequestSharded(2, 3); g != NoGrant {
		t.Fatalf("granted %d while tid 0 and 1 free-run at the same clock", g)
	}
	if g := a.RequestSharded(0, 1); g != NoGrant {
		t.Fatalf("granted %d while tid 1 free-runs at the same clock", g)
	}
	// tid 1 requests too: all three wanting, no free runners left.
	// (10, 1, 0) < (10, 1, 1) < (10, 3, 2).
	if g := a.RequestSharded(1, 1); g != 0 {
		t.Fatalf("grant = %d, want tid 0 (lowest shard, lowest tid)", g)
	}
}

// A cross-shard edge (GlobalScope) yields to any single-shard request at
// the same clock: keyGlobal sorts last in the shard-id slot.
func TestMergeRuleGlobalSortsLast(t *testing.T) {
	a := newSharded(t, 2, map[int]int64{0: 5, 1: 5})
	if g := a.RequestSharded(0, GlobalScope); g != NoGrant {
		t.Fatalf("granted %d while tid 1 free-runs at the same clock", g)
	}
	// Same clock, shard 1 vs global: the shard request wins despite the
	// higher tid.
	if g := a.RequestSharded(1, 1); g != 1 {
		t.Fatalf("grant = %d, want tid 1 (single-shard beats global at equal clocks)", g)
	}
}

// The free-runner gate under sharding: a candidate whose key is
// (c, k, tid) must be held back while an eligible non-wanting thread
// could still submit an earlier key — strictly lower clock, or the same
// clock when the candidate is not already the shard-0/lowest-tid minimum.
func TestShardedFreeRunnerGate(t *testing.T) {
	a := newSharded(t, 2, map[int]int64{0: 20, 1: 10})
	// tid 0 wants shard 0 at clock 20; tid 1 free-runs at 10: hold.
	if g := a.RequestSharded(0, 0); g != NoGrant {
		t.Fatalf("granted %d across a lower free-running clock", g)
	}
	// tid 1 advances to 30 (above the candidate): now the gate opens.
	if g := a.Advance(1, 20); g != 0 {
		t.Fatalf("grant = %d, want 0 after the free runner passed it", g)
	}

	// Equal clocks: a free runner with a lower tid can still pre-empt
	// shard 0 at the same count, so the candidate waits.
	b := newSharded(t, 2, map[int]int64{3: 15, 1: 15})
	if g := b.RequestSharded(3, 0); g != NoGrant {
		t.Fatalf("granted %d with an equal-clock lower-tid free runner", g)
	}
	// But a candidate on shard 0 with the lower tid is unbeatable at
	// equal clocks — (15, 0, 1) is the earliest possible key.
	c := newSharded(t, 2, map[int]int64{3: 15, 1: 15})
	if g := c.RequestSharded(1, 0); g != 1 {
		t.Fatalf("grant = %d, want 1 (earliest possible merge key)", g)
	}
}

// Per-shard release clocks: a single-shard release moves only its own
// shard's clock; a global release folds every shard to the maximum.
func TestShardClockFolding(t *testing.T) {
	a := newSharded(t, 3, map[int]int64{0: 10})
	if g := a.RequestSharded(0, 1); g != 0 {
		t.Fatalf("grant = %d, want 0", g)
	}
	a.Advance(0, 5) // clock 15; Release retires one op, publishing 16
	a.Release(0)
	if c := a.ShardClock(1); c != 16 {
		t.Fatalf("shard 1 clock = %d, want 16", c)
	}
	for _, sh := range []int{0, 2} {
		if c := a.ShardClock(sh); c != 0 {
			t.Fatalf("shard %d clock = %d, want 0 (untouched by a shard-1 release)", sh, c)
		}
	}
	// Global edge: fold everything to the max.
	if g := a.RequestSharded(0, GlobalScope); g != 0 {
		t.Fatalf("grant = %d, want 0", g)
	}
	a.Advance(0, 10) // clock 26, published as 27
	a.Release(0)
	for sh := 0; sh < 3; sh++ {
		if c := a.ShardClock(sh); c != 27 {
			t.Fatalf("shard %d clock = %d, want 27 after the global fold", sh, c)
		}
	}
}

// SetScope retargets a parked thread's pending request — the exit path
// uses it to move a joiner into the child's domain shard — and the next
// grant follows the new scope.
func TestSetScopeRetargetsJoiner(t *testing.T) {
	a := newSharded(t, 2, map[int]int64{0: 10, 1: 10})
	if g := a.RequestSharded(0, 1); g != NoGrant {
		t.Fatalf("granted %d while tid 1 free-runs at the same clock", g)
	}
	// Retarget tid 0's request to shard 0: its key drops from (10,1,0)
	// to (10,0,0), the unbeatable minimum, so the grant fires on the
	// next evaluation (tid 1's own request).
	a.SetScope(0, 0)
	if g := a.RequestSharded(1, 1); g != 0 {
		t.Fatalf("grant = %d, want the retargeted tid 0", g)
	}
	if sc := a.Scope(0); sc != 0 {
		t.Fatalf("Scope(0) = %d, want 0", sc)
	}
}

// Blocked threads fast-forward only to their scope's shard clock, not the
// global maximum — the point of per-shard clock domains.
func TestArriveFastForwardsToShardClock(t *testing.T) {
	a := New(PolicyIC, true) // fast-forward on: that is the feature under test
	a.EnableShardGrants(2)
	a.Register(0, 10)
	a.Register(1, 4)
	a.Register(2, 50)
	// tid 0 holds via shard 0 once tid 1 passes it, releases at 31:
	// shard 0's clock is 31, shard 1's stays 0.
	if g := a.RequestSharded(0, 0); g != NoGrant {
		t.Fatal("expected hold while tid 1 free-runs below")
	}
	a.Advance(1, 2) // tid 1 at 6, still below the candidate's 10
	a.Advance(1, 10)
	if a.Holder() != 0 {
		t.Fatalf("holder = %d, want 0", a.Holder())
	}
	a.Advance(0, 20) // clock 30, published as 31
	a.Release(0)

	// tid 1 departs and arrives back scoped to shard 1: its clock must
	// fast-forward only to shard 1's clock (0 — i.e. keep its own 16),
	// NOT to shard 0's 31.
	a.SetScope(1, 1)
	a.Depart(1)
	a.Arrive(1)
	if c := a.Count(1); c != 16 {
		t.Fatalf("tid 1 clock = %d after shard-1 arrival, want its own 16 (shard 1 clock is 0)", c)
	}
	// Scoped to shard 0 instead, the same dance lands on 31.
	a.SetScope(1, 0)
	a.Depart(1)
	a.Arrive(1)
	if c := a.Count(1); c != 31 {
		t.Fatalf("tid 1 clock = %d after shard-0 arrival, want the shard clock 31", c)
	}
}

// EnableShardGrants preconditions: IC policy only, >= 2 shards, and no
// threads registered yet.
func TestEnableShardGrantsValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("round-robin", func() {
		New(PolicyRR, false).EnableShardGrants(2)
	})
	expectPanic("one shard", func() {
		New(PolicyIC, false).EnableShardGrants(1)
	})
	expectPanic("after register", func() {
		a := New(PolicyIC, false)
		a.Register(0, 0)
		a.EnableShardGrants(2)
	})
	expectPanic("scope out of range", func() {
		a := New(PolicyIC, false)
		a.EnableShardGrants(2)
		a.Register(0, 0)
		a.RequestSharded(0, 2)
	})
	expectPanic("scoped call unsharded", func() {
		a := New(PolicyIC, false)
		a.Register(0, 0)
		a.RequestSharded(0, 0)
	})
}
