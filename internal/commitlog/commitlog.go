// Package commitlog persists a deterministic run's committed memory
// history — every published version's byte diffs, exactly as computed by
// the commit pipeline — as a segmented append-only log. Where the run
// journal (internal/journal) records per-commit page *hashes* for
// divergence search, the commit log records the diff *bytes* themselves,
// which makes the log a complete, replayable description of memory:
// applying each version's committer diff in version order to a
// zero-initialized replica reproduces the committed state of every page
// byte-for-byte (the replica-equivalence argument in docs/commitlog.md).
// That one property buys crash recovery (Repair + Resume), time-travel
// debugging (Replay to any version or sync seq), and read scale-out
// (Stream followers tailing committed versions).
//
// # On-disk format
//
// A log is a directory of fixed-size segment pairs named by the global
// number of their first record:
//
//	00000000000000000000.store   CRC-framed records
//	00000000000000000000.index   fixed-width (rel, pos) entries
//
// A store file is a 5-byte magic ("CSQL" + format version 1), then a meta
// frame, then record frames until EOF. Every frame is
//
//	u32le payload length | u32le CRC-32C of payload | payload
//
// and every payload starts with a one-byte kind; integers are unsigned
// varints (binary.Uvarint) unless noted. Each segment repeats the same
// meta frame (geometry + run metadata), so any retained suffix of
// segments is self-contained after truncation:
//
//	meta     (0x01): pageSize, npages, n, then n (key, value) string pairs
//	commit   (0x02): atSeq, version, tid, clock, npages,
//	                 then per page: page, nruns, then per run: off, len, bytes
//	snapshot (0x03): atSeq, version, npages, same page encoding
//	                 (runs are relative to the zero page)
//	end      (0x04): version, then a fixed 8-byte LE FNV-1a checksum of
//	                 the full replica state (written at clean Close)
//
// A commit's atSeq is the sync-trace event count at recording time — the
// same interleave contract journal.Commit.AtSeq uses, so commit-log
// records and journal records order identically against the sync-event
// stream. An index entry is 12 bytes: u32le record number relative to the
// segment base, u64le frame offset in the store file. The index is
// derived state, rebuilt from the store by Repair.
//
// Segment rolls, snapshot cadence and truncation are pure functions of
// the record stream (byte counts and commit counts — never wall time), so
// two identical runs write byte-identical segment files; scripts/check.sh
// gates exactly that, alongside log-on/log-off result equality.
package commitlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/mem"
)

// storeMagic heads every segment store file; the trailing byte is the
// format version.
var storeMagic = []byte{'C', 'S', 'Q', 'L', 1}

// Record kinds.
const (
	kindMeta     = 0x01
	kindCommit   = 0x02
	kindSnapshot = 0x03
	kindEnd      = 0x04
)

// Exported record kinds (Record.Kind values).
const (
	// KindCommit is one committed version's diff record.
	KindCommit = kindCommit
	// KindSnapshot is a full-state snapshot record (runs vs the zero page).
	KindSnapshot = kindSnapshot
	// KindEnd is the clean-close trailer carrying the final version and
	// replica checksum.
	KindEnd = kindEnd
)

// frameHeaderLen is the fixed per-frame framing cost (length + CRC).
const frameHeaderLen = 8

// entWidth is the fixed size of one index entry: u32le relative record
// number + u64le store offset (the segment exemplar layout).
const entWidth = 12

// Decoder sanity caps for payloads whose geometry is not yet known (the
// fuzz target and meta frames).
const (
	maxString   = 1 << 16
	maxMetaKeys = 1 << 12
	maxPageSize = 1 << 20
	maxNumPages = 1 << 24
)

// castagnoli is the CRC-32C table used for frame checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PageDiff is one page's byte changes inside a commit or snapshot record.
// For commits the runs are the committer's own diff (relative to the
// page's previous committed content); for snapshots they are relative to
// the zero page. Run data may alias runtime memory and must be treated as
// read-only.
type PageDiff struct {
	Page int
	Runs []mem.Run
}

// Commit is one committed version's replayable record: which thread
// published it, at what logical clock, at what position in the sync-event
// total order (AtSeq — the journal's interleave contract), and the exact
// byte diffs of every page it changed, in ascending page order.
type Commit struct {
	AtSeq   int64
	Version int64
	Tid     int
	Clock   int64
	Pages   []PageDiff
}

// Snapshot is a full-state record: the replica's non-zero pages at the
// given version, encoded as runs against the zero page. Replay and Resume
// start from the newest snapshot at or before their target instead of
// record zero.
type Snapshot struct {
	AtSeq   int64
	Version int64
	Pages   []PageDiff
}

// End is the clean-close trailer: the final committed version and the
// FNV-1a checksum of the full replica state, matching the live runtime's
// Checksum. Its absence marks a crashed (or still-running) log.
type End struct {
	Version  int64
	Checksum uint64
}

// Record is one decoded log record.
type Record struct {
	Kind     byte
	Commit   Commit   // valid when Kind == KindCommit
	Snapshot Snapshot // valid when Kind == KindSnapshot
	End      End      // valid when Kind == KindEnd
}

// Version returns the record's version number regardless of kind.
func (r Record) Version() int64 {
	switch r.Kind {
	case kindCommit:
		return r.Commit.Version
	case kindSnapshot:
		return r.Snapshot.Version
	default:
		return r.End.Version
	}
}

// appendString encodes a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendPages encodes a page-diff list (shared by commits and snapshots).
func appendPages(b []byte, pages []PageDiff) []byte {
	b = binary.AppendUvarint(b, uint64(len(pages)))
	for _, pd := range pages {
		b = binary.AppendUvarint(b, uint64(pd.Page))
		b = binary.AppendUvarint(b, uint64(len(pd.Runs)))
		for _, r := range pd.Runs {
			b = binary.AppendUvarint(b, uint64(r.Off))
			b = binary.AppendUvarint(b, uint64(len(r.Data)))
			b = append(b, r.Data...)
		}
	}
	return b
}

// appendMeta encodes the meta payload: geometry plus sorted key/value
// metadata (sorted by the caller for byte determinism).
func appendMeta(b []byte, pageSize, npages int, keys []string, meta map[string]string) []byte {
	b = append(b, kindMeta)
	b = binary.AppendUvarint(b, uint64(pageSize))
	b = binary.AppendUvarint(b, uint64(npages))
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendString(b, k)
		b = appendString(b, meta[k])
	}
	return b
}

// appendCommit encodes a commit payload.
func appendCommit(b []byte, c Commit) []byte {
	b = append(b, kindCommit)
	b = binary.AppendUvarint(b, uint64(c.AtSeq))
	b = binary.AppendUvarint(b, uint64(c.Version))
	b = binary.AppendUvarint(b, uint64(c.Tid))
	b = binary.AppendUvarint(b, uint64(c.Clock))
	return appendPages(b, c.Pages)
}

// appendSnapshot encodes a snapshot payload.
func appendSnapshot(b []byte, s Snapshot) []byte {
	b = append(b, kindSnapshot)
	b = binary.AppendUvarint(b, uint64(s.AtSeq))
	b = binary.AppendUvarint(b, uint64(s.Version))
	return appendPages(b, s.Pages)
}

// appendEnd encodes the clean-close trailer.
func appendEnd(b []byte, e End) []byte {
	b = append(b, kindEnd)
	b = binary.AppendUvarint(b, uint64(e.Version))
	return binary.LittleEndian.AppendUint64(b, e.Checksum)
}

// errShort is the generic truncated-payload decode error.
var errShort = fmt.Errorf("commitlog: truncated payload")

func getUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errShort
	}
	return v, b[n:], nil
}

func getString(b []byte) (string, []byte, error) {
	n, b, err := getUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > maxString || uint64(len(b)) < n {
		return "", nil, fmt.Errorf("commitlog: string length %d out of range", n)
	}
	return string(b[:n]), b[n:], nil
}

// decodePages decodes a page-diff list. pageSize and npages bound the
// encoded values; zero bounds fall back to the decoder sanity caps (the
// fuzz target decodes without geometry).
func decodePages(b []byte, pageSize, npages int) ([]PageDiff, []byte, error) {
	if pageSize <= 0 {
		pageSize = maxPageSize
	}
	if npages <= 0 {
		npages = maxNumPages
	}
	n, b, err := getUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(npages) {
		return nil, nil, fmt.Errorf("commitlog: page count %d exceeds %d", n, npages)
	}
	pages := make([]PageDiff, 0, n)
	lastPage := -1
	for i := uint64(0); i < n; i++ {
		var pg, nruns uint64
		if pg, b, err = getUvarint(b); err != nil {
			return nil, nil, err
		}
		if pg >= uint64(npages) || int(pg) <= lastPage {
			return nil, nil, fmt.Errorf("commitlog: page %d out of range or out of order", pg)
		}
		lastPage = int(pg)
		if nruns, b, err = getUvarint(b); err != nil {
			return nil, nil, err
		}
		if nruns > uint64(pageSize) {
			return nil, nil, fmt.Errorf("commitlog: run count %d exceeds page size %d", nruns, pageSize)
		}
		pd := PageDiff{Page: int(pg), Runs: make([]mem.Run, 0, nruns)}
		for j := uint64(0); j < nruns; j++ {
			var off, ln uint64
			if off, b, err = getUvarint(b); err != nil {
				return nil, nil, err
			}
			if ln, b, err = getUvarint(b); err != nil {
				return nil, nil, err
			}
			if off+ln > uint64(pageSize) || uint64(len(b)) < ln {
				return nil, nil, fmt.Errorf("commitlog: run [%d,+%d) out of range", off, ln)
			}
			data := make([]byte, ln)
			copy(data, b[:ln])
			b = b[ln:]
			pd.Runs = append(pd.Runs, mem.Run{Off: int(off), Data: data})
		}
		pages = append(pages, pd)
	}
	return pages, b, nil
}

// decodeMeta decodes a meta payload (past the kind byte), returning the
// geometry and metadata map.
func decodeMeta(b []byte) (pageSize, npages int, meta map[string]string, err error) {
	var ps, np, n uint64
	if ps, b, err = getUvarint(b); err != nil {
		return 0, 0, nil, err
	}
	if np, b, err = getUvarint(b); err != nil {
		return 0, 0, nil, err
	}
	if ps == 0 || ps > maxPageSize || np == 0 || np > maxNumPages {
		return 0, 0, nil, fmt.Errorf("commitlog: implausible geometry %dx%d", np, ps)
	}
	if n, b, err = getUvarint(b); err != nil {
		return 0, 0, nil, err
	}
	if n > maxMetaKeys {
		return 0, 0, nil, fmt.Errorf("commitlog: %d meta keys exceeds cap", n)
	}
	meta = make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		var k, v string
		if k, b, err = getString(b); err != nil {
			return 0, 0, nil, err
		}
		if v, b, err = getString(b); err != nil {
			return 0, 0, nil, err
		}
		meta[k] = v
	}
	return int(ps), int(np), meta, nil
}

// decodeRecord decodes one record payload (a frame's contents, not a meta
// frame). pageSize/npages bound the page encodings; pass zeros to fall
// back to the sanity caps.
func decodeRecord(payload []byte, pageSize, npages int) (Record, error) {
	if len(payload) == 0 {
		return Record{}, errShort
	}
	kind, b := payload[0], payload[1:]
	var err error
	switch kind {
	case kindCommit:
		c := Commit{}
		var atSeq, ver, tid, clk uint64
		if atSeq, b, err = getUvarint(b); err != nil {
			return Record{}, err
		}
		if ver, b, err = getUvarint(b); err != nil {
			return Record{}, err
		}
		if tid, b, err = getUvarint(b); err != nil {
			return Record{}, err
		}
		if clk, b, err = getUvarint(b); err != nil {
			return Record{}, err
		}
		c.AtSeq, c.Version, c.Tid, c.Clock = int64(atSeq), int64(ver), int(tid), int64(clk)
		if c.Pages, b, err = decodePages(b, pageSize, npages); err != nil {
			return Record{}, err
		}
		if len(b) != 0 {
			return Record{}, fmt.Errorf("commitlog: %d trailing bytes after commit", len(b))
		}
		return Record{Kind: kindCommit, Commit: c}, nil
	case kindSnapshot:
		s := Snapshot{}
		var atSeq, ver uint64
		if atSeq, b, err = getUvarint(b); err != nil {
			return Record{}, err
		}
		if ver, b, err = getUvarint(b); err != nil {
			return Record{}, err
		}
		s.AtSeq, s.Version = int64(atSeq), int64(ver)
		if s.Pages, b, err = decodePages(b, pageSize, npages); err != nil {
			return Record{}, err
		}
		if len(b) != 0 {
			return Record{}, fmt.Errorf("commitlog: %d trailing bytes after snapshot", len(b))
		}
		return Record{Kind: kindSnapshot, Snapshot: s}, nil
	case kindEnd:
		var ver uint64
		if ver, b, err = getUvarint(b); err != nil {
			return Record{}, err
		}
		if len(b) != 8 {
			return Record{}, fmt.Errorf("commitlog: end trailer has %d checksum bytes", len(b))
		}
		return Record{Kind: kindEnd, End: End{Version: int64(ver), Checksum: binary.LittleEndian.Uint64(b)}}, nil
	default:
		return Record{}, fmt.Errorf("commitlog: unknown record kind 0x%02x", kind)
	}
}

// appendFrame wraps a payload in the length+CRC framing.
func appendFrame(b, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// zeroRuns encodes a page's non-zero content as runs against the zero
// page, merging runs separated by fewer than 8 zero bytes (the framing
// overhead of a split exceeds the zeros re-stated). A pure function of
// the page bytes, so snapshot encoding is deterministic.
func zeroRuns(page []byte) []mem.Run {
	var runs []mem.Run
	i := 0
	for i < len(page) {
		if page[i] == 0 {
			i++
			continue
		}
		start := i
		end := i + 1 // one past the last non-zero byte committed to this run
		for j := i + 1; j < len(page); j++ {
			if page[j] != 0 {
				end = j + 1
			} else if j-end >= 8 {
				break
			}
		}
		data := make([]byte, end-start)
		copy(data, page[start:end])
		runs = append(runs, mem.Run{Off: start, Data: data})
		i = end
	}
	return runs
}

// segName formats the store/index basename for a segment's base record.
func segName(base int64) string { return fmt.Sprintf("%020d", base) }
