package commitlog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrTruncated reports a store file that ends mid-frame (a torn tail from
// a crash); Repair recovers the longest valid prefix.
var ErrTruncated = fmt.Errorf("commitlog: truncated record stream")

// errStop is the internal early-exit sentinel for record iteration.
var errStop = fmt.Errorf("commitlog: stop iteration")

// Reader provides sequential access to a log directory's records.
type Reader struct {
	dir      string
	pageSize int
	npages   int
	meta     map[string]string
	bases    []int64 // segment base record numbers, ascending
}

// listBases returns the segment base numbers present in dir, ascending.
func listBases(dir string) ([]int64, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.store"))
	if err != nil {
		return nil, err
	}
	bases := make([]int64, 0, len(names))
	for _, name := range names {
		b, err := strconv.ParseInt(strings.TrimSuffix(filepath.Base(name), ".store"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("commitlog: stray store file %s", name)
		}
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// OpenReader opens a log directory, reading the oldest segment's meta
// frame for the geometry and run metadata.
func OpenReader(dir string) (*Reader, error) {
	bases, err := listBases(dir)
	if err != nil {
		return nil, err
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("commitlog: no segments in %s", dir)
	}
	r := &Reader{dir: dir, bases: bases}
	f, err := os.Open(r.storePath(bases[0]))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if r.pageSize, r.npages, r.meta, err = readHeader(f); err != nil {
		return nil, fmt.Errorf("commitlog: %s: %w", r.storePath(bases[0]), err)
	}
	return r, nil
}

// PageSize returns the replica page size from the log's meta frame.
func (r *Reader) PageSize() int { return r.pageSize }

// NumPages returns the replica page count from the log's meta frame.
func (r *Reader) NumPages() int { return r.npages }

// Meta returns the run metadata persisted with the log.
func (r *Reader) Meta() map[string]string { return r.meta }

// Segments returns the number of segment pairs in the directory.
func (r *Reader) Segments() int { return len(r.bases) }

// storePath returns the store filename for a segment base.
func (r *Reader) storePath(base int64) string {
	return filepath.Join(r.dir, segName(base)+".store")
}

// readHeader consumes and validates a store file's magic and meta frame.
func readHeader(f io.Reader) (pageSize, npages int, meta map[string]string, err error) {
	m := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(f, m); err != nil || !bytes.Equal(m, storeMagic) {
		return 0, 0, nil, fmt.Errorf("bad store magic")
	}
	payload, err := readFrame(f)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("bad meta frame: %w", err)
	}
	if len(payload) == 0 || payload[0] != kindMeta {
		return 0, 0, nil, fmt.Errorf("first frame is not meta")
	}
	return decodeMeta(payload[1:])
}

// readFrame reads one length+CRC frame and returns the verified payload.
// io.EOF means a clean end; io.ErrUnexpectedEOF or a CRC mismatch mean a
// torn or corrupt frame.
func readFrame(f io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n > (64 << 20) {
		return nil, fmt.Errorf("implausible frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("frame CRC mismatch")
	}
	return payload, nil
}

// forEachSeg iterates the decoded records of one segment. strict turns a
// torn tail into ErrTruncated; otherwise iteration just stops there
// (complete reports false). f's errStop return stops cleanly.
func (r *Reader) forEachSeg(segIdx int, strict bool, f func(rec int64, rc Record) error) (complete bool, err error) {
	base := r.bases[segIdx]
	sf, err := os.Open(r.storePath(base))
	if err != nil {
		return false, err
	}
	defer sf.Close()
	if _, _, _, err := readHeader(sf); err != nil {
		if strict {
			return false, fmt.Errorf("commitlog: %s: %w", r.storePath(base), err)
		}
		return false, nil
	}
	rec := base
	for {
		payload, err := readFrame(sf)
		if err == io.EOF {
			return true, nil
		}
		if err != nil {
			if strict {
				return false, fmt.Errorf("%w (%s record %d: %v)", ErrTruncated, r.storePath(base), rec, err)
			}
			return false, nil
		}
		rc, err := decodeRecord(payload, r.pageSize, r.npages)
		if err != nil {
			if strict {
				return false, fmt.Errorf("commitlog: %s record %d: %w", r.storePath(base), rec, err)
			}
			return false, nil
		}
		if err := f(rec, rc); err != nil {
			return true, err
		}
		rec++
	}
}

// forEachFrom iterates records from the given segment index to the end of
// the log. In strict mode a torn tail is an error; otherwise iteration
// stops at the first unreadable frame and reports complete=false.
func (r *Reader) forEachFrom(segIdx int, strict bool, f func(rec int64, rc Record) error) (complete bool, err error) {
	for i := segIdx; i < len(r.bases); i++ {
		complete, err = r.forEachSeg(i, strict, f)
		if err == errStop {
			return true, nil
		}
		if err != nil {
			return complete, err
		}
		if !complete {
			return false, nil
		}
	}
	return true, nil
}

// ForEach iterates every record in the log in order; a torn or corrupt
// frame is an error (run Repair first after a crash).
func (r *Reader) ForEach(f func(rec int64, rc Record) error) error {
	_, err := r.forEachFrom(0, true, f)
	return err
}

// ForEachAvailable iterates every readable record, stopping silently at a
// torn tail (a live writer may be mid-frame); complete reports whether
// the whole log was readable. Followers poll with it.
func (r *Reader) ForEachAvailable(f func(rec int64, rc Record) error) (complete bool, err error) {
	return r.forEachFrom(0, false, f)
}

// ForEachAvailableFrom iterates the readable records whose global record
// number is at least rec (clamped to the oldest retained record),
// stopping silently at a torn tail like ForEachAvailable. A follower
// tailing the directory polls with it, passing one past its last applied
// record so each poll touches only the new suffix (plus the tail of the
// segment the cursor sits in) instead of rescanning the whole log.
func (r *Reader) ForEachAvailableFrom(rec int64, f func(rec int64, rc Record) error) (complete bool, err error) {
	segIdx := sort.Search(len(r.bases), func(i int) bool { return r.bases[i] > rec }) - 1
	if segIdx < 0 {
		segIdx = 0
	}
	return r.forEachFrom(segIdx, false, func(got int64, rc Record) error {
		if got < rec {
			return nil
		}
		return f(got, rc)
	})
}

// NewestAnchorRec returns the record number of the newest readable
// snapshot record that leads a segment, or 0 when the only replay origin
// is record zero. A follower restarting after a crash begins its tolerant
// scan here — the Resume path without strictness: snapshot restore plus
// whatever tail is readable.
func (r *Reader) NewestAnchorRec() (int64, error) {
	for i := len(r.bases) - 1; i > 0; i-- {
		rc, ok, err := r.first(i)
		if err != nil {
			return 0, err
		}
		if ok && rc.Kind == kindSnapshot {
			return r.bases[i], nil
		}
	}
	return 0, nil
}

// first returns segment segIdx's first record (ok=false for a segment
// with no readable records).
func (r *Reader) first(segIdx int) (rc Record, ok bool, err error) {
	_, err = r.forEachSeg(segIdx, false, func(_ int64, got Record) error {
		rc, ok = got, true
		return errStop
	})
	if err == errStop {
		err = nil
	}
	return rc, ok, err
}

// RepairReport describes what Repair found and fixed.
type RepairReport struct {
	Segments        int   // live segments after repair
	Records         int64 // readable records after repair
	TruncatedBytes  int64 // bytes cut from a torn store tail
	DroppedSegments int   // segments deleted past the torn point
	RewroteIndexes  int   // index files rebuilt from their store
	Repaired        bool  // anything was changed
}

// Repair scans a log directory after a crash and recovers the longest
// valid record prefix: the first torn or corrupt frame truncates its
// store file there, every later segment is deleted (records past a tear
// cannot be ordered against the lost ones), and each surviving index file
// is rebuilt from its store when it disagrees (the index is derived
// state). A clean log is a no-op. The repaired log always replays.
func Repair(dir string) (RepairReport, error) {
	var rep RepairReport
	bases, err := listBases(dir)
	if err != nil {
		return rep, err
	}
	if len(bases) == 0 {
		return rep, fmt.Errorf("commitlog: no segments in %s", dir)
	}
	var pageSize, npages int
	torn := len(bases) // first segment index that does not survive
	for i, base := range bases {
		name := filepath.Join(dir, segName(base))
		recs, validBytes, ents, segErr := scanStore(name+".store", i == 0, &pageSize, &npages)
		if segErr != nil {
			// The oldest segment's header must be readable: without its
			// meta frame there is no geometry to replay under.
			if i == 0 {
				return rep, segErr
			}
			torn = i
			break
		}
		rep.Records += recs
		rep.Segments++
		st, err := os.Stat(name + ".store")
		if err != nil {
			return rep, err
		}
		if st.Size() > validBytes {
			if err := os.Truncate(name+".store", validBytes); err != nil {
				return rep, err
			}
			rep.TruncatedBytes += st.Size() - validBytes
			rep.Repaired = true
			torn = i + 1
		}
		if err := syncIndex(name+".index", ents, &rep); err != nil {
			return rep, err
		}
		if torn == i+1 {
			break
		}
	}
	for _, base := range bases[torn:] {
		name := filepath.Join(dir, segName(base))
		for _, ext := range []string{".store", ".index"} {
			if err := os.Remove(name + ext); err != nil && !os.IsNotExist(err) {
				return rep, err
			}
		}
		rep.DroppedSegments++
		rep.Repaired = true
	}
	return rep, nil
}

// scanStore walks one store file's frames, validating header, CRCs and
// payload decode, and returns the record count, the byte length of the
// valid prefix, and the index entries that prefix implies. headErr is
// non-nil only when the header itself (magic or meta frame) is
// unreadable.
func scanStore(path string, wantGeometry bool, pageSize, npages *int) (recs int64, validBytes int64, ents []byte, headErr error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	ps, np, _, err := readHeader(f)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("commitlog: %s: %w", path, err)
	}
	if wantGeometry {
		*pageSize, *npages = ps, np
	}
	pos, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, 0, nil, err
	}
	validBytes = pos
	for {
		payload, err := readFrame(f)
		if err != nil {
			return recs, validBytes, ents, nil // torn or clean EOF: prefix ends here
		}
		if _, err := decodeRecord(payload, *pageSize, *npages); err != nil {
			return recs, validBytes, ents, nil
		}
		var ent [entWidth]byte
		binary.LittleEndian.PutUint32(ent[0:4], uint32(recs))
		binary.LittleEndian.PutUint64(ent[4:12], uint64(validBytes))
		ents = append(ents, ent[:]...)
		recs++
		validBytes += int64(frameHeaderLen + len(payload))
	}
}

// syncIndex rewrites an index file when its content differs from the
// entries derived from the store scan.
func syncIndex(path string, want []byte, rep *RepairReport) error {
	got, err := os.ReadFile(path)
	if err == nil && bytes.Equal(got, want) {
		return nil
	}
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := os.WriteFile(path, want, 0o666); err != nil {
		return err
	}
	rep.RewroteIndexes++
	rep.Repaired = true
	return nil
}

// LookupIndex resolves a global record number to its store offset through
// the segment's index file — the exemplar segment read path; sequential
// consumers use ForEach instead.
func (r *Reader) LookupIndex(rec int64) (base int64, pos int64, err error) {
	i := sort.Search(len(r.bases), func(i int) bool { return r.bases[i] > rec }) - 1
	if i < 0 {
		return 0, 0, fmt.Errorf("commitlog: record %d precedes the log", rec)
	}
	base = r.bases[i]
	idx, err := os.ReadFile(filepath.Join(r.dir, segName(base)+".index"))
	if err != nil {
		return 0, 0, err
	}
	rel := rec - base
	if rel*entWidth+entWidth > int64(len(idx)) {
		return 0, 0, fmt.Errorf("commitlog: record %d past the end of segment %d", rec, base)
	}
	ent := idx[rel*entWidth:]
	if got := int64(binary.LittleEndian.Uint32(ent[0:4])); got != rel {
		return 0, 0, fmt.Errorf("commitlog: index entry %d names rel %d", rel, got)
	}
	return base, int64(binary.LittleEndian.Uint64(ent[4:12])), nil
}
