package commitlog

import (
	"fmt"
	"sync"
)

// Stream is a live follower of a running Log: an iterator over committed
// versions, starting from any version in the retained history and then
// tailing new commits as the runtime publishes them. Delivery is ordered
// and complete (history first, then live records, no gaps or duplicates:
// the drain goroutine flushes and splices the subscription in between two
// records). The consumer pulls with Next on its own goroutine; the buffer
// between drain and consumer is unbounded, so a slow follower costs
// memory, never runtime backpressure — and therefore never results.
//
// A streamed Commit's run data may alias the runtime's own immutable diff
// buffers: read-only.
type Stream struct {
	l *Log

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Commit
	closed bool // no more pushes: log closed, or Close was called
}

// Stream subscribes a follower from the given version (inclusive;
// versions below the retained history simply start at the oldest
// available record). It must be called after the log is attached to a
// runtime (Begin) and before Close.
func (l *Log) Stream(fromVersion int64) (*Stream, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.begun {
		return nil, fmt.Errorf("commitlog: Stream before the log is attached to a runtime")
	}
	if l.closed {
		return nil, fmt.Errorf("commitlog: Stream on a closed log")
	}
	s := &Stream{l: l}
	s.cond = sync.NewCond(&s.mu)
	l.ch <- logMsg{sub: s, from: fromVersion}
	return s, nil
}

// Next blocks for the next committed version; ok reports false once the
// log is closed (or the stream is) and the buffer is drained.
func (s *Stream) Next() (c Commit, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.buf) == 0 {
		return Commit{}, false
	}
	c = s.buf[0]
	s.buf = s.buf[1:]
	return c, true
}

// Close detaches the follower; pending buffered commits are dropped and
// a blocked Next returns immediately.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.buf = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	l := s.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.begun && !l.closed {
		l.ch <- logMsg{unsub: s}
	}
}

// push appends one commit to the follower's buffer (drain goroutine only).
func (s *Stream) push(c Commit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.buf = append(s.buf, c)
	s.cond.Signal()
}

// finish marks the stream complete: no more pushes are coming, but the
// consumer still drains whatever is buffered before Next reports done.
func (s *Stream) finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// handleSubscribe splices a follower in: flush buffered bytes, replay the
// durable history at or past the requested version into the follower's
// buffer, then add it to the live fan-out list. Runs on the drain
// goroutine between two records, so the history/live boundary is exact.
func (d *drain) handleSubscribe(s *Stream, from int64) {
	d.flush()
	r, err := OpenReader(d.l.dir)
	if err == nil {
		_, err = r.ForEachAvailable(func(_ int64, rc Record) error {
			if rc.Kind == kindCommit && rc.Commit.Version >= from {
				s.push(rc.Commit)
			}
			return nil
		})
	}
	if err != nil {
		if d.err == nil {
			d.err = err
		}
		s.finish()
		return
	}
	d.subs = append(d.subs, s)
}

// handleUnsubscribe removes a follower from the fan-out list.
func (d *drain) handleUnsubscribe(s *Stream) {
	for i, sub := range d.subs {
		if sub == s {
			d.subs = append(d.subs[:i], d.subs[i+1:]...)
			break
		}
	}
	s.finish()
}
