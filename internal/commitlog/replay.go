package commitlog

import (
	"fmt"
	"hash/fnv"
)

// State is a replica of the run's committed memory, reconstructed from
// the log. The replica-equivalence argument (docs/commitlog.md): a page's
// committed content at version v is the zero page plus every committer
// diff for that page up to v, applied in version order — exactly what the
// commit pipeline's merge chain resolves to — so State matches the live
// segment byte-for-byte at every version, and Checksum matches the live
// runtime's Checksum at the same version.
type State struct {
	pageSize int
	npages   int
	meta     map[string]string

	// Version and AtSeq are the last applied commit's coordinates;
	// Commits counts applied commit records (snapshot fast-starts skip
	// the commits they fold in).
	Version int64
	AtSeq   int64
	Commits int64

	// SawEnd reports that the log's clean-close trailer was reached and
	// its checksum verified.
	SawEnd bool

	pages map[int][]byte
}

// newState builds an empty replica with the reader's geometry.
func newState(r *Reader) *State {
	return &State{pageSize: r.pageSize, npages: r.npages, meta: r.meta, pages: make(map[int][]byte)}
}

// PageSize returns the replica's page size.
func (st *State) PageSize() int { return st.pageSize }

// NumPages returns the replica's page count.
func (st *State) NumPages() int { return st.npages }

// Meta returns the run metadata the log was created with.
func (st *State) Meta() map[string]string { return st.meta }

// Page returns the replica's content for one page (the zero page when the
// run never touched it). The returned slice is the replica's own storage:
// read-only, invalidated by further applies.
func (st *State) Page(pg int) []byte {
	if buf, ok := st.pages[pg]; ok {
		return buf
	}
	return make([]byte, st.pageSize)
}

// PageHash returns the FNV-1a hash of one page's content — the same
// per-page hash the run journal records, so a replayed state can be
// cross-checked against a journal commit by commit.
func (st *State) PageHash(pg int) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, b := range st.Page(pg) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// Checksum hashes the full replica — every page ascending, untouched
// pages as zeros — matching the live runtime's Checksum exactly.
func (st *State) Checksum() uint64 {
	h := fnv.New64a()
	zero := make([]byte, st.pageSize)
	for pg := 0; pg < st.npages; pg++ {
		if buf, ok := st.pages[pg]; ok {
			h.Write(buf)
		} else {
			h.Write(zero)
		}
	}
	return h.Sum64()
}

// apply advances the replica by one record's page diffs.
func (st *State) apply(pages []PageDiff) {
	for _, pd := range pages {
		buf := st.pages[pd.Page]
		if buf == nil {
			buf = make([]byte, st.pageSize)
			st.pages[pd.Page] = buf
		}
		for _, r := range pd.Runs {
			copy(buf[r.Off:], r.Data)
		}
	}
}

// restore resets the replica to a snapshot record's state.
func (st *State) restore(s Snapshot) {
	st.pages = make(map[int][]byte)
	st.apply(s.Pages)
	st.Version, st.AtSeq = s.Version, s.AtSeq
}

// stopReplay bounds a replay: the commit that fails the predicate (and
// everything after it) is not applied.
type stopReplay func(c Commit) bool

// replayFrom drives the shared replay loop from the given segment index.
func replayFrom(r *Reader, segIdx int, include stopReplay, after func(*State, Commit) error) (*State, error) {
	st := newState(r)
	stopped := false
	first := true
	_, err := r.forEachFrom(segIdx, true, func(rec int64, rc Record) error {
		switch rc.Kind {
		case kindSnapshot:
			if first {
				st.restore(rc.Snapshot)
			} else if rc.Snapshot.Version != st.Version {
				return fmt.Errorf("commitlog: snapshot at record %d claims version %d, replica is at %d",
					rec, rc.Snapshot.Version, st.Version)
			}
		case kindCommit:
			c := rc.Commit
			if !include(c) {
				stopped = true
				return errStop
			}
			if st.Commits > 0 && c.Version != st.Version+1 {
				return fmt.Errorf("commitlog: commit at record %d jumps version %d -> %d",
					rec, st.Version, c.Version)
			}
			st.apply(c.Pages)
			st.Version, st.AtSeq = c.Version, c.AtSeq
			st.Commits++
			first = false
			if after != nil {
				return after(st, c)
			}
			return nil
		case kindEnd:
			if !stopped {
				if rc.End.Version != st.Version {
					return fmt.Errorf("commitlog: end trailer names version %d, replica is at %d", rc.End.Version, st.Version)
				}
				if got := st.Checksum(); got != rc.End.Checksum {
					return fmt.Errorf("commitlog: end trailer checksum %016x, replica is %016x", rc.End.Checksum, got)
				}
				st.SawEnd = true
			}
		}
		first = false
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Replay reconstructs the replica at toVersion (negative: the whole
// retained history) by applying every retained record from the log's
// oldest segment. If retention truncated history past toVersion the
// replay fails rather than silently starting late. When the full history
// is replayed and the log was closed cleanly, the end trailer's checksum
// is verified against the replica.
func Replay(dir string, toVersion int64) (*State, error) {
	return ReplayWith(dir, toVersion, nil)
}

// ReplayWith is Replay with a per-commit callback (after the commit is
// applied) — the hook conseq-replay's journal cross-verification uses.
func ReplayWith(dir string, toVersion int64, after func(*State, Commit) error) (*State, error) {
	r, err := OpenReader(dir)
	if err != nil {
		return nil, err
	}
	if err := checkOrigin(r, toVersion); err != nil {
		return nil, err
	}
	include := func(c Commit) bool { return toVersion < 0 || c.Version <= toVersion }
	st, err := replayFrom(r, 0, include, after)
	if err != nil {
		return nil, err
	}
	if toVersion >= 0 && st.Version < toVersion {
		return nil, fmt.Errorf("commitlog: log ends at version %d, before requested %d", st.Version, toVersion)
	}
	return st, nil
}

// ReplayToSeq reconstructs the replica as of sync-order seq: every commit
// whose AtSeq is at most seq is applied (the journal interleave contract
// orders commits against sync events by AtSeq).
func ReplayToSeq(dir string, seq int64) (*State, error) {
	r, err := OpenReader(dir)
	if err != nil {
		return nil, err
	}
	if err := checkOrigin(r, -1); err != nil {
		return nil, err
	}
	return replayFrom(r, 0, func(c Commit) bool { return c.AtSeq <= seq }, nil)
}

// checkOrigin verifies the oldest retained segment is a valid replay
// origin for the target: record zero, or a snapshot anchor that does not
// postdate the target version.
func checkOrigin(r *Reader, toVersion int64) error {
	if r.bases[0] == 0 {
		return nil
	}
	rc, ok, err := r.first(0)
	if err != nil {
		return err
	}
	if !ok || rc.Kind != kindSnapshot {
		return fmt.Errorf("commitlog: oldest retained segment (base %d) is not a snapshot anchor", r.bases[0])
	}
	if toVersion >= 0 && rc.Snapshot.Version > toVersion {
		return fmt.Errorf("commitlog: history truncated to version %d, cannot replay to %d", rc.Snapshot.Version, toVersion)
	}
	return nil
}

// Resume reconstructs the replica from the newest snapshot anchor plus
// the log tail — the restart path, touching only the records after the
// last snapshot instead of the whole history. Equivalent to a full Replay
// by the replica-equivalence argument; scripts/check.sh gates the
// equivalence on the golden benches.
func Resume(dir string) (*State, error) {
	r, err := OpenReader(dir)
	if err != nil {
		return nil, err
	}
	start := 0
	for i := len(r.bases) - 1; i > 0; i-- {
		rc, ok, err := r.first(i)
		if err != nil {
			return nil, err
		}
		if ok && rc.Kind == kindSnapshot {
			start = i
			break
		}
	}
	if start == 0 {
		if err := checkOrigin(r, -1); err != nil {
			return nil, err
		}
	}
	return replayFrom(r, start, func(Commit) bool { return true }, nil)
}
