package commitlog

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
)

// Test geometry: small pages so tests exercise multi-run diffs cheaply.
const (
	tPageSize = 64
	tNumPages = 16
)

// mkCommits builds a deterministic synthetic commit stream: version v
// writes a few bytes to pages keyed off v, with AtSeq/Clock advancing.
func mkCommits(n int) []Commit {
	cs := make([]Commit, 0, n)
	for v := 1; v <= n; v++ {
		c := Commit{AtSeq: int64(3 * v), Version: int64(v), Tid: v % 4, Clock: int64(100 * v)}
		for k := 0; k < 1+v%3; k++ {
			pg := (v*7 + k*5) % tNumPages
			off := (v * 11) % (tPageSize - 8)
			data := []byte{byte(v), byte(v >> 8), byte(k + 1), 0xAB}
			c.Pages = append(c.Pages, PageDiff{Page: pg, Runs: []mem.Run{{Off: off, Data: data}}})
		}
		// Page order must ascend within a record (the decoder enforces the
		// commit pipeline's deterministic order).
		for i := 1; i < len(c.Pages); i++ {
			for j := i; j > 0 && c.Pages[j-1].Page > c.Pages[j].Page; j-- {
				c.Pages[j-1], c.Pages[j] = c.Pages[j], c.Pages[j-1]
			}
		}
		dedup := c.Pages[:1]
		for _, pd := range c.Pages[1:] {
			if pd.Page != dedup[len(dedup)-1].Page {
				dedup = append(dedup, pd)
			}
		}
		c.Pages = dedup
		cs = append(cs, c)
	}
	return cs
}

// applyRef applies commits to a reference page array (an independent
// replay implementation the real one is checked against).
func applyRef(pages [][]byte, c Commit) {
	for _, pd := range c.Pages {
		for _, r := range pd.Runs {
			copy(pages[pd.Page][r.Off:], r.Data)
		}
	}
}

// refChecksum hashes the reference array the way det.Runtime.Checksum
// hashes the live segment.
func refChecksum(pages [][]byte) uint64 {
	h := fnv.New64a()
	for _, pg := range pages {
		h.Write(pg)
	}
	return h.Sum64()
}

func freshRef() [][]byte {
	pages := make([][]byte, tNumPages)
	for i := range pages {
		pages[i] = make([]byte, tPageSize)
	}
	return pages
}

// writeLog creates, fills and cleanly closes a log.
func writeLog(t *testing.T, dir string, opts Options, commits []Commit) *Log {
	t.Helper()
	l, err := Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(tPageSize, tNumPages); err != nil {
		t.Fatal(err)
	}
	for _, c := range commits {
		l.Append(c)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	commits := mkCommits(40)
	l := writeLog(t, dir, Options{Meta: map[string]string{"bench": "synthetic", "seed": "7"}}, commits)
	if got := l.Stats().Commits; got != 40 {
		t.Fatalf("stats count %d commits, want 40", got)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.PageSize() != tPageSize || r.NumPages() != tNumPages {
		t.Fatalf("geometry %dx%d", r.NumPages(), r.PageSize())
	}
	if r.Meta()["bench"] != "synthetic" || r.Meta()["seed"] != "7" {
		t.Fatalf("meta %v", r.Meta())
	}
	var got []Commit
	sawEnd := false
	if err := r.ForEach(func(_ int64, rc Record) error {
		switch rc.Kind {
		case KindCommit:
			got = append(got, rc.Commit)
		case KindEnd:
			sawEnd = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawEnd {
		t.Fatal("no end trailer after clean close")
	}
	if len(got) != len(commits) {
		t.Fatalf("read %d commits, want %d", len(got), len(commits))
	}
	for i, c := range commits {
		g := got[i]
		if g.AtSeq != c.AtSeq || g.Version != c.Version || g.Tid != c.Tid || g.Clock != c.Clock || len(g.Pages) != len(c.Pages) {
			t.Fatalf("commit %d decoded %+v, want %+v", i, g, c)
		}
		for j, pd := range c.Pages {
			gp := g.Pages[j]
			if gp.Page != pd.Page || len(gp.Runs) != len(pd.Runs) {
				t.Fatalf("commit %d page %d decoded %+v, want %+v", i, j, gp, pd)
			}
			for k, run := range pd.Runs {
				if gp.Runs[k].Off != run.Off || string(gp.Runs[k].Data) != string(run.Data) {
					t.Fatalf("commit %d page %d run %d mismatch", i, j, k)
				}
			}
		}
	}
}

func TestByteDeterminism(t *testing.T) {
	commits := mkCommits(300)
	opts := Options{SegmentBytes: 2048, SnapshotEvery: 64, Meta: map[string]string{"run": "x"}}
	dirA, dirB := t.TempDir(), t.TempDir()
	writeLog(t, dirA, opts, commits)
	writeLog(t, dirB, opts, commits)
	entsA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	entsB, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(entsA) != len(entsB) || len(entsA) < 4 {
		t.Fatalf("segment sets differ or too few: %d vs %d files", len(entsA), len(entsB))
	}
	for i := range entsA {
		if entsA[i].Name() != entsB[i].Name() {
			t.Fatalf("file %d named %s vs %s", i, entsA[i].Name(), entsB[i].Name())
		}
		a, err := os.ReadFile(filepath.Join(dirA, entsA[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, entsB[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between identical runs", entsA[i].Name())
		}
	}
}

func TestSegmentRollAndIndexLookup(t *testing.T) {
	dir := t.TempDir()
	commits := mkCommits(200)
	l := writeLog(t, dir, Options{SegmentBytes: 1024, SnapshotEvery: -1}, commits)
	st := l.Stats()
	if st.Rolls == 0 || st.Segments < 2 {
		t.Fatalf("expected multiple segments, got %+v", st)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Segments() != int(st.Segments) {
		t.Fatalf("reader sees %d segments, writer says %d", r.Segments(), st.Segments)
	}
	// Every record's index entry must point at a frame that decodes to the
	// record the sequential scan sees.
	if err := r.ForEach(func(rec int64, rc Record) error {
		base, pos, err := r.LookupIndex(rec)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec, err)
		}
		f, err := os.Open(r.storePath(base))
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.Seek(pos, 0); err != nil {
			return err
		}
		payload, err := readFrame(f)
		if err != nil {
			return fmt.Errorf("record %d via index: %w", rec, err)
		}
		got, err := decodeRecord(payload, r.PageSize(), r.NumPages())
		if err != nil {
			return err
		}
		if got.Kind != rc.Kind || got.Version() != rc.Version() {
			return fmt.Errorf("record %d: index lookup decodes kind %d v%d, scan sees kind %d v%d",
				rec, got.Kind, got.Version(), rc.Kind, rc.Version())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayResumeAndTimeTravel(t *testing.T) {
	dir := t.TempDir()
	commits := mkCommits(250)
	// Small segments and frequent snapshots so Resume has a real anchor.
	l := writeLog(t, dir, Options{SegmentBytes: 1500, SnapshotEvery: 50}, commits)
	if l.Stats().Snapshots == 0 {
		t.Fatal("no snapshots taken")
	}

	// Reference states per version, independently computed.
	ref := freshRef()
	sums := make(map[int64]uint64)
	for _, c := range commits {
		applyRef(ref, c)
		sums[c.Version] = refChecksum(ref)
	}

	st, err := Replay(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.SawEnd {
		t.Fatal("full replay did not verify the end trailer")
	}
	if st.Version != 250 || st.Checksum() != sums[250] {
		t.Fatalf("full replay v%d checksum %016x, want v250 %016x", st.Version, st.Checksum(), sums[250])
	}

	// Time travel: every 37th version, plus the edges.
	for _, v := range []int64{1, 36, 37, 49, 50, 51, 123, 249, 250} {
		st, err := Replay(dir, v)
		if err != nil {
			t.Fatalf("replay to %d: %v", v, err)
		}
		if st.Version != v || st.Checksum() != sums[v] {
			t.Fatalf("replay to %d landed at v%d checksum %016x, want %016x", v, st.Version, st.Checksum(), sums[v])
		}
	}

	// Replay by sync seq: AtSeq of version v is 3v, so seq 3v+1 includes
	// exactly versions 1..v.
	for _, v := range []int64{10, 100} {
		st, err := ReplayToSeq(dir, 3*v+1)
		if err != nil {
			t.Fatal(err)
		}
		if st.Version != v {
			t.Fatalf("replay to seq %d landed at version %d, want %d", 3*v+1, st.Version, v)
		}
	}

	// Resume must land on the same final state via the newest snapshot,
	// touching fewer commits than the full history.
	rst, err := Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Checksum() != sums[250] || rst.Version != 250 {
		t.Fatalf("resume checksum %016x at v%d, want %016x at v250", rst.Checksum(), rst.Version, sums[250])
	}
	if rst.Commits >= st.Commits {
		t.Fatalf("resume applied %d commits, full replay %d — no snapshot shortcut", rst.Commits, st.Commits)
	}

	// Beyond-the-end target is an error, not a silent short replay.
	if _, err := Replay(dir, 251); err == nil {
		t.Fatal("replay past the end succeeded")
	}
}

func TestRetentionTruncatesHistory(t *testing.T) {
	dir := t.TempDir()
	commits := mkCommits(300)
	l := writeLog(t, dir, Options{SegmentBytes: 1024, SnapshotEvery: 40, RetainSnapshots: 2}, commits)
	st := l.Stats()
	if st.Truncated == 0 {
		t.Fatalf("retention never truncated: %+v", st)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.bases[0] == 0 {
		t.Fatal("record zero still present despite retention")
	}
	// The retained suffix must still resume to the true final state.
	ref := freshRef()
	for _, c := range commits {
		applyRef(ref, c)
	}
	rst, err := Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Checksum() != refChecksum(ref) {
		t.Fatal("resume after truncation diverged")
	}
	// Full replay of the retained history works (snapshot anchor origin) …
	if _, err := Replay(dir, -1); err != nil {
		t.Fatal(err)
	}
	// … but replaying to a version older than the anchor must fail loudly.
	if _, err := Replay(dir, 1); err == nil {
		t.Fatal("replay to truncated version succeeded")
	}
}

func TestStreamTailsHistoryAndLive(t *testing.T) {
	dir := t.TempDir()
	commits := mkCommits(120)
	l, err := Create(dir, Options{SegmentBytes: 2048, SnapshotEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(tPageSize, tNumPages); err != nil {
		t.Fatal(err)
	}
	for _, c := range commits[:50] {
		l.Append(c)
	}
	s, err := l.Stream(1)
	if err != nil {
		t.Fatal(err)
	}
	recv := make(chan []int64, 1)
	go func() {
		var vs []int64
		for {
			c, ok := s.Next()
			if !ok {
				break
			}
			vs = append(vs, c.Version)
		}
		recv <- vs
	}()
	for _, c := range commits[50:] {
		l.Append(c)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	vs := <-recv
	if len(vs) != len(commits) {
		t.Fatalf("follower saw %d commits, want %d", len(vs), len(commits))
	}
	for i, v := range vs {
		if v != int64(i+1) {
			t.Fatalf("follower position %d saw version %d", i, v)
		}
	}

	// A mid-history start version only sees the tail.
	dir2 := t.TempDir()
	l2, _ := Create(dir2, Options{})
	if err := l2.Begin(tPageSize, tNumPages); err != nil {
		t.Fatal(err)
	}
	for _, c := range commits {
		l2.Append(c)
	}
	s2, err := l2.Stream(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		c, ok := s2.Next()
		if !ok {
			break
		}
		if c.Version < 100 {
			t.Fatalf("follower from 100 saw version %d", c.Version)
		}
		n++
	}
	if n != 21 {
		t.Fatalf("follower from 100 saw %d commits, want 21", n)
	}
}

func TestCloseWithoutBeginAndEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Begin + immediate Close: a valid empty log with just the trailer.
	dir2 := t.TempDir()
	l2, err := Create(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Begin(tPageSize, tNumPages); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dir2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 0 || !st.SawEnd {
		t.Fatalf("empty log replayed to v%d sawEnd=%v", st.Version, st.SawEnd)
	}
	// Create refuses a dir that already holds segments.
	if _, err := Create(dir2, Options{}); err == nil {
		t.Fatal("Create over an existing log succeeded")
	}
}

func TestZeroRuns(t *testing.T) {
	page := make([]byte, tPageSize)
	page[3], page[4] = 1, 2
	page[9] = 3  // gap of 4 zeros: merged
	page[40] = 4 // far away: separate run
	runs := zeroRuns(page)
	if len(runs) != 2 {
		t.Fatalf("got %d runs %v, want 2", len(runs), runs)
	}
	if runs[0].Off != 3 || len(runs[0].Data) != 7 {
		t.Fatalf("run 0 = %+v", runs[0])
	}
	if runs[1].Off != 40 || len(runs[1].Data) != 1 {
		t.Fatalf("run 1 = %+v", runs[1])
	}
	rebuilt := make([]byte, tPageSize)
	for _, r := range runs {
		copy(rebuilt[r.Off:], r.Data)
	}
	if string(rebuilt) != string(page) {
		t.Fatal("zero-run encoding does not round-trip")
	}
	if got := zeroRuns(make([]byte, tPageSize)); got != nil {
		t.Fatalf("zero page encoded as %v", got)
	}
}
