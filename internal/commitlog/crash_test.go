package commitlog

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
)

// frameInfo describes one record frame in a store file: where it ends and
// the replica version after applying it.
type frameInfo struct {
	end     int64 // offset just past the frame
	kind    byte
	version int64 // last commit version as of this frame (inclusive)
}

// scanFrames parses a store file into (header end, per-frame info),
// threading the running commit version through from `from`.
func scanFrames(t *testing.T, path string, from int64) (int64, []frameInfo) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, _, err := readHeader(f); err != nil {
		t.Fatal(err)
	}
	headerEnd, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		t.Fatal(err)
	}
	var frames []frameInfo
	v := from
	for {
		payload, err := readFrame(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rc, err := decodeRecord(payload, tPageSize, tNumPages)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Kind == KindCommit {
			v = rc.Commit.Version
		}
		pos, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frameInfo{end: pos, kind: rc.Kind, version: v})
	}
	return headerEnd, frames
}

// copyDir clones a log directory into a fresh temp dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// buildCrashFixture writes a multi-segment log plus the per-version
// reference checksums (sums[0] is the untouched zero state).
func buildCrashFixture(t *testing.T) (dir string, sums map[int64]uint64, lastBase int64, priorVersion int64) {
	t.Helper()
	dir = t.TempDir()
	commits := mkCommits(160)
	writeLog(t, dir, Options{SegmentBytes: 1500, SnapshotEvery: 40}, commits)

	sums = map[int64]uint64{0: refChecksum(freshRef())}
	ref := freshRef()
	for _, c := range commits {
		applyRef(ref, c)
		sums[c.Version] = refChecksum(ref)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Segments() < 3 {
		t.Fatalf("fixture has %d segments, want >=3", r.Segments())
	}
	lastBase = r.bases[len(r.bases)-1]
	// Replay everything before the last segment to learn the version the
	// last segment starts from.
	for i := 0; i < len(r.bases)-1; i++ {
		_, frames := scanFrames(t, r.storePath(r.bases[i]), priorVersion)
		if len(frames) > 0 {
			priorVersion = frames[len(frames)-1].version
		}
	}
	return dir, sums, lastBase, priorVersion
}

// TestRepairEveryBoundary truncates the last segment's store at every
// record boundary (and torn mid-frame just past each boundary) and
// asserts Repair recovers exactly the surviving prefix, with a clean
// checksum-verified replay.
func TestRepairEveryBoundary(t *testing.T) {
	dir, sums, lastBase, priorVersion := buildCrashFixture(t)
	lastStore := filepath.Join(dir, segName(lastBase)) + ".store"
	headerEnd, frames := scanFrames(t, lastStore, priorVersion)

	check := func(t *testing.T, cutDir string, wantVersion int64) {
		t.Helper()
		rep, err := Repair(cutDir)
		if err != nil {
			t.Fatalf("repair: %v", err)
		}
		st, err := Replay(cutDir, -1)
		if err != nil {
			t.Fatalf("replay after repair (report %+v): %v", rep, err)
		}
		if st.Version != wantVersion {
			t.Fatalf("repair kept prefix to version %d, want %d (report %+v)", st.Version, wantVersion, rep)
		}
		if st.Checksum() != sums[wantVersion] {
			t.Fatalf("replayed checksum %016x, want %016x at version %d", st.Checksum(), sums[wantVersion], wantVersion)
		}
		// Repair is idempotent: a second pass finds nothing to fix.
		rep2, err := Repair(cutDir)
		if err != nil {
			t.Fatal(err)
		}
		if rep2.Repaired {
			t.Fatalf("second repair still changed the log: %+v", rep2)
		}
	}

	// Cut exactly at each boundary: the i-th cut keeps frames[0:i].
	cuts := []int64{headerEnd}
	for _, fr := range frames {
		cuts = append(cuts, fr.end)
	}
	for i, cut := range cuts {
		wantVersion := priorVersion
		if i > 0 {
			wantVersion = frames[i-1].version
		}
		cutDir := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(cutDir, segName(lastBase))+".store", cut); err != nil {
			t.Fatal(err)
		}
		check(t, cutDir, wantVersion)

		// Torn mid-frame: a few bytes of the next frame made it to disk.
		if i < len(cuts)-1 && cuts[i+1] > cut+3 {
			tornDir := copyDir(t, dir)
			if err := os.Truncate(filepath.Join(tornDir, segName(lastBase))+".store", cut+3); err != nil {
				t.Fatal(err)
			}
			check(t, tornDir, wantVersion)
		}
	}

	// A cut inside the last segment's own header drops the segment whole.
	hdrDir := copyDir(t, dir)
	if err := os.Truncate(filepath.Join(hdrDir, segName(lastBase))+".store", 3); err != nil {
		t.Fatal(err)
	}
	check(t, hdrDir, priorVersion)
}

// TestRepairCorruptMiddleSegment flips a payload byte in a middle
// segment: the tear point truncates there and every later segment is
// dropped, and the replay of the survivors still checksums clean.
func TestRepairCorruptMiddleSegment(t *testing.T) {
	dir, sums, _, _ := buildCrashFixture(t)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	midBase := r.bases[len(r.bases)/2]
	midStore := r.storePath(midBase)
	var prior int64
	for i := 0; r.bases[i] != midBase; i++ {
		_, frames := scanFrames(t, r.storePath(r.bases[i]), prior)
		if len(frames) > 0 {
			prior = frames[len(frames)-1].version
		}
	}
	headerEnd, frames := scanFrames(t, midStore, prior)
	if len(frames) < 2 {
		t.Fatal("middle segment too small for the test")
	}
	// Corrupt a byte inside the second frame's payload.
	victim := frames[1]
	data, err := os.ReadFile(midStore)
	if err != nil {
		t.Fatal(err)
	}
	data[victim.end-1] ^= 0xFF
	if err := os.WriteFile(midStore, data, 0o666); err != nil {
		t.Fatal(err)
	}
	_ = headerEnd

	rep, err := Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedSegments == 0 || !rep.Repaired {
		t.Fatalf("corrupt middle segment not detected: %+v", rep)
	}
	st, err := Replay(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != frames[0].version {
		t.Fatalf("survivors end at version %d, want %d", st.Version, frames[0].version)
	}
	if st.Checksum() != sums[st.Version] {
		t.Fatal("surviving prefix replay diverged")
	}
}

// TestRepairRebuildsIndex scribbles over an index file; Repair rebuilds
// it from the store and LookupIndex works again.
func TestRepairRebuildsIndex(t *testing.T) {
	dir, _, lastBase, _ := buildCrashFixture(t)
	idx := filepath.Join(dir, segName(lastBase)) + ".index"
	if err := os.WriteFile(idx, []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := Repair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RewroteIndexes == 0 {
		t.Fatalf("index not rebuilt: %+v", rep)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ForEach(func(rec int64, rc Record) error {
		_, _, err := r.LookupIndex(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestStrictReadRejectsTornTail documents the flip side of Repair: a
// strict reader (ForEach / Replay) refuses a torn tail instead of
// silently shortening history, while ForEachAvailable reads the prefix.
func TestStrictReadRejectsTornTail(t *testing.T) {
	dir, _, lastBase, _ := buildCrashFixture(t)
	store := filepath.Join(dir, segName(lastBase)) + ".store"
	fi, err := os.Stat(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(store, fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, -1); err == nil {
		t.Fatal("strict replay accepted a torn tail")
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	complete, err := r.ForEachAvailable(func(int64, Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("tolerant read reported a torn log as complete")
	}
}

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: it must
// reject or accept without panicking or over-allocating, and an accepted
// commit must re-encode to the same decode.
func FuzzDecodeRecord(f *testing.F) {
	c := Commit{AtSeq: 9, Version: 4, Tid: 1, Clock: 77, Pages: []PageDiff{
		{Page: 2, Runs: []mem.Run{{Off: 5, Data: []byte{1, 2, 3}}}},
		{Page: 7, Runs: []mem.Run{{Off: 0, Data: bytes.Repeat([]byte{9}, 16)}}},
	}}
	f.Add(appendCommit(nil, c))
	f.Add(appendSnapshot(nil, Snapshot{AtSeq: 3, Version: 2, Pages: []PageDiff{{Page: 0, Runs: []mem.Run{{Off: 1, Data: []byte{5}}}}}}))
	f.Add(appendEnd(nil, End{Version: 11, Checksum: 0xdeadbeef}))
	f.Add([]byte{})
	f.Add([]byte{kindMeta})
	f.Add(binary.LittleEndian.AppendUint32([]byte{KindCommit, 0xFF}, 1<<31))
	f.Fuzz(func(t *testing.T, payload []byte) {
		rc, err := decodeRecord(payload, tPageSize, tNumPages)
		if err != nil {
			return
		}
		var re []byte
		switch rc.Kind {
		case KindCommit:
			re = appendCommit(nil, rc.Commit)
		case KindSnapshot:
			re = appendSnapshot(nil, rc.Snapshot)
		case KindEnd:
			re = appendEnd(nil, rc.End)
		default:
			t.Fatalf("decoder accepted unknown kind %d", rc.Kind)
		}
		rc2, err := decodeRecord(re, tPageSize, tNumPages)
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v", err)
		}
		if rc2.Kind != rc.Kind || rc2.Version() != rc.Version() {
			t.Fatalf("re-encode changed the record: %+v vs %+v", rc, rc2)
		}
		// Geometry-free decode (the fuzz/repair path) must also cope.
		if _, err := decodeRecord(payload, 0, 0); err != nil {
			t.Fatalf("geometry-free decode rejected a valid record: %v", err)
		}
	})
}

// TestRepairUnderFollow is the crash-recovery path a tailing follower
// takes (docs/replication.md): the follower applies the readable prefix
// of a torn log with ForEachAvailableFrom, Repair truncates the tear,
// and the follower resumes from its record cursor without re-applying or
// skipping a single commit — ending byte-identical to a fresh
// post-repair replay.
func TestRepairUnderFollow(t *testing.T) {
	dir, sums, lastBase, priorVersion := buildCrashFixture(t)
	lastStore := filepath.Join(dir, segName(lastBase)) + ".store"
	headerEnd, frames := scanFrames(t, lastStore, priorVersion)

	// Crash mid-frame: a few bytes of the next frame made it to disk.
	half := len(frames) / 2
	cut, wantVersion := headerEnd, priorVersion
	if half > 0 {
		cut, wantVersion = frames[half-1].end, frames[half-1].version
	}
	tornDir := copyDir(t, dir)
	if err := os.Truncate(filepath.Join(tornDir, segName(lastBase))+".store", cut+3); err != nil {
		t.Fatal(err)
	}

	// The inline follower: cursor-driven tolerant scans, every commit
	// applied exactly once in version order.
	ref := freshRef()
	var version, cursor int64
	apply := func(rec int64, rc Record) error {
		switch rc.Kind {
		case KindSnapshot:
			// This follower scans from record zero, so snapshots recap
			// state it already has; one overtaking it would mean a gap.
			if rc.Snapshot.Version > version {
				t.Fatalf("snapshot v%d overtook the follower at v%d", rc.Snapshot.Version, version)
			}
		case KindCommit:
			if rc.Commit.Version != version+1 {
				t.Fatalf("follower saw v%d while at v%d: gap or duplicate", rc.Commit.Version, version)
			}
			applyRef(ref, rc.Commit)
			version = rc.Commit.Version
		}
		cursor = rec + 1
		return nil
	}

	// Phase 1: tail the torn log. The tolerant scan applies the surviving
	// prefix and stops silently at the tear.
	r, err := OpenReader(tornDir)
	if err != nil {
		t.Fatal(err)
	}
	complete, err := r.ForEachAvailableFrom(cursor, apply)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("tolerant scan reported a torn log as complete")
	}
	if version != wantVersion {
		t.Fatalf("follower applied to v%d, surviving prefix ends at v%d", version, wantVersion)
	}
	if got := refChecksum(ref); got != sums[wantVersion] {
		t.Fatalf("follower checksum %016x, want %016x at v%d", got, sums[wantVersion], wantVersion)
	}

	// Phase 2: crash recovery truncates the tear.
	rep, err := Repair(tornDir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired || rep.TruncatedBytes == 0 {
		t.Fatalf("repair found nothing to fix on a torn tail: %+v", rep)
	}

	// Phase 3: resume from the cursor. Repair only removed bytes past the
	// last valid frame, so the cursor still points one past the follower's
	// last applied record — nothing is re-applied, nothing is skipped, and
	// the scan now reads clean to the (trailerless) end.
	r2, err := OpenReader(tornDir)
	if err != nil {
		t.Fatal(err)
	}
	if complete, err = r2.ForEachAvailableFrom(cursor, apply); err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("repaired log still reads as torn")
	}
	if version != wantVersion {
		t.Fatalf("resume moved the follower to v%d, want v%d unchanged", version, wantVersion)
	}

	// The incremental follower state must equal a fresh post-repair replay.
	st, err := Replay(tornDir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != version || st.Checksum() != refChecksum(ref) {
		t.Fatalf("follower (v%d, %016x) != replay (v%d, %016x)",
			version, refChecksum(ref), st.Version, st.Checksum())
	}
}
