package commitlog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Log writer.
type Options struct {
	// SegmentBytes is the store-file size at which the active segment is
	// rolled (default 1 MiB). A roll decision depends only on encoded byte
	// counts, so identical runs roll at identical records.
	SegmentBytes int
	// SnapshotEvery writes a full-state snapshot (opening a fresh segment)
	// after this many commit records (default 1024; negative disables).
	// Snapshots bound Resume's replay tail and enable truncation.
	SnapshotEvery int
	// RetainSnapshots, when positive, truncates the log after each
	// snapshot to the segments reachable from the k newest snapshots:
	// bounded storage at the cost of full-history Replay. 0 keeps
	// everything (the gate's replay-verify mode needs record zero).
	RetainSnapshots int
	// Meta is arbitrary run metadata persisted in every segment's meta
	// frame (encoded in sorted key order).
	Meta map[string]string
}

// Stats counts a Log's activity; all fields are lifetime totals.
type Stats struct {
	Commits      int64
	Snapshots    int64
	Segments     int64 // live segment-file pairs on disk
	Rolls        int64
	Truncated    int64 // segment-file pairs deleted by retention
	Bytes        int64 // encoded bytes across all segments, including truncated ones
	AppendStalls int64 // appends that blocked because the drain goroutine was behind
	LastVersion  int64
}

// defaultSegmentBytes is the roll threshold when Options leaves it zero.
const defaultSegmentBytes = 1 << 20

// defaultSnapshotEvery is the snapshot cadence when Options leaves it zero.
const defaultSnapshotEvery = 1024

// appendQueueDepth bounds the record channel to the drain goroutine;
// beyond it appends block (counted as AppendStalls).
const appendQueueDepth = 256

// perturbPeriod is the record cadence at which the drain goroutine
// consults the chaos perturb hook (it also fires on every roll).
const perturbPeriod = 128

// Log is an append-only commit-log writer. Create it, attach it to a
// runtime (det.Runtime.SetCommitLog calls Begin with the segment
// geometry), and Close it after the run to flush, write the end trailer
// and surface any I/O error. Appends are cheap and off the file-I/O path:
// records are handed to a background drain goroutine over a bounded
// queue, the journal's block-drain discipline at record granularity. The
// drain goroutine owns all files, the snapshot replica and the
// subscriber list, so no file state needs locking.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards begun/closed and the send-side of ch
	begun    bool
	closed   bool
	ch       chan logMsg
	done     chan struct{}
	closeErr error

	pageSize int
	npages   int

	// perturb, when non-nil, is the chaos write-stall hook: the drain
	// goroutine sleeps the returned nanoseconds of real time before its
	// periodic I/O (never modeled time — backpressure must not move
	// results). Set before Begin; called only from the drain goroutine.
	perturb func() int64

	commits     atomic.Int64
	snapshots   atomic.Int64
	segments    atomic.Int64
	rolls       atomic.Int64
	truncated   atomic.Int64
	bytes       atomic.Int64
	stalls      atomic.Int64
	lastVersion atomic.Int64
}

// logMsg is one unit of work for the drain goroutine.
type logMsg struct {
	commit *Commit
	sub    *Stream       // subscribe request when non-nil
	from   int64         // subscribe start version
	unsub  *Stream       // unsubscribe request when non-nil
	snap   bool          // RequestSnapshot: force a snapshot at the next commit boundary
	sync   chan struct{} // Sync barrier: closed once buffered bytes are durable-readable
}

// Create prepares an empty log directory (created if absent; must contain
// no segment files). Nothing is written until Begin supplies the memory
// geometry.
func Create(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SegmentBytes < len(storeMagic)+frameHeaderLen {
		return nil, fmt.Errorf("commitlog: segment size %d too small", opts.SegmentBytes)
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	existing, err := filepath.Glob(filepath.Join(dir, "*.store"))
	if err != nil {
		return nil, err
	}
	if len(existing) > 0 {
		return nil, fmt.Errorf("commitlog: directory %s already holds %d segment(s)", dir, len(existing))
	}
	return &Log{dir: dir, opts: opts}, nil
}

// SetPerturb installs the chaos write-stall hook; must be called before
// Begin (the drain goroutine reads it unlocked). The hook runs on the
// drain goroutine only, so a single-owner chaos stream is safe.
func (l *Log) SetPerturb(f func() int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.begun {
		panic("commitlog: SetPerturb after Begin")
	}
	l.perturb = f
}

// Begin fixes the replica geometry and starts the drain goroutine; the
// attaching runtime calls it once with its segment's page size and page
// count. The first segment (with its meta frame) is created here so
// creation errors surface synchronously.
func (l *Log) Begin(pageSize, npages int) error {
	if pageSize <= 0 || pageSize > maxPageSize || npages <= 0 || npages > maxNumPages {
		return fmt.Errorf("commitlog: implausible geometry %d pages x %d bytes", npages, pageSize)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.begun {
		return fmt.Errorf("commitlog: Begin called twice")
	}
	if l.closed {
		return fmt.Errorf("commitlog: Begin after Close")
	}
	l.pageSize, l.npages = pageSize, npages
	keys := make([]string, 0, len(l.opts.Meta))
	for k := range l.opts.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	header := append([]byte(nil), storeMagic...)
	header = appendFrame(header, appendMeta(nil, pageSize, npages, keys, l.opts.Meta))
	d := &drain{
		l:      l,
		header: header,
		pages:  make(map[int][]byte),
	}
	if err := d.openSegment(0); err != nil {
		return err
	}
	l.ch = make(chan logMsg, appendQueueDepth)
	l.done = make(chan struct{})
	l.begun = true
	go d.run()
	return nil
}

// Append records one committed version. Called token-held at the commit
// sites; the encode and file I/O happen on the drain goroutine, so the
// token-held cost is one channel send (or a blocking wait, counted as an
// AppendStall, when the drain is behind — real time only, never modeled
// time). Appends after Close, or before Begin, are dropped.
func (l *Log) Append(c Commit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.begun || l.closed {
		return
	}
	msg := logMsg{commit: &c}
	select {
	case l.ch <- msg:
	default:
		l.stalls.Add(1)
		l.ch <- msg
	}
	l.commits.Add(1)
	l.lastVersion.Store(c.Version)
}

// RequestSnapshot asks the drain goroutine to write a full-state snapshot
// at the next commit boundary, regardless of the SnapshotEvery cadence
// fixed at creation. A replica supervisor calls it before restarting a
// follower so the restart resumes from a fresh anchor instead of
// replaying a long tail. The request drains behind all earlier appends
// (so the snapshot folds them), coalesces with the cadence (the snapshot
// resets its counter), and is a no-op before Begin or after Close; on an
// empty log it defers to the first commit.
func (l *Log) RequestSnapshot() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.begun || l.closed {
		return
	}
	l.ch <- logMsg{snap: true}
}

// Sync blocks until every record appended before the call has been
// flushed to the segment files, so a directory reader (OpenReader +
// ForEachAvailable) observes them. The barrier is ordered like an append:
// it drains behind all earlier records. No-op before Begin or after Close
// (Close already flushes everything).
func (l *Log) Sync() {
	l.mu.Lock()
	if !l.begun || l.closed {
		l.mu.Unlock()
		return
	}
	done := make(chan struct{})
	l.ch <- logMsg{sync: done}
	l.mu.Unlock()
	<-done
}

// Close flushes buffered records, writes the end trailer (final version +
// replica checksum), closes the segment files and returns the first I/O
// error encountered anywhere in the log's lifetime. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	first := !l.closed
	l.closed = true
	begun := l.begun
	l.mu.Unlock()
	if !begun {
		return nil
	}
	if first {
		close(l.ch)
	}
	<-l.done
	return l.closeErr
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Stats snapshots the activity counters (safe mid-run).
func (l *Log) Stats() Stats {
	return Stats{
		Commits:      l.commits.Load(),
		Snapshots:    l.snapshots.Load(),
		Segments:     l.segments.Load(),
		Rolls:        l.rolls.Load(),
		Truncated:    l.truncated.Load(),
		Bytes:        l.bytes.Load(),
		AppendStalls: l.stalls.Load(),
		LastVersion:  l.lastVersion.Load(),
	}
}

// segState tracks live segments for the drain goroutine's retention scan.
type segState struct {
	base        int64
	snapshotLed bool // first record is a snapshot (Resume/truncation anchor)
}

// drain is the background goroutine's state: the active segment pair,
// the replica (for snapshot records and the end-trailer checksum), and
// the live-subscriber list. Single-goroutine ownership; the producer side
// only touches the channel and atomics.
type drain struct {
	l      *Log
	header []byte // magic + meta frame, repeated per segment

	store     *os.File
	index     *os.File
	sw        *bufio.Writer
	iw        *bufio.Writer
	storeSize int64
	segRecs   int64 // records in the active segment
	base      int64 // active segment's base record number

	nextRec     int64
	segs        []segState
	pages       map[int][]byte // replica state (absent page = zero page)
	lastVersion int64
	lastAtSeq   int64
	sinceSnap   int
	snapWanted  bool // RequestSnapshot pending: snapshot at the next commit
	handled     int64
	subs        []*Stream
	scratch     []byte // payload encode buffer, reused across records

	err error // first I/O error; later writes are skipped
}

// run is the drain loop: consume records until the channel closes, then
// write the end trailer and shut everything down.
func (d *drain) run() {
	for msg := range d.l.ch {
		switch {
		case msg.commit != nil:
			d.handleCommit(*msg.commit)
		case msg.sub != nil:
			d.handleSubscribe(msg.sub, msg.from)
		case msg.unsub != nil:
			d.handleUnsubscribe(msg.unsub)
		case msg.sync != nil:
			d.flush()
			close(msg.sync)
		case msg.snap:
			// The request drains between two records, so this IS a commit
			// boundary; an empty log defers to the first commit instead.
			if d.lastVersion > 0 {
				d.takeSnapshot()
			} else {
				d.snapWanted = true
			}
		}
	}
	d.writeRecord(appendEnd(d.scratch[:0], End{Version: d.lastVersion, Checksum: d.checksum()}))
	d.closeSegment()
	for _, s := range d.subs {
		s.finish()
	}
	d.l.closeErr = d.err
	close(d.l.done)
}

// handleCommit encodes and persists one commit record, advances the
// replica, fans out to subscribers, and applies the snapshot/roll/
// retention policy — all pure functions of the record stream.
func (d *drain) handleCommit(c Commit) {
	payload := appendCommit(d.scratch[:0], c)
	frameLen := int64(frameHeaderLen + len(payload))
	// Fixed-size segments: roll first if this record would overflow a
	// non-empty segment (an oversized single record still gets a segment
	// to itself).
	if d.segRecs > 0 && d.storeSize+frameLen > int64(d.l.opts.SegmentBytes) {
		d.roll()
	}
	d.writeRecord(payload)
	d.scratch = payload[:0]
	d.apply(c.Pages)
	d.lastVersion, d.lastAtSeq = c.Version, c.AtSeq
	for _, s := range d.subs {
		s.push(c)
	}
	d.sinceSnap++
	if d.snapWanted || (d.l.opts.SnapshotEvery > 0 && d.sinceSnap >= d.l.opts.SnapshotEvery) {
		d.snapWanted = false
		d.takeSnapshot()
	}
	d.handled++
	if d.l.perturb != nil && d.handled%perturbPeriod == 0 {
		d.stall()
	}
}

// stall sleeps the chaos hook's real-time delay (the write-stall fault).
func (d *drain) stall() {
	if ns := d.l.perturb(); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
}

// apply advances the replica by one record's page diffs.
func (d *drain) apply(pages []PageDiff) {
	for _, pd := range pages {
		buf := d.pages[pd.Page]
		if buf == nil {
			buf = make([]byte, d.l.pageSize)
			d.pages[pd.Page] = buf
		}
		for _, r := range pd.Runs {
			copy(buf[r.Off:], r.Data)
		}
	}
}

// checksum hashes the full replica state — every page in ascending order,
// absent pages as zeros — exactly as the live runtime's Checksum does.
func (d *drain) checksum() uint64 {
	h := fnv.New64a()
	zero := make([]byte, d.l.pageSize)
	for pg := 0; pg < d.l.npages; pg++ {
		if buf, ok := d.pages[pg]; ok {
			h.Write(buf)
		} else {
			h.Write(zero)
		}
	}
	return h.Sum64()
}

// takeSnapshot rolls to a fresh segment and writes the replica's non-zero
// pages as its first record, then applies the retention policy. A
// snapshot-led segment is a self-contained replay anchor.
func (d *drain) takeSnapshot() {
	d.roll()
	snap := Snapshot{AtSeq: d.lastAtSeq, Version: d.lastVersion}
	pgs := make([]int, 0, len(d.pages))
	for pg := range d.pages {
		pgs = append(pgs, pg)
	}
	sort.Ints(pgs)
	for _, pg := range pgs {
		if runs := zeroRuns(d.pages[pg]); len(runs) > 0 {
			snap.Pages = append(snap.Pages, PageDiff{Page: pg, Runs: runs})
		}
	}
	d.writeRecord(appendSnapshot(d.scratch[:0], snap))
	d.segs[len(d.segs)-1].snapshotLed = true
	d.sinceSnap = 0
	d.l.snapshots.Add(1)
	if d.l.perturb != nil {
		d.stall()
	}
	d.truncate()
}

// truncate deletes segments older than the RetainSnapshots-th newest
// snapshot anchor.
func (d *drain) truncate() {
	keep := d.l.opts.RetainSnapshots
	if keep <= 0 {
		return
	}
	anchor := -1
	seen := 0
	for i := len(d.segs) - 1; i >= 0; i-- {
		if d.segs[i].snapshotLed {
			seen++
			if seen == keep {
				anchor = i
				break
			}
		}
	}
	if anchor <= 0 {
		return
	}
	for _, s := range d.segs[:anchor] {
		for _, ext := range []string{".store", ".index"} {
			if err := os.Remove(filepath.Join(d.l.dir, segName(s.base)+ext)); err != nil && d.err == nil {
				d.err = err
			}
		}
		d.l.truncated.Add(1)
		d.l.segments.Add(-1)
	}
	d.segs = append([]segState(nil), d.segs[anchor:]...)
}

// writeRecord frames a payload into the active segment and records its
// index entry.
func (d *drain) writeRecord(payload []byte) {
	if d.err != nil {
		return
	}
	var ent [entWidth]byte
	binary.LittleEndian.PutUint32(ent[0:4], uint32(d.segRecs))
	binary.LittleEndian.PutUint64(ent[4:12], uint64(d.storeSize))
	if _, err := d.iw.Write(ent[:]); err != nil {
		d.err = err
		return
	}
	frame := appendFrame(nil, payload)
	if _, err := d.sw.Write(frame); err != nil {
		d.err = err
		return
	}
	d.storeSize += int64(len(frame))
	d.segRecs++
	d.nextRec++
	d.l.bytes.Add(int64(len(frame)))
}

// openSegment creates the segment pair based at the given record number
// and writes the store header.
func (d *drain) openSegment(base int64) error {
	name := filepath.Join(d.l.dir, segName(base))
	store, err := os.OpenFile(name+".store", os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	index, err := os.OpenFile(name+".index", os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		store.Close()
		return err
	}
	d.store, d.index = store, index
	d.sw = bufio.NewWriterSize(store, 64<<10)
	d.iw = bufio.NewWriterSize(index, 8<<10)
	if _, err := d.sw.Write(d.header); err != nil {
		return err
	}
	d.storeSize = int64(len(d.header))
	d.segRecs = 0
	d.base = base
	d.segs = append(d.segs, segState{base: base})
	d.l.segments.Add(1)
	d.l.bytes.Add(int64(len(d.header)))
	return nil
}

// closeSegment flushes and closes the active pair.
func (d *drain) closeSegment() {
	if d.store == nil {
		return
	}
	for _, f := range []func() error{d.sw.Flush, d.iw.Flush, d.store.Close, d.index.Close} {
		if err := f(); err != nil && d.err == nil {
			d.err = err
		}
	}
	d.store, d.index = nil, nil
}

// roll closes the active segment and opens the next.
func (d *drain) roll() {
	d.closeSegment()
	if err := d.openSegment(d.nextRec); err != nil && d.err == nil {
		d.err = err
	}
	d.l.rolls.Add(1)
	if d.l.perturb != nil {
		d.stall()
	}
}

// flush pushes buffered store/index bytes to disk (subscribe requests
// read history from the files).
func (d *drain) flush() {
	if d.err != nil || d.store == nil {
		return
	}
	if err := d.sw.Flush(); err != nil {
		d.err = err
	}
	if err := d.iw.Flush(); err != nil && d.err == nil {
		d.err = err
	}
}
