package commitlog

import (
	"testing"

	"repro/internal/mem"
)

// benchCommits builds a realistic append workload: 4KiB pages, a few
// short dirty runs per commit across a handful of pages.
func benchCommits(n int) []Commit {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	cs := make([]Commit, n)
	for v := 1; v <= n; v++ {
		c := Commit{AtSeq: int64(2 * v), Version: int64(v), Tid: v % 8, Clock: int64(50 * v)}
		for k := 0; k < 4; k++ {
			pg := (v*13 + k*7) % 256
			c.Pages = append(c.Pages, PageDiff{Page: pg, Runs: []mem.Run{
				{Off: (v * 31) % (4096 - 64), Data: data},
			}})
		}
		for i := 1; i < len(c.Pages); i++ {
			for j := i; j > 0 && c.Pages[j-1].Page > c.Pages[j].Page; j-- {
				c.Pages[j-1], c.Pages[j] = c.Pages[j], c.Pages[j-1]
			}
		}
		cs[v-1] = c
	}
	return cs
}

// BenchmarkCommitLogAppend measures the send-side cost of logging one
// commit (encode + frame + buffered write on the drain goroutine),
// reporting log bytes per commit.
func BenchmarkCommitLogAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := Create(dir, Options{SegmentBytes: 8 << 20, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Begin(4096, 256); err != nil {
		b.Fatal(err)
	}
	commits := benchCommits(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := commits[i%len(commits)]
		c.Version = int64(i + 1)
		l.Append(c)
	}
	b.StopTimer()
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	st := l.Stats()
	if st.Commits > 0 {
		b.ReportMetric(float64(st.Bytes)/float64(st.Commits), "logbytes/commit")
	}
	b.SetBytes(st.Bytes / int64(b.N))
}

// BenchmarkReplay measures full-history reconstruction from a prebuilt
// log, reporting replayed commits per op.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Create(dir, Options{SegmentBytes: 4 << 20, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Begin(4096, 256); err != nil {
		b.Fatal(err)
	}
	const n = 4096
	for _, c := range benchCommits(n) {
		l.Append(c)
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Replay(dir, -1)
		if err != nil {
			b.Fatal(err)
		}
		if st.Version != n {
			b.Fatalf("replayed to %d", st.Version)
		}
	}
	b.ReportMetric(n, "commits/op")
}
