package commitlog

import "testing"

// TestSyncMakesRecordsDurable: after Sync returns, a directory reader
// must see every record appended before the call — the barrier a replica
// supervisor relies on before a restarted follower rescans the directory.
func TestSyncMakesRecordsDurable(t *testing.T) {
	dir := t.TempDir()
	commits := mkCommits(30)
	l, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(tPageSize, tNumPages); err != nil {
		t.Fatal(err)
	}
	for _, c := range commits {
		l.Append(c)
	}
	l.Sync()
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seen int64
	if _, err := r.ForEachAvailable(func(_ int64, rc Record) error {
		if rc.Kind == KindCommit {
			seen++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != int64(len(commits)) {
		t.Fatalf("after Sync a reader saw %d commits, want %d", seen, len(commits))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Sync after Close is a harmless no-op.
	l.Sync()
}

// TestRequestSnapshotForcesAnchor: a mid-run snapshot request must
// produce a snapshot at the next commit boundary even when the cadence
// would never fire, giving restarts a fresh anchor — and must not change
// what a full replay reconstructs.
func TestRequestSnapshotForcesAnchor(t *testing.T) {
	dir := t.TempDir()
	commits := mkCommits(50)
	l, err := Create(dir, Options{SnapshotEvery: -1}) // cadence disabled
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Begin(tPageSize, tNumPages); err != nil {
		t.Fatal(err)
	}
	for _, c := range commits[:20] {
		l.Append(c)
	}
	l.RequestSnapshot()
	for _, c := range commits[20:] {
		l.Append(c)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Snapshots; got != 1 {
		t.Fatalf("snapshots %d, want exactly 1 (the requested one)", got)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	anchor, err := r.NewestAnchorRec()
	if err != nil {
		t.Fatal(err)
	}
	if anchor == 0 {
		t.Fatal("no snapshot anchor found after RequestSnapshot")
	}
	var at Record
	if _, err := r.ForEachAvailableFrom(anchor, func(rec int64, rc Record) error {
		if rec == anchor {
			at = rc
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if at.Kind != KindSnapshot {
		t.Fatalf("record %d is kind %d, want a snapshot", anchor, at.Kind)
	}
	// The snapshot folds exactly the commits appended before the request.
	if at.Snapshot.Version != 20 {
		t.Fatalf("requested snapshot at version %d, want 20", at.Snapshot.Version)
	}
	// Replay and resume still reach the reference state.
	ref := freshRef()
	for _, c := range commits {
		applyRef(ref, c)
	}
	for _, mode := range []string{"replay", "resume"} {
		var st *State
		if mode == "replay" {
			st, err = Replay(dir, -1)
		} else {
			st, err = Resume(dir)
		}
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if st.Checksum() != refChecksum(ref) {
			t.Fatalf("%s checksum %016x, want %016x", mode, st.Checksum(), refChecksum(ref))
		}
	}
}

// TestForEachAvailableFrom: the cursor-based tail read must deliver
// exactly the records at or past the cursor, across segment boundaries.
func TestForEachAvailableFrom(t *testing.T) {
	dir := t.TempDir()
	commits := mkCommits(80)
	writeLog(t, dir, Options{SegmentBytes: 1200, SnapshotEvery: 25}, commits)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var all []int64
	if _, err := r.ForEachAvailable(func(rec int64, _ Record) error {
		all = append(all, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || r.Segments() < 3 {
		t.Fatalf("fixture too small: %d records, %d segments", len(all), r.Segments())
	}
	for _, from := range []int64{0, 1, all[len(all)/2], all[len(all)-1], all[len(all)-1] + 1} {
		var got []int64
		if _, err := r.ForEachAvailableFrom(from, func(rec int64, _ Record) error {
			got = append(got, rec)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var want []int64
		for _, rec := range all {
			if rec >= from {
				want = append(want, rec)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("from %d: %d records, want %d", from, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("from %d: record %d is %d, want %d", from, i, got[i], want[i])
			}
		}
	}
}

// TestNewestAnchorRec: the newest snapshot-led segment's base is the
// restart cursor; a log without snapshots anchors at record zero.
func TestNewestAnchorRec(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, Options{SegmentBytes: 1200, SnapshotEvery: 20}, mkCommits(70))
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	anchor, err := r.NewestAnchorRec()
	if err != nil {
		t.Fatal(err)
	}
	if anchor == 0 {
		t.Fatal("expected a snapshot anchor")
	}
	seen := false
	if _, err := r.ForEachAvailableFrom(anchor, func(rec int64, rc Record) error {
		if rec == anchor {
			seen = true
			if rc.Kind != KindSnapshot {
				t.Fatalf("anchor record %d is kind %d, want snapshot", rec, rc.Kind)
			}
			if rc.Snapshot.Version >= 70 {
				t.Fatalf("anchor snapshot version %d should precede the final version", rc.Snapshot.Version)
			}
		} else if rec > anchor && rc.Kind == KindSnapshot {
			t.Fatalf("a newer snapshot leads record %d; anchor %d is not newest", rec, anchor)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("anchor record not visited")
	}

	plain := t.TempDir()
	writeLog(t, plain, Options{SnapshotEvery: -1}, mkCommits(10))
	rp, err := OpenReader(plain)
	if err != nil {
		t.Fatal(err)
	}
	if a, err := rp.NewestAnchorRec(); err != nil || a != 0 {
		t.Fatalf("snapshot-free log anchor = %d, %v; want 0, nil", a, err)
	}
}
