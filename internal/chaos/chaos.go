// Package chaos is a seeded, fully deterministic fault-injection
// subsystem for the deterministic runtime: it perturbs *timing* —
// virtual-time jitter on modeled work, adversarial token-grant delays,
// counter-overflow shrinkage, forced prefetch mispredictions, barrier
// arrival skew, page-fault and commit slowdowns — without being allowed
// to perturb *results*. The paper's central claim is that a racy program
// under Consequence yields the same output regardless of thread timing;
// chaos exists to exercise that claim adversarially: the determinism gate
// in scripts/check.sh runs every golden benchmark under several
// (profile, seed) pairs and asserts byte-identical checksums and
// sync-trace hashes against the unperturbed goldens.
//
// Every perturbation decision is drawn from a splitmix64 stream keyed by
// (seed, subsystem, thread), so a run is a deterministic function of
// (profile, seed) on the simulation host and replays exactly. Injection
// points are confined to quantities the determinism argument already
// covers: modeled durations (never instruction counts or logical
// clocks), advisory predictions (droppable by construction), and
// notification schedules (overflow intervals, wake latency) that affect
// only when — never whether or in what logical order — the arbiter
// grants the token.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Profile is one named perturbation mix. All knobs are amplitudes; a zero
// knob disables that injection point entirely.
type Profile struct {
	// Name identifies the profile in -chaos specs and reports.
	Name string
	// ChargeJitterPct stretches every Binding.Charge by a per-call random
	// factor in [0, ChargeJitterPct]% — virtual-time jitter on modeled
	// work (no effect on untimed hosts, where Charge is a no-op).
	ChargeJitterPct int64
	// WakeDelayNS delays token-grant (and barrier-release) wakes by up to
	// this many nanoseconds, charged to the waking thread: the adversarial
	// "slow handoff" case. On untimed (real) hosts the delay is a real
	// sleep, like the -verify schedule perturbation.
	WakeDelayNS int64
	// OverflowShrinkPct shrinks each counter-overflow interval by up to
	// this percentage (clamped to at least one instruction), forcing more
	// frequent clock publication and more overflow IRQs at adversarially
	// uneven points.
	OverflowShrinkPct int64
	// MispredictPct drops each predicted page from a write-set prediction
	// with this probability (in percent): forced prefetch mispredictions.
	// Prediction is advisory, so drops cost time, never correctness.
	MispredictPct int64
	// BarrierSkewNS delays each barrier arrival by up to this many
	// nanoseconds of virtual time, randomizing rendezvous arrival order
	// in time (the logical arrival order is token-determined).
	BarrierSkewNS int64
	// FaultDelayNS adds up to this many nanoseconds to each serviced
	// copy-on-write page fault (including prefetch population).
	FaultDelayNS int64
	// CommitDelayNS adds up to this many nanoseconds to each token-held
	// serial commit phase: the injected commit slowdown.
	CommitDelayNS int64
	// LogStallNS stalls the commit log's drain goroutine by up to this
	// many REAL nanoseconds at its write points (periodic record batches,
	// segment rolls, snapshots): the injected slow-disk case. The stall is
	// wall-clock only — the drain is off the critical path, so a stalled
	// log exerts backpressure (visible as commitlog_append_stalls) but can
	// never move modeled time or results, and the logged bytes themselves
	// are unchanged; scripts/check.sh gates both.
	LogStallNS int64
	// FollowerKillPer10K kills a replica follower (a recovered panic the
	// fleet supervisor restarts from the newest snapshot) with this
	// per-ten-thousand probability at each applied commit. Followers are
	// pure consumers of the commit log, so a kill can delay reads but
	// never move the writer's results or what any follower serves at a
	// version (internal/replica's determinism gate asserts exactly that).
	FollowerKillPer10K int64
	// FollowerStallNS stalls a replica follower's apply loop by up to
	// this many REAL nanoseconds per applied commit — the slow-disk /
	// slow-consumer case that builds follower lag and exercises the
	// fleet's drain-from-routing degradation path.
	FollowerStallNS int64
	// FollowerTearPer10K makes a replica follower abandon its
	// subscription mid-stream (as if its read hit a torn tail or an
	// unreadable segment) with this per-ten-thousand probability at each
	// applied commit, forcing the retry/backoff resubscribe loop to
	// resume without gaps or duplicates.
	FollowerTearPer10K int64
}

// profiles is the registry of built-in perturbation mixes. Amplitudes are
// sized against costmodel.Default(): large enough to reorder virtual-time
// interleavings aggressively (a wake delay several times the modeled
// handoff, fault delays comparable to the fault itself), small enough
// that gated sweeps stay fast.
var profiles = []Profile{
	{Name: "jitter", ChargeJitterPct: 40},
	{Name: "token", WakeDelayNS: 2_500},
	{Name: "overflow", OverflowShrinkPct: 75},
	{Name: "mispredict", MispredictPct: 60},
	{Name: "barrier", BarrierSkewNS: 6_000},
	{Name: "mem", FaultDelayNS: 2_000, CommitDelayNS: 4_000},
	{Name: "logstall", LogStallNS: 500_000},
	// Follower-side profiles perturb replica consumers only: the writer's
	// stream is untouched, so every checksum and read answer must hold.
	{Name: "follower-kill", FollowerKillPer10K: 120, FollowerStallNS: 30_000},
	{Name: "follower-stall", FollowerStallNS: 400_000},
	{Name: "follower-tear", FollowerTearPer10K: 150, FollowerStallNS: 20_000},
	{
		Name:              "storm",
		ChargeJitterPct:   25,
		WakeDelayNS:       1_500,
		OverflowShrinkPct: 50,
		MispredictPct:     35,
		BarrierSkewNS:     3_000,
		FaultDelayNS:      1_200,
		CommitDelayNS:     2_500,
		LogStallNS:        200_000,
	},
}

// Profiles returns the built-in profile names, sorted.
func Profiles() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// ProfileByName returns the named built-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("chaos: unknown profile %q (have %s)", name, strings.Join(Profiles(), ", "))
}

// Stats counts injected perturbation events; all fields are lifetime
// totals. Durations are virtual nanoseconds on timed hosts.
type Stats struct {
	ChargeJitterEvents int64
	ChargeJitterNS     int64
	WakeDelays         int64
	WakeDelayNS        int64
	OverflowShrinks    int64
	MispredictDrops    int64
	BarrierSkews       int64
	BarrierSkewNS      int64
	FaultDelays        int64
	FaultDelayNS       int64
	CommitDelays       int64
	CommitDelayNS      int64
	LogStalls          int64
	LogStallNS         int64
	FollowerKills      int64
	FollowerStalls     int64
	FollowerStallNS    int64
	FollowerTears      int64
}

// Injector is one run's perturbation source: a profile plus a seed.
// Injectors are single-use per run (streams carry per-thread sequence
// state); create a fresh one for each runtime so replays line up.
// Counter updates are atomic, so a live metrics scrape may read Stats
// mid-run.
type Injector struct {
	prof Profile
	seed uint64

	chargeJitterEvents atomic.Int64
	chargeJitterNS     atomic.Int64
	wakeDelays         atomic.Int64
	wakeDelayNS        atomic.Int64
	overflowShrinks    atomic.Int64
	mispredictDrops    atomic.Int64
	barrierSkews       atomic.Int64
	barrierSkewNS      atomic.Int64
	faultDelays        atomic.Int64
	faultDelayNS       atomic.Int64
	commitDelays       atomic.Int64
	commitDelayNS      atomic.Int64
	logStalls          atomic.Int64
	logStallNS         atomic.Int64
	followerKills      atomic.Int64
	followerStalls     atomic.Int64
	followerStallNS    atomic.Int64
	followerTears      atomic.Int64
}

// New creates an injector for the named profile and seed.
func New(profile string, seed int64) (*Injector, error) {
	p, err := ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	return &Injector{prof: p, seed: uint64(seed)}, nil
}

// Parse builds an injector from a "profile:seed" spec (":seed" optional,
// default seed 1). The empty spec returns nil: chaos disabled.
func Parse(spec string) (*Injector, error) {
	if spec == "" {
		return nil, nil
	}
	name, seedStr, found := strings.Cut(spec, ":")
	seed := int64(1)
	if found {
		n, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chaos: bad seed in spec %q: %v", spec, err)
		}
		seed = n
	}
	return New(name, seed)
}

// Profile returns the injector's perturbation mix.
func (in *Injector) Profile() Profile { return in.prof }

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 { return int64(in.seed) }

// String renders the injector as a reusable -chaos spec.
func (in *Injector) String() string {
	return fmt.Sprintf("%s:%d", in.prof.Name, in.seed)
}

// Stats snapshots the injected-event counters.
func (in *Injector) Stats() Stats {
	return Stats{
		ChargeJitterEvents: in.chargeJitterEvents.Load(),
		ChargeJitterNS:     in.chargeJitterNS.Load(),
		WakeDelays:         in.wakeDelays.Load(),
		WakeDelayNS:        in.wakeDelayNS.Load(),
		OverflowShrinks:    in.overflowShrinks.Load(),
		MispredictDrops:    in.mispredictDrops.Load(),
		BarrierSkews:       in.barrierSkews.Load(),
		BarrierSkewNS:      in.barrierSkewNS.Load(),
		FaultDelays:        in.faultDelays.Load(),
		FaultDelayNS:       in.faultDelayNS.Load(),
		CommitDelays:       in.commitDelays.Load(),
		CommitDelayNS:      in.commitDelayNS.Load(),
		LogStalls:          in.logStalls.Load(),
		LogStallNS:         in.logStallNS.Load(),
		FollowerKills:      in.followerKills.Load(),
		FollowerStalls:     in.followerStalls.Load(),
		FollowerStallNS:    in.followerStallNS.Load(),
		FollowerTears:      in.followerTears.Load(),
	}
}

// Stream subsystem salts. Each (salt, id) pair owns an independent
// deterministic random sequence, so one subsystem consuming more draws
// never shifts another's.
const (
	saltHost     = 0x686f7374 // "host": binding wrapper (charge + wake)
	saltThread   = 0x74687264 // "thrd": det thread (barrier, commit)
	saltOverflow = 0x6f766572 // "over": counter-overflow schedule
	saltPredict  = 0x70726564 // "pred": write-set prediction filter
	saltFault    = 0x666c7400 // "flt":  page-fault servicing
	saltLog      = 0x6c6f6773 // "logs": commit-log drain stalls
	saltReplica  = 0x72657061 // "repa": replica follower faults
)

// Stream is a per-(subsystem, thread) deterministic random sequence with
// the injector's knobs applied. A stream must only be used by the thread
// it was created for (no internal locking) — the same ownership
// discipline as the runtime's unlock estimators and predictor tables.
type Stream struct {
	in    *Injector
	state uint64
}

func (in *Injector) stream(salt, id uint64) *Stream {
	if in == nil {
		return nil
	}
	// Decorrelate (seed, salt, id) into the initial splitmix64 state.
	s := in.seed ^ mix(salt) ^ mix(id*0x9e3779b97f4a7c15+salt)
	return &Stream{in: in, state: s}
}

// ThreadStream returns the det-thread stream for tid (barrier skew and
// commit delays).
func (in *Injector) ThreadStream(tid int) *Stream { return in.stream(saltThread, uint64(tid)) }

// HostStream returns the host-binding stream for a thread name hash
// (charge jitter and wake delays).
func (in *Injector) HostStream(id uint64) *Stream { return in.stream(saltHost, id) }

// OverflowStream returns the counter-overflow stream for tid.
func (in *Injector) OverflowStream(tid int) *Stream { return in.stream(saltOverflow, uint64(tid)) }

// PredictStream returns the prediction-filter stream for tid.
func (in *Injector) PredictStream(tid int) *Stream { return in.stream(saltPredict, uint64(tid)) }

// FaultStream returns the fault-delay stream for tid.
func (in *Injector) FaultStream(tid int) *Stream { return in.stream(saltFault, uint64(tid)) }

// LogStream returns the commit-log drain-stall stream (one per run: the
// drain goroutine is the stream's single owner).
func (in *Injector) LogStream() *Stream { return in.stream(saltLog, 0) }

// FollowerStream returns the replica-follower fault stream for follower
// id. Each follower goroutine owns its stream, so a fleet of N followers
// draws N independent sequences and one follower's kills never shift
// another's.
func (in *Injector) FollowerStream(id int) *Stream { return in.stream(saltReplica, uint64(id)) }

// mix is the splitmix64 output permutation.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next draws the stream's next 64-bit value.
func (s *Stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

// below draws a value in [0, n); n must be positive.
func (s *Stream) below(n int64) int64 {
	return int64(s.next() % uint64(n))
}

// ChargeJitter returns the extra nanoseconds to stretch an ns-long Charge
// by (0 when the knob is off or ns is 0).
func (s *Stream) ChargeJitter(ns int64) int64 {
	if s == nil || s.in.prof.ChargeJitterPct <= 0 || ns <= 0 {
		return 0
	}
	extra := ns * s.below(s.in.prof.ChargeJitterPct+1) / 100
	if extra > 0 {
		s.in.chargeJitterEvents.Add(1)
		s.in.chargeJitterNS.Add(extra)
	}
	return extra
}

// WakeDelay returns the nanoseconds to delay a wake by.
func (s *Stream) WakeDelay() int64 {
	if s == nil || s.in.prof.WakeDelayNS <= 0 {
		return 0
	}
	d := s.below(s.in.prof.WakeDelayNS + 1)
	if d > 0 {
		s.in.wakeDelays.Add(1)
		s.in.wakeDelayNS.Add(d)
	}
	return d
}

// OverflowInterval perturbs a counter-overflow interval, shrinking it by
// up to the profile's percentage. The result is always at least 1: a
// zero interval would stall instruction retirement entirely.
func (s *Stream) OverflowInterval(iv int64) int64 {
	if s == nil || s.in.prof.OverflowShrinkPct <= 0 || iv <= 1 {
		return iv
	}
	shrunk := iv - iv*s.below(s.in.prof.OverflowShrinkPct+1)/100
	if shrunk < 1 {
		shrunk = 1
	}
	if shrunk != iv {
		s.in.overflowShrinks.Add(1)
	}
	return shrunk
}

// FilterPrediction drops each predicted page with the profile's
// misprediction probability, filtering pages in place. Order is
// preserved, so a sorted prediction stays sorted.
func (s *Stream) FilterPrediction(pages []int) []int {
	if s == nil || s.in.prof.MispredictPct <= 0 || len(pages) == 0 {
		return pages
	}
	kept := pages[:0]
	dropped := int64(0)
	for _, pg := range pages {
		if s.below(100) < s.in.prof.MispredictPct {
			dropped++
			continue
		}
		kept = append(kept, pg)
	}
	if dropped > 0 {
		s.in.mispredictDrops.Add(dropped)
	}
	return kept
}

// BarrierSkew returns the nanoseconds to delay a barrier arrival by.
func (s *Stream) BarrierSkew() int64 {
	if s == nil || s.in.prof.BarrierSkewNS <= 0 {
		return 0
	}
	d := s.below(s.in.prof.BarrierSkewNS + 1)
	if d > 0 {
		s.in.barrierSkews.Add(1)
		s.in.barrierSkewNS.Add(d)
	}
	return d
}

// FaultDelay returns the extra nanoseconds to charge for servicing one
// copy-on-write fault of the given page.
func (s *Stream) FaultDelay(page int) int64 {
	if s == nil || s.in.prof.FaultDelayNS <= 0 {
		return 0
	}
	d := s.below(s.in.prof.FaultDelayNS + 1)
	if d > 0 {
		s.in.faultDelays.Add(1)
		s.in.faultDelayNS.Add(d)
	}
	return d
}

// LogStall returns the REAL nanoseconds to stall the commit-log drain
// goroutine by at one of its write points.
func (s *Stream) LogStall() int64 {
	if s == nil || s.in.prof.LogStallNS <= 0 {
		return 0
	}
	d := s.below(s.in.prof.LogStallNS + 1)
	if d > 0 {
		s.in.logStalls.Add(1)
		s.in.logStallNS.Add(d)
	}
	return d
}

// FollowerKill reports whether to kill the follower at this applied
// commit (a panic the fleet supervisor recovers and restarts from).
func (s *Stream) FollowerKill() bool {
	if s == nil || s.in.prof.FollowerKillPer10K <= 0 {
		return false
	}
	if s.below(10_000) >= s.in.prof.FollowerKillPer10K {
		return false
	}
	s.in.followerKills.Add(1)
	return true
}

// FollowerStall returns the REAL nanoseconds to stall a follower's apply
// loop by at this applied commit.
func (s *Stream) FollowerStall() int64 {
	if s == nil || s.in.prof.FollowerStallNS <= 0 {
		return 0
	}
	d := s.below(s.in.prof.FollowerStallNS + 1)
	if d > 0 {
		s.in.followerStalls.Add(1)
		s.in.followerStallNS.Add(d)
	}
	return d
}

// FollowerTear reports whether the follower's read should tear here:
// abandon the subscription as if the tail turned unreadable, exercising
// the resubscribe/backoff path.
func (s *Stream) FollowerTear() bool {
	if s == nil || s.in.prof.FollowerTearPer10K <= 0 {
		return false
	}
	if s.below(10_000) >= s.in.prof.FollowerTearPer10K {
		return false
	}
	s.in.followerTears.Add(1)
	return true
}

// CommitDelay returns the extra nanoseconds to charge a token-held serial
// commit phase.
func (s *Stream) CommitDelay() int64 {
	if s == nil || s.in.prof.CommitDelayNS <= 0 {
		return 0
	}
	d := s.below(s.in.prof.CommitDelayNS + 1)
	if d > 0 {
		s.in.commitDelays.Add(1)
		s.in.commitDelayNS.Add(d)
	}
	return d
}
