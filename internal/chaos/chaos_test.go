package chaos

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/host"
)

// Two injectors with the same (profile, seed) must produce identical
// streams, draw for draw — the replay property every chaos gate relies on.
func TestStreamsReplayExactly(t *testing.T) {
	mk := func() *Injector {
		in, err := New("storm", 7)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	for tid := 0; tid < 4; tid++ {
		sa, sb := a.ThreadStream(tid), b.ThreadStream(tid)
		for i := 0; i < 100; i++ {
			if x, y := sa.BarrierSkew(), sb.BarrierSkew(); x != y {
				t.Fatalf("tid %d draw %d: barrier skew %d != %d", tid, i, x, y)
			}
			if x, y := sa.CommitDelay(), sb.CommitDelay(); x != y {
				t.Fatalf("tid %d draw %d: commit delay %d != %d", tid, i, x, y)
			}
		}
	}
}

// Streams of different subsystems and tids are independent: consuming one
// must not shift another's sequence.
func TestStreamIndependence(t *testing.T) {
	in, _ := New("storm", 3)
	ref, _ := New("storm", 3)

	// Drain lots of draws from unrelated streams.
	hs := in.HostStream(42)
	for i := 0; i < 1000; i++ {
		hs.WakeDelay()
		in.FaultStream(1).FaultDelay(i)
	}
	// tid 2's thread stream must be unaffected.
	got, want := in.ThreadStream(2), ref.ThreadStream(2)
	for i := 0; i < 50; i++ {
		if x, y := got.CommitDelay(), want.CommitDelay(); x != y {
			t.Fatalf("draw %d: %d != %d — cross-stream interference", i, x, y)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := New("token", 1)
	b, _ := New("token", 2)
	sa, sb := a.HostStream(5), b.HostStream(5)
	same := true
	for i := 0; i < 32; i++ {
		if sa.WakeDelay() != sb.WakeDelay() {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical wake-delay sequences")
	}
}

func TestParse(t *testing.T) {
	if in, err := Parse(""); err != nil || in != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", in, err)
	}
	in, err := Parse("jitter")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 1 || in.Profile().Name != "jitter" {
		t.Fatalf("default seed: got %s seed %d", in.Profile().Name, in.Seed())
	}
	in, err = Parse("storm:42")
	if err != nil {
		t.Fatal(err)
	}
	if in.String() != "storm:42" {
		t.Fatalf("round trip: %s", in.String())
	}
	if _, err := Parse("nosuch:1"); err == nil || !strings.Contains(err.Error(), "unknown profile") {
		t.Fatalf("unknown profile: err = %v", err)
	}
	if _, err := Parse("jitter:x"); err == nil || !strings.Contains(err.Error(), "bad seed") {
		t.Fatalf("bad seed: err = %v", err)
	}
}

func TestProfilesSortedAndResolvable(t *testing.T) {
	names := Profiles()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Profiles() not sorted: %v", names)
	}
	if len(names) < 3 {
		t.Fatalf("need at least 3 built-in profiles for the gate, have %v", names)
	}
	for _, n := range names {
		if _, err := ProfileByName(n); err != nil {
			t.Fatal(err)
		}
	}
}

// A nil stream (chaos disabled) must be a no-op for every injection point.
func TestNilStreamSafe(t *testing.T) {
	var s *Stream
	if s.ChargeJitter(100) != 0 || s.WakeDelay() != 0 || s.BarrierSkew() != 0 ||
		s.FaultDelay(3) != 0 || s.CommitDelay() != 0 {
		t.Fatal("nil stream injected a delay")
	}
	if iv := s.OverflowInterval(5000); iv != 5000 {
		t.Fatalf("nil stream changed overflow interval: %d", iv)
	}
	pages := []int{1, 2, 3}
	if got := s.FilterPrediction(pages); len(got) != 3 {
		t.Fatalf("nil stream filtered a prediction: %v", got)
	}
	if s.FollowerKill() || s.FollowerTear() || s.FollowerStall() != 0 || s.LogStall() != 0 {
		t.Fatal("nil stream injected a follower fault")
	}
}

// Follower streams must replay exactly and fire each fault class under
// its profile — the property the replica chaos gate's restart schedules
// depend on.
func TestFollowerStreamsReplayAndFire(t *testing.T) {
	type draw struct {
		kill, tear bool
		stall      int64
	}
	runOnce := func(profile string) []draw {
		in, err := New(profile, 9)
		if err != nil {
			t.Fatal(err)
		}
		var out []draw
		for id := 0; id < 3; id++ {
			s := in.FollowerStream(id)
			for i := 0; i < 2000; i++ {
				out = append(out, draw{kill: s.FollowerKill(), tear: s.FollowerTear(), stall: s.FollowerStall()})
			}
		}
		return out
	}
	for _, profile := range []string{"follower-kill", "follower-stall", "follower-tear"} {
		a, b := runOnce(profile), runOnce(profile)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s draw %d differs across replays: %+v != %+v", profile, i, a[i], b[i])
			}
		}
		kills, tears, stalls := 0, 0, 0
		for _, d := range a {
			if d.kill {
				kills++
			}
			if d.tear {
				tears++
			}
			if d.stall > 0 {
				stalls++
			}
		}
		switch profile {
		case "follower-kill":
			if kills == 0 {
				t.Fatal("follower-kill never killed in 6000 draws")
			}
		case "follower-tear":
			if tears == 0 {
				t.Fatal("follower-tear never tore in 6000 draws")
			}
		case "follower-stall":
			if stalls == 0 || kills != 0 || tears != 0 {
				t.Fatalf("follower-stall fired wrong classes: %d stalls, %d kills, %d tears", stalls, kills, tears)
			}
		}
	}
	in, _ := New("follower-kill", 9)
	s := in.FollowerStream(0)
	for i := 0; i < 2000; i++ {
		s.FollowerKill()
		s.FollowerStall()
	}
	st := in.Stats()
	if st.FollowerKills == 0 || st.FollowerStalls == 0 || st.FollowerStallNS == 0 {
		t.Fatalf("follower stats did not count: %+v", st)
	}
}

// Perturbed overflow intervals must stay >= 1 (a zero interval would stall
// instruction retirement) and never grow.
func TestOverflowIntervalBounds(t *testing.T) {
	in, _ := New("overflow", 9)
	s := in.OverflowStream(0)
	for i := 0; i < 5000; i++ {
		iv := s.OverflowInterval(1 + int64(i%7))
		if iv < 1 {
			t.Fatalf("interval %d < 1", iv)
		}
		if iv > 1+int64(i%7) {
			t.Fatalf("interval grew: %d > %d", iv, 1+i%7)
		}
	}
}

// FilterPrediction may drop pages but must preserve order and never
// invent pages.
func TestFilterPredictionDropsInOrder(t *testing.T) {
	in, _ := New("mispredict", 11)
	s := in.PredictStream(0)
	orig := []int{2, 5, 9, 14, 20, 33, 40, 51}
	dropped := false
	for i := 0; i < 200; i++ {
		pages := append([]int(nil), orig...)
		got := s.FilterPrediction(pages)
		if len(got) < len(orig) {
			dropped = true
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("order not preserved: %v", got)
		}
		allowed := make(map[int]bool)
		for _, p := range orig {
			allowed[p] = true
		}
		for _, p := range got {
			if !allowed[p] {
				t.Fatalf("invented page %d in %v", p, got)
			}
		}
	}
	if !dropped {
		t.Fatal("mispredict profile never dropped a page in 200 rounds")
	}
	if in.Stats().MispredictDrops == 0 {
		t.Fatal("drops not counted")
	}
}

func TestStatsCount(t *testing.T) {
	in, _ := New("storm", 4)
	s := in.ThreadStream(0)
	for i := 0; i < 100; i++ {
		s.BarrierSkew()
		s.CommitDelay()
	}
	st := in.Stats()
	if st.BarrierSkews == 0 || st.CommitDelays == 0 {
		t.Fatalf("stats did not count: %+v", st)
	}
	if st.BarrierSkewNS <= 0 || st.CommitDelayNS <= 0 {
		t.Fatalf("stats did not accumulate durations: %+v", st)
	}
}

// Stats must be safe to snapshot while streams inject from other
// goroutines (the live metrics scrape path). Run under -race.
func TestStatsConcurrentScrape(t *testing.T) {
	in, _ := New("storm", 5)
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				in.Stats()
			}
		}
	}()
	var workers sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		workers.Add(1)
		go func(tid int) {
			defer workers.Done()
			s := in.ThreadStream(tid)
			for i := 0; i < 10000; i++ {
				s.CommitDelay()
			}
		}(tid)
	}
	workers.Wait()
	close(stop)
	scraper.Wait()
}

// fakeHost records charges and wakes for wrapper tests.
type fakeHost struct {
	timed   bool
	charged int64
	woken   int
}

type fakeBinding struct{ h *fakeHost }

func (h *fakeHost) Go(name string, parent host.Binding, fn func(host.Binding)) {
	fn(&fakeBinding{h: h})
}
func (h *fakeHost) Run() error                  { return nil }
func (h *fakeHost) Timed() bool                 { return h.timed }
func (b *fakeBinding) Now() int64               { return b.h.charged }
func (b *fakeBinding) Charge(ns int64)          { b.h.charged += ns }
func (b *fakeBinding) Block()                   {}
func (b *fakeBinding) Wake(target host.Binding) { b.h.woken++ }

func TestWrapHostNilInjector(t *testing.T) {
	h := &fakeHost{}
	if got := WrapHost(h, nil); got != host.Host(h) {
		t.Fatal("nil injector must return the host unchanged")
	}
}

// The wrapper must stretch charges (jitter) and charge wake delays on a
// timed host, and the perturbed virtual time must replay exactly.
func TestWrapHostChargesJitterDeterministically(t *testing.T) {
	runOnce := func() int64 {
		in, _ := New("storm", 6)
		h := &fakeHost{timed: true}
		wh := WrapHost(h, in)
		wh.Go("t0", nil, func(b host.Binding) {
			var peer fakeBinding
			peer.h = h
			for i := 0; i < 200; i++ {
				b.Charge(1000)
				b.Wake(&peer)
			}
		})
		if h.woken != 200 {
			t.Fatalf("wakes not forwarded: %d", h.woken)
		}
		return h.charged
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("perturbed charge totals differ across replays: %d != %d", a, b)
	}
	if a <= 200*1000 {
		t.Fatalf("no jitter or wake delay injected: charged %d", a)
	}
}
