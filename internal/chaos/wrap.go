package chaos

import (
	"hash/fnv"
	"time"

	"repro/internal/host"
)

// WrapHost interposes the injector between a runtime and its host:
// every Binding.Charge is stretched by the profile's virtual-time jitter
// and every Binding.Wake — the token-grant and barrier-release handoff
// path — is delayed adversarially. Wrapping with a nil injector returns
// the host unchanged.
//
// On a timed host the wake delay is charged to the waking thread (the
// handoff itself took longer, which postpones the wake the same way);
// on an untimed host it is a real sleep, like the -verify schedule
// perturbation. Neither touches instruction counts or arbiter state, so
// logical order — and therefore results — cannot move.
func WrapHost(h host.Host, in *Injector) host.Host {
	if in == nil {
		return h
	}
	return &chaosHost{inner: h, in: in}
}

type chaosHost struct {
	inner host.Host
	in    *Injector
}

// Go implements host.Host, wrapping the child's binding.
func (h *chaosHost) Go(name string, parent host.Binding, fn func(host.Binding)) {
	h.inner.Go(name, unwrap(parent), func(b host.Binding) {
		fn(&chaosBinding{
			h:     h,
			inner: b,
			s:     h.in.HostStream(nameID(name)),
		})
	})
}

// Run implements host.Host.
func (h *chaosHost) Run() error { return h.inner.Run() }

// Timed implements host.Host.
func (h *chaosHost) Timed() bool { return h.inner.Timed() }

// nameID hashes a thread name into a stream id, so each thread's
// perturbation sequence is independent of spawn interleaving.
func nameID(name string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(name))
	return f.Sum64()
}

func unwrap(b host.Binding) host.Binding {
	if cb, ok := b.(*chaosBinding); ok {
		return cb.inner
	}
	return b
}

type chaosBinding struct {
	h     *chaosHost
	inner host.Binding
	s     *Stream
}

func (b *chaosBinding) Now() int64 { return b.inner.Now() }

// Charge elapses the modeled time plus the profile's jitter.
func (b *chaosBinding) Charge(ns int64) {
	b.inner.Charge(ns + b.s.ChargeJitter(ns))
}

func (b *chaosBinding) Block() { b.inner.Block() }

// Wake delays the handoff, then wakes the (unwrapped) target.
func (b *chaosBinding) Wake(target host.Binding) {
	b.wakeChaos()
	b.inner.Wake(unwrap(target))
}

// WakeFrom implements host.AnchoredWaker: the handoff delay is charged to
// the waker as in Wake, and the anchor origin is pushed out by the same
// delay — chaos slows the handoff, it never reorders it — before
// forwarding to the inner host. Falls back to plain Wake if the inner
// binding does not anchor.
func (b *chaosBinding) WakeFrom(target host.Binding, origin int64) {
	d := b.wakeChaos()
	if aw, ok := b.inner.(host.AnchoredWaker); ok {
		aw.WakeFrom(unwrap(target), origin+d)
		return
	}
	b.inner.Wake(unwrap(target))
}

// wakeChaos applies the profile's wake delay to the waking thread and
// returns the virtual-time delay charged (0 on untimed hosts, where the
// delay is a real sleep instead).
func (b *chaosBinding) wakeChaos() int64 {
	d := b.s.WakeDelay()
	if d <= 0 {
		return 0
	}
	if b.h.inner.Timed() {
		b.inner.Charge(d)
		return d
	}
	time.Sleep(time.Duration(d) * time.Nanosecond)
	return 0
}

// SetBlockReason forwards the diagnostic block reason to hosts that
// record one (the simulation host's deadlock report, the real host's
// watchdog dump).
func (b *chaosBinding) SetBlockReason(reason string) {
	if br, ok := b.inner.(host.BlockReasoner); ok {
		br.SetBlockReason(reason)
	}
}

var (
	_ host.Host          = (*chaosHost)(nil)
	_ host.Binding       = (*chaosBinding)(nil)
	_ host.BlockReasoner = (*chaosBinding)(nil)
	_ host.AnchoredWaker = (*chaosBinding)(nil)
)
