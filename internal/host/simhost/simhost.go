// Package simhost runs runtime threads as virtual threads on the
// discrete-event engine, with virtual-time cost charging. It is the host
// behind the benchmark harness: every experiment result is a deterministic
// function of the workload and configuration.
package simhost

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/host"
	"repro/internal/sim"
)

// Host implements host.Host over a sim.Engine.
type Host struct {
	eng   *sim.Engine
	model costmodel.Model
}

// New creates a simulation host using the given cost model.
func New(model costmodel.Model) *Host {
	return &Host{eng: sim.New(), model: model}
}

// Engine exposes the underlying engine (tests use it directly).
func (h *Host) Engine() *sim.Engine { return h.eng }

// Model returns the host's cost model.
func (h *Host) Model() costmodel.Model { return h.model }

type binding struct {
	h    *Host
	proc *sim.Proc
	// pendingWake holds the virtual time of a wake that arrived while the
	// thread was still running; -1 means none. Execution is single-threaded
	// in the engine, so no locking is needed.
	pendingWake int64
}

// Go implements host.Host.
func (h *Host) Go(name string, parent host.Binding, fn func(host.Binding)) {
	start := int64(0)
	if parent != nil {
		start = parent.Now()
	}
	b := &binding{h: h, pendingWake: -1}
	b.proc = h.eng.Go(name, start, func(p *sim.Proc) { fn(b) })
}

// Run implements host.Host.
func (h *Host) Run() error { return h.eng.Run() }

// Timed implements host.Host.
func (h *Host) Timed() bool { return true }

func (b *binding) Now() int64      { return b.proc.Now() }
func (b *binding) Charge(ns int64) { b.proc.Advance(ns) }

// SetBlockReason implements host.BlockReasoner: the reason appears next
// to the proc's name in the engine's deadlock report.
func (b *binding) SetBlockReason(reason string) { b.proc.SetBlockReason(reason) }

func (b *binding) Block() {
	if b.pendingWake >= 0 {
		// The wake raced ahead of the block: consume the permit, elapsing
		// any remaining latency.
		t := b.pendingWake
		b.pendingWake = -1
		if t > b.proc.Now() {
			b.proc.Advance(t - b.proc.Now())
		}
		return
	}
	b.proc.Park()
}

func (b *binding) Wake(target host.Binding) {
	b.wakeAt(target, b.proc.Now()+b.h.model.Wakeup)
}

// WakeFrom implements host.AnchoredWaker: the wake is anchored at origin
// (a shard's virtual-time frontier under per-shard granting) rather than
// the waker's clock, so threads granted in different shards can resume in
// overlapping virtual time. The engine clamps the unpark to the target's
// own park time, preserving per-thread monotonicity.
func (b *binding) WakeFrom(target host.Binding, origin int64) {
	b.wakeAt(target, origin+b.h.model.Wakeup)
}

func (b *binding) wakeAt(target host.Binding, at int64) {
	t := target.(*binding)
	if t.proc.Parked() {
		t.proc.UnparkAt(at)
		return
	}
	if t.pendingWake >= 0 {
		panic(fmt.Sprintf("simhost: double wake of %q", t.proc.Name()))
	}
	t.pendingWake = at
}
