package host_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/host"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
)

// hosts under test share one behavioural contract.
func hosts() map[string]func() host.Host {
	return map[string]func() host.Host{
		"real":      func() host.Host { return realhost.New(0, 0) },
		"real-pert": func() host.Host { return realhost.New(200*time.Microsecond, 1) },
		"sim":       func() host.Host { return simhost.New(costmodel.Default()) },
	}
}

func TestBlockWake(t *testing.T) {
	for name, mk := range hosts() {
		t.Run(name, func(t *testing.T) {
			h := mk()
			var got atomic.Int32
			var waiter host.Binding
			ready := make(chan struct{})
			h.Go("waiter", nil, func(b host.Binding) {
				waiter = b
				close(ready)
				b.Block()
				got.Store(1)
			})
			h.Go("waker", nil, func(b host.Binding) {
				<-ready
				b.Charge(1000) // give the waiter a chance to block (sim: order)
				b.Wake(waiter)
			})
			if err := h.Run(); err != nil {
				t.Fatal(err)
			}
			if got.Load() != 1 {
				t.Fatal("waiter never woke")
			}
		})
	}
}

func TestWakeBeforeBlockNotLost(t *testing.T) {
	for name, mk := range hosts() {
		t.Run(name, func(t *testing.T) {
			h := mk()
			var target host.Binding
			ready := make(chan struct{})
			woken := make(chan struct{})
			h.Go("target", nil, func(b host.Binding) {
				target = b
				close(ready)
				// Delay so the wake likely lands before the block (on the
				// sim host, ordering guarantees it).
				b.Charge(10_000)
				<-woken
				b.Block() // must return immediately: permit pending
			})
			h.Go("waker", nil, func(b host.Binding) {
				<-ready
				b.Wake(target)
				close(woken)
			})
			if err := h.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSimChargeAdvancesVirtualTime(t *testing.T) {
	h := simhost.New(costmodel.Default())
	var end int64
	h.Go("p", nil, func(b host.Binding) {
		b.Charge(12345)
		end = b.Now()
	})
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 12345 {
		t.Fatalf("Now = %d, want 12345", end)
	}
	if !h.Timed() {
		t.Fatal("sim host must be timed")
	}
	if realhost.New(0, 0).Timed() {
		t.Fatal("real host must not be timed")
	}
}

func TestSimChildStartsAtParentTime(t *testing.T) {
	h := simhost.New(costmodel.Default())
	var childStart int64
	h.Go("parent", nil, func(b host.Binding) {
		b.Charge(500)
		h.Go("child", b, func(c host.Binding) {
			childStart = c.Now()
		})
	})
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if childStart != 500 {
		t.Fatalf("child started at %d, want 500", childStart)
	}
}

func TestSimWakeLatency(t *testing.T) {
	m := costmodel.Default()
	h := simhost.New(m)
	var resumeAt int64
	var waiter host.Binding
	h.Go("waiter", nil, func(b host.Binding) {
		waiter = b
		b.Block()
		resumeAt = b.Now()
	})
	h.Go("waker", nil, func(b host.Binding) {
		b.Charge(100) // waiter parks first
		b.Wake(waiter)
	})
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 100 + m.Wakeup; resumeAt != want {
		t.Fatalf("waiter resumed at %d, want %d", resumeAt, want)
	}
}
