// Package host abstracts how runtime threads execute: for real (goroutines
// with wall-clock time) or simulated (virtual threads with virtual time on
// the discrete-event engine). The deterministic runtimes are written once
// against this interface; their logical behaviour — sync ordering, memory
// state — is identical on both hosts, which the integration tests assert.
package host

// Host creates and runs threads.
type Host interface {
	// Go starts a thread executing fn. parent is the binding of the
	// creating thread (nil only for threads created before Run). On the
	// simulation host the child begins at the parent's virtual time.
	Go(name string, parent Binding, fn func(Binding))
	// Run blocks until all threads have finished. On the simulation host it
	// returns an error if parked threads remain (deadlock).
	Run() error
	// Timed reports whether the host models time, i.e. Charge has effect
	// and Now returns meaningful virtual nanoseconds. The runtimes use this
	// to enable cost charging and overflow quantization.
	Timed() bool
}

// IdleReasonPrefix marks a block reason as intentional idleness: the
// thread is parked waiting for work (a pooled scheduler worker between
// assignments), not stuck waiting on progress another thread owes it.
// Hosts with stall detection exempt idle-prefixed blocks from their
// watchdog; the simulation host still reports them in deadlock dumps,
// since an idle thread at simulation end is a drain bug in the runtime.
const IdleReasonPrefix = "idle: "

// BlockReasoner is an optional Binding extension: hosts that implement it
// record a human-readable description of what the thread is about to
// block on, surfaced in failure diagnostics — the simulation host's
// deadlock report and the real host's watchdog stall dump. Runtimes call
// it (from the bound thread) immediately before Block; the reason is
// purely diagnostic and never affects scheduling.
type BlockReasoner interface {
	SetBlockReason(reason string)
}

// AnchoredWaker is an optional Binding extension for hosts that model
// time: WakeFrom is Wake with an explicit virtual-time origin, used by
// per-shard granting to anchor a wake at the target's shard frontier
// instead of the waker's own clock. origin is in the host's time base;
// the wake lands no earlier than origin plus the host's wake latency.
// Hosts without meaningful time (and callers on such hosts) fall back to
// plain Wake.
type AnchoredWaker interface {
	WakeFrom(target Binding, origin int64)
}

// Binding is a thread's handle to its host context. Block and Charge must
// be called only by the bound thread itself; Wake may be called by any
// thread.
type Binding interface {
	// Now returns the thread's current time in nanoseconds (virtual on the
	// simulation host, wall-clock on the real host).
	Now() int64
	// Charge elapses ns nanoseconds of modeled work (no-op on real host).
	Charge(ns int64)
	// Block suspends the thread until a Wake targets it. A Wake that
	// arrives first is not lost: the Block returns immediately (one
	// pending wake permit is held, and double-wake is a runtime bug that
	// panics).
	Block()
	// Wake releases target from Block (or pre-arms its next Block).
	Wake(target Binding)
}
