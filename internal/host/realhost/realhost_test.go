package realhost

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/host"
)

// An induced stall must be caught by the watchdog — the report names the
// blocked thread and its declared blocking site — and a late wake must
// still land so the program completes instead of hanging.
func TestWatchdogCatchesStallThenLateWakeLands(t *testing.T) {
	h := New(0, 0)
	reports := make(chan string, 1)
	var fires atomic.Int32
	h.SetWatchdog(50*time.Millisecond, func(report string) {
		fires.Add(1)
		reports <- report
	})

	var blocker host.Binding
	ready := make(chan struct{})
	woke := make(chan struct{})
	h.Go("t0", nil, func(b host.Binding) {
		blocker = b
		b.(host.BlockReasoner).SetBlockReason("mutex 7")
		close(ready)
		b.Block() // no one wakes us until after the watchdog fires
		close(woke)
	})
	h.Go("t1", nil, func(b host.Binding) {
		<-ready
		select {
		case report := <-reports:
			for _, want := range []string{"watchdog", "no progress", "t0", "mutex 7"} {
				if !strings.Contains(report, want) {
					t.Errorf("stall report missing %q:\n%s", want, report)
				}
			}
		case <-time.After(5 * time.Second):
			t.Error("watchdog never fired")
		}
		// The late wake must land: the stalled thread resumes normally.
		b.Wake(blocker)
	})

	done := make(chan struct{})
	go func() {
		_ = h.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("host hung after the late wake")
	}
	select {
	case <-woke:
	default:
		t.Fatal("stalled thread never resumed")
	}
	if n := fires.Load(); n != 1 {
		t.Fatalf("watchdog fired %d times, want exactly once", n)
	}
}

// The handler fires once even when several threads stall past the timeout.
func TestWatchdogFiresOnce(t *testing.T) {
	h := New(0, 0)
	var fires atomic.Int32
	h.SetWatchdog(30*time.Millisecond, func(string) { fires.Add(1) })

	bindings := make(chan host.Binding, 3)
	for _, name := range []string{"t0", "t1", "t2"} {
		h.Go(name, nil, func(b host.Binding) {
			bindings <- b
			b.Block()
		})
	}
	h.Go("waker", nil, func(b host.Binding) {
		time.Sleep(150 * time.Millisecond) // let all three stall
		for i := 0; i < 3; i++ {
			b.Wake(<-bindings)
		}
	})
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if n := fires.Load(); n != 1 {
		t.Fatalf("watchdog fired %d times, want exactly once", n)
	}
}

// A prompt wake must not trip the watchdog at all.
func TestWatchdogQuietOnProgress(t *testing.T) {
	h := New(0, 0)
	var fires atomic.Int32
	h.SetWatchdog(time.Second, func(string) { fires.Add(1) })

	bindings := make(chan host.Binding, 1)
	h.Go("t0", nil, func(b host.Binding) {
		bindings <- b
		b.Block()
	})
	h.Go("t1", nil, func(b host.Binding) {
		b.Wake(<-bindings)
	})
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if n := fires.Load(); n != 0 {
		t.Fatalf("watchdog fired %d times on a healthy run", n)
	}
}

func TestWatchdogRejectsZeroTimeout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetWatchdog(0) did not panic")
		}
	}()
	New(0, 0).SetWatchdog(0, func(string) {})
}

// A block declared idle (host.IdleReasonPrefix — a pooled scheduler worker
// parked between assignments) is exempt from the watchdog, even when it
// outlasts the timeout many times over; an identical block without the
// prefix fires. The late wake must still land either way.
func TestWatchdogExemptsIdleParks(t *testing.T) {
	h := New(0, 0)
	var fires atomic.Int32
	h.SetWatchdog(20*time.Millisecond, func(string) { fires.Add(1) })

	bindings := make(chan host.Binding, 1)
	h.Go("w0", nil, func(b host.Binding) {
		b.(host.BlockReasoner).SetBlockReason(host.IdleReasonPrefix + "pooled worker w0")
		bindings <- b
		b.Block() // parked idle: waits for work, not for progress
	})
	h.Go("t1", nil, func(b host.Binding) {
		target := <-bindings
		time.Sleep(120 * time.Millisecond) // several watchdog windows
		b.Wake(target)
	})
	if err := h.Run(); err != nil {
		t.Fatal(err)
	}
	if n := fires.Load(); n != 0 {
		t.Fatalf("watchdog fired %d times on an idle-declared park", n)
	}
}
