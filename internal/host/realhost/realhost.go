// Package realhost runs runtime threads as plain goroutines with real
// parallelism and wall-clock time. This is the host behind the public
// consequence API: programs execute concurrently for real, and determinism
// comes entirely from the runtime's logical-clock ordering — which the
// perturbation tests stress by injecting random delays around every
// blocking point.
package realhost

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/host"
)

// Host implements host.Host over goroutines.
type Host struct {
	wg    sync.WaitGroup
	start time.Time

	// perturb > 0 injects random sleeps (up to perturb) before blocks and
	// wakes, to demonstrate schedule-independence in tests.
	perturb time.Duration
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// New creates a real host. perturb > 0 enables schedule perturbation with
// the given maximum delay, seeded by seed.
func New(perturb time.Duration, seed int64) *Host {
	h := &Host{start: time.Now(), perturb: perturb}
	if perturb > 0 {
		h.rng = rand.New(rand.NewSource(seed))
	}
	return h
}

type binding struct {
	h    *Host
	name string
	ch   chan struct{}
}

// Go implements host.Host.
func (h *Host) Go(name string, parent host.Binding, fn func(host.Binding)) {
	b := &binding{h: h, name: name, ch: make(chan struct{}, 1)}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.maybePerturb()
		fn(b)
	}()
}

// Run implements host.Host.
func (h *Host) Run() error {
	h.wg.Wait()
	return nil
}

// Timed implements host.Host: the real host does not model time.
func (h *Host) Timed() bool { return false }

func (h *Host) maybePerturb() {
	if h.perturb <= 0 {
		return
	}
	h.rngMu.Lock()
	d := time.Duration(h.rng.Int63n(int64(h.perturb)))
	h.rngMu.Unlock()
	time.Sleep(d)
}

func (b *binding) Now() int64      { return time.Since(b.h.start).Nanoseconds() }
func (b *binding) Charge(ns int64) {}
func (b *binding) Block() {
	b.h.maybePerturb()
	<-b.ch
}

func (b *binding) Wake(target host.Binding) {
	t := target.(*binding)
	t.h.maybePerturb()
	select {
	case t.ch <- struct{}{}:
	default:
		panic(fmt.Sprintf("realhost: double wake of thread %q", t.name))
	}
}
