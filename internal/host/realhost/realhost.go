// Package realhost runs runtime threads as plain goroutines with real
// parallelism and wall-clock time. This is the host behind the public
// consequence API: programs execute concurrently for real, and determinism
// comes entirely from the runtime's logical-clock ordering — which the
// perturbation tests stress by injecting random delays around every
// blocking point.
//
// Unlike the simulation host, the real host cannot prove a deadlock (a
// wake may always still arrive), so by default a deadlocked program hangs
// exactly as a real pthreads program would. SetWatchdog bounds that wait:
// if any thread stays blocked longer than the timeout, the host invokes a
// stall handler with a report of every blocked thread — its name, what it
// declared it was blocking on (host.BlockReasoner), and for how long — so
// callers can dump diagnostic state and fail instead of hanging forever.
package realhost

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/host"
)

// Host implements host.Host over goroutines.
type Host struct {
	wg    sync.WaitGroup
	start time.Time

	// perturb > 0 injects random sleeps (up to perturb) before blocks and
	// wakes, to demonstrate schedule-independence in tests.
	perturb time.Duration
	rngMu   sync.Mutex
	rng     *rand.Rand

	// watchdog state. blocked tracks bindings currently inside Block,
	// keyed to the wall time they entered; guarded by wdMu (a stalled
	// thread reads it to build the report while others mutate it).
	wdMu      sync.Mutex
	wdTimeout time.Duration
	onStall   func(report string)
	stalled   bool
	blocked   map[*binding]time.Time
}

// New creates a real host. perturb > 0 enables schedule perturbation with
// the given maximum delay, seeded by seed.
func New(perturb time.Duration, seed int64) *Host {
	h := &Host{
		start:   time.Now(),
		perturb: perturb,
		blocked: make(map[*binding]time.Time),
	}
	if perturb > 0 {
		h.rng = rand.New(rand.NewSource(seed))
	}
	return h
}

// SetWatchdog arms the stall watchdog: when any thread has been blocked
// for longer than timeout, onStall is invoked exactly once with a report
// listing every blocked thread, its declared block reason, and its wait
// duration. The handler runs on the stalled thread's goroutine; it may
// dump further state and terminate the process, or merely record — the
// thread resumes waiting for its wake afterwards, so a late wake is
// never lost. Must be called before Run.
func (h *Host) SetWatchdog(timeout time.Duration, onStall func(report string)) {
	if timeout <= 0 {
		panic("realhost: watchdog timeout must be positive")
	}
	h.wdMu.Lock()
	defer h.wdMu.Unlock()
	h.wdTimeout = timeout
	h.onStall = onStall
}

type binding struct {
	h    *Host
	name string
	ch   chan struct{}
	// reason is the declared block reason (host.BlockReasoner), written
	// by the bound thread and read by the watchdog under wdMu.
	reason string
}

// Go implements host.Host.
func (h *Host) Go(name string, parent host.Binding, fn func(host.Binding)) {
	b := &binding{h: h, name: name, ch: make(chan struct{}, 1)}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.maybePerturb()
		fn(b)
	}()
}

// Run implements host.Host.
func (h *Host) Run() error {
	h.wg.Wait()
	return nil
}

// Timed implements host.Host: the real host does not model time.
func (h *Host) Timed() bool { return false }

func (h *Host) maybePerturb() {
	if h.perturb <= 0 {
		return
	}
	h.rngMu.Lock()
	d := time.Duration(h.rng.Int63n(int64(h.perturb)))
	h.rngMu.Unlock()
	time.Sleep(d)
}

// noteBlocked registers b as blocked (or removes it) for the watchdog.
func (h *Host) noteBlocked(b *binding, blocked bool) {
	h.wdMu.Lock()
	defer h.wdMu.Unlock()
	if blocked {
		h.blocked[b] = time.Now()
	} else {
		delete(h.blocked, b)
	}
}

// stallReportLocked renders the blocked-thread table. Caller holds wdMu.
func (h *Host) stallReportLocked(now time.Time) string {
	var lines []string
	for b, since := range h.blocked {
		reason := b.reason
		if reason == "" {
			reason = "unknown"
		}
		lines = append(lines, fmt.Sprintf("  %-6s blocked %8s on %s",
			b.name, now.Sub(since).Round(time.Millisecond), reason))
	}
	sort.Strings(lines)
	return fmt.Sprintf("realhost: watchdog: no progress for %s — %d thread(s) blocked:\n%s",
		h.wdTimeout, len(lines), strings.Join(lines, "\n"))
}

// fireWatchdog runs the stall handler once, with the report snapshotted
// under wdMu.
func (h *Host) fireWatchdog() {
	h.wdMu.Lock()
	if h.stalled || h.onStall == nil {
		h.wdMu.Unlock()
		return
	}
	h.stalled = true
	report := h.stallReportLocked(time.Now())
	onStall := h.onStall
	h.wdMu.Unlock()
	onStall(report)
}

func (b *binding) Now() int64      { return time.Since(b.h.start).Nanoseconds() }
func (b *binding) Charge(ns int64) {}

// SetBlockReason implements host.BlockReasoner for the watchdog report.
func (b *binding) SetBlockReason(reason string) {
	b.h.wdMu.Lock()
	b.reason = reason
	b.h.wdMu.Unlock()
}

func (b *binding) Block() {
	b.h.maybePerturb()
	b.h.wdMu.Lock()
	timeout := b.h.wdTimeout
	idle := strings.HasPrefix(b.reason, host.IdleReasonPrefix)
	b.h.wdMu.Unlock()
	if timeout <= 0 || idle {
		// Idle-declared parks (pooled workers awaiting adoption) wait for
		// work indefinitely by design; counting them as stalls would trip
		// the watchdog on every quiet pool.
		<-b.ch
		return
	}
	b.h.noteBlocked(b, true)
	defer b.h.noteBlocked(b, false)
	select {
	case <-b.ch:
		return
	case <-time.After(timeout):
		b.h.fireWatchdog()
		// The handler chose not to terminate the process: keep waiting, so
		// a wake that was merely late (not lost) still lands correctly.
		<-b.ch
	}
}

func (b *binding) Wake(target host.Binding) {
	t := target.(*binding)
	t.h.maybePerturb()
	select {
	case t.ch <- struct{}{}:
	default:
		panic(fmt.Sprintf("realhost: double wake of thread %q", t.name))
	}
}

var _ host.BlockReasoner = (*binding)(nil)
